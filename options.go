package smartconf

// Option customizes Conf and Manager construction.
type Option func(*options)

type options struct {
	alert          AlertFunc
	alertThreshold int
	trace          TraceFunc
}

func applyOptions(opts []Option) options {
	o := options{alertThreshold: 10}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithAlert installs a handler for unreachable-goal alerts: SmartConf calls
// it (on its own goroutine) when a controller has been pinned at an actuator
// bound for WithAlertThreshold consecutive updates while the error
// persisted — the best-effort-plus-alert behaviour of §4.3.
func WithAlert(f AlertFunc) Option {
	return func(o *options) { o.alert = f }
}

// WithAlertThreshold sets how many consecutive saturated updates trigger an
// alert (default 10). Values < 1 are treated as 1.
func WithAlertThreshold(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.alertThreshold = n
	}
}
