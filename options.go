package smartconf

import "smartconf/internal/declog"

// Option customizes Conf and Manager construction.
type Option func(*options)

type options struct {
	alert          AlertFunc
	alertThreshold int
	trace          TraceFunc
	declog         *declog.Log
	perturb        *declog.Perturb
}

func applyOptions(opts []Option) options {
	o := options{alertThreshold: 10}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithAlert installs a handler for unreachable-goal alerts: SmartConf calls
// it (on its own goroutine) when a controller has been pinned at an actuator
// bound for WithAlertThreshold consecutive updates while the error
// persisted — the best-effort-plus-alert behaviour of §4.3.
func WithAlert(f AlertFunc) Option {
	return func(o *options) { o.alert = f }
}

// WithAlertThreshold sets how many consecutive saturated updates trigger an
// alert (default 10). Values < 1 are treated as 1.
func WithAlertThreshold(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.alertThreshold = n
	}
}

// WithDecisionLog makes the configuration record every controller decision
// into l (registered under the Spec name). The log is a fixed-capacity,
// zero-allocation ring cheap enough to stay on in production; serialize it
// with declog.Encode and feed the file to cmd/smartconf-replay.
func WithDecisionLog(l *declog.Log) Option {
	return func(o *options) { o.declog = l }
}

// WithPerturb arms a counterfactual decision edit on the synthesized
// controller: from p.FromPeriod onward the pole is pinned and/or the clamp
// bounds are moved. This is the offline replay tool's hook ("what if the
// pole were 0.9 from period k?") — production paths never set it.
func WithPerturb(p declog.Perturb) Option {
	return func(o *options) { o.perturb = &p }
}
