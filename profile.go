package smartconf

import (
	"fmt"
	"io"

	"smartconf/internal/core"
	"smartconf/internal/sysfile"
)

// Profile holds the (setting, measurement) samples collected while profiling
// one configuration. Controllers are synthesized from Profiles; a Profile
// with too little signal (fewer than two distinct settings, or performance
// that does not respond to the setting) yields an error at construction.
//
// The paper's default campaign — 4 settings spread over the valid range,
// 10 measurements each — is available through Plan.
type Profile struct {
	col *core.Collector
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{col: core.NewCollector()}
}

// Add records measurements taken while the configuration (or, for indirect
// configurations, the deputy variable) held the given value.
func (p *Profile) Add(setting float64, measurements ...float64) *Profile {
	for _, m := range measurements {
		p.col.Record(setting, m)
	}
	return p
}

// Len reports the total number of recorded samples.
func (p *Profile) Len() int { return p.col.Len() }

// core returns the internal representation.
func (p *Profile) coreProfile() core.Profile { return p.col.Profile() }

// Write serializes the profile in the "<ConfName>.SmartConf.sys" format
// (§5.5): one "sample <setting> <measurement>" line per data point.
func (p *Profile) Write(w io.Writer) error {
	return sysfile.EncodeProfile(w, p.coreProfile())
}

// ReadProfile parses a profile in the "<ConfName>.SmartConf.sys" format.
func ReadProfile(r io.Reader) (*Profile, error) {
	cp, err := sysfile.ParseProfile(r)
	if err != nil {
		return nil, err
	}
	p := NewProfile()
	for _, s := range cp.Settings {
		p.Add(s.Setting, s.Samples...)
	}
	return p, nil
}

// Diagnose inspects the profile for the hazards §6.6 of the paper warns
// about — above all a NON-MONOTONIC knob→metric relationship, which
// SmartConf's linear model fundamentally does not fit. Warnings are
// advisory: construction proceeds, but a wise developer checks them before
// shipping a controller.
func (p *Profile) Diagnose() []string {
	ds := p.coreProfile().Diagnose()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// Plan is a profiling campaign: pin the configuration at each setting in
// turn, taking SamplesPerStep measurements per setting.
type Plan struct {
	Settings       []float64
	SamplesPerStep int
}

// DefaultPlan spreads n settings evenly over [min, max] with the paper's
// default of 10 samples per setting.
func DefaultPlan(min, max float64, n int) Plan {
	cp := core.DefaultPlan(min, max, n)
	return Plan{Settings: cp.Settings, SamplesPerStep: cp.SamplesPerStep}
}

// Run executes the campaign. measure must apply the setting to the live
// system, let it settle, and return one performance observation.
func (pl Plan) Run(measure func(setting float64) (float64, error)) (*Profile, error) {
	cp, err := core.Plan{Settings: pl.Settings, SamplesPerStep: pl.SamplesPerStep}.Run(measure)
	if err != nil {
		return nil, fmt.Errorf("smartconf: profiling: %w", err)
	}
	p := NewProfile()
	for _, s := range cp.Settings {
		p.Add(s.Setting, s.Samples...)
	}
	return p, nil
}
