package smartconf_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// Smoke tests that BUILD AND RUN every example and command, guarding the
// runnable surface of the repository (examples rot silently otherwise).
// They shell out to the Go toolchain, so they are skipped under -short.

func repoRoot(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repository root")
	}
	return filepath.Dir(self)
}

func runMain(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s: %v\n%s", pkg, err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain smoke test")
	}
	cases := []struct {
		pkg    string
		expect string
	}{
		{"./examples/quickstart", "heap stayed under"},
		{"./examples/rpcqueue", "ALERT"},
		{"./examples/kvstore", "no OOM, no restart"},
		{"./examples/multiconf", "never violated"},
		{"./examples/filebased", "no one ever picked a number"},
		{"./examples/adaptive", "re-learns"},
	}
	for _, c := range cases {
		c := c
		t.Run(filepath.Base(c.pkg), func(t *testing.T) {
			t.Parallel()
			out := runMain(t, c.pkg)
			if !strings.Contains(out, c.expect) {
				t.Errorf("%s output missing %q:\n%s", c.pkg, c.expect, out)
			}
			if strings.Contains(out, "!!!") {
				t.Errorf("%s reported a violation:\n%s", c.pkg, out)
			}
		})
	}
}

func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain smoke test")
	}
	t.Run("bench-list", func(t *testing.T) {
		t.Parallel()
		out := runMain(t, "./cmd/smartconf-bench", "-list")
		for _, id := range []string{"table2", "fig5", "fig8", "abl-adaptive", "robustness", "ext-dist"} {
			if !strings.Contains(out, id) {
				t.Errorf("-list missing %q:\n%s", id, out)
			}
		}
	})
	t.Run("bench-table2", func(t *testing.T) {
		t.Parallel()
		out := runMain(t, "./cmd/smartconf-bench", "-only", "table2")
		if !strings.Contains(out, "Total") || !strings.Contains(out, "80") {
			t.Errorf("table2 output:\n%s", out)
		}
	})
	t.Run("study", func(t *testing.T) {
		t.Parallel()
		out := runMain(t, "./cmd/smartconf-study")
		if !strings.Contains(out, "Dynamic factors") {
			t.Errorf("study output:\n%s", out)
		}
	})
	t.Run("study-issues", func(t *testing.T) {
		t.Parallel()
		out := runMain(t, "./cmd/smartconf-study", "-issues")
		if !strings.Contains(out, "HBASE-3813") {
			t.Errorf("issues output:\n%s", out)
		}
	})
	t.Run("profile", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		out := runMain(t, "./cmd/smartconf-profile", "-issue", "HB2149", "-out", dir)
		if !strings.Contains(out, "pole") {
			t.Errorf("profile output:\n%s", out)
		}
	})
}
