package smartconf

import "sort"

// Snapshot is a point-in-time diagnostic view of a configuration — what an
// operator dashboard or a support bundle captures. All fields are plain
// values; the struct marshals cleanly with encoding/json.
type Snapshot struct {
	Name        string  `json:"name"`
	Metric      string  `json:"metric"`
	Value       float64 `json:"value"`
	Goal        float64 `json:"goal"`
	VirtualGoal float64 `json:"virtual_goal"`
	Hard        bool    `json:"hard"`
	Pole        float64 `json:"pole"`
	Lambda      float64 `json:"lambda"`
	ModelAlpha  float64 `json:"model_alpha"`
	Adaptive    bool    `json:"adaptive"`
	Updates     int     `json:"updates"`
	Saturated   int     `json:"saturated_for"`
	Profiling   bool    `json:"profiling"`
}

// Snapshot captures the configuration's current diagnostic state.
func (c *Conf) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Name:      c.name,
		Value:     c.lastValue,
		Profiling: c.profiling,
	}
	if c.ctrl != nil {
		g := c.ctrl.Goal()
		s.Metric = g.Metric
		s.Goal = g.Target
		s.Hard = g.Hard
		s.VirtualGoal = c.ctrl.VirtualTarget()
		s.Pole = c.ctrl.Pole()
		s.Lambda = c.ctrl.Lambda()
		s.ModelAlpha = c.ctrl.AdaptiveAlpha()
		s.Adaptive = c.adaptiveEnabled
		s.Updates = c.ctrl.Updates()
		s.Saturated = c.ctrl.SaturatedFor()
	}
	return s
}

// Snapshot captures the underlying configuration's diagnostic state.
func (ic *IndirectConf) Snapshot() Snapshot {
	return ic.conf.Snapshot()
}

// Snapshots captures every open configuration under the Manager, sorted by
// name within each kind (direct first, then indirect), so a support bundle
// taken twice from the same state is byte-identical.
func (m *Manager) Snapshots() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.confs)+len(m.indirects))
	for _, name := range sortedKeys(m.confs) {
		out = append(out, m.confs[name].Snapshot())
	}
	for _, name := range sortedKeys(m.indirects) {
		out = append(out, m.indirects[name].Snapshot())
	}
	return out
}

// sortedKeys returns m's keys in sorted order: the deterministic way to
// iterate a map whose contents feed an artifact.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
