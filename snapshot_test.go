package smartconf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSnapshotCapturesState(t *testing.T) {
	sc, err := New(Spec{
		Name: "q", Metric: "mem", Goal: 500, Hard: true, Max: 1e6, Adaptive: true,
	}, noisyProfile(2, 0, 0.1, 10, 50, 100))
	if err != nil {
		t.Fatal(err)
	}
	sc.SetPerf(100)
	sc.Value()
	snap := sc.Snapshot()
	if snap.Name != "q" || snap.Metric != "mem" || snap.Goal != 500 || !snap.Hard {
		t.Errorf("snapshot identity: %+v", snap)
	}
	if snap.VirtualGoal >= 500 || snap.VirtualGoal <= 0 {
		t.Errorf("virtual goal = %v", snap.VirtualGoal)
	}
	if snap.Updates != 1 || !snap.Adaptive || snap.Profiling {
		t.Errorf("snapshot state: %+v", snap)
	}
	// Must marshal cleanly for dashboards/support bundles.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"virtual_goal"`) {
		t.Errorf("json: %s", data)
	}
}

func TestManagerSnapshots(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.IndirectConf("max.queue.size", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Conf("flush.lower.limit"); err != nil {
		t.Fatal(err)
	}
	snaps := m.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	names := map[string]bool{}
	for _, s := range snaps {
		names[s.Name] = true
	}
	if !names["max.queue.size"] || !names["flush.lower.limit"] {
		t.Errorf("snapshot names: %v", names)
	}
}
