package smartconf

import (
	"testing"
)

func TestTraceEventsOnDirectConf(t *testing.T) {
	var events []TraceEvent
	sc, err := New(Spec{Name: "c", Metric: "m", Goal: 100, Max: 1e6},
		linearProfile(1, 0, 10, 20, 30),
		WithTrace(func(e TraceEvent) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	sc.SetPerf(40)
	sc.Value()
	sc.Value() // no fresh measurement: no decision, no event
	sc.SetPerf(60)
	sc.Value()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("sequence numbers: %+v", events)
	}
	if events[0].Conf != "c" || events[0].Measured != 40 || events[0].Target != 100 {
		t.Errorf("event[0] = %+v", events[0])
	}
	if events[0].Deputy != 0 {
		t.Errorf("direct conf should report zero deputy: %+v", events[0])
	}
	if events[0].Value == 0 {
		t.Error("event missing the chosen value")
	}
}

func TestTraceEventsOnIndirectConf(t *testing.T) {
	var events []TraceEvent
	profile := NewProfile()
	for _, s := range []float64{10, 20, 30} {
		profile.Add(s, s, s)
	}
	ic, err := NewIndirect(Spec{Name: "q", Metric: "m", Goal: 100, Max: 1e6},
		profile, nil,
		WithTrace(func(e TraceEvent) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	ic.SetPerf(40, 7)
	ic.Value()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	if events[0].Deputy != 7 {
		t.Errorf("deputy = %v, want 7", events[0].Deputy)
	}
	// Deadbeat with α=1: value = deputy + (100-40) = 67.
	if events[0].Value != 67 {
		t.Errorf("value = %v, want 67", events[0].Value)
	}
}

func TestTraceReportsSaturation(t *testing.T) {
	var last TraceEvent
	sc, err := New(Spec{Name: "c", Metric: "m", Goal: 1e9, Max: 5},
		linearProfile(1, 0, 1, 3, 5),
		WithTrace(func(e TraceEvent) { last = e }))
	if err != nil {
		t.Fatal(err)
	}
	sc.SetPerf(1)
	sc.Value()
	if !last.Saturated || last.Value != 5 {
		t.Errorf("saturated decision not traced: %+v", last)
	}
}
