package smartconf

import (
	"fmt"
	"math"
	"sync"

	"smartconf/internal/core"
)

// Spec declares one SmartConf configuration: its identity, the performance
// metric it affects, the user's goal on that metric, and the actuator range.
// This is the programmatic equivalent of one binding in the SmartConf system
// file plus the matching entry in the user goals file.
type Spec struct {
	// Name identifies the configuration (e.g. "ipc.server.max.queue.size").
	Name string
	// Metric names the performance metric the configuration affects
	// (e.g. "memory_consumption"). Configurations sharing a super-hard
	// metric under one Manager coordinate automatically.
	Metric string
	// Goal is the numeric performance constraint.
	Goal float64
	// Hard marks constraints that must not be overshot (OOM/OOD class);
	// hard goals receive a virtual goal and two-pole control (§5.2).
	Hard bool
	// SuperHard additionally engages the §5.4 interaction factor when
	// several configurations share the metric.
	SuperHard bool
	// LowerBound flips the constraint direction: the metric must stay at or
	// above Goal. Default is an upper bound, like every goal in the paper.
	LowerBound bool
	// Initial is the configuration's starting value before the first
	// adjustment; its quality does not matter (§4.1.1).
	Initial float64
	// Min and Max clamp the configuration value. Max of 0 means unbounded.
	Min, Max float64
	// Interaction overrides the §5.4 factor N for standalone construction
	// (Managers compute it from shared metrics instead). Values < 1 mean 1.
	Interaction int
	// Adaptive enables online model refinement (recursive least squares
	// over the pairs the controller observes at run time), letting the
	// controller track plants whose gain drifts after profiling — the
	// paper's §7 learning direction. Forgetting tunes how fast old
	// observations fade (0 = the library default).
	Adaptive   bool
	Forgetting float64
}

func (s Spec) goal() core.Goal {
	b := core.UpperBound
	if s.LowerBound {
		b = core.LowerBound
	}
	return core.Goal{
		Metric:    s.Metric,
		Target:    s.Goal,
		Bound:     b,
		Hard:      s.Hard || s.SuperHard,
		SuperHard: s.SuperHard,
	}
}

func (s Spec) options() core.Options {
	return core.Options{
		Min:         s.Min,
		Max:         s.Max,
		Initial:     s.Initial,
		Interaction: s.Interaction,
	}
}

// Alert reports that a controller believes its goal is unreachable: the
// actuator has been pinned at a bound for Consecutive updates while the
// error persisted. SmartConf keeps making best-effort progress; the alert
// exists so operators learn the declared goal cannot be met (§4.3).
type Alert struct {
	Conf        string
	Metric      string
	Goal        float64
	Measured    float64
	Consecutive int
}

func (a Alert) String() string {
	return fmt.Sprintf("smartconf: goal %s=%g looks unreachable for %s (measured %g, %d saturated updates)",
		a.Metric, a.Goal, a.Conf, a.Measured, a.Consecutive)
}

// AlertFunc receives unreachable-goal alerts. It must not call back into the
// alerting Conf.
type AlertFunc func(Alert)

// Conf is a directly-acting SmartConf configuration (the paper's SmartConf
// class, Figure 3): the configuration value itself is what the plant model
// relates to performance.
//
// All methods are safe for concurrent use.
type Conf struct {
	mu   sync.Mutex
	name string
	ctrl *core.Controller // guardedby: mu

	pending    float64 // guardedby: mu — latest measurement, consumed by Conf()
	hasPending bool    // guardedby: mu
	lastValue  float64 // guardedby: mu — clampedby: sanitizeKnob

	alert          AlertFunc
	alertThreshold int
	alertFired     bool // guardedby: mu

	trace    TraceFunc
	traceSeq int // guardedby: mu

	adaptiveEnabled bool

	profiling bool
	collector *core.Collector // guardedby: mu
}

// New constructs a standalone Conf from a Spec and a Profile: the controller
// is synthesized immediately (pole from Δ, virtual goal from λ). Most
// applications construct Confs through a Manager instead, which wires
// file-based specs and cross-configuration coordination.
func New(spec Spec, profile *Profile, opts ...Option) (*Conf, error) {
	o := applyOptions(opts)
	if profile == nil || profile.Len() == 0 {
		return nil, fmt.Errorf("smartconf: configuration %q needs profiling data (run a Plan first)", spec.Name)
	}
	ctrl, err := core.Synthesize(profile.coreProfile(), spec.goal(), spec.options())
	if err != nil {
		return nil, fmt.Errorf("smartconf: synthesizing controller for %q: %w", spec.Name, err)
	}
	if spec.Adaptive {
		ctrl.EnableAdaptation(spec.Forgetting)
	}
	if o.declog != nil {
		ctrl.AttachLog(o.declog, spec.Name)
	}
	if o.perturb != nil {
		ctrl.SetPerturb(*o.perturb)
	}
	c := newConf(spec, ctrl, o)
	c.adaptiveEnabled = spec.Adaptive
	return c, nil
}

// sanitizeKnob is the last line of defense on the one field every knob read
// serves: a non-finite candidate — a user Transducer returning NaN/Inf, a
// profiling pin gone wrong — keeps the previous value instead of poisoning
// the knob. The controller core clamps its own outputs (see core's
// `clampedby: clamp` field); this guards the paths that bypass the core.
// Every lastValue write must flow through it (enforced by the confbounds
// analyzer via the field's `clampedby:` annotation).
func sanitizeKnob(prev, v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return prev
	}
	return v
}

func newConf(spec Spec, ctrl *core.Controller, o options) *Conf {
	c := &Conf{
		name:           spec.Name,
		ctrl:           ctrl,
		lastValue:      sanitizeKnob(0, ctrl.Conf()),
		alert:          o.alert,
		alertThreshold: o.alertThreshold,
		trace:          o.trace,
	}
	return c
}

// newProfilingConf builds a Conf in profiling mode: no controller, the value
// is pinned externally (PinValue) and every SetPerf records a sample.
func newProfilingConf(spec Spec, o options) *Conf {
	return &Conf{
		name:           spec.Name,
		lastValue:      sanitizeKnob(0, spec.Initial),
		alert:          o.alert,
		alertThreshold: o.alertThreshold,
		profiling:      true,
		collector:      core.NewCollector(),
	}
}

// Name returns the configuration's name.
func (c *Conf) Name() string { return c.name }

// SetPerf feeds the latest measurement of the configuration's performance
// metric (obtained from the developer's sensor). The next Conf call uses it
// to adjust the setting.
func (c *Conf) SetPerf(actual float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = actual
	c.hasPending = true
	if c.profiling {
		c.collector.Record(c.lastValue, actual)
	}
}

// Conf computes and returns the adjusted configuration setting, rounded to
// the nearest integer (most PerfConfs are integral — queue lengths, file
// counts, byte limits). Use Value for float-valued configurations.
func (c *Conf) Conf() int {
	return int(math.Round(c.Value()))
}

// Value computes and returns the adjusted configuration setting as a float.
// If no new measurement arrived since the last call, the previous setting is
// returned unchanged (the controller only acts on fresh information).
func (c *Conf) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.valueLocked()
}

func (c *Conf) valueLocked() float64 {
	if c.profiling || c.ctrl == nil {
		return c.lastValue
	}
	if !c.hasPending {
		return c.lastValue
	}
	c.lastValue = sanitizeKnob(c.lastValue, c.ctrl.Update(c.pending))
	c.hasPending = false
	c.maybeAlertLocked()
	c.emitTraceLocked(0)
	return c.lastValue
}

func (c *Conf) maybeAlertLocked() {
	if c.alert == nil {
		return
	}
	sat := c.ctrl.SaturatedFor()
	if sat == 0 {
		c.alertFired = false
		return
	}
	if sat >= c.alertThreshold && !c.alertFired {
		c.alertFired = true
		g := c.ctrl.Goal()
		a := Alert{
			Conf:        c.name,
			Metric:      g.Metric,
			Goal:        g.Target,
			Measured:    c.pending,
			Consecutive: sat,
		}
		// Deliver outside the lock so the handler can inspect the Conf.
		go c.alert(a)
	}
}

// SetGoal updates the performance goal at run time (the paper's setGoal API,
// available to users and administrators). Hard goals recompute their virtual
// goal from the profiled stability coefficient.
func (c *Conf) SetGoal(goal float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctrl != nil {
		c.ctrl.SetGoal(goal)
	}
}

// Goal returns the current goal target.
func (c *Conf) Goal() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctrl == nil {
		return math.NaN()
	}
	return c.ctrl.Goal().Target
}

// VirtualGoal returns the effective setpoint: for hard goals, the
// automatically derived virtual goal s_v = (1−λ)·goal; otherwise the goal.
func (c *Conf) VirtualGoal() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctrl == nil {
		return math.NaN()
	}
	return c.ctrl.VirtualTarget()
}

// ModelAlpha returns the plant-model slope currently in use: the profiled
// slope, or the live estimate when Spec.Adaptive is set.
func (c *Conf) ModelAlpha() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctrl == nil {
		return math.NaN()
	}
	return c.ctrl.AdaptiveAlpha()
}

// Pole returns the automatically derived safe-region pole (diagnostics).
func (c *Conf) Pole() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctrl == nil {
		return math.NaN()
	}
	return c.ctrl.Pole()
}

// Profiling reports whether the Conf is in profiling mode (no controller;
// samples recorded on every SetPerf).
func (c *Conf) Profiling() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.profiling
}

// PinValue pins the configuration during a profiling campaign. It has no
// effect outside profiling mode.
func (c *Conf) PinValue(v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.profiling {
		c.lastValue = sanitizeKnob(c.lastValue, v)
	}
}

// CollectedProfile returns a copy of the samples gathered so far in
// profiling mode, or nil outside it.
func (c *Conf) CollectedProfile() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.profiling {
		return nil
	}
	p := NewProfile()
	for _, s := range c.collector.Profile().Settings {
		p.Add(s.Setting, s.Samples...)
	}
	return p
}

// setInteraction is called by the Manager when the population of a
// super-hard metric changes.
func (c *Conf) setInteraction(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctrl != nil {
		c.ctrl.SetInteraction(n)
	}
}
