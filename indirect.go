package smartconf

import (
	"fmt"
	"math"
)

// Transducer maps the controller-desired value of a deputy variable C′ to
// the value of the threshold configuration C that will steer C′ there
// (§5.3). For the common case — C is simply an upper or lower bound on C′ —
// Identity is all that is needed: to drop queue.size to K, drop
// max.queue.size to K.
type Transducer interface {
	Transduce(desiredDeputy float64) float64
}

// TransducerFunc adapts a function to the Transducer interface.
type TransducerFunc func(float64) float64

// Transduce calls f.
func (f TransducerFunc) Transduce(d float64) float64 { return f(d) }

// Identity returns the default transducer: C = desired C′.
func Identity() Transducer {
	return TransducerFunc(func(d float64) float64 { return d })
}

// Scale returns a transducer C = k·C′, for configurations whose threshold is
// expressed in different units than the deputy (e.g. a byte limit bounding
// an item count with a known item size).
func Scale(k float64) Transducer {
	return TransducerFunc(func(d float64) float64 { return k * d })
}

// IndirectConf is a SmartConf configuration that affects performance
// indirectly, by imposing a threshold on a deputy variable (the paper's
// SmartConf_I subclass, Figure 4). About half of the PerfConfs in the
// paper's study are of this kind: max.queue.size bounds queue.size, which is
// what actually drives memory consumption.
//
// The controller models deputy→performance and computes the desired next
// deputy value from the current measurement and the deputy's CURRENT value;
// the transducer then converts that desired deputy into the threshold
// setting. Callers therefore pass the deputy's current value to SetPerf.
//
// All methods are safe for concurrent use.
type IndirectConf struct {
	conf       *Conf
	transducer Transducer

	// pendingDeputy is guarded by conf.mu via setPerf/value helpers.
	pendingDeputy float64
}

// NewIndirect constructs a standalone IndirectConf. The profile must relate
// the DEPUTY variable (not the threshold) to the performance metric; the
// profiling mode of Manager records exactly that.
func NewIndirect(spec Spec, profile *Profile, t Transducer, opts ...Option) (*IndirectConf, error) {
	if t == nil {
		t = Identity()
	}
	c, err := New(spec, profile, opts...)
	if err != nil {
		return nil, err
	}
	return &IndirectConf{conf: c, transducer: t}, nil
}

// Name returns the configuration's name.
func (ic *IndirectConf) Name() string { return ic.conf.name }

// SetPerf feeds the latest performance measurement together with the current
// value of the deputy variable (e.g. the queue's actual size right now).
func (ic *IndirectConf) SetPerf(actual float64, deputy float64) {
	c := ic.conf
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = actual
	c.hasPending = true
	ic.pendingDeputy = deputy
	if c.profiling {
		// In profiling mode measurements are grouped under the PINNED
		// threshold setting (the paper's 4-settings × 10-measurements plan);
		// per-setting variance is what the pole and virtual goal derive from.
		c.collector.Record(c.lastValue, actual)
	}
}

// Conf computes and returns the adjusted threshold setting, rounded to the
// nearest integer. Use Value for float-valued thresholds.
func (ic *IndirectConf) Conf() int {
	return int(math.Round(ic.Value()))
}

// Value computes and returns the adjusted threshold setting: the controller
// derives the desired next deputy value and the transducer converts it.
func (ic *IndirectConf) Value() float64 {
	c := ic.conf
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.profiling || c.ctrl == nil {
		return c.lastValue
	}
	if !c.hasPending {
		return c.lastValue
	}
	// §5.3: the update starts from the deputy's CURRENT value, not from the
	// previous threshold — the deputy may lag behind a recently dropped
	// threshold, and the controller must reason about where the system IS.
	c.ctrl.SetConf(ic.pendingDeputy)
	desired := c.ctrl.Update(c.pending)
	c.hasPending = false
	// The transducer is user code and its output goes straight into the live
	// threshold, outside the controller's clamp — sanitize it so a NaN/Inf
	// transduction holds the previous setting instead of poisoning the knob.
	c.lastValue = sanitizeKnob(c.lastValue, ic.transducer.Transduce(desired))
	c.maybeAlertLocked()
	c.emitTraceLocked(ic.pendingDeputy)
	return c.lastValue
}

// SetGoal updates the performance goal at run time.
func (ic *IndirectConf) SetGoal(goal float64) { ic.conf.SetGoal(goal) }

// Goal returns the current goal target.
func (ic *IndirectConf) Goal() float64 { return ic.conf.Goal() }

// VirtualGoal returns the effective setpoint (see Conf.VirtualGoal).
func (ic *IndirectConf) VirtualGoal() float64 { return ic.conf.VirtualGoal() }

// Pole returns the safe-region pole (diagnostics).
func (ic *IndirectConf) Pole() float64 { return ic.conf.Pole() }

// ModelAlpha returns the plant-model slope currently in use (see
// Conf.ModelAlpha).
func (ic *IndirectConf) ModelAlpha() float64 { return ic.conf.ModelAlpha() }

// Profiling reports whether the configuration is in profiling mode.
func (ic *IndirectConf) Profiling() bool { return ic.conf.Profiling() }

// PinValue pins the threshold during profiling campaigns.
func (ic *IndirectConf) PinValue(v float64) { ic.conf.PinValue(v) }

// CollectedProfile returns the profiling samples gathered so far
// (deputy → performance), or nil outside profiling mode.
func (ic *IndirectConf) CollectedProfile() *Profile { return ic.conf.CollectedProfile() }

// String implements fmt.Stringer for diagnostics.
func (ic *IndirectConf) String() string {
	return fmt.Sprintf("IndirectConf(%s)", ic.conf.name)
}
