package smartconf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSys = `
/* SmartConf.sys */
max.queue.size @ queue_memory
max.queue.size = 0
max.queue.size.min = 0
max.queue.size.max = 5000

response.queue.maxsize @ queue_memory
response.queue.maxsize = 0
response.queue.maxsize.max = 1e9

flush.lower.limit @ block_time
flush.lower.limit = 0.5
flush.lower.limit.min = 0.05
flush.lower.limit.max = 0.95
`

const testGoals = `
queue_memory.goal = 495
queue_memory.goal.superhard = 1

block_time.goal = 10
`

func testProfileSource(conf string) (*Profile, error) {
	p := NewProfile()
	switch conf {
	case "max.queue.size", "response.queue.maxsize":
		for _, s := range []float64{40, 80, 120, 160} {
			for i := 0; i < 10; i++ {
				p.Add(s, 2*s+60)
			}
		}
	case "flush.lower.limit":
		for _, s := range []float64{0.2, 0.4, 0.6, 0.8} {
			for i := 0; i < 10; i++ {
				p.Add(s, 20*(1-s))
			}
		}
	}
	return p, nil
}

func newTestManager(t *testing.T, opts ...ManagerOption) *Manager {
	t.Helper()
	all := append([]ManagerOption{WithProfileSource(testProfileSource)}, opts...)
	m, err := NewManager(strings.NewReader(testSys), strings.NewReader(testGoals), all...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerOpensConfsWithGoals(t *testing.T) {
	m := newTestManager(t)
	ic, err := m.IndirectConf("max.queue.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Goal() != 495 {
		t.Errorf("goal = %v, want 495 from goals file", ic.Goal())
	}
	// Super-hard goal: the virtual goal must sit strictly below the target
	// even for a clean profile? (λ=0 ⇒ equal). Here profile is deterministic,
	// so just confirm ≤.
	if ic.VirtualGoal() > 495 {
		t.Errorf("virtual goal %v above target", ic.VirtualGoal())
	}
	c, err := m.Conf("flush.lower.limit")
	if err != nil {
		t.Fatal(err)
	}
	if c.Goal() != 10 {
		t.Errorf("block_time goal = %v, want 10", c.Goal())
	}
}

func TestManagerInteractionFactorFromSysFile(t *testing.T) {
	m := newTestManager(t)
	// Two confs share queue_memory, a super-hard goal ⇒ N = 2: each absorbs
	// half the error. With α = 2, pole 0 (clean profile), error e, the step
	// is e/(2·2) starting from the deputy's current value.
	ic, err := m.IndirectConf("max.queue.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	vt := ic.VirtualGoal()
	ic.SetPerf(vt-100, 50) // e = 100
	got := ic.Value()
	want := 50 + 100/(2*2.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("threshold = %v, want %v (interaction factor 2 engaged)", got, want)
	}
}

func TestManagerSetGoalPropagates(t *testing.T) {
	m := newTestManager(t)
	a, err := m.IndirectConf("max.queue.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.IndirectConf("response.queue.maxsize", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetGoal("queue_memory", 300); err != nil {
		t.Fatal(err)
	}
	if a.Goal() != 300 || b.Goal() != 300 {
		t.Errorf("goals = %v, %v; want both 300", a.Goal(), b.Goal())
	}
	if err := m.SetGoal("nope", 1); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestManagerRejectsUnknownConfAndMissingGoal(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.Conf("not.there"); err == nil {
		t.Error("expected error for unknown configuration")
	}
	sys := "a @ metric_without_goal\n"
	m2, err := NewManager(strings.NewReader(sys), strings.NewReader(""),
		WithProfileSource(testProfileSource))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Conf("a"); err == nil {
		t.Error("expected error for metric with no declared goal")
	}
}

func TestManagerDirectIndirectConflict(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.IndirectConf("max.queue.size", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Conf("max.queue.size"); err == nil {
		t.Error("opening an indirect conf as direct must fail")
	}
	// And idempotent re-open returns the same instance.
	x, _ := m.IndirectConf("max.queue.size", nil)
	y, _ := m.IndirectConf("max.queue.size", nil)
	if x != y {
		t.Error("re-open returned a different instance")
	}
}

func TestManagerRequiresProfileSource(t *testing.T) {
	m, err := NewManager(strings.NewReader(testSys), strings.NewReader(testGoals))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Conf("flush.lower.limit"); err == nil {
		t.Error("expected error without a profile source")
	}
}

func TestManagerProfilingModeEndToEnd(t *testing.T) {
	// Full §5.5 loop: profiling run → flush to disk → reload → control.
	dir := t.TempDir()
	sysProfiled := testSys + "\nprofiling = 1\n"
	m, err := NewManager(strings.NewReader(sysProfiled), strings.NewReader(testGoals))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Profiling() {
		t.Fatal("profiling flag lost")
	}
	ic, err := m.IndirectConf("max.queue.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ic.Profiling() {
		t.Fatal("conf not in profiling mode")
	}
	// Drive the plant at 4 pinned settings, 10 samples each.
	for _, s := range []float64{40, 80, 120, 160} {
		ic.PinValue(s)
		for i := 0; i < 10; i++ {
			ic.SetPerf(2*s+60, s)
		}
		if got := ic.Value(); got != s {
			t.Fatalf("profiling value = %v, want pinned %v", got, s)
		}
	}
	if got := ic.CollectedProfile().Len(); got != 40 {
		t.Fatalf("collected %d samples, want 40", got)
	}
	if err := m.FlushProfiles(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "max.queue.size.SmartConf.sys")); err != nil {
		t.Fatalf("profile file missing: %v", err)
	}

	// Reload without profiling: controller must synthesize from the file.
	m2, err := NewManager(strings.NewReader(testSys), strings.NewReader(testGoals),
		WithProfileDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ic2, err := m2.IndirectConf("max.queue.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Close the loop on the same plant: memory = 2·size + 60, goal 495.
	size := 0.0
	for i := 0; i < 200; i++ {
		mem := 2*size + 60
		ic2.SetPerf(mem, size)
		limit := ic2.Value()
		size = math.Min(size+40, limit) // queue chases the threshold
		if size < 0 {
			size = 0
		}
	}
	if mem := 2*size + 60; mem > 495 {
		t.Errorf("controlled memory %v exceeds goal 495", mem)
	}
}

func TestManagerFlushProfilesNoopWhenNotProfiling(t *testing.T) {
	m := newTestManager(t)
	if _, err := m.Conf("flush.lower.limit"); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushProfiles(t.TempDir()); err != nil {
		t.Errorf("FlushProfiles outside profiling mode: %v", err)
	}
}

func TestNewManagerFromFiles(t *testing.T) {
	dir := t.TempDir()
	sysPath := filepath.Join(dir, "SmartConf.sys")
	goalsPath := filepath.Join(dir, "app.conf")
	if err := os.WriteFile(sysPath, []byte(testSys), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goalsPath, []byte(testGoals), 0o644); err != nil {
		t.Fatal(err)
	}
	// Write a profile file next to the sys file.
	p, _ := testProfileSource("max.queue.size")
	f, err := os.Create(filepath.Join(dir, "max.queue.size.SmartConf.sys"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m, err := NewManagerFromFiles(sysPath, goalsPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.IndirectConf("max.queue.size", nil); err != nil {
		t.Fatal(err)
	}
	// Missing files surface as errors.
	if _, err := NewManagerFromFiles(filepath.Join(dir, "nope"), goalsPath); err == nil {
		t.Error("expected error for missing sys file")
	}
	if _, err := NewManagerFromFiles(sysPath, filepath.Join(dir, "nope")); err == nil {
		t.Error("expected error for missing goals file")
	}
}

func TestProfileReadWrite(t *testing.T) {
	p := NewProfile().Add(10, 1, 2, 3).Add(20, 4, 5)
	if p.Len() != 5 {
		t.Fatalf("Len = %d", p.Len())
	}
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	again, err := ReadProfile(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 5 {
		t.Errorf("round-trip Len = %d, want 5", again.Len())
	}
	if _, err := ReadProfile(strings.NewReader("garbage\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestPlanRunPublic(t *testing.T) {
	plan := DefaultPlan(0, 90, 4)
	p, err := plan.Run(func(s float64) (float64, error) { return 3 * s, nil })
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 40 {
		t.Errorf("Len = %d, want 40", p.Len())
	}
	sc, err := New(Spec{Name: "c", Metric: "m", Goal: 90, Max: 1e6}, p)
	if err != nil {
		t.Fatal(err)
	}
	sc.SetPerf(0)
	if got := sc.Value(); math.Abs(got-30) > 1e-6 {
		t.Errorf("deadbeat step = %v, want 30", got)
	}
}

func TestManagerReloadGoals(t *testing.T) {
	m := newTestManager(t)
	a, err := m.IndirectConf("max.queue.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Goal() != 495 {
		t.Fatalf("initial goal = %v", a.Goal())
	}
	// The operator edits the goals file: tighter memory, a brand-new metric.
	updated := `
queue_memory.goal = 300
queue_memory.goal.superhard = 1
block_time.goal = 10
new_metric.goal = 7
`
	if err := m.ReloadGoals(strings.NewReader(updated)); err != nil {
		t.Fatal(err)
	}
	if a.Goal() != 300 {
		t.Errorf("goal after reload = %v, want 300", a.Goal())
	}
	// Unchanged metrics are untouched; malformed files are rejected whole.
	if err := m.ReloadGoals(strings.NewReader("oops")); err == nil {
		t.Error("malformed reload should fail")
	}
	if a.Goal() != 300 {
		t.Errorf("failed reload must not change goals: %v", a.Goal())
	}
}
