package main

import (
	"fmt"
	"os"
	"path/filepath"

	"smartconf/internal/declog"
	"smartconf/internal/experiments"
)

// writeDecisionLogs captures one logged chaos run per substrate (the
// seed-generated plan under ChaosSeed) and serializes each decision log as
// <dir>/<substrate>.declog.json — the input format of cmd/smartconf-replay.
func writeDecisionLogs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sub := range experiments.ChaosSubstrates() {
		_, env := experiments.RunChaosPropertyLogged(sub, experiments.ChaosSeed)
		b, err := declog.Encode(env)
		if err != nil {
			return fmt.Errorf("%s: %w", sub, err)
		}
		path := filepath.Join(dir, sub+".declog.json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
