package main

import (
	"strings"
	"testing"

	"smartconf/internal/experiments"
	"smartconf/internal/experiments/engine"
)

// TestRegistryConsistent pins the three artifact registries (builders,
// render order, titles) to each other, so adding an artifact to one map
// cannot silently drop it from -list or the default run.
func TestRegistryConsistent(t *testing.T) {
	if len(order) != len(artifacts) {
		t.Errorf("order has %d ids, artifacts has %d", len(order), len(artifacts))
	}
	seen := map[string]bool{}
	for _, id := range order {
		if seen[id] {
			t.Errorf("artifact %q listed twice in order", id)
		}
		seen[id] = true
		if _, ok := artifacts[id]; !ok {
			t.Errorf("ordered artifact %q has no builder", id)
		}
		if titles[id] == "" {
			t.Errorf("artifact %q has no title", id)
		}
	}
	for id := range artifacts {
		if !seen[id] {
			t.Errorf("artifact %q is not in the render order", id)
		}
	}
	for id := range titles {
		if _, ok := artifacts[id]; !ok {
			t.Errorf("title for unknown artifact %q", id)
		}
	}
}

func TestUnknownArtifactListsValidIDs(t *testing.T) {
	msg := unknownArtifact("fig99")
	if !strings.Contains(msg, `"fig99"`) {
		t.Errorf("message does not echo the bad id: %q", msg)
	}
	for id := range artifacts {
		if !strings.Contains(msg, id) {
			t.Errorf("message does not list valid id %q", id)
		}
	}
}

// TestOutputByteIdenticalAcrossWorkerCounts is the engine's headline
// guarantee: every artifact the bench renders — figures, ablations, sweeps,
// extensions — is byte-identical whether the simulations ran sequentially or
// fanned out across 8 workers. Tables 2-5 are static study data and carry no
// simulations, so the comparison covers the simulation-backed artifacts.
func TestOutputByteIdenticalAcrossWorkerCounts(t *testing.T) {
	ids := make([]string, 0, len(order))
	for _, id := range order {
		switch id {
		case "table2", "table3", "table4", "table5":
			continue
		}
		ids = append(ids, id)
	}

	prev := engine.SetWorkers(1)
	defer engine.SetWorkers(prev)
	experiments.ResetRunCache()
	seq, err := renderArtifacts(ids)
	if err != nil {
		t.Fatalf("sequential render: %v", err)
	}

	engine.SetWorkers(8)
	experiments.ResetRunCache()
	par, err := renderArtifacts(ids)
	experiments.ResetRunCache()
	if err != nil {
		t.Fatalf("parallel render: %v", err)
	}

	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		window := func(s string) string {
			if hi > len(s) {
				return s[lo:]
			}
			return s[lo:hi]
		}
		t.Errorf("output differs between -parallel 1 and -parallel 8 at byte %d:\n--- workers=1 ---\n…%s…\n--- workers=8 ---\n…%s…",
			i, window(seq), window(par))
	}
}

// TestWarmDiskCacheRebuildsEverythingWithoutSimulating is the persistent
// layer's full-artifact guarantee: after one cold build into -cachedir, a
// fresh process (emulated by dropping the in-memory cache) re-renders every
// simulation-backed artifact from disk alone — zero simulations executed —
// and the bytes match the cold run exactly.
func TestWarmDiskCacheRebuildsEverythingWithoutSimulating(t *testing.T) {
	ids := make([]string, 0, len(order))
	for _, id := range order {
		switch id {
		case "table2", "table3", "table4", "table5":
			continue
		}
		ids = append(ids, id)
	}

	experiments.ResetRunCache()
	defer func() {
		experiments.EnablePersistentRunCache("")
		experiments.ResetRunCache()
	}()
	if err := experiments.EnablePersistentRunCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	cold, err := renderArtifacts(ids)
	if err != nil {
		t.Fatalf("cold render: %v", err)
	}
	execCold, _ := experiments.RunCacheStats()

	experiments.ResetRunCache()
	warm, err := renderArtifacts(ids)
	if err != nil {
		t.Fatalf("warm render: %v", err)
	}
	exec, _ := experiments.RunCacheStats()
	loaded, _ := experiments.PersistentRunCacheStats()
	if exec != 0 {
		t.Errorf("warm rebuild executed %d simulations (cold executed %d), want 0", exec, execCold)
	}
	if loaded == 0 {
		t.Error("warm rebuild loaded nothing from the disk cache")
	}
	if warm != cold {
		t.Error("warm rebuild output differs from the cold build")
	}
}

func BenchmarkFigureLLMKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		experiments.BuildFigureLLMKV()
	}
}
