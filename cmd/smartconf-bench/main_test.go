package main

import (
	"strings"
	"testing"

	"smartconf/internal/experiments"
)

// TestRegistryConsistent pins the three artifact registries (builders,
// render order, titles) to each other, so adding an artifact to one map
// cannot silently drop it from -list or the default run.
func TestRegistryConsistent(t *testing.T) {
	if len(order) != len(artifacts) {
		t.Errorf("order has %d ids, artifacts has %d", len(order), len(artifacts))
	}
	seen := map[string]bool{}
	for _, id := range order {
		if seen[id] {
			t.Errorf("artifact %q listed twice in order", id)
		}
		seen[id] = true
		if _, ok := artifacts[id]; !ok {
			t.Errorf("ordered artifact %q has no builder", id)
		}
		if titles[id] == "" {
			t.Errorf("artifact %q has no title", id)
		}
	}
	for id := range artifacts {
		if !seen[id] {
			t.Errorf("artifact %q is not in the render order", id)
		}
	}
	for id := range titles {
		if _, ok := artifacts[id]; !ok {
			t.Errorf("title for unknown artifact %q", id)
		}
	}
}

func TestUnknownArtifactListsValidIDs(t *testing.T) {
	msg := unknownArtifact("fig99")
	if !strings.Contains(msg, `"fig99"`) {
		t.Errorf("message does not echo the bad id: %q", msg)
	}
	for id := range artifacts {
		if !strings.Contains(msg, id) {
			t.Errorf("message does not list valid id %q", id)
		}
	}
}

func BenchmarkFigureLLMKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.BuildFigureLLMKV()
	}
}
