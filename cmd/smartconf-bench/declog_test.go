package main

import (
	"os"
	"path/filepath"
	"testing"

	"smartconf/internal/declog"
	"smartconf/internal/experiments"
)

// The -declog export must produce one parseable envelope per chaos substrate,
// each carrying decisions and replayable coordinates — the contract
// cmd/smartconf-replay relies on.
func TestWriteDecisionLogs(t *testing.T) {
	dir := t.TempDir()
	if err := writeDecisionLogs(dir); err != nil {
		t.Fatal(err)
	}
	for _, sub := range experiments.ChaosSubstrates() {
		b, err := os.ReadFile(filepath.Join(dir, sub+".declog.json"))
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		env, err := declog.Parse(b)
		if err != nil {
			t.Fatalf("%s: exported envelope does not parse: %v", sub, err)
		}
		if env.Substrate != sub || env.Seed != experiments.ChaosSeed {
			t.Errorf("%s: envelope coordinates %s/seed=%d", sub, env.Substrate, env.Seed)
		}
		if env.Total == 0 {
			t.Errorf("%s: exported log holds no decisions", sub)
		}
		if err := experiments.ValidateEnvelopeRun(env); err != nil {
			t.Errorf("%s: envelope not replayable: %v", sub, err)
		}
	}
}
