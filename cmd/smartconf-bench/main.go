// Command smartconf-bench regenerates every table and figure of the paper's
// evaluation on the simulated substrates and prints them to stdout.
//
// Usage:
//
//	smartconf-bench              # everything
//	smartconf-bench -only fig5   # one artifact: table2..table7, fig5..fig8
//	smartconf-bench -list        # list artifact ids
//	smartconf-bench -parallel 1  # sequential runs (output is identical)
//
// Independent simulation runs fan out across -parallel workers (default: all
// CPUs); results reassemble in a fixed order and repeated runs come from a
// process-wide cache, so the output is byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"smartconf/internal/experiments"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/study"
)

var artifacts = map[string]func() (string, error){
	"table2": func() (string, error) { return study.BuildTable2().Render(), nil },
	"table3": func() (string, error) { return study.BuildTable3().Render(), nil },
	"table4": func() (string, error) { return study.BuildTable4().Render(), nil },
	"table5": func() (string, error) { return study.BuildTable5().Render(), nil },
	"table6": func() (string, error) { return experiments.RenderTable6(), nil },
	"table7": experiments.RenderTable7,
	"fig5": func() (string, error) {
		return experiments.RenderFigure5(experiments.BuildFigure5()), nil
	},
	"fig6": func() (string, error) {
		return experiments.RenderFigure6(experiments.BuildFigure6()), nil
	},
	"fig7": func() (string, error) {
		return experiments.RenderFigure7(experiments.BuildFigure7()), nil
	},
	"fig8": func() (string, error) {
		return experiments.RenderFigure8(experiments.BuildFigure8()), nil
	},
	"abl-pole": func() (string, error) {
		return experiments.RenderAblationPoles(experiments.AblationPoles()), nil
	},
	"abl-margin": func() (string, error) {
		return experiments.RenderAblationMargins(experiments.AblationVirtualGoalMargin()), nil
	},
	"abl-interact": func() (string, error) {
		return experiments.RenderAblationInteraction(experiments.AblationInteractionFactor()), nil
	},
	"abl-adaptive": func() (string, error) {
		return experiments.RenderAblationAdaptive(experiments.AblationAdaptiveModel()), nil
	},
	"abl-profiling": func() (string, error) {
		return experiments.RenderAblationProfilingDepth(experiments.AblationProfilingDepth()), nil
	},
	"robustness": func() (string, error) {
		return experiments.RenderRobustness(experiments.RunRobustnessSweep()), nil
	},
	"abl-aimd": func() (string, error) {
		return experiments.RenderBackendComparison(experiments.AblationBackendAIMD()), nil
	},
	"ext-sla": func() (string, error) {
		return experiments.RenderSLA(experiments.BuildSLAComparison()), nil
	},
	"ext-dist": func() (string, error) {
		return experiments.RenderDistributed(experiments.RunDistributedHB3813(4)), nil
	},
	"llmkv": func() (string, error) {
		return experiments.RenderFigureLLMKV(experiments.BuildFigureLLMKV()), nil
	},
	"chaos": func() (string, error) {
		return experiments.RenderChaos(experiments.ChaosMatrix(experiments.ChaosSeed)), nil
	},
	"fleet": func() (string, error) {
		return experiments.RenderFleet(experiments.BuildFleetComparison()), nil
	},
}

var order = []string{
	"table2", "table3", "table4", "table5",
	"table6", "fig5", "fig6", "fig7", "fig8", "table7",
	"abl-pole", "abl-margin", "abl-interact", "abl-adaptive", "abl-profiling", "robustness", "abl-aimd", "ext-sla", "ext-dist",
	"llmkv", "chaos", "fleet",
}

var titles = map[string]string{
	"table2":        "Table 2: empirical study suite",
	"table3":        "Table 3: types of PerfConf patches",
	"table4":        "Table 4: how PerfConfs affect performance",
	"table5":        "Table 5: how to set PerfConfs",
	"table6":        "Table 6: benchmark suite",
	"fig5":          "Figure 5: trade-off comparison",
	"fig6":          "Figure 6: HB3813 case study",
	"fig7":          "Figure 7: controller ablations",
	"fig8":          "Figure 8: interacting PerfConfs",
	"table7":        "Table 7: integration effort",
	"abl-pole":      "Ablation: pole sensitivity (beyond the paper)",
	"abl-margin":    "Ablation: virtual-goal margin (beyond the paper)",
	"abl-interact":  "Ablation: interaction factor (beyond the paper)",
	"abl-adaptive":  "Ablation: adaptive model, the paper's §7 direction",
	"abl-profiling": "Ablation: profiling depth (§6.1 robustness claim)",
	"robustness":    "Robustness: one controller across 54 unseen workloads (§6.1)",
	"abl-aimd":      "Baseline: SmartConf vs hand-tuned AIMD heuristic",
	"ext-sla":       "Extension: p99-latency SLA goal",
	"ext-dist":      "Extension: per-node controllers in a 4-node cluster",
	"llmkv":         "Extension: LLM serving, KV-cache memory vs batched tokens",
	"chaos":         "Chaos: fault-injection matrix, invariant verdicts per substrate",
	"fleet":         "Fleet: coordinated per-node controllers vs static fleets under skew and instance loss",
}

// unknownArtifact builds the error text for an id that is not registered,
// listing every valid id so the caller does not need a second -list run.
func unknownArtifact(id string) string {
	ids := make([]string, 0, len(artifacts))
	for known := range artifacts {
		ids = append(ids, known)
	}
	sort.Strings(ids)
	return fmt.Sprintf("unknown artifact %q; valid ids:\n  %s\n", id, strings.Join(ids, "\n  "))
}

// renderArtifacts renders the given artifacts in order into one string —
// the unit the byte-identity test compares across worker counts.
func renderArtifacts(ids []string) (string, error) {
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "════════ %s ════════\n\n", titles[id])
		out, err := artifacts[id]()
		if err != nil {
			return "", fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(&b, out)
	}
	return b.String(), nil
}

// main delegates to run so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "render a single artifact (see -list)")
	list := flag.Bool("list", false, "list artifact ids and exit")
	scale := flag.Bool("scale", false, "run the raw-speed campaign instead of the paper artifacts")
	scaleRequests := flag.Int64("scale-requests", 10_000_000, "requests per substrate for -scale")
	csvDir := flag.String("csv", "", "also write the figure time series as CSV files into this directory")
	declogDir := flag.String("declog", "", "also export one decision-log envelope per chaos substrate into this directory (input for smartconf-replay)")
	parallel := flag.Int("parallel", engine.Workers(), "number of concurrent simulation workers")
	cacheDir := flag.String("cachedir", "", "persist simulation results in this directory and reuse them across runs")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	engine.SetWorkers(*parallel)

	if *cacheDir != "" {
		if err := experiments.EnablePersistentRunCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "cachedir: %v\n", err)
			return 1
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			return 1
		}
		fmt.Printf("wrote figure series CSVs to %s\n", *csvDir)
	}
	if *declogDir != "" {
		if err := writeDecisionLogs(*declogDir); err != nil {
			fmt.Fprintf(os.Stderr, "declog export: %v\n", err)
			return 1
		}
		fmt.Printf("wrote decision-log envelopes to %s\n", *declogDir)
	}

	if *list {
		ids := make([]string, 0, len(artifacts))
		for id := range artifacts {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-8s %s\n", id, titles[id])
		}
		return 0
	}

	if *scale {
		out := renderScale(*scaleRequests)
		fmt.Print(out)
		if *cacheDir != "" {
			executed, _ := experiments.RunCacheStats()
			loaded, written := experiments.PersistentRunCacheStats()
			fmt.Fprintf(os.Stderr, "run cache: %d simulated, %d loaded from %s, %d written\n",
				executed, loaded, *cacheDir, written)
		}
		return 0
	}

	ids := order
	if *only != "" {
		if _, ok := artifacts[*only]; !ok {
			fmt.Fprint(os.Stderr, unknownArtifact(*only))
			return 2
		}
		ids = []string{*only}
	}
	out, err := renderArtifacts(ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(out)
	if *cacheDir != "" {
		// To stderr so the rendered artifacts stay byte-identical with and
		// without the cache.
		executed, _ := experiments.RunCacheStats()
		loaded, written := experiments.PersistentRunCacheStats()
		fmt.Fprintf(os.Stderr, "run cache: %d simulated, %d loaded from %s, %d written\n",
			executed, loaded, *cacheDir, written)
	}
	return 0
}
