package main

import (
	"fmt"
	"os"
	"path/filepath"

	"smartconf/internal/experiments"
)

// writeCSVs exports the time series behind Figures 6–8 as CSV files, for
// replotting with any tool.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	f6 := experiments.BuildFigure6()
	if err := writeResultSeries(dir, "fig6_smartconf", f6.SmartConf); err != nil {
		return err
	}
	if err := writeResultSeries(dir, "fig6_static", f6.Static); err != nil {
		return err
	}

	f7 := experiments.BuildFigure7()
	for name, r := range map[string]experiments.Result{
		"fig7_smartconf":     f7.SmartConf,
		"fig7_singlepole":    f7.SinglePole,
		"fig7_novirtualgoal": f7.NoVirtualGoal,
	} {
		if err := writeResultSeries(dir, name, r); err != nil {
			return err
		}
	}

	lk := experiments.BuildFigureLLMKV()
	for _, bar := range lk.Bars {
		if bar.Label == "SmartConf" {
			if err := writeResultSeries(dir, "llmkv_smartconf", bar.Result); err != nil {
				return err
			}
		}
	}

	f8 := experiments.BuildFigure8()
	for name, s := range map[string]experiments.Series{
		"fig8_memory":    f8.Mem,
		"fig8_req_knob":  f8.ReqKnob,
		"fig8_resp_knob": f8.RespKnob,
	} {
		if err := writeSeries(filepath.Join(dir, name+".csv"), s); err != nil {
			return err
		}
	}
	return nil
}

func writeResultSeries(dir, prefix string, r experiments.Result) error {
	for _, s := range r.Series {
		name := fmt.Sprintf("%s_%s.csv", prefix, s.Name)
		if err := writeSeries(filepath.Join(dir, name), s); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(path string, s experiments.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "seconds,%s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(f, "%.3f,%g\n", p.T.Seconds(), p.V)
	}
	return nil
}
