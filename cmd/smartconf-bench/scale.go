package main

import (
	"fmt"
	"os"

	"smartconf/internal/benchgate"
	"smartconf/internal/experiments"
)

// renderScale runs the raw-speed campaign: each substrate's run executes
// sequentially (never fanned out — the wall measurements need the process to
// themselves) and the deterministic results render to one stdout artifact
// that is byte-identical at any worker count and fully cache-served on a
// warm -cachedir. The measured side — wall time, sustained requests/sec,
// heap allocations per request — prints to stderr so it never perturbs the
// artifact; cache-served runs show near-zero wall times there, which the
// run-cache summary line makes legible.
func renderScale(requests int64) string {
	results := make([]experiments.ScaleResult, 0, len(experiments.ScaleSubstrates))
	for _, substrate := range experiments.ScaleSubstrates {
		substrate := substrate
		var r experiments.ScaleResult
		wall, allocs := benchgate.Measure(func() {
			r = experiments.RunScale(substrate, requests)
		})
		results = append(results, r)
		fmt.Fprintf(os.Stderr, "scale %-8s %d requests in %v wall, %.0f req/s, %.3f allocs/request\n",
			substrate, r.Requests, wall, float64(r.Requests)/wall.Seconds(),
			float64(allocs)/float64(r.Requests))
	}
	return fmt.Sprintf("════════ Scale: raw-speed campaign (%d substrates × %d requests) ════════\n\n%s",
		len(results), requests, experiments.RenderScale(results))
}
