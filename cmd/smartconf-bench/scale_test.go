package main

import (
	"strings"
	"testing"

	"smartconf/internal/experiments"
	"smartconf/internal/experiments/engine"
)

// scaleTestRequests keeps the golden runs fast while still exercising every
// substrate's steady state (flush cycles, du traversals, multiple jobs).
const scaleTestRequests = 50_000

// TestScaleOutputByteIdenticalAcrossWorkerCounts extends the engine's
// headline guarantee to the raw-speed campaign: the -scale artifact is a pure
// function of the seed and request count, so worker-count changes (which the
// campaign ignores — substrates run sequentially for clean wall measurement)
// and cache state cannot move a byte of it.
func TestScaleOutputByteIdenticalAcrossWorkerCounts(t *testing.T) {
	prev := engine.SetWorkers(1)
	defer engine.SetWorkers(prev)
	experiments.ResetRunCache()
	seq := renderScale(scaleTestRequests)

	engine.SetWorkers(8)
	experiments.ResetRunCache()
	par := renderScale(scaleTestRequests)
	experiments.ResetRunCache()

	if seq != par {
		t.Errorf("-scale output differs between -parallel 1 and -parallel 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "rpc") || !strings.Contains(seq, "mapred") {
		t.Errorf("-scale output is missing substrates:\n%s", seq)
	}
}

// TestScaleWarmDiskCacheRunsZeroSimulations: after one cold -scale build into
// -cachedir, a fresh process re-renders the campaign from disk alone — zero
// simulations — and the artifact bytes match.
func TestScaleWarmDiskCacheRunsZeroSimulations(t *testing.T) {
	experiments.ResetRunCache()
	defer func() {
		experiments.EnablePersistentRunCache("")
		experiments.ResetRunCache()
	}()
	if err := experiments.EnablePersistentRunCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	cold := renderScale(scaleTestRequests)
	execCold, _ := experiments.RunCacheStats()
	if execCold == 0 {
		t.Fatal("cold -scale build executed no simulations")
	}

	experiments.ResetRunCache()
	warm := renderScale(scaleTestRequests)
	exec, _ := experiments.RunCacheStats()
	loaded, _ := experiments.PersistentRunCacheStats()
	if exec != 0 {
		t.Errorf("warm -scale rebuild executed %d simulations, want 0", exec)
	}
	if loaded == 0 {
		t.Error("warm -scale rebuild loaded nothing from the disk cache")
	}
	if warm != cold {
		t.Errorf("warm -scale rebuild differs from the cold build:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}
