// Command smartconf-study regenerates the paper's empirical-study tables
// (Tables 2–5 and the §2.2.1 post statistics) from the categorized dataset.
package main

import (
	"flag"
	"fmt"

	"smartconf/internal/study"
)

func main() {
	issues := flag.Bool("issues", false, "list the categorized issue dataset instead of the tables")
	flag.Parse()

	if *issues {
		listIssues()
		return
	}
	fmt.Println("Empirical study of performance-sensitive configurations (paper §2)")
	fmt.Println()
	fmt.Println("Table 2: study suite")
	fmt.Println(study.BuildTable2().Render())
	fmt.Println("Table 3: types of PerfConf patches")
	fmt.Println(study.BuildTable3().Render())
	fmt.Println("Table 4: how a PerfConf affects performance")
	fmt.Println(study.BuildTable4().Render())
	fmt.Println("Table 5: how to set PerfConfs")
	fmt.Println(study.BuildTable5().Render())

	s := study.BuildPostStats()
	fmt.Printf("§2.2.1 posts: %d total; %d (%.0f%%) ask how to set a PerfConf; %d (%.0f%%) concern OOM\n",
		s.Total,
		s.AsksHowToSet, 100*float64(s.AsksHowToSet)/float64(s.Total),
		s.MentionsOOM, 100*float64(s.MentionsOOM)/float64(s.Total))
}

func listIssues() {
	fmt.Println("Categorized PerfConf issue dataset (aggregates match the paper's Tables 2-5;")
	fmt.Println("synthetic rows carry representative configuration names)")
	fmt.Println()
	for _, i := range study.Issues() {
		flags := "always-on"
		if i.Conditional {
			flags = "conditional"
		}
		kind := "direct"
		if i.Indirect {
			kind = "indirect"
		}
		fmt.Printf("%-12s [%s] %s, %s, %s\n", i.ID, i.System.Abbrev(), i.Category, flags, kind)
		fmt.Printf("             %s\n", i.Title)
	}
}
