package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"smartconf/internal/declog"
	"smartconf/internal/experiments"
	"smartconf/internal/experiments/engine"
)

// buildPerturbs turns the flag values into the perturbation sweep: one
// counterfactual row per -pole value, plus one clamp-bound row when
// -clampmin/-clampmax is given. All rows apply from the same -from period.
func buildPerturbs(poles string, from uint64, clampMin, clampMax float64) ([]declog.Perturb, error) {
	var out []declog.Perturb
	if poles != "" {
		for _, f := range strings.Split(poles, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("-pole %q: %w", f, err)
			}
			if v < 0 || v >= 1 {
				return nil, fmt.Errorf("-pole %g outside [0,1) — Eq. 2 requires a stable pole", v)
			}
			out = append(out, declog.Perturb{FromPeriod: uint32(from), SetPole: true, Pole: v})
		}
	}
	if !math.IsNaN(clampMin) || !math.IsNaN(clampMax) {
		p := declog.Perturb{FromPeriod: uint32(from)}
		if !math.IsNaN(clampMin) {
			p.SetMin, p.Min = true, clampMin
		}
		if !math.IsNaN(clampMax) {
			p.SetMax, p.Max = true, clampMax
		}
		out = append(out, p)
	}
	return out, nil
}

// verifyEnvelope is the zero-perturbation identity check: replaying the
// envelope's coordinates with no perturbation must reproduce the decision
// log byte for byte. The comparison is on canonical encodings, so a log that
// was reformatted on disk still verifies as long as it parses.
func verifyEnvelope(env declog.Envelope, stdout io.Writer) error {
	rep, renv, err := experiments.ReplayEnvelope(env, declog.Perturb{})
	if err != nil {
		return err
	}
	want, err := declog.Encode(env)
	if err != nil {
		return fmt.Errorf("encoding input log: %w", err)
	}
	got, err := declog.Encode(renv)
	if err != nil {
		return fmt.Errorf("encoding replayed log: %w", err)
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("replay diverged from the logged run: %d vs %d bytes, run fingerprint %s vs logged %s",
			len(got), len(want), rep.Fingerprint, env.Fingerprint)
	}
	fmt.Fprintf(stdout, "verify: %s/%s seed %d replayed byte-identically (%d decisions, %d sources, fingerprint %s)\n",
		env.Substrate, env.Plan, env.Seed, env.Total, len(env.Sources), env.Fingerprint)
	return nil
}

// run is the whole tool behind a FlagSet: parse, load, verify and/or sweep,
// render. Returns the process exit code; 2 flags a usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smartconf-replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "decision-log envelope to replay (required; written by smartconf-bench -declog)")
	verify := fs.Bool("verify", false, "zero-perturbation check: the replay must reproduce the log byte-identically")
	poles := fs.String("pole", "", "comma-separated pole overrides, one counterfactual row each (e.g. 0.5,0.9,0.95)")
	from := fs.Uint64("from", 1, "first control period the perturbation applies to (1 = from the start)")
	clampMin := fs.Float64("clampmin", math.NaN(), "override the controller's lower clamp bound")
	clampMax := fs.Float64("clampmax", math.NaN(), "override the controller's upper clamp bound")
	outFile := fs.String("out", "", "write the counterfactual artifact to this file instead of stdout")
	parallel := fs.Int("parallel", engine.Workers(), "number of concurrent simulation workers")
	cacheDir := fs.String("cachedir", "", "persist counterfactual runs in this directory and reuse them across invocations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "smartconf-replay: -in is required (a decision-log envelope; see smartconf-bench -declog)")
		fs.Usage()
		return 2
	}
	perturbs, err := buildPerturbs(*poles, *from, *clampMin, *clampMax)
	if err != nil {
		fmt.Fprintf(stderr, "smartconf-replay: %v\n", err)
		return 2
	}
	if len(perturbs) == 0 && !*verify {
		fmt.Fprintln(stderr, "smartconf-replay: nothing to do — give -pole/-clampmin/-clampmax for a counterfactual sweep, or -verify for the identity check")
		return 2
	}

	engine.SetWorkers(*parallel)
	if *cacheDir != "" {
		if err := experiments.EnablePersistentRunCache(*cacheDir); err != nil {
			fmt.Fprintf(stderr, "smartconf-replay: cachedir: %v\n", err)
			return 1
		}
	}

	raw, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "smartconf-replay: %v\n", err)
		return 1
	}
	env, err := declog.Parse(raw)
	if err != nil {
		fmt.Fprintf(stderr, "smartconf-replay: %s: %v\n", *in, err)
		return 1
	}

	if *verify {
		if err := verifyEnvelope(env, stdout); err != nil {
			fmt.Fprintf(stderr, "smartconf-replay: verify: %v\n", err)
			return 1
		}
	}

	if len(perturbs) > 0 {
		base := experiments.CounterfactualChaos(env.Substrate, env.Plan, env.Seed, declog.Perturb{})
		rows, err := experiments.RunCounterfactuals(env, perturbs)
		if err != nil {
			fmt.Fprintf(stderr, "smartconf-replay: %v\n", err)
			return 1
		}
		artifact := experiments.RenderCounterfactuals(env, base, rows)
		if *outFile != "" {
			if err := os.WriteFile(*outFile, []byte(artifact), 0o644); err != nil {
				fmt.Fprintf(stderr, "smartconf-replay: %v\n", err)
				return 1
			}
		} else {
			fmt.Fprint(stdout, artifact)
		}
	}

	if *cacheDir != "" {
		// To stderr so the rendered artifact stays byte-identical with and
		// without the cache.
		executed, _ := experiments.RunCacheStats()
		loaded, written := experiments.PersistentRunCacheStats()
		fmt.Fprintf(stderr, "run cache: %d simulated, %d loaded from %s, %d written\n",
			executed, loaded, *cacheDir, written)
	}
	return 0
}
