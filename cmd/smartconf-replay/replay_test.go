package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartconf/internal/declog"
	"smartconf/internal/experiments"
	"smartconf/internal/experiments/engine"
)

// writeEnvelope captures one logged chaos run and serializes it where the
// tool expects its input — the same envelope smartconf-bench -declog writes.
func writeEnvelope(t *testing.T, substrate string, seed int64) string {
	t.Helper()
	_, env := experiments.RunChaosPropertyLogged(substrate, seed)
	b, err := declog.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), substrate+".declog.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The tool-level acceptance criterion: for every substrate, replaying a
// captured log with zero perturbations reproduces it byte-identically.
func TestVerifyZeroPerturbationAllSubstrates(t *testing.T) {
	for _, sub := range experiments.ChaosSubstrates() {
		t.Run(sub, func(t *testing.T) {
			in := writeEnvelope(t, sub, 2)
			var out, errb bytes.Buffer
			if code := run([]string{"-in", in, "-verify"}, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			if !strings.Contains(out.String(), "replayed byte-identically") {
				t.Errorf("verify output missing identity line:\n%s", out.String())
			}
		})
	}
}

// The counterfactual artifact is byte-identical whether the sweep ran
// sequentially or fanned out across 8 workers — same contract as every
// smartconf-bench artifact.
func TestArtifactByteIdenticalAcrossWorkerCounts(t *testing.T) {
	in := writeEnvelope(t, "HB3813", 3)
	prev := engine.Workers()
	defer engine.SetWorkers(prev)
	render := func(workers string) string {
		experiments.ResetRunCache()
		var out, errb bytes.Buffer
		args := []string{"-in", in, "-pole", "0.5,0.9,0.95", "-from", "2", "-parallel", workers}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
		}
		return out.String()
	}
	seq := render("1")
	par := render("8")
	experiments.ResetRunCache()
	if seq != par {
		t.Fatalf("artifact differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "artifact fingerprint") || !strings.Contains(seq, "pole=0.9") {
		t.Fatalf("artifact missing expected rows:\n%s", seq)
	}
}

// A warm -cachedir rebuild executes zero simulations: every counterfactual
// cell (and the baseline) comes back from disk, and the artifact matches the
// cold build exactly.
func TestWarmCacheDirRebuildsWithoutSimulating(t *testing.T) {
	in := writeEnvelope(t, "HB2149", 4)
	dir := t.TempDir()
	experiments.ResetRunCache()
	defer func() {
		experiments.EnablePersistentRunCache("")
		experiments.ResetRunCache()
	}()

	runOnce := func() string {
		var out, errb bytes.Buffer
		args := []string{"-in", in, "-pole", "0.5,0.9", "-cachedir", dir}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
		}
		return out.String()
	}
	cold := runOnce()
	execCold, _ := experiments.RunCacheStats()
	if execCold == 0 {
		t.Fatal("cold build executed no simulations")
	}

	// A fresh process is emulated by dropping the in-memory cache; the disk
	// layer (already enabled on dir) must satisfy every run.
	experiments.ResetRunCache()
	warm := runOnce()
	if exec, _ := experiments.RunCacheStats(); exec != 0 {
		t.Errorf("warm rebuild executed %d simulations, want 0", exec)
	}
	if loaded, _ := experiments.PersistentRunCacheStats(); loaded == 0 {
		t.Error("warm rebuild loaded nothing from the disk cache")
	}
	if warm != cold {
		t.Errorf("warm artifact differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

func TestOutFlagWritesArtifact(t *testing.T) {
	in := writeEnvelope(t, "HB3813", 3)
	outPath := filepath.Join(t.TempDir(), "delta.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"-in", in, "-pole", "0.9", "-out", outPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("-out still wrote the artifact to stdout:\n%s", out.String())
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Counterfactual replay") {
		t.Errorf("artifact file missing header:\n%s", b)
	}
}

func TestUsageAndInputErrors(t *testing.T) {
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	valid := writeEnvelope(t, "HB3813", 2)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no args", nil, 2},
		{"missing in", []string{"-verify"}, 2},
		{"no action", []string{"-in", valid}, 2},
		{"bad pole syntax", []string{"-in", valid, "-pole", "0.9,oops"}, 2},
		{"unstable pole", []string{"-in", valid, "-pole", "1.5"}, 2},
		{"unknown flag", []string{"-in", valid, "-frobnicate"}, 2},
		{"nonexistent file", []string{"-in", filepath.Join(t.TempDir(), "nope.json"), "-verify"}, 1},
		{"unparseable file", []string{"-in", garbage, "-verify"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.code {
				t.Errorf("exit %d, want %d; stderr:\n%s", code, tc.code, errb.String())
			}
		})
	}
}

func TestBuildPerturbs(t *testing.T) {
	got, err := buildPerturbs("0.5, 0.9", 3, math.NaN(), 40)
	if err != nil {
		t.Fatal(err)
	}
	want := []declog.Perturb{
		{FromPeriod: 3, SetPole: true, Pole: 0.5},
		{FromPeriod: 3, SetPole: true, Pole: 0.9},
		{FromPeriod: 3, SetMax: true, Max: 40},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d perturbs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("perturb %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if ps, err := buildPerturbs("", 1, math.NaN(), math.NaN()); err != nil || len(ps) != 0 {
		t.Errorf("empty flags: got %v, %v", ps, err)
	}
}
