// Command smartconf-replay is the offline decision-log analyzer: it loads a
// serialized decision-log envelope (written by smartconf-bench -declog),
// re-executes the logged run through the deterministic engine, and renders a
// counterfactual-delta artifact for a sweep of perturbed decisions — "what if
// the pole had been 0.9 from period 5?", "what if the clamp ceiling were
// lower?" — each row next to the logged baseline.
//
// Usage:
//
//	smartconf-replay -in HB3813.declog.json -verify            # byte-identity check
//	smartconf-replay -in HB3813.declog.json -pole 0.5,0.9,0.95 # pole counterfactuals
//	smartconf-replay -in ... -clampmax 40 -from 10             # bound override from period 10
//	smartconf-replay -in ... -pole 0.9 -cachedir /tmp/sc       # warm rebuilds simulate nothing
//
// Every row is a pure function of (substrate, plan, seed, perturbation): the
// artifact is byte-identical at any -parallel worker count, and a warm
// -cachedir rebuild executes zero simulations.
package main

import "os"

// main delegates to run so the testable half owns all control flow
// (os.Exit skips defers and is invisible to coverage).
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
