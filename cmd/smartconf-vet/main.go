// Command smartconf-vet runs the smartconf static-analysis suite
// (internal/lint): determinism, cachekey, floatcmp, guardedby, hotalloc,
// confbounds and seedflow — the machine-checked invariants behind the
// harness's byte-identical-output and zero-allocation guarantees.
//
// Standalone (from the module root):
//
//	smartconf-vet ./...
//	smartconf-vet -run determinism,floatcmp ./internal/...
//	smartconf-vet -allows ./...
//
// As a go vet tool (the binary speaks the vet unitchecker protocol):
//
//	go build -o /tmp/smartconf-vet ./cmd/smartconf-vet
//	go vet -vettool=/tmp/smartconf-vet ./...
//
// Exit status: 0 when clean, 1 on usage/load errors, 2 when diagnostics
// were reported. Individual findings are suppressed in source with
//
//	//smartconf:allow <analyzer> -- <reason>
//
// on the offending line or the line above (the reason is mandatory; a
// suppression without one is inert). -allows audits the escape hatch: it
// lists every suppression comment with its analyzers, justification and
// position, and exits 2 if any suppression lacks a reason.
//
// Under GitHub Actions (GITHUB_ACTIONS=true) findings are additionally
// emitted as ::error workflow commands so they surface as inline PR
// annotations.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"smartconf/internal/lint"
)

const version = "smartconf-vet version v1.0.0"

func main() {
	// `go vet -vettool` probes the tool before handing it package configs:
	// -V=full asks for an identity line (cached into build IDs) and -flags
	// for a JSON description of tool flags it may forward. Answer both
	// without touching the flag set.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Println(version)
			return
		case "-flags", "--flags":
			// No forwardable flags: the suite always runs in full.
			fmt.Println("[]")
			return
		}
	}

	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON (unitchecker mode)")
	allowsFlag := flag.Bool("allows", false, "audit //smartconf:allow suppressions instead of running analyzers")
	flag.Parse()

	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *allowsFlag {
		os.Exit(runAllows(flag.Args()))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], analyzers, *jsonFlag))
	}
	os.Exit(runStandalone(args, analyzers))
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("smartconf-vet: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone loads packages with the go tool and checks them all.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) int {
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			emitGitHubAnnotation(d.Pos, d.Analyzer+": "+d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "smartconf-vet: %d finding(s)\n", found)
		return 2
	}
	return 0
}

// runAllows audits every //smartconf:allow suppression in the matched
// packages: each is listed with its analyzers, position and justification,
// and suppressions missing the mandatory ` -- <reason>` tail fail the audit
// (they are inert at analysis time, so leaving one in place means the
// finding it meant to cover is either absent or un-suppressed).
func runAllows(patterns []string) int {
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	total, missing := 0, 0
	for _, pkg := range pkgs {
		for _, s := range lint.CollectAllowSites(pkg) {
			total++
			names := strings.Join(s.Analyzers, ",")
			if s.Reason == "" {
				missing++
				msg := fmt.Sprintf("allow %s has no reason (` -- <reason>` is mandatory; this suppression is inert)", names)
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", s.Pos.Filename, s.Pos.Line, msg)
				emitGitHubAnnotation(s.Pos, msg)
				continue
			}
			fmt.Printf("%s:%d: %s -- %s\n", s.Pos.Filename, s.Pos.Line, names, s.Reason)
		}
	}
	fmt.Printf("smartconf-vet: %d suppression(s)", total)
	if missing > 0 {
		fmt.Printf(", %d without a reason", missing)
	}
	fmt.Println()
	if missing > 0 {
		return 2
	}
	return 0
}

// emitGitHubAnnotation prints a ::error workflow command when running under
// GitHub Actions, so findings become inline annotations on the PR diff. The
// file path is made repo-relative (workflow commands resolve against the
// workspace root); positions outside the working tree are emitted as-is.
func emitGitHubAnnotation(pos token.Position, msg string) {
	if os.Getenv("GITHUB_ACTIONS") != "true" {
		return
	}
	file := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	fmt.Printf("::error file=%s,line=%d,col=%d::%s\n", file, pos.Line, pos.Column, msg)
}

// vetConfig is the package description `go vet` writes for each unit of
// work, mirroring x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package on behalf of `go vet -vettool`. The
// go command supplies export data for every dependency, so imports resolve
// through the compiler importer rather than from source.
func runUnitchecker(cfgPath string, analyzers []*lint.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "smartconf-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet requires the facts output file regardless of findings; the
	// suite exchanges no facts, so an empty gob stream suffices.
	if cfg.VetxOutput != "" {
		var empty struct{}
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		gob.NewEncoder(f).Encode(empty)
		f.Close()
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	pkg, err := lint.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.Check(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if asJSON {
		// {"package": {"analyzer": [{posn, message}]}}, the unitchecker shape.
		byAnalyzer := map[string][]map[string]string{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], map[string]string{
				"posn":    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				"message": d.Message,
			})
		}
		out, _ := json.MarshalIndent(map[string]any{cfg.ImportPath: byAnalyzer}, "", "\t")
		os.Stdout.Write(out)
		fmt.Println()
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
		emitGitHubAnnotation(d.Pos, d.Analyzer+": "+d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
