// Command smartconf-vet runs the smartconf static-analysis suite
// (internal/lint): determinism, cachekey, floatcmp and guardedby — the
// machine-checked invariants behind the harness's byte-identical-output
// guarantee.
//
// Standalone (from the module root):
//
//	smartconf-vet ./...
//	smartconf-vet -run determinism,floatcmp ./internal/...
//
// As a go vet tool (the binary speaks the vet unitchecker protocol):
//
//	go build -o /tmp/smartconf-vet ./cmd/smartconf-vet
//	go vet -vettool=/tmp/smartconf-vet ./...
//
// Exit status: 0 when clean, 1 on usage/load errors, 2 when diagnostics
// were reported. Individual findings are suppressed in source with
//
//	//smartconf:allow <analyzer> -- <reason>
//
// on the offending line or the line above (the reason is mandatory).
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"smartconf/internal/lint"
)

const version = "smartconf-vet version v1.0.0"

func main() {
	// `go vet -vettool` probes the tool before handing it package configs:
	// -V=full asks for an identity line (cached into build IDs) and -flags
	// for a JSON description of tool flags it may forward. Answer both
	// without touching the flag set.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Println(version)
			return
		case "-flags", "--flags":
			// No forwardable flags: the suite always runs in full.
			fmt.Println("[]")
			return
		}
	}

	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON (unitchecker mode)")
	flag.Parse()

	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], analyzers, *jsonFlag))
	}
	os.Exit(runStandalone(args, analyzers))
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("smartconf-vet: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone loads packages with the go tool and checks them all.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) int {
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "smartconf-vet: %d finding(s)\n", found)
		return 2
	}
	return 0
}

// vetConfig is the package description `go vet` writes for each unit of
// work, mirroring x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package on behalf of `go vet -vettool`. The
// go command supplies export data for every dependency, so imports resolve
// through the compiler importer rather than from source.
func runUnitchecker(cfgPath string, analyzers []*lint.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "smartconf-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet requires the facts output file regardless of findings; the
	// suite exchanges no facts, so an empty gob stream suffices.
	if cfg.VetxOutput != "" {
		var empty struct{}
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		gob.NewEncoder(f).Encode(empty)
		f.Close()
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	pkg, err := lint.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.Check(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if asJSON {
		// {"package": {"analyzer": [{posn, message}]}}, the unitchecker shape.
		byAnalyzer := map[string][]map[string]string{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], map[string]string{
				"posn":    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				"message": d.Message,
			})
		}
		out, _ := json.MarshalIndent(map[string]any{cfg.ImportPath: byAnalyzer}, "", "\t")
		os.Stdout.Write(out)
		fmt.Println()
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
