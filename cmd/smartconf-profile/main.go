// Command smartconf-profile runs the profiling campaign for one benchmark
// issue and writes the resulting "<conf>.SmartConf.sys" sample file — the
// §5.5 artifact a SmartConf-equipped system synthesizes its controller from.
//
// Usage:
//
//	smartconf-profile -issue HB3813 -out ./profiles
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"smartconf/internal/core"
	"smartconf/internal/experiments"
	"smartconf/internal/sysfile"
)

var profilers = map[string]struct {
	conf string
	run  func() core.Profile
}{
	"CA6059": {"memtable_total_space_in_mb", experiments.ProfileCA6059},
	"HB2149": {"global.memstore.lowerLimit", experiments.ProfileHB2149},
	"HB3813": {"ipc.server.max.queue.size", experiments.ProfileHB3813},
	"HB6728": {"ipc.server.response.queue.maxsize", experiments.ProfileHB6728},
	"HD4995": {"content-summary.limit", experiments.ProfileHD4995},
	"MR2820": {"local.dir.minspacestart", experiments.ProfileMR2820},
	"LLMKV":  {"max.num.batched.tokens", experiments.ProfileLLMKV},
}

// main delegates to run so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	issue := flag.String("issue", "", "benchmark issue id (CA6059, HB2149, HB3813, HB6728, HD4995, MR2820, LLMKV)")
	out := flag.String("out", ".", "directory for the <conf>.SmartConf.sys file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	p, ok := profilers[*issue]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown or missing -issue %q; choose one of:\n", *issue)
		ids := make([]string, 0, len(profilers))
		for id := range profilers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(os.Stderr, "  %s (%s)\n", id, profilers[id].conf)
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	profile := p.run()
	model, err := profile.Fit()
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling %s: %v\n", *issue, err)
		return 1
	}
	path := filepath.Join(*out, p.conf+".SmartConf.sys")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	if err := sysfile.EncodeProfile(f, profile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("profiled %s (%s): %d samples over %d settings\n",
		*issue, p.conf, profile.TotalSamples(), len(profile.Settings))
	fmt.Printf("  model: %v\n", model)
	fmt.Printf("  λ = %.4f  Δ = %.3f  pole = %.3f\n",
		profile.Lambda(), profile.Delta(), core.PoleFromDelta(profile.Delta()))
	fmt.Printf("  wrote %s\n", path)
	return 0
}
