// filebased: the complete §5.5 lifecycle through the Manager and SmartConf's
// on-disk formats — the workflow a deployed system follows across restarts:
//
//  1. First launch, profiling enabled in SmartConf.sys: the configuration
//     is pinned at a few settings while SetPerf records samples; the Manager
//     flushes them to "<conf>.SmartConf.sys".
//  2. Second launch, profiling disabled: the Manager reads the sample file,
//     synthesizes the controller, and the knob adjusts itself.
//
// Run with: go run ./examples/filebased
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"smartconf"
)

const mb = float64(1 << 20)

const sysTemplate = `
/* SmartConf.sys — developer-owned */
cache.size.limit @ memory_consumption
cache.size.limit = 0
cache.size.limit.max = 1000000
%s
`

const goalsFile = `
/* user-owned goals */
memory_consumption.goal = 268435456  /* 256 MB */
memory_consumption.goal.hard = 1
`

// cacheServer is the plant: heap = base + ~64 KB per cache entry.
type cacheServer struct {
	entries float64
	limit   float64
	rng     uint64
}

func (c *cacheServer) noise() float64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return (float64(c.rng%600)/100 - 3) * mb
}

func (c *cacheServer) heap() float64 { return 32*mb + c.entries*64*1024 + c.noise() }

func (c *cacheServer) tick(inserted, evicted float64) {
	c.entries += inserted
	if c.entries > c.limit {
		c.entries = c.limit
	}
	c.entries -= evicted
	if c.entries < 0 {
		c.entries = 0
	}
}

func main() {
	dir, err := os.MkdirTemp("", "smartconf-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// ----- First launch: profiling mode -----
	fmt.Println("launch 1: profiling = 1 — the knob is pinned, samples are recorded")
	mgr, err := smartconf.NewManager(
		strings.NewReader(fmt.Sprintf(sysTemplate, "profiling = 1")),
		strings.NewReader(goalsFile),
	)
	if err != nil {
		panic(err)
	}
	sc, err := mgr.IndirectConf("cache.size.limit", nil)
	if err != nil {
		panic(err)
	}
	srv := &cacheServer{rng: 5}
	for _, setting := range []float64{500, 1500, 2500, 3500} {
		sc.PinValue(setting)
		srv.limit = setting
		for i := 0; i < 10; i++ {
			srv.tick(setting, 50)
			sc.SetPerf(srv.heap(), srv.entries) // recorded, not controlled
		}
	}
	if err := mgr.FlushProfiles(dir); err != nil {
		panic(err)
	}
	path := filepath.Join(dir, "cache.size.limit.SmartConf.sys")
	data, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  flushed %d sample lines to %s\n\n", strings.Count(string(data), "sample"), filepath.Base(path))

	// ----- Second launch: control mode -----
	fmt.Println("launch 2: profiling = 0 — the controller synthesizes from the file")
	mgr2, err := smartconf.NewManager(
		strings.NewReader(fmt.Sprintf(sysTemplate, "")),
		strings.NewReader(goalsFile),
		smartconf.WithProfileDir(dir),
	)
	if err != nil {
		panic(err)
	}
	sc2, err := mgr2.IndirectConf("cache.size.limit", nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  goal %.0f MB, virtual goal %.0f MB, pole %.2f\n\n",
		sc2.Goal()/mb, sc2.VirtualGoal()/mb, sc2.Pole())

	srv2 := &cacheServer{rng: 5}
	fmt.Printf("%6s %10s %10s %10s\n", "tick", "entries", "limit", "heap MB")
	for tick := 1; tick <= 30; tick++ {
		sc2.SetPerf(srv2.heap(), srv2.entries)
		srv2.limit = float64(sc2.Conf())
		srv2.tick(600, 100)
		if tick%5 == 0 {
			fmt.Printf("%6d %10.0f %10.0f %10.1f\n", tick, srv2.entries, srv2.limit, srv2.heap()/mb)
		}
		if srv2.heap() > 256*mb {
			fmt.Println("!!! hard goal violated")
		}
	}
	fmt.Println("\nthe cache filled to exactly the entries the 256 MB budget allows —")
	fmt.Println("no one ever picked a number for cache.size.limit.")
}
