// adaptive: two library extensions beyond the paper's core —
//
//  1. profile diagnostics (§6.6): SmartConf refuses to pretend a U-shaped
//     plant is linear; Diagnose tells you before production does;
//  2. online model refinement (§7's future-work direction): Spec.Adaptive
//     attaches a recursive-least-squares estimator, so a plant whose gain
//     drifts after profiling is re-learned on the fly.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"

	"smartconf"
)

func main() {
	// --- Part 1: diagnostics ---
	fmt.Println("part 1: profile diagnostics (§6.6)")
	uShaped := smartconf.NewProfile().
		Add(1, 90, 91, 89). // few chunks: slow (load imbalance)
		Add(2, 40, 41, 39).
		Add(3, 36, 35, 37). // the sweet spot
		Add(4, 80, 81, 79)  // many chunks: slow again (no batching)
	fmt.Println("  a distcp-style U-shaped plant (the paper's MR5420 example):")
	for _, w := range uShaped.Diagnose() {
		fmt.Printf("    warning — %s\n", w)
	}
	fmt.Println()

	// --- Part 2: adaptation ---
	fmt.Println("part 2: online model refinement (§7)")
	// The plant: heap = gain · buffered items. Profiled at gain 1.0; the
	// gain doubles mid-run (items get bigger).
	gain := 1.0
	items := 0.0
	// A clean profile: Δ = 1 ⇒ deadbeat pole. (A noisy profile would raise
	// the pole and absorb the coming drift by §5.1 — run the abl-pole
	// artifact to see that effect; here we isolate the model itself.)
	profile := smartconf.NewProfile()
	for _, s := range []float64{50, 100, 150, 200} {
		profile.Add(s, s, s, s)
	}

	run := func(adaptive bool) (ringing float64, alpha float64) {
		sc, err := smartconf.New(smartconf.Spec{
			Name:     "buffer.max",
			Metric:   "heap_mb",
			Goal:     400,
			Adaptive: adaptive,
			Min:      1, Max: 10_000,
		}, profile)
		if err != nil {
			panic(err)
		}
		gain, items = 1.0, 0
		var lo, hi float64 = 1e18, 0
		for tick := 1; tick <= 160; tick++ {
			if tick == 40 {
				gain = 2.0 // the drift: every buffered item now costs double
			}
			heap := gain * items
			if tick > 120 { // the late window: has the loop settled?
				if heap < lo {
					lo = heap
				}
				if heap > hi {
					hi = heap
				}
			}
			sc.SetPerf(heap)
			items = sc.Value()
		}
		return hi - lo, sc.ModelAlpha()
	}

	ringFixed, alphaFixed := run(false)
	ringAdaptive, alphaAdaptive := run(true)
	fmt.Printf("  fixed model:    late ringing %.0f MB peak-to-peak, believes α = %.2f\n", ringFixed, alphaFixed)
	fmt.Printf("  adaptive (RLS): late ringing %.0f MB peak-to-peak, learned  α = %.2f (true 2.0)\n",
		ringAdaptive, alphaAdaptive)
	fmt.Println("\nwith the profiled gain now 2x wrong, the fixed-model deadbeat loop is")
	fmt.Println("marginally stable — it oscillates forever; the adaptive one re-learns")
	fmt.Println("the slope and settles.")
}
