// kvstore: the CA6059 story — sizing a write buffer (memtable) under a hard
// memory goal while another heap consumer grows underneath it.
//
// A static memtable threshold faces an impossible choice: size it for
// today's quiet heap and it OOMs when the read cache warms up; size it for
// the warmed-up cache and every quiet hour is wasted on needless flushes.
// SmartConf shrinks the buffer exactly when — and only when — the cache
// actually grows.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"

	"smartconf"
)

const (
	mb       = float64(1 << 20)
	heapCap  = 512 * mb
	heapGoal = 480 * mb
	baseHeap = 48 * mb
)

// store is the plant: heap = base + memtable + cache (+ wobble). Writes fill
// the memtable; when it reaches the threshold it flushes (drains over a few
// ticks, costing write latency while active).
type store struct {
	memtable  float64
	flushing  float64
	threshold float64 // the knob (memtable_total_space)
	cache     float64
	rng       uint64

	flushes int
	penalty int // ticks during which writes paid the flush penalty
}

func (st *store) noise() float64 {
	st.rng ^= st.rng << 13
	st.rng ^= st.rng >> 7
	st.rng ^= st.rng << 17
	return (float64(st.rng%800)/100 - 4) * mb
}

func (st *store) heap() float64 {
	return baseHeap + st.memtable + st.flushing + st.cache + st.noise()
}

// tick ingests writeMB of writes and advances any flush by drainMB.
func (st *store) tick(writeMB, drainMB float64) {
	st.memtable += writeMB * mb
	if st.flushing > 0 {
		st.penalty++ // writes are slower while a flush runs
		st.flushing -= drainMB * mb
		if st.flushing < 0 {
			st.flushing = 0
		}
	}
	if st.flushing == 0 && st.memtable+st.flushing >= st.threshold/2 && st.memtable > 0 {
		st.flushing = st.memtable // freeze and flush the active segment
		st.memtable = 0
		st.flushes++
	}
}

func main() {
	st := &store{rng: 99}

	profile, err := smartconf.DefaultPlan(32*mb, 320*mb, 4).Run(func(setting float64) (float64, error) {
		st.threshold = setting
		st.tick(12, 48)
		return st.heap(), nil
	})
	if err != nil {
		panic(err)
	}

	sc, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "memtable_total_space_in_mb",
		Metric: "memory_consumption",
		Goal:   heapGoal,
		Hard:   true,
		Min:    8 * mb, Max: heapCap,
	}, profile, nil)
	if err != nil {
		panic(err)
	}

	*st = store{rng: 99}
	fmt.Printf("goal %.0f MB (hard); virtual goal %.0f MB; pole %.2f\n\n",
		heapGoal/mb, sc.VirtualGoal()/mb, sc.Pole())
	fmt.Printf("%6s %10s %12s %12s %10s\n", "tick", "cache MB", "memtable MB", "threshold", "heap MB")

	violations := 0
	for tick := 1; tick <= 120; tick++ {
		// Disturbance: from tick 40 the read cache warms toward 256 MB.
		if tick > 40 && st.cache < 256*mb {
			st.cache += 6 * mb
		}
		sc.SetPerf(st.heap(), st.memtable+st.flushing) // sensor + deputy
		st.threshold = sc.Value()
		st.tick(12, 48)
		if st.heap() > heapCap {
			fmt.Println("!!! OOM")
			return
		}
		if st.heap() > heapGoal {
			violations++
		}
		if tick%10 == 0 {
			fmt.Printf("%6d %10.0f %12.0f %12.0f %10.0f\n",
				tick, st.cache/mb, (st.memtable+st.flushing)/mb, st.threshold/mb, st.heap()/mb)
		}
	}
	fmt.Printf("\n%d flushes, %d penalized ticks, %d goal excursions —\n",
		st.flushes, st.penalty, violations)
	fmt.Println("the memtable gave back exactly the heap the cache claimed, no OOM, no restart.")
}
