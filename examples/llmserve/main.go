// llmserve: SmartConf on an LLM inference server. The knob is
// max.num.batched.tokens — the continuous-batching scheduler's admission
// bound — and the goal is hard: GPU memory must stay under budget, because a
// KV-cache allocation that does not fit kills the process.
//
// The subtlety that defeats static tuning: the bound counts PROMPT tokens,
// but every admitted chat prompt drags roughly twice its size in decode KV
// behind it as the answer streams out. The controller never needs that
// arithmetic spelled out — it was profiled on chat traffic, and the §5.3
// indirect-configuration update re-anchors on the measured prompt-resident
// bytes each round.
//
// The demo then exercises SetGoal: mid-run an administrator carves 3GiB out
// of the GPU budget (say, a second tenant arrives). The controller walks the
// bound down and re-converges on the new budget without a restart.
//
// Run with: go run ./examples/llmserve
package main

import (
	"fmt"
	"time"

	"smartconf"
	"smartconf/internal/llmserve"
	"smartconf/internal/memsim"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

const (
	gib         = int64(1) << 30
	deviceBytes = 16 * gib
	goalBytes   = 15 * gib // engineered margin below the device
	shrunkGoal  = 12 * gib // after the administrator's mid-run cut
	cutAt       = 3 * time.Minute
	runFor      = 6 * time.Minute
)

// chat is the production mix: short questions, long answers. The profiling
// mix keeps the same shape but enough pressure to saturate every pinned
// setting — an unsaturated setting records demand, not the knob's effect.
var (
	chat      = workload.LLMPhase{RequestsPerSec: 60, PromptMean: 150, OutputMean: 300}
	profiling = workload.LLMPhase{RequestsPerSec: 100, PromptMean: 150, OutputMean: 300}
)

// drive feeds Poisson arrivals from a seeded generator until the deadline.
func drive(s *sim.Simulation, sv *llmserve.Server, seed int64, phase workload.LLMPhase, until time.Duration) {
	gen := workload.NewLLMGen(seed, phase)
	var next func()
	next = func() {
		if s.Now() >= until {
			return
		}
		sv.Offer(gen.NextRequest())
		s.After(gen.NextInterarrival(), next)
	}
	s.After(0, next)
}

// profiler measures GPU heap against a pinned token bound, one fresh
// simulated serving run per setting (the paper's offline campaign, on a
// machine without the production memory budget).
type profiler struct {
	setting float64
	s       *sim.Simulation
	heap    *memsim.Heap
}

func (p *profiler) measure(setting float64) (float64, error) {
	if p.s == nil || setting != p.setting {
		p.setting = setting
		p.s = sim.NewWithCapacity(64)
		p.heap = memsim.NewHeap(64 * gib)
		sv := llmserve.New(p.s, p.heap, llmserve.DefaultConfig())
		sv.SetMaxBatchedTokens(int(setting))
		drive(p.s, sv, 11, profiling, time.Hour)
		p.s.RunUntil(30 * time.Second) // settle: the batch fills to its bound
	}
	p.s.RunUntil(p.s.Now() + 4*time.Second)
	return float64(p.heap.Used()), nil
}

func main() {
	cfg := llmserve.DefaultConfig()
	kvb := float64(cfg.KVBytesPerToken)

	fmt.Println("── profiling max.num.batched.tokens offline (chat traffic) ──")
	var prof profiler
	profile, err := smartconf.DefaultPlan(16384*kvb, 65536*kvb, 4).Run(func(setting float64) (float64, error) {
		return prof.measure(setting / kvb) // campaign runs in deputy units: prompt-KV bytes
	})
	if err != nil {
		panic(err)
	}

	// The deputy is prompt-resident KV bytes; the transducer turns the
	// controller's desired bytes into the scheduler's token bound.
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:    "max.num.batched.tokens",
		Metric:  "gpu_memory_consumption",
		Goal:    float64(goalBytes),
		Hard:    true,
		Initial: 0, // start closed; the controller opens the batch to fit
		Min:     0, Max: float64(deviceBytes),
	}, profile, smartconf.Scale(1/kvb))
	if err != nil {
		panic(err)
	}
	fmt.Printf("synthesized: α=%.2f heap bytes per prompt-KV byte, pole=%.2f, virtual goal %.2fGiB\n\n",
		ic.ModelAlpha(), ic.Pole(), ic.VirtualGoal()/float64(gib))

	// Pre-sized queue: this run never holds more than a few dozen pending
	// events (arrival chain, step timer, two Every loops), so one up-front
	// allocation covers the whole campaign.
	s := sim.NewWithCapacity(64)
	heap := memsim.NewHeap(deviceBytes)
	sv := llmserve.New(s, heap, cfg)
	heap.OnOOM(func() { fmt.Printf("%6s  *** OOM ***\n", s.Now()) })

	// The control loop: slower than the plant — an admitted prompt commits
	// decode KV that lands over the next several seconds.
	s.Every(0, 15*time.Second, func() bool {
		ic.SetPerf(float64(heap.Used()), float64(sv.PromptTokens())*kvb)
		sv.SetMaxBatchedTokens(ic.Conf())
		return s.Now() < runFor
	})

	// t=3m: an administrator hands 3GiB of the device to another tenant.
	s.After(cutAt, func() {
		fmt.Printf("%6s  ── admin: SetGoal %dGiB → %dGiB ──\n",
			s.Now(), goalBytes/gib, shrunkGoal/gib)
		ic.SetGoal(float64(shrunkGoal))
	})

	s.Every(30*time.Second, 30*time.Second, func() bool {
		fmt.Printf("%6s  heap %5.2fGiB (goal %2dGiB)  bound %6d tok  goodput %7.0f tok/s\n",
			s.Now(), float64(heap.Used())/float64(gib), int(ic.Goal())/int(gib),
			sv.MaxBatchedTokens(), sv.Goodput())
		return s.Now() < runFor
	})

	drive(s, sv, 9, chat, runFor)
	s.RunUntil(runFor)

	fmt.Printf("\ncompleted %d requests, %d evictions, crashed=%v\n",
		sv.Completed(), sv.Evictions(), sv.Crashed())
}
