// rpcqueue: the HB3813 story on a miniature RPC server — a bounded call
// queue whose payloads pin heap memory — demonstrating two run-time
// features of the public API:
//
//   - SetGoal: an administrator tightens the memory budget mid-run and the
//     controller follows without a restart;
//   - unreachable-goal alerts: when the administrator then demands the
//     impossible, SmartConf keeps making best effort and says so.
//
// Run with: go run ./examples/rpcqueue
package main

import (
	"fmt"
	"time"

	"smartconf"
)

const mb = float64(1 << 20)

// rpcServer is the plant: heap = base + 2 MB per queued call, with a wobble.
type rpcServer struct {
	queue float64 // calls waiting (the deputy variable)
	limit float64 // max.queue.size (the knob)
	base  float64
	rng   uint64
}

func (s *rpcServer) noise() float64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return (float64(s.rng%1000)/100 - 5) * mb
}

func (s *rpcServer) heap() float64 { return s.base + s.queue*2*mb + s.noise() }

func (s *rpcServer) tick(arrivals, served float64) {
	s.queue += arrivals
	if s.queue > s.limit {
		s.queue = s.limit // admission control: the knob at work
	}
	s.queue -= served
	if s.queue < 0 {
		s.queue = 0
	}
}

func main() {
	srv := &rpcServer{base: 96 * mb, rng: 7}

	// Profile the knob → heap relationship.
	profile, err := smartconf.DefaultPlan(10, 120, 4).Run(func(setting float64) (float64, error) {
		srv.limit = setting
		srv.tick(setting+10, 4)
		return srv.heap(), nil
	})
	if err != nil {
		panic(err)
	}

	sc, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "ipc.server.max.queue.size",
		Metric: "memory_consumption",
		Goal:   512 * mb,
		Hard:   true,
		Min:    0, Max: 100_000,
	}, profile, nil,
		smartconf.WithAlert(func(a smartconf.Alert) {
			fmt.Printf("  ALERT: %v\n", a)
		}),
		smartconf.WithAlertThreshold(5),
	)
	if err != nil {
		panic(err)
	}

	srv.queue, srv.limit = 0, 0
	run := func(ticks int) {
		for i := 0; i < ticks; i++ {
			sc.SetPerf(srv.heap(), srv.queue)
			srv.limit = float64(sc.Conf())
			srv.tick(60, 30)
		}
		fmt.Printf("  heap %.0f MB, queue %.0f calls, limit %.0f (goal %.0f MB, virtual %.0f MB)\n",
			srv.heap()/mb, srv.queue, srv.limit, sc.Goal()/mb, sc.VirtualGoal()/mb)
	}

	fmt.Println("phase 1: goal 512 MB")
	run(40)

	fmt.Println("phase 2: administrator tightens the goal to 256 MB (sc.SetGoal)")
	sc.SetGoal(256 * mb)
	run(40)

	fmt.Println("phase 3: the goal drops below the server's base footprint — unreachable")
	sc.SetGoal(64 * mb) // base alone is 96 MB; no queue bound can satisfy this
	run(40)
	time.Sleep(100 * time.Millisecond) // alerts are delivered asynchronously
	fmt.Println("SmartConf pinned the knob at its minimum, kept serving, and raised the alert.")
}
