// Quickstart: bound a queue so memory stays under a hard limit.
//
// The toy server below queues incoming jobs; every queued job pins ~1 MB of
// heap. The operator's requirement is "heap stays under 256 MB, hard" — but
// nobody knows the right max-queue-length for every workload. SmartConf's
// answer: profile briefly, declare the goal, and let a synthesized
// controller move the knob.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"smartconf"
)

const (
	mb       = float64(1 << 20)
	heapGoal = 256 * mb
	baseHeap = 64 * mb
)

// jobQueue is the plant: heap consumption is base + ~1 MB per queued job,
// plus a fluctuating footprint from "everything else" in the process.
type jobQueue struct {
	len   float64
	limit float64
	rng   uint64
}

// noise is a deterministic ±8 MB wobble (a tiny xorshift PRNG so the example
// has no dependencies and reproduces exactly).
func (q *jobQueue) noise() float64 {
	q.rng ^= q.rng << 13
	q.rng ^= q.rng >> 7
	q.rng ^= q.rng << 17
	return (float64(q.rng%1600)/100 - 8) * mb
}

func (q *jobQueue) heapUsed() float64 { return baseHeap + q.len*mb + q.noise() }

// step simulates one tick: `arrived` jobs try to enter (bounded by the
// limit), `served` jobs leave.
func (q *jobQueue) step(arrived, served float64) {
	q.len += arrived
	if q.len > q.limit {
		q.len = q.limit
	}
	q.len -= served
	if q.len < 0 {
		q.len = 0
	}
}

func main() {
	// 1. Profile: pin the knob at a few settings and record the metric.
	//    (In a real system this runs against the live plant; the paper's
	//    default plan is 4 settings × 10 measurements.)
	q := &jobQueue{rng: 42}
	plan := smartconf.DefaultPlan(10, 160, 4)
	profile, err := plan.Run(func(setting float64) (float64, error) {
		q.limit = setting
		q.step(setting+20, 5) // saturate the queue at this bound
		return q.heapUsed(), nil
	})
	if err != nil {
		panic(err)
	}

	// 2. Declare the configuration: which metric it affects and the user's
	//    goal. "Hard" engages the virtual goal + two-pole protection.
	sc, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "max.queue.size",
		Metric: "heap_used",
		Goal:   heapGoal,
		Hard:   true,
		Min:    0, Max: 10_000,
	}, profile, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("synthesized controller: pole %.3f, virtual goal %.0f MB (goal %.0f MB)\n\n",
		sc.Pole(), sc.VirtualGoal()/mb, heapGoal/mb)

	// 3. Run: at every admission point, feed the sensor and read the knob —
	//    the paper's setPerf/getConf pair. The workload surges mid-run; the
	//    knob follows.
	q.len, q.limit = 0, 0
	fmt.Printf("%6s %12s %12s %12s\n", "tick", "arrivals", "heap MB", "limit")
	for tick := 1; tick <= 30; tick++ {
		arrivals, served := 40.0, 25.0
		if tick > 15 { // surge: jobs arrive twice as fast
			arrivals = 80
		}
		sc.SetPerf(q.heapUsed(), q.len) // sensor + deputy (queue length)
		q.limit = float64(sc.Conf())    // controller-adjusted bound
		q.step(arrivals, served)
		fmt.Printf("%6d %12.0f %12.1f %12.0f\n", tick, arrivals, q.heapUsed()/mb, q.limit)
		if q.heapUsed() > heapGoal {
			fmt.Println("!!! hard goal violated")
		}
	}
	fmt.Printf("\nheap stayed under the %.0f MB goal through the surge;\n", heapGoal/mb)
	fmt.Println("the queue bound adapted instead of being guessed at deploy time.")
}
