// multiconf: two PerfConfs share one super-hard memory goal (the paper's
// Figure 8 situation) — a request queue and a response queue on the same
// heap — wired through the file-driven Manager:
//
//   - the developer-owned system file binds both knobs to the
//     "memory_consumption" metric;
//   - the user-owned goals file declares a single super-hard goal;
//   - the Manager counts the knobs sharing the goal and engages the §5.4
//     interaction factor (N=2) so the two controllers split the error
//     instead of both grabbing all remaining headroom.
//
// Run with: go run ./examples/multiconf
package main

import (
	"fmt"
	"strings"

	"smartconf"
)

const mb = float64(1 << 20)

const sysFile = `
/* SmartConf.sys — developer-owned */
request.queue.max @ memory_consumption
request.queue.max = 0
request.queue.max.max = 100000

response.queue.max @ memory_consumption
response.queue.max = 0
response.queue.max.max = 100000
`

const goalsFile = `
/* user-owned goals */
memory_consumption.goal = 402653184  /* 384 MB */
memory_consumption.goal.superhard = 1
`

// server is the plant: heap = base + 1 MB per queued request + 1 MB per
// queued response, with a wobble.
type server struct {
	reqQ, respQ         float64
	reqLimit, respLimit float64
	rng                 uint64
}

func (s *server) noise() float64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return (float64(s.rng%800)/100 - 4) * mb
}

func (s *server) heap() float64 { return 64*mb + (s.reqQ+s.respQ)*mb + s.noise() }

func (s *server) tick(reqIn, respIn, served float64) {
	s.reqQ = min(s.reqQ+reqIn, s.reqLimit)
	s.respQ = min(s.respQ+respIn, s.respLimit)
	s.reqQ = max(s.reqQ-served, 0)
	s.respQ = max(s.respQ-served, 0)
}

func main() {
	srv := &server{rng: 11}

	// One shared profiling routine: each knob's profile relates its own
	// queue bound to total heap.
	profileFor := func(which *float64, other *float64) *smartconf.Profile {
		p, err := smartconf.DefaultPlan(10, 120, 4).Run(func(setting float64) (float64, error) {
			*which = setting
			*other = 40
			srv.tick(200, 200, 10)
			return srv.heap(), nil
		})
		if err != nil {
			panic(err)
		}
		return p
	}
	reqProfile := profileFor(&srv.reqLimit, &srv.respLimit)
	respProfile := profileFor(&srv.respLimit, &srv.reqLimit)

	mgr, err := smartconf.NewManager(
		strings.NewReader(sysFile),
		strings.NewReader(goalsFile),
		smartconf.WithProfileSource(func(conf string) (*smartconf.Profile, error) {
			if conf == "request.queue.max" {
				return reqProfile, nil
			}
			return respProfile, nil
		}),
	)
	if err != nil {
		panic(err)
	}
	reqConf, err := mgr.IndirectConf("request.queue.max", nil)
	if err != nil {
		panic(err)
	}
	respConf, err := mgr.IndirectConf("response.queue.max", nil)
	if err != nil {
		panic(err)
	}

	*srv = server{rng: 11}
	fmt.Println("two knobs, one super-hard goal of 384 MB — interaction factor N=2")
	fmt.Printf("%6s %10s %10s %12s %12s %10s\n",
		"tick", "reqQ", "respQ", "req.limit", "resp.limit", "heap MB")
	for tick := 1; tick <= 60; tick++ {
		// Write-heavy first; reads (responses) surge from tick 30.
		reqIn, respIn := 50.0, 5.0
		if tick > 30 {
			reqIn, respIn = 5, 80 // read surge: responses now dominate
		}
		reqConf.SetPerf(srv.heap(), srv.reqQ)
		srv.reqLimit = float64(reqConf.Conf())
		respConf.SetPerf(srv.heap(), srv.respQ)
		srv.respLimit = float64(respConf.Conf())
		srv.tick(reqIn, respIn, 15)
		if srv.heap() > 384*mb {
			fmt.Printf("!!! goal exceeded at tick %d\n", tick)
		}
		if tick%6 == 0 {
			fmt.Printf("%6d %10.0f %10.0f %12.0f %12.0f %10.0f\n",
				tick, srv.reqQ, srv.respQ, srv.reqLimit, srv.respLimit, srv.heap()/mb)
		}
	}
	fmt.Println("\nwhen the read surge arrived, the request bound yielded heap to the")
	fmt.Println("response queue; the shared goal was never violated.")
}
