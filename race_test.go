package smartconf

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentControlLoopIsRaceFree hammers one Manager from the three
// places a deployed controller is touched concurrently — sensor threads
// feeding measurements, actuator threads reading adjusted settings, and an
// administrator retargeting goals — with a trace hook installed, so `go
// test -race` can prove the locking story. The assertions are deliberately
// loose; the interleaving, not the arithmetic, is under test.
func TestConcurrentControlLoopIsRaceFree(t *testing.T) {
	var traced atomic.Int64
	m := newTestManager(t, WithConfOptions(WithTrace(func(TraceEvent) {
		traced.Add(1)
	})))
	c, err := m.Conf("max.queue.size")
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.IndirectConf("response.queue.maxsize", Identity())
	if err != nil {
		t.Fatal(err)
	}

	const iters = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	spawn := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				f(i)
			}
		}()
	}

	for g := 0; g < 3; g++ {
		spawn(func(i int) { c.SetPerf(400 + float64(i%100)) })
		spawn(func(i int) { ic.SetPerf(400+float64(i%100), float64(i%200)) })
		spawn(func(i int) { _ = c.Conf(); _ = c.Value() })
		spawn(func(i int) { _ = ic.Conf(); _ = ic.Value() })
	}
	spawn(func(i int) {
		if err := m.SetGoal("queue_memory", 480+float64(i%30)); err != nil {
			t.Error(err)
		}
	})
	spawn(func(i int) {
		for _, s := range m.Snapshots() {
			_ = s.Name
		}
	})

	close(start)
	wg.Wait()

	if traced.Load() == 0 {
		t.Error("trace hook never fired under concurrent updates")
	}
	if v := c.Value(); v < 0 || v > 5000 {
		t.Errorf("setting %v escaped [min, max] under concurrency", v)
	}
}
