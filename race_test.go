package smartconf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"smartconf/internal/declog"
	"smartconf/internal/experiments/engine"
)

// TestConcurrentControlLoopIsRaceFree hammers one Manager from the three
// places a deployed controller is touched concurrently — sensor threads
// feeding measurements, actuator threads reading adjusted settings, and an
// administrator retargeting goals — with a trace hook installed, so `go
// test -race` can prove the locking story. The assertions are deliberately
// loose; the interleaving, not the arithmetic, is under test.
func TestConcurrentControlLoopIsRaceFree(t *testing.T) {
	var traced atomic.Int64
	m := newTestManager(t, WithConfOptions(WithTrace(func(TraceEvent) {
		traced.Add(1)
	})))
	c, err := m.Conf("max.queue.size")
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.IndirectConf("response.queue.maxsize", Identity())
	if err != nil {
		t.Fatal(err)
	}

	const iters = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	spawn := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				f(i)
			}
		}()
	}

	for g := 0; g < 3; g++ {
		spawn(func(i int) { c.SetPerf(400 + float64(i%100)) })
		spawn(func(i int) { ic.SetPerf(400+float64(i%100), float64(i%200)) })
		spawn(func(i int) { _ = c.Conf(); _ = c.Value() })
		spawn(func(i int) { _ = ic.Conf(); _ = ic.Value() })
	}
	spawn(func(i int) {
		if err := m.SetGoal("queue_memory", 480+float64(i%30)); err != nil {
			t.Error(err)
		}
	})
	spawn(func(i int) {
		for _, s := range m.Snapshots() {
			_ = s.Name
		}
	})

	close(start)
	wg.Wait()

	if traced.Load() == 0 {
		t.Error("trace hook never fired under concurrent updates")
	}
	if v := c.Value(); v < 0 || v > 5000 {
		t.Errorf("setting %v escaped [min, max] under concurrency", v)
	}
}

// TestConcurrentDecisionLogIsRaceFree hammers one decision log from every
// place a deployed log is touched concurrently — a logging controller
// appending decisions as sensor threads feed it, a second producer appending
// directly, exporters snapshotting and serializing the ring mid-run, and goal
// changes bumping the epoch — so `go test -race` pins the ring's locking
// story end to end, Append through Envelope/Encode.
func TestConcurrentDecisionLogIsRaceFree(t *testing.T) {
	log := declog.New(128)
	profile := NewProfile().
		Add(100, 10, 11, 12).
		Add(200, 20, 21, 22).
		Add(400, 40, 41, 39).
		Add(800, 80, 82, 81)
	c, err := New(Spec{
		Name:    "race.knob",
		Metric:  "race_load",
		Goal:    50,
		Hard:    true,
		Initial: 400,
		Min:     1, Max: 10_000,
	}, profile, WithDecisionLog(log))
	if err != nil {
		t.Fatal(err)
	}
	direct := log.Register("race.direct")

	const iters = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	spawn := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				f(i)
			}
		}()
	}

	for g := 0; g < 2; g++ {
		spawn(func(i int) { c.SetPerf(40 + float64(i%40)); _ = c.Value() })
		spawn(func(i int) {
			log.Append(declog.Record{Source: direct, Period: uint32(i + 1), Sensed: float64(i), Err: 1, Pole: 0.5, Raw: 2, Applied: 2})
		})
		spawn(func(i int) { _ = log.Snapshot(); _ = log.Len(); _ = log.Sources() })
		spawn(func(i int) {
			env := log.Envelope("race", "none", 1, "fp")
			if _, err := declog.Encode(env); err != nil {
				t.Errorf("mid-run export failed to encode: %v", err)
			}
		})
	}
	spawn(func(i int) { log.BumpEpoch(); _ = log.Epoch(); _ = log.Total() })

	close(start)
	wg.Wait()

	if log.Total() == 0 {
		t.Error("no decisions were recorded under concurrency")
	}
	if n := log.Len(); n > log.Cap() {
		t.Errorf("ring holds %d records over capacity %d", n, log.Cap())
	}
}

// TestConcurrentEngineMapMemoIsRaceFree drives the parallel experiment
// engine the way a busy artifact build does — Map fan-outs whose jobs go
// through the memoized run cache and fan out again themselves — while a
// maintenance goroutine races ResetCache and Stats against them, so `go
// test -race` pins the engine's thread-safety contract alongside the
// controller's. Each memoized value depends only on its key, so the results
// must be correct whether a given job hit the cache, computed fresh, or had
// its entry dropped mid-flight by a concurrent reset.
func TestConcurrentEngineMapMemoIsRaceFree(t *testing.T) {
	prev := engine.SetWorkers(8)
	defer engine.SetWorkers(prev)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			engine.ResetCache()
			engine.Stats()
			_ = engine.CacheLen()
		}
	}()

	for round := 0; round < 25; round++ {
		seed := int64(round)
		got := engine.Map(16, func(i int) int {
			key := engine.Key{Scenario: "race", Policy: fmt.Sprintf("p%d", i%4), Seed: seed, Schedule: "unit"}
			return engine.Memo(key, func() int {
				inner := engine.Map(4, func(j int) int { return j })
				return (i % 4) * len(inner)
			})
		})
		for i, v := range got {
			if want := (i % 4) * 4; v != want {
				t.Fatalf("round %d: Map[%d] = %d, want %d (cache returned a value computed for a different key)",
					round, i, v, want)
			}
		}
	}
	close(stop)
	wg.Wait()
}
