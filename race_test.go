package smartconf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"smartconf/internal/experiments/engine"
)

// TestConcurrentControlLoopIsRaceFree hammers one Manager from the three
// places a deployed controller is touched concurrently — sensor threads
// feeding measurements, actuator threads reading adjusted settings, and an
// administrator retargeting goals — with a trace hook installed, so `go
// test -race` can prove the locking story. The assertions are deliberately
// loose; the interleaving, not the arithmetic, is under test.
func TestConcurrentControlLoopIsRaceFree(t *testing.T) {
	var traced atomic.Int64
	m := newTestManager(t, WithConfOptions(WithTrace(func(TraceEvent) {
		traced.Add(1)
	})))
	c, err := m.Conf("max.queue.size")
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.IndirectConf("response.queue.maxsize", Identity())
	if err != nil {
		t.Fatal(err)
	}

	const iters = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	spawn := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				f(i)
			}
		}()
	}

	for g := 0; g < 3; g++ {
		spawn(func(i int) { c.SetPerf(400 + float64(i%100)) })
		spawn(func(i int) { ic.SetPerf(400+float64(i%100), float64(i%200)) })
		spawn(func(i int) { _ = c.Conf(); _ = c.Value() })
		spawn(func(i int) { _ = ic.Conf(); _ = ic.Value() })
	}
	spawn(func(i int) {
		if err := m.SetGoal("queue_memory", 480+float64(i%30)); err != nil {
			t.Error(err)
		}
	})
	spawn(func(i int) {
		for _, s := range m.Snapshots() {
			_ = s.Name
		}
	})

	close(start)
	wg.Wait()

	if traced.Load() == 0 {
		t.Error("trace hook never fired under concurrent updates")
	}
	if v := c.Value(); v < 0 || v > 5000 {
		t.Errorf("setting %v escaped [min, max] under concurrency", v)
	}
}

// TestConcurrentEngineMapMemoIsRaceFree drives the parallel experiment
// engine the way a busy artifact build does — Map fan-outs whose jobs go
// through the memoized run cache and fan out again themselves — while a
// maintenance goroutine races ResetCache and Stats against them, so `go
// test -race` pins the engine's thread-safety contract alongside the
// controller's. Each memoized value depends only on its key, so the results
// must be correct whether a given job hit the cache, computed fresh, or had
// its entry dropped mid-flight by a concurrent reset.
func TestConcurrentEngineMapMemoIsRaceFree(t *testing.T) {
	prev := engine.SetWorkers(8)
	defer engine.SetWorkers(prev)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			engine.ResetCache()
			engine.Stats()
			_ = engine.CacheLen()
		}
	}()

	for round := 0; round < 25; round++ {
		seed := int64(round)
		got := engine.Map(16, func(i int) int {
			key := engine.Key{Scenario: "race", Policy: fmt.Sprintf("p%d", i%4), Seed: seed, Schedule: "unit"}
			return engine.Memo(key, func() int {
				inner := engine.Map(4, func(j int) int { return j })
				return (i % 4) * len(inner)
			})
		})
		for i, v := range got {
			if want := (i % 4) * 4; v != want {
				t.Fatalf("round %d: Map[%d] = %d, want %d (cache returned a value computed for a different key)",
					round, i, v, want)
			}
		}
	}
	close(stop)
	wg.Wait()
}
