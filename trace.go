package smartconf

// TraceEvent records one controller decision — the observability hook an
// operator uses to understand WHY a knob moved (the paper's HDFS-4618
// epigraph: "I don't know what idiot set this to that.. oh wait, it was
// me..." — with SmartConf the answer is a controller, and the trace shows
// its reasoning).
type TraceEvent struct {
	// Conf is the configuration's name.
	Conf string
	// Seq numbers the decision (1-based, per configuration).
	Seq int
	// Measured is the sensor reading that drove the decision.
	Measured float64
	// Deputy is the deputy variable's reported value (indirect
	// configurations only; 0 otherwise).
	Deputy float64
	// Value is the setting the controller chose.
	Value float64
	// Target is the effective setpoint (the virtual goal for hard goals).
	Target float64
	// Pole is the pole used for this decision (0 in the danger region).
	Pole float64
	// Saturated reports whether the actuator was pinned at a bound.
	Saturated bool
}

// TraceFunc receives controller decisions. It runs synchronously on the
// caller of Conf/Value, so it must be fast and must not call back into the
// configuration.
type TraceFunc func(TraceEvent)

// WithTrace installs a decision-trace hook on the configurations built with
// this option.
func WithTrace(f TraceFunc) Option {
	return func(o *options) { o.trace = f }
}

// emitTrace is called under c.mu after a controller update.
func (c *Conf) emitTraceLocked(deputy float64) {
	if c.trace == nil {
		return
	}
	c.traceSeq++
	c.trace(TraceEvent{
		Conf:      c.name,
		Seq:       c.traceSeq,
		Measured:  c.pending,
		Deputy:    deputy,
		Value:     c.lastValue,
		Target:    c.ctrl.VirtualTarget(),
		Pole:      c.ctrl.LastPole(),
		Saturated: c.ctrl.SaturatedFor() > 0,
	})
}
