// Package smartconf automatically sets and dynamically adjusts
// performance-sensitive configurations (PerfConfs) to meet user-declared
// performance constraints, implementing the framework from
//
//	Shu Wang, Chi Li, William Sentosa, Henry Hoffmann, Shan Lu,
//	Achmad Imam Kistijantoro.
//	"Understanding and Auto-Adjusting Performance-Sensitive Configurations."
//	ASPLOS 2018. https://doi.org/10.1145/3173162.3173206
//
// # The problem
//
// Server systems expose hundreds of numeric knobs — queue bounds, buffer
// sizes, flush watermarks, admission thresholds — whose proper values depend
// on workload and environment dynamics no static setting can track. Set a
// queue bound too high and a traffic shift triggers an out-of-memory crash;
// set it low enough to be safe everywhere and throughput is sacrificed all
// the time.
//
// SmartConf splits the responsibility three ways (the paper's Table 1):
// developers declare WHICH configuration is dynamically adjustable and WHAT
// metric it affects; users declare the CONSTRAINT on that metric ("memory
// ≤ 495 MB, hard"); and a per-configuration feedback controller — synthesized
// automatically from a short profiling run — decides the actual setting,
// continuously.
//
// # Developer workflow
//
// 1. Provide a sensor for the metric (anything that yields a float64).
//
// 2. Describe the configuration either programmatically with a Spec and a
// Profile, or with the two SmartConf files (a developer-owned system file
// binding confs to metrics, and a user-owned goals file) loaded through a
// Manager.
//
// 3. Replace every read of the configuration value with the paper's
// setPerf/getConf pair:
//
//	sc.SetPerf(memSensor.Value())  // feed the latest measurement
//	limit := sc.Conf()             // controller-adjusted setting
//
// For configurations that bound some other variable (a queue's maximum
// size bounding the queue's actual size), use IndirectConf and report the
// deputy's current value alongside the measurement:
//
//	sc.SetPerf(memSensor.Value(), queue.Len())
//	queue.SetLimit(sc.Conf())
//
// # Guarantees
//
// Controllers use the update law c' = c + (1−p)/α·e with a pole p derived
// from profiling variability, yielding convergence whenever the real system
// deviates from the profiled model by less than three standard deviations
// (§5.6 of the paper). Hard goals additionally get a virtual goal placed
// (1−λ) below the constraint and a context-aware second pole, making
// overshoot of the real constraint improbable even under abrupt
// disturbances. Multiple configurations registered on one super-hard goal
// coordinate by splitting the observed error evenly (interaction factor N).
//
// These are statistical, not absolute, guarantees — see §6.6 of the paper
// for limitations (non-monotonic plants and pure-optimality goals are out of
// scope; machine learning fits those better).
package smartconf
