// Package stat provides the small statistical toolbox SmartConf's controller
// synthesis is built on: summary statistics, coefficients of variation,
// simple linear regression, and streaming percentile estimation.
//
// Everything here is deterministic and allocation-conscious; the experiment
// harness calls into this package on every sensor sample.
package stat

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more samples than
// it was given (e.g. a regression over fewer than two distinct x values).
var ErrInsufficientData = errors.New("stat: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n, not n-1).
// SmartConf's synthesis formulas are defined over population moments of the
// profiling samples, so we follow that convention throughout.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// CoV returns the coefficient of variation σ/μ of xs. It returns 0 when the
// mean is zero (a degenerate profile: constant-zero performance carries no
// variability information the controller could use).
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return math.Abs(StdDev(xs) / m)
}

// Summary bundles the moments the synthesis step needs for one profiled
// configuration setting.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// Linear is a fitted line y = Slope·x + Intercept with its goodness of fit.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination in [0,1]
}

// Predict evaluates the fitted line at x.
func (l Linear) Predict(x float64) float64 {
	return l.Slope*x + l.Intercept
}

// LinearFit performs ordinary least squares of ys on xs.
// It returns ErrInsufficientData when fewer than two samples are supplied or
// all xs are identical (slope undefined).
func LinearFit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("stat: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, ErrInsufficientData
	}
	slope := sxy / sxx
	fit := Linear{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // constant y perfectly explained by a flat line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// LinearFitOrigin performs least squares of ys on xs constrained through the
// origin (y = Slope·x), matching the paper's Eq. 1 model s = α·c.
func LinearFitOrigin(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("stat: mismatched sample lengths")
	}
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		return Linear{}, ErrInsufficientData
	}
	slope := sxy / sxx
	// R² against the zero-intercept model.
	var ssRes, ssTot float64
	my := Mean(ys)
	for i := range xs {
		r := ys[i] - slope*xs[i]
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	fit := Linear{Slope: slope}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = math.Max(0, 1-ssRes/ssTot)
	}
	return fit, nil
}

// Percentile returns the q-th percentile (q in [0,100]) of xs using linear
// interpolation between closest ranks. xs need not be sorted; a copy is made.
// To extract several percentiles from the same data, use Percentiles, which
// sorts once.
func Percentile(xs []float64, q float64) (float64, error) {
	vs, err := Percentiles(xs, q)
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// Percentiles returns the qs-th percentiles (each in [0,100]) of xs using
// linear interpolation between closest ranks, copying and sorting xs exactly
// once regardless of how many quantiles are requested. Results are in the
// same order as qs.
func Percentiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrInsufficientData
	}
	for _, q := range qs {
		if q < 0 || q > 100 {
			return nil, errors.New("stat: percentile out of range")
		}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = percentileSorted(s, q)
	}
	return out, nil
}

// percentileSorted interpolates the q-th percentile of an already-sorted,
// non-empty slice.
func percentileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := q / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
