package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatalf("fresh window not empty: len=%d mean=%v", w.Len(), w.Mean())
	}
	w.Push(1)
	w.Push(2)
	if w.Len() != 2 || !almostEqual(w.Mean(), 1.5, 1e-12) {
		t.Errorf("len=%d mean=%v, want 2, 1.5", w.Len(), w.Mean())
	}
	w.Push(3)
	w.Push(4) // evicts 1
	if w.Len() != 3 || !almostEqual(w.Mean(), 3, 1e-12) {
		t.Errorf("after eviction len=%d mean=%v, want 3, 3", w.Len(), w.Mean())
	}
	snap := w.Snapshot()
	want := []float64{2, 3, 4}
	if len(snap) != 3 {
		t.Fatalf("snapshot %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("snapshot[%d] = %v, want %v", i, snap[i], want[i])
		}
	}
	if got := w.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Errorf("after Reset len=%d mean=%v", w.Len(), w.Mean())
	}
}

func TestWindowPartialMax(t *testing.T) {
	w := NewWindow(10)
	w.Push(-5)
	w.Push(-2)
	if got := w.Max(); got != -2 {
		t.Errorf("Max of partial window = %v, want -2", got)
	}
}

func TestWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for capacity 0")
		}
	}()
	NewWindow(0)
}

// Property: the window's streaming mean/variance agree with batch statistics
// over the snapshot, regardless of push history.
func TestWindowMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		w := NewWindow(capacity)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitudes so incremental sumSq keeps precision.
			w.Push(math.Mod(x, 1e6))
		}
		snap := w.Snapshot()
		if len(snap) != w.Len() {
			return false
		}
		if len(snap) == 0 {
			return w.Mean() == 0 && w.Variance() == 0
		}
		tol := 1e-6 * (1 + math.Abs(Mean(snap)))
		return almostEqual(w.Mean(), Mean(snap), tol) &&
			almostEqual(w.Variance(), Variance(snap), 1e-3*(1+Variance(snap)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
