package stat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactNearestRank is the oracle Quantile is measured against: the
// ⌈q/100·n⌉-th smallest sample, the same rank convention the sketch uses.
func exactNearestRank(xs []float64, q float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s[nearestRank(q, len(s))]
}

// checkBound asserts got is within the documented relative error of want.
func checkBound(t *testing.T, label string, got, want float64) {
	t.Helper()
	if want == 0 {
		if got > MinValue*2 {
			t.Errorf("%s: got %v for exact 0", label, got)
		}
		return
	}
	if rel := math.Abs(got-want) / want; rel > RelativeError+1e-12 {
		t.Errorf("%s: got %v, want %v within %.3g relative (off by %.3g)",
			label, got, want, RelativeError, rel)
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Len() != 0 || s.Quantile(50) != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Errorf("empty sketch not zero: len=%d q50=%v max=%v min=%v",
			s.Len(), s.Quantile(50), s.Max(), s.Min())
	}
}

func TestSketchSingleSample(t *testing.T) {
	s := NewSketch()
	s.Observe(0.25)
	for _, q := range []float64{0, 50, 100} {
		checkBound(t, "q", s.Quantile(q), 0.25)
	}
	checkBound(t, "max", s.Max(), 0.25)
	checkBound(t, "min", s.Min(), 0.25)
}

// The headline accuracy property: across sample sizes and distributions,
// every quantile the sensors ask for stays within RelativeError of the true
// nearest-rank order statistic.
func TestSketchAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() float64{
		// Uniform latencies across three decades.
		"uniform": func() float64 { return 1e-3 + rng.Float64() },
		// Lognormal: the canonical latency shape (long right tail).
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()*1.5 - 4) },
		// Exponential inter-arrival-like values.
		"exponential": func() float64 { return rng.ExpFloat64() * 0.02 },
		// Bimodal: fast path vs slow path, nothing in between.
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return 0.001 + 0.0001*rng.Float64()
			}
			return 1 + rng.Float64()
		},
	}
	quantiles := []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100}
	for name, draw := range distributions {
		for _, n := range []int{1, 3, 10, 128, 1000, 5000} {
			s := NewSketch()
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = draw()
				s.Observe(xs[i])
			}
			if s.Len() != n {
				t.Fatalf("%s n=%d: Len=%d", name, n, s.Len())
			}
			for _, q := range quantiles {
				checkBound(t, name, s.Quantile(q), exactNearestRank(xs, q))
			}
			checkBound(t, name+" max", s.Max(), Max(xs))
			checkBound(t, name+" min", s.Min(), Min(xs))
		}
	}
}

// Quantile must be monotone in q even when ranks collide inside one bucket.
func TestSketchQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSketch()
	for i := 0; i < 997; i++ {
		s.Observe(rng.ExpFloat64())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 100; q += 0.5 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile(%v) = %v", q, v, q-0.5, prev)
		}
		prev = v
	}
}

func TestSketchQuantilePairMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSketch()
	for i := 0; i < 300; i++ {
		s.Observe(rng.Float64() * 10)
	}
	for _, qs := range [][2]float64{{50, 95}, {0, 100}, {95, 95}, {10, 11}} {
		a, b := s.QuantilePair(qs[0], qs[1])
		if a != s.Quantile(qs[0]) || b != s.Quantile(qs[1]) {
			t.Errorf("QuantilePair(%v, %v) = (%v, %v), want (%v, %v)",
				qs[0], qs[1], a, b, s.Quantile(qs[0]), s.Quantile(qs[1]))
		}
	}
}

// Remove must be the exact inverse of Observe: a sketch that saw a sliding
// window's inserts and evictions equals a sketch that only ever saw the live
// samples.
func TestSketchRemoveTracksWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const windowSize, total = 200, 1500
	windowed, fresh := NewSketch(), NewSketch()
	var live []float64
	for i := 0; i < total; i++ {
		x := math.Exp(rng.NormFloat64())
		live = append(live, x)
		windowed.Observe(x)
		if len(live) > windowSize {
			windowed.Remove(live[0])
			live = live[1:]
		}
	}
	for _, x := range live {
		fresh.Observe(x)
	}
	if windowed.Len() != fresh.Len() {
		t.Fatalf("Len: windowed %d, fresh %d", windowed.Len(), fresh.Len())
	}
	for _, q := range []float64{0, 25, 50, 95, 100} {
		if windowed.Quantile(q) != fresh.Quantile(q) {
			t.Errorf("q%v: windowed %v, fresh %v", q, windowed.Quantile(q), fresh.Quantile(q))
		}
	}
	if windowed.Max() != fresh.Max() || windowed.Min() != fresh.Min() {
		t.Error("Max/Min diverge between windowed and fresh sketches")
	}
}

func TestSketchRemoveUnobservedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := NewSketch()
	s.Observe(1.0)
	s.Remove(2.0) // different bucket, never observed
}

// Merge is associative and commutative: any grouping of partial sketches
// yields the identical histogram (bucket-count addition is a monoid).
func TestSketchMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	parts := make([]*Sketch, 3)
	for i := range parts {
		parts[i] = NewSketch()
		for j := 0; j < 100*(i+1); j++ {
			parts[i].Observe(rng.ExpFloat64() * float64(i+1))
		}
	}
	clone := func(s *Sketch) *Sketch {
		c := NewSketch()
		c.Merge(s)
		return c
	}
	// (a⊕b)⊕c
	left := clone(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	// a⊕(b⊕c)
	bc := clone(parts[1])
	bc.Merge(parts[2])
	right := clone(parts[0])
	right.Merge(bc)
	// c⊕b⊕a (commutativity)
	rev := clone(parts[2])
	rev.Merge(parts[1])
	rev.Merge(parts[0])

	if left.Len() != right.Len() || left.Len() != rev.Len() {
		t.Fatalf("Len: %d vs %d vs %d", left.Len(), right.Len(), rev.Len())
	}
	for q := 0.0; q <= 100; q += 2.5 {
		a, b, c := left.Quantile(q), right.Quantile(q), rev.Quantile(q)
		if a != b || a != c {
			t.Errorf("q%v: (a⊕b)⊕c=%v a⊕(b⊕c)=%v c⊕b⊕a=%v", q, a, b, c)
		}
	}
}

// Values outside [MinValue, MaxValue) clamp deterministically instead of
// corrupting the histogram.
func TestSketchOutOfRangeClamps(t *testing.T) {
	s := NewSketch()
	for _, x := range []float64{0, -5, 1e-300, math.Inf(1), 1e30, math.NaN()} {
		s.Observe(x)
		s.Remove(x) // must hit the same bucket
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after paired Observe/Remove", s.Len())
	}
	s.Observe(-1)
	if got := s.Quantile(50); got > MinValue*2 {
		t.Errorf("negative sample reported as %v, want ≈0", got)
	}
	s.Observe(1e30)
	if got := s.Quantile(100); got < float64(MaxValue)*0.9 {
		t.Errorf("huge sample reported as %v, want ≈MaxValue", got)
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketch()
	for i := 0; i < 50; i++ {
		s.Observe(float64(i + 1))
	}
	s.Reset()
	if s.Len() != 0 || s.Quantile(50) != 0 || s.Max() != 0 {
		t.Error("Reset did not clear the sketch")
	}
	s.Observe(2)
	checkBound(t, "post-reset", s.Quantile(50), 2)
}

// Determinism: the sketch is a pure function of the observed multiset, not
// of arrival order.
func TestSketchOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	a, b := NewSketch(), NewSketch()
	for _, x := range xs {
		a.Observe(x)
	}
	perm := rng.Perm(len(xs))
	for _, i := range perm {
		b.Observe(xs[i])
	}
	for q := 0.0; q <= 100; q += 1 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%v differs across observation orders", q)
		}
	}
}

func TestWindowPushEvict(t *testing.T) {
	w := NewWindow(2)
	if _, ok := w.PushEvict(1); ok {
		t.Error("evicted from a non-full window")
	}
	if _, ok := w.PushEvict(2); ok {
		t.Error("evicted from a non-full window")
	}
	if ev, ok := w.PushEvict(3); !ok || ev != 1 {
		t.Errorf("PushEvict = (%v, %v), want (1, true)", ev, ok)
	}
	if ev, ok := w.PushEvict(4); !ok || ev != 2 {
		t.Errorf("PushEvict = (%v, %v), want (2, true)", ev, ok)
	}
}

// Observe and Quantile are the per-sample and per-control-period sensor
// costs; both must stay allocation-free.
func TestSketchZeroAlloc(t *testing.T) {
	s := NewSketch()
	for i := 0; i < 1000; i++ {
		s.Observe(float64(i%37) * 0.001)
	}
	if n := testing.AllocsPerRun(100, func() { s.Observe(0.005) }); n != 0 {
		t.Errorf("Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = s.Quantile(95) }); n != 0 {
		t.Errorf("Quantile allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _, _ = s.QuantilePair(50, 95) }); n != 0 {
		t.Errorf("QuantilePair allocates %v per op", n)
	}
}

func BenchmarkSketchObserve(b *testing.B) {
	s := NewSketch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%1000) * 1e-4)
	}
}

func BenchmarkSketchQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSketch()
	for i := 0; i < 512; i++ {
		s.Observe(math.Exp(rng.NormFloat64()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.QuantilePair(50, 95)
	}
}
