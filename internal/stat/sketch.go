package stat

import "math"

// Sketch is a fixed-memory streaming quantile estimator: a log-bucketed
// histogram in the HDR style. Each octave [2^e, 2^(e+1)) is split into
// 2^sketchMantissaBits linear subbuckets, so a positive sample maps to its
// bucket with two shifts on its IEEE-754 bit pattern and a quantile is a
// single cumulative scan over the occupied bucket range — O(1) per Observe,
// O(buckets) per read, no sorting, no per-sample allocation ever.
//
// Accuracy contract: for samples inside [MinValue, MaxValue), every reported
// quantile (and Max/Min) is the midpoint of the bucket holding the true
// order statistic, so it is within RelativeError of that sample's value.
// Samples at or outside the bounds clamp into the edge buckets and carry no
// error bound (latencies never get there: the range spans picoseconds to
// months when samples are seconds).
//
// Quantile uses nearest-rank semantics (the value of the ⌈q/100·n⌉-th
// smallest sample), unlike Percentiles' linear interpolation: interpolation
// between two adjacent order statistics that land in distant buckets would
// manufacture a value no sample ever had, and the bound above could not be
// stated. Callers that need interpolated small-sample quantiles keep using
// Percentiles; the windowed sensors switch to the sketch only above
// a window-size threshold where the two agree to within the bucket width.
//
// Removal is exact, not approximate: Remove(x) decrements the bucket Observe
// incremented (the mapping is deterministic), which is what lets a sliding
// window maintain true live-sample counts by pairing every eviction with a
// Remove. Merge adds bucket counts, making the sketch a CRDT-style
// commutative monoid: (a⊕b)⊕c ≡ a⊕(b⊕c).
//
// The zero Sketch is unusable; construct with NewSketch.
type Sketch struct {
	counts []uint32
	n      int
	// lo/hi bound the occupied bucket range so scans skip the empty tails.
	// They may go stale after Remove (pointing at now-empty buckets); scans
	// stay correct because empty buckets contribute nothing, and the next
	// Observe or Reset re-tightens them.
	lo, hi int
}

const (
	// sketchMantissaBits sets the resolution: 2^6 = 64 subbuckets per
	// octave, giving RelativeError = 1/128.
	sketchMantissaBits = 6
	sketchSubbuckets   = 1 << sketchMantissaBits
	sketchShift        = 52 - sketchMantissaBits // float64 has 52 mantissa bits

	// The covered exponent range: 2^-40 (≈ 0.9 ps when samples are seconds)
	// through 2^24 (≈ 194 days). 64 octaves × 64 subbuckets = 4096 buckets,
	// 16 KiB of uint32 counts per sketch.
	sketchMinExp  = -40
	sketchMaxExp  = 24
	sketchBuckets = (sketchMaxExp - sketchMinExp) * sketchSubbuckets
	sketchBias    = (1023 + sketchMinExp) * sketchSubbuckets

	// MinValue and MaxValue bound the range in which the accuracy contract
	// holds; outside it samples clamp into the edge buckets.
	MinValue = 1.0 / (1 << 40) // 2^sketchMinExp
	MaxValue = 1 << 24         // 2^sketchMaxExp

	// RelativeError is the worst-case relative error of Quantile, Min and
	// Max for in-range samples: reported values are bucket midpoints, and a
	// bucket spans at most 1/64 of its lower bound.
	RelativeError = 1.0 / (2 * sketchSubbuckets)
)

// NewSketch returns an empty sketch. The single allocation here (16 KiB of
// bucket counts) is the sketch's entire memory footprint, forever.
func NewSketch() *Sketch {
	return &Sketch{counts: make([]uint32, sketchBuckets), lo: sketchBuckets}
}

// bucketIndex maps a sample to its bucket. For positive normal floats the
// bit pattern viewed as an integer is monotone in the value, so exponent and
// top mantissa bits — exactly (bits >> sketchShift) — are the log-bucketed
// index directly; no log() call, no branches beyond range clamping.
func bucketIndex(x float64) int {
	if x <= MinValue { // also zero, negatives, subnormals
		return 0
	}
	if x >= MaxValue || math.IsNaN(x) {
		return sketchBuckets - 1
	}
	return int(math.Float64bits(x)>>sketchShift) - sketchBias
}

// bucketMid returns the midpoint of bucket i: for octave e and linear
// subbucket s, (1 + (s+½)/64) · 2^e. Exact float arithmetic, so the value
// reported for a bucket never depends on how its samples arrived.
func bucketMid(i int) float64 {
	combined := i + sketchBias
	e := combined>>sketchMantissaBits - 1023
	sub := combined & (sketchSubbuckets - 1)
	return math.Ldexp(1+(float64(sub)+0.5)/sketchSubbuckets, e)
}

// Observe adds one sample. O(1), never allocates.
func (s *Sketch) Observe(x float64) {
	i := bucketIndex(x)
	s.counts[i]++
	s.n++
	if i < s.lo {
		s.lo = i
	}
	if i > s.hi {
		s.hi = i
	}
}

// Remove subtracts one previously Observed sample — the eviction half of a
// sliding window. Removing a value that was never observed corrupts the
// histogram, so an empty bucket panics instead of wrapping around.
func (s *Sketch) Remove(x float64) {
	i := bucketIndex(x)
	if s.counts[i] == 0 {
		panic("stat: Sketch.Remove of a value that was never observed")
	}
	s.counts[i]--
	s.n--
}

// Len reports the number of live samples (observed minus removed).
func (s *Sketch) Len() int { return s.n }

// Quantile returns the q-th percentile (q in [0,100], clamped) with
// nearest-rank semantics, or 0 when the sketch is empty.
func (s *Sketch) Quantile(q float64) float64 {
	v, _ := s.QuantilePair(q, q)
	return v
}

// QuantilePair returns two quantiles from one cumulative scan (the Snapshot
// fast path: p50 and p95 without walking the buckets twice). qlo must not
// exceed qhi; both clamp to [0,100]. Empty sketches report zeros.
func (s *Sketch) QuantilePair(qlo, qhi float64) (float64, float64) {
	if s.n == 0 {
		return 0, 0
	}
	if qlo > qhi {
		panic("stat: QuantilePair quantiles out of order")
	}
	rlo, rhi := nearestRank(qlo, s.n), nearestRank(qhi, s.n)
	var vlo, vhi float64
	cum, found := 0, 0
	for i := s.lo; i <= s.hi; i++ {
		cum += int(s.counts[i])
		if found == 0 && cum > rlo {
			vlo = bucketMid(i)
			found++
		}
		if found == 1 && cum > rhi {
			vhi = bucketMid(i)
			found++
			break
		}
	}
	return vlo, vhi
}

// nearestRank converts a percentile to a zero-based order-statistic index
// over n samples: the ⌈q/100·n⌉-th smallest, clamped to the valid range.
func nearestRank(q float64, n int) int {
	if q <= 0 || math.IsNaN(q) {
		return 0
	}
	if q >= 100 {
		return n - 1
	}
	r := int(math.Ceil(q/100*float64(n))) - 1
	if r < 0 {
		r = 0
	}
	if r > n-1 {
		r = n - 1
	}
	return r
}

// Min returns (the bucket midpoint of) the smallest live sample, 0 when
// empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	for i := s.lo; i <= s.hi; i++ {
		if s.counts[i] != 0 {
			return bucketMid(i)
		}
	}
	return 0
}

// Max returns (the bucket midpoint of) the largest live sample, 0 when
// empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	for i := s.hi; i >= s.lo; i-- {
		if s.counts[i] != 0 {
			return bucketMid(i)
		}
	}
	return 0
}

// Merge folds o into s (o is unchanged). Bucket-count addition is
// commutative and associative, so merging partial sketches in any grouping
// yields the identical histogram — the property that lets per-shard sensors
// aggregate without coordination.
func (s *Sketch) Merge(o *Sketch) {
	for i := o.lo; i <= o.hi && i < len(o.counts); i++ {
		if c := o.counts[i]; c != 0 {
			s.counts[i] += c
			s.n += int(c)
			if i < s.lo {
				s.lo = i
			}
			if i > s.hi {
				s.hi = i
			}
		}
	}
}

// Reset discards all samples, keeping the bucket memory.
func (s *Sketch) Reset() {
	for i := s.lo; i <= s.hi && i < len(s.counts); i++ {
		s.counts[i] = 0
	}
	s.n = 0
	s.lo, s.hi = sketchBuckets, 0
}
