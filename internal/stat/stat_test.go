package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"symmetric", []float64{-2, 2}, 0},
		{"typical", []float64{1, 2, 3, 4}, 2.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v, want +Inf", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %v, want -Inf", got)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CoV of constant = %v, want 0", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV at zero mean = %v, want 0 (degenerate)", got)
	}
	// mean 10, stddev 2 → CoV 0.2
	if got := CoV([]float64{8, 12, 8, 12}); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("CoV = %v, want 0.2", got)
	}
	// CoV uses |σ/μ| so negative-mean series still yield positive CoV.
	if got := CoV([]float64{-8, -12, -8, -12}); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("CoV(negative) = %v, want 0.2", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almostEqual(s.Mean, 2, 1e-12) || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3x + 2, noiseless.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 2
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-9) || !almostEqual(fit.Intercept, 2, 1e-9) {
		t.Errorf("fit = %+v, want slope 3 intercept 2", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEqual(got, 32, 1e-9) {
		t.Errorf("Predict(10) = %v, want 32", got)
	}
}

func TestLinearFitNegativeSlope(t *testing.T) {
	// The HB2149 / MR2820 plants have negative slopes; fitting must be
	// sign-correct.
	xs := []float64{0, 0.25, 0.5, 0.75, 1}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10 - 8*x
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, -8, 1e-9) {
		t.Errorf("slope = %v, want -8", fit.Slope)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("expected error for single sample")
	}
	if _, err := LinearFit([]float64{1, 1, 1}, []float64{2, 3, 4}); err == nil {
		t.Error("expected error for constant x")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestLinearFitOrigin(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	fit, err := LinearFitOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || fit.Intercept != 0 {
		t.Errorf("fit = %+v, want slope 2 through origin", fit)
	}
	if _, err := LinearFitOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("expected error for all-zero x")
	}
}

// Property: fitting recovers a known slope from noisy data to within a
// tolerance that shrinks with noise amplitude.
func TestLinearFitRecoversSlopeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(slopeSeed, interceptSeed int16) bool {
		slope := float64(slopeSeed%100)/10 + 0.1 // avoid 0 slope
		intercept := float64(interceptSeed % 50)
		var xs, ys []float64
		for i := 0; i < 200; i++ {
			x := float64(i) / 10
			noise := rng.NormFloat64() * 0.01
			xs = append(xs, x)
			ys = append(ys, slope*x+intercept+noise)
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, slope, 0.01) && almostEqual(fit.Intercept, intercept, 0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error on out-of-range q")
	}
	if got, err := Percentile([]float64{7}, 99); err != nil || got != 7 {
		t.Errorf("Percentile(single, 99) = %v, %v", got, err)
	}
}

// Property: percentiles are monotone in q and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 100; q += 10 {
			v, err := Percentile(xs, q)
			if err != nil {
				return false
			}
			if v < prev || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	got, err := Percentiles(xs, 0, 25, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 20, 35, 50}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Percentiles(nil, 50); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Percentiles(xs, 50, 101); err == nil {
		t.Error("expected error on out-of-range q")
	}
	if got, err := Percentiles(xs); err != nil || len(got) != 0 {
		t.Errorf("Percentiles with no qs = %v, %v; want empty, nil", got, err)
	}
	// Input must not be mutated (no in-place sort).
	shuffled := []float64{9, 1, 5}
	if _, err := Percentiles(shuffled, 50); err != nil {
		t.Fatal(err)
	}
	if shuffled[0] != 9 || shuffled[1] != 1 || shuffled[2] != 5 {
		t.Errorf("Percentiles mutated its input: %v", shuffled)
	}
}

// Property: Percentiles agrees with Percentile called per quantile.
func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	qs := []float64{0, 10, 33.3, 50, 66.6, 90, 95, 99, 100}
	got, err := Percentiles(xs, qs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := Percentile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("Percentiles[%v] = %v, Percentile = %v", q, got[i], want)
		}
	}
}

// BenchmarkPercentiles2 vs BenchmarkPercentileTwice: the single-sort path
// Latency.Snapshot now uses versus the old two-sort behaviour.
func BenchmarkPercentiles2(b *testing.B) {
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = float64((i * 7919) % 512)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Percentiles(xs, 50, 95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentileTwice(b *testing.B) {
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = float64((i * 7919) % 512)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Percentile(xs, 50); err != nil {
			b.Fatal(err)
		}
		if _, err := Percentile(xs, 95); err != nil {
			b.Fatal(err)
		}
	}
}
