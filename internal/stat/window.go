package stat

// Window is a fixed-capacity ring buffer of float64 samples with streaming
// summary statistics. Sensors use it to expose "recent performance" (e.g.
// average request latency over the last N requests) without unbounded memory.
//
// The zero Window is unusable; construct with NewWindow.
type Window struct {
	buf   []float64
	next  int
	full  bool
	sum   float64
	sumSq float64
}

// NewWindow returns a ring buffer retaining the most recent capacity samples.
// capacity must be positive.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic("stat: NewWindow capacity must be positive")
	}
	return &Window{buf: make([]float64, capacity)}
}

// Push adds a sample, evicting the oldest when the window is full.
func (w *Window) Push(x float64) { w.PushEvict(x) }

// PushEvict adds a sample and reports the sample it displaced, if the window
// was full. Callers maintaining a derived structure alongside the window
// (metrics.Latency keeps a quantile Sketch) pair each eviction with the
// matching removal, so the derived counts track the live samples exactly.
func (w *Window) PushEvict(x float64) (evicted float64, ok bool) {
	if w.full {
		evicted, ok = w.buf[w.next], true
		w.sum -= evicted
		w.sumSq -= evicted * evicted
	}
	w.buf[w.next] = x
	w.sum += x
	w.sumSq += x * x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	return evicted, ok
}

// Len reports the number of live samples (≤ capacity).
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Mean returns the mean of the live samples, or 0 when empty.
func (w *Window) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	return w.sum / float64(n)
}

// Variance returns the population variance of the live samples.
// It is clamped at zero to absorb floating-point drift from the
// incremental sums.
func (w *Window) Variance() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	m := w.Mean()
	v := w.sumSq/float64(n) - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// Snapshot copies the live samples in insertion order (oldest first).
func (w *Window) Snapshot() []float64 {
	n := w.Len()
	out := make([]float64, 0, n)
	if w.full {
		out = append(out, w.buf[w.next:]...)
	}
	out = append(out, w.buf[:w.next]...)
	return out
}

// Reset discards all samples, keeping the capacity.
func (w *Window) Reset() {
	for i := range w.buf {
		w.buf[i] = 0
	}
	w.next = 0
	w.full = false
	w.sum = 0
	w.sumSq = 0
}

// Max returns the maximum live sample, or 0 when empty.
func (w *Window) Max() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	m := w.buf[0]
	if !w.full {
		m = w.buf[0]
		for _, x := range w.buf[:w.next] {
			if x > m {
				m = x
			}
		}
		return m
	}
	for _, x := range w.buf {
		if x > m {
			m = x
		}
	}
	return m
}
