package llmserve

import (
	"testing"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// TestSteadyStateRequestPathZeroAlloc is the raw-speed gate for this
// substrate: once the waiting array, the sequence free list, the step
// snapshot buffer, and the metrics windows have grown to their working size,
// offering a request and decoding it to completion must not allocate. Every
// steady-state allocation multiplies by the 10M requests a -scale run pushes
// through.
func TestSteadyStateRequestPathZeroAlloc(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(16 << 30)
	sv := New(s, heap, DefaultConfig())
	sv.SetMaxBatchedTokens(4096)

	var now time.Duration
	cycle := func() {
		now += 20 * time.Millisecond
		s.RunUntil(now)
		sv.Offer(workload.LLMRequest{Prompt: 32, Output: 16})
	}
	// Warm: grow every buffer past its steady-state high watermark.
	for i := 0; i < 2000; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("steady-state request path allocates %.1f objects per cycle, want 0", allocs)
	}
	if sv.Crashed() {
		t.Fatal("server crashed during the measurement window")
	}
	if sv.Completed() == 0 {
		t.Fatal("no requests completed: the measurement exercised nothing")
	}
}
