package llmserve

import (
	"testing"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// testConfig is a small calibration that keeps unit-test arithmetic legible:
// 1 KiB per KV token, no scratch, no base heap unless a test sets them.
func testConfig() Config {
	return Config{
		KVBytesPerToken: 1 << 10,
		StepBase:        time.Millisecond,
		StepPerToken:    10 * time.Microsecond,
		PrefillChunk:    64,
	}
}

// drive offers n requests from a seeded generator and runs to completion.
func drive(t *testing.T, sv *Server, s *sim.Simulation, seed int64, phase workload.LLMPhase, n int) {
	t.Helper()
	gen := workload.NewLLMGen(seed, phase)
	var next func()
	left := n
	next = func() {
		if left == 0 {
			return
		}
		left--
		sv.Offer(gen.NextRequest())
		s.After(gen.NextInterarrival(), next)
	}
	s.After(0, next)
	s.Run()
}

func TestCompletionReleasesAllKV(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	cfg := testConfig()
	cfg.BaseHeapBytes = 1 << 20
	sv := New(s, heap, cfg)

	phase := workload.LLMPhase{RequestsPerSec: 50, PromptMean: 100, OutputMean: 40}
	drive(t, sv, s, 7, phase, 40)

	if sv.Crashed() {
		t.Fatal("server crashed on an oversized heap")
	}
	if got := sv.Completed(); got != 40 {
		t.Fatalf("completed = %d, want 40", got)
	}
	if sv.ResidentTokens() != 0 || sv.PromptTokens() != 0 {
		t.Fatalf("resident/prompt tokens not drained: %d/%d",
			sv.ResidentTokens(), sv.PromptTokens())
	}
	if heap.Used() != cfg.BaseHeapBytes {
		t.Fatalf("heap did not drain to base: used %d, base %d", heap.Used(), cfg.BaseHeapBytes)
	}
	if sv.TTFT().Count() != 40 || sv.E2E().Count() != 40 {
		t.Fatalf("latency samples ttft=%d e2e=%d, want 40 each",
			sv.TTFT().Count(), sv.E2E().Count())
	}
	if sv.OutputTokens() <= 0 {
		t.Fatal("no goodput recorded")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64, int64, int64) {
		s := sim.New()
		heap := memsim.NewHeap(8 << 20) // tight: forces evictions
		sv := New(s, heap, testConfig())
		phase := workload.LLMPhase{RequestsPerSec: 200, PromptMean: 150, OutputMean: 120}
		drive(t, sv, s, 42, phase, 300)
		return sv.Completed(), sv.OutputTokens(), sv.Evictions(), int64(heap.Peak())
	}
	c1, o1, e1, p1 := run()
	c2, o2, e2, p2 := run()
	if c1 != c2 || o1 != o2 || e1 != e2 || p1 != p2 {
		t.Fatalf("runs diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			c1, o1, e1, p1, c2, o2, e2, p2)
	}
}

func TestAdmissionRespectsTokenBound(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	sv := New(s, heap, testConfig())
	sv.SetMaxBatchedTokens(150)

	// The bound counts admitted prompt tokens, so three 100-token prompts
	// must serialize: a second admission would put 200 > 150 in the batch.
	sv.BeforeStep = func() {
		if sv.RunningLen() > 1 {
			t.Fatalf("batch holds %d sequences under a 150-token bound", sv.RunningLen())
		}
		if c := sv.PromptTokens(); c > 150 {
			t.Fatalf("batch holds %d prompt tokens under a 150-token bound", c)
		}
	}
	for i := 0; i < 3; i++ {
		if !sv.Offer(workload.LLMRequest{Prompt: 100, Output: 10}) {
			t.Fatalf("offer %d refused", i)
		}
	}
	s.Run()
	if got := sv.Completed(); got != 3 {
		t.Fatalf("completed = %d, want 3", got)
	}
}

func TestZeroBoundParksAndRecovers(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	sv := New(s, heap, testConfig())
	sv.SetWaitingLimit(1)
	sv.SetMaxBatchedTokens(0) // admission frozen

	if !sv.Offer(workload.LLMRequest{Prompt: 10, Output: 5}) {
		t.Fatal("first offer should queue")
	}
	for i := 0; i < 4; i++ {
		if sv.Offer(workload.LLMRequest{Prompt: 10, Output: 5}) {
			t.Fatal("offer beyond the waiting limit should be refused")
		}
	}
	if got := sv.Rejected(); got != 4 {
		t.Fatalf("rejected = %d, want 4", got)
	}
	s.RunUntil(time.Second)
	if sv.Completed() != 0 {
		t.Fatal("nothing should complete while the bound is zero")
	}
	// The knob rises (a controller found headroom): the parked queue drains.
	sv.SetMaxBatchedTokens(1 << 20)
	s.Run()
	if got := sv.Completed(); got != 1 {
		t.Fatalf("completed = %d after raising the bound, want 1", got)
	}
}

func TestEvictionPreemptsInsteadOfCrashing(t *testing.T) {
	s := sim.New()
	// Room for one full sequence (20 KV tokens) plus most of a second:
	// decode growth must preempt, not OOM.
	heap := memsim.NewHeap(30 << 10)
	sv := New(s, heap, testConfig())

	sv.Offer(workload.LLMRequest{Prompt: 10, Output: 10})
	sv.Offer(workload.LLMRequest{Prompt: 10, Output: 10})
	s.Run()

	if sv.Crashed() || heap.OOM() {
		t.Fatal("KV pressure should preempt, not crash")
	}
	if sv.Evictions() == 0 {
		t.Fatal("expected at least one preemption on a 30-token heap")
	}
	if got := sv.Completed(); got != 2 {
		t.Fatalf("completed = %d, want 2 (preempted work restarts)", got)
	}
	if heap.Used() != 0 {
		t.Fatalf("heap not drained: %d bytes", heap.Used())
	}
}

func TestScratchOOMCrashes(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(16 << 10)
	cfg := testConfig()
	cfg.ScratchBytesPerToken = 1 << 10 // scratch rivals KV: mid-kernel spike
	sv := New(s, heap, cfg)

	sv.Offer(workload.LLMRequest{Prompt: 12, Output: 8})
	s.Run()

	if !sv.Crashed() || !heap.OOM() {
		t.Fatal("activation scratch beyond capacity must crash the server")
	}
	if sv.Dropped() == 0 {
		t.Fatal("in-flight work on a crashed server must count as dropped")
	}
	if sv.Offer(workload.LLMRequest{Prompt: 1, Output: 1}) {
		t.Fatal("a crashed server must refuse new work")
	}
}

func TestGoodputCountsCompletedOutputsOnly(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	sv := New(s, heap, testConfig())

	sv.Offer(workload.LLMRequest{Prompt: 5, Output: 7})
	sv.Offer(workload.LLMRequest{Prompt: 5, Output: 11})
	s.Run()

	if got := sv.OutputTokens(); got != 18 {
		t.Fatalf("output tokens = %d, want 18", got)
	}
	if sv.E2E().Count() != 2 {
		t.Fatalf("e2e samples = %d, want 2", sv.E2E().Count())
	}
	// TTFT is strictly earlier than end-to-end for multi-token outputs.
	if sv.TTFT().Worst() >= sv.E2E().Worst() {
		t.Fatalf("ttft %v should precede e2e %v", sv.TTFT().Worst(), sv.E2E().Worst())
	}
}
