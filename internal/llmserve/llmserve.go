// Package llmserve simulates an LLM inference server with continuous
// batching and a KV cache, the modern system where static performance
// configurations hurt most. It is the substrate for the LLM-KV scenario:
//
//   - max.num.batched.tokens — the continuous-batch admission bound, in
//     tokens. Every token resident in the batch pins KV-cache bytes on the
//     simulated GPU heap, so the bound indirectly caps memory: too large
//     risks OOM when the workload shifts to long documents, too small
//     leaves decode parallelism (and therefore goodput) on the table.
//     Exactly HB3813's queue-size trade-off, transplanted to inference.
//   - admission.queue.limit — the waiting-queue bound. Deeper queues accept
//     more work but stretch time-to-first-token; the knob trades rejected
//     requests against TTFT tail latency.
//
// The scheduler is a vLLM-style continuous batcher in virtual time: each
// step decodes one token for every running sequence that has finished its
// prompt, prefills up to PrefillChunk prompt tokens, and costs
// StepBase + StepPerToken × (tokens scheduled this step). Admission counts
// *prompt* tokens only — the server cannot know output lengths in advance,
// so decode growth is invisible to the bound. That under-accounting is what
// makes the knob performance-sensitive rather than a hard resource cap: the
// memory a setting implies is bound × (1 + output/prompt ratio × decode
// progress), and the ratio is a property of the workload. A chat mix
// (short prompts, long answers) roughly triples each admitted token's
// eventual footprint; a summarization mix barely grows it.
//
// Memory model: KV cache is KVBytesPerToken per resident token, allocated
// as tokens enter the batch and freed on completion or eviction. When a KV
// allocation would not fit, the scheduler preempts the newest running
// sequence (recompute-from-scratch, as vLLM does) — but per-step activation
// scratch (ScratchBytesPerToken × scheduled tokens) is allocated mid-kernel
// and cannot wait for preemption: if it does not fit, the process dies.
// That is the OOM the hard memory goal must prevent.
package llmserve

import (
	"math"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// Config fixes the server's model/hardware parameters.
type Config struct {
	// KVBytesPerToken is the KV-cache footprint of one resident token
	// (2 × layers × kv-heads × head-dim × dtype bytes on real hardware).
	KVBytesPerToken int64
	// ScratchBytesPerToken is the transient activation scratch a step
	// allocates per scheduled token, freed when the step retires. Scratch
	// cannot be satisfied by preemption — a failed scratch allocation
	// crashes the server.
	ScratchBytesPerToken int64
	// BaseHeapBytes is allocated at startup (weights, CUDA context).
	BaseHeapBytes int64
	// StepBase is the fixed per-step launch overhead; StepPerToken is the
	// marginal cost per scheduled token. Step latency is affine:
	// d = StepBase + StepPerToken × scheduled.
	StepBase     time.Duration
	StepPerToken time.Duration
	// PrefillChunk bounds prompt tokens prefetched per step (chunked
	// prefill). Values < 1 mean unlimited.
	PrefillChunk int
	// WaitingLimit is the initial admission.queue.limit (waiting requests);
	// values < 1 mean unbounded.
	WaitingLimit int
}

// DefaultConfig returns the calibration used by the LLM-KV experiments:
// a 16 GiB-class accelerator serving a mid-size model.
func DefaultConfig() Config {
	return Config{
		KVBytesPerToken:      128 << 10, // 128 KiB per resident token
		ScratchBytesPerToken: 32 << 10,
		BaseHeapBytes:        6 << 30, // weights + runtime
		StepBase:             5 * time.Millisecond,
		StepPerToken:         20 * time.Microsecond,
		PrefillChunk:         512,
		WaitingLimit:         512,
	}
}

// seq is one request's life in the server.
type seq struct {
	req        workload.LLMRequest
	arrived    time.Duration
	promptDone int // prompt tokens prefilled so far
	outputDone int // output tokens decoded so far
	kvTokens   int // tokens holding KV cache (prompt + decoded)
	inRunning  bool
	ttftSeen   bool
}

// Server is the simulated inference server.
type Server struct {
	sim  *sim.Simulation
	heap *memsim.Heap
	cfg  Config

	maxBatchedTokens int // max.num.batched.tokens knob
	waitingLimit     int // admission.queue.limit knob

	// waiting[waitingHead:] is the bounded admission queue (FIFO; evictees
	// rejoin at the head). Consuming advances waitingHead instead of
	// reslicing, so the array's capacity is reused and steady-state admission
	// allocates nothing; the dead prefix is reset when empty and compacted
	// when it dominates.
	waiting        []*seq
	waitingHead    int
	running        []*seq // the continuous batch, admission order
	residentTokens int    // tokens with allocated KV (the deputy, in tokens)
	promptTokens   int    // admitted prompt tokens (what the bound counts)

	stepping bool
	crashed  bool

	// Raw-speed free lists, keyed to this server (NOT sync.Pool: pool reuse
	// order is scheduler-dependent and would break deterministic replay).
	// seqPool recycles completed sequences so a steady-state request
	// allocates nothing; stepBatch is the reusable snapshot of running taken
	// each step (eviction inside ensureKV mutates running mid-loop).
	seqPool   []*seq
	stepBatch []*seq

	// stepScratch is the activation scratch of the single in-flight step;
	// endStepArg reads it back instead of closing over it. endStepFn is
	// endStepArg bound once — creating the method value per AfterArg call
	// would allocate.
	stepScratch int64
	endStepFn   func(uint64)

	// Fleet surface (internal/cluster): identity, liveness across injected
	// instance loss, and the scratch bytes held by in-flight steps that Kill
	// must release. epoch invalidates scheduled callbacks from a previous
	// incarnation.
	id          int
	down        bool
	epoch       uint64
	scratchHeld int64

	completed    metrics.Counter
	rejected     metrics.Counter
	dropped      metrics.Counter // client-visible losses after a crash
	evictions    metrics.Counter
	outputTokens metrics.Counter
	goodput      *metrics.Meter // completed output tokens per second
	ttft         *metrics.Latency
	e2e          *metrics.Latency

	// BeforeStep, when set, runs at the top of every scheduler step — the
	// integration point for the max.num.batched.tokens controller (sense
	// heap, move the knob, before this step's admissions).
	BeforeStep func()
	// BeforeAdmit, when set, runs at the top of every Offer — the
	// integration point for the admission.queue.limit controller.
	BeforeAdmit func()
	// OnEvacuate, when set, receives every waiting or running request
	// displaced by Kill — the fleet's client-retry path. Without it displaced
	// requests count as dropped.
	OnEvacuate func(req workload.LLMRequest)
}

// New returns a server with both knobs wide open (unbounded batch, the
// waiting limit from cfg) — max.num.batched.tokens at its unsafe
// effectively-unbounded default.
func New(s *sim.Simulation, heap *memsim.Heap, cfg Config) *Server {
	if cfg.KVBytesPerToken <= 0 {
		panic("llmserve: KVBytesPerToken must be positive")
	}
	if cfg.StepBase <= 0 {
		panic("llmserve: StepBase must be positive")
	}
	wl := cfg.WaitingLimit
	if wl < 1 {
		wl = math.MaxInt
	}
	sv := &Server{
		sim:              s,
		heap:             heap,
		cfg:              cfg,
		maxBatchedTokens: math.MaxInt,
		waitingLimit:     wl,
		goodput:          metrics.NewMeter(10 * time.Second),
		ttft:             metrics.NewLatency(1024),
		e2e:              metrics.NewLatency(1024),
	}
	sv.endStepFn = sv.endStepArg
	if err := heap.Alloc(cfg.BaseHeapBytes); err != nil {
		sv.crashed = true
	}
	return sv
}

// getSeq returns a recycled sequence or a fresh one, initialized for req.
func (sv *Server) getSeq(req workload.LLMRequest) *seq {
	if n := len(sv.seqPool); n > 0 {
		s := sv.seqPool[n-1]
		sv.seqPool[n-1] = nil
		sv.seqPool = sv.seqPool[:n-1]
		*s = seq{req: req, arrived: sv.sim.Now()}
		return s
	}
	//smartconf:allow hotalloc -- cold-start pool refill: fires only until the pool reaches steady-state depth, then every request recycles
	return &seq{req: req, arrived: sv.sim.Now()}
}

// putSeq recycles a retired sequence. Callers must hold no other reference.
func (sv *Server) putSeq(s *seq) { sv.seqPool = append(sv.seqPool, s) }

// Preallocate grows the sequence machinery to the given high-water mark:
// seqs recycled sequences in the pool, and matching capacity in the waiting
// queue, the continuous batch, and its reusable step snapshot. Wide fleets
// need this — a member seeing a sliver of the fleet's load would otherwise
// keep setting new concurrency watermarks (and allocating for them) for
// millions of requests, which the whole-run zero-allocation gate forbids.
func (sv *Server) Preallocate(seqs int) {
	for len(sv.seqPool) < seqs {
		sv.seqPool = append(sv.seqPool, &seq{})
	}
	if cap(sv.waiting) < seqs {
		w := make([]*seq, len(sv.waiting), seqs)
		copy(w, sv.waiting)
		sv.waiting = w
	}
	if cap(sv.running) < seqs {
		r := make([]*seq, len(sv.running), seqs)
		copy(r, sv.running)
		sv.running = r
	}
	if cap(sv.stepBatch) < seqs {
		sv.stepBatch = make([]*seq, 0, seqs)
	}
}

// popWaiting removes and returns the admission queue's head.
func (sv *Server) popWaiting() *seq {
	s := sv.waiting[sv.waitingHead]
	sv.waiting[sv.waitingHead] = nil
	sv.waitingHead++
	if sv.waitingHead == len(sv.waiting) {
		sv.waiting = sv.waiting[:0]
		sv.waitingHead = 0
	} else if sv.waitingHead > 64 && sv.waitingHead*2 >= len(sv.waiting) {
		m := copy(sv.waiting, sv.waiting[sv.waitingHead:])
		for i := m; i < len(sv.waiting); i++ {
			sv.waiting[i] = nil
		}
		sv.waiting = sv.waiting[:m]
		sv.waitingHead = 0
	}
	return s
}

// pushWaitingFront returns an evictee to the head of the admission queue.
func (sv *Server) pushWaitingFront(s *seq) {
	if sv.waitingHead > 0 {
		sv.waitingHead--
		sv.waiting[sv.waitingHead] = s
		return
	}
	sv.waiting = append(sv.waiting, nil)
	copy(sv.waiting[1:], sv.waiting)
	sv.waiting[0] = s
}

// SetMaxBatchedTokens sets the max.num.batched.tokens knob: admission stops
// while the batch's admitted PROMPT tokens would exceed n. Decode growth is
// not counted — output lengths are unknown at admission — so the resident
// footprint overshoots the bound by the workload's output/prompt ratio
// (§4.2: temporary inconsistency between C and its deputy is tolerated; the
// bound only gates new admissions). Values below zero clamp to zero.
func (sv *Server) SetMaxBatchedTokens(n int) {
	if n < 0 {
		n = 0
	}
	sv.maxBatchedTokens = n
	sv.kick() // a raised bound may unblock a stalled waiting queue
}

// SetWaitingLimit sets the admission.queue.limit knob. Values below zero
// clamp to zero; the bound gates new arrivals only — preempted sequences
// always rejoin the queue.
func (sv *Server) SetWaitingLimit(n int) {
	if n < 0 {
		n = 0
	}
	sv.waitingLimit = n
}

// MaxBatchedTokens returns the current batch-token bound.
func (sv *Server) MaxBatchedTokens() int { return sv.maxBatchedTokens }

// WaitingLimit returns the current admission-queue bound.
func (sv *Server) WaitingLimit() int { return sv.waitingLimit }

// ResidentTokens returns the tokens currently holding KV cache.
func (sv *Server) ResidentTokens() int { return sv.residentTokens }

// KVBytes returns the KV-cache footprint in bytes — the deputy variable of
// the max.num.batched.tokens controller.
func (sv *Server) KVBytes() int64 {
	return int64(sv.residentTokens) * sv.cfg.KVBytesPerToken
}

// PromptTokens returns the batch's admitted prompt tokens — the quantity
// admission compares against the batch bound.
func (sv *Server) PromptTokens() int { return sv.promptTokens }

// WaitingLen returns the admission-queue depth (the admission.queue.limit
// deputy variable).
func (sv *Server) WaitingLen() int { return len(sv.waiting) - sv.waitingHead }

// RunningLen returns the number of sequences in the continuous batch.
func (sv *Server) RunningLen() int { return len(sv.running) }

// Crashed reports whether the server has died (OOM).
func (sv *Server) Crashed() bool { return sv.crashed }

// Completed returns the number of fully decoded requests.
func (sv *Server) Completed() int64 { return sv.completed.Value() }

// Rejected returns the number of requests refused at admission.
func (sv *Server) Rejected() int64 { return sv.rejected.Value() }

// Dropped returns the number of requests lost to a crashed server.
func (sv *Server) Dropped() int64 { return sv.dropped.Value() }

// Evictions returns the number of preemptions (recompute-from-scratch).
func (sv *Server) Evictions() int64 { return sv.evictions.Value() }

// OutputTokens returns the total output tokens of completed requests — the
// goodput numerator (tokens decoded for work that was later evicted and
// restarted, or lost to a crash, do not count).
func (sv *Server) OutputTokens() int64 { return sv.outputTokens.Value() }

// Goodput returns completed output tokens per second over the trailing
// window.
func (sv *Server) Goodput() float64 { return sv.goodput.Rate(sv.sim.Now()) }

// TTFT returns the time-to-first-token tracker (arrival → first output
// token).
func (sv *Server) TTFT() *metrics.Latency { return sv.ttft }

// E2E returns the end-to-end request latency tracker (arrival → last
// output token).
func (sv *Server) E2E() *metrics.Latency { return sv.e2e }

// Offer submits one request. It returns false when the request is refused
// (waiting queue full) or lost (server crashed).
//
//smartconf:hotpath
func (sv *Server) Offer(req workload.LLMRequest) bool {
	if sv.crashed || sv.down {
		sv.dropped.Inc()
		return false
	}
	if sv.BeforeAdmit != nil {
		sv.BeforeAdmit()
	}
	if sv.WaitingLen() >= sv.waitingLimit {
		sv.rejected.Inc()
		return false
	}
	sv.waiting = append(sv.waiting, sv.getSeq(req))
	sv.kick()
	return true
}

func (sv *Server) crash() {
	if sv.crashed {
		return
	}
	sv.crashed = true
	// A dead process serves nothing; all in-flight and queued work is lost
	// from the clients' perspective.
	sv.dropped.Add(int64(sv.WaitingLen() + len(sv.running)))
}

// kick starts the step loop if it is idle and there is work.
func (sv *Server) kick() {
	if sv.stepping || sv.crashed || sv.down {
		return
	}
	if len(sv.running) == 0 && sv.WaitingLen() == 0 {
		return
	}
	sv.stepping = true
	sv.step()
}

// admit moves waiting requests into the batch while their prompts fit under
// the token bound. Prompt tokens only: output lengths are unknown to a real
// server, so decode growth is deliberately not reserved for.
func (sv *Server) admit() {
	for sv.WaitingLen() > 0 {
		s := sv.waiting[sv.waitingHead]
		if sv.promptTokens > sv.maxBatchedTokens-s.req.Prompt {
			break // head-of-line blocking, like a real FIFO admission queue
		}
		sv.popWaiting()
		sv.promptTokens += s.req.Prompt
		s.inRunning = true
		sv.running = append(sv.running, s)
	}
}

// step runs one scheduler iteration: admit, decode one token per running
// sequence, chunk-prefill, then retire after the affine step latency.
func (sv *Server) step() {
	if sv.crashed {
		sv.stepping = false
		return
	}
	if sv.BeforeStep != nil {
		sv.BeforeStep()
		if sv.crashed { // a controller-driven probe may have observed a dead heap
			sv.stepping = false
			return
		}
	}
	sv.admit()

	// Snapshot: eviction inside ensureKV mutates sv.running mid-loop. The
	// snapshot buffer is reused across steps — a fresh slice per step would
	// dominate steady-state allocations.
	batch := append(sv.stepBatch[:0], sv.running...)
	sv.stepBatch = batch
	scheduled := 0

	// Decode: one token for every sequence past prefill.
	for _, s := range batch {
		if !s.inRunning || s.promptDone < s.req.Prompt || s.outputDone >= s.req.Output {
			continue
		}
		if !sv.ensureKV(1, s) {
			return // crashed
		}
		s.kvTokens++
		sv.residentTokens++
		s.outputDone++
		scheduled++
	}

	// Chunked prefill, admission order.
	budget := sv.cfg.PrefillChunk
	if budget < 1 {
		budget = math.MaxInt
	}
	for _, s := range batch {
		if budget == 0 {
			break
		}
		if !s.inRunning || s.promptDone >= s.req.Prompt {
			continue
		}
		k := s.req.Prompt - s.promptDone
		if k > budget {
			k = budget
		}
		if !sv.ensureKV(k, s) {
			return // crashed
		}
		s.kvTokens += k
		sv.residentTokens += k
		s.promptDone += k
		scheduled += k
		budget -= k
	}

	if scheduled == 0 {
		// Nothing runnable: the waiting queue is blocked by the token bound.
		// Park; SetMaxBatchedTokens or a new Offer will kick the loop again.
		sv.stepping = false
		return
	}

	// Activation scratch for this step: allocated mid-kernel, cannot be
	// satisfied by preemption. This is where an over-admitted batch dies.
	scratch := int64(scheduled) * sv.cfg.ScratchBytesPerToken
	if scratch > 0 {
		if err := sv.heap.Alloc(scratch); err != nil {
			sv.crash()
			return
		}
	}

	sv.scratchHeld += scratch
	d := sv.cfg.StepBase + time.Duration(scheduled)*sv.cfg.StepPerToken
	// Closure-free retirement: only one step is ever in flight, so its
	// scratch rides in a field and the epoch rides in the event argument.
	sv.stepScratch = scratch
	sv.sim.AfterArg(d, sv.endStepFn, sv.epoch)
}

// endStepArg is the scheduled form of endStep: the argument carries the
// scheduling incarnation's epoch, invalidating callbacks across Kill.
//
//smartconf:hotpath
func (sv *Server) endStepArg(arg uint64) {
	if sv.epoch != arg {
		return
	}
	sv.endStep(sv.stepScratch)
}

// endStep retires a step: frees scratch, records first tokens and
// completions, and chains the next step.
func (sv *Server) endStep(scratch int64) {
	if sv.crashed {
		return // a dead process releases nothing
	}
	if scratch > 0 {
		sv.heap.Free(scratch)
	}
	sv.scratchHeld -= scratch
	now := sv.sim.Now()
	keep := sv.running[:0]
	for _, s := range sv.running {
		if s.outputDone > 0 && !s.ttftSeen {
			s.ttftSeen = true
			sv.ttft.Observe(now - s.arrived)
		}
		if s.promptDone >= s.req.Prompt && s.outputDone >= s.req.Output {
			// Complete: release the KV cache, count the goodput.
			sv.heap.Free(int64(s.kvTokens) * sv.cfg.KVBytesPerToken)
			sv.residentTokens -= s.kvTokens
			sv.promptTokens -= s.req.Prompt
			s.kvTokens = 0
			s.inRunning = false
			sv.completed.Inc()
			sv.outputTokens.Add(int64(s.req.Output))
			sv.goodput.Mark(now, float64(s.req.Output))
			sv.e2e.Observe(now - s.arrived)
			sv.putSeq(s)
			continue
		}
		keep = append(keep, s)
	}
	for i := len(keep); i < len(sv.running); i++ {
		sv.running[i] = nil
	}
	sv.running = keep
	sv.stepping = false
	sv.kick()
}

// ensureKV makes room for tokens' KV bytes, preempting the newest running
// sequence (never the beneficiary) until the allocation fits. Returns false
// after crashing the server when no preemption can help.
func (sv *Server) ensureKV(tokens int, beneficiary *seq) bool {
	need := int64(tokens) * sv.cfg.KVBytesPerToken
	for sv.heap.Available() < need {
		victim := sv.evictionVictim(beneficiary)
		if victim == nil {
			sv.heap.Alloc(need) // records the OOM on the heap
			sv.crash()
			return false
		}
		sv.evict(victim)
	}
	if err := sv.heap.Alloc(need); err != nil {
		sv.crash()
		return false
	}
	return true
}

// evictionVictim picks the newest running sequence holding KV, skipping the
// sequence the eviction is for.
func (sv *Server) evictionVictim(beneficiary *seq) *seq {
	for i := len(sv.running) - 1; i >= 0; i-- {
		if s := sv.running[i]; s != beneficiary && s.kvTokens > 0 {
			return s
		}
	}
	return nil
}

// evict preempts a sequence: frees its KV, resets its progress
// (recompute-from-scratch, like vLLM's recompute preemption), and returns
// it to the head of the waiting queue.
func (sv *Server) evict(s *seq) {
	for i := len(sv.running) - 1; i >= 0; i-- {
		if sv.running[i] == s {
			sv.running = append(sv.running[:i], sv.running[i+1:]...)
			break
		}
	}
	sv.heap.Free(int64(s.kvTokens) * sv.cfg.KVBytesPerToken)
	sv.residentTokens -= s.kvTokens
	sv.promptTokens -= s.req.Prompt
	s.kvTokens = 0
	s.promptDone = 0
	s.outputDone = 0
	s.inRunning = false
	sv.evictions.Inc()
	sv.pushWaitingFront(s)
}
