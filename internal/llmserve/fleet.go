package llmserve

import "smartconf/internal/workload"

// Fleet surface: what internal/cluster needs to route to, kill, and restart
// this server as one member of an N-wide fleet. The methods are structural —
// the server does not import cluster — so the substrate stays usable
// standalone.

// SetID assigns the server's stable fleet identity (key-affinity hashes it).
func (sv *Server) SetID(id int) { sv.id = id }

// ID returns the fleet identity.
func (sv *Server) ID() int { return sv.id }

// Alive reports whether the server can accept work: neither crashed (OOM)
// nor down (injected instance loss).
func (sv *Server) Alive() bool { return !sv.crashed && !sv.down }

// Down reports whether the server is killed but restartable.
func (sv *Server) Down() bool { return sv.down }

// Load returns the server's backlog — waiting plus running sequences — the
// signal load-aware routing policies compare.
func (sv *Server) Load() float64 { return float64(sv.WaitingLen() + len(sv.running)) }

// Kill models abrupt process death for fleet chaos: the accelerator heap is
// released in full (base weights, resident KV, in-flight step scratch),
// every waiting and running request is handed to OnEvacuate (the fleet's
// client-retry path, losing its decode progress) or counted dropped, and
// every callback scheduled by this incarnation is invalidated. Unlike
// crash(), which models an OOM'd process that releases nothing, a killed
// process gives its memory back — that is what makes restart possible.
func (sv *Server) Kill() {
	if sv.crashed || sv.down {
		return
	}
	sv.down = true
	sv.epoch++
	held := int64(sv.residentTokens)*sv.cfg.KVBytesPerToken + sv.scratchHeld + sv.cfg.BaseHeapBytes
	for _, s := range sv.waiting[sv.waitingHead:] {
		sv.evacuateReq(s.req)
		sv.putSeq(s)
	}
	for _, s := range sv.running {
		sv.evacuateReq(s.req)
		sv.putSeq(s)
	}
	for i := range sv.waiting {
		sv.waiting[i] = nil
	}
	sv.waiting = sv.waiting[:0]
	sv.waitingHead = 0
	for i := range sv.running {
		sv.running[i] = nil
	}
	sv.running = sv.running[:0]
	sv.residentTokens = 0
	sv.promptTokens = 0
	sv.scratchHeld = 0
	sv.stepping = false
	sv.heap.Free(held)
}

// Restart brings a killed server back as a cold process: weights reloaded,
// empty batch; cumulative counters are observer-side totals and persist
// across incarnations. A crashed (OOM) server stays dead. If the base heap
// no longer fits, the restart itself OOMs.
func (sv *Server) Restart() {
	if sv.crashed || !sv.down {
		return
	}
	if err := sv.heap.Alloc(sv.cfg.BaseHeapBytes); err != nil {
		sv.crashed = true
		return
	}
	sv.down = false
}

func (sv *Server) evacuateReq(req workload.LLMRequest) {
	if sv.OnEvacuate != nil {
		sv.OnEvacuate(req)
		return
	}
	sv.dropped.Inc()
}
