package cluster

import "testing"

// BenchmarkRouterRoute measures one routing decision on the key-affinity
// policy (the most work per decision: one rendezvous mix per member) over a
// 16-member fleet. The number in BENCH_engine.json is re-measured by
// internal/benchgate, which fails CI if this path ever allocates.
func BenchmarkRouterRoute(b *testing.B) {
	fakes := newFakes(16)
	r := routerOver(KeyAffinity, fakes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RouteExcluding(Request{Key: uint64(i), Cost: 1}, TriedSet{})
	}
}

// BenchmarkFleetRouteWide is the wide-router gate: one key-affinity decision
// over a 256-member fleet with a scattered mix of dead (every 5th) and tried
// (every 7th) members, so the eligible-set word math, the dead cache, and
// the salted rendezvous scan are all on the measured path. Benchgate-gated
// at 0 allocs/op via BENCH_engine.json.
func BenchmarkFleetRouteWide(b *testing.B) {
	fakes := newFakes(256)
	for i := 0; i < 256; i += 5 {
		fakes[i].alive = false
	}
	r := routerOver(KeyAffinity, fakes)
	var tried TriedSet
	for i := 0; i < 256; i += 7 {
		tried.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RouteExcluding(Request{Key: uint64(i), Cost: 1}, tried)
	}
}

// BenchmarkFleetRouteWideLeastLoaded measures the tournament-sample path: a
// least-loaded decision over 256 members costs tournamentSamples Load()
// calls plus the word-level candidate math, not a 256-member scan.
func BenchmarkFleetRouteWideLeastLoaded(b *testing.B) {
	fakes := newFakes(256)
	for i := range fakes {
		fakes[i].load = float64(i % 17)
	}
	r := routerOver(LeastLoaded, fakes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RouteExcluding(Request{Key: uint64(i), Cost: 1}, TriedSet{})
	}
}
