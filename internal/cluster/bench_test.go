package cluster

import "testing"

// BenchmarkRouterRoute measures one routing decision on the key-affinity
// policy (the most work per decision: one rendezvous hash per member) over a
// 16-member fleet. The number in BENCH_engine.json is re-measured by
// internal/benchgate, which fails CI if this path ever allocates.
func BenchmarkRouterRoute(b *testing.B) {
	fakes := newFakes(16)
	r := routerOver(KeyAffinity, fakes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RouteExcluding(Request{Key: uint64(i), Cost: 1}, 0)
	}
}
