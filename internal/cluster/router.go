package cluster

// PolicyKind selects the routing policy a Router applies.
type PolicyKind int

const (
	// RoundRobin rotates through live members in ID order.
	RoundRobin PolicyKind = iota
	// LeastLoaded picks the live member with the smallest Load(); ties go to
	// the lowest index, so the choice is deterministic.
	LeastLoaded
	// WeightedScore picks the live member minimizing (Load()+Cost)/weight —
	// least-loaded generalized to heterogeneous capacities.
	WeightedScore
	// KeyAffinity picks by rendezvous (highest-random-weight) hashing over
	// Key and member ID: the same key always lands on the same live member,
	// and when a member dies only its keys move.
	KeyAffinity
)

// String returns the policy's stable name (used in cache keys and renders).
func (k PolicyKind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case WeightedScore:
		return "weighted-score"
	case KeyAffinity:
		return "key-affinity"
	}
	return "unknown"
}

// Router places requests on fleet members according to one PolicyKind. The
// decision path is allocation-free: it runs once per simulated request.
type Router struct {
	policy  PolicyKind
	members []Instance
	weights []float64
	rr      int
}

// NewRouter returns an empty router with the given policy.
func NewRouter(policy PolicyKind) *Router {
	return &Router{policy: policy}
}

// Add registers a member with its weight (relative capacity for the
// weighted-scoring policy; non-positive weights are treated as 1).
func (r *Router) Add(inst Instance, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	r.members = append(r.members, inst)
	r.weights = append(r.weights, weight)
}

// Policy returns the router's policy.
func (r *Router) Policy() PolicyKind { return r.policy }

// Len returns the member count.
func (r *Router) Len() int { return len(r.members) }

// Route picks a member index for the request, or -1 if no live member is
// available.
func (r *Router) Route(req Request) int { return r.RouteExcluding(req, 0) }

// RouteExcluding picks a member like Route but skips members whose bit is
// set in tried — the fleet's retry loop masks each member that refused a
// request and re-routes, so rejected work spills to the next-best member
// with no per-attempt allocation.
func (r *Router) RouteExcluding(req Request, tried uint64) int {
	n := len(r.members)
	if n == 0 {
		return -1
	}
	switch r.policy {
	case RoundRobin:
		for i := 0; i < n; i++ {
			idx := r.rr + i
			if idx >= n {
				idx -= n
			}
			if r.eligible(idx, tried) {
				r.rr = idx + 1
				if r.rr >= n {
					r.rr = 0
				}
				return idx
			}
		}
		return -1
	case LeastLoaded:
		best, bestLoad := -1, 0.0
		for i := 0; i < n; i++ {
			if !r.eligible(i, tried) {
				continue
			}
			l := r.members[i].Load()
			if best < 0 || l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	case WeightedScore:
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if !r.eligible(i, tried) {
				continue
			}
			s := (r.members[i].Load() + req.Cost) / r.weights[i]
			if best < 0 || s < bestScore {
				best, bestScore = i, s
			}
		}
		return best
	case KeyAffinity:
		best := -1
		var bestHash uint64
		for i := 0; i < n; i++ {
			if !r.eligible(i, tried) {
				continue
			}
			h := rendezvous(req.Key, r.members[i].ID())
			if best < 0 || h > bestHash {
				best, bestHash = i, h
			}
		}
		return best
	}
	return -1
}

func (r *Router) eligible(i int, tried uint64) bool {
	return tried&(1<<uint(i)) == 0 && r.members[i].Alive()
}

// rendezvous scores (key, member) with a splitmix64-style mix. Each member
// hashes every key independently, so removing a member reassigns only the
// keys it owned — the property that keeps affinity stable under loss.
func rendezvous(key uint64, id int) uint64 {
	return mix64(key ^ mix64(uint64(id)+0x9e3779b97f4a7c15))
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed integer mix
// with no allocation and no table state.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
