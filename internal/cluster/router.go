package cluster

import "math/bits"

// PolicyKind selects the routing policy a Router applies.
type PolicyKind int

const (
	// RoundRobin rotates through live members in ID order.
	RoundRobin PolicyKind = iota
	// LeastLoaded picks the live member with the smallest Load(); ties go to
	// the lowest index, so the choice is deterministic. On fleets wider than
	// tournamentWidth it samples tournamentSamples candidates instead of
	// scanning every member (power-of-d-choices, deterministic draw).
	LeastLoaded
	// WeightedScore picks the live member minimizing (Load()+Cost)/weight —
	// least-loaded generalized to heterogeneous capacities. Wide fleets use
	// the same tournament-sample path as LeastLoaded.
	WeightedScore
	// KeyAffinity picks by rendezvous (highest-random-weight) hashing over
	// Key and member ID: the same key always lands on the same live member,
	// and when a member dies only its keys move.
	KeyAffinity
	// PrefixAffinity picks by rendezvous hashing over the request's Prefix
	// key instead of its full Key: requests sharing a prompt prefix (a chat
	// template, a system prompt, a tenant) land on the same member, so an
	// llmserve fleet reuses the KV state the prefix already resides in.
	PrefixAffinity
)

// String returns the policy's stable name (used in cache keys and renders).
func (k PolicyKind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case WeightedScore:
		return "weighted-score"
	case KeyAffinity:
		return "key-affinity"
	case PrefixAffinity:
		return "prefix-affinity"
	}
	return "unknown"
}

// triedWords sizes the retry bitset: maxMembers bits in fixed-size words, so
// a TriedSet lives on the stack and a route decision allocates nothing.
const triedWords = maxMembers / 64

// TriedSet is the fixed-size member bitset the fleet's retry loop threads
// through RouteExcluding: value-typed, one bit per member, no allocation.
type TriedSet [triedWords]uint64

// Set marks member i as tried.
func (t *TriedSet) Set(i int) { t[i>>6] |= 1 << uint(i&63) }

// Has reports whether member i is marked.
func (t *TriedSet) Has(i int) bool { return t[i>>6]&(1<<uint(i&63)) != 0 }

const (
	// tournamentWidth is the eligible-set size above which the load-scanning
	// policies (least-loaded, weighted-scoring) stop evaluating every
	// candidate and sample instead: below it an exhaustive scan is cheaper
	// than the bookkeeping, and keeping it at 64 pins every pre-wide fleet
	// (and artifact) to the exact exhaustive-scan behavior.
	tournamentWidth = 64
	// tournamentSamples is the tournament size: d independent draws from the
	// eligible set, best-of-d by the policy's score. d=8 keeps the max-load
	// overshoot of power-of-d-choices negligible while cutting a 256-member
	// scan to 8 Load() calls.
	tournamentSamples = 8
)

// Router places requests on fleet members according to one PolicyKind. The
// decision path is allocation-free: it runs once per simulated request.
//
// Liveness is tracked lazily: members observed dead (a routed-to winner
// whose Alive() came back false) are cached in a dead-set word array, so
// subsequent routes skip them with bit arithmetic instead of per-member
// Alive() calls. Cached-dead members are re-checked at the top of every
// route — O(dead), which is zero in steady state — so a restarted member is
// eligible again on the very next decision.
type Router struct {
	policy  PolicyKind
	members []Instance
	weights []float64
	// salts holds each member's precomputed rendezvous salt
	// (mix64(id+goldenGamma)): Add-time work that halves the per-route hash
	// cost of the affinity policies.
	salts []uint64
	// all has one bit set per registered member; dead caches members
	// observed dead since their last Alive()=true sighting.
	all       TriedSet
	dead      TriedSet
	deadCount int
	rr        int
	// tick seeds the tournament sample draws: a deterministic sequence, so
	// replayed runs sample identically.
	tick uint64
}

// NewRouter returns an empty router with the given policy.
func NewRouter(policy PolicyKind) *Router {
	return &Router{policy: policy}
}

// Add registers a member with its weight (relative capacity for the
// weighted-scoring policy; non-positive weights are treated as 1). Routers
// are bounded at maxMembers members — the fixed width of the retry bitset.
func (r *Router) Add(inst Instance, weight float64) {
	if len(r.members) >= maxMembers {
		panic("cluster: router exceeds 256 members")
	}
	if weight <= 0 {
		weight = 1
	}
	r.all.Set(len(r.members))
	r.members = append(r.members, inst)
	r.weights = append(r.weights, weight)
	r.salts = append(r.salts, mix64(uint64(inst.ID())+goldenGamma))
}

// Policy returns the router's policy.
func (r *Router) Policy() PolicyKind { return r.policy }

// Len returns the member count.
func (r *Router) Len() int { return len(r.members) }

// Route picks a member index for the request, or -1 if no live member is
// available.
//
//smartconf:hotpath
func (r *Router) Route(req Request) int { return r.RouteExcluding(req, TriedSet{}) }

// RouteExcluding picks a member like Route but skips members whose bit is
// set in tried — the fleet's retry loop marks each member that refused a
// request and re-routes, so rejected work spills to the next-best member
// with no per-attempt allocation.
//
//smartconf:hotpath
func (r *Router) RouteExcluding(req Request, tried TriedSet) int {
	n := len(r.members)
	if n == 0 {
		return -1
	}
	r.reviveDead()
	for {
		// Eligible = registered &^ dead &^ tried, one word op per 64 members.
		var cand TriedSet
		any := false
		for w := 0; w < triedWords; w++ {
			cand[w] = r.all[w] &^ r.dead[w] &^ tried[w]
			any = any || cand[w] != 0
		}
		if !any {
			return -1
		}
		i := r.pick(req, &cand)
		if i < 0 {
			return -1
		}
		// One Alive() call per decision: the winner is verified, and a stale
		// winner joins the dead cache so the rescan skips it by bit math.
		if r.members[i].Alive() {
			if r.policy == RoundRobin {
				r.rr = i + 1
				if r.rr >= n {
					r.rr = 0
				}
			}
			return i
		}
		r.dead.Set(i)
		r.deadCount++
	}
}

// reviveDead re-checks every cached-dead member — O(dead), usually zero —
// clearing the bit of any member that has come back, so restarts take
// effect on the next routing decision.
func (r *Router) reviveDead() {
	if r.deadCount == 0 {
		return
	}
	for w := 0; w < triedWords; w++ {
		m := r.dead[w]
		for m != 0 {
			i := w*64 + bits.TrailingZeros64(m)
			if r.members[i].Alive() {
				r.dead[w] &^= 1 << uint(i&63)
				r.deadCount--
			}
			m &= m - 1
		}
	}
}

// pick applies the routing policy over the candidate bitset and returns the
// chosen index (a set bit of cand), or -1 if cand is empty.
func (r *Router) pick(req Request, cand *TriedSet) int {
	switch r.policy {
	case RoundRobin:
		return pickFrom(cand, r.rr)
	case LeastLoaded:
		if wide, count := r.wideEligible(cand); wide {
			return r.pickTournament(req, cand, count, false)
		}
		return r.scanLoad(req, cand, false)
	case WeightedScore:
		if wide, count := r.wideEligible(cand); wide {
			return r.pickTournament(req, cand, count, true)
		}
		return r.scanLoad(req, cand, true)
	case KeyAffinity:
		return r.scanRendezvous(req.Key, cand)
	case PrefixAffinity:
		return r.scanRendezvous(req.Prefix, cand)
	}
	return -1
}

// wideEligible reports whether the eligible set is past the tournament
// threshold, returning its population count when it is.
func (r *Router) wideEligible(cand *TriedSet) (bool, int) {
	if len(r.members) <= tournamentWidth {
		return false, 0
	}
	count := 0
	for w := 0; w < triedWords; w++ {
		count += bits.OnesCount64(cand[w])
	}
	return count > tournamentWidth, count
}

// scanLoad is the exhaustive load scan: every eligible bit evaluated,
// strict-less ascending so ties go to the lowest index.
func (r *Router) scanLoad(req Request, cand *TriedSet, weighted bool) int {
	best := -1
	bestScore := 0.0
	for w := 0; w < triedWords; w++ {
		m := cand[w]
		for m != 0 {
			i := w*64 + bits.TrailingZeros64(m)
			m &= m - 1
			s := r.members[i].Load()
			if weighted {
				s = (s + req.Cost) / r.weights[i]
			}
			if best < 0 || s < bestScore {
				best, bestScore = i, s
			}
		}
	}
	return best
}

// pickTournament is the wide-fleet sampling path: tournamentSamples
// deterministic draws from the eligible set, scored like scanLoad. Sampled
// indices are insertion-sorted ascending before scoring so the tie rule
// (lowest index wins) matches the exhaustive scan's.
func (r *Router) pickTournament(req Request, cand *TriedSet, count int, weighted bool) int {
	r.tick++
	var sample [tournamentSamples]int
	ns := 0
	for k := 0; k < tournamentSamples; k++ {
		j := int(mix64(r.tick*goldenGamma+uint64(k)) % uint64(count))
		i := selectBit(cand, j)
		// Insertion sort, dropping duplicates: d draws with replacement.
		pos := ns
		for pos > 0 && sample[pos-1] >= i {
			if sample[pos-1] == i {
				pos = -1
				break
			}
			pos--
		}
		if pos < 0 {
			continue
		}
		copy(sample[pos+1:ns+1], sample[pos:ns])
		sample[pos] = i
		ns++
	}
	best := -1
	bestScore := 0.0
	for k := 0; k < ns; k++ {
		i := sample[k]
		s := r.members[i].Load()
		if weighted {
			s = (s + req.Cost) / r.weights[i]
		}
		if best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// scanRendezvous is the affinity scan: highest rendezvous hash over the
// eligible bits, one precomputed-salt mix per member.
func (r *Router) scanRendezvous(key uint64, cand *TriedSet) int {
	best := -1
	var bestHash uint64
	for w := 0; w < triedWords; w++ {
		m := cand[w]
		for m != 0 {
			i := w*64 + bits.TrailingZeros64(m)
			m &= m - 1
			h := mix64(key ^ r.salts[i])
			if best < 0 || h > bestHash {
				best, bestHash = i, h
			}
		}
	}
	return best
}

// pickFrom returns the first set bit at index >= from, wrapping — the
// round-robin successor found by word-level bit tricks instead of a scan.
func pickFrom(cand *TriedSet, from int) int {
	w := from >> 6
	if w >= triedWords {
		w, from = 0, 0
	}
	off := uint(from & 63)
	if m := cand[w] &^ ((1 << off) - 1); m != 0 {
		return w*64 + bits.TrailingZeros64(m)
	}
	for wi := w + 1; wi < triedWords; wi++ {
		if cand[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(cand[wi])
		}
	}
	for wi := 0; wi < w; wi++ {
		if cand[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(cand[wi])
		}
	}
	if m := cand[w] & ((1 << off) - 1); m != 0 {
		return w*64 + bits.TrailingZeros64(m)
	}
	return -1
}

// selectBit returns the index of the j-th (0-based) set bit of the bitset,
// or -1 when fewer than j+1 bits are set.
func selectBit(t *TriedSet, j int) int {
	for w := 0; w < triedWords; w++ {
		c := bits.OnesCount64(t[w])
		if j >= c {
			j -= c
			continue
		}
		x := t[w]
		for ; j > 0; j-- {
			x &= x - 1
		}
		return w*64 + bits.TrailingZeros64(x)
	}
	return -1
}

// goldenGamma is the splitmix64 increment: the odd constant salting each
// member's rendezvous hash stream.
const goldenGamma = 0x9e3779b97f4a7c15

// rendezvous scores (key, member) with a splitmix64-style mix. Each member
// hashes every key independently, so removing a member reassigns only the
// keys it owned — the property that keeps affinity stable under loss. The
// routing path uses the salted form (member half precomputed at Add time);
// this two-argument form is the reference the salt-pinning test compares
// against.
func rendezvous(key uint64, id int) uint64 {
	return mix64(key ^ mix64(uint64(id)+goldenGamma))
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed integer mix
// with no allocation and no table state.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
