package cluster

import (
	"fmt"
	"math"

	"smartconf"
	"smartconf/internal/declog"
)

// AdmissionControl is the slice of the fleet the coordinator drives: the
// global deputy signal and the global admission knob. Fleet[R] satisfies it
// for any R.
type AdmissionControl interface {
	TotalLoad() float64
	SetMaxInFlight(int)
}

// NodeControl wires one fleet member's knob to its SmartConf controllers.
// Either controller may be nil (a node with only a hard guard, or only a
// soft goal); when both propose a bound the coordinator applies the minimum,
// so the hard fleet-wide goal can only ever tighten what the soft per-node
// goal would allow.
type NodeControl struct {
	// Inst is the member; a dead member's controllers are frozen (sensing a
	// killed process would feed zeros into the controller state).
	Inst Instance
	// Memory guards the hard fleet-wide memory goal through this node's
	// knob. Indirect: the knob (e.g. queue limit) does not appear in the
	// profile's x-axis directly, the deputy metric does (§5.3).
	Memory *smartconf.IndirectConf
	// Deputy senses the node-local deputy metric shared by both guards
	// (e.g. current queue length).
	Deputy func() float64
	// Latency is the node's soft-goal controller (e.g. p99 ≤ goal), a direct
	// integral conf over the same knob. Its Spec.Max should be the largest
	// setting the soft goal could ever justify (derive it from the
	// profile), so that while another constraint binds the integrator can
	// wind up only as far as the model-predicted goal setting — never to an
	// arbitrary cap a transient could then blow past the goal with.
	Latency *smartconf.Conf
	// SenseLatency senses the node-local soft-goal metric.
	SenseLatency func() float64
	// Apply pushes the layered bound min(memory, latency) into the node's
	// knob.
	Apply func(bound int)
}

// Coordinator runs fleet-level configuration control: N per-node hard-goal
// guards plus one global admission controller share a single fleet-wide
// metric (interaction factor N+1, §5.4 — each controller moves as if the
// others will make the same relative move), layered over per-node soft-goal
// controllers. The two goals run on independent cadences: call StepMemory on
// the fast (hard-goal) cadence and StepLatency on the slow (soft-goal,
// sensor-settling) cadence.
type Coordinator struct {
	fleet       AdmissionControl
	fleetMetric func() float64
	admission   *smartconf.IndirectConf
	nodes       []NodeControl

	memBound []int
	latBound []int
	lastAdm  int

	log        *declog.Log // optional decision log; nil when tracing is off
	admSrc     declog.Source
	nodeSrc    []declog.Source
	applies    []uint32 // per-node layered-bound decision count
	admApplies uint32
}

// NewCoordinator wires the control plane. fleetMetric senses the shared
// fleet-wide hard-goal metric (e.g. total heap bytes across members);
// admission, if non-nil, drives the fleet's global admission knob from the
// same metric with TotalLoad as deputy.
func NewCoordinator(fleet AdmissionControl, fleetMetric func() float64, admission *smartconf.IndirectConf, nodes []NodeControl) *Coordinator {
	c := &Coordinator{
		fleet:       fleet,
		fleetMetric: fleetMetric,
		admission:   admission,
		nodes:       nodes,
		memBound:    make([]int, len(nodes)),
		latBound:    make([]int, len(nodes)),
		lastAdm:     math.MaxInt,
	}
	for i := range nodes {
		c.memBound[i] = math.MaxInt
		c.latBound[i] = math.MaxInt
	}
	return c
}

// AttachLog makes the coordinator record its fleet-level decisions — the
// global admission knob and every layered per-node bound — into l, alongside
// whatever the underlying per-node controllers log themselves (attach those
// via smartconf.WithDecisionLog at construction).
func (c *Coordinator) AttachLog(l *declog.Log) {
	c.log = l
	c.admSrc = l.Register("fleet.admission")
	c.nodeSrc = make([]declog.Source, len(c.nodes))
	c.applies = make([]uint32, len(c.nodes))
	for i := range c.nodes {
		c.nodeSrc[i] = l.Register(fmt.Sprintf("fleet.node%d.bound", i))
	}
}

// StepMemory runs one hard-goal control round: sense the fleet metric once,
// feed it to the global admission controller and every live node's memory
// guard, and re-apply the layered per-node bounds.
func (c *Coordinator) StepMemory() {
	m := c.fleetMetric()
	if c.admission != nil {
		c.admission.SetPerf(m, c.fleet.TotalLoad())
		a := c.admission.Conf()
		raw := a
		if a < 0 {
			a = 0
		}
		c.lastAdm = a
		c.fleet.SetMaxInFlight(a)
		if c.log != nil {
			reason := declog.ClampNone
			if raw < 0 {
				reason = declog.ClampMin
			}
			c.admApplies++
			c.log.Append(declog.Record{
				Source:  c.admSrc,
				Period:  c.admApplies,
				Clamp:   reason,
				Sensed:  m,
				Raw:     float64(raw),
				Applied: float64(a),
			})
		}
	}
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.Memory == nil || (n.Inst != nil && !n.Inst.Alive()) {
			continue
		}
		n.Memory.SetPerf(m, n.Deputy())
		c.memBound[i] = n.Memory.Conf()
		c.apply(i)
	}
}

// StepLatency runs one soft-goal control round across live nodes and
// re-applies the layered bounds.
func (c *Coordinator) StepLatency() {
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.Latency == nil || (n.Inst != nil && !n.Inst.Alive()) {
			continue
		}
		n.Latency.SetPerf(n.SenseLatency())
		c.latBound[i] = n.Latency.Conf()
		c.apply(i)
	}
}

func (c *Coordinator) apply(i int) {
	n := &c.nodes[i]
	if n.Apply == nil {
		return
	}
	b := c.memBound[i]
	layered := false
	if c.latBound[i] < b {
		b = c.latBound[i]
		layered = true
	}
	raw := b
	if b < 0 {
		b = 0
	}
	n.Apply(b)
	if c.log != nil {
		// The layered bound is itself a decision worth replaying: which
		// controller's proposal won, and whether the floor rescued it.
		reason := declog.ClampNone
		switch {
		case raw < 0:
			reason = declog.ClampMin
		case layered:
			reason = declog.ClampLayered
		}
		c.applies[i]++
		c.log.Append(declog.Record{
			Source:  c.nodeSrc[i],
			Period:  c.applies[i],
			Clamp:   reason,
			Sensed:  float64(c.memBound[i]),
			Raw:     float64(raw),
			Applied: float64(b),
		})
	}
}

// Bound returns node i's currently layered bound min(memory, latency).
func (c *Coordinator) Bound(i int) int {
	b := c.memBound[i]
	if c.latBound[i] < b {
		b = c.latBound[i]
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Admission returns the last value applied to the global admission knob
// (math.MaxInt before the first StepMemory, or with no admission
// controller).
func (c *Coordinator) Admission() int { return c.lastAdm }
