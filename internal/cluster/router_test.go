package cluster

import "testing"

// fake is a minimal Instance for router and fleet tests.
type fake struct {
	id    int
	alive bool
	load  float64
}

func (f *fake) ID() int       { return f.id }
func (f *fake) Alive() bool   { return f.alive }
func (f *fake) Load() float64 { return f.load }

func newFakes(n int) []*fake {
	out := make([]*fake, n)
	for i := range out {
		out[i] = &fake{id: i, alive: true}
	}
	return out
}

func routerOver(policy PolicyKind, fakes []*fake) *Router {
	r := NewRouter(policy)
	for _, f := range fakes {
		r.Add(f, 1)
	}
	return r
}

func TestRoundRobinRotates(t *testing.T) {
	fakes := newFakes(3)
	r := routerOver(RoundRobin, fakes)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Route(Request{}))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsDead(t *testing.T) {
	fakes := newFakes(3)
	fakes[1].alive = false
	r := routerOver(RoundRobin, fakes)
	for i, want := range []int{0, 2, 0, 2} {
		if got := r.Route(Request{}); got != want {
			t.Fatalf("pick %d: got %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoadedPicksMinTieLowestIndex(t *testing.T) {
	fakes := newFakes(3)
	fakes[0].load = 5
	fakes[1].load = 2
	fakes[2].load = 2
	r := routerOver(LeastLoaded, fakes)
	if got := r.Route(Request{}); got != 1 {
		t.Fatalf("got %d, want 1 (min load, lowest index on tie)", got)
	}
	fakes[1].load = 9
	if got := r.Route(Request{}); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestWeightedScoreDividesByWeight(t *testing.T) {
	fakes := newFakes(2)
	fakes[0].load = 10
	fakes[1].load = 10
	r := NewRouter(WeightedScore)
	r.Add(fakes[0], 1)
	r.Add(fakes[1], 4) // 4x the capacity: score (10+2)/4 < (10+2)/1
	if got := r.Route(Request{Cost: 2}); got != 1 {
		t.Fatalf("got %d, want the higher-capacity member", got)
	}
}

func TestKeyAffinityStableAndMinimal(t *testing.T) {
	fakes := newFakes(4)
	r := routerOver(KeyAffinity, fakes)
	const keys = 512
	owner := make([]int, keys)
	for k := 0; k < keys; k++ {
		owner[k] = r.Route(Request{Key: uint64(k)})
		if again := r.Route(Request{Key: uint64(k)}); again != owner[k] {
			t.Fatalf("key %d not stable: %d then %d", k, owner[k], again)
		}
	}
	// Kill one member: only its keys may move, and they must all move.
	victim := owner[0]
	fakes[victim].alive = false
	for k := 0; k < keys; k++ {
		got := r.Route(Request{Key: uint64(k)})
		if owner[k] != victim && got != owner[k] {
			t.Fatalf("key %d moved from %d to %d though its owner survived", k, owner[k], got)
		}
		if owner[k] == victim && got == victim {
			t.Fatalf("key %d still routed to dead member %d", k, victim)
		}
	}
	// Resurrect: every key returns to its original owner.
	fakes[victim].alive = true
	for k := 0; k < keys; k++ {
		if got := r.Route(Request{Key: uint64(k)}); got != owner[k] {
			t.Fatalf("key %d did not return to %d after restart, got %d", k, owner[k], got)
		}
	}
}

func TestKeyAffinitySpreadsKeys(t *testing.T) {
	fakes := newFakes(4)
	r := routerOver(KeyAffinity, fakes)
	counts := make([]int, 4)
	for k := 0; k < 4096; k++ {
		counts[r.Route(Request{Key: uint64(k)})]++
	}
	for i, c := range counts {
		if c < 512 || c > 1536 {
			t.Fatalf("member %d owns %d of 4096 keys — rendezvous spread badly skewed: %v", i, c, counts)
		}
	}
}

func TestRouteExcludingHonorsMask(t *testing.T) {
	fakes := newFakes(3)
	fakes[0].load = 0
	fakes[1].load = 1
	fakes[2].load = 2
	r := routerOver(LeastLoaded, fakes)
	if got := r.RouteExcluding(Request{}, 1<<0); got != 1 {
		t.Fatalf("got %d, want 1 with member 0 masked", got)
	}
	if got := r.RouteExcluding(Request{}, 1<<0|1<<1); got != 2 {
		t.Fatalf("got %d, want 2 with members 0,1 masked", got)
	}
	if got := r.RouteExcluding(Request{}, 1<<0|1<<1|1<<2); got != -1 {
		t.Fatalf("got %d, want -1 with every member masked", got)
	}
}

func TestRouteEmptyAndAllDead(t *testing.T) {
	r := NewRouter(RoundRobin)
	if got := r.Route(Request{}); got != -1 {
		t.Fatalf("empty router routed to %d", got)
	}
	fakes := newFakes(2)
	fakes[0].alive = false
	fakes[1].alive = false
	for _, p := range []PolicyKind{RoundRobin, LeastLoaded, WeightedScore, KeyAffinity} {
		if got := routerOver(p, fakes).Route(Request{Key: 7}); got != -1 {
			t.Fatalf("%s routed to %d with every member dead", p, got)
		}
	}
}

func TestPolicyKindStrings(t *testing.T) {
	want := map[PolicyKind]string{
		RoundRobin:     "round-robin",
		LeastLoaded:    "least-loaded",
		WeightedScore:  "weighted-score",
		KeyAffinity:    "key-affinity",
		PolicyKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestRouteZeroAllocs pins the routing hot path at zero allocations per
// decision for every policy — the contract BENCH_engine.json gates.
func TestRouteZeroAllocs(t *testing.T) {
	fakes := newFakes(16)
	for _, p := range []PolicyKind{RoundRobin, LeastLoaded, WeightedScore, KeyAffinity} {
		r := routerOver(p, fakes)
		key := uint64(0)
		got := testing.AllocsPerRun(1000, func() {
			key++
			r.RouteExcluding(Request{Key: key, Cost: 1}, 0)
		})
		if got != 0 {
			t.Errorf("%s: %.1f allocs per route, want 0", p, got)
		}
	}
}
