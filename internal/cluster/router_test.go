package cluster

import "testing"

// fake is a minimal Instance for router and fleet tests.
type fake struct {
	id    int
	alive bool
	load  float64
}

func (f *fake) ID() int       { return f.id }
func (f *fake) Alive() bool   { return f.alive }
func (f *fake) Load() float64 { return f.load }

func newFakes(n int) []*fake {
	out := make([]*fake, n)
	for i := range out {
		out[i] = &fake{id: i, alive: true}
	}
	return out
}

func routerOver(policy PolicyKind, fakes []*fake) *Router {
	r := NewRouter(policy)
	for _, f := range fakes {
		r.Add(f, 1)
	}
	return r
}

func TestRoundRobinRotates(t *testing.T) {
	fakes := newFakes(3)
	r := routerOver(RoundRobin, fakes)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Route(Request{}))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsDead(t *testing.T) {
	fakes := newFakes(3)
	fakes[1].alive = false
	r := routerOver(RoundRobin, fakes)
	for i, want := range []int{0, 2, 0, 2} {
		if got := r.Route(Request{}); got != want {
			t.Fatalf("pick %d: got %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoadedPicksMinTieLowestIndex(t *testing.T) {
	fakes := newFakes(3)
	fakes[0].load = 5
	fakes[1].load = 2
	fakes[2].load = 2
	r := routerOver(LeastLoaded, fakes)
	if got := r.Route(Request{}); got != 1 {
		t.Fatalf("got %d, want 1 (min load, lowest index on tie)", got)
	}
	fakes[1].load = 9
	if got := r.Route(Request{}); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestWeightedScoreDividesByWeight(t *testing.T) {
	fakes := newFakes(2)
	fakes[0].load = 10
	fakes[1].load = 10
	r := NewRouter(WeightedScore)
	r.Add(fakes[0], 1)
	r.Add(fakes[1], 4) // 4x the capacity: score (10+2)/4 < (10+2)/1
	if got := r.Route(Request{Cost: 2}); got != 1 {
		t.Fatalf("got %d, want the higher-capacity member", got)
	}
}

func TestKeyAffinityStableAndMinimal(t *testing.T) {
	fakes := newFakes(4)
	r := routerOver(KeyAffinity, fakes)
	const keys = 512
	owner := make([]int, keys)
	for k := 0; k < keys; k++ {
		owner[k] = r.Route(Request{Key: uint64(k)})
		if again := r.Route(Request{Key: uint64(k)}); again != owner[k] {
			t.Fatalf("key %d not stable: %d then %d", k, owner[k], again)
		}
	}
	// Kill one member: only its keys may move, and they must all move.
	victim := owner[0]
	fakes[victim].alive = false
	for k := 0; k < keys; k++ {
		got := r.Route(Request{Key: uint64(k)})
		if owner[k] != victim && got != owner[k] {
			t.Fatalf("key %d moved from %d to %d though its owner survived", k, owner[k], got)
		}
		if owner[k] == victim && got == victim {
			t.Fatalf("key %d still routed to dead member %d", k, victim)
		}
	}
	// Resurrect: every key returns to its original owner.
	fakes[victim].alive = true
	for k := 0; k < keys; k++ {
		if got := r.Route(Request{Key: uint64(k)}); got != owner[k] {
			t.Fatalf("key %d did not return to %d after restart, got %d", k, owner[k], got)
		}
	}
}

func TestKeyAffinitySpreadsKeys(t *testing.T) {
	fakes := newFakes(4)
	r := routerOver(KeyAffinity, fakes)
	counts := make([]int, 4)
	for k := 0; k < 4096; k++ {
		counts[r.Route(Request{Key: uint64(k)})]++
	}
	for i, c := range counts {
		if c < 512 || c > 1536 {
			t.Fatalf("member %d owns %d of 4096 keys — rendezvous spread badly skewed: %v", i, c, counts)
		}
	}
}

// triedOf builds a TriedSet from explicit member indices.
func triedOf(indices ...int) TriedSet {
	var t TriedSet
	for _, i := range indices {
		t.Set(i)
	}
	return t
}

func TestRouteExcludingHonorsMask(t *testing.T) {
	fakes := newFakes(3)
	fakes[0].load = 0
	fakes[1].load = 1
	fakes[2].load = 2
	r := routerOver(LeastLoaded, fakes)
	if got := r.RouteExcluding(Request{}, triedOf(0)); got != 1 {
		t.Fatalf("got %d, want 1 with member 0 masked", got)
	}
	if got := r.RouteExcluding(Request{}, triedOf(0, 1)); got != 2 {
		t.Fatalf("got %d, want 2 with members 0,1 masked", got)
	}
	if got := r.RouteExcluding(Request{}, triedOf(0, 1, 2)); got != -1 {
		t.Fatalf("got %d, want -1 with every member masked", got)
	}
}

// TestRouteExcludingAtWordBoundaries pins correct exclusion at widths 63, 64,
// 65 and 256: the regression the single-word tried-mask could not express —
// a 65th member's 1<<64 mask bit wrapped into member 0's, so excluding
// member 64 silently excluded member 0 instead.
func TestRouteExcludingAtWordBoundaries(t *testing.T) {
	for _, width := range []int{63, 64, 65, 256} {
		fakes := newFakes(width)
		r := routerOver(RoundRobin, fakes)
		for excl := 0; excl < width; excl++ {
			got := r.RouteExcluding(Request{}, triedOf(excl))
			if got == excl {
				t.Fatalf("width %d: excluded member %d was routed to anyway", width, excl)
			}
			if got < 0 || got >= width {
				t.Fatalf("width %d: routed to %d with member %d excluded", width, got, excl)
			}
		}
		// Excluding everyone except one member must pick exactly that member,
		// wherever it sits relative to a word boundary.
		for _, keep := range []int{0, width / 2, width - 1} {
			var tried TriedSet
			for i := 0; i < width; i++ {
				if i != keep {
					tried.Set(i)
				}
			}
			for _, p := range []PolicyKind{RoundRobin, LeastLoaded, WeightedScore, KeyAffinity, PrefixAffinity} {
				if got := routerOver(p, fakes).RouteExcluding(Request{Key: 7, Prefix: 9}, tried); got != keep {
					t.Fatalf("width %d, %s: got %d, want sole unmasked member %d", width, p, got, keep)
				}
			}
		}
		// Excluding everyone routes nowhere.
		var all TriedSet
		for i := 0; i < width; i++ {
			all.Set(i)
		}
		if got := r.RouteExcluding(Request{}, all); got != -1 {
			t.Fatalf("width %d: got %d with every member excluded, want -1", width, got)
		}
	}
}

// TestRendezvousSaltPinned pins the Add-time salt precomputation to the
// original per-route formula mix64(key ^ mix64(id+gamma)): the optimization
// must not move a single key, or every affinity artifact's bytes would move
// with it.
func TestRendezvousSaltPinned(t *testing.T) {
	fakes := newFakes(256)
	r := routerOver(KeyAffinity, fakes)
	for k := uint64(0); k < 4096; k += 17 {
		want, wantHash := -1, uint64(0)
		for i := range fakes {
			if h := rendezvous(k, fakes[i].id); want < 0 || h > wantHash {
				want, wantHash = i, h
			}
		}
		if got := r.Route(Request{Key: k}); got != want {
			t.Fatalf("key %d: salted routing picked %d, reference formula picks %d", k, got, want)
		}
	}
}

// TestPrefixAffinityRoutesOnPrefix pins the prefix policy's contract:
// requests with equal Prefix co-locate regardless of Key, and the placement
// is the rendezvous choice over Prefix.
func TestPrefixAffinityRoutesOnPrefix(t *testing.T) {
	fakes := newFakes(8)
	r := routerOver(PrefixAffinity, fakes)
	for prefix := uint64(0); prefix < 64; prefix++ {
		first := r.Route(Request{Key: prefix * 1000, Prefix: prefix})
		for key := uint64(0); key < 16; key++ {
			if got := r.Route(Request{Key: key, Prefix: prefix}); got != first {
				t.Fatalf("prefix %d: key %d routed to %d, want %d (prefix decides, not key)", prefix, key, got, first)
			}
		}
		want, wantHash := -1, uint64(0)
		for i := range fakes {
			if h := rendezvous(prefix, fakes[i].id); want < 0 || h > wantHash {
				want, wantHash = i, h
			}
		}
		if first != want {
			t.Fatalf("prefix %d: routed to %d, want rendezvous owner %d", prefix, first, want)
		}
	}
}

// TestAffinitySpreadWideFleet is the wide-fleet distribution property: 256
// members, 64k keys (and 4k prefixes) — every member owns some keys and no
// member owns more than 3x its fair share. The bound is loose by design:
// rendezvous hashing's max/mean imbalance over k keys and n members
// concentrates near 1 + O(sqrt(n ln n / k)), well under 3x here; what the
// test guards is systematic skew (a broken mix, a salt collision), not
// statistical noise.
func TestAffinitySpreadWideFleet(t *testing.T) {
	const width = 256
	fakes := newFakes(width)
	for _, tc := range []struct {
		policy PolicyKind
		keys   int
	}{
		{KeyAffinity, 65536},
		{PrefixAffinity, 4096},
	} {
		r := routerOver(tc.policy, fakes)
		counts := make([]int, width)
		for k := 0; k < tc.keys; k++ {
			var req Request
			if tc.policy == KeyAffinity {
				req.Key = uint64(k)
			} else {
				req.Prefix = uint64(k)
			}
			got := r.Route(req)
			if got < 0 || got >= width {
				t.Fatalf("%s: key %d routed to %d", tc.policy, k, got)
			}
			counts[got]++
		}
		fair := tc.keys / width
		for i, c := range counts {
			if c == 0 {
				t.Errorf("%s: member %d owns no keys of %d — rendezvous spread collapsed", tc.policy, i, tc.keys)
			}
			if c > 3*fair {
				t.Errorf("%s: member %d owns %d of %d keys (fair share %d) — systematic skew", tc.policy, i, c, tc.keys, fair)
			}
		}
	}
}

// TestTournamentSamplingWideLeastLoaded exercises the wide-fleet sampling
// path: on 256 members the pick must be deterministic across identically
// replayed routers, always eligible, and load-sensitive (a near-idle fleet
// member beats the loaded majority most of the time).
func TestTournamentSamplingWideLeastLoaded(t *testing.T) {
	const width = 256
	build := func() ([]*fake, *Router) {
		fakes := newFakes(width)
		for i := range fakes {
			fakes[i].load = 100
		}
		fakes[37].load = 1 // the one near-idle member
		return fakes, routerOver(LeastLoaded, fakes)
	}
	_, ra := build()
	fakesB, rb := build()
	hits := 0
	for k := 0; k < 512; k++ {
		a := ra.RouteExcluding(Request{Key: uint64(k)}, TriedSet{})
		b := rb.RouteExcluding(Request{Key: uint64(k)}, TriedSet{})
		if a != b {
			t.Fatalf("route %d: tournament diverged across identical replays: %d vs %d", k, a, b)
		}
		if !fakesB[a].alive {
			t.Fatalf("route %d: picked dead member %d", k, a)
		}
		if a == 37 {
			hits++
		}
	}
	// P(miss) per route = (1 - 1/256)^8 ≈ 0.969 per draw set; with 8 draws
	// the idle member is sampled in ~3% of routes by chance alone — but once
	// sampled it always wins. Require it to win clearly more often than a
	// uniform single pick would (512/256 = 2).
	if hits < 8 {
		t.Errorf("idle member won %d of 512 tournament routes; sampling is not load-sensitive", hits)
	}
}

// TestWideRouterSkipsDeadByBitset kills a scattered third of a 256-member
// fleet and checks every policy routes only to live members, then restarts
// them and checks they are eligible again on the next decision.
func TestWideRouterSkipsDeadByBitset(t *testing.T) {
	const width = 256
	for _, p := range []PolicyKind{RoundRobin, LeastLoaded, WeightedScore, KeyAffinity, PrefixAffinity} {
		fakes := newFakes(width)
		r := routerOver(p, fakes)
		for i := 0; i < width; i += 3 {
			fakes[i].alive = false
		}
		for k := 0; k < 1024; k++ {
			got := r.Route(Request{Key: uint64(k), Prefix: uint64(k >> 4), Cost: 1})
			if got < 0 {
				t.Fatalf("%s: no member for key %d with two thirds alive", p, k)
			}
			if got%3 == 0 {
				t.Fatalf("%s: key %d routed to dead member %d", p, k, got)
			}
		}
		for i := 0; i < width; i += 3 {
			fakes[i].alive = true
		}
		revived := false
		for k := 0; k < 1024 && !revived; k++ {
			revived = r.Route(Request{Key: uint64(k), Prefix: uint64(k >> 4), Cost: 1})%3 == 0
		}
		if !revived {
			t.Errorf("%s: no restarted member was routed to across 1024 decisions", p)
		}
	}
}

func TestRouteEmptyAndAllDead(t *testing.T) {
	r := NewRouter(RoundRobin)
	if got := r.Route(Request{}); got != -1 {
		t.Fatalf("empty router routed to %d", got)
	}
	fakes := newFakes(2)
	fakes[0].alive = false
	fakes[1].alive = false
	for _, p := range []PolicyKind{RoundRobin, LeastLoaded, WeightedScore, KeyAffinity, PrefixAffinity} {
		if got := routerOver(p, fakes).Route(Request{Key: 7}); got != -1 {
			t.Fatalf("%s routed to %d with every member dead", p, got)
		}
	}
}

func TestPolicyKindStrings(t *testing.T) {
	want := map[PolicyKind]string{
		RoundRobin:     "round-robin",
		LeastLoaded:    "least-loaded",
		WeightedScore:  "weighted-score",
		KeyAffinity:    "key-affinity",
		PrefixAffinity: "prefix-affinity",
		PolicyKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestRouteZeroAllocs pins the routing hot path at zero allocations per
// decision for every policy — the contract BENCH_engine.json gates — at both
// the narrow (exhaustive-scan) and wide (bitset + tournament) widths.
func TestRouteZeroAllocs(t *testing.T) {
	for _, width := range []int{16, 256} {
		fakes := newFakes(width)
		for _, p := range []PolicyKind{RoundRobin, LeastLoaded, WeightedScore, KeyAffinity, PrefixAffinity} {
			r := routerOver(p, fakes)
			key := uint64(0)
			got := testing.AllocsPerRun(1000, func() {
				key++
				r.RouteExcluding(Request{Key: key, Prefix: key >> 4, Cost: 1}, TriedSet{})
			})
			if got != 0 {
				t.Errorf("width %d, %s: %.1f allocs per route, want 0", width, p, got)
			}
		}
	}
}
