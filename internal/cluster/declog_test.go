package cluster

import (
	"testing"

	"smartconf/internal/declog"
)

// The coordinator's fleet-level decisions — the admission knob and every
// layered per-node bound — land in the decision log alongside whatever the
// per-node controllers record themselves.
func TestCoordinatorLogsAdmissionAndLayeredBounds(t *testing.T) {
	inst := &fake{id: 0, alive: true}
	log := declog.New(64)
	coord := NewCoordinator(&fakeAdmission{}, func() float64 { return 1000 }, nil, []NodeControl{{
		Inst:         inst,
		Memory:       newMemGuard(t),
		Deputy:       func() float64 { return 50 },
		Latency:      newLatGuard(t),
		SenseLatency: func() float64 { return 2.0 }, // over the 1.2 goal
		Apply:        func(int) {},
	}})
	coord.AttachLog(log)

	coord.StepMemory()  // memory slack: its own proposal wins
	coord.StepLatency() // latency overshoot undercuts it: layered

	recs := log.Snapshot()
	var bound []declog.Record
	for _, r := range recs {
		if log.Sources()[r.Source] == "fleet.node0.bound" {
			bound = append(bound, r)
		}
	}
	if len(bound) != 2 {
		t.Fatalf("%d node-bound records, want 2 (one per step)", len(bound))
	}
	if bound[0].Period != 1 || bound[1].Period != 2 {
		t.Fatalf("bound periods %d,%d; want 1,2", bound[0].Period, bound[1].Period)
	}
	if bound[0].Clamp != declog.ClampNone {
		t.Errorf("first bound clamp = %v, want none (memory proposal wins alone)", bound[0].Clamp)
	}
	if bound[1].Clamp != declog.ClampLayered {
		t.Errorf("second bound clamp = %v, want layered (latency undercuts memory)", bound[1].Clamp)
	}
	if bound[1].Applied != float64(coord.Bound(0)) {
		t.Errorf("logged applied %v != live bound %d", bound[1].Applied, coord.Bound(0))
	}
}

func TestCoordinatorLogsAdmissionFloor(t *testing.T) {
	adm := newMemGuard(t) // reuse the indirect guard as an admission knob
	log := declog.New(16)
	fl := &fakeAdmission{load: 50}
	metric := 5000.0 // far over the 1100 goal: the knob slams to its floor
	coord := NewCoordinator(fl, func() float64 { return metric }, adm, nil)
	coord.AttachLog(log)
	coord.StepMemory()
	coord.StepMemory()

	recs := log.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("%d admission records, want 2", len(recs))
	}
	names := log.Sources()
	for i, r := range recs {
		if names[r.Source] != "fleet.admission" {
			t.Fatalf("record %d from %q, want fleet.admission", i, names[r.Source])
		}
		if r.Period != uint32(i+1) {
			t.Errorf("record %d period %d, want %d", i, r.Period, i+1)
		}
		if r.Sensed != metric {
			t.Errorf("record %d sensed %v, want %v", i, r.Sensed, metric)
		}
		if r.Applied != float64(coord.Admission()) && i == len(recs)-1 {
			t.Errorf("last record applied %v != live admission %d", r.Applied, coord.Admission())
		}
	}
}
