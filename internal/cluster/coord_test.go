package cluster

import (
	"math"
	"testing"

	"smartconf"
)

// fakeAdmission records what the coordinator pushes into the fleet's
// admission knob.
type fakeAdmission struct {
	load float64
	set  []int
}

func (f *fakeAdmission) TotalLoad() float64   { return f.load }
func (f *fakeAdmission) SetMaxInFlight(n int) { f.set = append(f.set, n) }

// memGuardProfile relates a deputy (queued items) to a fleet-wide metric
// (bytes): one unit of deputy costs one unit of metric over a 1000 baseline.
func memGuardProfile() *smartconf.Profile {
	return smartconf.NewProfile().
		Add(10, 1008, 1010, 1012).
		Add(40, 1038, 1040, 1042).
		Add(80, 1078, 1080, 1082)
}

func newMemGuard(t *testing.T) *smartconf.IndirectConf {
	t.Helper()
	c, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "test/max.queue#mem", Metric: "bytes",
		Goal: 1100, Hard: true, Interaction: 2,
		Min: 0, Max: 500,
	}, memGuardProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// latGuardProfile relates the knob setting to a latency metric: 0.1 units of
// latency per queued item.
func newLatGuard(t *testing.T) *smartconf.Conf {
	t.Helper()
	c, err := smartconf.New(smartconf.Spec{
		Name: "test/max.queue#lat", Metric: "latency",
		Goal: 1.2, Initial: 12,
		Min: 1, Max: 12,
	}, smartconf.NewProfile().
		Add(10, 0.99, 1.0, 1.01).
		Add(20, 1.98, 2.0, 2.02))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatorMemoryGuardTracksHeadroom(t *testing.T) {
	inst := &fake{id: 0, alive: true}
	metric := 1000.0
	deputy := 50.0
	var applied []int
	coord := NewCoordinator(&fakeAdmission{}, func() float64 { return metric }, nil, []NodeControl{{
		Inst:   inst,
		Memory: newMemGuard(t),
		Deputy: func() float64 { return deputy },
		Apply:  func(b int) { applied = append(applied, b) },
	}})

	// Below the goal: the proposed bound is the deputy plus a share of the
	// remaining headroom — strictly above where the queue is now.
	coord.StepMemory()
	if len(applied) != 1 {
		t.Fatalf("Apply called %d times, want 1", len(applied))
	}
	if b := coord.Bound(0); b <= int(deputy) || b > 500 {
		t.Fatalf("bound %d with headroom; want in (deputy=50, Max=500]", b)
	}

	// Above the goal: the bound drops below the deputy (the guard sheds).
	metric = 1200
	coord.StepMemory()
	if b := coord.Bound(0); b >= int(deputy) {
		t.Fatalf("bound %d after overshoot; want below deputy 50", b)
	}
	if b := coord.Bound(0); b < 0 {
		t.Fatalf("bound %d negative; coordinator must clamp at 0", b)
	}
}

func TestCoordinatorLayersMinOfMemoryAndLatency(t *testing.T) {
	inst := &fake{id: 0, alive: true}
	var applied []int
	coord := NewCoordinator(&fakeAdmission{}, func() float64 { return 1000 }, nil, []NodeControl{{
		Inst:         inst,
		Memory:       newMemGuard(t),
		Deputy:       func() float64 { return 50 },
		Latency:      newLatGuard(t),
		SenseLatency: func() float64 { return 2.0 }, // over the 1.2 goal
		Apply:        func(b int) { applied = append(applied, b) },
	}})
	coord.StepMemory() // memory slack: proposes ~bound > 50
	memB := coord.Bound(0)
	coord.StepLatency() // latency overshoot: proposes ~4
	if b := coord.Bound(0); b >= memB || b > 12 {
		t.Fatalf("layered bound %d; want the latency proposal (< %d, <= Max 12)", b, memB)
	}
	if applied[len(applied)-1] != coord.Bound(0) {
		t.Fatal("Apply did not receive the layered minimum")
	}
}

func TestCoordinatorFreezesDeadNodes(t *testing.T) {
	inst := &fake{id: 0, alive: true}
	calls := 0
	coord := NewCoordinator(&fakeAdmission{}, func() float64 { return 1000 }, nil, []NodeControl{{
		Inst:         inst,
		Memory:       newMemGuard(t),
		Deputy:       func() float64 { return 50 },
		Latency:      newLatGuard(t),
		SenseLatency: func() float64 { return 1.0 },
		Apply:        func(int) { calls++ },
	}})
	coord.StepMemory()
	before := coord.Bound(0)
	callsBefore := calls
	inst.alive = false
	coord.StepMemory()
	coord.StepLatency()
	if calls != callsBefore {
		t.Fatal("Apply ran for a dead member; a killed process has no knob to move")
	}
	if coord.Bound(0) != before {
		t.Fatalf("dead member's bound moved %d -> %d", before, coord.Bound(0))
	}
}

func TestCoordinatorDrivesAdmissionKnob(t *testing.T) {
	adm, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "test/max.in.flight", Metric: "bytes",
		Goal: 1100, Hard: true, Interaction: 2,
		Min: 0, Max: 10000,
	}, memGuardProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fl := &fakeAdmission{load: 30}
	metric := 1000.0
	coord := NewCoordinator(fl, func() float64 { return metric }, adm, nil)
	if coord.Admission() != math.MaxInt {
		t.Fatal("admission should be unbounded before the first step")
	}
	coord.StepMemory()
	if len(fl.set) != 1 {
		t.Fatalf("SetMaxInFlight called %d times, want 1", len(fl.set))
	}
	if got := coord.Admission(); got != fl.set[0] || got <= int(fl.load) {
		t.Fatalf("admission %d (pushed %v); want pushed value above TotalLoad 30", got, fl.set)
	}
	// Far over the goal, the knob closes but never goes negative.
	metric = 5000
	coord.StepMemory()
	if got := coord.Admission(); got != 0 {
		t.Fatalf("admission %d after massive overshoot, want clamped 0", got)
	}
}
