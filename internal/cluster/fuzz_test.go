package cluster

import "testing"

// FuzzRouteExcluding drives RouteExcluding with fuzzer-chosen (width,
// tried-set, alive-set, key) tuples and checks the routing contract that
// every policy must honor at every width up to maxMembers:
//
//   - a returned member is in range, alive, and not in the tried set;
//   - -1 is returned exactly when no member is alive-and-untried;
//   - the decision is deterministic: re-routing the same request on a fresh
//     identically-configured router picks the same member (the stateful
//     round-robin policy is replayed on a fresh router pair instead).
func FuzzRouteExcluding(f *testing.F) {
	f.Add(uint16(4), uint64(1), uint64(0), uint64(0), uint64(0), ^uint64(0), uint64(0), uint64(0), uint64(0), uint64(7), byte(3))
	f.Add(uint16(65), uint64(1)<<63, uint64(1), uint64(0), uint64(0), ^uint64(0), ^uint64(0), uint64(0), uint64(0), uint64(99), byte(4))
	f.Add(uint16(256), uint64(0), uint64(0), uint64(0), uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint64(1), byte(1))
	f.Fuzz(func(t *testing.T, width uint16,
		t0, t1, t2, t3 uint64, // tried words
		a0, a1, a2, a3 uint64, // alive words
		key uint64, policyByte byte) {

		n := int(width%maxMembers) + 1
		tried := TriedSet{t0, t1, t2, t3}
		alive := TriedSet{a0, a1, a2, a3}
		policy := PolicyKind(int(policyByte) % 5)

		build := func() ([]*fake, *Router) {
			fakes := make([]*fake, n)
			r := NewRouter(policy)
			for i := range fakes {
				fakes[i] = &fake{id: i, alive: alive.Has(i), load: float64(mix64(key+uint64(i)) % 1024)}
				r.Add(fakes[i], float64(i%7+1))
			}
			return fakes, r
		}
		fakes, r := build()
		req := Request{Key: key, Prefix: key >> 7, Cost: 2}
		got := r.RouteExcluding(req, tried)

		eligible := 0
		for i := 0; i < n; i++ {
			if alive.Has(i) && !tried.Has(i) {
				eligible++
			}
		}
		if got == -1 {
			if eligible != 0 {
				t.Fatalf("width %d policy %s: routed nowhere with %d eligible members", n, policy, eligible)
			}
			return
		}
		if got < 0 || got >= n {
			t.Fatalf("width %d policy %s: routed to out-of-range member %d", n, policy, got)
		}
		if tried.Has(got) {
			t.Fatalf("width %d policy %s: routed to tried member %d", n, policy, got)
		}
		if !fakes[got].alive {
			t.Fatalf("width %d policy %s: routed to dead member %d", n, policy, got)
		}

		_, r2 := build()
		if again := r2.RouteExcluding(req, tried); again != got {
			t.Fatalf("width %d policy %s: fresh identical router picked %d, first picked %d", n, policy, again, got)
		}
	})
}
