// Package cluster promotes the substrates from one instance under one
// controller to an N-wide fleet on a single deterministic clock: N spawnable
// instances behind a routing front-end, with fleet-level configuration
// control layered over the per-instance SmartConf controllers.
//
// The paper's interaction-factor machinery (§5.4) only ever coordinated two
// knobs inside one process; production configuration control means dozens of
// interacting knobs across a fleet. This package supplies the three pieces
// that scale-out needs without touching the control math:
//
//   - Instance: the router-facing surface every fleet member exposes —
//     identity, liveness, and an instantaneous load signal. The rpcserver,
//     llmserve and kvstore substrates satisfy it structurally (plus Kill and
//     Restart for instance-level chaos), so any of them can be fleeted.
//   - Router: a pluggable routing policy over the member set — round-robin,
//     least-loaded, weighted-scoring, key-affinity, and prefix-affinity
//     (rendezvous hashing, stable under membership change). The decision
//     path allocates nothing and is sub-O(N) where the policy allows it:
//     precomputed rendezvous salts, a lazily-maintained dead-member bitset
//     scanned by word-level bit tricks, and tournament sampling for the
//     load-scanning policies on fleets wider than 64.
//   - Fleet[R]: the front-end. It couples the router to typed per-member
//     offer functions, retries rejected requests on the next-best member (a
//     bitmask of tried members, no allocation), enforces the global
//     admission knob, and re-dispatches work evacuated from a killed member.
//   - Coordinator: the fleet control plane — one hard fleet-wide goal shared
//     by N per-node guards plus a global admission controller (interaction
//     factor N+1), layered over per-node soft latency controllers by taking
//     the minimum of the two bounds each node's controllers propose.
//
// Everything is deterministic: no wall clock, no global rand, no map
// iteration on any observable path. A fleet scenario runs 1-wide or 256-wide
// through the same code path, and two runs with the same seed are
// byte-identical — which is what lets fleet results flow through the
// experiment engine's run cache.
package cluster

import "math"

// Instance is one fleet member as the router sees it: a spawned plant with
// sensors. The substrate behind it keeps its own typed request interface;
// the fleet couples the two via the offer function passed to Fleet.Add.
type Instance interface {
	// ID is the member's stable identity. Key-affinity hashes it, so an
	// instance keeps its keys across kill/restart cycles.
	ID() int
	// Alive reports whether the member can accept work (false after an OOM
	// crash or an injected instance loss).
	Alive() bool
	// Load is the member's instantaneous backlog in substrate units (queued
	// calls, waiting+running sequences, occupancy bytes). Policies compare
	// loads only within one fleet, so units need only be internally
	// consistent.
	Load() float64
}

// Request is the routing envelope: what a policy needs to place one request,
// independent of the substrate's own request type.
type Request struct {
	// Key is the affinity identity (a YCSB key, a session, a tenant).
	Key uint64
	// Prefix is the shared-prefix identity the prefix-affinity policy routes
	// on: a hash of the request's prompt prefix (chat template, system
	// prompt), coarser than Key, so requests that could reuse each other's
	// KV state co-locate.
	Prefix uint64
	// Cost is the request's work estimate in the fleet's load units; the
	// weighted-scoring policy adds it to the candidate's load.
	Cost float64
}

// maxMembers bounds the fleet width: retry routing tracks tried members in a
// fixed-size multi-word bitset (TriedSet), so four words cover the widest
// supported fleet and the retry state still lives on the stack.
const maxMembers = 256

// Fleet is the front-end over N instances serving requests of type R: it
// routes, retries, enforces the global admission knob, and counts outcomes.
type Fleet[R any] struct {
	router *Router
	offers []func(R) bool

	// maxInFlight is the global admission knob: Dispatch refuses new work
	// while the fleet-wide load is at or above it. math.MaxInt = unbounded
	// (the unsafe pre-patch default, like every knob in the paper).
	maxInFlight int

	// BeforeDispatch, when set, runs at the top of every Dispatch — the
	// integration point for the global admission controller (sense fleet
	// state, move the knob, before this request is gated).
	BeforeDispatch func()
	// OnRoute, when set, observes every successful placement (including
	// re-dispatched evacuees) — the hook behind routing-stability oracles
	// and skew accounting.
	OnRoute func(req Request, member int)

	submitted    int64
	refused      int64
	throttled    int64
	redispatched int64
}

// NewFleet returns an empty fleet routing with the given policy and the
// admission knob wide open.
func NewFleet[R any](policy PolicyKind) *Fleet[R] {
	return &Fleet[R]{router: NewRouter(policy), maxInFlight: math.MaxInt}
}

// Add registers a member with its routing weight (relative capacity; the
// weighted-scoring policy divides by it) and its typed offer function.
// Fleets are bounded at 256 members — four bitset words of retry state.
func (f *Fleet[R]) Add(inst Instance, weight float64, offer func(R) bool) {
	if len(f.offers) >= maxMembers {
		panic("cluster: fleet exceeds 256 members")
	}
	f.router.Add(inst, weight)
	f.offers = append(f.offers, offer)
}

// Router returns the fleet's router (policy inspection, direct Route calls).
func (f *Fleet[R]) Router() *Router { return f.router }

// Len returns the member count.
func (f *Fleet[R]) Len() int { return len(f.offers) }

// Instance returns member i.
func (f *Fleet[R]) Instance(i int) Instance { return f.router.members[i] }

// TotalLoad sums every member's load — the global admission knob's deputy
// variable. Dead members report their (usually zero) residual load.
func (f *Fleet[R]) TotalLoad() float64 {
	var t float64
	for _, m := range f.router.members {
		t += m.Load()
	}
	return t
}

// AliveCount returns the number of live members.
func (f *Fleet[R]) AliveCount() int {
	n := 0
	for _, m := range f.router.members {
		if m.Alive() {
			n++
		}
	}
	return n
}

// SetMaxInFlight sets the global admission knob. Values below zero clamp to
// zero (admission closed).
func (f *Fleet[R]) SetMaxInFlight(n int) {
	if n < 0 {
		n = 0
	}
	f.maxInFlight = n
}

// MaxInFlight returns the current global admission bound.
func (f *Fleet[R]) MaxInFlight() int { return f.maxInFlight }

// Dispatch admits and places one request: the global admission gate first,
// then the routing policy with retry — a member that refuses (queue full,
// dead) is masked out and the next-best member is tried, so a request is
// refused only when every live member refused it. Returns false when the
// request was refused (throttled at admission, or exhausted the fleet).
// With the admission knob wide open (math.MaxInt) the O(N) fleet-load sum
// is skipped entirely: no finite load can reach the unbounded gate, so the
// fast path is behavior-identical and a 256-node uncontrolled fleet pays
// nothing for the gate it is not using.
//
//smartconf:hotpath
func (f *Fleet[R]) Dispatch(req Request, payload R) bool {
	if f.BeforeDispatch != nil {
		f.BeforeDispatch()
	}
	f.submitted++
	if f.maxInFlight != math.MaxInt && f.TotalLoad() >= float64(f.maxInFlight) {
		f.throttled++
		f.refused++
		return false
	}
	if f.place(req, payload) {
		return true
	}
	f.refused++
	return false
}

// Redispatch re-places a request evacuated from a killed member (the client
// retry path). The request was already admitted once, so the admission gate
// is not re-applied — retries must not be throttled into oblivion by the
// very loss that displaced them.
//
//smartconf:hotpath
func (f *Fleet[R]) Redispatch(req Request, payload R) bool {
	f.redispatched++
	if f.place(req, payload) {
		return true
	}
	f.refused++
	return false
}

func (f *Fleet[R]) place(req Request, payload R) bool {
	var tried TriedSet
	for attempts := len(f.offers); attempts > 0; attempts-- {
		i := f.router.RouteExcluding(req, tried)
		if i < 0 {
			return false
		}
		if f.offers[i](payload) {
			if f.OnRoute != nil {
				f.OnRoute(req, i)
			}
			return true
		}
		tried.Set(i)
	}
	return false
}

// Submitted counts Dispatch calls (unique requests; re-dispatch excluded).
func (f *Fleet[R]) Submitted() int64 { return f.submitted }

// Refused counts requests the fleet definitively refused: throttled at the
// admission gate, or rejected by every member (including failed re-dispatch
// of evacuees). Submitted = completed + refused + pending, always.
func (f *Fleet[R]) Refused() int64 { return f.refused }

// Throttled counts refusals by the global admission gate alone.
func (f *Fleet[R]) Throttled() int64 { return f.throttled }

// Redispatched counts evacuated requests re-entered through Redispatch.
func (f *Fleet[R]) Redispatched() int64 { return f.redispatched }
