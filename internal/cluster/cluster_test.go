package cluster

import (
	"math"
	"testing"
)

// member couples a fake Instance with a bounded queue, so fleet tests can
// exercise offer rejection and retry spill without a real substrate.
type member struct {
	fake
	queue []int
	bound int
}

func (m *member) offer(v int) bool {
	if !m.alive || len(m.queue) >= m.bound {
		return false
	}
	m.queue = append(m.queue, v)
	m.load = float64(len(m.queue))
	return true
}

func newFleetOf(n, bound int, policy PolicyKind) (*Fleet[int], []*member) {
	f := NewFleet[int](policy)
	ms := make([]*member, n)
	for i := range ms {
		ms[i] = &member{fake: fake{id: i, alive: true}, bound: bound}
		m := ms[i]
		f.Add(m, 1, m.offer)
	}
	return f, ms
}

func TestFleetDispatchPlacesAndCounts(t *testing.T) {
	f, ms := newFleetOf(3, 10, RoundRobin)
	for i := 0; i < 6; i++ {
		if !f.Dispatch(Request{}, i) {
			t.Fatalf("dispatch %d refused with empty queues", i)
		}
	}
	for i, m := range ms {
		if len(m.queue) != 2 {
			t.Fatalf("member %d holds %d, want 2 (round-robin spread)", i, len(m.queue))
		}
	}
	if f.Submitted() != 6 || f.Refused() != 0 {
		t.Fatalf("submitted=%d refused=%d, want 6/0", f.Submitted(), f.Refused())
	}
}

func TestFleetRetrySpillsToNextMember(t *testing.T) {
	f, ms := newFleetOf(3, 2, KeyAffinity)
	// Find a key owned by member 0 and fill that member.
	var key uint64
	for k := uint64(0); ; k++ {
		if f.Router().Route(Request{Key: k}) == 0 {
			key = k
			break
		}
	}
	routed := make([]int, 0, 4)
	f.OnRoute = func(_ Request, member int) { routed = append(routed, member) }
	for i := 0; i < 4; i++ {
		if !f.Dispatch(Request{Key: key}, i) {
			t.Fatalf("dispatch %d refused; fleet has capacity 6", i)
		}
	}
	if len(ms[0].queue) != 2 {
		t.Fatalf("affinity owner holds %d, want its full bound 2", len(ms[0].queue))
	}
	if routed[0] != 0 || routed[1] != 0 {
		t.Fatalf("first two placements %v, want owner 0", routed[:2])
	}
	if routed[2] == 0 || routed[3] == 0 {
		t.Fatalf("overflow placements %v landed on the full owner", routed[2:])
	}
}

func TestFleetRefusesWhenAllFull(t *testing.T) {
	f, _ := newFleetOf(2, 1, LeastLoaded)
	for i := 0; i < 2; i++ {
		if !f.Dispatch(Request{}, i) {
			t.Fatalf("dispatch %d refused below capacity", i)
		}
	}
	if f.Dispatch(Request{}, 99) {
		t.Fatal("dispatch accepted beyond every member's bound")
	}
	if f.Refused() != 1 || f.Throttled() != 0 {
		t.Fatalf("refused=%d throttled=%d, want 1/0 (member rejection, not admission)", f.Refused(), f.Throttled())
	}
}

func TestFleetAdmissionGate(t *testing.T) {
	f, _ := newFleetOf(2, 10, RoundRobin)
	f.SetMaxInFlight(3)
	accepted := 0
	for i := 0; i < 10; i++ {
		if f.Dispatch(Request{}, i) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3 (admission knob)", accepted)
	}
	if f.Throttled() != 7 || f.Refused() != 7 {
		t.Fatalf("throttled=%d refused=%d, want 7/7", f.Throttled(), f.Refused())
	}
	// Negative values clamp to zero: admission closed.
	f.SetMaxInFlight(-5)
	if f.MaxInFlight() != 0 {
		t.Fatalf("MaxInFlight=%d, want 0 after negative set", f.MaxInFlight())
	}
}

func TestRedispatchBypassesAdmission(t *testing.T) {
	f, ms := newFleetOf(2, 10, RoundRobin)
	f.SetMaxInFlight(0) // admission closed
	if f.Dispatch(Request{}, 1) {
		t.Fatal("dispatch passed a closed admission gate")
	}
	if !f.Redispatch(Request{}, 2) {
		t.Fatal("redispatch throttled; evacuees were already admitted once")
	}
	if f.Redispatched() != 1 {
		t.Fatalf("redispatched=%d, want 1", f.Redispatched())
	}
	if len(ms[0].queue)+len(ms[1].queue) != 1 {
		t.Fatal("redispatched request not placed")
	}
}

func TestBeforeDispatchRunsFirst(t *testing.T) {
	f, _ := newFleetOf(1, 10, RoundRobin)
	f.SetMaxInFlight(0)
	f.BeforeDispatch = func() { f.SetMaxInFlight(5) } // the controller reopens the knob
	if !f.Dispatch(Request{}, 1) {
		t.Fatal("BeforeDispatch knob update not visible to the admission gate")
	}
}

func TestFleetAccessors(t *testing.T) {
	f, ms := newFleetOf(3, 1, RoundRobin)
	ms[1].alive = false
	ms[0].load = 2
	ms[2].load = 3
	if got := f.Len(); got != 3 {
		t.Fatalf("Len=%d, want 3", got)
	}
	if got := f.AliveCount(); got != 2 {
		t.Fatalf("AliveCount=%d, want 2", got)
	}
	if got := f.TotalLoad(); got != 5 {
		t.Fatalf("TotalLoad=%v, want 5", got)
	}
	if f.Instance(1).ID() != 1 {
		t.Fatal("Instance(1) returned the wrong member")
	}
	if f.MaxInFlight() != math.MaxInt {
		t.Fatal("new fleet's admission knob should be wide open")
	}
}

func TestFleetAddPanicsBeyondMask(t *testing.T) {
	f := NewFleet[int](RoundRobin)
	for i := 0; i < maxMembers; i++ {
		m := &member{fake: fake{id: i, alive: true}, bound: 1}
		f.Add(m, 1, m.offer)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a 65th member; retry masking needs one bitmask word")
		}
	}()
	m := &member{fake: fake{id: maxMembers, alive: true}, bound: 1}
	f.Add(m, 1, m.offer)
}
