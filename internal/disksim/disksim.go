// Package disksim models a bounded local disk with out-of-disk failure,
// standing in for the worker-local disks of the paper's MR2820 issue
// (mapreduce.local.dir free-space admission).
//
// Unlike an OOM'd heap, a full disk is recoverable in principle — but for a
// running task, hitting ENOSPC mid-write fails the task; the model records
// the first such failure so the harness can attribute job failures.
package disksim

import (
	"errors"
	"fmt"
)

// ErrOutOfDisk is returned by Write when the disk fills.
var ErrOutOfDisk = errors.New("disksim: out of disk space")

// Disk is a byte-accounted disk with a hard capacity.
// Not safe for concurrent use (simulation code is single-goroutine).
type Disk struct {
	capacity int64
	used     int64
	peak     int64
	oodCount int
	onOOD    func()
}

// NewDisk returns a disk with the given capacity in bytes.
func NewDisk(capacity int64) *Disk {
	if capacity <= 0 {
		panic("disksim: disk capacity must be positive")
	}
	return &Disk{capacity: capacity}
}

// OnOOD installs a hook invoked on every failed write.
func (d *Disk) OnOOD(fn func()) { d.onOOD = fn }

// Write appends n bytes, failing with ErrOutOfDisk when capacity would be
// exceeded (the write is not partially applied).
func (d *Disk) Write(n int64) error {
	if n < 0 {
		panic("disksim: negative write")
	}
	if d.used+n > d.capacity {
		d.oodCount++
		if d.onOOD != nil {
			d.onOOD()
		}
		return ErrOutOfDisk
	}
	d.used += n
	if d.used > d.peak {
		d.peak = d.used
	}
	return nil
}

// Delete releases n bytes. Deleting more than is stored panics (accounting
// bug in the substrate).
func (d *Disk) Delete(n int64) {
	if n < 0 {
		panic("disksim: negative delete")
	}
	if n > d.used {
		panic(fmt.Sprintf("disksim: deleting %d bytes with only %d stored", n, d.used))
	}
	d.used -= n
}

// Used returns current occupancy in bytes.
func (d *Disk) Used() int64 { return d.used }

// Peak returns the high-water mark in bytes.
func (d *Disk) Peak() int64 { return d.peak }

// Capacity returns the disk capacity in bytes.
func (d *Disk) Capacity() int64 { return d.capacity }

// Free returns remaining space in bytes.
func (d *Disk) Free() int64 { return d.capacity - d.used }

// OODCount reports how many writes have failed for lack of space.
func (d *Disk) OODCount() int { return d.oodCount }

// OOD reports whether any write has failed.
func (d *Disk) OOD() bool { return d.oodCount > 0 }
