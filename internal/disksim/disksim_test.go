package disksim

import (
	"testing"
	"testing/quick"
)

func TestWriteDeleteAccounting(t *testing.T) {
	d := NewDisk(1000)
	if err := d.Write(700); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 700 || d.Free() != 300 || d.Peak() != 700 {
		t.Errorf("used=%d free=%d peak=%d", d.Used(), d.Free(), d.Peak())
	}
	d.Delete(200)
	if d.Used() != 500 || d.Peak() != 700 {
		t.Errorf("after delete: used=%d peak=%d", d.Used(), d.Peak())
	}
}

func TestOODIsRecoverableButCounted(t *testing.T) {
	d := NewDisk(100)
	hooks := 0
	d.OnOOD(func() { hooks++ })
	if err := d.Write(90); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(20); err != ErrOutOfDisk {
		t.Fatalf("err = %v, want ErrOutOfDisk", err)
	}
	// Failed writes are not partially applied.
	if d.Used() != 90 {
		t.Errorf("used = %d after failed write, want 90", d.Used())
	}
	// Unlike OOM, freeing space allows new writes — but the failure stays
	// on record for the harness.
	d.Delete(50)
	if err := d.Write(20); err != nil {
		t.Errorf("post-cleanup write failed: %v", err)
	}
	if d.OODCount() != 1 || !d.OOD() || hooks != 1 {
		t.Errorf("oodCount=%d hooks=%d", d.OODCount(), hooks)
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero capacity", func() { NewDisk(0) })
	assertPanics("negative write", func() { NewDisk(10).Write(-1) })
	assertPanics("negative delete", func() { NewDisk(10).Delete(-1) })
	assertPanics("overdelete", func() { NewDisk(10).Delete(1) })
}

// Property: occupancy tracks the ledger of accepted writes minus deletes,
// within [0, capacity], and OODCount counts exactly the rejected writes.
func TestDiskInvariantProperty(t *testing.T) {
	f := func(ops []int16) bool {
		d := NewDisk(1 << 16)
		var ledger int64
		rejected := 0
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if err := d.Write(n); err == nil {
					ledger += n
				} else {
					rejected++
				}
			} else {
				n = -n
				if n > ledger {
					continue
				}
				d.Delete(n)
				ledger -= n
			}
			if d.Used() != ledger || d.Used() > d.Capacity() || d.Used() < 0 {
				return false
			}
		}
		return d.OODCount() == rejected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
