package kvstore

import (
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
)

// MemstoreConfig fixes the HBase-like store's capacity parameters.
type MemstoreConfig struct {
	// UpperLimitBytes is the fixed memstore upper watermark; reaching it
	// blocks writes and triggers a flush.
	UpperLimitBytes int64
	// FlushBytesPerSec is the flush drain rate.
	FlushBytesPerSec int64
	// FlushFixedOverhead is the per-flush setup cost.
	FlushFixedOverhead time.Duration
	// WriteBaseLatency is the uncontended write latency.
	WriteBaseLatency time.Duration
	// BaseHeapBytes is allocated at startup.
	BaseHeapBytes int64
}

// DefaultMemstoreConfig returns the calibration used by the HB2149
// experiments.
func DefaultMemstoreConfig() MemstoreConfig {
	return MemstoreConfig{
		UpperLimitBytes:    256 << 20,
		FlushBytesPerSec:   32 << 20,
		FlushFixedOverhead: 500 * time.Millisecond,
		WriteBaseLatency:   2 * time.Millisecond,
		BaseHeapBytes:      64 << 20,
	}
}

// Memstore is the HB2149 substrate: writes accumulate until the upper
// watermark, then block while a flush drains flushFraction of the watermark.
// The knob (the paper's global.memstore.lowerLimit, re-expressed as "how
// much memstore data is flushed") trades worst-case block time against
// flush frequency.
type Memstore struct {
	sim  *sim.Simulation
	heap *memsim.Heap
	cfg  MemstoreConfig

	flushFraction float64 // the knob, in (0,1]: fraction of the watermark drained per flush

	bytes      int64
	blocked    bool
	blockStart time.Duration

	crashed bool

	// flushAmount is the bytes the single in-flight flush will drain;
	// flushDone reads it back instead of closing over it (only one flush is
	// ever in flight — blocked gates startFlush). flushDoneFn is flushDone
	// bound once: creating the method value per After call would allocate.
	flushAmount int64
	flushDoneFn func(uint64)

	// Fleet surface (internal/cluster): identity and liveness across
	// injected instance loss. epoch invalidates flush completions scheduled
	// by a previous incarnation.
	id    int
	down  bool
	epoch uint64

	blockTimes   *metrics.Latency // the constrained metric (worst-case block)
	writes       metrics.Counter
	rejected     metrics.Counter // writes refused while the store was blocked
	flushes      metrics.Counter
	throughput   *metrics.Meter
	writeLatency *metrics.Latency

	// BeforeFlush, when set, runs when the watermark is hit, before the
	// flush amount is decided — the integration point for this CONDITIONAL
	// configuration (the controller only acts when a flush actually happens).
	BeforeFlush func()
}

// NewMemstore returns a store with the given initial flush fraction.
func NewMemstore(s *sim.Simulation, heap *memsim.Heap, cfg MemstoreConfig, flushFraction float64) *Memstore {
	st := &Memstore{
		sim:           s,
		heap:          heap,
		cfg:           cfg,
		flushFraction: clampFraction(flushFraction),
		blockTimes:    metrics.NewLatency(128),
		throughput:    metrics.NewMeter(10 * time.Second),
		writeLatency:  metrics.NewLatency(512),
	}
	st.flushDoneFn = st.flushDone
	if err := heap.Alloc(cfg.BaseHeapBytes); err != nil {
		st.crashed = true
	}
	return st
}

func clampFraction(f float64) float64 {
	if f < 0.01 {
		return 0.01
	}
	if f > 1 {
		return 1
	}
	return f
}

// SetFlushFraction adjusts the knob.
func (st *Memstore) SetFlushFraction(f float64) { st.flushFraction = clampFraction(f) }

// FlushFraction returns the current knob value.
func (st *Memstore) FlushFraction() float64 { return st.flushFraction }

// SetFlushBytesPerSec changes the flush drain rate mid-run (fault injection:
// a plant shift — disk contention slowing flushes). The rate is read when a
// flush starts, so an in-progress flush keeps its original duration.
func (st *Memstore) SetFlushBytesPerSec(v int64) {
	if v < 1 {
		v = 1
	}
	st.cfg.FlushBytesPerSec = v
}

// Bytes returns the current memstore occupancy.
func (st *Memstore) Bytes() int64 { return st.bytes }

// Blocked reports whether the write path is currently blocked on a flush.
func (st *Memstore) Blocked() bool { return st.blocked }

// Crashed reports an OOM death.
func (st *Memstore) Crashed() bool { return st.crashed }

// Writes returns the number of completed writes.
func (st *Memstore) Writes() int64 { return st.writes.Value() }

// Rejected returns the number of writes refused while the store was blocked.
func (st *Memstore) Rejected() int64 { return st.rejected.Value() }

// Flushes returns the number of blocking flushes performed.
func (st *Memstore) Flushes() int64 { return st.flushes.Value() }

// BlockTimes returns the block-duration tracker (the constrained metric:
// its worst case must stay under the user's goal).
func (st *Memstore) BlockTimes() *metrics.Latency { return st.blockTimes }

// WriteLatency returns the per-write latency tracker.
func (st *Memstore) WriteLatency() *metrics.Latency { return st.writeLatency }

// Throughput returns completed writes per second over the trailing window.
func (st *Memstore) Throughput() float64 { return st.throughput.Rate(st.sim.Now()) }

// Write appends bytes. Writes arriving during a blocking flush are REFUSED
// (clients see timeouts and give up — HBase's RegionTooBusyException); the
// time the store spends blocked is therefore lost throughput, which is
// exactly the trade-off against the block-time constraint.
func (st *Memstore) Write(bytes int64) bool {
	if st.crashed || st.down {
		return false
	}
	if st.blocked {
		st.rejected.Inc()
		return false
	}
	if err := st.heap.Alloc(bytes); err != nil {
		st.crashed = true
		return false
	}
	st.bytes += bytes
	st.writes.Inc()
	st.throughput.Mark(st.sim.Now(), 1)
	st.writeLatency.Observe(st.cfg.WriteBaseLatency)
	if st.bytes >= st.cfg.UpperLimitBytes {
		st.startFlush()
	}
	return true
}

func (st *Memstore) startFlush() {
	if st.blocked || st.crashed {
		return
	}
	if st.BeforeFlush != nil {
		st.BeforeFlush()
	}
	st.blocked = true
	st.blockStart = st.sim.Now()
	st.flushes.Inc()

	amount := int64(float64(st.cfg.UpperLimitBytes) * st.flushFraction)
	if amount > st.bytes {
		amount = st.bytes
	}
	d := st.cfg.FlushFixedOverhead
	if st.cfg.FlushBytesPerSec > 0 {
		d += time.Duration(float64(amount) / float64(st.cfg.FlushBytesPerSec) * float64(time.Second))
	}
	st.flushAmount = amount
	st.sim.AfterArg(d, st.flushDoneFn, st.epoch)
}

// flushDone retires a flush: the argument carries the scheduling
// incarnation's epoch, invalidating completions across Kill.
func (st *Memstore) flushDone(arg uint64) {
	if st.epoch != arg || st.crashed {
		return
	}
	st.heap.Free(st.flushAmount)
	st.bytes -= st.flushAmount
	st.blocked = false
	st.blockTimes.Observe(st.sim.Now() - st.blockStart)
}

// Fleet surface: what internal/cluster needs to route to, kill, and restart
// this store as one member of an N-wide fleet. Writes are synchronous, so
// there is no in-flight work to evacuate — a killed store simply loses its
// unflushed data (the WAL replay a real region server would do is outside
// the model).

// SetID assigns the store's stable fleet identity (key-affinity hashes it).
func (st *Memstore) SetID(id int) { st.id = id }

// ID returns the fleet identity.
func (st *Memstore) ID() int { return st.id }

// Alive reports whether the store can accept writes: neither crashed (OOM)
// nor down (injected instance loss).
func (st *Memstore) Alive() bool { return !st.crashed && !st.down }

// Down reports whether the store is killed but restartable.
func (st *Memstore) Down() bool { return st.down }

// Load returns the store's occupancy in bytes — the signal load-aware
// routing policies compare.
func (st *Memstore) Load() float64 { return float64(st.bytes) }

// Kill models abrupt process death for fleet chaos: the heap is released in
// full (base plus unflushed data), any in-progress flush is invalidated, and
// the store stops accepting writes until Restart.
func (st *Memstore) Kill() {
	if st.crashed || st.down {
		return
	}
	st.down = true
	st.epoch++
	st.heap.Free(st.bytes + st.cfg.BaseHeapBytes)
	st.bytes = 0
	st.blocked = false
}

// Restart brings a killed store back cold: fresh base heap, empty memstore;
// cumulative counters persist across incarnations. A crashed (OOM) store
// stays dead. If the base heap no longer fits, the restart itself OOMs.
func (st *Memstore) Restart() {
	if st.crashed || !st.down {
		return
	}
	if err := st.heap.Alloc(st.cfg.BaseHeapBytes); err != nil {
		st.crashed = true
		return
	}
	st.down = false
}
