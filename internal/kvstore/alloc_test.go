package kvstore

import (
	"testing"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/sim"
)

// The raw-speed gates for both kvstore substrates: once the pending buffers
// and metrics windows have grown to their working size, a steady-state write
// (including the flush cycles it triggers) must not allocate. Every
// steady-state allocation multiplies by the 10M requests a -scale run pushes
// through.

func TestMemtableSteadyStateWritePathZeroAlloc(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(64 << 30)
	st := NewMemtableStore(s, heap, DefaultMemtableConfig(), 64<<20)

	var now time.Duration
	cycle := func() {
		now += 2 * time.Millisecond
		s.RunUntil(now)
		st.Write(32 << 10)
	}
	for i := 0; i < 5000; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(2000, cycle); allocs != 0 {
		t.Fatalf("steady-state write path allocates %.1f objects per cycle, want 0", allocs)
	}
	if st.Crashed() {
		t.Fatal("store crashed during the measurement window")
	}
}

func TestMemstoreSteadyStateWritePathZeroAlloc(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(64 << 30)
	cfg := DefaultMemstoreConfig()
	st := NewMemstore(s, heap, cfg, 0.5)

	var now time.Duration
	cycle := func() {
		now += 2 * time.Millisecond
		s.RunUntil(now)
		st.Write(64 << 10)
	}
	for i := 0; i < 5000; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(2000, cycle); allocs != 0 {
		t.Fatalf("steady-state write path allocates %.1f objects per cycle, want 0", allocs)
	}
	if st.Crashed() {
		t.Fatal("store crashed during the measurement window")
	}
}
