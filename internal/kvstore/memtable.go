// Package kvstore simulates LSM-style key-value store servers. It provides
// the substrates for two of the paper's benchmark issues:
//
//   - CA6059 (MemtableStore): Cassandra's memtable_total_space_in_mb bounds
//     the in-memory write buffer. Too large and the heap OOMs when other
//     objects (the read cache) grow; too small and constant flushing ruins
//     write latency. The knob is indirect: it thresholds the actual
//     memtable footprint, which is what drives memory.
//   - HB2149 (Memstore): HBase's global.memstore.lowerLimit decides how much
//     memstore data each blocking flush drains. Flush too much and writes
//     block too long; too little and the store blocks too often, hurting
//     throughput. The knob is direct and conditional (it only matters at
//     flush time).
package kvstore

import (
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
)

// MemtableConfig fixes the Cassandra-like store's capacity parameters.
type MemtableConfig struct {
	// FlushBytesPerSec is the rate at which a flush drains to disk.
	FlushBytesPerSec int64
	// FlushFixedOverhead is the per-flush setup cost (compaction queueing,
	// sstable bookkeeping); this is what makes frequent small flushes
	// expensive.
	FlushFixedOverhead time.Duration
	// WriteBaseLatency is the uncontended write latency.
	WriteBaseLatency time.Duration
	// FlushPenalty is the extra latency a write pays while a flush is
	// running (IO contention).
	FlushPenalty time.Duration
	// BaseHeapBytes is allocated at startup.
	BaseHeapBytes int64
}

// DefaultMemtableConfig returns the calibration used by the CA6059
// experiments.
func DefaultMemtableConfig() MemtableConfig {
	return MemtableConfig{
		FlushBytesPerSec:   64 << 20,
		FlushFixedOverhead: 2 * time.Second,
		WriteBaseLatency:   2 * time.Millisecond,
		FlushPenalty:       8 * time.Millisecond,
		BaseHeapBytes:      64 << 20,
	}
}

// MemtableStore is the CA6059 substrate.
type MemtableStore struct {
	sim  *sim.Simulation
	heap *memsim.Heap
	cfg  MemtableConfig

	threshold int64 // the knob: memtable_total_space (bytes)

	active   int64 // current memtable bytes
	flushing int64 // frozen memtable bytes being flushed

	// pending holds writes throttled because the memtable is at its limit
	// while a flush is in flight; they apply (and allocate) at flush end.
	// pending and pendingScratch ping-pong so the drain allocates nothing.
	pending        []pendingWrite
	pendingScratch []pendingWrite
	pendingBytes   int64

	cacheBytes  int64
	cacheTarget int64

	crashed bool

	// flushDoneFn is flushDone bound once — creating the method value per
	// After call would allocate.
	flushDoneFn func(uint64)

	writeLatency *metrics.Latency
	writes       metrics.Counter
	stalledOps   metrics.Counter

	// BeforeWrite, when set, runs at the top of every Write — the
	// integration point where the controller reads the sensor and adjusts
	// the threshold.
	BeforeWrite func()
}

// NewMemtableStore returns a store with the given memtable threshold.
func NewMemtableStore(s *sim.Simulation, heap *memsim.Heap, cfg MemtableConfig, threshold int64) *MemtableStore {
	st := &MemtableStore{
		sim:          s,
		heap:         heap,
		cfg:          cfg,
		threshold:    threshold,
		writeLatency: metrics.NewLatency(512),
	}
	st.flushDoneFn = st.flushDone
	if err := heap.Alloc(cfg.BaseHeapBytes); err != nil {
		st.crashed = true
	}
	return st
}

// SetThreshold adjusts the memtable_total_space knob (bytes). A live
// memtable above a lowered threshold is tolerated; the threshold gates
// future growth (§4.2 transient-inconsistency rule).
func (st *MemtableStore) SetThreshold(v int64) {
	if v < 0 {
		v = 0
	}
	st.threshold = v
}

// Threshold returns the current knob value.
func (st *MemtableStore) Threshold() int64 { return st.threshold }

// MemtableBytes returns the deputy variable: total live memtable footprint
// (active plus flushing segments).
func (st *MemtableStore) MemtableBytes() int64 { return st.active + st.flushing }

// CacheBytes returns the read-cache footprint.
func (st *MemtableStore) CacheBytes() int64 { return st.cacheBytes }

// Crashed reports an OOM death.
func (st *MemtableStore) Crashed() bool { return st.crashed }

// Writes returns the number of completed writes.
func (st *MemtableStore) Writes() int64 { return st.writes.Value() }

// StalledOps returns how many writes were throttled at the threshold.
func (st *MemtableStore) StalledOps() int64 { return st.stalledOps.Value() }

// WriteLatency returns the write-latency tracker (the trade-off metric).
func (st *MemtableStore) WriteLatency() *metrics.Latency { return st.writeLatency }

// SetCacheTarget sets the read cache's target size (the paper's "Cz" knob:
// phase-2 cache growth is the disturbance that invalidates static memtable
// settings).
func (st *MemtableStore) SetCacheTarget(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	st.cacheTarget = bytes
}

type pendingWrite struct {
	bytes int64
	at    time.Duration
}

// Write appends bytes to the active memtable. Cassandra-style admission:
// a flush freezes the active segment once the TOTAL memtable footprint
// reaches half the threshold (so there is always headroom for the next
// segment), and writes are throttled — queued until the flush completes —
// once the total reaches the threshold itself. The threshold therefore
// really caps memtable memory, which is what lets a controller bound the
// heap through it.
//
//smartconf:hotpath
func (st *MemtableStore) Write(bytes int64) bool {
	if st.crashed {
		return false
	}
	if st.BeforeWrite != nil {
		st.BeforeWrite()
	}
	if st.MemtableBytes() >= st.threshold && st.flushing > 0 {
		// At the limit with a flush in flight: throttle. The write lands
		// when the flush finishes and pays the wait as latency.
		st.stalledOps.Inc()
		st.pending = append(st.pending, pendingWrite{bytes: bytes, at: st.sim.Now()})
		st.pendingBytes += bytes
		return true
	}
	return st.apply(bytes, 0)
}

func (st *MemtableStore) apply(bytes int64, waited time.Duration) bool {
	if err := st.heap.Alloc(bytes); err != nil {
		st.crashed = true
		return false
	}
	st.active += bytes

	lat := st.cfg.WriteBaseLatency + waited
	if st.flushing > 0 {
		lat += st.cfg.FlushPenalty
	}
	st.writeLatency.Observe(lat)
	st.writes.Inc()
	st.maybeFlush()
	return true
}

// Read serves a read of the given size, growing the cache toward its target
// (reads populate the block/index cache, which competes for heap).
func (st *MemtableStore) Read(bytes int64) bool {
	if st.crashed {
		return false
	}
	if st.cacheBytes < st.cacheTarget {
		grow := bytes
		if st.cacheBytes+grow > st.cacheTarget {
			grow = st.cacheTarget - st.cacheBytes
		}
		if err := st.heap.Alloc(grow); err != nil {
			st.crashed = true
			return false
		}
		st.cacheBytes += grow
	} else if st.cacheBytes > st.cacheTarget {
		shrink := st.cacheBytes - st.cacheTarget
		st.heap.Free(shrink)
		st.cacheBytes -= shrink
	}
	return true
}

func (st *MemtableStore) maybeFlush() {
	if st.flushing > 0 || st.active == 0 || st.MemtableBytes() < st.threshold/2 {
		return
	}
	// Freeze the active memtable and flush it in the background.
	st.flushing = st.active
	st.active = 0
	d := st.cfg.FlushFixedOverhead
	if st.cfg.FlushBytesPerSec > 0 {
		d += time.Duration(float64(st.flushing) / float64(st.cfg.FlushBytesPerSec) * float64(time.Second))
	}
	st.sim.AfterArg(d, st.flushDoneFn, 0)
}

// flushDone retires a flush. MemtableStore has no fleet Kill, so the event
// argument is unused.
//
//smartconf:hotpath
func (st *MemtableStore) flushDone(uint64) {
	if st.crashed {
		return
	}
	st.heap.Free(st.flushing)
	st.flushing = 0
	// Throttled writes land now, paying their wait as latency. The two
	// pending buffers ping-pong so the drain reuses their capacity.
	pend := st.pending
	st.pending = st.pendingScratch[:0]
	st.pendingScratch = pend
	st.pendingBytes = 0
	for _, pw := range pend {
		if st.crashed {
			return
		}
		st.apply(pw.bytes, st.sim.Now()-pw.at)
	}
	st.maybeFlush()
}
