package kvstore

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/sim"
)

func TestMemtableFlushCycle(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	cfg := DefaultMemtableConfig()
	st := NewMemtableStore(s, heap, cfg, 10<<20)

	// Write 4 MB: below the freeze watermark (threshold/2), no flush.
	s.At(0, func() {
		for i := 0; i < 4; i++ {
			st.Write(1 << 20)
		}
	})
	s.RunUntil(time.Second)
	if st.MemtableBytes() != 4<<20 {
		t.Fatalf("memtable = %d, want 4MB", st.MemtableBytes())
	}
	// A fifth MB reaches threshold/2: the segment freezes and flushes in
	// the background while new writes land in a fresh active segment.
	s.At(time.Second, func() {
		st.Write(1 << 20)
		st.Write(1 << 20)
	})
	s.RunUntil(1100 * time.Millisecond)
	if st.MemtableBytes() != 6<<20 {
		t.Fatalf("memtable = %d, want frozen 5MB + active 1MB", st.MemtableBytes())
	}
	// After the flush drains, only the post-freeze byte remains.
	s.RunUntil(60 * time.Second)
	if got := st.MemtableBytes(); got != 1<<20 {
		t.Errorf("memtable after flush = %d, want 1MB", got)
	}
	if st.Crashed() {
		t.Error("unexpected crash")
	}
	// Heap accounting: base + remaining memtable.
	want := cfg.BaseHeapBytes + 1<<20
	if heap.Used() != want {
		t.Errorf("heap = %d, want %d", heap.Used(), want)
	}
}

func TestMemtableThrottlesAtThreshold(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	cfg := DefaultMemtableConfig()
	st := NewMemtableStore(s, heap, cfg, 10<<20)
	s.At(0, func() {
		// 5 MB freezes a segment; 10 more MB fill the new active segment to
		// the threshold; further writes must throttle, so the memtable never
		// exceeds threshold + one active segment's worth of committed bytes.
		for i := 0; i < 20; i++ {
			st.Write(1 << 20)
		}
	})
	s.RunUntil(time.Second)
	if st.StalledOps() == 0 {
		t.Error("expected throttled writes at the threshold")
	}
	if st.MemtableBytes() > 15<<20 {
		t.Errorf("memtable = %d, threshold stopped capping memory", st.MemtableBytes())
	}
	// Everything lands eventually, with the waiters paying wait latency.
	s.RunUntil(5 * time.Minute)
	if st.Writes() != 20 {
		t.Errorf("writes = %d, want all 20 applied", st.Writes())
	}
	if st.WriteLatency().Worst() < cfg.FlushFixedOverhead/2 {
		t.Errorf("throttled writes should carry wait latency, worst = %v", st.WriteLatency().Worst())
	}
}

func TestMemtableSmallThresholdHurtsLatency(t *testing.T) {
	run := func(threshold int64) time.Duration {
		s := sim.New()
		st := NewMemtableStore(s, memsim.NewHeap(4<<30), DefaultMemtableConfig(), threshold)
		s.Every(0, 10*time.Millisecond, func() bool {
			st.Write(1 << 20)
			return s.Now() < 120*time.Second
		})
		s.RunUntil(120 * time.Second)
		return st.WriteLatency().OverallMean()
	}
	small := run(8 << 20)
	large := run(512 << 20)
	if small <= large {
		t.Errorf("small-memtable latency %v should exceed large-memtable %v", small, large)
	}
}

func TestMemtableCacheGrowthCausesOOM(t *testing.T) {
	// CA6059's failure mode: a generous memtable threshold is fine until the
	// read cache grows and squeezes the heap.
	s := sim.New()
	heap := memsim.NewHeap(256 << 20)
	st := NewMemtableStore(s, heap, DefaultMemtableConfig(), 192<<20)
	st.SetCacheTarget(128 << 20)
	s.Every(0, 5*time.Millisecond, func() bool {
		st.Write(1 << 20)
		st.Read(1 << 20)
		return !st.Crashed() && s.Now() < 120*time.Second
	})
	s.RunUntil(120 * time.Second)
	if !st.Crashed() || !heap.OOM() {
		t.Error("expected OOM with oversized memtable + growing cache")
	}
}

func TestMemtableCacheShrinksToTarget(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	st := NewMemtableStore(s, heap, DefaultMemtableConfig(), 1<<30)
	st.SetCacheTarget(10 << 20)
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			st.Read(1 << 20)
		}
	})
	s.RunUntil(time.Second)
	if st.CacheBytes() != 10<<20 {
		t.Fatalf("cache = %d, want capped at 10MB", st.CacheBytes())
	}
	s.At(time.Second, func() {
		st.SetCacheTarget(2 << 20)
		st.Read(1) // next read applies the shrink
	})
	s.RunUntil(2 * time.Second)
	if st.CacheBytes() != 2<<20 {
		t.Errorf("cache after shrink = %d, want 2MB", st.CacheBytes())
	}
}

func TestMemtableHooksAndSetters(t *testing.T) {
	s := sim.New()
	st := NewMemtableStore(s, memsim.NewHeap(1<<30), DefaultMemtableConfig(), 100)
	calls := 0
	st.BeforeWrite = func() { calls++ }
	s.At(0, func() {
		st.Write(10)
		st.Write(10)
	})
	s.RunUntil(time.Second)
	if calls != 2 {
		t.Errorf("BeforeWrite fired %d times, want 2", calls)
	}
	st.SetThreshold(-5)
	if st.Threshold() != 0 {
		t.Errorf("negative threshold should clamp to 0, got %d", st.Threshold())
	}
}

func TestMemstoreBlockingFlush(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	cfg := DefaultMemstoreConfig()
	cfg.UpperLimitBytes = 100 << 20
	st := NewMemstore(s, heap, cfg, 0.5)

	flushHook := 0
	st.BeforeFlush = func() { flushHook++ }

	s.Every(0, 10*time.Millisecond, func() bool {
		st.Write(1 << 20)
		return s.Now() < 60*time.Second
	})
	s.RunUntil(60 * time.Second)

	if st.Flushes() == 0 || flushHook != int(st.Flushes()) {
		t.Fatalf("flushes = %d, hook = %d", st.Flushes(), flushHook)
	}
	if st.Crashed() {
		t.Fatal("unexpected crash")
	}
	// Block time ≈ fixed + 0.5·100MB/32MBps ≈ 0.5 + 1.56 ≈ 2.06 s.
	worst := st.BlockTimes().Worst()
	if worst < 1500*time.Millisecond || worst > 3*time.Second {
		t.Errorf("worst block = %v, want ≈2s", worst)
	}
	if st.Writes() == 0 || st.Throughput() == 0 {
		t.Error("no writes recorded")
	}
}

func TestMemstoreBlockTimeScalesWithFraction(t *testing.T) {
	run := func(fraction float64) time.Duration {
		s := sim.New()
		cfg := DefaultMemstoreConfig()
		cfg.UpperLimitBytes = 64 << 20
		st := NewMemstore(s, memsim.NewHeap(1<<30), cfg, fraction)
		s.Every(0, 5*time.Millisecond, func() bool {
			st.Write(1 << 20)
			return s.Now() < 60*time.Second
		})
		s.RunUntil(60 * time.Second)
		return st.BlockTimes().Worst()
	}
	small, large := run(0.1), run(0.9)
	if large <= small {
		t.Errorf("flushing 90%% (block %v) should block longer than 10%% (block %v)", large, small)
	}
}

func TestMemstoreFrequentFlushesHurtThroughput(t *testing.T) {
	run := func(fraction float64) int64 {
		s := sim.New()
		cfg := DefaultMemstoreConfig()
		cfg.UpperLimitBytes = 64 << 20
		st := NewMemstore(s, memsim.NewHeap(1<<30), cfg, fraction)
		s.Every(0, 5*time.Millisecond, func() bool {
			st.Write(1 << 20)
			return s.Now() < 120*time.Second
		})
		s.RunUntil(120 * time.Second)
		return st.Writes()
	}
	// Tiny flushes pay the fixed overhead constantly.
	small, large := run(0.05), run(0.8)
	if small >= large {
		t.Errorf("tiny flushes: %d writes should be fewer than large flushes: %d", small, large)
	}
}

func TestMemstoreRejectsWritesWhileBlocked(t *testing.T) {
	s := sim.New()
	cfg := DefaultMemstoreConfig()
	cfg.UpperLimitBytes = 10 << 20
	st := NewMemstore(s, memsim.NewHeap(1<<30), cfg, 0.5)
	s.At(0, func() {
		if !st.Write(10 << 20) { // hits the watermark, blocks
			t.Error("first write refused")
		}
		if !st.Blocked() {
			t.Error("expected blocked after watermark")
		}
		if st.Write(1 << 20) {
			t.Error("write during block should be refused")
		}
		if st.Write(1 << 20) {
			t.Error("write during block should be refused")
		}
	})
	s.RunUntil(30 * time.Second)
	if st.Writes() != 1 || st.Rejected() != 2 {
		t.Errorf("writes=%d rejected=%d, want 1/2", st.Writes(), st.Rejected())
	}
	if st.Blocked() {
		t.Error("still blocked at end")
	}
	// The unblocked store accepts again.
	s.At(31*time.Second, func() {
		if !st.Write(1 << 20) {
			t.Error("post-block write refused")
		}
	})
	s.RunUntil(32 * time.Second)
	if st.Writes() != 2 {
		t.Errorf("writes = %d, want 2", st.Writes())
	}
}

func TestMemstoreFractionClamp(t *testing.T) {
	s := sim.New()
	st := NewMemstore(s, memsim.NewHeap(1<<30), DefaultMemstoreConfig(), 5)
	if st.FlushFraction() != 1 {
		t.Errorf("fraction = %v, want clamped to 1", st.FlushFraction())
	}
	st.SetFlushFraction(-3)
	if st.FlushFraction() != 0.01 {
		t.Errorf("fraction = %v, want clamped to 0.01", st.FlushFraction())
	}
}

// Property: memtable-store heap accounting is exact at every step —
// heap used always equals base + memtable + cache — and drains leak-free.
func TestMemtableHeapAccountingProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		s := sim.New()
		heap := memsim.NewHeap(1 << 40)
		cfg := DefaultMemtableConfig()
		st := NewMemtableStore(s, heap, cfg, 64<<20)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		check := func() {
			want := cfg.BaseHeapBytes + st.MemtableBytes() + st.CacheBytes()
			if heap.Used() != want {
				ok = false
			}
		}
		for i, op := range ops {
			i, op := i, op
			s.At(time.Duration(i)*31*time.Millisecond, func() {
				switch op % 4 {
				case 0:
					st.Write(int64(1 + rng.Intn(4<<20)))
				case 1:
					st.SetCacheTarget(int64(rng.Intn(64 << 20)))
					st.Read(int64(1 + rng.Intn(2<<20)))
				case 2:
					st.SetThreshold(int64(rng.Intn(128 << 20)))
				case 3:
					st.Write(1 << 10)
				}
				check()
			})
		}
		s.RunUntil(time.Duration(len(ops))*31*time.Millisecond + 10*time.Minute)
		check()
		return ok && !st.Crashed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the memstore's occupancy never exceeds the upper watermark plus
// one write, and block times are within the analytic bound for the fraction.
func TestMemstoreInvariantProperty(t *testing.T) {
	f := func(seed int64, fracSeed uint8) bool {
		s := sim.New()
		cfg := DefaultMemstoreConfig()
		cfg.UpperLimitBytes = 64 << 20
		frac := 0.05 + float64(fracSeed%90)/100
		st := NewMemstore(s, memsim.NewHeap(1<<40), cfg, frac)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		s.Every(0, 20*time.Millisecond, func() bool {
			st.Write(int64(1 + rng.Intn(2<<20)))
			if st.Bytes() > cfg.UpperLimitBytes+2<<20 {
				ok = false
			}
			return s.Now() < 60*time.Second && ok
		})
		s.RunUntil(60 * time.Second)
		bound := cfg.FlushFixedOverhead.Seconds() +
			frac*float64(cfg.UpperLimitBytes)/float64(cfg.FlushBytesPerSec) + 0.1
		if st.BlockTimes().Worst().Seconds() > bound {
			return false
		}
		return ok && !st.Crashed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
