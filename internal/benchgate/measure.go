package benchgate

import (
	"runtime"
	"time"
)

// Measure runs f once and reports its wall-clock duration and how many heap
// objects it allocated. It lives here — not in internal/experiments — because
// the experiments tree is simulation-reachable code where the determinism
// analyzer bans wall-clock reads; benchgate is the one package whose whole
// point is comparing against the wall. Callers (cmd/smartconf-bench -scale)
// keep the results off the deterministic artifact: measured numbers go to
// stderr and BENCH_engine.json, never stdout.
//
// The allocation count is a process-wide Mallocs delta, so it is only
// meaningful when nothing else runs concurrently — run substrates
// sequentially when measuring.
func Measure(f func()) (wall time.Duration, allocs uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	wall = time.Since(start)
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs
}
