//go:build !race

package benchgate

const raceEnabled = false
