// Package benchgate turns BENCH_engine.json from documentation into a
// regression gate. Its test re-measures the zero-allocation hot paths the
// engine depends on — event scheduling, meter marks, latency observation —
// with testing.Benchmark and fails if any of them allocates more per op
// than the recorded baseline. Allocation counts are deterministic, so that
// check is exact and CI-stable; wall-clock drift is reported as a warning
// only, because ns/op on shared CI hosts is noise.
//
// The gate is skipped under the race detector (whose instrumentation both
// allocates and slows everything) and under -short.
package benchgate
