//go:build race

package benchgate

// raceEnabled reports whether this binary was built with -race; the gate
// skips itself there because race instrumentation changes both allocation
// counts and timing.
const raceEnabled = true
