package benchgate

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"smartconf/internal/cluster"
	"smartconf/internal/declog"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
)

// gateInstance is the minimal cluster.Instance for the router gates.
type gateInstance struct {
	id   int
	dead bool
}

func (g gateInstance) ID() int       { return g.id }
func (g gateInstance) Alive() bool   { return !g.dead }
func (g gateInstance) Load() float64 { return float64(g.id) }

// baselinePath locates BENCH_engine.json relative to this package.
const baselinePath = "../../BENCH_engine.json"

// timeWarnFactor is how far ns/op may drift past the recorded baseline
// before the gate logs a warning. Generous on purpose: the baseline host and
// the CI host differ, and timing is advisory here — allocations are the
// enforced contract.
const timeWarnFactor = 2.0

type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp *int64  `json:"allocs_per_op"`
	Note        string  `json:"note"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// The gated hot paths. Each body replicates the published benchmark of the
// same name, so a number in BENCH_engine.json and a gate measurement are the
// same experiment.
var gated = []struct {
	key   string
	bench func(b *testing.B)
}{
	{"smartconf/internal/sim.BenchmarkSimSchedule", func(b *testing.B) {
		s := sim.NewWithCapacity(1)
		fn := func() {}
		t := time.Duration(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t += time.Millisecond
			s.At(t, fn)
			s.Run()
		}
	}},
	{"smartconf/internal/sim.BenchmarkSimScheduleArg", func(b *testing.B) {
		s := sim.NewWithCapacity(1)
		fn := func(uint64) {}
		t := time.Duration(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t += time.Millisecond
			s.AtArg(t, fn, uint64(i))
			s.Run()
		}
	}},
	{"smartconf/internal/sim.BenchmarkSimBatchDispatch", func(b *testing.B) {
		s := sim.NewWithCapacity(4)
		var cascade func(uint64)
		cascade = func(remaining uint64) {
			if remaining > 0 {
				s.AfterArg(0, cascade, remaining-1)
			}
		}
		t := time.Duration(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t += time.Millisecond
			s.AtArg(t, cascade, 63)
			s.Run()
		}
	}},
	{"smartconf/internal/metrics.BenchmarkMeterMark", func(b *testing.B) {
		m := metrics.NewMeter(time.Second)
		now := time.Duration(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += 100 * time.Microsecond
			m.Mark(now, 1)
		}
	}},
	{"smartconf/internal/metrics.BenchmarkLatencyObserve", func(b *testing.B) {
		l := metrics.NewLatency(512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	}},
	{"smartconf/internal/declog.BenchmarkDeclogAppend", func(b *testing.B) {
		l := declog.New(4096)
		src := l.Register("gate")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Append(declog.Record{Source: src, Period: uint32(i + 1), Sensed: float64(i), Err: 1, Pole: 0.5, Raw: 2, Applied: 2})
		}
	}},
	{"smartconf/internal/cluster.BenchmarkRouterRoute", func(b *testing.B) {
		r := cluster.NewRouter(cluster.KeyAffinity)
		for i := 0; i < 16; i++ {
			r.Add(gateInstance{id: i}, 1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RouteExcluding(cluster.Request{Key: uint64(i), Cost: 1}, cluster.TriedSet{})
		}
	}},
	{"smartconf/internal/cluster.BenchmarkFleetRouteWide", func(b *testing.B) {
		r := cluster.NewRouter(cluster.KeyAffinity)
		for i := 0; i < 256; i++ {
			r.Add(gateInstance{id: i, dead: i%5 == 0}, 1)
		}
		var tried cluster.TriedSet
		for i := 0; i < 256; i += 7 {
			tried.Set(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RouteExcluding(cluster.Request{Key: uint64(i), Cost: 1}, tried)
		}
	}},
}

// TestHotPathAllocationsVsBaseline fails the build when a gated hot path
// allocates more per operation than BENCH_engine.json records. New
// allocations on these paths multiply across millions of simulated events,
// and every one of them has been deliberately engineered away; reintroducing
// one should be a conscious, baseline-bumping decision, not an accident.
func TestHotPathAllocationsVsBaseline(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts and timing")
	}
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short mode")
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}

	for _, g := range gated {
		entry, ok := base.Benchmarks[g.key]
		if !ok {
			t.Errorf("%s: gated benchmark has no baseline entry — record one", g.key)
			continue
		}
		r := testing.Benchmark(g.bench)
		if r.N == 0 {
			t.Errorf("%s: benchmark did not run", g.key)
			continue
		}
		allocs := r.AllocsPerOp()
		if entry.AllocsPerOp == nil {
			t.Errorf("%s: baseline records no allocs_per_op for a gated path", g.key)
		} else if allocs > *entry.AllocsPerOp {
			t.Errorf("%s: %d allocs/op, baseline %d — a new allocation crept onto the hot path (bump the baseline only if intentional)",
				g.key, allocs, *entry.AllocsPerOp)
		}
		if ns := float64(r.NsPerOp()); entry.NsPerOp > 0 && ns > entry.NsPerOp*timeWarnFactor {
			t.Logf("warn: %s at %.1f ns/op vs %.1f recorded (×%.1f) — advisory only, host timing varies",
				g.key, ns, entry.NsPerOp, ns/entry.NsPerOp)
		}
	}
}
