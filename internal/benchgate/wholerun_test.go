package benchgate

import (
	"encoding/json"
	"os"
	"testing"

	"smartconf/internal/declog"
	"smartconf/internal/experiments"
)

// The whole-run gate: where gate_test.go replays micro-op benchmarks, this
// test drives each substrate's actual -scale run — workload generator,
// simulator, substrate, sensors, and a shadow decision-logging controller —
// and enforces the raw-speed engine's contract end to end. Allocations are
// strict on the request-pooled substrates: after a warm-up prefix, a window
// of tens of thousands of requests must allocate NOTHING — with decision
// logging enabled — the property that lets a 10M-request campaign finish in
// seconds and the decision log stay on in production. Requests/sec is
// advisory against the recorded baseline, like ns/op in the micro gate.

const (
	// wholeRunWarm is the prefix that grows every queue, free list, and
	// sensor window to its steady-state size before measurement.
	wholeRunWarm = 200_000
	// wholeRunWindow is the measured steady-state window.
	wholeRunWindow = 50_000
)

var wholeRun = []struct {
	key       string
	substrate string
	// strict substrates must allocate zero heap objects across a whole
	// steady-state window. dfs is the one exemption left: du traversal
	// chunks schedule closures a few times per million requests. mapred
	// joined the strict set once its per-task chunk closures moved to
	// slot-table AtArg handlers (tasks are the pooling unit now).
	strict bool
}{
	{"smartconf/internal/experiments.ScaleRun/rpc", "rpc", true},
	{"smartconf/internal/experiments.ScaleRun/llm", "llm", true},
	{"smartconf/internal/experiments.ScaleRun/kv", "kv", true},
	{"smartconf/internal/experiments.ScaleRun/dfs", "dfs", false},
	{"smartconf/internal/experiments.ScaleRun/mapred", "mapred", true},
	{"smartconf/internal/experiments.ScaleRun/fleetrpc", "fleetrpc", true},
	{"smartconf/internal/experiments.ScaleRun/fleetllm", "fleetllm", true},
}

func TestWholeRunVsBaseline(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts and timing")
	}
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short mode")
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}

	for _, g := range wholeRun {
		entry, ok := base.Benchmarks[g.key]
		if !ok {
			t.Errorf("%s: whole-run gate has no baseline entry — record one", g.key)
			continue
		}
		log := declog.New(4096)
		r := experiments.NewLoggedScaleRunner(g.substrate, log)
		total := int64(wholeRunWarm)
		r.RunTo(total)
		if log.Total() == 0 {
			t.Errorf("%s: shadow controller logged no decisions over the warm-up — the gate is not exercising the decision log", g.key)
		}

		if g.strict {
			allocs := testing.AllocsPerRun(3, func() {
				total += wholeRunWindow
				r.RunTo(total)
			})
			if allocs != 0 {
				t.Errorf("%s: %.1f allocs per %d-request steady-state window (decision logging on), want 0 — a new allocation crept onto the request path",
					g.key, allocs, wholeRunWindow)
			}
		}

		wall, _ := Measure(func() {
			total += wholeRunWindow
			r.RunTo(total)
		})
		nsPerReq := float64(wall.Nanoseconds()) / float64(wholeRunWindow)
		if entry.NsPerOp > 0 && nsPerReq > entry.NsPerOp*timeWarnFactor {
			t.Logf("warn: %s at %.1f ns/request vs %.1f recorded (×%.1f) — advisory only, host timing varies",
				g.key, nsPerReq, entry.NsPerOp, nsPerReq/entry.NsPerOp)
		}
	}
}
