package lint_test

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"smartconf/internal/lint"
)

// The golden tests load packages from testdata/src/<path> under the
// synthetic import prefix lint.test/ and compare analyzer output against
// `// want "substring"` comments: every diagnostic must match a want on its
// line, and every want must be matched by a diagnostic. Each testdata
// package also carries one //smartconf:allow case proving the suppression
// escape hatch.

const testPathPrefix = "lint.test/"

// testImporter resolves lint.test/... import paths from testdata/src and
// delegates everything else (the standard library) to the source importer.
type testImporter struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*lint.Package
}

func newTestImporter(fset *token.FileSet) *testImporter {
	return &testImporter{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*lint.Package{},
	}
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	if !strings.HasPrefix(path, testPathPrefix) {
		return ti.std.Import(path)
	}
	pkg, err := ti.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (ti *testImporter) load(path string) (*lint.Package, error) {
	if pkg, ok := ti.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join("testdata", "src", filepath.FromSlash(strings.TrimPrefix(path, testPathPrefix)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	pkg, err := lint.CheckFiles(ti.fset, ti, path, dir, files)
	if err != nil {
		return nil, err
	}
	ti.pkgs[path] = pkg
	return pkg, nil
}

var quoteRx = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	substr  string
	matched bool
}

// collectWants indexes `// want "..." ["..."]...` comments by file basename
// and line.
func collectWants(pkg *lint.Package) map[string]map[int][]*expectation {
	wants := map[string]map[int][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				base := filepath.Base(pos.Filename)
				if wants[base] == nil {
					wants[base] = map[int][]*expectation{}
				}
				for _, m := range quoteRx.FindAllStringSubmatch(text, -1) {
					wants[base][pos.Line] = append(wants[base][pos.Line], &expectation{substr: m[1]})
				}
			}
		}
	}
	return wants
}

// runAnalyzerTest checks one analyzer against one testdata package: the
// diagnostics and the want comments must match exactly, in both directions.
func runAnalyzerTest(t *testing.T, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := newTestImporter(fset).load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("checking %s: %v", pkgPath, err)
	}
	wants := collectWants(pkg)
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, e := range wants[base][d.Pos.Line] {
			if !e.matched && strings.Contains(d.Message, e.substr) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for base, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected a diagnostic containing %q, got none", base, line, e.substr)
				}
			}
		}
	}
}

// swap temporarily overrides an analyzer configuration variable, returning
// the restore function.
func swap[T any](p *T, v T) func() {
	old := *p
	*p = v
	return func() { *p = old }
}

func TestDeterminismAnalyzer(t *testing.T) {
	defer swap(&lint.DeterminismPackages, []string{"lint.test/determinism"})()
	runAnalyzerTest(t, lint.DeterminismAnalyzer, "lint.test/determinism/sim")
}

func TestCacheKeyAnalyzer(t *testing.T) {
	defer swap(&lint.CachedRunPaths, []string{"lint.test/cachekey/experiments"})()
	defer swap(&lint.EnginePathSuffix, "cachekey/engine")()
	runAnalyzerTest(t, lint.CacheKeyAnalyzer, "lint.test/cachekey/experiments")
}

// TestCacheKeyDiskCacheRules exercises the analyzer's persistent-layer mode:
// inside the disk-cache package, gob encoding and wall-clock reads are
// findings regardless of adapter discipline.
func TestCacheKeyDiskCacheRules(t *testing.T) {
	defer swap(&lint.DiskCachePaths, []string{"lint.test/cachekey/diskcache"})()
	runAnalyzerTest(t, lint.CacheKeyAnalyzer, "lint.test/cachekey/diskcache")
}

func TestFloatCmpAnalyzer(t *testing.T) {
	defer swap(&lint.FloatCmpPackages, []string{"lint.test/floatcmp"})()
	runAnalyzerTest(t, lint.FloatCmpAnalyzer, "lint.test/floatcmp")
}

func TestGuardedByAnalyzer(t *testing.T) {
	runAnalyzerTest(t, lint.GuardedByAnalyzer, "lint.test/guardedby")
}

func TestHotAllocAnalyzer(t *testing.T) {
	runAnalyzerTest(t, lint.HotAllocAnalyzer, "lint.test/hotalloc")
}

func TestConfBoundsAnalyzer(t *testing.T) {
	defer swap(&lint.BoundSpecTypes, []string{"lint.test/confbounds.Spec"})()
	defer swap(&lint.ConfConstructors, []string{"lint.test/confbounds.New"})()
	runAnalyzerTest(t, lint.ConfBoundsAnalyzer, "lint.test/confbounds")
}

func TestSeedFlowAnalyzer(t *testing.T) {
	defer swap(&lint.SeedFlowPackages, []string{"lint.test/seedflow"})()
	runAnalyzerTest(t, lint.SeedFlowAnalyzer, "lint.test/seedflow")
}

// TestCollectAllowSites pins the -allows audit surface: every suppression
// comment is reported, including the reason-less one that analysis itself
// ignores.
func TestCollectAllowSites(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := newTestImporter(fset).load("lint.test/hotalloc")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	sites := lint.CollectAllowSites(pkg)
	if len(sites) != 2 {
		t.Fatalf("got %d allow sites, want 2: %v", len(sites), sites)
	}
	var reasoned, inert int
	for _, s := range sites {
		if len(s.Analyzers) != 1 || s.Analyzers[0] != "hotalloc" {
			t.Errorf("site %s: analyzers = %v, want [hotalloc]", s.Pos, s.Analyzers)
		}
		if s.Reason == "" {
			inert++
		} else {
			reasoned++
		}
	}
	if reasoned != 1 || inert != 1 {
		t.Errorf("got %d reasoned + %d inert sites, want 1 + 1", reasoned, inert)
	}
}

// TestHotPathRootsAnnotated pins the contract between the whole-run
// allocation benchgates and the hotalloc analyzer: every benchgate-gated
// request-path entry point must carry the //smartconf:hotpath annotation, so
// the static analyzer guards exactly the code the runtime gates measure.
func TestHotPathRootsAnnotated(t *testing.T) {
	roots := map[string][]string{
		"smartconf/internal/rpcserver": {"Offer", "finishSlot", "drainDone"},
		"smartconf/internal/llmserve":  {"Offer", "endStepArg"},
		"smartconf/internal/kvstore":   {"Write", "flushDone"},
		"smartconf/internal/dfs":       {"Write"},
		"smartconf/internal/mapred":    {"RunJob", "schedulerTick", "writeChunk", "reduceDone"},
		"smartconf/internal/declog":    {"Append"},
		"smartconf/internal/cluster":   {"Dispatch", "Redispatch", "Route", "RouteExcluding"},
	}
	paths := make([]string, 0, len(roots))
	for p := range roots {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs, err := lint.Load("", paths...)
	if err != nil {
		t.Fatalf("loading substrate packages: %v", err)
	}
	byPath := map[string]*lint.Package{}
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
	}
	for _, path := range paths {
		pkg := byPath[path]
		if pkg == nil {
			t.Errorf("package %s not loaded", path)
			continue
		}
		for _, fn := range roots[path] {
			if !funcHasHotPathMarker(pkg, fn) {
				t.Errorf("%s.%s is a benchgate-gated entry point but lacks the //smartconf:hotpath annotation", path, fn)
			}
		}
	}
}

func funcHasHotPathMarker(pkg *lint.Package, name string) bool {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), "//smartconf:hotpath") {
					return true
				}
			}
		}
	}
	return false
}

// TestAnalyzersOutsideScopedPackagesAreSilent pins the package scoping: the
// path-scoped analyzers must not fire on packages outside their configured
// lists, however many violations those packages contain.
func TestAnalyzersOutsideScopedPackagesAreSilent(t *testing.T) {
	defer swap(&lint.DeterminismPackages, []string{"lint.test/nonexistent"})()
	defer swap(&lint.FloatCmpPackages, []string{"lint.test/nonexistent"})()
	defer swap(&lint.SeedFlowPackages, []string{"lint.test/nonexistent"})()
	for _, tc := range []struct {
		a    *lint.Analyzer
		path string
	}{
		{lint.DeterminismAnalyzer, "lint.test/determinism/sim"},
		{lint.FloatCmpAnalyzer, "lint.test/floatcmp"},
		{lint.SeedFlowAnalyzer, "lint.test/seedflow"},
	} {
		fset := token.NewFileSet()
		pkg, err := newTestImporter(fset).load(tc.path)
		if err != nil {
			t.Fatalf("loading %s: %v", tc.path, err)
		}
		diags, err := lint.Check(pkg, []*lint.Analyzer{tc.a})
		if err != nil {
			t.Fatalf("checking %s: %v", tc.path, err)
		}
		if len(diags) != 0 {
			t.Errorf("%s on out-of-scope %s: got %d diagnostics, want 0 (first: %s)",
				tc.a.Name, tc.path, len(diags), diags[0])
		}
	}
}
