package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotPathMarker roots the hotalloc reachability walk. Placed in a function's
// doc comment (directive style, no space after //), it declares the function
// a request-path entry point whose whole same-package call graph must not
// allocate in steady state — the static complement of the whole-run
// AllocsPerRun gates in internal/benchgate.
const hotPathMarker = "//smartconf:hotpath"

// HotAllocAnalyzer is an interprocedural allocation analyzer: starting from
// every function annotated `//smartconf:hotpath`, it walks same-package
// static calls and flags the allocation shapes that broke the zero-alloc
// request paths before PR 7 pooled them:
//
//   - function literals capturing outer variables (one closure per call);
//   - method values evaluated outside call position (each evaluation binds
//     the receiver — bind once into a struct field at construction);
//   - make/new, &composite, slice and map literals, string concatenation
//     and string<->[]byte conversions;
//   - boxing a non-pointer concrete value into an interface parameter;
//   - any fmt call (variadic boxing plus formatting buffers);
//   - append to a slice born nil in the same function (growth cannot
//     amortize against a buffer owned by the struct).
//
// Known false-negative edges (deliberate, documented in DESIGN.md §5c):
// cross-package calls are not followed (the callee package is analyzed
// against its own roots), dynamic calls through stored func fields are not
// followed (annotate the handler itself), and interface boxing is only
// checked at call arguments, not at assignments or returns.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "forbids allocation in code reachable from //smartconf:hotpath roots: " +
		"capturing closures, per-call method values, make/new/composite literals, " +
		"interface boxing, fmt calls, and appends to function-local slices",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if hasHotPathMarker(fd) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first over same-package static calls and function-value
	// references, remembering which root first reached each function so the
	// diagnostic can name the hot path.
	rootOf := map[*types.Func]string{}
	var queue []*types.Func
	for _, r := range roots {
		if _, seen := rootOf[r]; seen {
			continue
		}
		rootOf[r] = r.Name()
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := rootOf[callee]; seen {
				return true
			}
			if _, hasDecl := decls[callee]; !hasDecl {
				return true
			}
			rootOf[callee] = rootOf[fn]
			queue = append(queue, callee)
			return true
		})
	}

	for fn, root := range rootOf {
		checkHotFunc(pass, decls[fn], root)
	}
	return nil
}

// hasHotPathMarker reports whether the declaration's doc comment carries the
// //smartconf:hotpath directive.
func hasHotPathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathMarker) {
			return true
		}
	}
	return false
}

// checkHotFunc scans one reachable function body for allocation shapes.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, root string) {
	// Selector nodes in call position are calls, not method values.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[call.Fun] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkClosureCapture(pass, fd, n, root)
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, root)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&composite literal allocates per evaluation (hot path via %s); reuse a slot owned by the struct", root)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(),
						"slice literal allocates per evaluation (hot path via %s); preallocate at construction", root)
				case *types.Map:
					pass.Reportf(n.Pos(),
						"map literal allocates per evaluation (hot path via %s); preallocate at construction", root)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.Info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(n.Pos(),
						"string concatenation allocates (hot path via %s); keep hot-path data numeric", root)
				}
			}
		case *ast.SelectorExpr:
			if callFuns[n] {
				return true
			}
			if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(n.Pos(),
					"method value %s allocates per evaluation (hot path via %s); bind it once into a struct field at construction", n.Sel.Name, root)
			}
		}
		return true
	})
}

// checkClosureCapture flags a function literal that captures variables from
// its enclosing function — each evaluation allocates the closure (and often
// moves the captured variables to the heap).
func checkClosureCapture(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, root string) {
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Captured = declared inside the enclosing function but outside the
		// literal. Package-level variables are shared, not captured.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	pass.Reportf(lit.Pos(),
		"func literal captures %s: allocates a closure per evaluation (hot path via %s); bind a method value once and schedule with AtArg/AfterArg", strings.Join(captured, ", "), root)
}

// checkHotCall handles the call-shaped findings: conversions, fmt calls,
// builtin make/new/append, and interface boxing at argument positions.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, root string) {
	// Type conversions: string<->[]byte copies; everything else is free.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, exprType(pass, call.Args[0])
			if (isString(to) && !isString(from)) || (!isString(to) && isString(from)) {
				if atv, ok := pass.Info.Types[call.Args[0]]; !ok || atv.Value == nil {
					pass.Reportf(call.Pos(),
						"string conversion copies its operand (hot path via %s)", root)
				}
			}
		}
		return
	}

	if path, name := pkgFunc(pass.Info, call); path == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s allocates (variadic boxing + formatting) on a hot path (via %s); record raw values and format off the hot path", name, root)
		return
	}

	if obj := calleeObj(pass.Info, call); obj != nil && obj.Pkg() == nil {
		switch obj.Name() {
		case "make":
			pass.Reportf(call.Pos(),
				"make allocates per evaluation (hot path via %s); preallocate at construction or refill from a free list", root)
			return
		case "new":
			pass.Reportf(call.Pos(),
				"new allocates per evaluation (hot path via %s); reuse a slot owned by the struct", root)
			return
		case "append":
			checkHotAppend(pass, fd, call, root)
			return
		case "panic":
			return // terminal path: allocation at panic time is irrelevant
		}
	}

	checkInterfaceBoxing(pass, call, root)
}

// checkHotAppend flags append whose destination is a slice born nil (or as
// an empty literal) in the enclosing function: every growth allocates and
// nothing amortizes it. Appends to struct fields, pooled buffers obtained
// from calls or indexing, and reslices (buf[:0]) are the sanctioned reuse
// patterns and stay silent.
func checkHotAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, root string) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj, _ := pass.Info.Uses[id].(*types.Var)
	if obj == nil || obj.Pos() < fd.Pos() || obj.Pos() >= fd.End() {
		return // not function-local
	}
	if !bornNil(pass, fd, obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s grows a slice born nil in this function (hot path via %s); reuse a buffer owned by the struct", obj.Name(), root)
}

// bornNil reports whether the local slice variable has no initializing
// expression (var s []T) or is initialized from an empty literal. A variable
// initialized from a call, field, or index expression is assumed pooled.
func bornNil(pass *Pass, fd *ast.FuncDecl, obj *types.Var) bool {
	verdict := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.Defs[name] != obj {
					continue
				}
				if len(n.Values) == 0 {
					verdict = true
				} else if i < len(n.Values) {
					verdict = emptySliceExpr(n.Values[i])
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Defs[lid] != obj || i >= len(n.Rhs) {
					continue
				}
				verdict = emptySliceExpr(n.Rhs[i])
			}
		}
		return true
	})
	return verdict
}

func emptySliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// checkInterfaceBoxing flags non-pointer, non-constant concrete values
// passed to interface parameters: the conversion heap-allocates the boxed
// copy. Pointer-shaped values (pointers, maps, channels, funcs) convert
// without allocating, and constants box to static data.
func checkInterfaceBoxing(pass *Pass, call *ast.CallExpr, root string) {
	ftv, ok := pass.Info.Types[call.Fun]
	if !ok || ftv.Type == nil {
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // a spread slice is passed as-is
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.Value != nil || atv.IsNil() || atv.Type == nil {
			continue
		}
		if !boxingAllocates(atv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"passing %s to an interface parameter boxes it on the heap (hot path via %s); keep hot-path signatures concrete", atv.Type, root)
	}
}

// boxingAllocates reports whether converting a value of type t to an
// interface requires a heap allocation.
func boxingAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
