package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Configuration of the cachekey analyzer. Tests override these to point at
// testdata packages.
var (
	// CachedRunPaths are the packages whose code must route every
	// simulation through the run cache and key it fully. The fleet layer in
	// internal/cluster is reachable from cached fleet scenarios, so a direct
	// engine.Memo call or an unscoped engine.Key literal there would poison
	// the same cache the experiments adapters guard.
	CachedRunPaths = []string{
		"smartconf/internal/experiments",
		"smartconf/internal/cluster",
	}
	// EnginePathSuffix identifies the run-engine package among the imports.
	EnginePathSuffix = "internal/experiments/engine"
	// AdapterFiles are the files (basenames) allowed to talk to the engine
	// cache directly: the experiments-side adapter layer.
	AdapterFiles = map[string]bool{"runcache.go": true}
	// AdapterFuncs are the memoizing entry points of the adapter layer; a
	// scenario-run call is legitimate when it happens inside a function
	// literal handed to one of these (that closure IS the cached compute).
	AdapterFuncs = map[string]bool{
		"runCached": true, "memoResult": true, "memoProfile": true,
		"memoKeyed": true, "profileSweep": true,
	}
	// DiskCachePaths are the serialization layers whose output bytes carry a
	// byte-identity guarantee: the persistent run cache (cache files must be
	// pure functions of the (stamp, key, value) triple) and the decision-log
	// codec (zero-perturbation replay must reproduce an envelope byte for
	// byte). Both rule out encoding/gob (its map encoding is randomized per
	// process) and wall-clock reads.
	DiskCachePaths = []string{
		"smartconf/internal/experiments/engine/diskcache",
		"smartconf/internal/declog",
	}
)

// CacheKeyAnalyzer enforces run-cache discipline in the experiments package:
// every simulation goes through the memoized adapters in runcache.go, so no
// driver re-simulates a (scenario, policy, seed, schedule) tuple the cache
// already holds, and no cache key omits its scenario component.
var CacheKeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc: "experiment drivers must reach simulation through the runcache.go " +
		"adapters; direct Scenario.Run / engine.Memo calls bypass or mis-key the run cache; " +
		"the persistent cache layer must encode deterministically (no gob, no wall-clock)",
	Run: runCacheKey,
}

func runCacheKey(pass *Pass) error {
	if pathMatchesPrefix(pass.Pkg.Path(), DiskCachePaths) {
		return runDiskCacheRules(pass)
	}
	if !pathMatchesPrefix(pass.Pkg.Path(), CachedRunPaths) {
		return nil
	}
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		inAdapter := AdapterFiles[name]
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCacheKeyCall(pass, n, parents, inAdapter)
			case *ast.CompositeLit:
				checkEngineKeyLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// runDiskCacheRules checks the byte-deterministic serialization layers:
// cache files and decision-log envelopes must be byte-identical across
// processes and worker counts, which rules out gob (randomized map-entry
// order) and any wall-clock content. time.Now in a key or envelope would
// make identical runs produce different bytes and silently defeat the
// warm-rebuild and zero-perturbation-replay identity guarantees.
func runDiskCacheRules(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := pkgFunc(pass.Info, call)
			switch path {
			case "encoding/gob":
				pass.Reportf(call.Pos(),
					"encoding/gob in a byte-deterministic serialization layer: gob output is not byte-deterministic (map encoding order is randomized); encode with encoding/json over fixed-order structs")
			case "time":
				if name == "Now" || name == "Since" || name == "Until" {
					pass.Reportf(call.Pos(),
						"wall-clock time.%s in a byte-deterministic serialization layer; output bytes must be pure functions of their inputs", name)
				}
			}
			return true
		})
	}
	return nil
}

func checkCacheKeyCall(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, inAdapter bool) {
	if inAdapter {
		return
	}
	// Direct engine.Memo outside the adapter layer: the key shape is then
	// this one call site's private convention, invisible to the cache audit.
	if path, name := pkgFunc(pass.Info, call); name == "Memo" && hasSuffixPath(path, EnginePathSuffix) {
		pass.Reportf(call.Pos(),
			"direct engine.Memo call outside runcache.go; route through the memoKeyed/memoResult adapters so every key carries scenario, policy, seed and schedule")
		return
	}
	// sc.Run(p): calling a Scenario's run function directly skips the cache.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if selection, ok := pass.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			field := selection.Obj()
			if field.Name() == "Run" && ownerIsScenario(selection.Recv(), pass.Pkg) {
				if !insideAdapterClosure(pass, call, parents) {
					pass.Reportf(call.Pos(),
						"direct Scenario.Run call bypasses the run cache; use runCached(sc, p)")
				}
				return
			}
		}
	}
	// RunXYZ(p): a package-level scenario entry point (func(Policy) Result)
	// invoked outside a memoized closure re-simulates on every call.
	if obj := calleeObj(pass.Info, call); obj != nil && obj.Pkg() == pass.Pkg {
		if fn, ok := obj.(*types.Func); ok && isScenarioRunSig(fn, pass.Pkg) {
			if !insideAdapterClosure(pass, call, parents) {
				pass.Reportf(call.Pos(),
					"direct call to scenario entry point %s bypasses the run cache; use runCached or wrap it in a memoized adapter", fn.Name())
			}
		}
	}
}

// checkEngineKeyLit requires every engine.Key composite literal to populate
// its Scenario field: a key without a scenario aliases unrelated runs.
func checkEngineKeyLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Key" || named.Obj().Pkg() == nil ||
		!hasSuffixPath(named.Obj().Pkg().Path(), EnginePathSuffix) {
		return
	}
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			return // positional literal fills every field, Scenario included
		}
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Scenario" {
				if lit, ok := kv.Value.(*ast.BasicLit); ok && lit.Value == `""` {
					break
				}
				return
			}
		}
	}
	pass.Reportf(lit.Pos(), "engine.Key literal without a Scenario component; keys must identify the scenario they cache")
}

// ownerIsScenario reports whether recv is the experiments Scenario struct.
func ownerIsScenario(recv types.Type, pkg *types.Package) bool {
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Scenario" && named.Obj().Pkg() == pkg
}

// isScenarioRunSig matches func(Policy) Result with both types defined in
// the experiments package — the shape of every scenario entry point.
func isScenarioRunSig(fn *types.Func, pkg *types.Package) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isNamedIn(sig.Params().At(0).Type(), "Policy", pkg) &&
		isNamedIn(sig.Results().At(0).Type(), "Result", pkg)
}

func isNamedIn(t types.Type, name string, pkg *types.Package) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name && named.Obj().Pkg() == pkg
}

// insideAdapterClosure reports whether n sits inside a function literal that
// is an argument to one of the memoizing adapter functions — i.e. the call
// is the cached computation itself, not a cache bypass.
func insideAdapterClosure(pass *Pass, n ast.Node, parents map[ast.Node]ast.Node) bool {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		lit, ok := cur.(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := parents[lit].(*ast.CallExpr)
		if !ok {
			continue
		}
		if obj := calleeObj(pass.Info, call); obj != nil && obj.Pkg() == pass.Pkg && AdapterFuncs[obj.Name()] {
			return true
		}
	}
	return false
}

// buildParents maps every node in file to its parent, for upward walks.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func hasSuffixPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
