package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates patterns with the go tool, then parses and type-checks
// each matched package. Imports (standard library and intra-module alike)
// resolve through the source importer, so the loader works offline with no
// dependency on golang.org/x/tools; dir is the working directory for the go
// tool ("" means the current one, which must be inside the module).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	// One shared FileSet and one shared source importer: the importer caches
	// every dependency package it type-checks, so the standard library is
	// processed once for the whole run.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := typecheck(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from an explicit file list
// with the given importer — the entry point for the `go vet -vettool`
// unitchecker mode, where the go command supplies export data, and for the
// analyzer tests, which load testdata packages directly.
func CheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	return typecheck(fset, imp, path, dir, files)
}

// typecheck parses the named files and type-checks them as one package.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
