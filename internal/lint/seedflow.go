package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SeedFlowPackages lists the import-path prefixes whose randomness must be
// scenario-seeded — the same simulation-reachable surface the determinism
// analyzer scopes to. Tests override this to point at testdata.
var SeedFlowPackages = []string{
	"smartconf/internal/sim",
	"smartconf/internal/rpcserver",
	"smartconf/internal/kvstore",
	"smartconf/internal/dfs",
	"smartconf/internal/mapred",
	"smartconf/internal/memsim",
	"smartconf/internal/disksim",
	"smartconf/internal/llmserve",
	"smartconf/internal/workload",
	"smartconf/internal/cluster",
	"smartconf/internal/experiments",
	"smartconf/internal/chaos",
	"smartconf/internal/proptest",
	"smartconf/internal/sysfile",
	"smartconf/internal/study",
	"smartconf/cmd",
}

// SeedFlowAnalyzer is the positive half of the randomness contract: where
// the determinism analyzer bans the global math/rand source, seedflow proves
// the local sources are plumbed correctly. Every rand.NewSource seed
// expression in a simulation-reachable package must derive from a
// scenario/plan seed — a parameter, field, or variable whose name contains
// "seed" — or be a non-zero named/literal constant (a fixed scenario seed).
//
// Flagged shapes:
//
//   - a constant-zero seed: indistinguishable from an unset Seed field, so a
//     forgotten plumbing line looks exactly like intent;
//   - a seed derived from a function call (time.Now().UnixNano() and
//     friends): not reproducible from the scenario description;
//   - a seed derived from a package-level variable: shared mutable state,
//     not a per-run plan;
//   - a non-constant seed expression none of whose parts is seed-named: the
//     provenance cannot be audited.
//
// Mixing is fine: seed+offset, seed+int64(i), seed^0x9e37 all pass, because
// at least one operand carries the seed and the rest are derivation.
var SeedFlowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc: "rand.NewSource seeds in simulation-reachable packages must derive " +
		"from a seed parameter/field or a non-zero constant (zero seeds, call " +
		"results, and package-level variables are findings)",
	Run: runSeedFlow,
}

func runSeedFlow(pass *Pass) error {
	if !pathMatchesPrefix(pass.Pkg.Path(), SeedFlowPackages) {
		return nil
	}
	for _, file := range pass.Files {
		var fd *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fd = n
			case *ast.CallExpr:
				if path, name := pkgFunc(pass.Info, n); (path == "math/rand" || path == "math/rand/v2") &&
					(name == "NewSource" || name == "NewPCG") {
					for _, arg := range n.Args {
						checkSeedExpr(pass, fd, n, arg)
					}
				}
			}
			return true
		})
	}
	return nil
}

// seedTaint is the classification of one seed expression.
type seedTaint struct {
	seedNamed bool   // at least one leaf is a seed-named identifier
	forbidden string // non-empty: why the expression cannot carry a seed
}

func checkSeedExpr(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, e ast.Expr) {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		if constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0)) {
			pass.Reportf(call.Pos(),
				"rand source seeded with constant zero — indistinguishable from an unset Seed field; thread the scenario/plan seed or use a named non-zero constant")
		}
		return // non-zero constant: a fixed scenario seed, auditable as-is
	}
	var taint seedTaint
	seedWalk(pass, fd, e, 0, &taint)
	if taint.forbidden != "" {
		pass.Reportf(call.Pos(),
			"rand source seed derives from %s; seeds must be explicit scenario/plan values", taint.forbidden)
		return
	}
	if !taint.seedNamed {
		pass.Reportf(call.Pos(),
			"rand source seed does not derive from a seed parameter, field, or constant; plumb the scenario/plan seed through")
	}
}

// seedWalk classifies the leaves of a seed expression. Conversions, unary
// and binary arithmetic are transparent; identifiers trace one local
// definition deep.
func seedWalk(pass *Pass, fd *ast.FuncDecl, e ast.Expr, depth int, taint *seedTaint) {
	if depth > 6 || taint.forbidden != "" {
		return
	}
	// A seed-named leaf counts even when it is a named constant (a fixed
	// scenario seed), so names are checked before anything else; constant
	// leaves that are NOT seed-named fall out as neutral derivation below.
	switch l := e.(type) {
	case *ast.Ident:
		if seedName(l.Name) {
			taint.seedNamed = true
			return
		}
	case *ast.SelectorExpr:
		if seedName(l.Sel.Name) {
			taint.seedNamed = true
			return
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		seedWalk(pass, fd, e.X, depth, taint)
	case *ast.UnaryExpr:
		seedWalk(pass, fd, e.X, depth, taint)
	case *ast.BinaryExpr:
		seedWalk(pass, fd, e.X, depth, taint)
		seedWalk(pass, fd, e.Y, depth, taint)
	case *ast.CallExpr:
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			seedWalk(pass, fd, e.Args[0], depth, taint) // conversion
			return
		}
		taint.forbidden = "a function call (" + callName(pass, e) + ")"
	case *ast.Ident:
		seedWalkIdent(pass, fd, e, depth, taint)
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && !obj.IsField() && isPackageLevel(obj) {
			taint.forbidden = "package-level variable " + obj.Name()
		}
	}
}

func seedWalkIdent(pass *Pass, fd *ast.FuncDecl, id *ast.Ident, depth int, taint *seedTaint) {
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if isPackageLevel(obj) {
		taint.forbidden = "package-level variable " + obj.Name()
		return
	}
	if fd == nil {
		return
	}
	if init := localInit(pass, fd, obj); init != nil {
		seedWalk(pass, fd, init, depth+1, taint)
	}
}

func seedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

func isPackageLevel(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func callName(pass *Pass, call *ast.CallExpr) string {
	if path, name := pkgFunc(pass.Info, call); path != "" {
		if i := strings.LastIndex(path, "/"); i >= 0 {
			path = path[i+1:]
		}
		return path + "." + name
	}
	if obj := calleeObj(pass.Info, call); obj != nil {
		return obj.Name()
	}
	return "unknown"
}
