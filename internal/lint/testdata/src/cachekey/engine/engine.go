// Package engine is a miniature stand-in for the real run-cache engine:
// just enough surface for the cachekey-analyzer testdata to typecheck.
package engine

// Key mirrors the real cache key: scenario, policy, seed, schedule.
type Key struct {
	Scenario string
	Policy   string
	Seed     int64
	Schedule string
}

// Memo mirrors the real memoizing entry point.
func Memo[T any](k Key, compute func() T) T {
	return compute()
}
