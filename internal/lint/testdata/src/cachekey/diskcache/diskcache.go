// Package diskcache mirrors the persistent run-cache layer for the cachekey
// analyzer's disk rules: cache bytes must be deterministic (no encoding/gob)
// and carry no wall-clock content.
package diskcache

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"time"
)

type key struct {
	Scenario string
	Seed     int64
}

type envelope struct {
	Key     key
	Written time.Duration
}

// encodeGob is the forbidden path: gob randomizes map-entry order, so the
// same value encodes to different bytes run to run.
func encodeGob(k key) []byte {
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(k) // want "encoding/gob in a byte-deterministic serialization layer"
	return buf.Bytes()
}

func registerTypes() {
	gob.Register(key{}) // want "encoding/gob in a byte-deterministic serialization layer"
}

// encodeJSON is the sanctioned encoder: fixed-order struct fields make the
// bytes a pure function of the value.
func encodeJSON(k key) []byte {
	b, _ := json.Marshal(k)
	return b
}

func stampEnvelope(k key) envelope {
	e := envelope{Key: k}
	e.Written = time.Since(time.Time{}) // want "wall-clock time.Since in a byte-deterministic serialization layer"
	return e
}

func freshness() bool {
	return time.Now().IsZero() // want "wall-clock time.Now in a byte-deterministic serialization layer"
}

// debugTimestamp is operator-facing logging, not cache bytes; the escape
// hatch records why the wall clock is acceptable here.
func debugTimestamp() time.Time {
	//smartconf:allow cachekey -- log line for the operator, never written into cache files
	return time.Now()
}
