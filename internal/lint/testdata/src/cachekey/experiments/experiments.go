// Package experiments is cachekey-analyzer golden testdata, shaped like the
// real experiments package: Scenario/Policy/Result types, a scenario entry
// point, a runcache.go adapter file, and drivers that do (and do not) honor
// the run-cache discipline.
package experiments

type Policy struct{ Level int }

type Result struct{ Cost float64 }

type Scenario struct {
	ID  string
	Run func(Policy) Result
}

// RunHB3813 has the scenario entry-point shape func(Policy) Result, so
// calling it outside a memoized closure is a finding.
func RunHB3813(p Policy) Result {
	return Result{Cost: float64(p.Level)}
}
