package experiments

import "lint.test/cachekey/engine"

// runCached and memoResult are the adapter layer: the only code allowed to
// talk to engine.Memo directly, and the one place keys are assembled — so
// this whole file is exempt from the cachekey analyzer by name.
func runCached(sc Scenario, p Policy) Result {
	return engine.Memo(engine.Key{Scenario: sc.ID, Policy: "p", Seed: 0, Schedule: "default"}, func() Result {
		return sc.Run(p)
	})
}

func memoResult(scenario, policy, schedule string, seed int64, run func() Result) Result {
	return engine.Memo(engine.Key{Scenario: scenario, Policy: policy, Seed: seed, Schedule: schedule}, run)
}
