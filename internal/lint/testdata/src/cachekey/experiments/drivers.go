package experiments

import "lint.test/cachekey/engine"

// GoodDriver routes through the adapter layer — the sanctioned shape.
func GoodDriver(sc Scenario, p Policy) Result {
	return runCached(sc, p)
}

// GoodMemo runs a scenario entry point inside a memoized adapter closure:
// the closure IS the cached computation, so the call is legitimate.
func GoodMemo(p Policy) Result {
	return memoResult("HB3813", "fixed", "sweep", 0, func() Result { return RunHB3813(p) })
}

func BadDirectRun(sc Scenario, p Policy) Result {
	return sc.Run(p) // want "direct Scenario.Run call"
}

func BadEntryPoint(sc Scenario) Result {
	return RunHB3813(Policy{Level: 1}) // want "direct call to scenario entry point RunHB3813"
}

func BadMemo(p Policy) Result {
	return engine.Memo(engine.Key{Scenario: "HB3813"}, func() Result { return RunHB3813(p) }) // want "direct engine.Memo call outside runcache.go" "direct call to scenario entry point RunHB3813"
}

func BadKey() engine.Key {
	return engine.Key{Policy: "fixed", Seed: 1} // want "engine.Key literal without a Scenario component"
}

// SuppressedDriver proves the escape hatch for deliberate cache bypasses.
func SuppressedDriver(sc Scenario, p Policy) Result {
	//smartconf:allow cachekey -- one-off diagnostic run, deliberately uncached
	return sc.Run(p)
}
