// Package hotalloc exercises the hotalloc analyzer: every allocation shape
// in code reachable from a //smartconf:hotpath root is a finding, allocation
// in unannotated unreachable code is out of scope, and a reasoned
// //smartconf:allow comment suppresses an individual site (a reason-less one
// is inert).
package hotalloc

import "fmt"

type point struct {
	x int
}

type server struct {
	buf   []int
	total int
}

func (s *server) handler() {}

func run(fn func()) { fn() }

func sink(v interface{}) { _ = v }

// Offer is the fixture's request-path root: every helper it calls is
// reachable and checked, with findings attributed "via Offer".
//
//smartconf:hotpath
func (s *server) Offer(n int) {
	if n < 0 {
		panic("negative request") // silent: terminal path
	}
	run(func() { s.total += n }) // want "func literal captures s, n"
	s.record(n)
	s.grow(n)
	s.report(n)
	s.label("k", "v")
	s.box(n)
	s.collect(n)
	s.bind()
	s.refill(n)
	s.inert(n)
}

// record is not annotated but reachable from Offer: findings here attribute
// the root interprocedurally.
func (s *server) record(n int) {
	p := &point{x: n} // want "&composite literal allocates per evaluation (hot path via Offer)"
	s.total += p.x
	xs := []int{n} // want "slice literal allocates per evaluation (hot path via Offer)"
	s.total += xs[0]
	m := map[int]int{n: n} // want "map literal allocates per evaluation (hot path via Offer)"
	s.total += m[n]
}

func (s *server) grow(n int) {
	b := make([]int, n) // want "make allocates per evaluation (hot path via Offer)"
	q := new(point)     // want "new allocates per evaluation (hot path via Offer)"
	s.total += len(b) + q.x
}

func (s *server) report(n int) {
	fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates"
}

func (s *server) label(name, id string) {
	key := name + id // want "string concatenation allocates"
	b := []byte(key) // want "string conversion copies its operand (hot path via Offer)"
	s.total += len(b)
}

func (s *server) box(n int) {
	sink(n) // want "passing int to an interface parameter boxes it on the heap"
}

func (s *server) collect(n int) {
	var buf []int
	buf = append(buf, n) // want "append to buf grows a slice born nil in this function (hot path via Offer)"
	pooled := s.buf[:0]
	pooled = append(pooled, n) // silent: reslice of a struct-owned buffer
	s.total += len(buf) + len(pooled)
}

func (s *server) bind() {
	h := s.handler // want "method value handler allocates per evaluation"
	h()
}

func (s *server) refill(n int) {
	//smartconf:allow hotalloc -- fixture: cold-start refill, proves the reasoned suppression hatch
	b := make([]int, n)
	s.total += len(b)
}

// inert carries a suppression without the mandatory ` -- <reason>` tail: it
// does not suppress, so the finding still fires.
func (s *server) inert(n int) {
	//smartconf:allow hotalloc
	b := make([]int, n) // want "make allocates per evaluation (hot path via Offer)"
	s.total += len(b)
}

// coldPath is neither annotated nor reachable from a root: allocation here
// is out of the analyzer's scope and must stay silent.
func coldPath(n int) []int {
	buf := make([]int, n)
	buf = append(buf, n)
	return buf
}
