// Package floatcmp is floatcmp-analyzer golden testdata.
package floatcmp

func Converged(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func Changed(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

func NonZeroConst(x float64) bool {
	return x == 0.5 // want "floating-point == comparison"
}

// ZeroGuard is clean: comparison against an exact constant zero is the one
// float value that is exactly representable and semantically special
// (division guards, uninitialized sentinels).
func ZeroGuard(x float64) bool {
	return x == 0
}

// IntsAreFine is clean: the rule only concerns floating-point operands.
func IntsAreFine(a, b int) bool { return a == b }

// Suppressed proves the escape hatch for deliberate bitwise comparison.
func Suppressed(a, b float64) bool {
	//smartconf:allow floatcmp -- bit-identical comparison is the point of this check
	return a == b
}

// MalformedSuppression lacks the mandatory `-- reason` tail, so the allow
// comment is inert and the finding still fires.
func MalformedSuppression(a, b float64) bool {
	//smartconf:allow floatcmp
	return a == b // want "floating-point == comparison"
}
