// Package sim is determinism-analyzer golden testdata: each `want` comment
// pins one diagnostic the analyzer must produce, and the unsuffixed
// functions pin shapes it must NOT flag.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

func Wall() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

func Elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "wall-clock time.Since"
}

func GlobalRand() int {
	return rand.Intn(10) // want "global rand.Intn"
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

// SeededRand is the sanctioned pattern: the constructors rand.New and
// rand.NewSource must not be flagged — they are how seeds flow in.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func EmitUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over a map"
	}
	return out
}

// EmitSorted is clean: the appended slice is sorted after the loop, which
// erases the iteration order.
func EmitSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over a map"
	}
}

func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation over map iteration"
	}
	return sum
}

// CountInts is clean: integer accumulation is associative, so iteration
// order cannot change the result.
func CountInts(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// PooledServer pins the sync.Pool ban: GC-timed reuse makes object identity
// and retained capacity diverge between identical runs.
type PooledServer struct {
	batches sync.Pool // want "sync.Pool in simulation-reachable code"
}

func LocalPool() interface{} {
	var p sync.Pool // want "sync.Pool in simulation-reachable code"
	p.New = func() interface{} { return new(int) }
	return p.Get()
}

// FreeListServer is the sanctioned pattern: a free-list slice owned by the
// struct, reuse order fully determined by the code that pushes and pops.
type FreeListServer struct {
	free [][]int
}

func (s *FreeListServer) Get() []int {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		return b
	}
	return make([]int, 0, 16)
}

func (s *FreeListServer) Put(b []int) {
	s.free = append(s.free, b[:0])
}

// AllowedWall proves the suppression escape hatch: the allow comment names
// the analyzer and records a reason, so the finding is silenced.
func AllowedWall() int64 {
	//smartconf:allow determinism -- timestamping a log file name is not simulation-visible
	return time.Now().UnixNano()
}
