// Package guardedby is guardedby-analyzer golden testdata.
package guardedby

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int // guardedby: mu
}

// Good holds the mutex for the whole method via defer.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Bad() int {
	return c.n // want "field n is annotated"
}

// AfterUnlock releases explicitly; the access after Unlock is a finding.
func (c *Counter) AfterUnlock() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	c.n++ // want "field n is annotated"
	return v
}

// bumpLocked follows the *Locked convention: it assumes the caller holds mu.
func (c *Counter) bumpLocked() { c.n++ }

func (c *Counter) CallsLockedWithout() {
	c.bumpLocked() // want "call to bumpLocked without holding mu"
}

// CallsLockedWith is the legitimate lock-then-delegate shape.
func (c *Counter) CallsLockedWith() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

// ClosureLosesLock: a function literal outlives the critical section that
// created it, so it does not inherit the lock state.
func (c *Counter) ClosureLosesLock() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int { return c.n } // want "field n is annotated"
}

// Suppressed proves the escape hatch for deliberately racy reads.
func (c *Counter) Suppressed() int {
	//smartconf:allow guardedby -- approximate snapshot read, torn values acceptable
	return c.n
}

// RWGuard exercises the read-lock operations on an RWMutex.
type RWGuard struct {
	mu sync.RWMutex
	v  float64 // guardedby: mu
}

func (g *RWGuard) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *RWGuard) BadRead() float64 {
	return g.v // want "field v is annotated"
}

// Unguarded fields of an annotated struct stay unchecked.
type Mixed struct {
	mu   sync.Mutex
	hot  int // guardedby: mu
	cold int
}

func (m *Mixed) ColdIsFree() int { return m.cold }
