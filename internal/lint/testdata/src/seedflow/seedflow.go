// Package seedflow exercises the seedflow analyzer: rand.NewSource seeds
// must derive from a seed parameter/field or a non-zero constant. The test
// harness points SeedFlowPackages at this package; the out-of-scope test
// loads it with the list pointing elsewhere and expects silence.
package seedflow

import "math/rand"

const defaultSeed = 42

type scenario struct {
	Seed int64
}

func good(s scenario) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed)) // silent: seed-named field
}

func derived(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i))) // silent: seed + derivation
}

func fixed() *rand.Rand {
	return rand.New(rand.NewSource(1234)) // silent: non-zero constant scenario seed
}

func named() *rand.Rand {
	return rand.New(rand.NewSource(defaultSeed + 7)) // silent: seed-named constant
}

func viaLocal(s scenario) *rand.Rand {
	base := s.Seed + 1
	return rand.New(rand.NewSource(base)) // silent: local traced to the seed field
}

func zero() *rand.Rand {
	return rand.New(rand.NewSource(0)) // want "rand source seeded with constant zero"
}

func fromCall() *rand.Rand {
	return rand.New(rand.NewSource(nowNanos())) // want "derives from a function call"
}

func nowNanos() int64 { return 0 }

var globalCounter int64

func fromGlobal() *rand.Rand {
	return rand.New(rand.NewSource(globalCounter)) // want "derives from package-level variable globalCounter"
}

func unaudited(x int64) *rand.Rand {
	return rand.New(rand.NewSource(x * 3)) // want "does not derive from a seed parameter, field, or constant"
}

func allowed() *rand.Rand {
	//smartconf:allow seedflow -- fixture: deliberately unauditable seed, proves the suppression hatch
	return rand.New(rand.NewSource(opaque()))
}

func opaque() int64 { return 7 }
