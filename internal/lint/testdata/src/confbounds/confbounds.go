// Package confbounds exercises the confbounds analyzer: rule A (bound-spec
// literals flowing into constructors must state finite non-zero Max bounds)
// and rule B (fields annotated `clampedby: fn` change only through fn).
// The test harness points BoundSpecTypes at Spec and ConfConstructors at New.
package confbounds

import "math"

// Spec is the fixture's bound-carrying option struct.
type Spec struct {
	Name     string
	Min, Max float64
}

// Conf is the fixture's live configuration.
type Conf struct {
	v float64
}

// New is the fixture's constructor: Spec literals flowing here are checked.
func New(s Spec) *Conf { return &Conf{} }

func ok() *Conf {
	return New(Spec{Name: "ok", Min: 1, Max: 100})
}

func positional() *Conf {
	return New(Spec{"p", 1, 50})
}

func missingMax() *Conf {
	return New(Spec{Name: "m"}) // want "constructed without a Max bound"
}

func zeroMax() *Conf {
	return New(Spec{Name: "z", Max: 0}) // want "Max bound of constant zero means unbounded"
}

func infMax() *Conf {
	return New(Spec{Name: "i", Max: math.Inf(1)}) // want "Max bound built from math.Inf is not a finite bound"
}

func nanMin() *Conf {
	return New(Spec{Name: "n", Min: math.NaN(), Max: 10}) // want "Min bound built from math.NaN is not a finite bound"
}

func viaLocal() *Conf {
	s := Spec{Name: "local"} // want "constructed without a Max bound"
	return New(s)
}

// fromParsed passes a dynamically built Spec (parsed bindings, profile-derived
// caps): nothing to check statically, so it stays silent.
func fromParsed(s Spec) *Conf {
	return New(s)
}

func allowedUnbounded() *Conf {
	//smartconf:allow confbounds -- fixture: intentionally unbounded knob, proves the suppression hatch
	return New(Spec{Name: "u"})
}

// otherSpec has Min/Max fields but is not a registered bound-spec type, and
// other is not a registered constructor: out of scope, silent.
type otherSpec struct {
	Min, Max float64
}

func other(s otherSpec) {}

func useOther() {
	other(otherSpec{})
}

// knob's value may only change through clamp (rule B).
type knob struct {
	value float64 // clampedby: clamp
	limit float64
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func (k *knob) set(v float64) {
	k.value = clamp(v)
}

func (k *knob) raw(v float64) {
	k.value = v // want "write to field value does not flow through clamp"
}

func (k *knob) bump() {
	k.value++ // want "++ of field value bypasses clamp"
}

func (k *knob) add(v float64) {
	k.value += v // want "compound assignment to field value bypasses clamp"
}

func newKnob(v float64) *knob {
	return &knob{value: v} // want "field value initialized without flowing through clamp"
}

func zeroKnob() *knob {
	return &knob{limit: 10} // silent: value starts at its zero value; limit is unannotated
}

func clampedKnob(v float64) *knob {
	c := clamp(v)
	return &knob{value: c} // silent: the local traces to a clamp call
}

func (k *knob) setLimit(v float64) {
	k.limit = v // silent: limit carries no clampedby annotation
}
