package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmpPackages are the exact import paths whose floating-point math is
// held to the tolerance rule: the controller core, the statistics helpers,
// and the public API package. Tests override this to point at testdata.
var FloatCmpPackages = []string{
	"smartconf",
	"smartconf/internal/core",
	"smartconf/internal/stat",
}

// FloatCmpAnalyzer flags ==/!= between floating-point operands in controller
// and statistics math. Convergence and change-detection checks on computed
// floats must use a tolerance (e.g. math.Abs(a-b) <= eps): exact equality on
// the results of float arithmetic is representation-dependent and breaks the
// reproducibility story the moment the math is reordered.
//
// One shape is exempt: comparison against an exact constant zero. A zero
// guard before a division (`if sigma == 0`) tests for the one float value
// that is exactly representable and semantically special; replacing it with
// an epsilon would change behavior.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc: "forbids ==/!= on floating-point operands in controller/stat math; " +
		"use tolerances (exact-zero sentinel guards excepted)",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	applies := false
	for _, p := range FloatCmpPackages {
		if pass.Pkg.Path() == p {
			applies = true
			break
		}
	}
	if !applies {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(exprType(pass, bin.X)) && !isFloat(exprType(pass, bin.Y)) {
				return true
			}
			if isExactZero(pass, bin.X) || isExactZero(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) — exact equality only survives bit-identical arithmetic", bin.Op)
			return true
		})
	}
	return nil
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isExactZero reports whether e is a compile-time constant equal to zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
