package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GuardedByAnalyzer checks `// guardedby: mu` field annotations: a field so
// annotated may only be accessed through the receiver while the named mutex
// (a sibling field) is held in the enclosing method.
//
// The check is deliberately conservative and intra-procedural:
//
//   - state is tracked linearly through the method body: recv.mu.Lock() /
//     RLock() marks the mutex held, recv.mu.Unlock() / RUnlock() releases
//     it, and `defer recv.mu.Unlock()` holds it to the end of the method;
//   - methods whose name ends in "Locked" are assumed to run with every
//     annotated mutex of the receiver held (the callee side of the
//     lock-then-delegate convention), and *calling* a *Locked method
//     without holding the mutexes is itself a finding;
//   - function literals do not inherit the enclosing lock state (a closure
//     typically outlives the critical section that created it);
//   - plain functions (constructors building a not-yet-shared value) are
//     not checked.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// guardedby: mu` may only be accessed while " +
		"the named mutex is held in the enclosing method",
	Run: runGuardedBy,
}

// guardSpec records the annotations of one struct type.
type guardSpec struct {
	fields  map[string]string // field name → guarding mutex field name
	mutexes map[string]bool   // distinct mutex names, for *Locked methods
}

const guardedByMarker = "guardedby:"

func runGuardedBy(pass *Pass) error {
	specs := collectGuardSpecs(pass)
	if len(specs) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			checkGuardedMethod(pass, specs, fn)
		}
	}
	return nil
}

// collectGuardSpecs finds every struct field annotated `// guardedby: mu`,
// keyed by the struct's type name object.
func collectGuardSpecs(pass *Pass) map[*types.TypeName]*guardSpec {
	specs := map[*types.TypeName]*guardSpec{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				spec := specs[obj]
				if spec == nil {
					spec = &guardSpec{fields: map[string]string{}, mutexes: map[string]bool{}}
					specs[obj] = spec
				}
				for _, name := range field.Names {
					spec.fields[name.Name] = mu
				}
				spec.mutexes[mu] = true
			}
			return true
		})
	}
	return specs
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment ("" when unannotated). It shares markerAnnotation with confbounds,
// so `// guardedby: mu — clampedby: fn` serves both analyzers.
func guardAnnotation(field *ast.Field) string {
	return markerAnnotation(field, guardedByMarker)
}

// lockTracker is the per-method linear lock-state machine.
type lockTracker struct {
	pass      *Pass
	spec      *guardSpec
	recv      types.Object    // the receiver variable
	held      map[string]bool // mutex name → currently held
	heldToEnd map[string]bool // mutex name → held via defer until return
}

func checkGuardedMethod(pass *Pass, specs map[*types.TypeName]*guardSpec, fn *ast.FuncDecl) {
	def, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := def.Type().(*types.Signature)
	if sig.Recv() == nil {
		return
	}
	recvType := sig.Recv().Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return
	}
	spec := specs[named.Obj()]
	if spec == nil {
		return
	}
	var recvObj types.Object
	if len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvObj = pass.Info.Defs[fn.Recv.List[0].Names[0]]
	}
	if recvObj == nil {
		return // anonymous receiver cannot touch fields
	}
	t := &lockTracker{
		pass:      pass,
		spec:      spec,
		recv:      recvObj,
		held:      map[string]bool{},
		heldToEnd: map[string]bool{},
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		for mu := range spec.mutexes {
			t.held[mu] = true
			t.heldToEnd[mu] = true
		}
	}
	t.walkStmts(fn.Body.List)
}

func (t *lockTracker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		t.walkStmt(s)
	}
}

// walkStmt advances the state machine through one statement in source order,
// recursing into nested control flow. State changes inside a branch
// propagate past it — linear, not path-sensitive, which errs toward
// reporting only when no path evidence of locking exists at all.
func (t *lockTracker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && t.applyLockOp(call, false) {
			return
		}
		t.checkExpr(s.X)
	case *ast.DeferStmt:
		if t.applyLockOp(s.Call, true) {
			return
		}
		t.checkExpr(s.Call)
	case *ast.BlockStmt:
		t.walkStmts(s.List)
	case *ast.IfStmt:
		t.walkStmt(s.Init)
		t.checkExpr(s.Cond)
		t.walkStmts(s.Body.List)
		t.walkStmt(s.Else)
	case *ast.ForStmt:
		t.walkStmt(s.Init)
		t.checkExpr(s.Cond)
		t.walkStmts(s.Body.List)
		t.walkStmt(s.Post)
	case *ast.RangeStmt:
		t.checkExpr(s.Key)
		t.checkExpr(s.Value)
		t.checkExpr(s.X)
		t.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		t.walkStmt(s.Init)
		t.checkExpr(s.Tag)
		t.walkStmts(s.Body.List)
	case *ast.TypeSwitchStmt:
		t.walkStmt(s.Init)
		t.walkStmt(s.Assign)
		t.walkStmts(s.Body.List)
	case *ast.SelectStmt:
		t.walkStmts(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			t.checkExpr(e)
		}
		t.walkStmts(s.Body)
	case *ast.CommClause:
		t.walkStmt(s.Comm)
		t.walkStmts(s.Body)
	case *ast.LabeledStmt:
		t.walkStmt(s.Stmt)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			t.checkExpr(e)
		}
		for _, e := range s.Lhs {
			t.checkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			t.checkExpr(e)
		}
	case *ast.GoStmt:
		// The goroutine runs after the critical section: its body is
		// checked with no lock held (via the FuncLit rule in checkExpr).
		t.checkExpr(s.Call)
	case *ast.IncDecStmt:
		t.checkExpr(s.X)
	case *ast.SendStmt:
		t.checkExpr(s.Chan)
		t.checkExpr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						t.checkExpr(v)
					}
				}
			}
		}
	}
}

// applyLockOp recognizes recv.<mu>.{Lock,RLock,Unlock,RUnlock}() and updates
// the state; it reports whether the call was a lock operation.
func (t *lockTracker) applyLockOp(call *ast.CallExpr, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvIdent, ok := muSel.X.(*ast.Ident)
	if !ok || t.pass.Info.Uses[recvIdent] != t.recv {
		return false
	}
	mu := muSel.Sel.Name
	if !t.spec.mutexes[mu] {
		return false
	}
	switch op {
	case "Lock", "RLock":
		t.held[mu] = true
	case "Unlock", "RUnlock":
		if deferred {
			t.heldToEnd[mu] = true
		} else if !t.heldToEnd[mu] {
			t.held[mu] = false
		}
	}
	return true
}

// checkExpr scans an expression for guarded-field accesses and *Locked
// delegate calls under the current lock state. Function literals are
// re-entered with an empty state of their own.
func (t *lockTracker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &lockTracker{
				pass:      t.pass,
				spec:      t.spec,
				recv:      t.recv,
				held:      map[string]bool{},
				heldToEnd: map[string]bool{},
			}
			inner.walkStmts(n.Body.List)
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && t.pass.Info.Uses[id] == t.recv &&
					strings.HasSuffix(sel.Sel.Name, "Locked") && !t.allHeld() {
					t.pass.Reportf(n.Pos(),
						"call to %s without holding %s", sel.Sel.Name, t.mutexList())
				}
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || t.pass.Info.Uses[id] != t.recv {
				return true
			}
			if mu, guarded := t.spec.fields[n.Sel.Name]; guarded && !t.held[mu] {
				t.pass.Reportf(n.Pos(),
					"field %s is annotated `guardedby: %s` but accessed without holding %s.%s",
					n.Sel.Name, mu, id.Name, mu)
			}
		}
		return true
	})
}

func (t *lockTracker) allHeld() bool {
	for mu := range t.spec.mutexes {
		if !t.held[mu] {
			return false
		}
	}
	return true
}

func (t *lockTracker) mutexList() string {
	var names []string
	for mu := range t.spec.mutexes {
		if !t.held[mu] {
			names = append(names, mu)
		}
	}
	if len(names) > 1 {
		// Deterministic message regardless of map order.
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if names[j] < names[i] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
	}
	return strings.Join(names, ", ")
}
