package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundSpecTypes are the qualified names (pkgpath.TypeName) of the bound-
// carrying option structs a configuration is constructed from. Tests
// override this to point at testdata.
var BoundSpecTypes = []string{
	"smartconf.Spec",
	"smartconf/internal/core.Options",
}

// ConfConstructors are the qualified names of the functions that turn a
// bound-spec value into a live configuration or controller. Only literals
// that flow into one of these are checked — a zero Spec{} on an error-return
// path never reaches a controller and stays silent.
var ConfConstructors = []string{
	"smartconf.New",
	"smartconf.NewIndirect",
	"smartconf/internal/core.Synthesize",
	"smartconf/internal/core.NewController",
}

// clampedByMarker annotates a knob-holding struct field with the name of the
// one function every written value must flow through, e.g.
//
//	conf float64 // clampedby: clamp
//
// It composes with guardedby on the same line (`// guardedby: mu —
// clampedby: setLastValueLocked`); each marker takes the first word after
// itself.
const clampedByMarker = "clampedby:"

// ConfBoundsAnalyzer structurally enforces the NaN-knob hardening from the
// PR 4 line of work: every configuration construction must state a finite,
// non-zero Max bound (Max 0 means unbounded — if unbounded is really meant,
// say so with a suppression and a reason), and fields annotated
// `clampedby: fn` may only be written with values routed through fn, so no
// code path can slip an unclamped or non-finite value into a live knob.
var ConfBoundsAnalyzer = &Analyzer{
	Name: "confbounds",
	Doc: "configuration constructions must supply finite non-zero Max bounds, " +
		"and fields annotated `clampedby: fn` may only be assigned through fn",
	Run: runConfBounds,
}

func runConfBounds(pass *Pass) error {
	checkConstructorBounds(pass)
	checkClampedFields(pass)
	return nil
}

// ---- rule A: bounds at construction ----

func checkConstructorBounds(pass *Pass) {
	for _, file := range pass.Files {
		var fd *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fd = n
			case *ast.CallExpr:
				if isConfConstructor(pass, n) {
					for _, arg := range n.Args {
						checkBoundArg(pass, fd, arg)
					}
				}
			}
			return true
		})
	}
}

func isConfConstructor(pass *Pass, call *ast.CallExpr) bool {
	fn, ok := calleeObj(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	qualified := fn.Pkg().Path() + "." + fn.Name()
	for _, c := range ConfConstructors {
		if qualified == c {
			return true
		}
	}
	return false
}

func isBoundSpecType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	qualified := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, s := range BoundSpecTypes {
		if qualified == s {
			return true
		}
	}
	return false
}

// checkBoundArg resolves a constructor argument of a bound-spec type to its
// composite literal (directly, or through a single local definition) and
// checks the Min/Max entries. Values built dynamically — by a helper
// function, from parsed bindings — cannot be checked statically and pass.
func checkBoundArg(pass *Pass, fd *ast.FuncDecl, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil || !isBoundSpecType(tv.Type) {
		return
	}
	lit := specLiteral(pass, fd, arg)
	if lit == nil {
		return
	}
	min, max := boundEntry(pass, lit, "Min"), boundEntry(pass, lit, "Max")
	if max == nil {
		pass.Reportf(lit.Pos(),
			"%s constructed without a Max bound (zero value means unbounded); state a finite Max, or suppress with the reason the knob is intentionally unbounded", tv.Type)
	} else {
		checkBoundExpr(pass, max, "Max")
	}
	if min != nil {
		checkBoundExpr(pass, min, "Min")
	}
}

// specLiteral unwraps arg to a composite literal: the expression itself, a
// unary &lit, or an identifier defined exactly once from a literal in the
// enclosing function.
func specLiteral(pass *Pass, fd *ast.FuncDecl, arg ast.Expr) *ast.CompositeLit {
	switch a := arg.(type) {
	case *ast.CompositeLit:
		return a
	case *ast.UnaryExpr:
		if a.Op == token.AND {
			if lit, ok := a.X.(*ast.CompositeLit); ok {
				return lit
			}
		}
	case *ast.Ident:
		if fd == nil {
			return nil
		}
		obj, ok := pass.Info.Uses[a].(*types.Var)
		if !ok {
			return nil
		}
		if init := localInit(pass, fd, obj); init != nil {
			if lit, ok := init.(*ast.CompositeLit); ok {
				return lit
			}
		}
	}
	return nil
}

// boundEntry finds the value of the named field in a (keyed or positional)
// struct literal.
func boundEntry(pass *Pass, lit *ast.CompositeLit, field string) ast.Expr {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return nil
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				return kv.Value
			}
			continue
		}
		if i < st.NumFields() && st.Field(i).Name() == field {
			return elt
		}
	}
	return nil
}

// checkBoundExpr validates one bound value: a constant zero Max is
// unbounded, and math.Inf/math.NaN make the bound meaningless. Non-constant
// expressions (profile-derived caps, parsed bindings) pass.
func checkBoundExpr(pass *Pass, e ast.Expr, field string) {
	if call, ok := e.(*ast.CallExpr); ok {
		if path, name := pkgFunc(pass.Info, call); path == "math" && (name == "Inf" || name == "NaN") {
			pass.Reportf(e.Pos(),
				"%s bound built from math.%s is not a finite bound; the controller cannot clamp against it", field, name)
			return
		}
	}
	if field == "Max" && isExactZero(pass, e) {
		pass.Reportf(e.Pos(),
			"Max bound of constant zero means unbounded; state a finite Max, or suppress with the reason the knob is intentionally unbounded")
	}
}

// ---- rule B: clampedby field writes ----

// clampSpec maps annotated field names to their clamping function, per
// struct type.
type clampSpec map[string]string

func runClampSpecs(pass *Pass) map[*types.TypeName]clampSpec {
	specs := map[*types.TypeName]clampSpec{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				fn := markerAnnotation(field, clampedByMarker)
				if fn == "" {
					continue
				}
				spec := specs[obj]
				if spec == nil {
					spec = clampSpec{}
					specs[obj] = spec
				}
				for _, name := range field.Names {
					spec[name.Name] = fn
				}
			}
			return true
		})
	}
	return specs
}

// markerAnnotation extracts the first word after marker in a field's doc or
// trailing comment ("" when unannotated). Shared with guardedby's parser so
// `// guardedby: mu — clampedby: fn` serves both analyzers.
func markerAnnotation(field *ast.Field, marker string) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimLeft(c.Text, "/* "))
			if i := strings.Index(text, marker); i >= 0 {
				if f := strings.Fields(text[i+len(marker):]); len(f) > 0 {
					return f[0]
				}
			}
		}
	}
	return ""
}

func checkClampedFields(pass *Pass) {
	specs := runClampSpecs(pass)
	if len(specs) == 0 {
		return
	}
	for _, file := range pass.Files {
		var fd *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fd = n
			case *ast.AssignStmt:
				checkClampedAssign(pass, specs, fd, n)
			case *ast.IncDecStmt:
				if field, clamp := clampedTarget(pass, specs, n.X); field != "" {
					pass.Reportf(n.Pos(),
						"%s of field %s bypasses %s; annotated `clampedby: %s` fields change only through it", n.Tok, field, clamp, clamp)
				}
			case *ast.CompositeLit:
				checkClampedLiteral(pass, specs, fd, n)
			}
			return true
		})
	}
}

// clampedTarget resolves an assignment target to (field name, clamp func)
// when the target is a selector of a clampedby-annotated field.
func clampedTarget(pass *Pass, specs map[*types.TypeName]clampSpec, e ast.Expr) (string, string) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	spec := specs[named.Obj()]
	if spec == nil {
		return "", ""
	}
	if clamp, ok := spec[sel.Sel.Name]; ok {
		return sel.Sel.Name, clamp
	}
	return "", ""
}

func checkClampedAssign(pass *Pass, specs map[*types.TypeName]clampSpec, fd *ast.FuncDecl, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		field, clamp := clampedTarget(pass, specs, lhs)
		if field == "" {
			continue
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			pass.Reportf(as.Pos(),
				"compound assignment to field %s bypasses %s; annotated `clampedby: %s` fields change only through it", field, clamp, clamp)
			continue
		}
		if i < len(as.Rhs) && !flowsThrough(pass, fd, as.Rhs[i], clamp) {
			pass.Reportf(as.Pos(),
				"write to field %s does not flow through %s; annotated `clampedby: %s` fields take only %s(...) results", field, clamp, clamp, clamp)
		}
	}
}

func checkClampedLiteral(pass *Pass, specs map[*types.TypeName]clampSpec, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	spec := specs[named.Obj()]
	if spec == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field string
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				field, value = key.Name, kv.Value
			}
		} else if i < st.NumFields() {
			field, value = st.Field(i).Name(), elt
		}
		clamp, annotated := spec[field]
		if !annotated || value == nil {
			continue
		}
		if isExactZero(pass, value) {
			continue // zero value: the field starts unset, not unclamped
		}
		if !flowsThrough(pass, fd, value, clamp) {
			pass.Reportf(value.Pos(),
				"field %s initialized without flowing through %s; annotated `clampedby: %s` fields take only %s(...) results", field, clamp, clamp, clamp)
		}
	}
}

// flowsThrough reports whether e is a call to the named clamp function, or
// an identifier defined exactly once in fd from such a call.
func flowsThrough(pass *Pass, fd *ast.FuncDecl, e ast.Expr, clamp string) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if obj := calleeObj(pass.Info, e); obj != nil && obj.Name() == clamp {
			return true
		}
	case *ast.Ident:
		if fd == nil {
			return false
		}
		obj, ok := pass.Info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if init := localInit(pass, fd, obj); init != nil {
			if call, ok := init.(*ast.CallExpr); ok {
				if co := calleeObj(pass.Info, call); co != nil && co.Name() == clamp {
					return true
				}
			}
		}
	}
	return false
}

// localInit returns the expression obj is assigned from, when fd assigns it
// exactly once (definition or plain assignment); nil otherwise.
func localInit(pass *Pass, fd *ast.FuncDecl, obj *types.Var) ast.Expr {
	var init ast.Expr
	count := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.Defs[name] == obj && i < len(n.Values) {
					init = n.Values[i]
					count++
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pass.Info.Defs[id] == obj || pass.Info.Uses[id] == obj {
					init = n.Rhs[i]
					count++
				}
			}
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return init
}
