package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismPackages lists the import-path prefixes of simulation-reachable
// code: everything a deterministic experiment run may execute. Tests override
// this to point at testdata.
var DeterminismPackages = []string{
	"smartconf/internal/sim",
	"smartconf/internal/rpcserver",
	"smartconf/internal/kvstore",
	"smartconf/internal/dfs",
	"smartconf/internal/mapred",
	"smartconf/internal/memsim",
	"smartconf/internal/disksim",
	"smartconf/internal/llmserve",
	"smartconf/internal/workload",
	"smartconf/internal/cluster",
	"smartconf/internal/experiments",
	"smartconf/internal/chaos",
	"smartconf/internal/proptest",
	// The decision log is recorded inside deterministic runs and its envelope
	// bytes back the zero-perturbation replay identity — wall-clock or global
	// randomness here would break byte-identical replay.
	"smartconf/internal/declog",
	// Not simulation code, but on the deterministic-artifact path the golden
	// byte-identity tests protect: the system/goals file layer, the Table 1-5
	// study data, and the artifact-rendering commands.
	"smartconf/internal/sysfile",
	"smartconf/internal/study",
	"smartconf/cmd",
}

// globalRandFuncs are the math/rand package-level functions that consume the
// shared global source. Constructors (New, NewSource, NewZipf) are fine —
// they are exactly how seeded determinism is achieved.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions, should it ever appear.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "N": true,
}

// DeterminismAnalyzer enforces the reproducibility contract of
// simulation-reachable packages: simulated time comes from the simulation
// clock, randomness flows from an explicitly seeded *rand.Rand, and nothing
// observable is produced in map-iteration order.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbids wall-clock reads, global math/rand, sync.Pool, and " +
		"order-dependent map iteration in simulation-reachable packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pathMatchesPrefix(pass.Pkg.Path(), DeterminismPackages) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.SelectorExpr:
				checkSyncPool(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkSyncPool flags every mention of the sync.Pool type — field types,
// variable declarations, composite literals. The GC empties a sync.Pool on
// its own schedule, so whether Get returns a recycled object or a fresh one
// depends on collection timing, and any code observing the difference
// (pointer identity, retained capacity, reset state) diverges between
// otherwise identical runs. Substrates pool with plain free-list slices
// keyed to the owning struct instead: same amortized zero-allocation
// steady state, fully deterministic reuse order.
func checkSyncPool(pass *Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return
	}
	if _, isType := obj.(*types.TypeName); !isType {
		return
	}
	if obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
		pass.Reportf(sel.Pos(),
			"sync.Pool in simulation-reachable code: reuse depends on GC timing; pool with a free-list slice owned by the struct instead")
	}
}

func pathMatchesPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// pkgFunc resolves a call's callee to (package path, function name) when it
// is a package-level function of an imported package.
func pkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	path, name := pkgFunc(pass.Info, call)
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			pass.Reportf(call.Pos(),
				"wall-clock time.%s in simulation-reachable code; derive timestamps from the simulation clock", name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[name] {
			pass.Reportf(call.Pos(),
				"global rand.%s draws from the process-wide source; use an explicitly seeded *rand.Rand", name)
		}
	}
}

// checkMapRanges flags `range` over a map whose body produces observable,
// order-dependent effects: appending to a slice declared outside the loop
// (unless that slice is deterministically sorted later in the same
// function), printing, or accumulating floats (float addition is not
// associative, so the sum depends on iteration order).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if path, name := pkgFunc(pass.Info, n); path == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(n.Pos(),
					"fmt.%s inside range over a map emits output in nondeterministic order; iterate sorted keys", name)
				return true
			}
			if obj := calleeObj(pass.Info, n); obj != nil && obj.Name() == "append" && obj.Pkg() == nil {
				checkMapRangeAppend(pass, fnBody, rng, n)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN {
				for _, lhs := range n.Lhs {
					if obj := declaredOutside(pass.Info, lhs, rng); obj != nil && isFloat(obj.Type()) {
						pass.Reportf(n.Pos(),
							"float accumulation over map iteration: %s depends on iteration order (float addition is not associative); iterate sorted keys", obj.Name())
					}
				}
			}
		}
		return true
	})
}

// checkMapRangeAppend flags append(dst, ...) where dst is declared outside
// the map-range loop and is never passed to a sort.* / slices.Sort* call
// after the loop in the same function body.
func checkMapRangeAppend(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	obj := declaredOutside(pass.Info, call.Args[0], rng)
	if obj == nil {
		return
	}
	if sortedAfter(pass, fnBody, rng, obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s inside range over a map accumulates elements in nondeterministic order; sort %s afterwards or iterate sorted keys", obj.Name(), obj.Name())
}

// declaredOutside resolves expr to a variable object declared lexically
// outside the range statement (nil otherwise).
func declaredOutside(info *types.Info, expr ast.Expr, rng *ast.RangeStmt) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return nil // loop-local
	}
	return obj
}

// sortedAfter reports whether obj is an argument of a sort.*/slices.Sort*
// call positioned after the range loop within the function body.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		path, name := pkgFunc(pass.Info, call)
		isSort := path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
