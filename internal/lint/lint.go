// Package lint is smartconf-vet: a suite of domain-specific static analyzers
// that machine-check the invariants behind the harness's reproducibility
// guarantees. The golden byte-identical-output tests (cmd/smartconf-bench)
// prove determinism after the fact; these analyzers enforce the properties
// that make those tests pass by construction:
//
//   - determinism: simulation-reachable code must not read the wall clock,
//     draw from the global math/rand source, or emit output in map-iteration
//     order.
//   - cachekey: experiment drivers must reach simulation through the
//     memoized run-cache adapters in runcache.go, so no run bypasses the
//     cache or is keyed incompletely.
//   - floatcmp: controller and statistics math must not compare floats with
//     ==/!= (exact-zero sentinel guards excepted) — convergence checks need
//     tolerances.
//   - guardedby: struct fields annotated `// guardedby: mu` may only be
//     accessed while the named mutex is held in the enclosing method.
//   - hotalloc: code reachable from `//smartconf:hotpath`-annotated request
//     paths must not allocate — no capturing closures, per-call method
//     values, make/new/composite literals, interface boxing, or fmt calls —
//     the static complement of the whole-run AllocsPerRun benchgates.
//   - confbounds: configuration constructions must state finite non-zero
//     Max bounds, and knob fields annotated `clampedby: fn` change only
//     through fn.
//   - seedflow: rand.NewSource seeds in simulation-reachable packages must
//     derive from a seed parameter/field or a non-zero constant.
//
// The framework is a deliberately small stand-in for
// golang.org/x/tools/go/analysis (which this module does not depend on):
// an Analyzer holds a Run function over a type-checked Pass, diagnostics
// carry positions, and `//smartconf:allow <analyzer> -- <reason>` comments
// suppress individual findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //smartconf:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags  *[]Diagnostic
	allows map[string]map[int][]string // file → line → analyzers allowed
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow comment suppresses it.
// Test files are exempt across the suite: tests assert exactness on purpose
// (golden byte-identity checks compare floats exactly, determinism tests pin
// wall-clock seams), and the invariants guard production code paths.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an `//smartconf:allow <analyzer> -- <reason>`
// comment on the diagnostic's line or the line immediately above covers it.
func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.allows[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == p.Analyzer.Name || name == "all" {
				return true
			}
		}
	}
	return false
}

// allowPrefix introduces a suppression comment. The ` -- <reason>` tail is
// mandatory: a suppression without a recorded justification is ignored (and
// so still fails CI), which keeps the escape hatch auditable.
const allowPrefix = "//smartconf:allow "

// collectAllows indexes every well-formed suppression comment in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	allows := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				name, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					continue // no reason given: suppression is inert
				}
				pos := fset.Position(c.Pos())
				m := allows[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					allows[pos.Filename] = m
				}
				for _, n := range strings.Fields(name) {
					m[pos.Line] = append(m[pos.Line], n)
				}
			}
		}
	}
	return allows
}

// AllowSite is one //smartconf:allow suppression comment found in source,
// well-formed or not. Reason is empty when the mandatory ` -- <reason>` tail
// is missing — such a suppression is inert (findings still fire) and
// smartconf-vet -allows reports it as an error.
type AllowSite struct {
	Pos       token.Position
	Analyzers []string // analyzer names listed before the ` -- ` separator
	Reason    string   // justification after ` -- `; empty means malformed
}

// CollectAllowSites returns every suppression comment in the package, in
// file/line order. Unlike collectAllows it keeps malformed (reason-less)
// sites, so the -allows audit can flag them instead of silently ignoring
// them.
func CollectAllowSites(pkg *Package) []AllowSite {
	var sites []AllowSite
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				name, reason, _ := strings.Cut(rest, "--")
				sites = append(sites, AllowSite{
					Pos:       pkg.Fset.Position(c.Pos()),
					Analyzers: strings.Fields(name),
					Reason:    strings.TrimSpace(reason),
				})
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return sites
}

// Analyzers returns the full smartconf-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CacheKeyAnalyzer,
		FloatCmpAnalyzer,
		GuardedByAnalyzer,
		HotAllocAnalyzer,
		ConfBoundsAnalyzer,
		SeedFlowAnalyzer,
	}
}

// Check runs the given analyzers over one loaded package and returns the
// surviving (non-suppressed) diagnostics in file/line order.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allows := collectAllows(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			allows:   allows,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
