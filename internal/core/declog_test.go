package core

import (
	"math"
	"testing"

	"smartconf/internal/declog"
)

func TestClassifyClamp(t *testing.T) {
	cases := []struct {
		name          string
		raw, min, max float64
		want          declog.ClampReason
	}{
		{"inside range", 50, 0, 100, declog.ClampNone},
		{"at min", 0, 0, 100, declog.ClampNone},
		{"at max", 100, 0, 100, declog.ClampNone},
		{"below min", -1, 0, 100, declog.ClampMin},
		{"above max", 100.5, 0, 100, declog.ClampMax},
		{"unbounded above", 1e300, 0, math.Inf(1), declog.ClampNone},
		{"+inf raw under finite max", math.Inf(1), 0, 100, declog.ClampMax},
		{"-inf raw over finite min", math.Inf(-1), 0, 100, declog.ClampMin},
		{"+inf raw with +inf max", math.Inf(1), 0, math.Inf(1), declog.ClampNone},
		{"nan raw", math.NaN(), 0, 100, declog.ClampNonFinite},
		{"nan beats bounds", math.NaN(), math.Inf(-1), math.Inf(1), declog.ClampNonFinite},
		{"degenerate range below", 5, 10, 10, declog.ClampMin},
		{"degenerate range above", 15, 10, 10, declog.ClampMax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassifyClamp(tc.raw, tc.min, tc.max); got != tc.want {
				t.Errorf("ClassifyClamp(%v, %v, %v) = %v, want %v", tc.raw, tc.min, tc.max, got, tc.want)
			}
		})
	}
}

// Every Update lands one record: 1-based period, the sensed value, the error,
// the pole actually used, the raw Eq. 2 output, and the clamp classification.
func TestControllerAppendsDecisionRecords(t *testing.T) {
	log := declog.New(16)
	ctrl := mustController(t, Model{Alpha: 1}, 0.5, 0, Goal{Target: 100}, Options{Initial: 0, Min: 0, Max: 40})
	ctrl.AttachLog(log, "knob")

	ctrl.Update(20) // error 80, raw 0+0.5*80=40: exactly at Max, no clamp
	ctrl.Update(20) // raw 40+40=80 > Max: clamped to 40
	recs := log.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	r0, r1 := recs[0], recs[1]
	if r0.Period != 1 || r1.Period != 2 {
		t.Errorf("periods %d,%d; want 1,2", r0.Period, r1.Period)
	}
	if r0.Sensed != 20 || r0.Err != 80 || r0.Pole != 0.5 {
		t.Errorf("record 0 = %+v; want sensed 20, err 80, pole 0.5", r0)
	}
	if r0.Raw != 40 || r0.Applied != 40 || r0.Clamp != declog.ClampNone {
		t.Errorf("record 0 = %+v; want raw 40 applied 40 clamp none", r0)
	}
	if r1.Raw != 80 || r1.Applied != 40 || r1.Clamp != declog.ClampMax {
		t.Errorf("record 1 = %+v; want raw 80 applied 40 clamp max", r1)
	}
	if names := log.Sources(); len(names) != 1 || names[0] != "knob" {
		t.Errorf("sources = %v, want [knob]", log.Sources())
	}
}

// The danger-region pole switch must be visible in the log: the record holds
// the pole the update actually used, not the configured one.
func TestLoggedPoleReflectsTwoPoleSwitch(t *testing.T) {
	log := declog.New(8)
	goal := Goal{Target: 100, Hard: true}
	ctrl := mustController(t, Model{Alpha: -1}, 0.9, 0.2, goal, Options{Initial: 50, Max: 1e6})
	ctrl.AttachLog(log, "knob")
	ctrl.Update(ctrl.VirtualTarget() - 1) // safe region
	ctrl.Update(150)                      // past the virtual goal: pole 0
	recs := log.Snapshot()
	if recs[0].Pole != 0.9 {
		t.Errorf("safe-region record pole %v, want 0.9", recs[0].Pole)
	}
	if recs[1].Pole != 0 {
		t.Errorf("danger-region record pole %v, want 0", recs[1].Pole)
	}
}

func TestSetGoalBumpsEpochOnlyWhenLogged(t *testing.T) {
	unlogged := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 100}, Options{Max: 1e6})
	unlogged.SetGoal(200) // no log attached: must not panic

	log := declog.New(8)
	ctrl := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 100}, Options{Max: 1e6})
	ctrl.AttachLog(log, "knob")
	ctrl.Update(10)
	ctrl.SetGoal(200)
	ctrl.Update(10)
	recs := log.Snapshot()
	if log.Epoch() != 1 {
		t.Fatalf("epoch = %d after SetGoal, want 1", log.Epoch())
	}
	if recs[0].Epoch != 0 || recs[1].Epoch != 1 {
		t.Errorf("record epochs %d,%d; want 0,1", recs[0].Epoch, recs[1].Epoch)
	}
}

// A pole perturbation must only take effect from its start period, and a zero
// perturbation must leave the trajectory untouched.
func TestSetPerturbPinsPoleFromPeriod(t *testing.T) {
	mk := func() *Controller {
		return mustController(t, Model{Alpha: 1}, 0.5, 0, Goal{Target: 100}, Options{Initial: 0, Max: 1e6})
	}
	plain := mk()
	perturbed := mk()
	perturbed.SetPerturb(declog.Perturb{SetPole: true, Pole: 0.9, FromPeriod: 3})
	var a, b []float64
	for i := 0; i < 5; i++ {
		a = append(a, plain.Update(50))
		b = append(b, perturbed.Update(50))
	}
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("pre-FromPeriod trajectories diverge: %v vs %v", a[:2], b[:2])
	}
	if a[2] == b[2] {
		t.Errorf("perturbation had no effect at period 3: both %v", a[2])
	}
	if perturbed.LastPole() != 0.9 {
		t.Errorf("LastPole = %v, want pinned 0.9", perturbed.LastPole())
	}

	disarmed := mk()
	disarmed.SetPerturb(declog.Perturb{SetPole: true, Pole: 0.9})
	disarmed.SetPerturb(declog.Perturb{}) // zero perturbation disarms
	for i, want := range a {
		if got := disarmed.Update(50); got != want {
			t.Fatalf("disarmed controller diverges at period %d: %v != %v", i+1, got, want)
		}
	}
}

func TestSetPerturbMovesClampBounds(t *testing.T) {
	ctrl := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 1000}, Options{Initial: 0, Min: 0, Max: 50})
	ctrl.SetPerturb(declog.Perturb{SetMax: true, Max: 200})
	if got := ctrl.Update(0); got != 200 {
		t.Errorf("with perturbed max 200, Update = %v", got)
	}

	// Inverted perturbed bounds collapse to the min rather than oscillating.
	ctrl2 := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 1000}, Options{Initial: 0, Min: 0, Max: 50})
	ctrl2.SetPerturb(declog.Perturb{SetMin: true, Min: 30, SetMax: true, Max: 10})
	if got := ctrl2.Update(0); got != 30 {
		t.Errorf("inverted perturbed bounds: Update = %v, want 30", got)
	}

	// NaN perturbation fields are ignored, not applied.
	ctrl3 := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 1000}, Options{Initial: 0, Min: 0, Max: 50})
	ctrl3.SetPerturb(declog.Perturb{SetPole: true, Pole: math.NaN(), SetMax: true, Max: math.NaN()})
	if got := ctrl3.Update(0); got != 50 {
		t.Errorf("NaN perturbation fields leaked: Update = %v, want 50", got)
	}
}

// Perturbed clamp bounds drive the same saturation counter the alert reads.
func TestPerturbedBoundsFeedSaturation(t *testing.T) {
	ctrl := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 1000}, Options{Initial: 0, Min: 0, Max: 1e6})
	ctrl.SetPerturb(declog.Perturb{SetMax: true, Max: 10})
	ctrl.Update(0)
	ctrl.Update(0)
	if got := ctrl.SaturatedFor(); got != 2 {
		t.Errorf("SaturatedFor = %d under perturbed max, want 2", got)
	}
}
