package core

import "math"

// AdaptiveModel refines the plant model online with recursive least squares
// (RLS) over the (configuration, measurement) pairs the controller sees at
// run time. This implements the paper's §7 future-work direction — "we will
// investigate replacing our exhaustive profiling with more scalable learning
// approaches" — as an optional extension: synthesis still starts from the
// profiled model, but the slope can then track plants whose gain drifts
// (e.g. HB3813's α doubling when the workload's request size doubles).
//
// The estimator fits s = α·c + β with exponential forgetting:
//
//	x  = [c, 1]ᵀ
//	K  = P·x / (ρ + xᵀ·P·x)
//	θ ← θ + K·(s − θᵀ·x)
//	P ← (P − K·xᵀ·P) / ρ
//
// where ρ ∈ (0, 1] is the forgetting factor (1 = ordinary RLS; smaller
// forgets faster and tracks faster-changing plants).
type AdaptiveModel struct {
	theta  [2]float64    // α, β
	p      [2][2]float64 // inverse-covariance estimate
	forget float64
	n      int

	// slope sanity rails: the online estimate may not change sign or move
	// more than a factor of clampFactor away from the profiled slope —
	// wild transients (e.g. a sensor glitch) must not destabilize Eq. 2.
	alpha0      float64
	clampFactor float64
}

// DefaultForgetting is a conservative forgetting factor suitable for plants
// that drift over hundreds of samples.
const DefaultForgetting = 0.98

// NewAdaptiveModel seeds RLS from the profiled model. forget outside (0, 1]
// is replaced by DefaultForgetting.
func NewAdaptiveModel(init Model, forget float64) *AdaptiveModel {
	if forget <= 0 || forget > 1 {
		forget = DefaultForgetting
	}
	m := &AdaptiveModel{
		theta:       [2]float64{init.Alpha, init.Intercept},
		forget:      forget,
		alpha0:      init.Alpha,
		clampFactor: 8,
	}
	// A modest initial covariance: trust the profile, but let run-time
	// evidence move the estimate within a few dozen samples.
	m.p = [2][2]float64{{1e-2 * scale2(init.Alpha), 0}, {0, 1e-2 * scale2(init.Intercept)}}
	if m.p[0][0] == 0 {
		m.p[0][0] = 1
	}
	if m.p[1][1] == 0 {
		m.p[1][1] = 1
	}
	return m
}

func scale2(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v * v
}

// Observe feeds one (configuration value, measured performance) pair.
func (m *AdaptiveModel) Observe(c, s float64) {
	if math.IsNaN(c) || math.IsNaN(s) || math.IsInf(c, 0) || math.IsInf(s, 0) {
		return
	}
	x := [2]float64{c, 1}

	// P·x
	px := [2]float64{
		m.p[0][0]*x[0] + m.p[0][1]*x[1],
		m.p[1][0]*x[0] + m.p[1][1]*x[1],
	}
	den := m.forget + x[0]*px[0] + x[1]*px[1]
	if den <= 0 || math.IsNaN(den) {
		return
	}
	k := [2]float64{px[0] / den, px[1] / den}

	e := s - (m.theta[0]*x[0] + m.theta[1]*x[1])
	m.theta[0] += k[0] * e
	m.theta[1] += k[1] * e

	// P ← (P − K·(P·x)ᵀ)/ρ  (using P symmetric: xᵀP = (P·x)ᵀ)
	var np [2][2]float64
	for i := 0; i < 2; i++ {
		ki := k[i]
		for j := 0; j < 2; j++ {
			np[i][j] = (m.p[i][j] - ki*px[j]) / m.forget
		}
	}
	m.p = np
	m.n++
}

// Alpha returns the current slope estimate, clamped to the profiled slope's
// sign and within clampFactor of its magnitude.
func (m *AdaptiveModel) Alpha() float64 {
	a := m.theta[0]
	lo := math.Abs(m.alpha0) / m.clampFactor
	hi := math.Abs(m.alpha0) * m.clampFactor
	mag := math.Abs(a)
	if mag < lo {
		mag = lo
	}
	if mag > hi {
		mag = hi
	}
	if m.alpha0 < 0 {
		return -mag
	}
	return mag
}

// Intercept returns the current intercept estimate.
func (m *AdaptiveModel) Intercept() float64 { return m.theta[1] }

// Samples returns how many observations have been absorbed.
func (m *AdaptiveModel) Samples() int { return m.n }

// EnableAdaptation attaches an online RLS model to the controller: every
// Update first refines the slope with the (current configuration, measured
// performance) pair, then applies Eq. 2 with the refined α. Pass forget ≤ 0
// for the default forgetting factor.
func (c *Controller) EnableAdaptation(forget float64) {
	c.adaptive = NewAdaptiveModel(c.model, forget)
}

// AdaptiveAlpha returns the live slope estimate, or the profiled slope when
// adaptation is off.
func (c *Controller) AdaptiveAlpha() float64 {
	if c.adaptive == nil {
		return c.model.Alpha
	}
	return c.adaptive.Alpha()
}
