package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// plantSim is a first-order plant s = α·c + base + disturbance used to
// close the loop in tests.
type plantSim struct {
	alpha float64
	base  float64
}

func (p plantSim) measure(c float64) float64 { return p.alpha*c + p.base }

func mustController(t *testing.T, model Model, pole, lambda float64, goal Goal, opts Options) *Controller {
	t.Helper()
	ctrl, err := NewController(model, pole, lambda, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestControllerConvergesToGoal(t *testing.T) {
	plant := plantSim{alpha: 2, base: 100}
	model := Model{Alpha: 2, Intercept: 100}
	goal := Goal{Metric: "mem", Target: 500}
	ctrl := mustController(t, model, 0.5, 0, goal, Options{Initial: 0, Max: 1e6})

	c := ctrl.Conf()
	for i := 0; i < 100; i++ {
		c = ctrl.Update(plant.measure(c))
	}
	// Steady state: s = goal ⇒ c = (500-100)/2 = 200.
	if math.Abs(c-200) > 1e-6 {
		t.Errorf("converged conf = %v, want 200", c)
	}
	if math.Abs(plant.measure(c)-500) > 1e-6 {
		t.Errorf("converged perf = %v, want 500", plant.measure(c))
	}
}

func TestControllerNegativeSlope(t *testing.T) {
	// HB2149-style plant: block time = 20·(1-lowerLimit) ⇒ s = -20·c + 20.
	plant := plantSim{alpha: -20, base: 20}
	model := Model{Alpha: -20, Intercept: 20}
	goal := Goal{Metric: "block", Target: 5}
	ctrl := mustController(t, model, 0.3, 0, goal, Options{Initial: 0.1, Max: 1})

	c := ctrl.Conf()
	for i := 0; i < 200; i++ {
		c = ctrl.Update(plant.measure(c))
	}
	// s = 5 ⇒ c = (5-20)/-20 = 0.75.
	if math.Abs(c-0.75) > 1e-6 {
		t.Errorf("converged conf = %v, want 0.75", c)
	}
}

func TestControllerDeadbeatOneStep(t *testing.T) {
	// pole 0 with an exact model reaches the goal in a single step.
	plant := plantSim{alpha: 3, base: 0}
	ctrl := mustController(t, Model{Alpha: 3}, 0, 0, Goal{Target: 300}, Options{Initial: 10, Max: 1e6})
	c := ctrl.Update(plant.measure(ctrl.Conf()))
	if math.Abs(plant.measure(c)-300) > 1e-9 {
		t.Errorf("one-step perf = %v, want 300", plant.measure(c))
	}
}

func TestControllerHardGoalVirtualTargetAndTwoPoles(t *testing.T) {
	lambda := 0.1
	goal := Goal{Metric: "mem", Target: 495, Hard: true}
	ctrl := mustController(t, Model{Alpha: 1}, 0.9, lambda, goal, Options{Initial: 0, Min: -1e9, Max: 1e6})

	wantVT := (1 - lambda) * 495
	if math.Abs(ctrl.VirtualTarget()-wantVT) > 1e-9 {
		t.Fatalf("virtual target = %v, want %v", ctrl.VirtualTarget(), wantVT)
	}

	// Safe region: measurement below virtual goal ⇒ regular pole.
	ctrl.Update(wantVT - 100)
	if ctrl.LastPole() != 0.9 {
		t.Errorf("safe-region pole = %v, want 0.9", ctrl.LastPole())
	}

	// Danger region: beyond the virtual goal ⇒ pole 0 (max aggression).
	before := ctrl.Conf()
	ctrl.Update(wantVT + 50)
	if ctrl.LastPole() != 0 {
		t.Errorf("danger-region pole = %v, want 0", ctrl.LastPole())
	}
	// And the knob must move down by the full error (1-0)/α·e = -50.
	if math.Abs(ctrl.Conf()-(before-50)) > 1e-9 {
		t.Errorf("danger-region step: conf %v → %v, want drop of 50", before, ctrl.Conf())
	}
}

func TestControllerSoftGoalKeepsSinglePole(t *testing.T) {
	ctrl := mustController(t, Model{Alpha: 1}, 0.8, 0.5, Goal{Target: 100, Hard: false}, Options{Max: 1e6})
	if ctrl.VirtualTarget() != 100 {
		t.Errorf("soft goal virtual target = %v, want goal itself", ctrl.VirtualTarget())
	}
	ctrl.Update(150) // above goal
	if ctrl.LastPole() != 0.8 {
		t.Errorf("soft goal pole = %v, want regular 0.8", ctrl.LastPole())
	}
}

func TestControllerLowerBoundGoal(t *testing.T) {
	// Throughput-style goal: stay ABOVE 100; plant gains with conf.
	plant := plantSim{alpha: 5, base: 0}
	goal := Goal{Metric: "tput", Target: 100, Bound: LowerBound, Hard: true}
	ctrl := mustController(t, Model{Alpha: 5}, 0.5, 0.1, goal, Options{Initial: 50, Max: 1e6})
	// Virtual target above the goal.
	if ctrl.VirtualTarget() <= 100 {
		t.Fatalf("lower-bound virtual target = %v, want > 100", ctrl.VirtualTarget())
	}
	// Below the virtual goal = danger for lower bounds ⇒ pole 0.
	ctrl.Update(50)
	if ctrl.LastPole() != 0 {
		t.Errorf("danger pole = %v, want 0", ctrl.LastPole())
	}
	c := ctrl.Conf()
	for i := 0; i < 100; i++ {
		c = ctrl.Update(plant.measure(c))
	}
	if plant.measure(c) < 100 {
		t.Errorf("steady state %v below lower bound 100", plant.measure(c))
	}
}

func TestControllerInteractionFactorSplitsError(t *testing.T) {
	goal := Goal{Target: 100, Hard: true, SuperHard: true}
	solo := mustController(t, Model{Alpha: 1}, 0, 0, goal, Options{Initial: 0, Max: 1e6})
	duo := mustController(t, Model{Alpha: 1}, 0, 0, goal, Options{Initial: 0, Max: 1e6, Interaction: 2})

	solo.Update(40)
	duo.Update(40)
	// e = 60; solo moves 60, duo moves 30.
	if math.Abs(solo.Conf()-60) > 1e-9 {
		t.Errorf("solo conf = %v, want 60", solo.Conf())
	}
	if math.Abs(duo.Conf()-30) > 1e-9 {
		t.Errorf("duo conf = %v, want 30", duo.Conf())
	}

	duo.SetInteraction(3)
	duo.SetConf(0)
	duo.Update(40)
	if math.Abs(duo.Conf()-20) > 1e-9 {
		t.Errorf("N=3 conf = %v, want 20", duo.Conf())
	}
	duo.SetInteraction(0) // clamped to 1
	duo.SetConf(0)
	duo.Update(40)
	if math.Abs(duo.Conf()-60) > 1e-9 {
		t.Errorf("N clamped to 1: conf = %v, want 60", duo.Conf())
	}
}

func TestControllerClampingAndSaturation(t *testing.T) {
	ctrl := mustController(t, Model{Alpha: 1}, 0, 0, Goal{Target: 1000}, Options{Min: 0, Max: 50})
	for i := 0; i < 5; i++ {
		ctrl.Update(0) // wants conf 1000, clamped at 50
	}
	if ctrl.Conf() != 50 {
		t.Errorf("conf = %v, want pinned at 50", ctrl.Conf())
	}
	if ctrl.SaturatedFor() != 5 {
		t.Errorf("SaturatedFor = %d, want 5", ctrl.SaturatedFor())
	}
	// Achievable goal resets the saturation counter.
	ctrl.SetGoal(40)
	ctrl.Update(45)
	if ctrl.SaturatedFor() != 0 {
		t.Errorf("SaturatedFor after feasible update = %d, want 0", ctrl.SaturatedFor())
	}
}

func TestControllerSetGoalRecomputesVirtualGoal(t *testing.T) {
	ctrl := mustController(t, Model{Alpha: 1}, 0.5, 0.2, Goal{Target: 1000, Hard: true}, Options{Max: 1e6})
	if math.Abs(ctrl.VirtualTarget()-800) > 1e-9 {
		t.Fatalf("virtual target = %v, want 800", ctrl.VirtualTarget())
	}
	ctrl.SetGoal(500)
	if math.Abs(ctrl.VirtualTarget()-400) > 1e-9 {
		t.Errorf("after SetGoal virtual target = %v, want 400", ctrl.VirtualTarget())
	}
	if ctrl.Goal().Target != 500 {
		t.Errorf("goal = %v, want 500", ctrl.Goal().Target)
	}
}

func TestControllerConstructorValidation(t *testing.T) {
	if _, err := NewController(Model{Alpha: 0}, 0, 0, Goal{}, Options{}); err == nil {
		t.Error("expected error for zero α")
	}
	if _, err := NewController(Model{Alpha: math.NaN()}, 0, 0, Goal{}, Options{}); err == nil {
		t.Error("expected error for NaN α")
	}
	if _, err := NewController(Model{Alpha: 1}, 1.0, 0, Goal{}, Options{}); err == nil {
		t.Error("expected error for pole ≥ 1")
	}
	if _, err := NewController(Model{Alpha: 1}, -0.1, 0, Goal{}, Options{}); err == nil {
		t.Error("expected error for negative pole")
	}
	if _, err := NewController(Model{Alpha: 1}, 0, 0, Goal{}, Options{Min: 10, Max: 5}); err == nil {
		t.Error("expected error for inverted bounds")
	}
}

func TestSynthesizeEndToEnd(t *testing.T) {
	// Profile a noisy plant, synthesize, and close the loop on the same plant.
	rng := rand.New(rand.NewSource(7))
	alpha, base := 3.0, 50.0
	noisy := func(c float64) float64 {
		return alpha*c + base + rng.NormFloat64()*5
	}
	plan := DefaultPlan(10, 100, 4)
	profile, err := plan.Run(func(s float64) (float64, error) { return noisy(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	goal := Goal{Metric: "mem", Target: 400, Hard: true}
	ctrl, err := Synthesize(profile, goal, Options{Initial: 0, Max: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if p := ctrl.Pole(); p < 0 || p >= 1 {
		t.Fatalf("synthesized pole %v outside [0,1)", p)
	}
	c := ctrl.Conf()
	violations := 0
	for i := 0; i < 500; i++ {
		s := noisy(c)
		if s > goal.Target {
			violations++
		}
		c = ctrl.Update(s)
	}
	// The virtual goal absorbs the noise; demand a high satisfaction rate.
	if violations > 25 {
		t.Errorf("constraint violated %d/500 steps", violations)
	}
	// And the controller should not be hiding at conf=0: it must exploit the
	// slack below the goal.
	if ctrl.Conf() < 50 {
		t.Errorf("converged conf %v is needlessly conservative", ctrl.Conf())
	}
}

func TestSynthesizeRejectsEmptyProfile(t *testing.T) {
	if _, err := Synthesize(Profile{}, Goal{}, Options{}); err == nil {
		t.Error("expected error for empty profile")
	}
}

// Property (§5.6 stability): for random stable plants and any pole in [0,1),
// the closed loop converges to the goal without oscillating away from it.
func TestControllerConvergenceProperty(t *testing.T) {
	f := func(alphaSeed, poleSeed, goalSeed, baseSeed uint16) bool {
		alpha := 0.1 + float64(alphaSeed%500)/10 // (0.1, 50.1)
		if alphaSeed%2 == 0 {
			alpha = -alpha // negative-slope plants must work too
		}
		pole := float64(poleSeed%90) / 100 // [0, 0.9)
		base := float64(baseSeed % 100)
		goalTarget := base + 10 + float64(goalSeed%1000)
		plant := plantSim{alpha: alpha, base: base}

		min, max := -1e9, 1e9
		ctrl, err := NewController(Model{Alpha: alpha, Intercept: base}, pole, 0,
			Goal{Target: goalTarget}, Options{Min: min, Max: max})
		if err != nil {
			return false
		}
		c := ctrl.Conf()
		for i := 0; i < 400; i++ {
			c = ctrl.Update(plant.measure(c))
		}
		return math.Abs(plant.measure(c)-goalTarget) < 1e-3*(1+math.Abs(goalTarget))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (§5.6 overshoot): with an exact model and no external disturbance,
// a hard-goal controller starting in the safe region never pushes the plant
// beyond the real goal (the virtual goal leaves margin; pole ∈ [0,1) avoids
// overshoot by design).
func TestControllerNoOvershootProperty(t *testing.T) {
	f := func(alphaSeed, poleSeed, lambdaSeed uint16) bool {
		alpha := 0.1 + float64(alphaSeed%200)/10
		pole := float64(poleSeed%95) / 100
		lambda := float64(lambdaSeed%30) / 100 // [0, 0.3)
		plant := plantSim{alpha: alpha}
		goalTarget := 1000.0
		ctrl, err := NewController(Model{Alpha: alpha}, pole, lambda,
			Goal{Target: goalTarget, Hard: true}, Options{Initial: 0, Max: 1e12})
		if err != nil {
			return false
		}
		c := ctrl.Conf()
		for i := 0; i < 300; i++ {
			s := plant.measure(c)
			if s > goalTarget+1e-9 {
				return false // overshot the hard constraint
			}
			c = ctrl.Update(s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: after a sudden disturbance pushes the measurement past the
// virtual goal, the danger-region pole recovers the plant into the safe
// region within one step (exact model), mirroring Fig. 7's argument.
func TestControllerRecoveryProperty(t *testing.T) {
	f := func(disturbSeed uint16) bool {
		alpha := 2.0
		goalTarget := 500.0
		lambda := 0.1
		ctrl, err := NewController(Model{Alpha: alpha}, 0.9, lambda,
			Goal{Target: goalTarget, Hard: true}, Options{Initial: 0, Max: 1e9})
		if err != nil {
			return false
		}
		plant := plantSim{alpha: alpha}
		c := ctrl.Conf()
		for i := 0; i < 50; i++ {
			c = ctrl.Update(plant.measure(c))
		}
		// Sudden disturbance: memory spikes past the virtual goal.
		disturb := float64(disturbSeed%400) + 1
		spiked := plant.measure(c) + disturb
		c = ctrl.Update(spiked)
		// Next measurement with the disturbance persisting must be back at or
		// below the virtual goal (deadbeat step sized to the full error).
		after := plant.measure(c) + disturb
		return after <= ctrl.VirtualTarget()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
