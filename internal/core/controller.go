package core

import (
	"fmt"
	"math"

	"smartconf/internal/declog"
)

// Bound is the direction of a performance constraint.
type Bound int

const (
	// UpperBound means the metric must stay at or below the goal
	// (memory consumption, disk usage, latency, block time — every goal in
	// the paper's benchmark suite is an upper bound).
	UpperBound Bound = iota
	// LowerBound means the metric must stay at or above the goal
	// (e.g. a minimum-throughput SLA).
	LowerBound
)

func (b Bound) String() string {
	if b == LowerBound {
		return "lower"
	}
	return "upper"
}

// Goal describes the performance constraint a controller enforces.
type Goal struct {
	// Metric names the performance metric (e.g. "memory_consumption").
	Metric string
	// Target is the numeric constraint value.
	Target float64
	// Bound is the constraint direction (upper bound by default).
	Bound Bound
	// Hard marks goals that must not be overshot (OOM, OOD). Hard goals get
	// a virtual goal and two-pole switching (§5.2).
	Hard bool
	// SuperHard additionally splits the error across all controllers
	// registered on the same metric via the interaction factor N (§5.4).
	SuperHard bool
}

// Options tunes controller construction beyond what synthesis derives.
type Options struct {
	// Min and Max clamp the actuator (configuration value). Defaults: [0, +Inf).
	Min, Max float64
	// Initial is the configuration's starting value (the paper: "only serves
	// as C's starting value before the first run"; quality does not matter).
	Initial float64
	// Interaction is the §5.4 factor N ≥ 1: the number of configurations
	// sharing this controller's super-hard goal. Values < 1 are treated as 1.
	Interaction int
}

// Controller is one synthesized SmartConf controller: the Eq. 2 update law
// plus the paper's PerfConf-specific extensions (automatic pole, virtual
// goal, two-pole switching, interaction factor, actuator clamping).
//
// Controller is not safe for concurrent use; the public smartconf package
// adds locking.
type Controller struct {
	model       Model
	pole        float64
	lambda      float64
	goal        Goal
	virtualGoal float64
	min, max    float64
	interaction float64

	conf      float64 // current (continuous) configuration value — clampedby: clamp
	adaptive  *AdaptiveModel
	lastErr   float64
	lastPole  float64
	updates   int
	saturated int // consecutive updates pinned at a bound with persistent error

	log       *declog.Log   // optional decision log; nil when tracing is off
	logSrc    declog.Source // this controller's source id in log
	perturb   declog.Perturb
	perturbed bool
}

// Synthesize builds a controller from a profiling run and a goal, deriving
// the pole (§5.1) and, for hard goals, the virtual goal (§5.2) with no
// control-specific input from the user.
func Synthesize(p Profile, goal Goal, opts Options) (*Controller, error) {
	model, err := p.Fit()
	if err != nil {
		return nil, err
	}
	return newController(model, PoleFromDelta(p.Delta()), p.Lambda(), goal, opts)
}

// NewController builds a controller directly from a plant model, an explicit
// pole, and a stability coefficient λ. It is the escape hatch used by tests,
// ablation baselines (single-pole, no-virtual-goal), and callers that manage
// profiling themselves.
func NewController(model Model, pole, lambda float64, goal Goal, opts Options) (*Controller, error) {
	return newController(model, pole, lambda, goal, opts)
}

func newController(model Model, pole, lambda float64, goal Goal, opts Options) (*Controller, error) {
	if !model.Valid() {
		return nil, ErrDegenerateModel
	}
	if pole < 0 || pole >= 1 || math.IsNaN(pole) {
		return nil, fmt.Errorf("core: pole %v outside [0,1)", pole)
	}
	if math.IsNaN(goal.Target) || math.IsInf(goal.Target, 0) {
		return nil, fmt.Errorf("core: non-finite goal target %v", goal.Target)
	}
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		// A non-finite λ means the profile's variability was itself garbage
		// (NaN samples, overflowing magnitudes); refusing here keeps the
		// virtual goal — and therefore every conf the controller emits —
		// finite.
		return nil, fmt.Errorf("core: non-finite stability coefficient λ=%v", lambda)
	}
	min, max := opts.Min, opts.Max
	if max == 0 {
		max = math.Inf(1)
	}
	if math.IsNaN(min) || math.IsNaN(max) {
		return nil, fmt.Errorf("core: NaN actuator bound [%v,%v]", opts.Min, opts.Max)
	}
	if max < min {
		return nil, fmt.Errorf("core: actuator bounds inverted [%v,%v]", min, max)
	}
	if math.IsNaN(opts.Initial) || math.IsInf(opts.Initial, 0) {
		return nil, fmt.Errorf("core: non-finite initial value %v", opts.Initial)
	}
	n := opts.Interaction
	if n < 1 {
		n = 1
	}
	c := &Controller{
		model:       model,
		pole:        pole,
		lambda:      lambda,
		goal:        goal,
		min:         min,
		max:         max,
		interaction: float64(n),
		conf:        clamp(opts.Initial, min, max),
		lastPole:    pole,
	}
	c.recomputeVirtualGoal()
	return c, nil
}

func (c *Controller) recomputeVirtualGoal() {
	if c.goal.Hard {
		c.virtualGoal = VirtualGoal(c.goal.Target, c.lambda, c.goal.Bound)
	} else {
		c.virtualGoal = c.goal.Target
	}
}

// Update feeds the latest performance measurement and returns the adjusted
// configuration value (Eq. 2 with the §5.2/§5.4 extensions). This is the
// engine behind the public API's setPerf→getConf pair.
func (c *Controller) Update(measured float64) float64 {
	// Online model refinement (§7 extension): the pair (current conf,
	// measured) is exactly one plant observation.
	alpha := c.model.Alpha
	if c.adaptive != nil {
		c.adaptive.Observe(c.conf, measured)
		alpha = c.adaptive.Alpha()
	}

	// The setpoint error drives Eq. 2 for both bound directions; only the
	// definition of the danger region (pole switching) depends on the bound.
	e := c.virtualGoal - measured

	pole := c.pole
	if c.goal.Hard && c.beyondVirtualGoal(measured) {
		// Context-aware pole (§5.2): past the virtual goal, react with the
		// most aggressive stable pole to re-enter the safe region quickly.
		pole = 0
	}

	// Counterfactual replay (cmd/smartconf-replay): from the perturbation's
	// start period onward, pin the pole and/or move the clamp bounds. Periods
	// are 1-based and this update is c.updates+1, so the perturbation covers
	// it once c.updates+1 >= FromPeriod.
	minB, maxB := c.min, c.max
	if c.perturbed && uint32(c.updates)+1 >= c.perturb.FromPeriod {
		if c.perturb.SetPole && !math.IsNaN(c.perturb.Pole) {
			pole = c.perturb.Pole
		}
		if c.perturb.SetMin && !math.IsNaN(c.perturb.Min) {
			minB = c.perturb.Min
		}
		if c.perturb.SetMax && !math.IsNaN(c.perturb.Max) {
			maxB = c.perturb.Max
		}
		if maxB < minB {
			maxB = minB
		}
	}

	delta := (1 - pole) / (c.interaction * alpha) * e
	raw := c.conf + delta
	reason := declog.ClampNone
	if math.IsNaN(raw) {
		// Only reachable with an unbounded actuator: a ±∞ knob being
		// corrected by an opposite ±∞ step. Saturate in the step's direction
		// instead of poisoning the knob with NaN.
		raw = math.Inf(1)
		if delta < 0 {
			raw = math.Inf(-1)
		}
		reason = declog.ClampNonFinite
	}
	next := clamp(raw, minB, maxB)

	// Track saturation so the owner can raise an "unreachable goal" alert:
	// the controller keeps asking for a value beyond an actuator bound.
	clamped := ClassifyClamp(raw, minB, maxB)
	if clamped == declog.ClampMin || clamped == declog.ClampMax {
		c.saturated++
	} else {
		c.saturated = 0
	}
	if reason == declog.ClampNone {
		reason = clamped
	}

	c.conf = next
	c.lastErr = e
	c.lastPole = pole
	c.updates++
	if c.log != nil {
		c.log.Append(declog.Record{
			Source:  c.logSrc,
			Period:  uint32(c.updates),
			Clamp:   reason,
			Sensed:  measured,
			Err:     e,
			Pole:    pole,
			Raw:     raw,
			Applied: next,
		})
	}
	return c.conf
}

func (c *Controller) beyondVirtualGoal(measured float64) bool {
	if c.goal.Bound == LowerBound {
		return measured < c.virtualGoal
	}
	return measured > c.virtualGoal
}

// Conf returns the current configuration value without updating it.
func (c *Controller) Conf() float64 { return c.conf }

// SetConf overrides the current configuration value (clamped). Used when an
// external actor (an administrator, a recovery path) moves the knob.
func (c *Controller) SetConf(v float64) { c.conf = clamp(v, c.min, c.max) }

// SetGoal replaces the goal target at run time (the public setGoal API) and
// recomputes the virtual goal from the profiled λ. With a decision log
// attached the goal epoch advances, so replay can tell the regimes apart.
func (c *Controller) SetGoal(target float64) {
	c.goal.Target = target
	c.recomputeVirtualGoal()
	if c.log != nil {
		c.log.BumpEpoch()
	}
}

// AttachLog makes the controller record every Update into l under the given
// producer name. Registration is idempotent by name, so a controller
// resynthesized after a crash reattaches to its pre-crash source id.
func (c *Controller) AttachLog(l *declog.Log, name string) {
	c.log = l
	c.logSrc = l.Register(name)
}

// SetPerturb arms (or, with a zero perturbation, disarms) a counterfactual
// decision edit — the offline replay tool's hook. Production paths never
// call this.
func (c *Controller) SetPerturb(p declog.Perturb) {
	c.perturb = p
	c.perturbed = !p.Zero()
}

// SetInteraction updates the §5.4 factor when configurations join or leave a
// super-hard goal at run time.
func (c *Controller) SetInteraction(n int) {
	if n < 1 {
		n = 1
	}
	c.interaction = float64(n)
}

// Goal returns the current goal.
func (c *Controller) Goal() Goal { return c.goal }

// VirtualTarget returns the effective setpoint: the virtual goal for hard
// goals, the goal itself otherwise.
func (c *Controller) VirtualTarget() float64 { return c.virtualGoal }

// Pole returns the regular (safe-region) pole.
func (c *Controller) Pole() float64 { return c.pole }

// LastPole returns the pole used by the most recent Update (0 when the
// two-pole logic was in the danger region).
func (c *Controller) LastPole() float64 { return c.lastPole }

// Lambda returns the profiled stability coefficient.
func (c *Controller) Lambda() float64 { return c.lambda }

// Model returns the fitted plant model.
func (c *Controller) Model() Model { return c.model }

// LastError returns the most recent setpoint error.
func (c *Controller) LastError() float64 { return c.lastErr }

// Updates returns the number of Update calls so far.
func (c *Controller) Updates() int { return c.updates }

// SaturatedFor reports for how many consecutive updates the actuator has
// been pinned at a bound while error persisted — the signal behind the
// paper's "alerts users that the goal is unreachable".
func (c *Controller) SaturatedFor() int { return c.saturated }

// Bounds returns the actuator clamp range.
func (c *Controller) Bounds() (min, max float64) { return c.min, c.max }

func clamp(v, min, max float64) float64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}
