package core

import (
	"math"
	"testing"
)

// FuzzSynthesize drives controller synthesis with arbitrary profiles, goals,
// and actuator options. The contract under fuzzing: Synthesize either rejects
// the input with an error, or the controller it returns is well-formed — pole
// in [0,1), finite virtual goal, and a conf that stays inside the actuator
// bounds and never goes NaN no matter what finite measurements arrive.
func FuzzSynthesize(f *testing.F) {
	// HB3813-shaped: queue-size knob, ~1 MB per queued request, hard goal.
	f.Add(0.0, 500.0, 1e6, 2e8, 3e6, 4.95e8, 0.0, 5000.0, 0.0, 4.8e8, 5.2e8, true)
	// HB2149-shaped: fractional knob, soft latency goal.
	f.Add(0.1, 0.3, 18.0, 1.0, 0.4, 10.0, 0.01, 1.0, 0.5, 9.0, 14.0, false)
	// Degenerate: all settings identical (vertical profile, must be rejected).
	f.Add(50.0, 0.0, 2.0, 1.0, 0.1, 100.0, 0.0, 1000.0, 0.0, 90.0, 110.0, true)
	// Noise-free plant (Δ = 1 ⇒ deadbeat pole 0).
	f.Add(10.0, 10.0, 5.0, 0.0, 0.0, 300.0, 0.0, 0.0, 10.0, 250.0, 350.0, true)

	f.Fuzz(func(t *testing.T, s0, ds, gain, base, jitter, goal, lo, hi, initial, m1, m2 float64, hard bool) {
		var p Profile
		for i := 0; i < 4; i++ {
			set := s0 + float64(i)*ds
			sp := SettingProfile{Setting: set}
			for j := -1; j <= 1; j++ {
				sp.Samples = append(sp.Samples, base+gain*set+jitter*float64(j))
			}
			p.Settings = append(p.Settings, sp)
		}
		c, err := Synthesize(p,
			Goal{Metric: "m", Target: goal, Hard: hard},
			Options{Min: lo, Max: hi, Initial: initial})
		if err != nil {
			return // malformed input must be rejected, not mis-synthesized
		}
		if pole := c.Pole(); math.IsNaN(pole) || pole < 0 || pole >= 1 {
			t.Fatalf("pole %v outside [0,1)", pole)
		}
		if vt := c.VirtualTarget(); math.IsNaN(vt) || math.IsInf(vt, 0) {
			t.Fatalf("virtual goal %v not finite", vt)
		}
		min, max := c.Bounds()
		check := func(what string, v float64) {
			if math.IsNaN(v) {
				t.Fatalf("%s is NaN", what)
			}
			if v < min || v > max {
				t.Fatalf("%s %v outside [%v,%v]", what, v, min, max)
			}
		}
		check("initial conf", c.Conf())
		for _, m := range []float64{m1, m2, m1, m2} {
			if math.IsNaN(m) || math.IsInf(m, 0) {
				continue // sensors deliver finite measurements by contract
			}
			check("conf", c.Update(m))
			if lp := c.LastPole(); math.IsNaN(lp) || lp < 0 || lp >= 1 {
				t.Fatalf("last pole %v outside [0,1)", lp)
			}
		}
	})
}

// Regression tests for the non-finite-input guards the fuzz target exercises.

func cleanProfile() Profile {
	var p Profile
	for i := 0; i < 4; i++ {
		set := float64(i) * 100
		p.Settings = append(p.Settings, SettingProfile{
			Setting: set,
			Samples: []float64{2*set + 9, 2*set + 10, 2*set + 11},
		})
	}
	return p
}

func TestSynthesizeRejectsNonFiniteGoal(t *testing.T) {
	for _, target := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Synthesize(cleanProfile(), Goal{Target: target, Hard: true}, Options{}); err == nil {
			t.Errorf("goal target %v accepted", target)
		}
	}
}

func TestSynthesizeRejectsNaNBoundsAndInitial(t *testing.T) {
	p := cleanProfile()
	if _, err := Synthesize(p, Goal{Target: 100}, Options{Min: math.NaN(), Max: 10}); err == nil {
		t.Error("NaN min accepted")
	}
	if _, err := Synthesize(p, Goal{Target: 100}, Options{Max: math.NaN()}); err == nil {
		t.Error("NaN max accepted")
	}
	if _, err := Synthesize(p, Goal{Target: 100}, Options{Max: 10, Initial: math.Inf(1)}); err == nil {
		t.Error("non-finite initial accepted")
	}
}

// A profile whose samples poison λ (NaN variability) must fail synthesis for
// a hard goal instead of producing a NaN virtual goal: before the guard, the
// first Update would have returned a NaN conf.
func TestSynthesizeRejectsNonFiniteLambda(t *testing.T) {
	p := cleanProfile()
	p.Settings[1].Samples = []float64{math.NaN(), math.NaN(), math.NaN()}
	if _, err := Synthesize(p, Goal{Target: 100, Hard: true}, Options{Max: 1000}); err == nil {
		t.Fatal("profile with NaN samples accepted")
	}
}

// With an unbounded actuator and a near-zero plant gain, the requested step
// overflows to ±∞. The knob must saturate, not go NaN — before the guard, an
// +∞ knob corrected by a −∞ step became NaN and stuck there.
func TestUpdateSaturatesInsteadOfNaN(t *testing.T) {
	c, err := NewController(Model{Alpha: 5e-324}, 0, 0, Goal{Target: 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Update(0); !math.IsInf(v, 1) {
		t.Fatalf("expected +Inf saturation on an unbounded actuator, got %v", v)
	}
	v := c.Update(200) // error flips sign: −∞ step against a +∞ knob
	if math.IsNaN(v) {
		t.Fatal("conf went NaN on an opposing overflow step")
	}
	if !math.IsInf(v, -1) && v != 0 {
		t.Fatalf("expected saturation at the lower bound, got %v", v)
	}
}
