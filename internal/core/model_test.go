package core

import (
	"math"
	"math/rand"
	"testing"
)

func mkProfile(settings []float64, plant func(c float64) []float64) Profile {
	p := Profile{}
	for _, s := range settings {
		p.Settings = append(p.Settings, SettingProfile{Setting: s, Samples: plant(s)})
	}
	return p
}

func TestProfileFitLinearPlant(t *testing.T) {
	// memory = 2.5·queue + 100, noiseless.
	p := mkProfile([]float64{40, 80, 120, 160}, func(c float64) []float64 {
		out := make([]float64, 10)
		for i := range out {
			out[i] = 2.5*c + 100
		}
		return out
	})
	m, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-2.5) > 1e-9 || math.Abs(m.Intercept-100) > 1e-9 {
		t.Errorf("model = %v, want α=2.5 intercept=100", m)
	}
	if m.R2 < 0.999 {
		t.Errorf("R² = %v, want ≈1", m.R2)
	}
	if got := m.Predict(200); math.Abs(got-600) > 1e-9 {
		t.Errorf("Predict(200) = %v, want 600", got)
	}
}

func TestProfileFitErrors(t *testing.T) {
	if _, err := (Profile{}).Fit(); err == nil {
		t.Error("expected error on empty profile")
	}
	// Constant performance ⇒ zero slope ⇒ degenerate model.
	p := mkProfile([]float64{1, 2, 3}, func(float64) []float64 { return []float64{5, 5} })
	if _, err := p.Fit(); err == nil {
		t.Error("expected degenerate-model error for flat plant")
	}
}

func TestLambdaStableVsUnstable(t *testing.T) {
	stable := mkProfile([]float64{10, 20}, func(c float64) []float64 {
		return []float64{c, c, c, c}
	})
	if got := stable.Lambda(); got != 0 {
		t.Errorf("λ of deterministic plant = %v, want 0", got)
	}
	// Per-setting CoV = 0.2 at both settings.
	unstable := mkProfile([]float64{10, 20}, func(c float64) []float64 {
		return []float64{0.8 * c, 1.2 * c, 0.8 * c, 1.2 * c}
	})
	if got := unstable.Lambda(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("λ = %v, want 0.2", got)
	}
	if got := (Profile{}).Lambda(); got != 0 {
		t.Errorf("λ of empty profile = %v, want 0", got)
	}
}

func TestDeltaAndPole(t *testing.T) {
	// Deterministic plant: Δ = 1 (no model-error term) ⇒ pole 0 (deadbeat).
	det := mkProfile([]float64{10, 20}, func(c float64) []float64 {
		return []float64{c, c, c}
	})
	if got := det.Delta(); got != 1 {
		t.Errorf("Δ of deterministic plant = %v, want 1", got)
	}
	if got := PoleFromDelta(det.Delta()); got != 0 {
		t.Errorf("pole = %v, want 0", got)
	}

	// Noisy plant ⇒ Δ > 2 ⇒ conservative pole in (0,1).
	noisy := mkProfile([]float64{10}, func(c float64) []float64 {
		return []float64{c * 0.5, c * 1.5, c * 0.5, c * 1.5}
	})
	d := noisy.Delta()
	if d <= 2 {
		t.Fatalf("Δ = %v, want > 2 for a noisy plant", d)
	}
	p := PoleFromDelta(d)
	if p <= 0 || p >= 1 {
		t.Errorf("pole = %v, want in (0,1)", p)
	}
}

func TestPoleFromDeltaBoundary(t *testing.T) {
	cases := []struct {
		delta float64
		want  float64
	}{
		{1, 0},
		{2, 0},
		{4, 0.5},
		{8, 0.75},
	}
	for _, c := range cases {
		if got := PoleFromDelta(c.delta); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PoleFromDelta(%v) = %v, want %v", c.delta, got, c.want)
		}
	}
}

func TestVirtualGoal(t *testing.T) {
	if got := VirtualGoal(1000, 0.1, UpperBound); math.Abs(got-900) > 1e-9 {
		t.Errorf("upper virtual goal = %v, want 900", got)
	}
	if got := VirtualGoal(1000, 0.1, LowerBound); math.Abs(got-1100) > 1e-9 {
		t.Errorf("lower virtual goal = %v, want 1100", got)
	}
	// λ clamped so the margin never exceeds 95%.
	if got := VirtualGoal(1000, 2.0, UpperBound); math.Abs(got-50) > 1e-9 {
		t.Errorf("clamped virtual goal = %v, want 50", got)
	}
	if got := VirtualGoal(1000, -1, UpperBound); got != 1000 {
		t.Errorf("negative λ clamped: got %v, want 1000", got)
	}
}

func TestCollector(t *testing.T) {
	col := NewCollector()
	col.Record(10, 1)
	col.Record(20, 2)
	col.Record(10, 3)
	if col.Len() != 3 {
		t.Fatalf("Len = %d, want 3", col.Len())
	}
	p := col.Profile()
	if len(p.Settings) != 2 {
		t.Fatalf("settings = %d, want 2", len(p.Settings))
	}
	if p.Settings[0].Setting != 10 || len(p.Settings[0].Samples) != 2 {
		t.Errorf("setting[0] = %+v", p.Settings[0])
	}
	if p.Settings[1].Setting != 20 || p.Settings[1].Samples[0] != 2 {
		t.Errorf("setting[1] = %+v", p.Settings[1])
	}
	if p.TotalSamples() != 3 {
		t.Errorf("TotalSamples = %d, want 3", p.TotalSamples())
	}
	col.Reset()
	if col.Len() != 0 {
		t.Errorf("after Reset Len = %d", col.Len())
	}
}

func TestPlanRun(t *testing.T) {
	plan := DefaultPlan(0, 30, 4)
	if len(plan.Settings) != 4 || plan.Settings[0] != 0 || plan.Settings[3] != 30 {
		t.Fatalf("plan settings = %v", plan.Settings)
	}
	calls := 0
	p, err := plan.Run(func(setting float64) (float64, error) {
		calls++
		return 2 * setting, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 40 {
		t.Errorf("measure calls = %d, want 40 (4 settings × 10 samples)", calls)
	}
	m, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-2) > 1e-9 {
		t.Errorf("α = %v, want 2", m.Alpha)
	}
}

func TestPlanRunPropagatesError(t *testing.T) {
	plan := Plan{Settings: []float64{1}, SamplesPerStep: 1}
	if _, err := plan.Run(func(float64) (float64, error) {
		return 0, ErrEmptyProfile
	}); err == nil {
		t.Error("expected measure error to propagate")
	}
	if _, err := (Plan{}).Run(nil); err == nil {
		t.Error("expected error on empty plan")
	}
}

func TestDefaultPlanMinimumSettings(t *testing.T) {
	plan := DefaultPlan(0, 10, 1)
	if len(plan.Settings) != 2 {
		t.Errorf("settings = %v, want 2 entries", plan.Settings)
	}
}

// TestVirtualGoalSafeSideProbability verifies the §5.6 footnote numerically:
// placing the virtual goal one λ-width (≈1σ when operating near the goal's
// scale) below a no-overshoot goal leaves ≈84% of steady-state samples on
// the safe side under Gaussian disturbance (one-sided 1σ bound).
func TestVirtualGoalSafeSideProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	const (
		alpha      = 2.0
		goal       = 1000.0
		noiseSigma = 60.0
	)
	plant := func(c float64) float64 { return alpha*c + rng.NormFloat64()*noiseSigma }

	// Profile exactly as SmartConf would: 4 settings × 10 samples near the
	// operating region so mᵢ ≈ goal and λ ≈ σ/goal.
	col := NewCollector()
	for _, s := range []float64{380, 430, 480, 530} {
		for i := 0; i < 10; i++ {
			col.Record(s, plant(s))
		}
	}
	profile := col.Profile()
	ctrl, err := Synthesize(profile, Goal{Target: goal, Hard: true}, Options{Initial: 0, Max: 1e9})
	if err != nil {
		t.Fatal(err)
	}

	// Drive to steady state, then measure the overshoot rate.
	c := ctrl.Conf()
	for i := 0; i < 500; i++ {
		c = ctrl.Update(plant(c))
	}
	overshoots := 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		s := plant(c)
		if s > goal {
			overshoots++
		}
		c = ctrl.Update(s)
	}
	safe := 1 - float64(overshoots)/samples
	// The paper's analytic bound is 84% (one-sided 1σ), derived as if the
	// steady state sat exactly at the virtual goal with only the profiled
	// measurement noise. The CLOSED LOOP adds variance — the controller
	// chases each noise sample, so the output wiggles more than the raw
	// noise — which shaves a few points off. We measure ≈0.80 here and
	// assert a band around it; the finding (the analytic bound is mildly
	// optimistic) is documented in EXPERIMENTS.md.
	if safe < 0.75 {
		t.Errorf("safe-side rate %.3f far below the paper's 84%% claim", safe)
	}
	if safe > 0.995 {
		t.Errorf("safe-side rate %.3f implausibly high — is the noise wired in?", safe)
	}
	t.Logf("safe-side rate %.3f vs the paper's analytic 84%% (λ=%.3f, virtual goal %.0f)",
		safe, profile.Lambda(), ctrl.VirtualTarget())
}
