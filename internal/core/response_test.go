package core

import (
	"testing"
	"time"
)

func freshController(t *testing.T, pole float64) *Controller {
	t.Helper()
	ctrl, err := NewController(Model{Alpha: 2}, pole, 0,
		Goal{Target: 400}, Options{Initial: 0, Max: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestSimulateStepDeadbeat(t *testing.T) {
	// Exact model, pole 0: settle in one step, no overshoot, zero error.
	r := SimulateStep(freshController(t, 0), 2, 0, 50)
	if !r.Settled || r.SettlingSteps > 1 {
		t.Errorf("deadbeat response: %+v", r)
	}
	if r.Overshoot != 0 || r.SteadyStateError > 1e-9 {
		t.Errorf("deadbeat quality: %+v", r)
	}
}

func TestSettlingTimeMonotoneInPole(t *testing.T) {
	// Slower poles settle later — the quantitative cost §5.1's rule trades
	// against stability margin.
	prev := -1
	for _, pole := range []float64{0, 0.5, 0.9} {
		r := SimulateStep(freshController(t, pole), 2, 0, 500)
		if !r.Settled {
			t.Fatalf("pole %v never settled", pole)
		}
		if r.SettlingSteps < prev {
			t.Errorf("pole %v settled in %d steps, faster than a smaller pole (%d)",
				pole, r.SettlingSteps, prev)
		}
		prev = r.SettlingSteps
		if r.Overshoot > 0 {
			t.Errorf("pole %v overshot by %v with an exact model", pole, r.Overshoot)
		}
	}
}

func TestSimulateStepModelErrorOvershoots(t *testing.T) {
	// Model α=2 but the true plant gain is 5: a deadbeat step is 2.5× too
	// big, so the loop must overshoot (and the §5.1 pole rule exists to
	// absorb exactly this).
	ctrl := freshController(t, 0)
	r := SimulateStep(ctrl, 5, 0, 200)
	if r.Overshoot == 0 {
		t.Error("2.5× model error with deadbeat should overshoot")
	}
	// A conservative pole absorbs the same model error.
	calm := SimulateStep(freshController(t, 0.7), 5, 0, 500)
	if calm.Overshoot >= r.Overshoot {
		t.Errorf("pole 0.7 overshoot %v not below deadbeat %v", calm.Overshoot, r.Overshoot)
	}
}

func TestSettlingTimeHelper(t *testing.T) {
	r := StepResponse{Settled: true, SettlingSteps: 7}
	if got := r.SettlingTime(2 * time.Second); got != 14*time.Second {
		t.Errorf("SettlingTime = %v", got)
	}
	if got := (StepResponse{}).SettlingTime(time.Second); got != -1 {
		t.Errorf("unsettled SettlingTime = %v, want -1", got)
	}
}

func TestSimulateStepLowerBound(t *testing.T) {
	ctrl, err := NewController(Model{Alpha: 3}, 0.3, 0,
		Goal{Target: 300, Bound: LowerBound}, Options{Initial: 200, Max: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	r := SimulateStep(ctrl, 3, 0, 300)
	if !r.Settled {
		t.Errorf("lower-bound loop never settled: %+v", r)
	}
}

func TestSimulateStepZeroSetpoint(t *testing.T) {
	ctrl, err := NewController(Model{Alpha: 1}, 0, 0, Goal{Target: 0}, Options{Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r := SimulateStep(ctrl, 1, 0, 10); r.Settled {
		t.Errorf("zero setpoint should short-circuit: %+v", r)
	}
}
