package core

import (
	"strings"
	"testing"
)

func diagCodes(ds []Diagnosis) map[DiagnosisCode]bool {
	m := map[DiagnosisCode]bool{}
	for _, d := range ds {
		m[d.Code] = true
	}
	return m
}

func TestDiagnoseCleanProfile(t *testing.T) {
	p := mkProfile([]float64{10, 20, 30, 40}, func(c float64) []float64 {
		return []float64{2 * c, 2*c + 1, 2*c - 1}
	})
	if ds := p.Diagnose(); len(ds) != 0 {
		t.Errorf("clean profile diagnosed: %v", ds)
	}
}

func TestDiagnoseNonMonotonic(t *testing.T) {
	// A U-shaped plant — the paper's MR5420 example (§6.6).
	p := mkProfile([]float64{1, 2, 3, 4}, func(c float64) []float64 {
		v := (c - 2.5) * (c - 2.5) * 10
		return []float64{v, v, v}
	})
	codes := diagCodes(p.Diagnose())
	if !codes[NonMonotonic] {
		t.Error("U-shaped plant not flagged as non-monotonic")
	}
}

func TestDiagnoseFewSettingsAndSamples(t *testing.T) {
	p := mkProfile([]float64{1, 2}, func(c float64) []float64 {
		return []float64{c, c}
	})
	codes := diagCodes(p.Diagnose())
	if !codes[FewSettings] || !codes[FewSamples] {
		t.Errorf("sparse profile diagnoses: %v", p.Diagnose())
	}
}

func TestDiagnoseWeakFit(t *testing.T) {
	// Performance independent of the setting but noisy: slope ≈ 0-ish with
	// terrible R².
	vals := [][]float64{
		{100, 180, 120, 160},
		{170, 110, 150, 130},
		{140, 160, 100, 180},
	}
	i := 0
	p := mkProfile([]float64{10, 20, 30}, func(float64) []float64 {
		v := vals[i%len(vals)]
		i++
		return v
	})
	codes := diagCodes(p.Diagnose())
	if !codes[WeakFit] {
		t.Errorf("noise-dominated profile not flagged: %v", p.Diagnose())
	}
}

func TestDiagnosisStringers(t *testing.T) {
	d := Diagnosis{NonMonotonic, "detail"}
	if !strings.Contains(d.String(), "non-monotonic") {
		t.Errorf("String = %q", d.String())
	}
	if !strings.Contains(DiagnosisCode(99).String(), "99") {
		t.Error("out-of-range code stringer")
	}
	for c := NonMonotonic; c <= FewSamples; c++ {
		if strings.Contains(c.String(), "DiagnosisCode") {
			t.Errorf("missing name for code %d", int(c))
		}
	}
}
