package core

import (
	"fmt"
	"math"

	"smartconf/internal/declog"
)

// ClassifyClamp names what the actuator clamp did to a raw Eq. 2 output
// against the bounds [min, max]: nothing, a floor, a ceiling, or a rescue
// from a non-finite value. It is the single classification used both by the
// controller's saturation alert and by every decision-log record, so the
// diagnosis a developer reads matches the clamp the replay tool re-executes.
func ClassifyClamp(raw, min, max float64) declog.ClampReason {
	switch {
	case math.IsNaN(raw):
		return declog.ClampNonFinite
	case raw < min:
		return declog.ClampMin
	case raw > max:
		return declog.ClampMax
	}
	return declog.ClampNone
}

// Diagnosis is a warning about profiling data that predicts a poorly
// behaved controller. SmartConf still synthesizes (the controller is robust
// to moderate model error), but §6.6 of the paper is explicit that some
// plants are out of scope — non-monotonic knob→metric relationships most of
// all — and those should be surfaced to the developer, not discovered in
// production.
type Diagnosis struct {
	// Code identifies the warning class.
	Code DiagnosisCode
	// Detail is a human-readable explanation.
	Detail string
}

// DiagnosisCode enumerates the warning classes.
type DiagnosisCode int

const (
	// NonMonotonic: per-setting mean performance is not monotone in the
	// setting. The paper (§6.6, the MR5420 discussion) calls this out as the
	// case SmartConf fundamentally does not fit — a linear model cannot
	// represent a U-shaped plant, and the controller may push the knob the
	// wrong way on one side of the optimum.
	NonMonotonic DiagnosisCode = iota
	// WeakFit: the linear model explains little of the variance (low R²) —
	// the slope may be dominated by noise.
	WeakFit
	// FewSettings: fewer than three distinct settings were profiled, so
	// monotonicity and linearity cannot be judged at all.
	FewSettings
	// FewSamples: some setting has fewer than three measurements, so its
	// variance (and thus λ and the pole) is poorly estimated.
	FewSamples
)

func (c DiagnosisCode) String() string {
	switch c {
	case NonMonotonic:
		return "non-monotonic"
	case WeakFit:
		return "weak-fit"
	case FewSettings:
		return "few-settings"
	case FewSamples:
		return "few-samples"
	}
	return fmt.Sprintf("DiagnosisCode(%d)", int(c))
}

func (d Diagnosis) String() string {
	return fmt.Sprintf("%s: %s", d.Code, d.Detail)
}

// Diagnose inspects a profile for the §6.6 hazards. An empty result means
// the data looks like a plant SmartConf is designed for; warnings are
// advisory (synthesis proceeds either way).
func (p Profile) Diagnose() []Diagnosis {
	var out []Diagnosis

	if len(p.Settings) < 3 {
		out = append(out, Diagnosis{FewSettings, fmt.Sprintf(
			"only %d distinct settings profiled; monotonicity cannot be judged (profile ≥3)", len(p.Settings))})
	}
	for _, s := range p.Settings {
		if len(s.Samples) < 3 {
			out = append(out, Diagnosis{FewSamples, fmt.Sprintf(
				"setting %g has only %d measurements; variance (λ, pole) is poorly estimated", s.Setting, len(s.Samples))})
			break
		}
	}

	// Monotonicity of per-setting means (Settings are sorted by Collector;
	// trust the order given here).
	if len(p.Settings) >= 3 {
		means := make([]float64, len(p.Settings))
		for i, s := range p.Settings {
			var sum float64
			for _, v := range s.Samples {
				sum += v
			}
			means[i] = sum / float64(len(s.Samples))
		}
		up, down := false, false
		for i := 1; i < len(means); i++ {
			switch {
			case means[i] > means[i-1]:
				up = true
			case means[i] < means[i-1]:
				down = true
			}
		}
		if up && down {
			out = append(out, Diagnosis{NonMonotonic,
				"per-setting mean performance rises and falls across the profiled range; " +
					"SmartConf's linear model does not fit such plants (paper §6.6) — " +
					"consider a learning-based tuner instead"})
		}
	}

	if m, err := p.Fit(); err == nil && m.R2 < 0.1 {
		out = append(out, Diagnosis{WeakFit, fmt.Sprintf(
			"linear fit explains only %.0f%% of the variance; the slope may be noise-driven", 100*m.R2)})
	}
	return out
}
