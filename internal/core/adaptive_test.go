package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdaptiveModelConvergesToTrueSlope(t *testing.T) {
	init := Model{Alpha: 1, Intercept: 0}
	m := NewAdaptiveModel(init, 0.98)
	rng := rand.New(rand.NewSource(1))
	trueAlpha, trueBeta := 2.5, 40.0
	for i := 0; i < 500; i++ {
		c := 10 + rng.Float64()*100
		m.Observe(c, trueAlpha*c+trueBeta+rng.NormFloat64()*0.5)
	}
	if got := m.Alpha(); math.Abs(got-trueAlpha) > 0.1 {
		t.Errorf("α = %v, want ≈%v", got, trueAlpha)
	}
	if got := m.Intercept(); math.Abs(got-trueBeta) > 5 {
		t.Errorf("β = %v, want ≈%v", got, trueBeta)
	}
	if m.Samples() != 500 {
		t.Errorf("samples = %d", m.Samples())
	}
}

func TestAdaptiveModelTracksDrift(t *testing.T) {
	// The HB3813 story: the true gain doubles mid-run (1MB → 2MB requests).
	m := NewAdaptiveModel(Model{Alpha: 1}, 0.95)
	rng := rand.New(rand.NewSource(2))
	feed := func(alpha float64, n int) {
		for i := 0; i < n; i++ {
			c := 20 + rng.Float64()*80
			m.Observe(c, alpha*c+rng.NormFloat64()*0.2)
		}
	}
	feed(1.0, 300)
	if got := m.Alpha(); math.Abs(got-1.0) > 0.05 {
		t.Fatalf("pre-drift α = %v", got)
	}
	feed(2.0, 300)
	if got := m.Alpha(); math.Abs(got-2.0) > 0.1 {
		t.Errorf("post-drift α = %v, want ≈2", got)
	}
}

func TestAdaptiveModelClampsRunawayEstimates(t *testing.T) {
	m := NewAdaptiveModel(Model{Alpha: 1}, 0.9)
	// Pathological data trying to flip the sign.
	for i := 0; i < 200; i++ {
		m.Observe(float64(i+1), -100*float64(i+1))
	}
	if got := m.Alpha(); got <= 0 {
		t.Errorf("α = %v; sign must not flip", got)
	}
	if got := m.Alpha(); got < 1.0/8-1e-9 {
		t.Errorf("α = %v below the clamp floor", got)
	}
	// And magnitude is capped above.
	m2 := NewAdaptiveModel(Model{Alpha: 1}, 0.9)
	for i := 0; i < 200; i++ {
		m2.Observe(float64(i+1), 1e6*float64(i+1))
	}
	if got := m2.Alpha(); got > 8+1e-9 {
		t.Errorf("α = %v above the clamp ceiling", got)
	}
}

func TestAdaptiveModelIgnoresNonFiniteSamples(t *testing.T) {
	m := NewAdaptiveModel(Model{Alpha: 2}, 0.98)
	m.Observe(math.NaN(), 1)
	m.Observe(1, math.Inf(1))
	if m.Samples() != 0 {
		t.Errorf("non-finite samples were absorbed: %d", m.Samples())
	}
	if m.Alpha() != 2 {
		t.Errorf("α drifted to %v with no valid samples", m.Alpha())
	}
}

func TestNewAdaptiveModelDefaults(t *testing.T) {
	m := NewAdaptiveModel(Model{Alpha: 0, Intercept: 0}, -1)
	if m.forget != DefaultForgetting {
		t.Errorf("forget = %v", m.forget)
	}
	// Zero-valued init must still leave a usable covariance.
	m.Observe(1, 3)
	if m.Samples() != 1 {
		t.Error("observation rejected")
	}
}

func TestControllerWithAdaptationRecoversFromModelError(t *testing.T) {
	// Profile said α=1; the real plant has α=3. A fixed-model deadbeat
	// controller rings (its steps are 3× too large); the adaptive one
	// converges cleanly.
	run := func(adaptive bool) (ring float64) {
		ctrl, err := NewController(Model{Alpha: 1}, 0, 0, Goal{Target: 300}, Options{Max: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		if adaptive {
			ctrl.EnableAdaptation(0.98)
		}
		c := ctrl.Conf()
		var prev float64
		for i := 0; i < 60; i++ {
			s := 3 * c
			if i > 30 { // measure ringing amplitude late in the run
				ring += math.Abs(s - prev)
			}
			prev = s
			c = ctrl.Update(s)
		}
		return ring
	}
	fixed, adaptive := run(false), run(true)
	if adaptive >= fixed {
		t.Errorf("adaptive ringing %v should be below fixed-model ringing %v", adaptive, fixed)
	}
	// Sanity on accessors.
	ctrl, _ := NewController(Model{Alpha: 1}, 0, 0, Goal{Target: 1}, Options{Max: 10})
	if ctrl.AdaptiveAlpha() != 1 {
		t.Error("AdaptiveAlpha without adaptation should return the model slope")
	}
	ctrl.EnableAdaptation(0)
	if ctrl.AdaptiveAlpha() != 1 {
		t.Error("fresh adaptive slope should equal the seed")
	}
}

// Property: RLS with clean data never produces non-finite estimates.
func TestAdaptiveModelFiniteProperty(t *testing.T) {
	f := func(seed int64, alphaSeed, betaSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.1 + float64(alphaSeed)/32
		beta := float64(betaSeed)
		m := NewAdaptiveModel(Model{Alpha: alpha, Intercept: beta}, 0.97)
		for i := 0; i < 200; i++ {
			c := rng.Float64() * 1000
			m.Observe(c, alpha*c+beta+rng.NormFloat64())
			if math.IsNaN(m.Alpha()) || math.IsInf(m.Alpha(), 0) ||
				math.IsNaN(m.Intercept()) || math.IsInf(m.Intercept(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
