package core

import (
	"fmt"
	"sort"
)

// Plan describes a profiling campaign: which configuration settings to pin
// and how many measurements to take at each. The paper's default plan tries
// 4 settings spread over the valid range and collects 10 measurements per
// setting (40 samples — enough for the linear-regression rule of thumb).
type Plan struct {
	Settings       []float64
	SamplesPerStep int
}

// DefaultPlan spreads n settings evenly over [min, max] with the paper's
// default of 10 samples per setting. n < 2 is raised to 2.
func DefaultPlan(min, max float64, n int) Plan {
	if n < 2 {
		n = 2
	}
	settings := make([]float64, n)
	step := (max - min) / float64(n-1)
	for i := range settings {
		settings[i] = min + float64(i)*step
	}
	return Plan{Settings: settings, SamplesPerStep: 10}
}

// Collector accumulates (setting, measurement) pairs during a profiling run
// and assembles them into a Profile. It tolerates out-of-order and
// interleaved settings: samples are grouped by exact setting value.
type Collector struct {
	bySetting map[float64][]float64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{bySetting: make(map[float64][]float64)}
}

// Record stores one performance measurement taken while the configuration
// (or, for indirect configurations, the deputy variable) held the given value.
func (c *Collector) Record(setting, measurement float64) {
	c.bySetting[setting] = append(c.bySetting[setting], measurement)
}

// Len reports the total number of recorded samples.
func (c *Collector) Len() int {
	n := 0
	for _, s := range c.bySetting {
		n += len(s)
	}
	return n
}

// Profile assembles the recorded samples, ordered by setting value.
func (c *Collector) Profile() Profile {
	settings := make([]float64, 0, len(c.bySetting))
	for s := range c.bySetting {
		settings = append(settings, s)
	}
	sort.Float64s(settings)
	p := Profile{Settings: make([]SettingProfile, 0, len(settings))}
	for _, s := range settings {
		samples := append([]float64(nil), c.bySetting[s]...)
		p.Settings = append(p.Settings, SettingProfile{Setting: s, Samples: samples})
	}
	return p
}

// Reset discards all recorded samples.
func (c *Collector) Reset() {
	c.bySetting = make(map[float64][]float64)
}

// Run executes a profiling plan against a plant: for each planned setting it
// calls measure(setting) SamplesPerStep times and records the results.
// measure is expected to apply the setting to the system, let it settle, and
// return one performance observation.
func (p Plan) Run(measure func(setting float64) (float64, error)) (Profile, error) {
	if len(p.Settings) == 0 {
		return Profile{}, ErrEmptyProfile
	}
	samples := p.SamplesPerStep
	if samples <= 0 {
		samples = 10
	}
	col := NewCollector()
	for _, s := range p.Settings {
		for i := 0; i < samples; i++ {
			m, err := measure(s)
			if err != nil {
				return Profile{}, fmt.Errorf("core: profiling setting %v sample %d: %w", s, i, err)
			}
			col.Record(s, m)
		}
	}
	return col.Profile(), nil
}
