package core

import (
	"math"
	"time"
)

// StepResponse summarizes a closed-loop simulation of a controller against
// a linear plant — the classical control-engineering view (settling time,
// overshoot, steady-state error) used by tests and ablations to compare
// pole choices quantitatively rather than anecdotally.
type StepResponse struct {
	// Settled reports whether the loop reached the 2% band at all.
	Settled bool
	// SettlingSteps is the first step after which the measurement stayed
	// within ±2% of the setpoint.
	SettlingSteps int
	// Overshoot is the worst excursion past the setpoint, as a fraction of
	// the setpoint (0 = none).
	Overshoot float64
	// SteadyStateError is |setpoint − final measurement| / setpoint.
	SteadyStateError float64
}

// SimulateStep closes the loop between ctrl and the plant s = alpha·c + beta
// for steps iterations and reports the classical step-response metrics
// against the controller's effective setpoint (the virtual goal for hard
// goals). The controller's state advances — pass a fresh controller.
func SimulateStep(ctrl *Controller, alpha, beta float64, steps int) StepResponse {
	setpoint := ctrl.VirtualTarget()
	if setpoint == 0 {
		return StepResponse{}
	}
	band := 0.02 * math.Abs(setpoint)

	resp := StepResponse{SettlingSteps: -1}
	c := ctrl.Conf()
	settledAt := -1
	var last float64
	for k := 0; k < steps; k++ {
		s := alpha*c + beta
		last = s

		if over := exceedance(ctrl.Goal().Bound, s, setpoint); over > resp.Overshoot {
			resp.Overshoot = over / math.Abs(setpoint)
		}
		if math.Abs(s-setpoint) <= band {
			if settledAt < 0 {
				settledAt = k
			}
		} else {
			settledAt = -1
		}
		c = ctrl.Update(s)
	}
	if settledAt >= 0 {
		resp.Settled = true
		resp.SettlingSteps = settledAt
	}
	resp.SteadyStateError = math.Abs(last-setpoint) / math.Abs(setpoint)
	return resp
}

// exceedance returns how far s goes past the setpoint on the dangerous side
// (0 when it does not).
func exceedance(b Bound, s, setpoint float64) float64 {
	if b == LowerBound {
		if s < setpoint {
			return setpoint - s
		}
		return 0
	}
	if s > setpoint {
		return s - setpoint
	}
	return 0
}

// SettlingTime converts a step count into virtual time given the loop's
// sampling period.
func (r StepResponse) SettlingTime(period time.Duration) time.Duration {
	if !r.Settled {
		return -1
	}
	return time.Duration(r.SettlingSteps) * period
}
