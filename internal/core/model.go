// Package core implements the paper's primary contribution: automatic
// synthesis of per-configuration feedback controllers for
// performance-sensitive configurations (PerfConfs).
//
// The design follows §5 of "Understanding and Auto-Adjusting
// Performance-Sensitive Configurations" (ASPLOS'18):
//
//   - Eq. 1: a first-order linear plant model s_k = α·c_{k−1} fitted from
//     profiling samples (Model, Fit).
//   - Eq. 2: the deadbeat-family update law
//     c_{k+1} = c_k + (1−p)/α · e_{k+1} (Controller.Update).
//   - §5.1: the pole p is derived automatically from profiling variability
//     (Profile.Delta, PoleFromDelta) so users never tune control parameters.
//   - §5.2: hard goals get a virtual goal s_v = (1−λ)·s and context-aware
//     two-pole switching (regular pole in the safe region, pole 0 beyond the
//     virtual goal).
//   - §5.4: configurations sharing a super-hard goal split the error through
//     an interaction factor N.
//
// The package is deliberately free of I/O and clocks: it is pure control
// mathematics, driven by whoever owns the sensor (the public smartconf
// package, the simulator, or a test).
package core

import (
	"errors"
	"fmt"
	"math"

	"smartconf/internal/stat"
)

// Model is the fitted plant model of Eq. 1: performance = Alpha·conf
// (+ Intercept). Only Alpha enters the update law — the incremental form of
// Eq. 2 cancels constant offsets — but the intercept is kept for prediction
// and diagnostics.
type Model struct {
	Alpha     float64
	Intercept float64
	R2        float64
}

// ErrDegenerateModel is returned when profiling data cannot identify a
// usable plant (zero or non-finite slope).
var ErrDegenerateModel = errors.New("core: degenerate plant model (zero or non-finite slope)")

// Valid reports whether the model can drive a controller.
func (m Model) Valid() bool {
	return m.Alpha != 0 && !math.IsNaN(m.Alpha) && !math.IsInf(m.Alpha, 0)
}

// Predict evaluates the model at configuration value c.
func (m Model) Predict(c float64) float64 {
	return m.Alpha*c + m.Intercept
}

func (m Model) String() string {
	return fmt.Sprintf("s = %.6g·c %+.6g (R²=%.3f)", m.Alpha, m.Intercept, m.R2)
}

// SettingProfile is the set of performance measurements collected while the
// configuration was pinned at one sampled value. The paper's default
// profiling plan collects 10 measurements at each of 4 settings.
type SettingProfile struct {
	Setting float64
	Samples []float64
}

// Profile is a complete profiling run: one SettingProfile per sampled
// configuration value.
type Profile struct {
	Settings []SettingProfile
}

// ErrEmptyProfile is returned when synthesis is attempted with no samples.
var ErrEmptyProfile = errors.New("core: empty profile")

// TotalSamples reports the number of individual measurements in the profile.
func (p Profile) TotalSamples() int {
	n := 0
	for _, s := range p.Settings {
		n += len(s.Samples)
	}
	return n
}

// Fit performs least squares of all (setting, sample) pairs, yielding the
// Eq. 1 plant model. An intercept is fitted so plants with a constant base
// component (e.g. memory = α·queueSize + base) are modelled faithfully.
func (p Profile) Fit() (Model, error) {
	var xs, ys []float64
	for _, s := range p.Settings {
		for _, y := range s.Samples {
			xs = append(xs, s.Setting)
			ys = append(ys, y)
		}
	}
	if len(xs) == 0 {
		return Model{}, ErrEmptyProfile
	}
	fit, err := stat.LinearFit(xs, ys)
	if err != nil {
		return Model{}, fmt.Errorf("core: fitting plant model: %w", err)
	}
	m := Model{Alpha: fit.Slope, Intercept: fit.Intercept, R2: fit.R2}
	if !m.Valid() {
		return m, ErrDegenerateModel
	}
	return m, nil
}

// Lambda is the system-stability coefficient of §5.2:
//
//	λ = (1/N) · Σ σᵢ/mᵢ
//
// the coefficient of variation of the measurements averaged over the N
// profiled settings. Larger λ ⇒ less stable plant ⇒ virtual goal placed
// further from the real constraint.
func (p Profile) Lambda() float64 {
	if len(p.Settings) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, s := range p.Settings {
		if len(s.Samples) == 0 {
			continue
		}
		sum += stat.CoV(s.Samples)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Delta is the model-error tolerance of §5.1:
//
//	Δ = 1 + (1/N) · Σ 3σᵢ/mᵢ′
//
// where mᵢ′ is the mean of the measurements under setting i taken w.r.t. the
// minimum performance observed under that setting (mᵢ′ = mᵢ − minᵢ). When
// the floor-relative mean vanishes (near-deterministic samples) the term
// degrades gracefully: zero σ contributes zero; otherwise the raw mean is
// used as the denominator.
func (p Profile) Delta() float64 {
	if len(p.Settings) == 0 {
		return 1
	}
	var sum float64
	n := 0
	for _, s := range p.Settings {
		if len(s.Samples) == 0 {
			continue
		}
		sigma := stat.StdDev(s.Samples)
		mean := stat.Mean(s.Samples)
		floorMean := mean - stat.Min(s.Samples)
		var term float64
		switch {
		case sigma == 0:
			term = 0
		case floorMean > 1e-12:
			term = 3 * sigma / floorMean
		case math.Abs(mean) > 1e-12:
			term = 3 * sigma / math.Abs(mean)
		default:
			term = 0
		}
		sum += term
		n++
	}
	if n == 0 {
		return 1
	}
	return 1 + sum/float64(n)
}

// PoleFromDelta applies the §5.1 rule: p = 1 − 2/Δ when Δ > 2, else 0.
// The result is always in [0, 1), guaranteeing closed-loop stability as long
// as the true model error stays within Δ.
func PoleFromDelta(delta float64) float64 {
	if delta > 2 {
		return 1 - 2/delta
	}
	return 0
}

// VirtualGoal applies the §5.2 rule s_v = (1−λ)·goal for upper-bound goals
// and the mirror form (1+λ)·goal for lower-bound goals, clamping λ into
// [0, 0.95] so a wildly unstable profile cannot produce a degenerate (zero
// or negative) safety margin.
func VirtualGoal(goal, lambda float64, bound Bound) float64 {
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 0.95 {
		lambda = 0.95
	}
	if bound == LowerBound {
		return (1 + lambda) * goal
	}
	return (1 - lambda) * goal
}
