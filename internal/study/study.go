// Package study encodes the paper's empirical study (§2) of
// performance-sensitive configurations (PerfConfs) across Cassandra, HBase,
// HDFS and Hadoop MapReduce: 80 issue-tracker patches and 54 StackOverflow
// posts, categorized along the dimensions the paper reports.
//
// The authors did not publish their raw issue spreadsheet, so the individual
// records here are SYNTHESIZED: attributes are assigned deterministically so
// that every aggregate the paper prints (Tables 2, 3, 4 and 5, and the §2.2.1
// post statistics) is matched exactly, while each table is still COMPUTED by
// aggregating per-record data rather than hardcoded. The six issues the
// evaluation reproduces (CA6059, HB2149, HB3813, HB6728, HD4995, MR2820)
// appear with their true attributes.
package study

import "fmt"

// System identifies one of the four studied systems.
type System int

const (
	Cassandra System = iota
	HBase
	HDFS
	MapReduce
	numSystems
)

// Systems lists all studied systems in the paper's column order.
func Systems() []System { return []System{Cassandra, HBase, HDFS, MapReduce} }

func (s System) String() string {
	switch s {
	case Cassandra:
		return "Cassandra"
	case HBase:
		return "HBase"
	case HDFS:
		return "HDFS"
	case MapReduce:
		return "MapReduce"
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// Abbrev returns the paper's two-letter system code.
func (s System) Abbrev() string {
	switch s {
	case Cassandra:
		return "CA"
	case HBase:
		return "HB"
	case HDFS:
		return "HD"
	case MapReduce:
		return "MR"
	}
	return "??"
}

// PatchCategory is the Table 3 taxonomy of PerfConf patches.
type PatchCategory int

const (
	// TuneNewFunctionality adds a configuration to tune a new feature.
	TuneNewFunctionality PatchCategory = iota
	// ReplaceHardCoded makes a hard-coded constant configurable.
	ReplaceHardCoded
	// RefineExisting splits or reshapes an existing configuration.
	RefineExisting
	// FixPoorDefault changes a default value that caused performance issues.
	FixPoorDefault
	numCategories
)

func (c PatchCategory) String() string {
	switch c {
	case TuneNewFunctionality:
		return "Tune a new functionality"
	case ReplaceHardCoded:
		return "Replace hard-coded data"
	case RefineExisting:
		return "Refine an existing conf."
	case FixPoorDefault:
		return "Fix a poor default value"
	}
	return fmt.Sprintf("PatchCategory(%d)", int(c))
}

// Metric is the Table 4 taxonomy of affected performance metrics. One
// PerfConf can affect several.
type Metric int

const (
	// Latency is user-request latency.
	Latency Metric = iota
	// Throughput is internal job throughput.
	Throughput
	// MemoryDisk is memory or disk consumption (the OOM/OOD class).
	MemoryDisk
	numMetrics
)

func (m Metric) String() string {
	switch m {
	case Latency:
		return "User-Request Latency"
	case Throughput:
		return "Internal Job Throughput"
	case MemoryDisk:
		return "Memory/Disk Consumption"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// VarType is the Table 5 configuration-variable taxonomy.
type VarType int

const (
	// Integer configurations (queue sizes, file counts, byte limits).
	Integer VarType = iota
	// Float configurations (ratios, watermark fractions).
	Float
	// NonNumerical configurations (booleans/enums toggling optimizations).
	NonNumerical
	numVarTypes
)

func (v VarType) String() string {
	switch v {
	case Integer:
		return "Integer"
	case Float:
		return "Floating Points"
	case NonNumerical:
		return "Non-Numerical"
	}
	return fmt.Sprintf("VarType(%d)", int(v))
}

// Factor is the Table 5 deciding-factor taxonomy: what information a proper
// setting depends on.
type Factor int

const (
	// StaticSystem settings depend only on static system features
	// (e.g. 8 × number_of_cpu_cores).
	StaticSystem Factor = iota
	// StaticWorkload settings depend on workload features known at launch
	// (e.g. input file size).
	StaticWorkload
	// Dynamic settings depend on run-time workload/environment dynamics —
	// the ~90% majority that motivates SmartConf.
	Dynamic
	numFactors
)

func (f Factor) String() string {
	switch f {
	case StaticSystem:
		return "Static system settings"
	case StaticWorkload:
		return "Static workload characteristics"
	case Dynamic:
		return "Dynamic factors"
	}
	return fmt.Sprintf("Factor(%d)", int(f))
}

// Issue is one categorized PerfConf patch.
type Issue struct {
	ID          string
	System      System
	Title       string
	Category    PatchCategory
	Metrics     []Metric
	Conditional bool // vs always-on impact
	Indirect    bool // vs direct impact
	VarType     VarType
	Factor      Factor
}

// Affects reports whether the issue's configuration affects metric m.
func (i Issue) Affects(m Metric) bool {
	for _, x := range i.Metrics {
		if x == m {
			return true
		}
	}
	return false
}

// Post is one categorized StackOverflow post about a PerfConf.
type Post struct {
	ID     string
	System System
	// AsksHowToSet: the ~40% of posts where the user simply does not
	// understand how to set a configuration (vs asking how to improve
	// performance / avoid OOM).
	AsksHowToSet bool
	// MentionsOOM: the ~30% of posts about out-of-memory problems.
	MentionsOOM bool
}

// AllConfCounts is the study-wide context of Table 2: how many
// configuration-related issues/posts were inspected in total (the PerfConf
// subsets are derived from the records in this package).
type AllConfCounts struct {
	Issues int
	Posts  int
}

// AllConf returns Table 2's right-hand columns per system.
func AllConf() map[System]AllConfCounts {
	return map[System]AllConfCounts{
		Cassandra: {Issues: 32, Posts: 60},
		HBase:     {Issues: 48, Posts: 33},
		HDFS:      {Issues: 31, Posts: 39},
		MapReduce: {Issues: 13, Posts: 25},
	}
}
