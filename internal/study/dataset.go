package study

import "fmt"

// marginals are the per-system aggregate counts the paper reports; the
// synthetic dataset is generated to match them exactly (see package doc).
type marginals struct {
	issues      int
	categories  [numCategories]int // Tune, HardCoded, Refine, FixDefault
	metrics     [numMetrics]int    // Latency, Throughput, MemoryDisk
	conditional int
	indirect    int
	varTypes    [numVarTypes]int // Integer, Float, NonNumerical
	factors     [numFactors]int  // StaticSystem, StaticWorkload, Dynamic
	posts       int
	postsHowTo  int
	postsOOM    int
}

var paperMarginals = map[System]marginals{
	Cassandra: {
		issues:      20,
		categories:  [numCategories]int{11, 2, 2, 5},
		metrics:     [numMetrics]int{14, 8, 9},
		conditional: 11, indirect: 13,
		varTypes: [numVarTypes]int{15, 4, 1},
		factors:  [numFactors]int{0, 4, 16},
		posts:    20, postsHowTo: 8, postsOOM: 6,
	},
	HBase: {
		issues:      30,
		categories:  [numCategories]int{16, 1, 0, 13},
		metrics:     [numMetrics]int{28, 3, 15},
		conditional: 13, indirect: 14,
		varTypes: [numVarTypes]int{23, 5, 2},
		factors:  [numFactors]int{1, 0, 29},
		posts:    7, postsHowTo: 3, postsOOM: 2,
	},
	HDFS: {
		issues:      20,
		categories:  [numCategories]int{8, 7, 0, 5},
		metrics:     [numMetrics]int{20, 5, 8},
		conditional: 12, indirect: 12,
		varTypes: [numVarTypes]int{19, 0, 1},
		factors:  [numFactors]int{0, 0, 20},
		posts:    7, postsHowTo: 3, postsOOM: 2,
	},
	MapReduce: {
		issues:      10,
		categories:  [numCategories]int{4, 4, 1, 1},
		metrics:     [numMetrics]int{9, 0, 7},
		conditional: 4, indirect: 6,
		varTypes: [numVarTypes]int{9, 0, 1},
		factors:  [numFactors]int{1, 2, 7},
		posts:    20, postsHowTo: 8, postsOOM: 6,
	},
}

// realIssues are the six benchmark issues of Table 6 with their actual
// attributes; they anchor the dataset and consume part of each system's
// marginals.
var realIssues = []Issue{
	{
		ID: "CASSANDRA-6059", System: Cassandra,
		Title:    "memtable_total_space_in_mb: too big OOMs, too small hurts write latency",
		Category: FixPoorDefault,
		Metrics:  []Metric{Latency, MemoryDisk},
		Indirect: true, VarType: Integer, Factor: Dynamic,
	},
	{
		ID: "HBASE-2149", System: HBase,
		Title:       "global.memstore.lowerLimit: flush too much blocks writes too long, too little blocks too often",
		Category:    FixPoorDefault,
		Metrics:     []Metric{Latency, Throughput},
		Conditional: true, VarType: Float, Factor: Dynamic,
	},
	{
		ID: "HBASE-3813", System: HBase,
		Title:    "ipc.server.max.queue.size: too big OOMs, too small hurts throughput",
		Category: FixPoorDefault,
		Metrics:  []Metric{Throughput, MemoryDisk},
		Indirect: true, VarType: Integer, Factor: Dynamic,
	},
	{
		ID: "HBASE-6728", System: HBase,
		Title:    "ipc.server.response.queue.maxsize: too big OOMs, too small hurts throughput",
		Category: FixPoorDefault,
		Metrics:  []Metric{Throughput, MemoryDisk},
		Indirect: true, VarType: Integer, Factor: Dynamic,
	},
	{
		ID: "HDFS-4995", System: HDFS,
		Title:       "content-summary.limit: big holds the namesystem lock too long, small slows du",
		Category:    ReplaceHardCoded,
		Metrics:     []Metric{Latency},
		Conditional: true, Indirect: true, VarType: Integer, Factor: Dynamic,
	},
	{
		ID: "MAPREDUCE-2820", System: MapReduce,
		Title:       "local.dir.minspacestart: too small OODs tasks, too big idles workers",
		Category:    FixPoorDefault,
		Metrics:     []Metric{Latency, MemoryDisk},
		Conditional: true, VarType: Integer, Factor: Dynamic,
	},
}

// Issues returns the full 80-issue dataset: the six real benchmark issues
// plus synthetic records filling each system's marginals.
func Issues() []Issue {
	var out []Issue
	for _, sys := range Systems() {
		out = append(out, systemIssues(sys)...)
	}
	return out
}

func systemIssues(sys System) []Issue {
	m := paperMarginals[sys]
	var real []Issue
	for _, r := range realIssues {
		if r.System == sys {
			real = append(real, r)
		}
	}

	// Residual marginals after the real issues.
	res := m
	res.issues -= len(real)
	for _, r := range real {
		res.categories[r.Category]--
		for _, metric := range r.Metrics {
			res.metrics[metric]--
		}
		if r.Conditional {
			res.conditional--
		}
		if r.Indirect {
			res.indirect--
		}
		res.varTypes[r.VarType]--
		res.factors[r.Factor]--
	}
	assertNonNegative(sys, res)

	n := res.issues
	syn := make([]Issue, n)
	for i := range syn {
		syn[i] = Issue{
			ID:     fmt.Sprintf("%s-SYN-%02d", sys.Abbrev(), i+1),
			System: sys,
		}
	}

	// Single-valued attributes: fill value counts in order.
	fillEnum(n, res.categories[:], func(i, v int) { syn[i].Category = PatchCategory(v) })
	fillEnum(n, res.varTypes[:], func(i, v int) { syn[i].VarType = VarType(v) })
	fillEnum(n, res.factors[:], func(i, v int) { syn[i].Factor = Factor(v) })
	for i := 0; i < res.conditional; i++ {
		syn[i].Conditional = true
	}
	for i := 0; i < res.indirect; i++ {
		syn[n-1-i].Indirect = true
	}

	// Multi-label metrics: latency on the first L, memory/disk on the last
	// M, throughput on the first T. The paper's marginals guarantee
	// L+M ≥ n for every system, so each record affects at least one metric.
	for i := 0; i < res.metrics[Latency]; i++ {
		syn[i].Metrics = append(syn[i].Metrics, Latency)
	}
	for i := 0; i < res.metrics[Throughput]; i++ {
		syn[i].Metrics = append(syn[i].Metrics, Throughput)
	}
	for i := 0; i < res.metrics[MemoryDisk]; i++ {
		syn[n-1-i].Metrics = append(syn[n-1-i].Metrics, MemoryDisk)
	}
	for i, rec := range syn {
		if len(rec.Metrics) == 0 {
			panic(fmt.Sprintf("study: %s synthetic record %d has no metric — marginals inconsistent", sys, i))
		}
		// Give each record a plausible identity (the aggregates are what is
		// faithful; the names are representative vocabulary).
		conf := confNameFor(sys, i)
		syn[i].Title = titleFor(conf, rec.Category, rec.Metrics)
	}
	return append(real, syn...)
}

func fillEnum(n int, counts []int, set func(i, value int)) {
	i := 0
	for v, c := range counts {
		for k := 0; k < c; k++ {
			if i >= n {
				panic("study: enum marginals exceed record count")
			}
			set(i, v)
			i++
		}
	}
	if i != n {
		panic(fmt.Sprintf("study: enum marginals cover %d of %d records", i, n))
	}
}

func assertNonNegative(sys System, m marginals) {
	neg := m.issues < 0 || m.conditional < 0 || m.indirect < 0
	for _, c := range m.categories {
		neg = neg || c < 0
	}
	for _, c := range m.metrics {
		neg = neg || c < 0
	}
	for _, c := range m.varTypes {
		neg = neg || c < 0
	}
	for _, c := range m.factors {
		neg = neg || c < 0
	}
	if neg {
		panic(fmt.Sprintf("study: real issues overdraw the %v marginals", sys))
	}
}

// Posts returns the 54-post dataset with the §2.2.1 shares: ~40% of users
// simply ask how to set a PerfConf, ~30% of posts concern OOM.
func Posts() []Post {
	var out []Post
	for _, sys := range Systems() {
		m := paperMarginals[sys]
		for i := 0; i < m.posts; i++ {
			out = append(out, Post{
				ID:           fmt.Sprintf("%s-POST-%02d", sys.Abbrev(), i+1),
				System:       sys,
				AsksHowToSet: i < m.postsHowTo,
				MentionsOOM:  i >= m.posts-m.postsOOM,
			})
		}
	}
	return out
}
