package study

import (
	"fmt"
	"strings"
)

// PerSystem holds one count per studied system, in the paper's column order.
type PerSystem [numSystems]int

// Total sums the row.
func (p PerSystem) Total() int {
	t := 0
	for _, v := range p {
		t += v
	}
	return t
}

// Table2 is the empirical study suite (paper Table 2): PerfConf vs AllConf
// issues and posts per system.
type Table2 struct {
	PerfIssues PerSystem
	PerfPosts  PerSystem
	AllIssues  PerSystem
	AllPosts   PerSystem
}

// BuildTable2 aggregates the dataset into Table 2.
func BuildTable2() Table2 {
	var t Table2
	for _, i := range Issues() {
		t.PerfIssues[i.System]++
	}
	for _, p := range Posts() {
		t.PerfPosts[p.System]++
	}
	for sys, c := range AllConf() {
		t.AllIssues[sys] = c.Issues
		t.AllPosts[sys] = c.Posts
	}
	return t
}

// Render formats the table like the paper.
func (t Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s %10s %8s\n", "", "PerfConf", "", "AllConf", "")
	fmt.Fprintf(&b, "%-12s %10s %8s %10s %8s\n", "", "Issues", "Posts", "Issues", "Posts")
	for _, sys := range Systems() {
		fmt.Fprintf(&b, "%-12s %10d %8d %10d %8d\n",
			sys, t.PerfIssues[sys], t.PerfPosts[sys], t.AllIssues[sys], t.AllPosts[sys])
	}
	fmt.Fprintf(&b, "%-12s %10d %8d %10d %8d\n",
		"Total", t.PerfIssues.Total(), t.PerfPosts.Total(), t.AllIssues.Total(), t.AllPosts.Total())
	return b.String()
}

// Table3 categorizes PerfConf patches (paper Table 3).
type Table3 struct {
	Categories [numCategories]PerSystem
}

// BuildTable3 aggregates the dataset into Table 3.
func BuildTable3() Table3 {
	var t Table3
	for _, i := range Issues() {
		t.Categories[i.Category][i.System]++
	}
	return t
}

// Render formats the table like the paper.
func (t Table3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %4s %4s %4s %4s\n", "Category", "CA", "HB", "HD", "MR")
	fmt.Fprintln(&b, "Add a new configuration to ...")
	order := []PatchCategory{TuneNewFunctionality, ReplaceHardCoded, RefineExisting}
	for _, c := range order {
		row := t.Categories[c]
		fmt.Fprintf(&b, "  %-26s %4d %4d %4d %4d\n", c, row[Cassandra], row[HBase], row[HDFS], row[MapReduce])
	}
	fmt.Fprintln(&b, "Change an existing configuration to ...")
	row := t.Categories[FixPoorDefault]
	fmt.Fprintf(&b, "  %-26s %4d %4d %4d %4d\n", FixPoorDefault, row[Cassandra], row[HBase], row[HDFS], row[MapReduce])
	return b.String()
}

// Table4 reports how PerfConfs affect performance (paper Table 4).
type Table4 struct {
	Metrics     [numMetrics]PerSystem
	AlwaysOn    PerSystem
	Conditional PerSystem
	Direct      PerSystem
	Indirect    PerSystem
}

// BuildTable4 aggregates the dataset into Table 4.
func BuildTable4() Table4 {
	var t Table4
	for _, i := range Issues() {
		for _, m := range i.Metrics {
			t.Metrics[m][i.System]++
		}
		if i.Conditional {
			t.Conditional[i.System]++
		} else {
			t.AlwaysOn[i.System]++
		}
		if i.Indirect {
			t.Indirect[i.System]++
		} else {
			t.Direct[i.System]++
		}
	}
	return t
}

// Render formats the table like the paper.
func (t Table4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %4s %4s %4s %4s\n", "", "CA", "HB", "HD", "MR")
	for m := Metric(0); m < numMetrics; m++ {
		row := t.Metrics[m]
		fmt.Fprintf(&b, "%-28s %4d %4d %4d %4d\n", m, row[Cassandra], row[HBase], row[HDFS], row[MapReduce])
	}
	fmt.Fprintln(&b)
	rows := []struct {
		name string
		row  PerSystem
	}{
		{"Always-on Impact", t.AlwaysOn},
		{"Conditional Impact", t.Conditional},
		{"Direct Impact", t.Direct},
		{"Indirect Impact", t.Indirect},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %4d %4d %4d %4d\n", r.name, r.row[Cassandra], r.row[HBase], r.row[HDFS], r.row[MapReduce])
	}
	return b.String()
}

// Table5 reports how PerfConfs are set (paper Table 5): variable types and
// deciding factors.
type Table5 struct {
	VarTypes [numVarTypes]PerSystem
	Factors  [numFactors]PerSystem
}

// BuildTable5 aggregates the dataset into Table 5.
func BuildTable5() Table5 {
	var t Table5
	for _, i := range Issues() {
		t.VarTypes[i.VarType][i.System]++
		t.Factors[i.Factor][i.System]++
	}
	return t
}

// Render formats the table like the paper.
func (t Table5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %4s %4s %4s %4s\n", "", "CA", "HB", "HD", "MR")
	fmt.Fprintln(&b, "Configuration Variable Type")
	for v := VarType(0); v < numVarTypes; v++ {
		row := t.VarTypes[v]
		fmt.Fprintf(&b, "  %-32s %4d %4d %4d %4d\n", v, row[Cassandra], row[HBase], row[HDFS], row[MapReduce])
	}
	fmt.Fprintln(&b, "Deciding Factors")
	for f := Factor(0); f < numFactors; f++ {
		row := t.Factors[f]
		fmt.Fprintf(&b, "  %-32s %4d %4d %4d %4d\n", f, row[Cassandra], row[HBase], row[HDFS], row[MapReduce])
	}
	return b.String()
}

// PostStats summarizes §2.2.1's post statistics.
type PostStats struct {
	Total        int
	AsksHowToSet int
	MentionsOOM  int
}

// BuildPostStats aggregates the posts dataset.
func BuildPostStats() PostStats {
	var s PostStats
	for _, p := range Posts() {
		s.Total++
		if p.AsksHowToSet {
			s.AsksHowToSet++
		}
		if p.MentionsOOM {
			s.MentionsOOM++
		}
	}
	return s
}
