package study

import "fmt"

// Realistic configuration-name vocabulary per system, used to give the
// synthetic dataset rows plausible identities. Names are drawn from the real
// systems' configuration surfaces; assignment is deterministic so the
// dataset is stable across runs.
var confVocabulary = map[System][]string{
	Cassandra: {
		"memtable_flush_writers",
		"concurrent_writes",
		"commitlog_segment_size_in_mb",
		"compaction_throughput_mb_per_sec",
		"key_cache_size_in_mb",
		"row_cache_size_in_mb",
		"native_transport_max_threads",
		"sstable_preemptive_open_interval_in_mb",
		"batch_size_warn_threshold_in_kb",
		"hinted_handoff_throttle_in_kb",
		"stream_throughput_outbound_megabits_per_sec",
		"index_summary_capacity_in_mb",
		"dynamic_snitch_badness_threshold",
		"tombstone_warn_threshold",
		"column_index_size_in_kb",
		"range_request_timeout_in_ms",
		"truncate_request_timeout_in_ms",
		"cross_node_timeout",
		"phi_convict_threshold",
	},
	HBase: {
		"hbase.regionserver.handler.count",
		"hbase.hregion.memstore.flush.size",
		"hbase.hregion.max.filesize",
		"hbase.hstore.blockingStoreFiles",
		"hbase.hstore.compaction.max",
		"hfile.block.cache.size",
		"hbase.client.write.buffer",
		"hbase.client.scanner.caching",
		"hbase.rpc.timeout",
		"hbase.regionserver.global.memstore.upperLimit",
		"hbase.hregion.majorcompaction",
		"hbase.balancer.period",
		"hbase.master.wait.on.regionservers.maxtostart",
		"hbase.regionserver.thread.compaction.small",
		"hbase.hstore.flusher.count",
		"hbase.bucketcache.size",
		"hbase.hregion.memstore.block.multiplier",
		"hbase.server.thread.wakefrequency",
		"hbase.regionserver.msginterval",
		"hbase.zookeeper.property.tickTime",
		"hbase.regionserver.logroll.period",
		"hbase.hlog.blocksize",
		"hbase.regionserver.maxlogs",
		"hbase.snapshot.master.timeout.millis",
		"hbase.rest.threads.max",
		"hbase.thrift.maxWorkerThreads",
		"hbase.ipc.server.callqueue.read.ratio",
	},
	HDFS: {
		"dfs.namenode.handler.count",
		"dfs.datanode.handler.count",
		"dfs.blocksize",
		"dfs.replication",
		"dfs.namenode.replication.max-streams",
		"dfs.balancer.moverThreads",
		"dfs.datanode.max.transfer.threads",
		"dfs.image.transfer.bandwidthPerSec",
		"dfs.namenode.checkpoint.period",
		"dfs.client.read.shortcircuit.streams.cache.size",
		"dfs.namenode.max.op.size",
		"dfs.datanode.balance.bandwidthPerSec",
		"dfs.heartbeat.interval",
		"dfs.namenode.safemode.threshold-pct",
		"dfs.datanode.du.reserved",
		"dfs.stream-buffer-size",
		"dfs.namenode.fs-limits.max-blocks-per-file",
		"dfs.client.socket-timeout",
		"dfs.max.packets",
	},
	MapReduce: {
		"mapreduce.task.io.sort.mb",
		"mapreduce.map.sort.spill.percent",
		"mapreduce.reduce.shuffle.parallelcopies",
		"mapreduce.job.counters.limit",
		"mapreduce.tasktracker.map.tasks.maximum",
		"mapreduce.jobtracker.handler.count",
		"mapreduce.reduce.shuffle.input.buffer.percent",
		"mapreduce.map.speculative",
		"mapreduce.job.reduce.slowstart.completedmaps",
	},
}

// confNameFor assigns a realistic configuration name to the i-th synthetic
// record of a system (the six real issues carry their true names).
func confNameFor(sys System, i int) string {
	vocab := confVocabulary[sys]
	if len(vocab) == 0 {
		return fmt.Sprintf("%s.conf.%d", sys.Abbrev(), i)
	}
	return vocab[i%len(vocab)]
}

// titleFor composes a plausible issue title from the record's attributes.
func titleFor(conf string, cat PatchCategory, metrics []Metric) string {
	effect := "performance"
	if len(metrics) > 0 {
		switch metrics[0] {
		case Latency:
			effect = "request latency"
		case Throughput:
			effect = "job throughput"
		case MemoryDisk:
			effect = "memory/disk consumption"
		}
	}
	switch cat {
	case TuneNewFunctionality:
		return fmt.Sprintf("add %s to tune a new feature's impact on %s", conf, effect)
	case ReplaceHardCoded:
		return fmt.Sprintf("make hard-coded %s configurable (%s impact)", conf, effect)
	case RefineExisting:
		return fmt.Sprintf("refine %s for finer control over %s", conf, effect)
	default:
		return fmt.Sprintf("fix poor default of %s causing %s problems", conf, effect)
	}
}
