package study

import (
	"strings"
	"testing"
)

// The whole point of this package: every aggregate must equal the numbers
// printed in the paper.

func TestTable2MatchesPaper(t *testing.T) {
	tab := BuildTable2()
	wantIssues := PerSystem{20, 30, 20, 10}
	wantPosts := PerSystem{20, 7, 7, 20}
	wantAllIssues := PerSystem{32, 48, 31, 13}
	wantAllPosts := PerSystem{60, 33, 39, 25}
	if tab.PerfIssues != wantIssues {
		t.Errorf("PerfIssues = %v, want %v", tab.PerfIssues, wantIssues)
	}
	if tab.PerfPosts != wantPosts {
		t.Errorf("PerfPosts = %v, want %v", tab.PerfPosts, wantPosts)
	}
	if tab.AllIssues != wantAllIssues {
		t.Errorf("AllIssues = %v, want %v", tab.AllIssues, wantAllIssues)
	}
	if tab.AllPosts != wantAllPosts {
		t.Errorf("AllPosts = %v, want %v", tab.AllPosts, wantAllPosts)
	}
	if tab.PerfIssues.Total() != 80 || tab.PerfPosts.Total() != 54 ||
		tab.AllIssues.Total() != 124 || tab.AllPosts.Total() != 157 {
		t.Errorf("totals = %d/%d/%d/%d, want 80/54/124/157",
			tab.PerfIssues.Total(), tab.PerfPosts.Total(),
			tab.AllIssues.Total(), tab.AllPosts.Total())
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tab := BuildTable3()
	want := map[PatchCategory]PerSystem{
		TuneNewFunctionality: {11, 16, 8, 4},
		ReplaceHardCoded:     {2, 1, 7, 4},
		RefineExisting:       {2, 0, 0, 1},
		FixPoorDefault:       {5, 13, 5, 1},
	}
	for c, w := range want {
		if tab.Categories[c] != w {
			t.Errorf("%v = %v, want %v", c, tab.Categories[c], w)
		}
	}
	// §2.2.1 cross-check: 24 poor defaults, 14 hard-coded of the 80.
	if tab.Categories[FixPoorDefault].Total() != 24 {
		t.Errorf("poor defaults = %d, want 24", tab.Categories[FixPoorDefault].Total())
	}
	if tab.Categories[ReplaceHardCoded].Total() != 14 {
		t.Errorf("hard-coded = %d, want 14", tab.Categories[ReplaceHardCoded].Total())
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tab := BuildTable4()
	cases := []struct {
		name string
		got  PerSystem
		want PerSystem
	}{
		{"latency", tab.Metrics[Latency], PerSystem{14, 28, 20, 9}},
		{"throughput", tab.Metrics[Throughput], PerSystem{8, 3, 5, 0}},
		{"memory/disk", tab.Metrics[MemoryDisk], PerSystem{9, 15, 8, 7}},
		{"always-on", tab.AlwaysOn, PerSystem{9, 17, 8, 6}},
		{"conditional", tab.Conditional, PerSystem{11, 13, 12, 4}},
		{"direct", tab.Direct, PerSystem{7, 16, 8, 4}},
		{"indirect", tab.Indirect, PerSystem{13, 14, 12, 6}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	tab := BuildTable5()
	cases := []struct {
		name string
		got  PerSystem
		want PerSystem
	}{
		{"integer", tab.VarTypes[Integer], PerSystem{15, 23, 19, 9}},
		{"float", tab.VarTypes[Float], PerSystem{4, 5, 0, 0}},
		{"non-numerical", tab.VarTypes[NonNumerical], PerSystem{1, 2, 1, 1}},
		{"static system", tab.Factors[StaticSystem], PerSystem{0, 1, 0, 1}},
		{"static workload", tab.Factors[StaticWorkload], PerSystem{4, 0, 0, 2}},
		{"dynamic", tab.Factors[Dynamic], PerSystem{16, 29, 20, 7}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestPostStatsMatchSection221(t *testing.T) {
	s := BuildPostStats()
	if s.Total != 54 {
		t.Errorf("total posts = %d, want 54", s.Total)
	}
	// ~40% ask how to set; ~30% mention OOM.
	howTo := float64(s.AsksHowToSet) / float64(s.Total)
	oom := float64(s.MentionsOOM) / float64(s.Total)
	if howTo < 0.37 || howTo > 0.43 {
		t.Errorf("how-to-set share = %.2f, want ≈0.40", howTo)
	}
	if oom < 0.27 || oom > 0.33 {
		t.Errorf("OOM share = %.2f, want ≈0.30", oom)
	}
}

func TestEveryIssueHasAtLeastOneMetric(t *testing.T) {
	for _, i := range Issues() {
		if len(i.Metrics) == 0 {
			t.Errorf("issue %s has no metric", i.ID)
		}
		if i.ID == "" || i.Title == "" {
			t.Errorf("issue missing identity: %+v", i)
		}
	}
}

func TestRealBenchmarkIssuesPresent(t *testing.T) {
	byID := map[string]Issue{}
	for _, i := range Issues() {
		byID[i.ID] = i
	}
	hb3813, ok := byID["HBASE-3813"]
	if !ok {
		t.Fatal("HBASE-3813 missing")
	}
	if !hb3813.Indirect || hb3813.Conditional || !hb3813.Affects(MemoryDisk) {
		t.Errorf("HBASE-3813 attributes wrong: %+v", hb3813)
	}
	hd4995, ok := byID["HDFS-4995"]
	if !ok {
		t.Fatal("HDFS-4995 missing")
	}
	if !hd4995.Conditional || !hd4995.Indirect || hd4995.Category != ReplaceHardCoded {
		t.Errorf("HDFS-4995 attributes wrong: %+v", hd4995)
	}
	mr2820, ok := byID["MAPREDUCE-2820"]
	if !ok {
		t.Fatal("MAPREDUCE-2820 missing")
	}
	if !mr2820.Conditional || mr2820.Indirect || mr2820.VarType != Integer {
		t.Errorf("MAPREDUCE-2820 attributes wrong: %+v", mr2820)
	}
}

func TestMostPerfConfsAffectMultipleMetrics(t *testing.T) {
	// The paper's prose says "61 out of 80" issues affect multiple metrics,
	// but Table 4's own marginals (126 metric labels over 80 issues) admit
	// at most 126−80 = 46 two-metric issues — the prose evidently counts a
	// finer metric taxonomy than the table's three rows. The dataset
	// maximizes multiplicity under the table's marginals: exactly 46, which
	// still supports the qualitative claim (a majority).
	multi := 0
	for _, i := range Issues() {
		if len(i.Metrics) > 1 {
			multi++
		}
	}
	if multi != 46 {
		t.Errorf("multi-metric issues = %d, want 46 (Table 4 label count minus 80)", multi)
	}
	if multi*2 < len(Issues()) {
		t.Errorf("multi-metric issues %d are not a majority of %d", multi, len(Issues()))
	}
}

func TestRendersContainKeyNumbers(t *testing.T) {
	if r := BuildTable2().Render(); !strings.Contains(r, "80") || !strings.Contains(r, "Cassandra") {
		t.Errorf("Table2 render:\n%s", r)
	}
	if r := BuildTable3().Render(); !strings.Contains(r, "Fix a poor default value") {
		t.Errorf("Table3 render:\n%s", r)
	}
	if r := BuildTable4().Render(); !strings.Contains(r, "Indirect Impact") {
		t.Errorf("Table4 render:\n%s", r)
	}
	if r := BuildTable5().Render(); !strings.Contains(r, "Dynamic factors") {
		t.Errorf("Table5 render:\n%s", r)
	}
}

func TestStringersCoverEnums(t *testing.T) {
	for _, sys := range Systems() {
		if sys.String() == "" || sys.Abbrev() == "??" {
			t.Errorf("bad system stringer for %d", int(sys))
		}
	}
	if System(99).Abbrev() != "??" || !strings.Contains(System(99).String(), "99") {
		t.Error("out-of-range system stringer")
	}
	if !strings.Contains(PatchCategory(9).String(), "9") ||
		!strings.Contains(Metric(9).String(), "9") ||
		!strings.Contains(VarType(9).String(), "9") ||
		!strings.Contains(Factor(9).String(), "9") {
		t.Error("out-of-range enum stringers should embed the value")
	}
}

func TestConfVocabularyAndTitles(t *testing.T) {
	for _, sys := range Systems() {
		if name := confNameFor(sys, 0); name == "" {
			t.Errorf("%v: empty configuration name", sys)
		}
		// Wraparound stays deterministic.
		if confNameFor(sys, 3) != confNameFor(sys, 3+len(confVocabulary[sys])) {
			t.Errorf("%v: vocabulary assignment not cyclic", sys)
		}
	}
	title := titleFor("x.y.size", FixPoorDefault, []Metric{MemoryDisk})
	if !strings.Contains(title, "x.y.size") || !strings.Contains(title, "memory/disk") {
		t.Errorf("title = %q", title)
	}
	if got := titleFor("c", RefineExisting, nil); !strings.Contains(got, "performance") {
		t.Errorf("metric-less title = %q", got)
	}
	// Every synthetic record got a plausible, non-placeholder title.
	for _, i := range Issues() {
		if strings.Contains(i.Title, "synthesized") || i.Title == "" {
			t.Errorf("%s: placeholder title %q", i.ID, i.Title)
		}
	}
}
