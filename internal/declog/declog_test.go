package declog

import (
	"reflect"
	"testing"
)

func TestAppendAndSnapshotOrder(t *testing.T) {
	l := New(4)
	src := l.Register("ctl")
	for i := 1; i <= 3; i++ {
		l.Append(Record{Source: src, Period: uint32(i), Sensed: float64(i)})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Len = %d, want 3", len(got))
	}
	for i, r := range got {
		if r.Period != uint32(i+1) {
			t.Fatalf("record %d has period %d, want %d", i, r.Period, i+1)
		}
	}
	if l.Total() != 3 {
		t.Errorf("Total = %d, want 3", l.Total())
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	l := New(4)
	src := l.Register("ctl")
	for i := 1; i <= 10; i++ {
		l.Append(Record{Source: src, Period: uint32(i)})
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Len = %d, want 4", len(got))
	}
	for i, want := range []uint32{7, 8, 9, 10} {
		if got[i].Period != want {
			t.Errorf("record %d has period %d, want %d", i, got[i].Period, want)
		}
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
	if l.Len() != 4 || l.Cap() != 4 {
		t.Errorf("Len/Cap = %d/%d, want 4/4", l.Len(), l.Cap())
	}
}

func TestEpochStamping(t *testing.T) {
	l := New(8)
	src := l.Register("ctl")
	l.Append(Record{Source: src, Period: 1})
	l.BumpEpoch()
	l.Append(Record{Source: src, Period: 2})
	l.BumpEpoch()
	l.Append(Record{Source: src, Period: 3, Epoch: 99}) // caller value is overwritten
	got := l.Snapshot()
	for i, want := range []uint32{0, 1, 2} {
		if got[i].Epoch != want {
			t.Errorf("record %d has epoch %d, want %d", i, got[i].Epoch, want)
		}
	}
	if l.Epoch() != 2 {
		t.Errorf("Epoch = %d, want 2", l.Epoch())
	}
}

func TestRegisterIdempotentByName(t *testing.T) {
	l := New(2)
	a := l.Register("admission")
	b := l.Register("memory")
	if a2 := l.Register("admission"); a2 != a {
		t.Errorf("re-Register(admission) = %d, want %d", a2, a)
	}
	if a == b {
		t.Errorf("distinct names share source id %d", a)
	}
	if got, want := l.Sources(), []string{"admission", "memory"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Sources = %v, want %v", got, want)
	}
}

func TestSourcesEmptyIsNil(t *testing.T) {
	if got := New(1).Sources(); got != nil {
		t.Errorf("Sources on fresh log = %v, want nil", got)
	}
	if got := New(1).Snapshot(); got != nil {
		t.Errorf("Snapshot on fresh log = %v, want nil", got)
	}
}

func TestSnapshotDoesNotAliasRing(t *testing.T) {
	l := New(2)
	src := l.Register("ctl")
	l.Append(Record{Source: src, Period: 1, Sensed: 10})
	snap := l.Snapshot()
	l.Append(Record{Source: src, Period: 2, Sensed: 20})
	l.Append(Record{Source: src, Period: 3, Sensed: 30})
	if snap[0].Sensed != 10 {
		t.Errorf("snapshot mutated by later appends: Sensed = %v", snap[0].Sensed)
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	l := New(4)
	src := l.Register("ctl")
	l.Append(Record{Source: src, Period: 1})
	l.BumpEpoch()
	l.Reset()
	if l.Len() != 0 || l.Total() != 0 || l.Epoch() != 0 {
		t.Errorf("post-Reset Len/Total/Epoch = %d/%d/%d, want zeros", l.Len(), l.Total(), l.Epoch())
	}
	if got := l.Register("ctl"); got != src {
		t.Errorf("Register after Reset = %d, want surviving id %d", got, src)
	}
	l.Append(Record{Source: src, Period: 1})
	if l.Len() != 1 {
		t.Errorf("append after Reset: Len = %d, want 1", l.Len())
	}
}

func TestNewClampsTinyCapacity(t *testing.T) {
	for _, c := range []int{-5, 0, 1} {
		if got := New(c).Cap(); got != 1 && got != c {
			t.Errorf("New(%d).Cap() = %d", c, got)
		}
	}
	if got := New(0).Cap(); got != 1 {
		t.Errorf("New(0).Cap() = %d, want 1", got)
	}
}

func TestClampReasonStrings(t *testing.T) {
	cases := map[ClampReason]string{
		ClampNone:       "none",
		ClampMin:        "min",
		ClampMax:        "max",
		ClampNonFinite:  "non-finite",
		ClampLayered:    "layered",
		numClampReasons: "invalid",
		ClampReason(42): "invalid",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("ClampReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}
