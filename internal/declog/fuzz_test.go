package declog

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzParseDecisionLog drives the envelope codec with arbitrary bytes: any
// defect must surface as a clean parse error, never a panic, and every
// accepted envelope must survive an Encode→Parse round trip byte-identically.
func FuzzParseDecisionLog(f *testing.F) {
	if b, err := Encode(sampleLog().Envelope("HB3813", "gen", 7, "fp-abc")); err == nil {
		f.Add(b)
	}
	if b, err := Encode(New(1).Envelope("LLMKV", "crash-restart", -3, "")); err == nil {
		f.Add(b)
	}
	wrapped := New(2)
	src := wrapped.Register("ctl")
	for i := 1; i <= 5; i++ {
		wrapped.BumpEpoch()
		wrapped.Append(Record{Source: src, Period: uint32(i), Sensed: float64(i) * 1.5, Raw: -0.25, Clamp: ClampMin})
	}
	if b, err := Encode(wrapped.Envelope("MR2820", "burst", 1<<40, "deadbeef")); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"smartconf-declog/1"}`))
	f.Add([]byte(`{"format":"smartconf-declog/1","substrate":"X","plan":"p","capacity":1,"records":[{"src":7,"period":1}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Parse(data)
		if err != nil {
			return // clean miss
		}
		b, err := Encode(env)
		if err != nil {
			// Parse never admits non-finite floats (JSON cannot carry them),
			// so an accepted envelope must always re-encode.
			t.Fatalf("accepted envelope failed to re-encode: %v", err)
		}
		env2, err := Parse(b)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to parse: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip changed envelope:\n %+v\n %+v", env, env2)
		}
		b2, err := Encode(env2)
		if err != nil {
			t.Fatalf("second Encode: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("encoding is not a fixed point:\n %s\n %s", b, b2)
		}
	})
}
