// Package declog is the production decision log: a fixed-capacity,
// zero-allocation ring buffer of controller decisions, cheap enough to stay
// enabled under full load, plus a deterministic JSON envelope codec so a
// logged run can be shipped to the offline analyzer (cmd/smartconf-replay)
// and re-executed with perturbed decisions.
//
// Every internal/core controller (direct, indirect, adaptive) appends one
// Record per Update, and internal/cluster coordinators append their layered
// bound decisions. Append takes a value-typed Record into a pre-allocated
// ring under a mutex — no heap allocation on any path (benchgate-gated at
// 0 allocs/op, and the whole-run gate keeps the steady-state request windows
// allocation-free with logging enabled).
//
// The package is a leaf: core, cluster, chaos and the public smartconf
// package all import it, so it depends only on the standard library.
package declog

import "sync"

// ClampReason classifies what happened between a controller's raw Eq. 2
// output and the value it actually applied.
type ClampReason uint8

const (
	// ClampNone: the raw output was inside the actuator range and applied
	// unchanged.
	ClampNone ClampReason = iota
	// ClampMin: the raw output fell below the actuator's lower bound.
	ClampMin
	// ClampMax: the raw output exceeded the actuator's upper bound.
	ClampMax
	// ClampNonFinite: the raw output was not a finite number (only reachable
	// with an unbounded actuator); the controller saturated in the step's
	// direction instead of poisoning the knob.
	ClampNonFinite
	// ClampLayered: a cluster coordinator decision where the other
	// controller's bound was the binding one (the soft-goal bound undercut
	// the hard guard, or vice versa) — the applied value is not this
	// controller's own output.
	ClampLayered

	numClampReasons
)

func (c ClampReason) String() string {
	switch c {
	case ClampNone:
		return "none"
	case ClampMin:
		return "min"
	case ClampMax:
		return "max"
	case ClampNonFinite:
		return "non-finite"
	case ClampLayered:
		return "layered"
	}
	return "invalid"
}

// Source identifies one decision producer (a controller or a coordinator
// lane) within a Log, assigned by Register. The value indexes the envelope's
// Sources name table.
type Source uint16

// Record is one logged decision. Field order is fixed by the struct
// declaration — the envelope codec relies on it for byte-deterministic
// encoding, like the disk run cache.
type Record struct {
	// Source indexes the log's registered source names.
	Source Source `json:"src"`
	// Period is the producer's decision index, 1-based, counted from the
	// producer's own construction. A controller rebuilt after a crash
	// restarts at 1 — the Epoch tells the generations apart.
	Period uint32 `json:"period"`
	// Epoch is the active goal epoch, stamped by Append: it advances on
	// run-time goal changes and on crash resynthesis.
	Epoch uint32 `json:"epoch"`
	// Clamp classifies the raw→applied transition.
	Clamp ClampReason `json:"clamp"`
	// Sensed is the measurement the decision consumed.
	Sensed float64 `json:"sensed"`
	// Err is the setpoint error (virtual goal − sensed).
	Err float64 `json:"err"`
	// Pole is the pole the update actually used (0 in the danger region).
	Pole float64 `json:"pole"`
	// Raw is the unclamped Eq. 2 output.
	Raw float64 `json:"raw"`
	// Applied is the value that reached the actuator.
	Applied float64 `json:"applied"`
}

// Log is a fixed-capacity ring of Records shared by every decision producer
// of one run. All methods are safe for concurrent use; Append is the hot
// path and allocates nothing.
type Log struct {
	mu    sync.Mutex
	buf   []Record // guardedby: mu
	start int      // guardedby: mu — index of the oldest record
	n     int      // guardedby: mu — number of live records
	total uint64   // guardedby: mu — appends ever, including overwritten
	epoch uint32   // guardedby: mu — current goal epoch
	names []string // guardedby: mu — registered source names, index = Source
}

// New returns a Log holding the most recent capacity records. Capacities
// below 1 are raised to 1.
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{buf: make([]Record, capacity)}
}

// Register assigns (or looks up) the Source id for a named producer.
// Registration is idempotent by name, so a controller resynthesized after a
// crash keeps its pre-crash source id. Cold path: called at construction
// time, never per decision.
func (l *Log) Register(name string) Source {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, n := range l.names {
		if n == name {
			return Source(i)
		}
	}
	l.names = append(l.names, name)
	return Source(len(l.names) - 1)
}

// Sources returns a copy of the registered source names, index = Source.
func (l *Log) Sources() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.names) == 0 {
		return nil
	}
	out := make([]string, len(l.names))
	copy(out, l.names)
	return out
}

// Append records one decision, stamping the current goal epoch. When the
// ring is full the oldest record is overwritten. Zero allocations.
//
//smartconf:hotpath
func (l *Log) Append(r Record) {
	l.mu.Lock()
	r.Epoch = l.epoch
	i := l.start + l.n
	if i >= len(l.buf) {
		i -= len(l.buf)
	}
	l.buf[i] = r
	if l.n < len(l.buf) {
		l.n++
	} else {
		l.start++
		if l.start == len(l.buf) {
			l.start = 0
		}
	}
	l.total++
	l.mu.Unlock()
}

// BumpEpoch advances the goal epoch: subsequent records belong to a new
// decision regime (a run-time goal change, a crash resynthesis).
func (l *Log) BumpEpoch() {
	l.mu.Lock()
	l.epoch++
	l.mu.Unlock()
}

// Epoch returns the current goal epoch.
func (l *Log) Epoch() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Len returns the number of live records (≤ capacity).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Cap returns the ring capacity.
func (l *Log) Cap() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns how many records were ever appended, including those the
// ring has since overwritten.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the live records oldest-first. Cold path: allocates a
// fresh slice each call so exports never alias the ring.
func (l *Log) Snapshot() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return nil
	}
	out := make([]Record, l.n)
	head := copy(out, l.buf[l.start:min(l.start+l.n, len(l.buf))])
	copy(out[head:], l.buf[:l.n-head])
	return out
}

// Reset drops every record and restarts the epoch and total counters; source
// registrations survive (the producers still exist).
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.start, l.n, l.total, l.epoch = 0, 0, 0, 0
}
