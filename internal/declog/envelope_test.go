package declog

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleLog() *Log {
	l := New(4)
	a := l.Register("admission")
	b := l.Register("memory")
	l.Append(Record{Source: a, Period: 1, Clamp: ClampNone, Sensed: 120, Err: -20, Pole: 0.95, Raw: 48.5, Applied: 48.5})
	l.BumpEpoch()
	l.Append(Record{Source: b, Period: 1, Clamp: ClampMax, Sensed: 80, Err: 20, Pole: 0, Raw: 6000, Applied: 5000})
	return l
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := sampleLog().Envelope("HB3813", "gen", 7, "fp-abc")
	b, err := Encode(env)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, env)
	}
	// Determinism: encoding the parsed envelope reproduces the bytes.
	b2, err := Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("re-encoded bytes differ:\n %s\n %s", b, b2)
	}
}

// The byte layout is part of the format: replays compare envelopes byte for
// byte, so field order must never silently change.
func TestEncodeFixedFieldOrder(t *testing.T) {
	l := New(2)
	src := l.Register("ctl")
	l.Append(Record{Source: src, Period: 1, Clamp: ClampMin, Sensed: 1, Err: 2, Pole: 0.5, Raw: -3, Applied: 0})
	b, err := Encode(l.Envelope("HB2149", "gen", 1, "fp"))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	want := `{"format":"smartconf-declog/1","substrate":"HB2149","plan":"gen","seed":1,"capacity":2,"total":1,"epoch":0,"fingerprint":"fp","sources":["ctl"],"records":[{"src":0,"period":1,"epoch":0,"clamp":1,"sensed":1,"err":2,"pole":0.5,"raw":-3,"applied":0}]}` + "\n"
	if string(b) != want {
		t.Errorf("encoded bytes:\n got %s\nwant %s", b, want)
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		env := sampleLog().Envelope("HB3813", "gen", 7, "fp")
		env.Records[0].Raw = bad
		if _, err := Encode(env); err == nil {
			t.Errorf("Encode accepted raw=%v", bad)
		}
	}
}

func TestParseRejectsDefects(t *testing.T) {
	valid := func() Envelope { return sampleLog().Envelope("HB3813", "gen", 7, "fp") }
	cases := []struct {
		name   string
		mutate func(*Envelope)
		substr string
	}{
		{"wrong format", func(e *Envelope) { e.Format = "smartconf-declog/0" }, "format"},
		{"missing substrate", func(e *Envelope) { e.Substrate = "" }, "coordinates"},
		{"missing plan", func(e *Envelope) { e.Plan = "" }, "coordinates"},
		{"zero capacity", func(e *Envelope) { e.Capacity = 0 }, "capacity"},
		{"records over capacity", func(e *Envelope) { e.Capacity = 1 }, "exceed"},
		{"total below records", func(e *Envelope) { e.Total = 1 }, "total"},
		{"empty source name", func(e *Envelope) { e.Sources[0] = "" }, "empty name"},
		{"duplicate source name", func(e *Envelope) { e.Sources[1] = e.Sources[0] }, "duplicate"},
		{"source out of range", func(e *Envelope) { e.Records[0].Source = 9 }, "references source"},
		{"invalid clamp", func(e *Envelope) { e.Records[0].Clamp = numClampReasons }, "clamp"},
		{"zero period", func(e *Envelope) { e.Records[0].Period = 0 }, "period 0"},
		{"record epoch beyond envelope", func(e *Envelope) { e.Records[1].Epoch = 5 }, "exceeds envelope epoch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := valid()
			tc.mutate(&env)
			b, err := Encode(env)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			_, err = Parse(b)
			if err == nil {
				t.Fatal("Parse accepted defective envelope")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("Parse accepted malformed JSON")
	}
}

func TestPerturbZeroAndKey(t *testing.T) {
	if !(Perturb{}).Zero() {
		t.Error("zero-value Perturb is not Zero")
	}
	if (Perturb{FromPeriod: 50}).Zero() != true {
		t.Error("FromPeriod alone should still be Zero (nothing to apply)")
	}
	cases := []struct {
		p    Perturb
		want string
	}{
		{Perturb{}, "none"},
		{Perturb{SetPole: true, Pole: 0.9}, "pole=0.90000000000000002@1"},
		{Perturb{SetPole: true, Pole: 0.5, FromPeriod: 12}, "pole=0.5@12"},
		{Perturb{SetMin: true, Min: 2, SetMax: true, Max: 100, FromPeriod: 3}, "min=2,max=100@3"},
		{Perturb{SetPole: true, Pole: 0, SetMin: true, Min: 1, SetMax: true, Max: 8, FromPeriod: 1}, "pole=0,min=1,max=8@1"},
	}
	for _, tc := range cases {
		if got := tc.p.Key(); got != tc.want {
			t.Errorf("Key(%+v) = %q, want %q", tc.p, got, tc.want)
		}
		if tc.p.String() != tc.p.Key() {
			t.Errorf("String != Key for %+v", tc.p)
		}
	}
}
