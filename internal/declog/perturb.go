package declog

import (
	"fmt"
	"strings"
)

// Perturb is a counterfactual edit applied to every controller decision from
// a given period onward: pin the pole, or move a clamp bound, and let the
// deterministic engine re-run the whole closed loop. The zero value means
// "replay exactly as logged".
//
// Periods are per-controller-generation: a controller resynthesized after a
// crash restarts its period count at 1, so FromPeriod re-arms on the rebuilt
// controller too.
type Perturb struct {
	// FromPeriod is the first 1-based decision period the edit applies to.
	// 0 and 1 both mean "from the first decision".
	FromPeriod uint32 `json:"from_period"`
	// SetPole pins the pole to Pole, overriding the two-pole danger-region
	// switch.
	SetPole bool    `json:"set_pole"`
	Pole    float64 `json:"pole"`
	// SetMin / SetMax override the actuator clamp bounds.
	SetMin bool    `json:"set_min"`
	Min    float64 `json:"min"`
	SetMax bool    `json:"set_max"`
	Max    float64 `json:"max"`
}

// Zero reports whether the perturbation edits nothing.
func (p Perturb) Zero() bool {
	return !p.SetPole && !p.SetMin && !p.SetMax
}

// Key renders the perturbation as a deterministic, human-readable token used
// in run-cache keys and artifact rows. Equal perturbations render equal keys.
func (p Perturb) Key() string {
	if p.Zero() {
		return "none"
	}
	parts := make([]string, 0, 3)
	if p.SetPole {
		parts = append(parts, fmt.Sprintf("pole=%.17g", p.Pole))
	}
	if p.SetMin {
		parts = append(parts, fmt.Sprintf("min=%.17g", p.Min))
	}
	if p.SetMax {
		parts = append(parts, fmt.Sprintf("max=%.17g", p.Max))
	}
	from := p.FromPeriod
	if from == 0 {
		from = 1
	}
	return fmt.Sprintf("%s@%d", strings.Join(parts, ","), from)
}

func (p Perturb) String() string { return p.Key() }
