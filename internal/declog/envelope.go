package declog

import (
	"encoding/json"
	"fmt"
	"math"
)

// FormatVersion stamps every serialized decision log; bump it whenever the
// envelope layout changes so stale files become clean parse errors instead
// of silent misreads.
const FormatVersion = "smartconf-declog/1"

// Envelope is the on-disk form of a logged run: the run coordinates that
// reproduce it in the deterministic engine, the source name table, and the
// ring's surviving records oldest-first. Field order is fixed by the struct
// declaration, so the encoded bytes are a pure function of the value — the
// same discipline as the disk run cache (no gob, no wall clock), which is
// what makes zero-perturbation replays byte-comparable.
type Envelope struct {
	Format    string `json:"format"`
	Substrate string `json:"substrate"`
	Plan      string `json:"plan"`
	Seed      int64  `json:"seed"`
	// Capacity is the capture ring's size. Replays must use the same
	// capacity so both rings truncate to the same suffix.
	Capacity int `json:"capacity"`
	// Total counts every append of the run, including records the ring has
	// overwritten; len(Records) is the surviving suffix.
	Total uint64 `json:"total"`
	// Epoch is the final goal epoch (number of goal changes + resyntheses).
	Epoch uint32 `json:"epoch"`
	// Fingerprint is the run's trajectory fingerprint
	// (proptest.Report.Fingerprint), tying the log to the observable run.
	Fingerprint string   `json:"fingerprint"`
	Sources     []string `json:"sources"`
	Records     []Record `json:"records"`
}

// Envelope freezes the log into its serializable form under the given run
// coordinates.
func (l *Log) Envelope(substrate, plan string, seed int64, fingerprint string) Envelope {
	recs := l.Snapshot()
	return Envelope{
		Format:      FormatVersion,
		Substrate:   substrate,
		Plan:        plan,
		Seed:        seed,
		Capacity:    l.Cap(),
		Total:       l.Total(),
		Epoch:       l.Epoch(),
		Fingerprint: fingerprint,
		Sources:     l.Sources(),
		Records:     recs,
	}
}

// Encode serializes an envelope deterministically. It fails (rather than
// emitting unparseable bytes) when a record holds a non-finite float — only
// reachable from controllers with unbounded actuators.
func Encode(env Envelope) ([]byte, error) {
	for i, r := range env.Records {
		for _, v := range [...]float64{r.Sensed, r.Err, r.Pole, r.Raw, r.Applied} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("declog: record %d holds non-finite value %v; JSON cannot carry it", i, v)
			}
		}
	}
	b, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("declog: encoding envelope: %w", err)
	}
	return append(b, '\n'), nil
}

// Parse deserializes and validates an envelope. Any defect — malformed JSON,
// a wrong format stamp, a record pointing outside the source table, an
// impossible counter — is an error, never a panic: the analyzer treats a bad
// file as a clean miss.
func Parse(b []byte) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return Envelope{}, fmt.Errorf("declog: parsing envelope: %w", err)
	}
	if env.Format != FormatVersion {
		return Envelope{}, fmt.Errorf("declog: format %q, want %q", env.Format, FormatVersion)
	}
	if env.Substrate == "" || env.Plan == "" {
		return Envelope{}, fmt.Errorf("declog: envelope missing run coordinates (substrate %q, plan %q)", env.Substrate, env.Plan)
	}
	if env.Capacity < 1 {
		return Envelope{}, fmt.Errorf("declog: capacity %d < 1", env.Capacity)
	}
	if len(env.Records) > env.Capacity {
		return Envelope{}, fmt.Errorf("declog: %d records exceed ring capacity %d", len(env.Records), env.Capacity)
	}
	if env.Total < uint64(len(env.Records)) {
		return Envelope{}, fmt.Errorf("declog: total %d < %d surviving records", env.Total, len(env.Records))
	}
	seen := make(map[string]bool, len(env.Sources))
	for i, name := range env.Sources {
		if name == "" {
			return Envelope{}, fmt.Errorf("declog: source %d has an empty name", i)
		}
		if seen[name] {
			return Envelope{}, fmt.Errorf("declog: duplicate source name %q", name)
		}
		seen[name] = true
	}
	for i, r := range env.Records {
		if int(r.Source) >= len(env.Sources) {
			return Envelope{}, fmt.Errorf("declog: record %d references source %d of %d", i, r.Source, len(env.Sources))
		}
		if r.Clamp >= numClampReasons {
			return Envelope{}, fmt.Errorf("declog: record %d has invalid clamp reason %d", i, r.Clamp)
		}
		if r.Period == 0 {
			return Envelope{}, fmt.Errorf("declog: record %d has period 0; periods are 1-based", i)
		}
		if r.Epoch > env.Epoch {
			return Envelope{}, fmt.Errorf("declog: record %d epoch %d exceeds envelope epoch %d", i, r.Epoch, env.Epoch)
		}
	}
	return env, nil
}
