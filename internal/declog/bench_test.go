package declog

import "testing"

// Gated in internal/benchgate at 0 allocs/op: the production decision log
// must be cheap enough to stay enabled under full load.
func BenchmarkDeclogAppend(b *testing.B) {
	l := New(4096)
	src := l.Register("gate")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(Record{Source: src, Period: uint32(i + 1), Sensed: float64(i), Err: 1, Pole: 0.5, Raw: 2, Applied: 2})
	}
}

func TestAppendZeroAllocs(t *testing.T) {
	l := New(64)
	src := l.Register("ctl")
	p := uint32(0)
	avg := testing.AllocsPerRun(100, func() {
		p++
		l.Append(Record{Source: src, Period: p, Sensed: 1, Err: 2, Pole: 0.9, Raw: 3, Applied: 3})
	})
	if avg != 0 {
		t.Errorf("Append allocates %v allocs/op, want 0", avg)
	}
}
