package memsim

import (
	"testing"
	"testing/quick"
)

func TestAllocFreeAccounting(t *testing.T) {
	h := NewHeap(1000)
	if err := h.Alloc(400); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if h.Used() != 1000 || h.Available() != 0 || h.Peak() != 1000 {
		t.Errorf("used=%d avail=%d peak=%d", h.Used(), h.Available(), h.Peak())
	}
	h.Free(500)
	if h.Used() != 500 || h.Peak() != 1000 {
		t.Errorf("after free: used=%d peak=%d", h.Used(), h.Peak())
	}
	if h.OOM() {
		t.Error("unexpected OOM")
	}
}

func TestOOMIsPermanent(t *testing.T) {
	h := NewHeap(100)
	fired := 0
	h.OnOOM(func() { fired++ })
	if err := h.Alloc(101); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if !h.OOM() || fired != 1 {
		t.Errorf("OOM=%v fired=%d", h.OOM(), fired)
	}
	// The crashed process never allocates again, and the hook fires once.
	if err := h.Alloc(1); err != ErrOutOfMemory {
		t.Errorf("post-OOM alloc err = %v", err)
	}
	if fired != 1 {
		t.Errorf("hook fired %d times, want 1", fired)
	}
}

func TestZeroSizedAlloc(t *testing.T) {
	h := NewHeap(10)
	if err := h.Alloc(0); err != nil {
		t.Errorf("Alloc(0) = %v", err)
	}
	h.Free(0)
	if h.Used() != 0 {
		t.Errorf("used = %d", h.Used())
	}
}

func TestSetCapacityShrinkTriggersOOM(t *testing.T) {
	h := NewHeap(1000)
	fired := false
	h.OnOOM(func() { fired = true })
	if err := h.Alloc(800); err != nil {
		t.Fatal(err)
	}
	h.SetCapacity(500) // failure injection: capacity drops below usage
	if !h.OOM() || !fired {
		t.Error("shrinking below usage must OOM")
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero capacity", func() { NewHeap(0) })
	assertPanics("negative alloc", func() { NewHeap(10).Alloc(-1) })
	assertPanics("negative free", func() { NewHeap(10).Free(-1) })
	assertPanics("overfree", func() { NewHeap(10).Free(1) })
	assertPanics("zero recapacity", func() { NewHeap(10).SetCapacity(0) })
}

// Property: for any alloc/free sequence that the heap accepts, used equals
// the running sum, never exceeds capacity, and never goes negative.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(ops []int16) bool {
		h := NewHeap(1 << 20)
		var ledger int64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if err := h.Alloc(n); err == nil {
					ledger += n
				} else if !h.OOM() {
					return false // error without OOM state
				}
			} else {
				n = -n
				if n > ledger {
					continue // would panic by design; skip
				}
				h.Free(n)
				ledger -= n
			}
			if h.Used() != ledger || h.Used() < 0 || h.Used() > h.Capacity() {
				return false
			}
			if h.Peak() < h.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
