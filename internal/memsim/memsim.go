// Package memsim models a bounded memory heap with out-of-memory failure,
// standing in for the JVM heaps of the paper's testbed.
//
// The hard goals in four of the paper's six benchmark issues protect against
// out-of-memory (OOM) crashes; this model supplies exactly that failure
// mode: allocations beyond capacity fail permanently (a crashed JVM does
// not come back), and the experiment harness observes the failure through
// OOM() and the OnOOM hook.
package memsim

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned by Alloc when the heap capacity is exceeded.
var ErrOutOfMemory = errors.New("memsim: out of memory")

// Heap is a byte-accounted heap with a hard capacity.
// It is not safe for concurrent use (simulation code is single-goroutine).
type Heap struct {
	capacity int64
	used     int64
	peak     int64
	oom      bool
	onOOM    func()
}

// NewHeap returns an empty heap with the given capacity in bytes.
func NewHeap(capacity int64) *Heap {
	if capacity <= 0 {
		panic("memsim: heap capacity must be positive")
	}
	return &Heap{capacity: capacity}
}

// OnOOM installs a hook invoked exactly once, at the first failed allocation.
func (h *Heap) OnOOM(fn func()) { h.onOOM = fn }

// Alloc reserves n bytes. Allocating on a heap that has already suffered an
// OOM keeps failing: the simulated process is dead.
func (h *Heap) Alloc(n int64) error {
	if n < 0 {
		panic("memsim: negative allocation")
	}
	if h.oom {
		return ErrOutOfMemory
	}
	if h.used+n > h.capacity {
		h.oom = true
		if h.onOOM != nil {
			h.onOOM()
		}
		return ErrOutOfMemory
	}
	h.used += n
	if h.used > h.peak {
		h.peak = h.used
	}
	return nil
}

// Free releases n bytes. Freeing more than is allocated panics: it indicates
// a substrate accounting bug, which must not be silently absorbed.
func (h *Heap) Free(n int64) {
	if n < 0 {
		panic("memsim: negative free")
	}
	if n > h.used {
		panic(fmt.Sprintf("memsim: freeing %d bytes with only %d allocated", n, h.used))
	}
	h.used -= n
}

// Used returns the current allocation in bytes.
func (h *Heap) Used() int64 { return h.used }

// Peak returns the high-water mark in bytes.
func (h *Heap) Peak() int64 { return h.peak }

// Capacity returns the heap capacity in bytes.
func (h *Heap) Capacity() int64 { return h.capacity }

// Available returns the remaining headroom in bytes.
func (h *Heap) Available() int64 { return h.capacity - h.used }

// OOM reports whether the heap has suffered an out-of-memory failure.
func (h *Heap) OOM() bool { return h.oom }

// SetCapacity changes the capacity at run time (failure injection: a
// co-tenant shrinking the effective heap). Shrinking below current usage
// triggers an immediate OOM.
func (h *Heap) SetCapacity(capacity int64) {
	if capacity <= 0 {
		panic("memsim: heap capacity must be positive")
	}
	h.capacity = capacity
	if h.used > h.capacity && !h.oom {
		h.oom = true
		if h.onOOM != nil {
			h.onOOM()
		}
	}
}
