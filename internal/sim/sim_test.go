package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
	if s.Events() != 3 {
		t.Errorf("Events = %d, want 3", s.Events())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var times []time.Duration
	s.After(time.Second, func() {
		times = append(times, s.Now())
		s.After(2*time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.At(time.Second, func() { fired++ })
	s.At(10*time.Second, func() { fired++ })
	s.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s (advanced to deadline)", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(20 * time.Second)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	var ticks []time.Duration
	s.Every(time.Second, 2*time.Second, func() bool {
		ticks = append(ticks, s.Now())
		return len(ticks) < 4
	})
	s.Run()
	want := []time.Duration{1 * time.Second, 3 * time.Second, 5 * time.Second, 7 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick[%d] = %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	count := 0
	s.Every(0, time.Second, func() bool {
		count++
		if count == 5 {
			s.Stop()
		}
		return true
	})
	s.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil callback")
		}
	}()
	New().At(time.Second, nil)
}

func TestBadEveryIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive interval")
		}
	}()
	New().Every(0, 0, func() bool { return false })
}

func TestNewWithCapacity(t *testing.T) {
	s := NewWithCapacity(1024)
	if got := cap(s.queue); got != 1024 {
		t.Errorf("queue capacity = %d, want 1024", got)
	}
	// Negative hints are clamped, not panicked on.
	s = NewWithCapacity(-1)
	s.At(time.Second, func() {})
	s.Run()
	if s.Events() != 1 {
		t.Errorf("Events = %d, want 1", s.Events())
	}
}

// Interleaved schedule/execute stress: nested events keep the heap busy at
// mixed depths so sift-up and sift-down both get exercised past the 4-ary
// branch boundaries.
func TestHeapStressInterleaved(t *testing.T) {
	s := New()
	var fired []time.Duration
	record := func() { fired = append(fired, s.Now()) }
	// Seed a pseudo-random but deterministic schedule pattern.
	x := uint64(12345)
	next := func(mod uint64) time.Duration {
		x = x*6364136223846793005 + 1442695040888963407
		return time.Duration(x%mod) * time.Millisecond
	}
	for i := 0; i < 500; i++ {
		at := next(1000)
		s.At(at, func() {
			record()
			if s.Events()%3 == 0 {
				s.After(next(50), record)
			}
		})
	}
	s.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("clock went backwards: fired[%d]=%v < fired[%d]=%v",
				i, fired[i], i-1, fired[i-1])
		}
	}
	if uint64(len(fired)) != s.Events() {
		t.Fatalf("recorded %d events, simulator counted %d", len(fired), s.Events())
	}
}

// Property: for any multiset of schedule times, execution order is the
// sorted order and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var fired []time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Millisecond
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		sorted := make([]time.Duration, len(offsets))
		for i, o := range offsets {
			sorted[i] = time.Duration(o) * time.Millisecond
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAtArgOrderMatchesAt pins the monomorphic form to the closure form:
// the same schedule driven through AtArg fires in exactly the order the
// At-only simulation produces.
func TestAtArgOrderMatchesAt(t *testing.T) {
	offsets := []int{7, 3, 3, 9, 0, 3, 7, 0}

	runAt := func() []int {
		s := New()
		var order []int
		for i, o := range offsets {
			i := i
			s.At(time.Duration(o)*time.Millisecond, func() { order = append(order, i) })
		}
		s.Run()
		return order
	}
	runAtArg := func() []int {
		s := New()
		var order []int
		record := func(arg uint64) { order = append(order, int(arg)) }
		for i, o := range offsets {
			s.AtArg(time.Duration(o)*time.Millisecond, record, uint64(i))
		}
		s.Run()
		return order
	}

	at, atArg := runAt(), runAtArg()
	if len(at) != len(atArg) {
		t.Fatalf("At fired %d events, AtArg fired %d", len(at), len(atArg))
	}
	for i := range at {
		if at[i] != atArg[i] {
			t.Fatalf("order diverges at %d: At=%v AtArg=%v", i, at, atArg)
		}
	}
}

// TestSameInstantHeapBeforeRing pins the batch lane's ordering invariant:
// events already in the heap for instant T (scheduled before T, smaller seq)
// fire before events scheduled AT instant T (the ring), and ring events keep
// FIFO order — exactly the (time, seq) total order of a heap-only queue.
func TestSameInstantHeapBeforeRing(t *testing.T) {
	s := New()
	var order []string
	record := func(tag string) { order = append(order, tag) }
	const T = time.Second
	s.At(T, func() {
		record("heap-a")
		// Scheduled at now == T: batch lane, must fire after heap-b.
		s.At(T, func() {
			record("ring-c")
			s.After(0, func() { record("ring-e") })
		})
	})
	s.At(T, func() {
		record("heap-b")
		s.After(0, func() { record("ring-d") })
	})
	s.Run()
	want := []string{"heap-a", "heap-b", "ring-c", "ring-d", "ring-e"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSameInstantCascadeGrowsRing forces ring growth and wraparound: a
// cascade where each event schedules the next at the same instant, repeated
// across instants so the head index wraps.
func TestSameInstantCascadeGrowsRing(t *testing.T) {
	s := New()
	fired := 0
	var chain func(uint64)
	chain = func(remaining uint64) {
		fired++
		if remaining > 0 {
			s.AfterArg(0, chain, remaining-1)
		}
	}
	for round := 1; round <= 4; round++ {
		s.AfterArg(time.Duration(round)*time.Second, chain, 63)
	}
	s.Run()
	if fired != 4*64 {
		t.Errorf("fired = %d, want %d", fired, 4*64)
	}
	if s.Events() != uint64(4*64) {
		t.Errorf("Events = %d, want %d", s.Events(), 4*64)
	}
}

// TestRunUntilDrainsSameInstantAtDeadline: an event at the deadline that
// schedules another at the same instant must see both fire before the clock
// parks at the deadline (the pre-ring semantics).
func TestRunUntilDrainsSameInstantAtDeadline(t *testing.T) {
	s := New()
	fired := 0
	s.At(time.Second, func() {
		fired++
		s.After(0, func() { fired++ })
	})
	s.At(2*time.Second, func() { fired++ })
	s.RunUntil(time.Second)
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (same-instant follow-up within deadline)", fired)
	}
	if s.Now() != time.Second {
		t.Errorf("Now = %v, want 1s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

// TestMaxPendingWatermark: MaxPending records the peak queue depth across
// both the heap and the same-instant ring, and survives the drain.
func TestMaxPendingWatermark(t *testing.T) {
	s := New()
	noop := func(uint64) {}
	s.At(time.Second, func() {
		for i := 0; i < 3; i++ {
			s.AfterArg(0, noop, 0) // ring occupancy counts toward the peak
		}
	})
	for i := 1; i <= 4; i++ {
		s.AtArg(time.Duration(i)*time.Second, noop, 0)
	}
	s.Run()
	// Peak: 4 AtArg timers + the At(1s) event = 5 before run; during the 1s
	// event 3 ring events join while all 4 AtArg timers are still queued = 7.
	if got := s.MaxPending(); got != 7 {
		t.Errorf("MaxPending = %d, want 7", got)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestAtArgZeroAllocSteadyState gates the monomorphic schedule→fire cycle:
// once the queue has its capacity, scheduling and dispatching an AtArg event
// allocates nothing.
func TestAtArgZeroAllocSteadyState(t *testing.T) {
	s := NewWithCapacity(4)
	var sum uint64
	fn := func(arg uint64) { sum += arg }
	at := time.Duration(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		at += time.Millisecond
		s.AtArg(at, fn, 1)
		s.Run()
	}); allocs != 0 {
		t.Errorf("AtArg schedule+dispatch allocates %.1f/op, want 0", allocs)
	}

	// Same-instant batch dispatch through the ring, warm.
	var cascade func(uint64)
	cascade = func(remaining uint64) {
		sum++
		if remaining > 0 {
			s.AfterArg(0, cascade, remaining-1)
		}
	}
	s.AfterArg(time.Millisecond, cascade, 32)
	s.Run() // warms the ring buffer
	if allocs := testing.AllocsPerRun(100, func() {
		s.AfterArg(time.Millisecond, cascade, 32)
		s.Run()
	}); allocs != 0 {
		t.Errorf("same-instant cascade allocates %.1f/batch, want 0", allocs)
	}
}

// Property: mixing At and AtArg over any multiset of schedule times still
// fires in sorted time order with FIFO ties.
func TestEventOrderPropertyAtArg(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var fired []time.Duration
		record := func(uint64) { fired = append(fired, s.Now()) }
		for i, o := range offsets {
			at := time.Duration(o) * time.Millisecond
			if i%2 == 0 {
				s.AtArg(at, record, uint64(i))
			} else {
				s.At(at, func() { fired = append(fired, s.Now()) })
			}
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		sorted := make([]time.Duration, len(offsets))
		for i, o := range offsets {
			sorted[i] = time.Duration(o) * time.Millisecond
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkSimSchedule measures the At→Run hot path: one schedule plus one
// dispatch per iteration against a warm queue. With the value-typed 4-ary
// heap this is 0 allocs/op (container/heap boxed one *event per At).
func BenchmarkSimSchedule(b *testing.B) {
	s := NewWithCapacity(1)
	fn := func() {}
	t := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += time.Millisecond
		s.At(t, fn)
		s.Run()
	}
}

// BenchmarkSimScheduleDeep keeps 1024 events pending so every At/pop pays
// realistic sift depths rather than the trivial single-element case.
func BenchmarkSimScheduleDeep(b *testing.B) {
	const depth = 1024
	s := NewWithCapacity(depth + 1)
	fn := func() {}
	t := time.Duration(0)
	for i := 0; i < depth; i++ {
		t += time.Millisecond
		s.At(t, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += time.Millisecond
		s.At(t, fn)
		s.RunUntil(s.queue[0].at)
	}
}

// BenchmarkSimScheduleArg is BenchmarkSimSchedule through the monomorphic
// AtArg form: schedule+dispatch with the callback and argument stored inline
// in the event, no closure.
func BenchmarkSimScheduleArg(b *testing.B) {
	s := NewWithCapacity(1)
	fn := func(uint64) {}
	t := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += time.Millisecond
		s.AtArg(t, fn, uint64(i))
		s.Run()
	}
}

// BenchmarkSimBatchDispatch measures the same-instant batch lane: one timer
// fans out into a 64-event same-instant cascade popped from the FIFO ring
// with no sifting. ns/op is per 64-event batch.
func BenchmarkSimBatchDispatch(b *testing.B) {
	s := NewWithCapacity(4)
	var cascade func(uint64)
	cascade = func(remaining uint64) {
		if remaining > 0 {
			s.AfterArg(0, cascade, remaining-1)
		}
	}
	t := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += time.Millisecond
		s.AtArg(t, cascade, 63)
		s.Run()
	}
}
