// Package sim is a deterministic discrete-event simulator.
//
// The paper evaluates SmartConf on a physical testbed over hundreds of
// seconds of wall-clock time. This repository reproduces those experiments
// on virtual time: substrates (RPC server, key-value store, namenode,
// MapReduce cluster) are written as event-driven processes against a
// Simulation, so a 700-second experiment executes in milliseconds and two
// runs with the same seed are bit-identical.
//
// Events scheduled for the same instant fire in scheduling order (a strict
// total order over (time, sequence)), which keeps every experiment
// reproducible regardless of map iteration or goroutine scheduling — the
// simulator is single-goroutine by design.
//
// The event queue is a value-typed 4-ary implicit heap: events are stored
// inline in a slice (no per-At allocation, no interface boxing as with
// container/heap), and the wider fan-out halves the sift-down depth for the
// queue sizes the substrates produce.
//
// Two raw-speed facilities serve 10M-request runs (see DESIGN.md):
//
//   - AtArg/AfterArg schedule a monomorphic event — a func(uint64) plus its
//     argument, both stored inline in the event — so the per-request
//     schedule→fire cycle allocates no closure. Substrates bind a method
//     value once at construction and pass the stored field; creating the
//     method value at the call site would allocate.
//   - A same-instant batch lane: an event scheduled for exactly the current
//     instant (t == Now) bypasses the heap into a FIFO ring and is popped in
//     O(1) with no sifting. The (time, seq) order is preserved exactly: any
//     heap event with at == Now was necessarily scheduled at an earlier
//     instant (scheduling into the heap requires t > Now), hence carries a
//     smaller sequence number than every ring event, so draining heap
//     events at Now before the ring replays the heap-only order bit for bit.
package sim

import (
	"fmt"
	"time"
)

// event is a scheduled callback, stored by value in the heap slice and the
// same-instant ring. Exactly one of fn (closure form, At) or argFn
// (monomorphic form, AtArg) is set.
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	argFn func(uint64)
	arg   uint64
}

// fire runs the event's callback.
func (e *event) fire() {
	if e.argFn != nil {
		e.argFn(e.arg)
		return
	}
	e.fn()
}

// before is the strict total order (time, then scheduling sequence).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// defaultQueueCapacity is the initial event-queue capacity used by New.
// Substrates that know their steady-state queue depth can pass a tighter or
// larger hint via NewWithCapacity.
const defaultQueueCapacity = 256

// Simulation owns a virtual clock and an event queue.
// It is not safe for concurrent use: all substrate code runs inside event
// callbacks on a single goroutine.
type Simulation struct {
	now     time.Duration
	queue   []event // 4-ary min-heap ordered by (at, seq)
	seq     uint64
	stopped bool
	events  uint64 // total events executed (diagnostics / benchmarks)

	// Same-instant batch lane: events scheduled at exactly now, drained FIFO
	// after the heap's events for the same instant (see the package comment
	// for the ordering argument). ring is a circular buffer.
	ring     []event
	ringHead int
	ringLen  int

	maxPending int // high-watermark of Pending() (diagnostics / pre-sizing)
}

// New returns an empty simulation at time zero with a default queue capacity.
func New() *Simulation {
	return NewWithCapacity(defaultQueueCapacity)
}

// NewWithCapacity returns an empty simulation whose event queue is pre-sized
// for roughly hint simultaneously pending events, avoiding growth
// reallocations on the scheduling hot path.
func NewWithCapacity(hint int) *Simulation {
	if hint < 0 {
		hint = 0
	}
	return &Simulation{queue: make([]event, 0, hint)}
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.now }

// Events returns the number of events executed so far.
func (s *Simulation) Events() uint64 { return s.events }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (s *Simulation) At(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	s.schedule(event{at: t, fn: fn})
}

// After schedules fn d after the current virtual time. Negative d panics.
func (s *Simulation) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. This is the
// monomorphic form of At for zero-allocation request paths: the callback and
// its argument are stored inline in the event, so scheduling captures no
// closure. Pass a function value stored once (e.g. a struct field bound at
// construction) — writing sv.sim.AtArg(t, sv.method, arg) creates a new
// method value per call, which allocates.
func (s *Simulation) AtArg(t time.Duration, fn func(uint64), arg uint64) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	s.schedule(event{at: t, argFn: fn, arg: arg})
}

// AfterArg schedules fn(arg) d after the current virtual time.
func (s *Simulation) AfterArg(d time.Duration, fn func(uint64), arg uint64) {
	s.AtArg(s.now+d, fn, arg)
}

// schedule routes an event to the heap (future instants) or the same-instant
// ring (t == now, the batch lane). Scheduling in the past panics.
func (s *Simulation) schedule(e event) {
	if e.at < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", e.at, s.now))
	}
	s.seq++
	e.seq = s.seq
	if e.at == s.now {
		s.ringPush(e)
	} else {
		s.queue = append(s.queue, e)
		s.siftUp(len(s.queue) - 1)
	}
	if p := len(s.queue) + s.ringLen; p > s.maxPending {
		s.maxPending = p
	}
}

// Every schedules fn after the delay start (relative to now, like After) and
// then every interval while fn returns true. interval must be positive.
func (s *Simulation) Every(start, interval time.Duration, fn func() bool) {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	var tick func()
	next := s.now + start
	tick = func() {
		if s.stopped {
			return
		}
		if fn() {
			next += interval
			s.At(next, tick)
		}
	}
	s.At(next, tick)
}

// Stop halts the run loop after the current event; pending events remain
// queued but are not executed.
func (s *Simulation) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Simulation) Stopped() bool { return s.stopped }

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	for (len(s.queue) > 0 || s.ringLen > 0) && !s.stopped {
		s.step()
	}
}

// RunUntil executes all events scheduled at or before deadline (unless Stop
// fires first) and then advances the clock to the deadline.
func (s *Simulation) RunUntil(deadline time.Duration) {
	for !s.stopped {
		if s.ringLen > 0 && s.now <= deadline {
			// Ring events are all due at now; run them unless the clock has
			// already passed the deadline.
			if len(s.queue) > 0 && s.queue[0].at == s.now {
				s.step() // heap events at now precede the ring (smaller seq)
				continue
			}
			s.step()
			continue
		}
		if len(s.queue) == 0 || s.queue[0].at > deadline {
			break
		}
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Simulation) Pending() int { return len(s.queue) + s.ringLen }

// MaxPending reports the high-watermark of Pending over the simulation's
// lifetime — the measured steady-state queue depth that NewWithCapacity
// hints should be sized to (the -scale artifact reports it per substrate).
func (s *Simulation) MaxPending() int { return s.maxPending }

// step pops and fires the next event in (time, seq) order: heap events due
// at the current instant precede the same-instant ring (their sequence
// numbers are necessarily smaller — see the package comment), and the ring
// drains FIFO before the clock may advance to a future heap event.
func (s *Simulation) step() {
	if len(s.queue) > 0 && s.queue[0].at == s.now {
		e := s.queue[0]
		s.pop()
		s.events++
		e.fire()
		return
	}
	if s.ringLen > 0 {
		e := s.ringPop()
		s.events++
		e.fire()
		return
	}
	e := s.queue[0]
	s.pop()
	s.now = e.at
	s.events++
	e.fire()
}

// ringPush appends to the same-instant FIFO, growing the circular buffer by
// doubling when full.
func (s *Simulation) ringPush(e event) {
	if s.ringLen == len(s.ring) {
		grown := make([]event, max(4, 2*len(s.ring)))
		for i := 0; i < s.ringLen; i++ {
			grown[i] = s.ring[(s.ringHead+i)%len(s.ring)]
		}
		s.ring = grown
		s.ringHead = 0
	}
	s.ring[(s.ringHead+s.ringLen)%len(s.ring)] = e
	s.ringLen++
}

// ringPop removes the FIFO head in O(1) — the batch-dispatch path: no
// sifting for same-instant cascades.
func (s *Simulation) ringPop() event {
	e := s.ring[s.ringHead]
	s.ring[s.ringHead] = event{} // release the callbacks for GC
	s.ringHead = (s.ringHead + 1) % len(s.ring)
	s.ringLen--
	return e
}

// pop removes the minimum event from the heap.
func (s *Simulation) pop() {
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue[n] = event{} // release the callback for GC
	s.queue = s.queue[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

// siftUp restores the heap property after appending at index i.
// Parent of i in a 4-ary heap is (i-1)/4.
func (s *Simulation) siftUp(i int) {
	e := s.queue[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(s.queue[p]) {
			break
		}
		s.queue[i] = s.queue[p]
		i = p
	}
	s.queue[i] = e
}

// siftDown restores the heap property from index i toward the leaves.
// Children of i are 4i+1 … 4i+4.
func (s *Simulation) siftDown(i int) {
	n := len(s.queue)
	e := s.queue[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.queue[j].before(s.queue[min]) {
				min = j
			}
		}
		if !s.queue[min].before(e) {
			break
		}
		s.queue[i] = s.queue[min]
		i = min
	}
	s.queue[i] = e
}
