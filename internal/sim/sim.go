// Package sim is a deterministic discrete-event simulator.
//
// The paper evaluates SmartConf on a physical testbed over hundreds of
// seconds of wall-clock time. This repository reproduces those experiments
// on virtual time: substrates (RPC server, key-value store, namenode,
// MapReduce cluster) are written as event-driven processes against a
// Simulation, so a 700-second experiment executes in milliseconds and two
// runs with the same seed are bit-identical.
//
// Events scheduled for the same instant fire in scheduling order (a strict
// total order over (time, sequence)), which keeps every experiment
// reproducible regardless of map iteration or goroutine scheduling — the
// simulator is single-goroutine by design.
//
// The event queue is a value-typed 4-ary implicit heap: events are stored
// inline in a slice (no per-At allocation, no interface boxing as with
// container/heap), and the wider fan-out halves the sift-down depth for the
// queue sizes the substrates produce.
package sim

import (
	"fmt"
	"time"
)

// event is a scheduled callback, stored by value in the heap slice.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// before is the strict total order (time, then scheduling sequence).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// defaultQueueCapacity is the initial event-queue capacity used by New.
// Substrates that know their steady-state queue depth can pass a tighter or
// larger hint via NewWithCapacity.
const defaultQueueCapacity = 256

// Simulation owns a virtual clock and an event queue.
// It is not safe for concurrent use: all substrate code runs inside event
// callbacks on a single goroutine.
type Simulation struct {
	now     time.Duration
	queue   []event // 4-ary min-heap ordered by (at, seq)
	seq     uint64
	stopped bool
	events  uint64 // total events executed (diagnostics / benchmarks)
}

// New returns an empty simulation at time zero with a default queue capacity.
func New() *Simulation {
	return NewWithCapacity(defaultQueueCapacity)
}

// NewWithCapacity returns an empty simulation whose event queue is pre-sized
// for roughly hint simultaneously pending events, avoiding growth
// reallocations on the scheduling hot path.
func NewWithCapacity(hint int) *Simulation {
	if hint < 0 {
		hint = 0
	}
	return &Simulation{queue: make([]event, 0, hint)}
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.now }

// Events returns the number of events executed so far.
func (s *Simulation) Events() uint64 { return s.events }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (s *Simulation) At(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	s.queue = append(s.queue, event{at: t, seq: s.seq, fn: fn})
	s.siftUp(len(s.queue) - 1)
}

// After schedules fn d after the current virtual time. Negative d panics.
func (s *Simulation) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Every schedules fn after the delay start (relative to now, like After) and
// then every interval while fn returns true. interval must be positive.
func (s *Simulation) Every(start, interval time.Duration, fn func() bool) {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	var tick func()
	next := s.now + start
	tick = func() {
		if s.stopped {
			return
		}
		if fn() {
			next += interval
			s.At(next, tick)
		}
	}
	s.At(next, tick)
}

// Stop halts the run loop after the current event; pending events remain
// queued but are not executed.
func (s *Simulation) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Simulation) Stopped() bool { return s.stopped }

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes all events scheduled at or before deadline (unless Stop
// fires first) and then advances the clock to the deadline.
func (s *Simulation) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && !s.stopped && s.queue[0].at <= deadline {
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Simulation) Pending() int { return len(s.queue) }

func (s *Simulation) step() {
	e := s.queue[0]
	s.pop()
	s.now = e.at
	s.events++
	e.fn()
}

// pop removes the minimum event from the heap.
func (s *Simulation) pop() {
	n := len(s.queue) - 1
	s.queue[0] = s.queue[n]
	s.queue[n] = event{} // release the callback for GC
	s.queue = s.queue[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

// siftUp restores the heap property after appending at index i.
// Parent of i in a 4-ary heap is (i-1)/4.
func (s *Simulation) siftUp(i int) {
	e := s.queue[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(s.queue[p]) {
			break
		}
		s.queue[i] = s.queue[p]
		i = p
	}
	s.queue[i] = e
}

// siftDown restores the heap property from index i toward the leaves.
// Children of i are 4i+1 … 4i+4.
func (s *Simulation) siftDown(i int) {
	n := len(s.queue)
	e := s.queue[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.queue[j].before(s.queue[min]) {
				min = j
			}
		}
		if !s.queue[min].before(e) {
			break
		}
		s.queue[i] = s.queue[min]
		i = min
	}
	s.queue[i] = e
}
