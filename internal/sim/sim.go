// Package sim is a deterministic discrete-event simulator.
//
// The paper evaluates SmartConf on a physical testbed over hundreds of
// seconds of wall-clock time. This repository reproduces those experiments
// on virtual time: substrates (RPC server, key-value store, namenode,
// MapReduce cluster) are written as event-driven processes against a
// Simulation, so a 700-second experiment executes in milliseconds and two
// runs with the same seed are bit-identical.
//
// Events scheduled for the same instant fire in scheduling order (a strict
// total order over (time, sequence)), which keeps every experiment
// reproducible regardless of map iteration or goroutine scheduling — the
// simulator is single-goroutine by design.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulation owns a virtual clock and an event queue.
// It is not safe for concurrent use: all substrate code runs inside event
// callbacks on a single goroutine.
type Simulation struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	events  uint64 // total events executed (diagnostics / benchmarks)
}

// New returns an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.now }

// Events returns the number of events executed so far.
func (s *Simulation) Events() uint64 { return s.events }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (s *Simulation) At(t time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current virtual time. Negative d panics.
func (s *Simulation) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Every schedules fn after the delay start (relative to now, like After) and
// then every interval while fn returns true. interval must be positive.
func (s *Simulation) Every(start, interval time.Duration, fn func() bool) {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	var tick func()
	next := s.now + start
	tick = func() {
		if s.stopped {
			return
		}
		if fn() {
			next += interval
			s.At(next, tick)
		}
	}
	s.At(next, tick)
}

// Stop halts the run loop after the current event; pending events remain
// queued but are not executed.
func (s *Simulation) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Simulation) Stopped() bool { return s.stopped }

// Run executes events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes all events scheduled at or before deadline (unless Stop
// fires first) and then advances the clock to the deadline.
func (s *Simulation) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && !s.stopped && s.queue[0].at <= deadline {
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Simulation) Pending() int { return len(s.queue) }

func (s *Simulation) step() {
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.events++
	e.fn()
}
