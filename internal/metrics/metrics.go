// Package metrics provides the sensor toolkit that feeds SmartConf
// controllers: gauges, counters, windowed throughput meters, and latency
// trackers.
//
// §4.1.1 of the paper: "developers must provide a sensor that measures the
// performance metric M to be controlled" — in MapReduce these are variables
// like MemHeapUsedM and RpcProcessingAvgTime. The types here play that role
// for the simulated substrates. They take virtual timestamps explicitly so
// they work under the discrete-event simulator as well as wall clocks.
package metrics

import (
	"time"

	"smartconf/internal/stat"
)

// Gauge is a point-in-time value (heap bytes used, queue length).
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add increments the gauge value by d (may be negative).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Counter is a monotone event counter.
type Counter struct {
	n int64
}

// Inc adds one event.
func (c *Counter) Inc() { c.n++ }

// Add adds n events; negative n panics.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative counter increment")
	}
	c.n += n
}

// Value returns the event count.
func (c *Counter) Value() int64 { return c.n }

// Meter measures event rate over a sliding time window, bucketed to bound
// memory. Use it for throughput sensors (completed ops per second).
type Meter struct {
	window  time.Duration
	bucket  time.Duration
	buckets []meterBucket
}

type meterBucket struct {
	start time.Duration
	count float64
}

// NewMeter returns a meter with the given window, internally bucketed into
// 20 slots (or 1ms minimum).
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		panic("metrics: meter window must be positive")
	}
	bucket := window / 20
	if bucket < time.Millisecond {
		bucket = time.Millisecond
	}
	// At most window/bucket+1 buckets are ever live (expire runs on every
	// Mark), so pre-sizing a few past that ceiling means Mark never grows
	// the slice — the meter is allocation-free from its first event.
	return &Meter{window: window, bucket: bucket, buckets: make([]meterBucket, 0, 24)}
}

// Mark records n events at virtual time now.
func (m *Meter) Mark(now time.Duration, n float64) {
	start := now - now%m.bucket
	if len(m.buckets) > 0 && m.buckets[len(m.buckets)-1].start == start {
		m.buckets[len(m.buckets)-1].count += n
	} else {
		m.buckets = append(m.buckets, meterBucket{start: start, count: n})
	}
	m.expire(now)
}

// Rate returns events per second over the window ending at now.
func (m *Meter) Rate(now time.Duration) float64 {
	m.expire(now)
	var total float64
	for _, b := range m.buckets {
		total += b.count
	}
	span := m.window
	if now < m.window {
		span = now // early in the run the window hasn't filled yet
	}
	if span <= 0 {
		return 0
	}
	return total / span.Seconds()
}

// Total returns the raw event count within the window ending at now.
func (m *Meter) Total(now time.Duration) float64 {
	m.expire(now)
	var total float64
	for _, b := range m.buckets {
		total += b.count
	}
	return total
}

func (m *Meter) expire(now time.Duration) {
	cutoff := now - m.window
	// Common case on every Mark: the head bucket is still live, so there is
	// nothing to drop — return before touching the rest of the slice.
	if len(m.buckets) == 0 || m.buckets[0].start+m.bucket > cutoff {
		return
	}
	i := 1
	for i < len(m.buckets) && m.buckets[i].start+m.bucket <= cutoff {
		i++
	}
	m.buckets = append(m.buckets[:0], m.buckets[i:]...)
}

// Latency tracks request latencies: a sliding sample window for averages and
// percentiles, plus the all-time worst case (the sensor behind worst-case
// block-time constraints like HB2149 and HD4995).
//
// Sensor cost model: controllers read percentiles once per control period
// while the substrate observes a sample per request, so both paths must be
// cheap. Observe is O(1) and allocation-free in every configuration. For
// windows above ExactWindowThreshold the tracker additionally maintains a
// stat.Sketch whose counts follow the live window exactly (each eviction is
// paired with a sketch removal), making Percentile, Snapshot and WindowMax
// O(buckets) bucket scans — within stat.RelativeError of the true
// nearest-rank order statistic — instead of O(n log n) copy-and-sorts. At or
// below the threshold the window is small enough that the exact
// interpolated path is already cheap, and its results stay bit-identical to
// the pre-sketch implementation (small-window goldens and worst-case
// block-time sensors are exact by construction).
type Latency struct {
	window *stat.Window
	sketch *stat.Sketch // nil when cap ≤ ExactWindowThreshold: exact path
	worst  time.Duration
	last   time.Duration
	count  int64
	sum    time.Duration
}

// ExactWindowThreshold is the window capacity above which Latency switches
// its percentile reads from the exact copy-and-sort path to the streaming
// sketch.
const ExactWindowThreshold = 128

// NewLatency returns a tracker keeping the most recent n samples.
func NewLatency(n int) *Latency {
	l := &Latency{window: stat.NewWindow(n)}
	if n > ExactWindowThreshold {
		l.sketch = stat.NewSketch()
	}
	return l
}

// Observe records one latency sample. O(1), never allocates — this is the
// per-request hot path in every substrate.
func (l *Latency) Observe(d time.Duration) {
	x := d.Seconds()
	evicted, ok := l.window.PushEvict(x)
	if l.sketch != nil {
		l.sketch.Observe(x)
		if ok {
			l.sketch.Remove(evicted)
		}
	}
	if d > l.worst {
		l.worst = d
	}
	l.last = d
	l.count++
	l.sum += d
}

// Last returns the most recent sample (the controller's preferred sensor
// reading: unlike Worst or WindowMax it reflects adjustments immediately).
func (l *Latency) Last() time.Duration { return l.last }

// Mean returns the mean latency over the sample window. O(1) in both modes:
// the window keeps streaming sums, so no samples are walked.
func (l *Latency) Mean() time.Duration {
	return time.Duration(l.window.Mean() * float64(time.Second))
}

// OverallMean returns the mean over all samples ever observed.
func (l *Latency) OverallMean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Percentile returns the q-th percentile over the sample window (0 when the
// window is empty or q is out of range). Sketch-mode trackers answer from
// the bucket histogram without copying or sorting.
func (l *Latency) Percentile(q float64) time.Duration {
	if l.sketch != nil {
		if q < 0 || q > 100 {
			return 0
		}
		return time.Duration(l.sketch.Quantile(q) * float64(time.Second))
	}
	v, err := stat.Percentile(l.window.Snapshot(), q)
	if err != nil {
		return 0
	}
	return time.Duration(v * float64(time.Second))
}

// WindowMax returns the largest sample currently in the window (within
// stat.RelativeError in sketch mode; exact otherwise).
func (l *Latency) WindowMax() time.Duration {
	if l.sketch != nil {
		return time.Duration(l.sketch.Max() * float64(time.Second))
	}
	return time.Duration(l.window.Max() * float64(time.Second))
}

// Worst returns the all-time maximum latency.
func (l *Latency) Worst() time.Duration { return l.worst }

// Count returns the number of samples ever observed.
func (l *Latency) Count() int64 { return l.count }

// LatencySnapshot is a one-call summary of a Latency tracker. Count and
// Worst are all-time; Mean, P50 and P95 are over the current sample window.
type LatencySnapshot struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	Worst time.Duration
}

// Snapshot returns count, mean, p50, p95 and worst in one call, so
// experiment renderers and CSV writers do not recompute percentiles
// piecemeal from the same window. Sketch-mode trackers read both
// percentiles from one cumulative bucket scan without allocating; exact
// trackers use a single copy and sort (stat.Percentiles).
func (l *Latency) Snapshot() LatencySnapshot {
	snap := LatencySnapshot{
		Count: l.count,
		Mean:  l.Mean(),
		Worst: l.worst,
	}
	if l.sketch != nil {
		p50, p95 := l.sketch.QuantilePair(50, 95)
		snap.P50 = time.Duration(p50 * float64(time.Second))
		snap.P95 = time.Duration(p95 * float64(time.Second))
		return snap
	}
	if ps, err := stat.Percentiles(l.window.Snapshot(), 50, 95); err == nil {
		snap.P50 = time.Duration(ps[0] * float64(time.Second))
		snap.P95 = time.Duration(ps[1] * float64(time.Second))
	}
	return snap
}

// Reset clears the window and worst case (used at phase boundaries when a
// constraint's horizon restarts).
func (l *Latency) Reset() {
	l.window.Reset()
	if l.sketch != nil {
		l.sketch.Reset()
	}
	l.worst = 0
	l.last = 0
	l.count = 0
	l.sum = 0
}
