package metrics

import (
	"testing"
	"time"
)

// The lazy-expiry cutoff is exact: a bucket dies the instant
// start+bucket == now−window, not one observation later.
func TestMeterExpiryExactBoundary(t *testing.T) {
	m := NewMeter(time.Second) // bucket = 50ms
	m.Mark(0, 1)               // bucket [0, 50ms)
	// cutoff = now − 1s; the bucket expires when 50ms ≤ cutoff, i.e. now ≥ 1.05s.
	if got := m.Total(1050*time.Millisecond - time.Nanosecond); got != 1 {
		t.Errorf("Total just before the boundary = %v, want 1", got)
	}
	if got := m.Total(1050 * time.Millisecond); got != 0 {
		t.Errorf("Total at the boundary = %v, want 0", got)
	}
}

// Partial expiry: old buckets drop, live ones survive, in one pass.
func TestMeterPartialExpiry(t *testing.T) {
	m := NewMeter(time.Second)
	m.Mark(0, 2)
	m.Mark(500*time.Millisecond, 3)
	m.Mark(990*time.Millisecond, 5)
	if got := m.Total(1100 * time.Millisecond); got != 8 {
		t.Errorf("Total = %v, want 8 (first bucket expired)", got)
	}
	if got := len(m.buckets); got != 2 {
		t.Errorf("buckets = %d, want 2", got)
	}
}

// Rate's denominator switches from elapsed time to the window exactly when
// the window first fills.
func TestMeterRateEarlySpanBoundary(t *testing.T) {
	m := NewMeter(time.Second)
	m.Mark(0, 10)
	if got := m.Rate(500 * time.Millisecond); got != 20 {
		t.Errorf("Rate before the window fills = %v, want 20 (10 events / 0.5s)", got)
	}
	if got := m.Rate(time.Second); got != 10 {
		t.Errorf("Rate at the window boundary = %v, want 10", got)
	}
	if got := m.Rate(0); got != 0 {
		t.Errorf("Rate at t=0 = %v, want 0 (zero span)", got)
	}
}

// Quantile edges: with one sample every percentile is that sample; with two,
// p50 and p95 must interpolate within [lo, hi] and order correctly.
func TestLatencySnapshotQuantileEdges(t *testing.T) {
	one := NewLatency(8)
	one.Observe(7 * time.Millisecond)
	s := one.Snapshot()
	if s.P50 != 7*time.Millisecond || s.P95 != 7*time.Millisecond {
		t.Errorf("single-sample quantiles p50=%v p95=%v, want 7ms both", s.P50, s.P95)
	}
	if s.Mean != 7*time.Millisecond || s.Worst != 7*time.Millisecond || s.Count != 1 {
		t.Errorf("single-sample snapshot %+v", s)
	}

	two := NewLatency(8)
	two.Observe(10 * time.Millisecond)
	two.Observe(20 * time.Millisecond)
	s = two.Snapshot()
	if s.P50 < 10*time.Millisecond || s.P50 > 20*time.Millisecond {
		t.Errorf("two-sample p50 = %v outside [10ms,20ms]", s.P50)
	}
	if s.P95 < s.P50 || s.P95 > 20*time.Millisecond {
		t.Errorf("two-sample p95 = %v, want in [p50,20ms]", s.P95)
	}
}

// Window eviction: all-time aggregates (Count, Worst, OverallMean) keep the
// evicted history; windowed ones (WindowMax, quantiles) forget it.
func TestLatencyWindowVersusAllTime(t *testing.T) {
	l := NewLatency(2)
	l.Observe(100 * time.Millisecond) // will be evicted
	l.Observe(10 * time.Millisecond)
	l.Observe(20 * time.Millisecond)
	if got := l.WindowMax(); got != 20*time.Millisecond {
		t.Errorf("WindowMax = %v, want 20ms (100ms evicted)", got)
	}
	s := l.Snapshot()
	if s.Worst != 100*time.Millisecond {
		t.Errorf("Worst = %v, want all-time 100ms", s.Worst)
	}
	if s.Count != 3 {
		t.Errorf("Count = %d, want 3", s.Count)
	}
	if s.P95 > 20*time.Millisecond {
		t.Errorf("P95 = %v includes evicted sample", s.P95)
	}
	if got := l.OverallMean(); got != (130*time.Millisecond)/3 {
		t.Errorf("OverallMean = %v, want 130ms/3", got)
	}
}
