package metrics

import (
	"math"
	"sort"
	"testing"
	"time"

	"smartconf/internal/stat"
)

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(5)
	g.Add(-3)
	if g.Value() != 12 {
		t.Errorf("gauge = %v, want 12", g.Value())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative Add")
		}
	}()
	c.Add(-1)
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(10 * time.Second)
	// 5 events/s for 10 seconds.
	for i := 0; i < 100; i++ {
		m.Mark(time.Duration(i)*100*time.Millisecond, 0.5)
	}
	rate := m.Rate(10 * time.Second)
	if rate < 4.5 || rate > 5.5 {
		t.Errorf("rate = %v, want ≈5", rate)
	}
	// After a long quiet period, the window drains to zero.
	if got := m.Rate(100 * time.Second); got != 0 {
		t.Errorf("quiet rate = %v, want 0", got)
	}
}

func TestMeterEarlyWindow(t *testing.T) {
	m := NewMeter(10 * time.Second)
	m.Mark(time.Second, 10)
	// Only 2s elapsed: rate should use elapsed span, not full window.
	rate := m.Rate(2 * time.Second)
	if rate < 4 || rate > 6 {
		t.Errorf("early rate = %v, want ≈5", rate)
	}
}

func TestMeterTotalAndExpiry(t *testing.T) {
	m := NewMeter(time.Second)
	m.Mark(0, 3)
	m.Mark(500*time.Millisecond, 2)
	if got := m.Total(900 * time.Millisecond); got != 5 {
		t.Errorf("total = %v, want 5", got)
	}
	// The first event (t=0) falls out of the window [400ms, 1400ms].
	if got := m.Total(1400 * time.Millisecond); got != 2 {
		t.Errorf("total after expiry = %v, want 2", got)
	}
	// Both fall out once the window moves past them entirely.
	if got := m.Total(1600 * time.Millisecond); got != 0 {
		t.Errorf("total fully expired = %v, want 0", got)
	}
}

func TestMeterPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMeter(0)
}

func TestLatencyTracker(t *testing.T) {
	l := NewLatency(100)
	for _, d := range []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		30 * time.Millisecond,
	} {
		l.Observe(d)
	}
	if got := l.Mean(); got < 19*time.Millisecond || got > 21*time.Millisecond {
		t.Errorf("mean = %v, want ≈20ms", got)
	}
	if got := l.Worst(); got != 30*time.Millisecond {
		t.Errorf("worst = %v", got)
	}
	if got := l.WindowMax(); got < 29*time.Millisecond || got > 31*time.Millisecond {
		t.Errorf("window max = %v", got)
	}
	if l.Count() != 3 {
		t.Errorf("count = %d", l.Count())
	}
	if got := l.OverallMean(); got != 20*time.Millisecond {
		t.Errorf("overall mean = %v", got)
	}
	p99 := l.Percentile(99)
	if p99 < 29*time.Millisecond || p99 > 31*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
}

func TestLatencyWindowEviction(t *testing.T) {
	l := NewLatency(2)
	l.Observe(100 * time.Millisecond)
	l.Observe(time.Millisecond)
	l.Observe(time.Millisecond)
	// Window holds only the last two samples, but Worst is all-time.
	if got := l.WindowMax(); got > 2*time.Millisecond {
		t.Errorf("window max = %v, want ≈1ms", got)
	}
	if got := l.Worst(); got != 100*time.Millisecond {
		t.Errorf("worst = %v, want 100ms", got)
	}
}

func TestLatencyReset(t *testing.T) {
	l := NewLatency(10)
	l.Observe(time.Second)
	l.Reset()
	if l.Worst() != 0 || l.Count() != 0 || l.Mean() != 0 || l.OverallMean() != 0 {
		t.Error("Reset did not clear state")
	}
	if got := l.Percentile(50); got != 0 {
		t.Errorf("percentile of empty window = %v, want 0", got)
	}
}

func TestLatencySnapshot(t *testing.T) {
	l := NewLatency(100)
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Errorf("count = %d, want 100", s.Count)
	}
	if s.Worst != 100*time.Millisecond {
		t.Errorf("worst = %v, want 100ms", s.Worst)
	}
	if s.Mean < 50*time.Millisecond || s.Mean > 51*time.Millisecond {
		t.Errorf("mean = %v, want ≈50.5ms", s.Mean)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 52*time.Millisecond {
		t.Errorf("p50 = %v, want ≈50ms", s.P50)
	}
	if s.P95 < 94*time.Millisecond || s.P95 > 96*time.Millisecond {
		t.Errorf("p95 = %v, want ≈95ms", s.P95)
	}
	// Snapshot agrees with the piecemeal accessors it replaces.
	if s.P95 != l.Percentile(95) || s.Mean != l.Mean() || s.Worst != l.Worst() {
		t.Error("snapshot disagrees with individual accessors")
	}
	e := NewLatency(4).Snapshot()
	if e.Count != 0 || e.Mean != 0 || e.P50 != 0 || e.P95 != 0 || e.Worst != 0 {
		t.Errorf("empty snapshot not zero: %+v", e)
	}
}

func TestMeterLazyExpiry(t *testing.T) {
	m := NewMeter(time.Second)
	// Fill several buckets, then Mark repeatedly inside the window: nothing
	// should be dropped while the head bucket is live.
	for i := 0; i < 10; i++ {
		m.Mark(time.Duration(i)*50*time.Millisecond, 1)
	}
	if got := m.Total(450 * time.Millisecond); got != 10 {
		t.Errorf("Total = %v, want 10 (nothing expired)", got)
	}
	// Jump far past the window: everything expires at once.
	if got := m.Total(10 * time.Second); got != 0 {
		t.Errorf("Total = %v, want 0 (all expired)", got)
	}
	if len(m.buckets) != 0 {
		t.Errorf("buckets = %d, want 0 after full expiry", len(m.buckets))
	}
	// And the meter keeps working afterwards.
	m.Mark(10*time.Second, 3)
	if got := m.Total(10 * time.Second); got != 3 {
		t.Errorf("Total after refill = %v, want 3", got)
	}
}

// A sketch-mode tracker (window above ExactWindowThreshold) must agree with
// the exact nearest-rank percentile to within the sketch's documented
// relative error, across the whole read surface.
func TestLatencySketchModeAccuracy(t *testing.T) {
	l := NewLatency(512)
	var live []time.Duration
	for i := 0; i < 2000; i++ {
		d := time.Duration((i*i*7919)%500000+1000) * time.Microsecond
		l.Observe(d)
		live = append(live, d)
		if len(live) > 512 {
			live = live[1:]
		}
	}
	sorted := append([]time.Duration(nil), live...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nearest := func(q float64) time.Duration {
		r := int(math.Ceil(q/100*float64(len(sorted)))) - 1
		if r < 0 {
			r = 0
		}
		return sorted[r]
	}
	for _, q := range []float64{1, 25, 50, 90, 95, 99, 100} {
		got, want := l.Percentile(q), nearest(q)
		if diff := math.Abs(got.Seconds() - want.Seconds()); diff > stat.RelativeError*want.Seconds()+1e-12 {
			t.Errorf("p%v = %v, want %v within %.3g relative", q, got, want, stat.RelativeError)
		}
	}
	wantMax := sorted[len(sorted)-1]
	if got := l.WindowMax(); math.Abs(got.Seconds()-wantMax.Seconds()) > stat.RelativeError*wantMax.Seconds() {
		t.Errorf("WindowMax = %v, want %v within %.3g relative", got, wantMax, stat.RelativeError)
	}
	s := l.Snapshot()
	if s.P50 != l.Percentile(50) || s.P95 != l.Percentile(95) {
		t.Error("sketch-mode Snapshot disagrees with Percentile")
	}
	// Reset clears the sketch too: stale buckets would resurrect evicted
	// samples in the next percentile read.
	l.Reset()
	if l.Percentile(95) != 0 || l.WindowMax() != 0 {
		t.Error("Reset left sketch state behind")
	}
	l.Observe(time.Millisecond)
	if got := l.Percentile(50); got < 900*time.Microsecond || got > 1100*time.Microsecond {
		t.Errorf("post-reset p50 = %v, want ≈1ms", got)
	}
}

// Small-window trackers must keep the exact interpolated percentile path:
// their goldens (worst-case block-time sensors, boundary tests) are
// bit-identical to the pre-sketch implementation.
func TestLatencyExactPathBelowThreshold(t *testing.T) {
	l := NewLatency(ExactWindowThreshold)
	for i := 1; i <= ExactWindowThreshold; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	// Interpolated p50 of 1..128 ms is 64.5 ms — a value no sample has; the
	// nearest-rank sketch path could never produce it.
	if got := l.Percentile(50); got != 64500*time.Microsecond {
		t.Errorf("p50 = %v, want exactly 64.5ms (interpolated)", got)
	}
	if got := l.WindowMax(); got != 128*time.Millisecond {
		t.Errorf("WindowMax = %v, want exactly 128ms", got)
	}
}

// Observe is the per-request hot path in every substrate; it must not
// allocate in either mode. Sketch-mode percentile reads are on the
// per-control-period path and must not allocate either.
func TestLatencyObserveZeroAlloc(t *testing.T) {
	exact := NewLatency(64)
	sketched := NewLatency(512)
	for i := 0; i < 1024; i++ { // saturate both windows: eviction path included
		d := time.Duration(i%97+1) * time.Millisecond
		exact.Observe(d)
		sketched.Observe(d)
	}
	if n := testing.AllocsPerRun(100, func() { exact.Observe(5 * time.Millisecond) }); n != 0 {
		t.Errorf("exact-mode Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { sketched.Observe(5 * time.Millisecond) }); n != 0 {
		t.Errorf("sketch-mode Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = sketched.Percentile(95) }); n != 0 {
		t.Errorf("sketch-mode Percentile allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = sketched.Snapshot() }); n != 0 {
		t.Errorf("sketch-mode Snapshot allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = sketched.WindowMax() }); n != 0 {
		t.Errorf("sketch-mode WindowMax allocates %v per op", n)
	}
}

// BenchmarkMeterMark exercises the Mark hot path with a sliding window; the
// lazy early-exit in expire makes the common no-expiry case O(1).
func BenchmarkMeterMark(b *testing.B) {
	m := NewMeter(time.Second)
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * time.Microsecond
		m.Mark(now, 1)
	}
}

// BenchmarkLatencyObserve is the per-request sensor cost every substrate
// pays (sketch mode: window 512 plus histogram maintenance).
func BenchmarkLatencyObserve(b *testing.B) {
	l := NewLatency(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkLatencySnapshot(b *testing.B) {
	l := NewLatency(512)
	for i := 0; i < 2048; i++ {
		l.Observe(time.Duration((i*7919)%1000) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Snapshot()
	}
}

// BenchmarkLatencyPercentile is the per-control-period read on a sketch-mode
// tracker; compare stat.BenchmarkPercentiles2 for the retired sort path.
func BenchmarkLatencyPercentile(b *testing.B) {
	l := NewLatency(512)
	for i := 0; i < 2048; i++ {
		l.Observe(time.Duration((i*7919)%1000) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Percentile(95)
	}
}
