package chaos

import (
	"time"

	"smartconf/internal/disksim"
	"smartconf/internal/memsim"
)

// Plant and workload faults: disturbances applied to substrate resources
// rather than to the control loop.

// HeapShrink permanently reduces the heap's capacity at At (a co-tenant
// claims part of the machine, a cgroup limit is lowered). Then, when set,
// runs immediately after the shrink — the place for the administrator's
// matching SetGoal call; without it the controller keeps targeting a goal
// the physical budget can no longer honor.
type HeapShrink struct {
	At          time.Duration
	Heap        *memsim.Heap
	NewCapacity int64
	Then        func()
}

func (f HeapShrink) Name() string { return "heap-shrink" }

// Span treats the shrink as a step disturbance: the new capacity persists,
// but the controller is expected to re-converge after the step.
func (f HeapShrink) Span(time.Duration) Window { return Window{Start: f.At, End: f.At} }

func (f HeapShrink) Arm(env *Env) {
	env.Sim.At(f.At, func() {
		f.Heap.SetCapacity(f.NewCapacity)
		if f.Then != nil {
			f.Then()
		}
	})
}

// HeapPressure allocates Bytes at Start and frees them at Start+Duration: a
// transient co-tenant spike (for the LLM substrate, a KV-pressure spike from
// an uncounted allocation). If the spike itself does not fit, that is a
// genuine OOM, same as any other allocation failure.
type HeapPressure struct {
	Start, Duration time.Duration
	Heap            *memsim.Heap
	Bytes           int64
}

func (f HeapPressure) Name() string                      { return "heap-pressure" }
func (f HeapPressure) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f HeapPressure) Arm(env *Env) {
	held := false
	env.Sim.At(f.Start, func() {
		held = f.Heap.Alloc(f.Bytes) == nil
	})
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() {
			if held {
				f.Heap.Free(f.Bytes)
			}
		})
	}
}

// DiskPressure writes Bytes to a disk at Start and deletes them at
// Start+Duration: a transient co-tenant spike on shared local storage. A
// spike that does not fit is a genuine out-of-disk.
type DiskPressure struct {
	Start, Duration time.Duration
	Disk            *disksim.Disk
	Bytes           int64
}

func (f DiskPressure) Name() string                      { return "disk-pressure" }
func (f DiskPressure) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f DiskPressure) Arm(env *Env) {
	held := false
	env.Sim.At(f.Start, func() {
		held = f.Disk.Write(f.Bytes) == nil
	})
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() {
			if held {
				f.Disk.Delete(f.Bytes)
			}
		})
	}
}

// PlantShift applies an arbitrary substrate mutation at At: worker-pool
// loss, a service-rate drop, a per-item cost increase — whatever mutator the
// substrate exposes. Label names the shift in plan listings.
type PlantShift struct {
	Label string
	At    time.Duration
	Apply func()
}

func (f PlantShift) Name() string {
	if f.Label != "" {
		return "plant-shift:" + f.Label
	}
	return "plant-shift"
}

// Span treats the shift as a step disturbance, like HeapShrink.
func (f PlantShift) Span(time.Duration) Window { return Window{Start: f.At, End: f.At} }

func (f PlantShift) Arm(env *Env) {
	env.Sim.At(f.At, func() { f.Apply() })
}

// WorkloadSurge multiplies the offered load by Factor inside the window.
// Drivers opt in by scaling their burst or arrival volume by
// Env.SurgeFactor(); substrate code never sees the fault directly.
type WorkloadSurge struct {
	Start, Duration time.Duration
	Factor          float64
}

func (f WorkloadSurge) Name() string                      { return "surge" }
func (f WorkloadSurge) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f WorkloadSurge) Arm(env *Env) {
	env.Sim.At(f.Start, func() { env.surge = f.Factor })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { env.surge = 0 })
	}
}
