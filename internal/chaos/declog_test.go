package chaos

import (
	"testing"
	"time"

	"smartconf/internal/declog"
	"smartconf/internal/sim"
)

// A crash resynthesis must advance the decision log's goal epoch: the rebuilt
// controller restarts its period count at 1, and only the epoch tells its
// records apart from the pre-crash generation's.
func TestControllerCrashRestartBumpsLogEpoch(t *testing.T) {
	s := sim.New()
	log := declog.New(16)
	src := log.Register("ctl")
	period := uint32(0)
	mkStep := func() func(float64, float64) float64 {
		period = 0 // a rebuilt controller restarts period numbering
		return func(perf, _ float64) float64 {
			period++
			log.Append(declog.Record{Source: src, Period: period, Sensed: perf})
			return perf
		}
	}
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return 1, 0 },
		Step:    mkStep(),
		Actuate: func(float64) {},
		Rebuild: mkStep,
		Log:     log,
	})
	plan := &Plan{Name: "crash", Seed: 0, Faults: []Fault{
		ControllerCrash{At: 2 * time.Second, RestartAfter: 3 * time.Second},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 8*time.Second)
	s.RunUntil(8 * time.Second)

	if l.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", l.Restarts())
	}
	if log.Epoch() != 1 {
		t.Fatalf("log epoch = %d after crash resynthesis, want 1", log.Epoch())
	}
	recs := log.Snapshot()
	var pre, post int
	for _, r := range recs {
		switch r.Epoch {
		case 0:
			pre++
		case 1:
			post++
		default:
			t.Fatalf("unexpected epoch %d", r.Epoch)
		}
	}
	if pre == 0 || post == 0 {
		t.Fatalf("want records in both generations, got %d pre-crash and %d post-crash", pre, post)
	}
	// The post-crash generation restarts period numbering at 1.
	for i := 1; i < len(recs); i++ {
		if recs[i].Epoch == 1 && recs[i-1].Epoch == 0 && recs[i].Period != 1 {
			t.Fatalf("first post-crash record has period %d, want 1", recs[i].Period)
		}
	}
}

// Without a Rebuild hook nothing is resynthesized, so the epoch must hold.
func TestRestartWithoutRebuildKeepsEpoch(t *testing.T) {
	s := sim.New()
	log := declog.New(4)
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return 1, 0 },
		Step:    func(perf, _ float64) float64 { return perf },
		Actuate: func(float64) {},
		Log:     log,
	})
	plan := &Plan{Name: "crash", Seed: 0, Faults: []Fault{
		ControllerCrash{At: time.Second, RestartAfter: time.Second},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 4*time.Second)
	s.RunUntil(4 * time.Second)
	if l.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", l.Restarts())
	}
	if log.Epoch() != 0 {
		t.Fatalf("epoch = %d with no resynthesis, want 0", log.Epoch())
	}
}
