package chaos

import (
	"math/rand"
	"time"

	"smartconf/internal/declog"
	"smartconf/internal/sim"
)

// LoopConfig describes one control loop in injector-friendly form: the
// sense → control → actuate pipeline every scenario shim is an instance of.
type LoopConfig struct {
	// Sense reads the constrained metric and (for indirect configurations)
	// its deputy. Called once per Tick unless the controller is down.
	Sense func() (perf, deputy float64)
	// Step feeds a measurement pair to the controller and returns the new
	// knob value (the setPerf → getConf pair).
	Step func(perf, deputy float64) float64
	// Actuate applies a knob value to the substrate.
	Actuate func(v float64)
	// Rebuild, when set, re-synthesizes the controller from its profile
	// after a crash/restart — the recovering process has lost its in-memory
	// control state and reconstructs it the same way it was first built.
	Rebuild func() func(perf, deputy float64) float64
	// Log, when set, is the run's decision log. A crash resynthesis bumps
	// its goal epoch: the rebuilt controller restarts period numbering at 1,
	// and the fresh epoch is what lets replay tell the generations apart.
	Log *declog.Log
}

// Loop wires a LoopConfig into the fault pipeline. Substrate hooks call
// Tick where they would have called the shim directly; with no faults armed
// the behaviour is identical to the bare shim.
type Loop struct {
	sim *sim.Simulation
	cfg LoopConfig
	rng *rand.Rand

	// OnActuate observes every applied knob value (after clamping); oracles
	// and tests use it to record the actuation trace.
	OnActuate func(v float64)

	// fault state, mutated only by scheduled fault events
	noiseSigma       float64
	dropProb         float64
	staleDelay       time.Duration
	actDelay         time.Duration
	clampOn          bool
	clampLo, clampHi float64
	stalled          bool
	crashed          bool

	ticks    int
	steps    int
	restarts int
}

// NewLoop returns a Loop with no faults armed. The loop carries no random
// source of its own: Plan.Arm installs the plan-seeded one, and an unarmed
// loop never draws (every randomized fault knob is set only by armed plans).
// A zero-seeded default here would be indistinguishable from a forgotten
// plumbing line — exactly what the seedflow analyzer exists to catch.
func NewLoop(s *sim.Simulation, cfg LoopConfig) *Loop {
	return &Loop{sim: s, cfg: cfg}
}

// Tick runs one control iteration through whatever faults are active.
func (l *Loop) Tick() {
	l.ticks++
	if l.stalled || l.crashed {
		return
	}
	perf, deputy := l.cfg.Sense()
	if l.dropProb > 0 && l.rng.Float64() < l.dropProb {
		return // measurement lost; the knob holds its last value
	}
	if l.noiseSigma > 0 {
		perf *= 1 + l.noiseSigma*l.rng.NormFloat64()
		if perf < 0 {
			perf = 0
		}
	}
	if l.staleDelay > 0 {
		// The measurement is correct but arrives late: by delivery time the
		// plant has moved on.
		l.sim.After(l.staleDelay, func() { l.deliver(perf, deputy) })
		return
	}
	l.deliver(perf, deputy)
}

func (l *Loop) deliver(perf, deputy float64) {
	if l.stalled || l.crashed {
		return // the controller went down while the sample was in flight
	}
	l.steps++
	v := l.cfg.Step(perf, deputy)
	if l.clampOn {
		if v < l.clampLo {
			v = l.clampLo
		}
		if v > l.clampHi {
			v = l.clampHi
		}
	}
	if l.actDelay > 0 {
		l.sim.After(l.actDelay, func() { l.actuate(v) })
		return
	}
	l.actuate(v)
}

func (l *Loop) actuate(v float64) {
	if l.crashed {
		return
	}
	if l.OnActuate != nil {
		l.OnActuate(v)
	}
	l.cfg.Actuate(v)
}

func (l *Loop) restart() {
	l.crashed = false
	l.restarts++
	if l.cfg.Rebuild != nil {
		l.cfg.Step = l.cfg.Rebuild()
		if l.cfg.Log != nil {
			// The resynthesized controller is a new decision regime: its
			// period count restarts at 1, so without an epoch bump its
			// records would be indistinguishable from the pre-crash ones.
			l.cfg.Log.BumpEpoch()
		}
	}
}

// Ticks returns how many control iterations were attempted.
func (l *Loop) Ticks() int { return l.ticks }

// Steps returns how many measurements reached the controller.
func (l *Loop) Steps() int { return l.steps }

// Restarts returns how many crash/restart cycles completed.
func (l *Loop) Restarts() int { return l.restarts }

// Down reports whether the controller is currently stalled or crashed.
func (l *Loop) Down() bool { return l.stalled || l.crashed }

// SensorNoise multiplies measurements by 1 + Sigma·N(0,1) inside the window
// (a miscalibrated or jittery sensor). Duration 0 runs to the end.
type SensorNoise struct {
	Start, Duration time.Duration
	Sigma           float64
}

func (f SensorNoise) Name() string                      { return "sensor-noise" }
func (f SensorNoise) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f SensorNoise) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.Start, func() { l.noiseSigma = f.Sigma })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { l.noiseSigma = 0 })
	}
}

// SensorDropout loses each measurement with probability Prob inside the
// window (Prob 1 is a full sensor outage). The knob must hold, not drift.
type SensorDropout struct {
	Start, Duration time.Duration
	Prob            float64
}

func (f SensorDropout) Name() string                      { return "sensor-dropout" }
func (f SensorDropout) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f SensorDropout) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.Start, func() { l.dropProb = f.Prob })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { l.dropProb = 0 })
	}
}

// SensorStaleness delivers measurements Delay late inside the window: the
// controller acts on where the plant was, not where it is.
type SensorStaleness struct {
	Start, Duration time.Duration
	Delay           time.Duration
}

func (f SensorStaleness) Name() string { return "sensor-stale" }
func (f SensorStaleness) Span(horizon time.Duration) Window {
	return span(f.Start, f.Duration, horizon)
}
func (f SensorStaleness) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.Start, func() { l.staleDelay = f.Delay })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { l.staleDelay = 0 })
	}
}

// ActuationDelay applies knob writes Delay late inside the window (a slow
// reconfiguration path between controller and plant).
type ActuationDelay struct {
	Start, Duration time.Duration
	Delay           time.Duration
}

func (f ActuationDelay) Name() string                      { return "act-delay" }
func (f ActuationDelay) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f ActuationDelay) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.Start, func() { l.actDelay = f.Delay })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { l.actDelay = 0 })
	}
}

// ActuationClamp restricts applied knob values to [Min,Max] inside the
// window (an actuator that can no longer reach part of its range).
type ActuationClamp struct {
	Start, Duration time.Duration
	Min, Max        float64
}

func (f ActuationClamp) Name() string                      { return "act-clamp" }
func (f ActuationClamp) Span(horizon time.Duration) Window { return span(f.Start, f.Duration, horizon) }
func (f ActuationClamp) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.Start, func() { l.clampOn, l.clampLo, l.clampHi = true, f.Min, f.Max })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { l.clampOn = false })
	}
}

// ControllerStall freezes the control loop inside the window: no sensing, no
// updates, the knob holds (a wedged controller thread). Unlike a crash, the
// controller resumes with its state intact.
type ControllerStall struct {
	Start, Duration time.Duration
}

func (f ControllerStall) Name() string { return "ctrl-stall" }
func (f ControllerStall) Span(horizon time.Duration) Window {
	return span(f.Start, f.Duration, horizon)
}
func (f ControllerStall) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.Start, func() { l.stalled = true })
	if f.Duration > 0 {
		env.Sim.At(f.Start+f.Duration, func() { l.stalled = false })
	}
}

// ControllerCrash kills the controller at At; RestartAfter later (0: never)
// it comes back with its in-memory state gone, re-synthesized from the
// profile via the loop's Rebuild hook. The knob holds its last applied value
// while the controller is down — exactly what a crashed sidecar looks like
// to the plant.
type ControllerCrash struct {
	At           time.Duration
	RestartAfter time.Duration
}

func (f ControllerCrash) Name() string { return "crash-restart" }
func (f ControllerCrash) Span(horizon time.Duration) Window {
	return span(f.At, f.RestartAfter, horizon)
}
func (f ControllerCrash) Arm(env *Env) {
	l := loopOf(env, f.Name())
	env.Sim.At(f.At, func() { l.crashed = true })
	if f.RestartAfter > 0 {
		env.Sim.At(f.At+f.RestartAfter, func() { l.restart() })
	}
}
