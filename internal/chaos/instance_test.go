package chaos

import (
	"reflect"
	"testing"
	"time"

	"smartconf/internal/sim"
)

// killRecord is a Killable that stamps when it was killed and restarted.
type killRecord struct {
	alive       bool
	killedAt    []time.Duration
	restartedAt []time.Duration
	s           *sim.Simulation
}

func (k *killRecord) Kill() {
	if !k.alive {
		return
	}
	k.alive = false
	k.killedAt = append(k.killedAt, k.s.Now())
}

func (k *killRecord) Restart() {
	if k.alive {
		return
	}
	k.alive = true
	k.restartedAt = append(k.restartedAt, k.s.Now())
}

func (k *killRecord) Alive() bool { return k.alive }

func runLossRestart(seed int64, victim int) (killed []int, trace [][2][]time.Duration) {
	s := sim.New()
	members := make([]*killRecord, 4)
	targets := make([]Killable, 4)
	for i := range members {
		members[i] = &killRecord{alive: true, s: s}
		targets[i] = members[i]
	}
	plan := Plan{Name: "loss", Seed: seed, Faults: []Fault{
		InstanceLoss{At: 10 * time.Second, Targets: targets, Victim: victim},
		InstanceRestart{At: 30 * time.Second, Targets: targets, Victim: -1},
	}}
	plan.Arm(s, nil)
	s.RunUntil(60 * time.Second)
	for i, m := range members {
		if len(m.killedAt) > 0 {
			killed = append(killed, i)
		}
		trace = append(trace, [2][]time.Duration{m.killedAt, m.restartedAt})
	}
	return killed, trace
}

// TestInstanceLossRestartPair checks the pair's contract: exactly one member
// dies at the loss time, and the SAME member (Victim: -1 on the restart)
// comes back at the restart time.
func TestInstanceLossRestartPair(t *testing.T) {
	killed, trace := runLossRestart(7, -1)
	if len(killed) != 1 {
		t.Fatalf("killed members %v, want exactly one", killed)
	}
	v := killed[0]
	if got := trace[v][0]; len(got) != 1 || got[0] != 10*time.Second {
		t.Fatalf("victim killed at %v, want [10s]", got)
	}
	if got := trace[v][1]; len(got) != 1 || got[0] != 30*time.Second {
		t.Fatalf("victim restarted at %v, want [30s] (paired restart must pick the loss victim)", got)
	}
}

// TestInstanceLossReplayIsDeterministic re-arms the same seeded plan and
// checks the drawn victim and both timestamps replay identically — the
// property every fleet run cached by (scenario, seed) relies on.
func TestInstanceLossReplayIsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		k1, t1 := runLossRestart(seed, -1)
		k2, t2 := runLossRestart(seed, -1)
		if k1[0] != k2[0] {
			t.Fatalf("seed %d: victim diverged across replays: %d vs %d", seed, k1[0], k2[0])
		}
		v := k1[0]
		if !reflect.DeepEqual(t1[v], t2[v]) {
			t.Fatalf("seed %d: victim trace diverged: %v vs %v", seed, t1[v], t2[v])
		}
	}
}

// TestInstanceLossExplicitVictim pins the victim index directly.
func TestInstanceLossExplicitVictim(t *testing.T) {
	killed, _ := runLossRestart(99, 2)
	if len(killed) != 1 || killed[0] != 2 {
		t.Fatalf("killed %v, want [2]", killed)
	}
}

// TestInstanceRestartWithoutLossIsNoOp arms a bare restart (Victim: -1, no
// prior loss): nothing to resurrect, nothing happens.
func TestInstanceRestartWithoutLossIsNoOp(t *testing.T) {
	s := sim.New()
	m := &killRecord{alive: true, s: s}
	plan := Plan{Name: "restart-only", Seed: 1, Faults: []Fault{
		InstanceRestart{At: 5 * time.Second, Targets: []Killable{m}, Victim: -1},
	}}
	plan.Arm(s, nil)
	s.RunUntil(10 * time.Second)
	if len(m.restartedAt) != 0 {
		t.Fatalf("restart fired with no prior loss: %v", m.restartedAt)
	}
}

// TestInstanceLossVictimDrawnAtArmTime appends an unrelated fault AFTER the
// loss in plan order and checks the drawn victim does not shift — the draw
// happens at arm time in plan order, so composing more faults later in the
// plan never changes who dies.
func TestInstanceLossVictimDrawnAtArmTime(t *testing.T) {
	run := func(extra bool) int {
		s := sim.New()
		targets := make([]Killable, 4)
		members := make([]*killRecord, 4)
		for i := range members {
			members[i] = &killRecord{alive: true, s: s}
			targets[i] = members[i]
		}
		faults := []Fault{InstanceLoss{At: 10 * time.Second, Targets: targets, Victim: -1}}
		if extra {
			// A second seeded draw later in the plan must not disturb the
			// first fault's victim.
			other := []Killable{&killRecord{alive: true, s: s}, &killRecord{alive: true, s: s}}
			faults = append(faults, InstanceLoss{At: 20 * time.Second, Targets: other, Victim: -1})
		}
		plan := Plan{Name: "draw-order", Seed: 42, Faults: faults}
		plan.Arm(s, nil)
		s.RunUntil(30 * time.Second)
		for i, m := range members {
			if len(m.killedAt) > 0 {
				return i
			}
		}
		return -1
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("victim shifted from %d to %d when a later fault was appended", a, b)
	}
}
