// Package chaos is a deterministic, composable fault-injection layer for the
// simulated substrates: every fault threads through the sim clock and draws
// randomness only from a rand.Rand seeded by the owning Plan, so a run is
// fully replayable from (scenario, fault plan, seed) — the FoundationDB style
// of simulation testing applied to SmartConf's control loops.
//
// Faults come in three families:
//
//   - control-loop faults, attached to a Loop (the generic sense → control →
//     actuate pipeline every scenario shim is an instance of): sensor noise,
//     sensor dropout, stale sensor delivery, actuation delay, actuation
//     clamping, controller stall, and controller crash/restart with state
//     re-synthesis from the profile;
//   - plant faults, applied to substrate resources directly: heap capacity
//     shrink, transient heap pressure (a co-tenant spike), transient disk
//     pressure, and arbitrary plant shifts (worker-pool loss, service-rate
//     degradation) via a substrate-provided mutator;
//   - workload faults: a surge multiplier the driver queries per burst.
//
// A Plan is a named list of faults plus a seed; Arm schedules every fault on
// the simulation before the run starts. Because arming only enqueues events
// on the deterministic clock, two runs of the same (plan, seed) are
// bit-identical — which is what lets chaos results flow through the
// experiment engine's run cache.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"smartconf/internal/sim"
)

// Env binds an armed Plan to one run: the simulation, the plan-seeded random
// source every injector draws from, and (when the plan carries control-loop
// faults) the Loop they attach to.
type Env struct {
	Sim  *sim.Simulation
	Rand *rand.Rand
	Loop *Loop

	surge float64
	// lastKilled remembers the victim index of the most recent InstanceLoss
	// firing (-1 before any), so an InstanceRestart with Victim < 0 can
	// resurrect whichever member the seeded loss chose.
	lastKilled int
}

// SurgeFactor returns the current workload multiplier (1 outside any
// WorkloadSurge window). Drivers multiply their burst or arrival volume by
// it, which keeps surge injection substrate-agnostic.
func (e *Env) SurgeFactor() float64 {
	if e.surge <= 0 {
		return 1
	}
	return e.surge
}

// Fault is one injectable fault. Arm schedules the fault's activation (and
// deactivation, for windowed faults) on the environment's simulation; it must
// be called before the run starts and must not execute substrate code
// directly — only enqueue events.
type Fault interface {
	Name() string
	Arm(env *Env)
}

// Window is a fault's active interval in virtual time. Instantaneous step
// disturbances (a capacity shrink, a plant shift) report Start == End: the
// disturbance persists, but the controller is expected to re-converge after
// the step, so for oracle purposes the "fault" is the step itself.
type Window struct {
	Start, End time.Duration
}

// Plan is a named, seeded fault schedule. The same (Plan, Seed) always
// produces the same injected trajectory.
type Plan struct {
	Name   string
	Seed   int64
	Faults []Fault
}

// Arm seeds the plan's random source and arms every fault against s (and
// loop, for control-loop faults; pass nil when the plan has none). It
// returns the Env drivers query for surge factors.
func (p *Plan) Arm(s *sim.Simulation, loop *Loop) *Env {
	env := &Env{Sim: s, Rand: rand.New(rand.NewSource(p.Seed)), Loop: loop, lastKilled: -1}
	if loop != nil {
		loop.rng = env.Rand
	}
	for _, f := range p.Faults {
		f.Arm(env)
	}
	return env
}

// Windows collects the active window of every fault, in plan order. horizon
// caps open-ended windows (Duration 0 means "until the end of the run").
func (p *Plan) Windows(horizon time.Duration) []Window {
	out := make([]Window, 0, len(p.Faults))
	for _, f := range p.Faults {
		if sp, ok := f.(interface {
			Span(horizon time.Duration) Window
		}); ok {
			out = append(out, sp.Span(horizon))
		} else {
			// A fault that cannot report its window is conservatively active
			// for the whole run.
			out = append(out, Window{Start: 0, End: horizon})
		}
	}
	return out
}

func (p *Plan) String() string {
	names := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		names[i] = f.Name()
	}
	return fmt.Sprintf("%s(seed=%d: %s)", p.Name, p.Seed, strings.Join(names, ","))
}

// span caps an open-ended (zero-duration) window at the horizon.
func span(start, duration, horizon time.Duration) Window {
	if duration <= 0 {
		return Window{Start: start, End: horizon}
	}
	return Window{Start: start, End: start + duration}
}

// loopOf panics with a helpful message when a control-loop fault is armed
// against a plan with no loop.
func loopOf(env *Env, fault string) *Loop {
	if env.Loop == nil {
		panic(fmt.Sprintf("chaos: %s fault armed without a Loop", fault))
	}
	return env.Loop
}
