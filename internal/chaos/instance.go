package chaos

import "time"

// Killable is a fleet member that can be killed and resurrected — the
// surface the rpcserver, llmserve and kvstore substrates expose for
// instance-level chaos. Kill must be idempotent and release the member's
// resources; Restart must be a no-op on a member that is not down.
type Killable interface {
	Kill()
	Restart()
	Alive() bool
}

// InstanceLoss kills one fleet member at a virtual time: the fleet-scale
// fault the routing and evacuation machinery must absorb. With Victim < 0
// the victim index is drawn from the plan's seeded random source, so the
// same (plan, seed) always kills the same member; the drawn index is
// remembered in the Env for a paired InstanceRestart.
type InstanceLoss struct {
	// At is when the member dies.
	At time.Duration
	// Targets is the fleet, in member order.
	Targets []Killable
	// Victim indexes Targets; < 0 draws uniformly from the seeded source.
	Victim int
}

// Name implements Fault.
func (f InstanceLoss) Name() string { return "instance-loss" }

// Span implements the windowed-fault extension: the loss persists until a
// restart, so for oracle purposes the window is open-ended.
func (f InstanceLoss) Span(horizon time.Duration) Window { return span(f.At, 0, horizon) }

// Arm implements Fault. The victim is drawn at arm time (seeded source,
// plan order), not at fire time, so composing further faults never shifts
// which member dies.
func (f InstanceLoss) Arm(env *Env) {
	v := f.Victim
	if v < 0 {
		v = env.Rand.Intn(len(f.Targets))
	}
	env.lastKilled = v
	env.Sim.At(f.At, func() { f.Targets[v].Kill() })
}

// InstanceRestart resurrects a killed member at a virtual time — the second
// half of the loss/restart pair. With Victim < 0 it restarts whichever
// member the most recently armed InstanceLoss chose (arm an InstanceLoss
// first, or the restart is a no-op).
type InstanceRestart struct {
	// At is when the member comes back.
	At time.Duration
	// Targets is the fleet, in member order.
	Targets []Killable
	// Victim indexes Targets; < 0 reuses the last armed InstanceLoss victim.
	Victim int
}

// Name implements Fault.
func (f InstanceRestart) Name() string { return "instance-restart" }

// Span implements the windowed-fault extension: the restart is the step
// disturbance (a cold member rejoins the fleet), so Start == End.
func (f InstanceRestart) Span(horizon time.Duration) Window {
	return Window{Start: f.At, End: f.At}
}

// Arm implements Fault.
func (f InstanceRestart) Arm(env *Env) {
	v := f.Victim
	if v < 0 {
		v = env.lastKilled
	}
	if v < 0 || v >= len(f.Targets) {
		return
	}
	env.Sim.At(f.At, func() { f.Targets[v].Restart() })
}
