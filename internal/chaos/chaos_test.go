package chaos

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"smartconf/internal/disksim"
	"smartconf/internal/memsim"
	"smartconf/internal/sim"
)

// toyLoop builds a trivial plant (sense returns the virtual time in seconds,
// control doubles it) whose actuation trace makes fault effects visible.
func toyLoop(s *sim.Simulation) (*Loop, *[]float64) {
	applied := &[]float64{}
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return s.Now().Seconds(), 1 },
		Step:    func(perf, deputy float64) float64 { return 2 * perf },
		Actuate: func(v float64) { *applied = append(*applied, v) },
	})
	return l, applied
}

func tickEvery(s *sim.Simulation, l *Loop, interval, until time.Duration) {
	s.Every(0, interval, func() bool {
		l.Tick()
		return s.Now() < until
	})
}

func TestLoopNoFaultsIsTransparent(t *testing.T) {
	s := sim.New()
	l, applied := toyLoop(s)
	tickEvery(s, l, time.Second, 5*time.Second)
	s.RunUntil(5 * time.Second)
	want := []float64{0, 2, 4, 6, 8, 10}
	if !reflect.DeepEqual(*applied, want) {
		t.Fatalf("applied = %v, want %v", *applied, want)
	}
	if l.Ticks() != 6 || l.Steps() != 6 {
		t.Errorf("ticks=%d steps=%d, want 6/6", l.Ticks(), l.Steps())
	}
}

func TestSensorNoiseActsOnlyInsideWindow(t *testing.T) {
	run := func(seed int64) []float64 {
		s := sim.New()
		l, applied := toyLoop(s)
		plan := &Plan{Name: "noise", Seed: seed, Faults: []Fault{
			SensorNoise{Start: 2 * time.Second, Duration: 2 * time.Second, Sigma: 0.5},
		}}
		plan.Arm(s, l)
		tickEvery(s, l, time.Second, 6*time.Second)
		s.RunUntil(6 * time.Second)
		return *applied
	}
	a := run(1)
	// Outside the window the trace is exact.
	for _, i := range []int{0, 1, 4, 5, 6} {
		if want := 2 * float64(i); a[i] != want {
			t.Errorf("sample %d = %v outside noise window, want %v", i, a[i], want)
		}
	}
	// Inside the window, noise must have perturbed at least one sample.
	if a[2] == 4 && a[3] == 6 {
		t.Error("noise window left samples exact")
	}
	// Replayable: same seed, same trace; different seed, different noise.
	if b := run(1); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if c := run(2); reflect.DeepEqual(a[2:4], c[2:4]) {
		t.Errorf("different seeds produced identical noise: %v", a[2:4])
	}
}

func TestSensorDropoutHoldsKnob(t *testing.T) {
	s := sim.New()
	l, applied := toyLoop(s)
	plan := &Plan{Name: "drop", Seed: 3, Faults: []Fault{
		SensorDropout{Start: 2 * time.Second, Duration: 3 * time.Second, Prob: 1},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 7*time.Second)
	s.RunUntil(7 * time.Second)
	// Ticks at t=2,3,4 are lost entirely: nothing actuated during the outage.
	want := []float64{0, 2, 10, 12, 14}
	if !reflect.DeepEqual(*applied, want) {
		t.Fatalf("applied = %v, want %v", *applied, want)
	}
}

func TestSensorStalenessDelaysDelivery(t *testing.T) {
	s := sim.New()
	var at []time.Duration
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return 1, 0 },
		Step:    func(perf, _ float64) float64 { return perf },
		Actuate: func(float64) { at = append(at, s.Now()) },
	})
	plan := &Plan{Name: "stale", Seed: 0, Faults: []Fault{
		SensorStaleness{Start: 0, Duration: 10 * time.Second, Delay: 1500 * time.Millisecond},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, 2*time.Second, 4*time.Second)
	s.RunUntil(10 * time.Second)
	want := []time.Duration{1500 * time.Millisecond, 3500 * time.Millisecond, 5500 * time.Millisecond}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("delivery times = %v, want %v", at, want)
	}
}

func TestActuationDelayAndClamp(t *testing.T) {
	s := sim.New()
	l, applied := toyLoop(s)
	plan := &Plan{Name: "act", Seed: 0, Faults: []Fault{
		ActuationDelay{Start: 0, Duration: 2 * time.Second, Delay: 500 * time.Millisecond},
		ActuationClamp{Start: 3 * time.Second, Duration: 2 * time.Second, Min: 0, Max: 7},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 6*time.Second)
	s.RunUntil(7 * time.Second)
	// t=0,1 delayed but values unchanged; t=4's value 8 clamps to 7 (t=3's
	// value 6 is inside the clamp range); t=2,5,6 exact.
	want := []float64{0, 2, 4, 6, 7, 10, 12}
	if !reflect.DeepEqual(*applied, want) {
		t.Fatalf("applied = %v, want %v", *applied, want)
	}
}

func TestControllerStallResumesWithStateIntact(t *testing.T) {
	s := sim.New()
	var sum float64
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return 1, 0 },
		Step:    func(perf, _ float64) float64 { sum += perf; return sum },
		Actuate: func(float64) {},
	})
	plan := &Plan{Name: "stall", Seed: 0, Faults: []Fault{
		ControllerStall{Start: 2 * time.Second, Duration: 3 * time.Second},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 8*time.Second)
	s.RunUntil(8 * time.Second)
	// 9 ticks, 3 of them (t=2,3,4) swallowed by the stall; state accumulates
	// across the gap.
	if l.Ticks() != 9 || l.Steps() != 6 {
		t.Fatalf("ticks=%d steps=%d, want 9/6", l.Ticks(), l.Steps())
	}
	if sum != 6 {
		t.Errorf("integrator sum = %v, want 6 (state preserved across stall)", sum)
	}
}

func TestControllerCrashRestartRebuilds(t *testing.T) {
	s := sim.New()
	gen := 0
	var lastGen int
	mkStep := func(g int) func(float64, float64) float64 {
		return func(perf, _ float64) float64 { lastGen = g; return perf }
	}
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return 1, 0 },
		Step:    mkStep(0),
		Actuate: func(float64) {},
		Rebuild: func() func(float64, float64) float64 {
			gen++
			return mkStep(gen)
		},
	})
	plan := &Plan{Name: "crash", Seed: 0, Faults: []Fault{
		ControllerCrash{At: 2 * time.Second, RestartAfter: 3 * time.Second},
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 8*time.Second)
	s.RunUntil(8 * time.Second)
	if l.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", l.Restarts())
	}
	if gen != 1 || lastGen != 1 {
		t.Errorf("rebuild generation = %d, last step generation = %d, want 1/1", gen, lastGen)
	}
	if l.Down() {
		t.Error("loop still down after restart")
	}
}

func TestHeapFaults(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(100)
	if err := heap.Alloc(40); err != nil {
		t.Fatal(err)
	}
	thenRan := false
	plan := &Plan{Name: "heap", Seed: 0, Faults: []Fault{
		HeapPressure{Start: 1 * time.Second, Duration: 2 * time.Second, Heap: heap, Bytes: 30},
		HeapShrink{At: 5 * time.Second, Heap: heap, NewCapacity: 60, Then: func() { thenRan = true }},
	}}
	plan.Arm(s, nil)
	var used []int64
	s.Every(500*time.Millisecond, time.Second, func() bool {
		used = append(used, heap.Used())
		return s.Now() < 6*time.Second
	})
	s.RunUntil(6 * time.Second)
	// 40 before the spike, 70 inside it, back to 40 after.
	want := []int64{40, 70, 70, 40, 40, 40}
	if !reflect.DeepEqual(used, want) {
		t.Fatalf("used = %v, want %v", used, want)
	}
	if !thenRan {
		t.Error("HeapShrink.Then did not run")
	}
	if got := heap.Capacity(); got != 60 {
		t.Errorf("capacity = %d after shrink, want 60", got)
	}
	if heap.OOM() {
		t.Error("unexpected OOM")
	}
}

func TestHeapPressureThatDoesNotFitIsAnOOM(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(100)
	if err := heap.Alloc(90); err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Name: "oom", Seed: 0, Faults: []Fault{
		HeapPressure{Start: time.Second, Duration: time.Second, Heap: heap, Bytes: 50},
	}}
	plan.Arm(s, nil)
	s.RunUntil(5 * time.Second)
	if !heap.OOM() {
		t.Fatal("a spike beyond capacity must register as OOM")
	}
}

func TestDiskPressureTransient(t *testing.T) {
	s := sim.New()
	disk := disksim.NewDisk(1000)
	plan := &Plan{Name: "disk", Seed: 0, Faults: []Fault{
		DiskPressure{Start: time.Second, Duration: 2 * time.Second, Disk: disk, Bytes: 400},
	}}
	plan.Arm(s, nil)
	s.RunUntil(2 * time.Second)
	if got := disk.Used(); got != 400 {
		t.Fatalf("used = %d inside the window, want 400", got)
	}
	s.RunUntil(5 * time.Second)
	if got := disk.Used(); got != 0 {
		t.Fatalf("used = %d after the window, want 0", got)
	}
	if disk.OOD() {
		t.Error("unexpected OOD")
	}
}

func TestPlantShiftAndSurge(t *testing.T) {
	s := sim.New()
	rate := 100
	plan := &Plan{Name: "shift", Seed: 0, Faults: []Fault{
		PlantShift{Label: "rate-drop", At: 2 * time.Second, Apply: func() { rate = 50 }},
		WorkloadSurge{Start: 3 * time.Second, Duration: 2 * time.Second, Factor: 4},
	}}
	env := plan.Arm(s, nil)
	var surges []float64
	s.Every(0, time.Second, func() bool {
		surges = append(surges, env.SurgeFactor())
		return s.Now() < 6*time.Second
	})
	s.RunUntil(6 * time.Second)
	if rate != 50 {
		t.Errorf("plant shift did not apply: rate = %d", rate)
	}
	want := []float64{1, 1, 1, 4, 4, 1, 1}
	if !reflect.DeepEqual(surges, want) {
		t.Fatalf("surge factors = %v, want %v", surges, want)
	}
	if got := plan.Faults[0].Name(); got != "plant-shift:rate-drop" {
		t.Errorf("Name() = %q", got)
	}
}

func TestPlanWindowsAndString(t *testing.T) {
	p := &Plan{Name: "mix", Seed: 7, Faults: []Fault{
		SensorNoise{Start: 10 * time.Second, Duration: 20 * time.Second, Sigma: 0.1},
		ControllerCrash{At: 40 * time.Second, RestartAfter: 5 * time.Second},
		HeapShrink{At: 50 * time.Second},
		SensorDropout{Start: 60 * time.Second, Prob: 1}, // open-ended
	}}
	got := p.Windows(100 * time.Second)
	want := []Window{
		{10 * time.Second, 30 * time.Second},
		{40 * time.Second, 45 * time.Second},
		{50 * time.Second, 50 * time.Second},
		{60 * time.Second, 100 * time.Second},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Windows = %v, want %v", got, want)
	}
	str := p.String()
	wantStr := "mix(seed=7: sensor-noise,crash-restart,heap-shrink,sensor-dropout)"
	if str != wantStr {
		t.Errorf("String() = %q, want %q", str, wantStr)
	}
}

// TestFullPlanReplayIsByteIdentical drives a loop through a plan combining
// every loop-fault family and asserts two runs with the same seed produce
// the same actuation trace down to the bit.
func TestFullPlanReplayIsByteIdentical(t *testing.T) {
	run := func(seed int64) string {
		s := sim.New()
		l, applied := toyLoop(s)
		plan := &Plan{Name: "full", Seed: seed, Faults: []Fault{
			SensorNoise{Start: 1 * time.Second, Duration: 4 * time.Second, Sigma: 0.2},
			SensorDropout{Start: 6 * time.Second, Duration: 3 * time.Second, Prob: 0.5},
			SensorStaleness{Start: 10 * time.Second, Duration: 3 * time.Second, Delay: 300 * time.Millisecond},
			ActuationDelay{Start: 14 * time.Second, Duration: 2 * time.Second, Delay: 200 * time.Millisecond},
			ControllerStall{Start: 17 * time.Second, Duration: 2 * time.Second},
			ControllerCrash{At: 20 * time.Second, RestartAfter: 2 * time.Second},
		}}
		plan.Arm(s, l)
		tickEvery(s, l, 500*time.Millisecond, 25*time.Second)
		s.RunUntil(26 * time.Second)
		out := ""
		for _, v := range *applied {
			out += fmt.Sprintf("%.17g;", v)
		}
		return out
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatal("same (plan, seed) produced different actuation traces")
	}
	if c := run(43); c == a {
		t.Error("different seeds produced identical traces despite probabilistic faults")
	}
}

func TestNegativeNoiseClampsAtZero(t *testing.T) {
	s := sim.New()
	var got []float64
	l := NewLoop(s, LoopConfig{
		Sense:   func() (float64, float64) { return 1, 0 },
		Step:    func(perf, _ float64) float64 { got = append(got, perf); return perf },
		Actuate: func(float64) {},
	})
	plan := &Plan{Name: "neg", Seed: 11, Faults: []Fault{
		SensorNoise{Start: 0, Sigma: 50}, // huge sigma: negative draws certain
	}}
	plan.Arm(s, l)
	tickEvery(s, l, time.Second, 50*time.Second)
	s.RunUntil(50 * time.Second)
	for i, v := range got {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("sample %d = %v; noisy measurements must stay ≥ 0", i, v)
		}
	}
}
