package sysfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smartconf/internal/core"
)

// The per-configuration profiling file "<ConfName>.SmartConf.sys" (§5.5)
// stores raw profiling samples, one per line:
//
//	sample <setting> <measurement>
//
// The SmartConf constructor reads these and synthesizes the controller
// parameters (α, pole, λ, virtual goal) itself; nothing control-specific is
// ever written by a human.

// ParseProfile reads a profiling file into a core.Profile.
func ParseProfile(r io.Reader) (core.Profile, error) {
	col := core.NewCollector()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := stripComments(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "sample" {
			return core.Profile{}, &ParseError{lineNo, raw, "expected: sample <setting> <measurement>"}
		}
		setting, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return core.Profile{}, &ParseError{lineNo, raw, "malformed setting"}
		}
		measurement, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return core.Profile{}, &ParseError{lineNo, raw, "malformed measurement"}
		}
		col.Record(setting, measurement)
	}
	if err := sc.Err(); err != nil {
		return core.Profile{}, fmt.Errorf("sysfile: reading profile: %w", err)
	}
	return col.Profile(), nil
}

// EncodeProfile writes a core.Profile in the profiling-file format.
// ParseProfile(EncodeProfile(p)) reproduces p (settings sorted ascending).
func EncodeProfile(w io.Writer, p core.Profile) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "/* profiling samples: sample <setting> <measurement> */")
	for _, s := range p.Settings {
		for _, m := range s.Samples {
			fmt.Fprintf(bw, "sample %s %s\n", formatFloat(s.Setting), formatFloat(m))
		}
	}
	return bw.Flush()
}
