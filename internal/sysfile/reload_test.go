package sysfile

import (
	"errors"
	"strings"
	"testing"
)

// A profiling file captured mid-write (torn final line) must fail with a
// line-numbered error, and the same content re-read after the write completed
// must parse — the reload-while-write contract for readers polling
// <ConfName>.SmartConf.sys while the profiler appends.
func TestParseProfileTornWrite(t *testing.T) {
	complete := "sample 100 205\nsample 100 207\nsample 200 410\n"
	torn := complete[:len(complete)-len(" 410\n")] // write cut mid-line

	if _, err := ParseProfile(strings.NewReader(torn)); err == nil {
		t.Fatal("torn profile accepted")
	} else {
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("torn profile error %v is not a *ParseError", err)
		}
		if pe.Line != 3 {
			t.Errorf("torn line reported as %d, want 3", pe.Line)
		}
	}

	p, err := ParseProfile(strings.NewReader(complete))
	if err != nil {
		t.Fatalf("completed write rejected: %v", err)
	}
	if got := p.TotalSamples(); got != 3 {
		t.Errorf("samples = %d, want 3", got)
	}
}

// Recovery from a malformed line: the ParseError pinpoints it, and dropping
// exactly that line yields the same profile as if it was never written.
func TestParseProfileMalformedLineRecovery(t *testing.T) {
	lines := []string{
		"sample 100 205",
		"sample oops 207", // corrupt
		"sample 200 410",
	}
	_, err := ParseProfile(strings.NewReader(strings.Join(lines, "\n")))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("malformed line reported as %d, want 2", pe.Line)
	}

	repaired := append(append([]string{}, lines[:pe.Line-1]...), lines[pe.Line:]...)
	p, err := ParseProfile(strings.NewReader(strings.Join(repaired, "\n")))
	if err != nil {
		t.Fatalf("repaired profile rejected: %v", err)
	}
	if got := p.TotalSamples(); got != 2 {
		t.Errorf("repaired samples = %d, want 2", got)
	}
}

// The same torn-write contract for the system file: a truncated attribute
// line fails cleanly, never yields a half-parsed Sys.
func TestParseSysTornWrite(t *testing.T) {
	complete := "q @ memory\nq = 50\nq.max = 5000\n"
	torn := complete[:len(complete)-len("5000\n")]
	if _, err := ParseSys(strings.NewReader(torn)); err == nil {
		t.Fatal("torn system file accepted")
	}
	sys, err := ParseSys(strings.NewReader(complete))
	if err != nil {
		t.Fatalf("completed write rejected: %v", err)
	}
	b, ok := sys.Binding("q")
	if !ok || !b.HasMax || b.Max != 5000 {
		t.Errorf("binding after reload: %+v", b)
	}
}
