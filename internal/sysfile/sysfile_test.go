package sysfile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"smartconf/internal/core"
)

const sampleSys = `
/* SmartConf.sys */
max.queue.size @ memory_consumption
max.queue.size = 50
max.queue.size.min = 0
max.queue.size.max = 5000

response.queue.maxsize @ memory_consumption  # shares the metric
response.queue.maxsize = 1048576

profiling = 1
`

func TestParseSys(t *testing.T) {
	sys, err := ParseSys(strings.NewReader(sampleSys))
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Profiling {
		t.Error("profiling flag not parsed")
	}
	b, ok := sys.Binding("max.queue.size")
	if !ok {
		t.Fatal("missing binding for max.queue.size")
	}
	if b.Metric != "memory_consumption" {
		t.Errorf("metric = %q", b.Metric)
	}
	if !b.HasInitial || b.Initial != 50 {
		t.Errorf("initial = %v (has=%v), want 50", b.Initial, b.HasInitial)
	}
	if !b.HasMin || b.Min != 0 || !b.HasMax || b.Max != 5000 {
		t.Errorf("bounds = [%v,%v]", b.Min, b.Max)
	}
	confs := sys.MetricConfs("memory_consumption")
	if len(confs) != 2 {
		t.Errorf("MetricConfs = %v, want both queues", confs)
	}
	if _, ok := sys.Binding("nope"); ok {
		t.Error("Binding should miss unknown conf")
	}
}

func TestParseSysDefaults(t *testing.T) {
	sys, err := ParseSys(strings.NewReader("c @ m\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys.Binding("c")
	if b.HasInitial {
		t.Error("no initial line should leave HasInitial false")
	}
	if !math.IsInf(b.Max, 1) {
		t.Errorf("default max = %v, want +Inf", b.Max)
	}
}

func TestParseSysErrors(t *testing.T) {
	cases := []string{
		"c @\n",             // empty metric
		"@ m\n",             // empty conf
		"c = notanumber\n",  // bad value
		"just some words\n", // unrecognized
		"c = 5\n",           // value without any binding
		"c.min = 1\nc @\n",  // later malformed binding
	}
	for _, in := range cases {
		if _, err := ParseSys(strings.NewReader(in)); err == nil {
			t.Errorf("ParseSys(%q) succeeded, want error", in)
		}
	}
	var pe *ParseError
	_, err := ParseSys(strings.NewReader("???\n"))
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %v should carry a line number", err)
	}
	_ = pe
}

func TestSysRoundTrip(t *testing.T) {
	sys, err := ParseSys(strings.NewReader(sampleSys))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ParseSys(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing encoded sys: %v\n%s", err, buf.String())
	}
	if again.Profiling != sys.Profiling || len(again.Bindings) != len(sys.Bindings) {
		t.Fatalf("round trip mismatch: %+v vs %+v", again, sys)
	}
	for _, b := range sys.Bindings {
		got, ok := again.Binding(b.Conf)
		if !ok {
			t.Fatalf("lost binding %q", b.Conf)
		}
		if got.Metric != b.Metric || got.Initial != b.Initial || got.HasInitial != b.HasInitial {
			t.Errorf("binding %q mismatch: %+v vs %+v", b.Conf, got, b)
		}
	}
}

func TestStripComments(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a = 1 /* note */", "a = 1"},
		{"/* whole line */", ""},
		{"a = 1 # trailing", "a = 1"},
		{"  a /* x */ = /* y */ 1 ", "a  =  1"},
		{"a = 1 /* unterminated", "a = 1"},
	}
	for _, c := range cases {
		if got := stripComments(c.in); got != c.want {
			t.Errorf("stripComments(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseGoalsBothSpellings(t *testing.T) {
	in := `
/* figure-2 spelling */
memory_consumption = 1024
memory_consumption.hard = 1

/* section-4.1.1 spelling */
latency.goal = 10.5
latency.goal.hard = 0
throughput.goal = 100
throughput.goal.lower = 1
queue_mem.goal = 512
queue_mem.goal.superhard = 1
`
	goals, err := ParseGoals(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	mem := goals["memory_consumption"]
	if mem.Target != 1024 || !mem.Hard {
		t.Errorf("memory goal = %+v", mem)
	}
	lat := goals["latency"]
	if lat.Target != 10.5 || lat.Hard {
		t.Errorf("latency goal = %+v", lat)
	}
	tput := goals["throughput"]
	if !tput.LowerBound || tput.Target != 100 {
		t.Errorf("throughput goal = %+v", tput)
	}
	qm := goals["queue_mem"]
	if !qm.SuperHard || !qm.Hard {
		t.Errorf("super-hard should imply hard: %+v", qm)
	}
}

func TestParseGoalsErrors(t *testing.T) {
	for _, in := range []string{"x\n", "x = nan99z\n", ".goal = 5\n"} {
		if _, err := ParseGoals(strings.NewReader(in)); err == nil {
			t.Errorf("ParseGoals(%q) succeeded, want error", in)
		}
	}
}

func TestGoalsRoundTrip(t *testing.T) {
	goals := Goals{
		"mem":  {Metric: "mem", Target: 495, Hard: true, SuperHard: true},
		"lat":  {Metric: "lat", Target: 9.25},
		"tput": {Metric: "tput", Target: 50, LowerBound: true},
	}
	var buf bytes.Buffer
	if err := goals.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ParseGoals(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing: %v\n%s", err, buf.String())
	}
	for m, want := range goals {
		got := again[m]
		if got.Target != want.Target || got.Hard != want.Hard ||
			got.SuperHard != want.SuperHard || got.LowerBound != want.LowerBound {
			t.Errorf("goal %q: got %+v, want %+v", m, got, want)
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	col := core.NewCollector()
	col.Record(40, 180.5)
	col.Record(40, 190.25)
	col.Record(80, 350)
	col.Record(120, 520)
	p := col.Profile()

	var buf bytes.Buffer
	if err := EncodeProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	again, err := ParseProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing: %v\n%s", err, buf.String())
	}
	if again.TotalSamples() != p.TotalSamples() || len(again.Settings) != len(p.Settings) {
		t.Fatalf("round trip mismatch: %+v vs %+v", again, p)
	}
	for i := range p.Settings {
		if again.Settings[i].Setting != p.Settings[i].Setting {
			t.Errorf("setting[%d] = %v, want %v", i, again.Settings[i].Setting, p.Settings[i].Setting)
		}
		for j := range p.Settings[i].Samples {
			if again.Settings[i].Samples[j] != p.Settings[i].Samples[j] {
				t.Errorf("sample[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, in := range []string{
		"sample 1\n",
		"notsample 1 2\n",
		"sample x 2\n",
		"sample 1 y\n",
	} {
		if _, err := ParseProfile(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProfile(%q) succeeded, want error", in)
		}
	}
}

// Property: any profile of finite samples survives an encode/parse cycle.
func TestProfileRoundTripProperty(t *testing.T) {
	f := func(settings []uint8, values []int32) bool {
		if len(settings) == 0 || len(values) == 0 {
			return true
		}
		col := core.NewCollector()
		for i, v := range values {
			s := float64(settings[i%len(settings)])
			col.Record(s, float64(v)/16)
		}
		p := col.Profile()
		var buf bytes.Buffer
		if err := EncodeProfile(&buf, p); err != nil {
			return false
		}
		again, err := ParseProfile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		return again.TotalSamples() == p.TotalSamples() && len(again.Settings) == len(p.Settings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseSysConfNamedDotMax(t *testing.T) {
	// A configuration whose own name ends in ".max" must not be mistaken
	// for another binding's bound attribute.
	in := `
request.queue.max @ memory
request.queue.max = 7
request.queue.max.max = 100
request.queue.max.min = 1
`
	sys, err := ParseSys(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Bindings) != 1 {
		t.Fatalf("bindings = %+v, want exactly one", sys.Bindings)
	}
	b, ok := sys.Binding("request.queue.max")
	if !ok {
		t.Fatal("binding missing")
	}
	if !b.HasInitial || b.Initial != 7 || !b.HasMax || b.Max != 100 || !b.HasMin || b.Min != 1 {
		t.Errorf("binding = %+v", b)
	}
}
