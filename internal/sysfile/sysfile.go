// Package sysfile implements SmartConf's on-disk formats (§4.1 and §5.5 of
// the paper):
//
//   - the SmartConf system file ("SmartConf.sys"), written by developers and
//     invisible to users, which binds each SmartConf configuration entry C to
//     the performance metric M it affects and records C's starting value;
//   - the user-facing configuration file, where users state the numeric goal
//     for each metric and whether the goal is a hard (and optionally
//     super-hard) constraint;
//   - the per-configuration profiling file ("<ConfName>.SmartConf.sys"),
//     which stores the raw (setting, measurement) samples the controller
//     constructor synthesizes its parameters from.
//
// The grammar is line-oriented and mirrors the paper's Figure 2:
//
//	/* comments */ and # comments
//	max.queue.size @ memory_consumption      (binding)
//	max.queue.size = 50                      (initial value)
//	max.queue.size.min = 0                   (optional actuator bounds)
//	max.queue.size.max = 5000
//	profiling = 1                            (enable profiling mode)
//
// and, for the user file:
//
//	memory_consumption.goal = 1024
//	memory_consumption.goal.hard = 1
//	memory_consumption.goal.superhard = 1
package sysfile

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Binding maps one configuration entry to its performance metric, with the
// initial setting and optional actuator bounds from the system file.
type Binding struct {
	Conf    string
	Metric  string
	Initial float64
	// HasInitial distinguishes an explicit "C = 0" from an absent line.
	HasInitial bool
	Min        float64
	Max        float64 // +Inf when unset
	HasMin     bool
	HasMax     bool
}

// Sys is a parsed SmartConf system file.
type Sys struct {
	// Bindings in file order.
	Bindings []Binding
	// Profiling reports whether profiling mode is enabled (§5.5).
	Profiling bool
}

// Binding returns the binding for conf, if present.
func (s *Sys) Binding(conf string) (Binding, bool) {
	for _, b := range s.Bindings {
		if b.Conf == conf {
			return b, true
		}
	}
	return Binding{}, false
}

// MetricConfs returns the names of all configurations bound to metric, in
// file order. The Manager uses this to derive the §5.4 interaction factor N
// for super-hard goals.
func (s *Sys) MetricConfs(metric string) []string {
	var out []string
	for _, b := range s.Bindings {
		if b.Metric == metric {
			out = append(out, b.Conf)
		}
	}
	return out
}

// ParseError describes a malformed line with its 1-based line number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sysfile: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// stripComments removes /* ... */ (single line) and # trailers.
func stripComments(line string) string {
	for {
		start := strings.Index(line, "/*")
		if start < 0 {
			break
		}
		end := strings.Index(line[start:], "*/")
		if end < 0 {
			line = line[:start]
			break
		}
		line = line[:start] + line[start+end+2:]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// ParseSys reads a SmartConf system file.
func ParseSys(r io.Reader) (*Sys, error) {
	sys := &Sys{}
	index := make(map[string]int) // conf → position in sys.Bindings
	sc := bufio.NewScanner(r)
	lineNo := 0
	ensure := func(conf string) *Binding {
		if i, ok := index[conf]; ok {
			return &sys.Bindings[i]
		}
		sys.Bindings = append(sys.Bindings, Binding{Conf: conf, Max: math.Inf(1)})
		index[conf] = len(sys.Bindings) - 1
		return &sys.Bindings[len(sys.Bindings)-1]
	}
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := stripComments(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.Contains(line, "@"):
			parts := strings.SplitN(line, "@", 2)
			conf := strings.TrimSpace(parts[0])
			metric := strings.TrimSpace(parts[1])
			if conf == "" || metric == "" {
				return nil, &ParseError{lineNo, raw, "malformed binding"}
			}
			ensure(conf).Metric = metric
		case strings.Contains(line, "="):
			parts := strings.SplitN(line, "=", 2)
			key := strings.TrimSpace(parts[0])
			val := strings.TrimSpace(parts[1])
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, &ParseError{lineNo, raw, "malformed numeric value"}
			}
			// Disambiguation: a configuration may itself be named "*.min" or
			// "*.max" (e.g. "request.queue.max"), so an exact match against
			// an already-declared binding wins over the bound-suffix reading.
			// Declare bindings (the "@" line) before their attributes.
			_, exact := index[key]
			switch {
			case key == "profiling":
				sys.Profiling = f != 0
			case !exact && strings.HasSuffix(key, ".min"):
				b := ensure(strings.TrimSuffix(key, ".min"))
				b.Min, b.HasMin = f, true
			case !exact && strings.HasSuffix(key, ".max"):
				b := ensure(strings.TrimSuffix(key, ".max"))
				b.Max, b.HasMax = f, true
			default:
				b := ensure(key)
				b.Initial, b.HasInitial = f, true
			}
		default:
			return nil, &ParseError{lineNo, raw, "unrecognized directive"}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sysfile: reading system file: %w", err)
	}
	for _, b := range sys.Bindings {
		if b.Metric == "" {
			return nil, fmt.Errorf("sysfile: configuration %q has no metric binding", b.Conf)
		}
	}
	return sys, nil
}

// Encode writes the system file in canonical form (bindings sorted by
// configuration name). Parsing the output yields an equivalent Sys.
func (s *Sys) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "/* SmartConf.sys — generated; maps each configuration to its metric */")
	bindings := append([]Binding(nil), s.Bindings...)
	sort.Slice(bindings, func(i, j int) bool { return bindings[i].Conf < bindings[j].Conf })
	for _, b := range bindings {
		fmt.Fprintf(bw, "%s @ %s\n", b.Conf, b.Metric)
		if b.HasInitial {
			fmt.Fprintf(bw, "%s = %s\n", b.Conf, formatFloat(b.Initial))
		}
		if b.HasMin {
			fmt.Fprintf(bw, "%s.min = %s\n", b.Conf, formatFloat(b.Min))
		}
		if b.HasMax && !math.IsInf(b.Max, 1) {
			fmt.Fprintf(bw, "%s.max = %s\n", b.Conf, formatFloat(b.Max))
		}
	}
	if s.Profiling {
		fmt.Fprintln(bw, "profiling = 1")
	}
	return bw.Flush()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
