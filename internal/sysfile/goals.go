package sysfile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// GoalSpec is a user's declared performance goal for one metric (§4.3):
// a numeric target plus the hard / super-hard flags. Users never set the
// configuration values themselves under SmartConf — only these goals.
type GoalSpec struct {
	Metric    string
	Target    float64
	Hard      bool
	SuperHard bool
	// LowerBound marks metrics that must stay at or ABOVE the target
	// (e.g. minimum throughput). All goals in the paper's suite are upper
	// bounds, which is the default.
	LowerBound bool
}

// Goals is the parsed user-facing configuration file: metric name → goal.
type Goals map[string]GoalSpec

// ParseGoals reads a user configuration file. Both the paper's Figure 2
// spelling ("metric = 1024", "metric.hard = 1") and the §4.1.1 spelling
// ("metric.goal = 1024", "metric.goal.hard = 1") are accepted.
func ParseGoals(r io.Reader) (Goals, error) {
	goals := make(Goals)
	sc := bufio.NewScanner(r)
	lineNo := 0
	ensure := func(metric string) GoalSpec {
		g, ok := goals[metric]
		if !ok {
			g = GoalSpec{Metric: metric}
		}
		return g
	}
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := stripComments(raw)
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "=", 2)
		if len(parts) != 2 {
			return nil, &ParseError{lineNo, raw, "expected key = value"}
		}
		key := strings.TrimSpace(parts[0])
		val := strings.TrimSpace(parts[1])
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, &ParseError{lineNo, raw, "malformed numeric value"}
		}
		// Normalize: strip an optional ".goal" segment so both spellings land
		// on the same key space.
		metric := key
		var attr string
		for _, suffix := range []string{".hard", ".superhard", ".lower"} {
			if strings.HasSuffix(metric, suffix) {
				attr = suffix[1:]
				metric = strings.TrimSuffix(metric, suffix)
				break
			}
		}
		metric = strings.TrimSuffix(metric, ".goal")
		if metric == "" {
			return nil, &ParseError{lineNo, raw, "empty metric name"}
		}
		g := ensure(metric)
		switch attr {
		case "":
			g.Target = f
		case "hard":
			g.Hard = f != 0
		case "superhard":
			g.SuperHard = f != 0
			if g.SuperHard {
				g.Hard = true // super-hard implies hard
			}
		case "lower":
			g.LowerBound = f != 0
		}
		goals[metric] = g
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sysfile: reading goals: %w", err)
	}
	return goals, nil
}

// Encode writes the goals file in the §4.1.1 spelling, metrics sorted by name.
func (g Goals) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "/* user-facing goals — set the constraint, not the knob */")
	metrics := make([]string, 0, len(g))
	for m := range g {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		spec := g[m]
		fmt.Fprintf(bw, "%s.goal = %s\n", m, formatFloat(spec.Target))
		if spec.Hard {
			fmt.Fprintf(bw, "%s.goal.hard = 1\n", m)
		}
		if spec.SuperHard {
			fmt.Fprintf(bw, "%s.goal.superhard = 1\n", m)
		}
		if spec.LowerBound {
			fmt.Fprintf(bw, "%s.goal.lower = 1\n", m)
		}
	}
	return bw.Flush()
}
