package sysfile

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzzing the three line-oriented parsers: they must never panic, and
// anything they accept must survive an encode→parse round trip.

func FuzzParseSys(f *testing.F) {
	f.Add(sampleSys)
	f.Add("c @ m\nc = 5\nprofiling = 1\n")
	f.Add("x.max @ m\nx.max = 1\nx.max.max = 2\n")
	f.Add("/* only a comment */\n")
	f.Fuzz(func(t *testing.T, in string) {
		sys, err := ParseSys(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := sys.Encode(&buf); err != nil {
			t.Fatalf("accepted input failed to encode: %v", err)
		}
		again, err := ParseSys(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\n%s", err, buf.String())
		}
		if len(again.Bindings) != len(sys.Bindings) {
			t.Fatalf("round trip lost bindings: %d → %d", len(sys.Bindings), len(again.Bindings))
		}
	})
}

func FuzzParseGoals(f *testing.F) {
	f.Add("m.goal = 1\nm.goal.hard = 1\n")
	f.Add("m = 5\nm.superhard = 1\nn.goal.lower = 1\nn.goal = 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		goals, err := ParseGoals(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := goals.Encode(&buf); err != nil {
			t.Fatalf("accepted goals failed to encode: %v", err)
		}
		again, err := ParseGoals(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\n%s", err, buf.String())
		}
		if len(again) != len(goals) {
			t.Fatalf("round trip lost goals: %d → %d", len(goals), len(again))
		}
	})
}

func FuzzParseProfile(f *testing.F) {
	f.Add("sample 1 2\nsample 1 3\nsample 2 4\n")
	f.Add("/* hdr */\nsample -1.5 1e9\n")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseProfile(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeProfile(&buf, p); err != nil {
			t.Fatalf("accepted profile failed to encode: %v", err)
		}
		again, err := ParseProfile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v", err)
		}
		if again.TotalSamples() != p.TotalSamples() {
			t.Fatalf("round trip lost samples: %d → %d", p.TotalSamples(), again.TotalSamples())
		}
	})
}
