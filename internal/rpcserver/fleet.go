package rpcserver

import (
	"sort"

	"smartconf/internal/workload"
)

// Fleet surface: what internal/cluster needs to route to, kill, and restart
// this server as one member of an N-wide fleet. The methods are structural —
// the server does not import cluster — so the substrate stays usable
// standalone.

// SetID assigns the server's stable fleet identity (key-affinity hashes it).
func (sv *Server) SetID(id int) { sv.id = id }

// ID returns the fleet identity.
func (sv *Server) ID() int { return sv.id }

// Alive reports whether the server can accept work: neither crashed (OOM)
// nor down (injected instance loss).
func (sv *Server) Alive() bool { return !sv.crashed && !sv.down }

// Down reports whether the server is killed but restartable.
func (sv *Server) Down() bool { return sv.down }

// Load returns the server's backlog — queued plus in-flight calls — the
// signal load-aware routing policies compare.
func (sv *Server) Load() float64 { return float64(sv.QueueLen() + sv.inflightCalls) }

// Kill models abrupt process death for fleet chaos: the process releases
// every byte it accounts (base heap, queued and in-flight request payloads,
// undelivered responses), queued and in-flight calls are handed to
// OnEvacuate (the fleet's client-retry path) or counted dropped, and every
// callback scheduled by this incarnation is invalidated. Unlike crash(),
// which models a wedged OOM JVM that releases nothing, a killed process
// gives its memory back — that is what makes restart possible.
func (sv *Server) Kill() {
	if sv.crashed || sv.down {
		return
	}
	sv.down = true
	sv.epoch++
	held := sv.queueBytes + sv.respBytes + sv.cfg.BaseHeapBytes
	for _, c := range sv.queue[sv.queueHead:] {
		sv.evacuate(c.op)
	}
	// Evacuate in-flight batches oldest-dispatch-first: slot indices are
	// reused out of order, so index order would reshuffle the fleet's retry
	// stream relative to the ordered inflight list this table replaced.
	active := make([]int, 0, len(sv.slots))
	for slot, b := range sv.slots {
		if b != nil {
			active = append(active, slot)
		}
	}
	sort.Slice(active, func(i, j int) bool { return sv.slotSeq[active[i]] < sv.slotSeq[active[j]] })
	for _, slot := range active {
		for _, c := range sv.slots[slot] {
			sv.evacuate(c.op)
		}
		sv.releaseSlot(slot)
	}
	sv.queue = sv.queue[:0]
	sv.queueHead = 0
	sv.queueBytes = 0
	sv.inflightCalls = 0
	sv.respQueue = sv.respQueue[:0]
	sv.respHead = 0
	sv.respBytes = 0
	sv.busy = 0
	sv.draining = false
	sv.heap.Free(held)
}

// Restart brings a killed server back as a cold process: fresh base heap,
// empty queues; cumulative counters are observer-side totals and persist
// across incarnations. A crashed (OOM) server stays dead — that is the hard
// goal's unrecoverable failure, not an operational restart. If the base heap
// no longer fits (the heap filled while the server was down), the restart
// itself OOMs.
func (sv *Server) Restart() {
	if sv.crashed || !sv.down {
		return
	}
	if err := sv.heap.Alloc(sv.cfg.BaseHeapBytes); err != nil {
		sv.crashed = true
		return
	}
	sv.down = false
}

func (sv *Server) evacuate(op workload.Op) {
	if sv.OnEvacuate != nil {
		sv.OnEvacuate(op)
		return
	}
	sv.dropped.Inc()
}
