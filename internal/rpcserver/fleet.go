package rpcserver

import "smartconf/internal/workload"

// Fleet surface: what internal/cluster needs to route to, kill, and restart
// this server as one member of an N-wide fleet. The methods are structural —
// the server does not import cluster — so the substrate stays usable
// standalone.

// SetID assigns the server's stable fleet identity (key-affinity hashes it).
func (sv *Server) SetID(id int) { sv.id = id }

// ID returns the fleet identity.
func (sv *Server) ID() int { return sv.id }

// Alive reports whether the server can accept work: neither crashed (OOM)
// nor down (injected instance loss).
func (sv *Server) Alive() bool { return !sv.crashed && !sv.down }

// Down reports whether the server is killed but restartable.
func (sv *Server) Down() bool { return sv.down }

// Load returns the server's backlog — queued plus in-flight calls — the
// signal load-aware routing policies compare.
func (sv *Server) Load() float64 { return float64(len(sv.queue) + sv.inflightCalls) }

// Kill models abrupt process death for fleet chaos: the process releases
// every byte it accounts (base heap, queued and in-flight request payloads,
// undelivered responses), queued and in-flight calls are handed to
// OnEvacuate (the fleet's client-retry path) or counted dropped, and every
// callback scheduled by this incarnation is invalidated. Unlike crash(),
// which models a wedged OOM JVM that releases nothing, a killed process
// gives its memory back — that is what makes restart possible.
func (sv *Server) Kill() {
	if sv.crashed || sv.down {
		return
	}
	sv.down = true
	sv.epoch++
	held := sv.queueBytes + sv.respBytes + sv.cfg.BaseHeapBytes
	for _, c := range sv.queue {
		sv.evacuate(c.op)
	}
	for _, b := range sv.inflight {
		for _, c := range b {
			sv.evacuate(c.op)
		}
	}
	sv.queue = nil
	sv.queueBytes = 0
	sv.inflight = nil
	sv.inflightCalls = 0
	sv.respQueue = nil
	sv.respBytes = 0
	sv.busy = 0
	sv.draining = false
	sv.heap.Free(held)
}

// Restart brings a killed server back as a cold process: fresh base heap,
// empty queues; cumulative counters are observer-side totals and persist
// across incarnations. A crashed (OOM) server stays dead — that is the hard
// goal's unrecoverable failure, not an operational restart. If the base heap
// no longer fits (the heap filled while the server was down), the restart
// itself OOMs.
func (sv *Server) Restart() {
	if sv.crashed || !sv.down {
		return
	}
	if err := sv.heap.Alloc(sv.cfg.BaseHeapBytes); err != nil {
		sv.crashed = true
		return
	}
	sv.down = false
}

func (sv *Server) evacuate(op workload.Op) {
	if sv.OnEvacuate != nil {
		sv.OnEvacuate(op)
		return
	}
	sv.dropped.Inc()
}

func (sv *Server) removeInflight(batch []call) {
	for i := range sv.inflight {
		if len(sv.inflight[i]) > 0 && len(batch) > 0 && &sv.inflight[i][0] == &batch[0] {
			sv.inflight = append(sv.inflight[:i], sv.inflight[i+1:]...)
			sv.inflightCalls -= len(batch)
			return
		}
	}
}
