// Package rpcserver simulates an HBase-region-server-like RPC server: a
// bounded call queue feeding a worker pool, and a bounded response queue
// draining to clients. It is the substrate for three of the paper's
// benchmark issues:
//
//   - HB3813 ipc.server.max.queue.size — the request-queue bound. Every
//     queued and in-flight call pins its payload on the heap, so the bound
//     indirectly caps memory; too large risks OOM, too small throttles
//     throughput.
//   - HB6728 ipc.server.response.queue.maxsize — the response-queue byte
//     bound, with the same memory/throughput trade-off on the read path.
//   - Figures 6, 7 and 8's case studies (single knob, controller ablations,
//     and both knobs interacting on one super-hard memory goal).
//
// The server is event-driven against a sim.Simulation and accounts every
// payload byte on a memsim.Heap; exceeding the heap is the OOM crash the
// hard goal must prevent.
package rpcserver

import (
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// Config fixes the server's capacity parameters.
type Config struct {
	// Workers is the number of handler threads.
	Workers int
	// ServiceBytesPerSec is each worker's processing rate.
	ServiceBytesPerSec int64
	// ServiceBaseTime is the fixed per-dispatch overhead. It is paid once
	// per batch, which is why deeper queues (bigger batches) raise
	// throughput — the trade-off side of the HB3813/HB6728 knobs.
	ServiceBaseTime time.Duration
	// MaxBatch is how many queued calls one worker dispatch may take
	// (multi-get batching / group commit). Values < 1 behave as 1.
	MaxBatch int
	// ReadResponseFactor scales a read's response size relative to its
	// request size (reads return data; writes return a small ack).
	ReadResponseFactor float64
	// ReadResponseBytes, when positive, fixes every read response at this
	// size instead of scaling the request (HB6728's workload: tiny read
	// requests fetching 2 MB values).
	ReadResponseBytes int64
	// WriteAckBytes is the response size for writes.
	WriteAckBytes int64
	// DrainBytesPerSec is the aggregate client receive rate emptying the
	// response queue.
	DrainBytesPerSec int64
	// PerConnDrainBytesPerSec, when positive, models per-connection client
	// bandwidth: the effective drain rate is
	// min(DrainBytesPerSec, PerConnDrainBytesPerSec × queued responses),
	// so a deeper response queue drains faster (more parallel transfers) —
	// the throughput side of the HB6728 trade-off.
	PerConnDrainBytesPerSec int64
	// BaseHeapBytes is allocated at startup (code, metadata, block cache).
	BaseHeapBytes int64
	// ResponseRetry is how long a worker waits before retrying when the
	// response queue is full.
	ResponseRetry time.Duration
	// DropOnRespFull, when set, drops a batch's responses instead of
	// blocking the worker when the response queue is full: the calls count
	// as rejected (clients retry), workers stay productive. This is the
	// responder discipline the HB6728 scenario uses.
	DropOnRespFull bool
}

// DefaultConfig returns the calibration used across the HB experiments.
func DefaultConfig() Config {
	return Config{
		Workers:            4,
		ServiceBytesPerSec: 48 << 20, // 48 MB/s per worker
		ServiceBaseTime:    200 * time.Millisecond,
		MaxBatch:           8,
		ReadResponseFactor: 1.0,
		WriteAckBytes:      256,
		DrainBytesPerSec:   256 << 20,
		BaseHeapBytes:      100 << 20,
		ResponseRetry:      20 * time.Millisecond,
	}
}

type call struct {
	op      workload.Op
	arrived time.Duration
}

// Server is the simulated RPC server.
type Server struct {
	sim  *sim.Simulation
	heap *memsim.Heap
	cfg  Config

	maxQueueItems int   // HB3813 knob (call count)
	maxRespBytes  int64 // HB6728 knob (bytes)

	queue      []call
	queueBytes int64
	busy       int

	respQueue []int64 // response sizes awaiting drain (FIFO)
	respBytes int64
	draining  bool

	crashed bool

	// Fleet surface (internal/cluster): identity, liveness across injected
	// instance loss, and the in-flight batches that must be evacuated when
	// the process is killed. epoch invalidates scheduled callbacks from a
	// previous incarnation.
	id            int
	down          bool
	epoch         uint64
	inflight      [][]call
	inflightCalls int

	completed  metrics.Counter
	rejected   metrics.Counter
	dropped    metrics.Counter // client-visible failures after a crash
	throughput *metrics.Meter
	latency    *metrics.Latency

	// BeforeAdmit, when set, runs at the top of every Offer — the paper's
	// "setPerf/getConf on every enqueue" integration point for the
	// request-queue knob.
	BeforeAdmit func()
	// BeforeRespond, when set, runs before every response enqueue — the
	// integration point for the response-queue knob.
	BeforeRespond func()
	// OnEvacuate, when set, receives every queued or in-flight call displaced
	// by Kill — the fleet's client-retry path. Without it displaced calls
	// count as dropped.
	OnEvacuate func(op workload.Op)
}

// New returns a server with both knobs wide open (no request-count bound,
// no response-byte bound) — the unsafe pre-patch defaults.
func New(s *sim.Simulation, heap *memsim.Heap, cfg Config) *Server {
	sv := &Server{
		sim:           s,
		heap:          heap,
		cfg:           cfg,
		maxQueueItems: int(^uint(0) >> 1),
		maxRespBytes:  int64(^uint64(0) >> 1),
		throughput:    metrics.NewMeter(10 * time.Second),
		latency:       metrics.NewLatency(512),
	}
	if err := heap.Alloc(cfg.BaseHeapBytes); err != nil {
		sv.crashed = true
	}
	return sv
}

// SetMaxQueue sets the HB3813 knob: the maximum number of queued calls.
// Values below zero clamp to zero. The queue may transiently exceed a
// lowered bound (§4.2: temporary inconsistency between C and its deputy is
// tolerated); the bound only gates new admissions.
func (sv *Server) SetMaxQueue(n int) {
	if n < 0 {
		n = 0
	}
	sv.maxQueueItems = n
}

// SetMaxRespBytes sets the HB6728 knob: the response-queue byte bound.
func (sv *Server) SetMaxRespBytes(n int64) {
	if n < 0 {
		n = 0
	}
	sv.maxRespBytes = n
}

// SetWorkers resizes the handler pool mid-run (fault injection: worker-pool
// loss). The dispatch loop reads the bound per iteration, so a shrink takes
// effect as running handlers finish; busy handlers above the new bound are
// never interrupted.
func (sv *Server) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sv.cfg.Workers = n
}

// Workers returns the current handler-pool size.
func (sv *Server) Workers() int { return sv.cfg.Workers }

// MaxQueue returns the current request-queue bound.
func (sv *Server) MaxQueue() int { return sv.maxQueueItems }

// MaxRespBytes returns the current response-queue byte bound.
func (sv *Server) MaxRespBytes() int64 { return sv.maxRespBytes }

// QueueLen returns the number of queued calls (the HB3813 deputy variable).
func (sv *Server) QueueLen() int { return len(sv.queue) }

// RespBytes returns the response-queue occupancy in bytes (the HB6728
// deputy variable).
func (sv *Server) RespBytes() int64 { return sv.respBytes }

// Crashed reports whether the server has died (OOM).
func (sv *Server) Crashed() bool { return sv.crashed }

// Completed returns the number of completed calls.
func (sv *Server) Completed() int64 { return sv.completed.Value() }

// Rejected returns the number of calls refused at admission.
func (sv *Server) Rejected() int64 { return sv.rejected.Value() }

// Dropped returns the number of calls lost to a crashed server.
func (sv *Server) Dropped() int64 { return sv.dropped.Value() }

// Throughput returns completed calls per second over the trailing window.
func (sv *Server) Throughput() float64 { return sv.throughput.Rate(sv.sim.Now()) }

// Latency returns the server's latency tracker.
func (sv *Server) Latency() *metrics.Latency { return sv.latency }

// Offer submits one call. It returns false when the call is refused
// (queue full) or lost (server crashed).
func (sv *Server) Offer(op workload.Op) bool {
	if sv.crashed || sv.down {
		sv.dropped.Inc()
		return false
	}
	if sv.BeforeAdmit != nil {
		sv.BeforeAdmit()
	}
	if len(sv.queue) >= sv.maxQueueItems {
		sv.rejected.Inc()
		return false
	}
	if err := sv.heap.Alloc(op.Bytes); err != nil {
		sv.crash()
		return false
	}
	sv.queue = append(sv.queue, call{op: op, arrived: sv.sim.Now()})
	sv.queueBytes += op.Bytes
	sv.dispatch()
	return true
}

func (sv *Server) crash() {
	if sv.crashed {
		return
	}
	sv.crashed = true
	// A crashed JVM releases nothing and serves nothing; queued work is lost
	// from the clients' perspective.
	sv.dropped.Add(int64(len(sv.queue)))
}

func (sv *Server) dispatch() {
	maxBatch := sv.cfg.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	for !sv.crashed && !sv.down && sv.busy < sv.cfg.Workers && len(sv.queue) > 0 {
		n := maxBatch
		if n > len(sv.queue) {
			n = len(sv.queue)
		}
		batch := make([]call, n)
		copy(batch, sv.queue[:n])
		sv.queue = sv.queue[n:]
		sv.busy++
		var bytes int64
		for _, c := range batch {
			bytes += c.op.Bytes
		}
		d := sv.cfg.ServiceBaseTime // paid once per batch
		if sv.cfg.ServiceBytesPerSec > 0 {
			d += time.Duration(float64(bytes) / float64(sv.cfg.ServiceBytesPerSec) * float64(time.Second))
		}
		sv.inflight = append(sv.inflight, batch)
		sv.inflightCalls += n
		e := sv.epoch
		sv.sim.After(d, func() {
			if sv.epoch == e {
				sv.finish(batch)
			}
		})
	}
}

func (sv *Server) finish(batch []call) {
	if sv.crashed {
		return
	}
	var respSize, reqBytes int64
	for _, c := range batch {
		reqBytes += c.op.Bytes
		switch {
		case c.op.Write:
			respSize += sv.cfg.WriteAckBytes
		case sv.cfg.ReadResponseBytes > 0:
			respSize += sv.cfg.ReadResponseBytes
		default:
			respSize += int64(float64(c.op.Bytes) * sv.cfg.ReadResponseFactor)
		}
	}
	if sv.BeforeRespond != nil {
		sv.BeforeRespond()
	}
	if sv.respBytes > 0 && sv.respBytes+respSize > sv.maxRespBytes {
		if sv.cfg.DropOnRespFull {
			// Responder sheds load: the batch's responses are discarded and
			// the calls count as rejected (clients will retry); the worker
			// moves on.
			sv.heap.Free(reqBytes)
			sv.queueBytes -= reqBytes
			sv.removeInflight(batch)
			sv.busy--
			sv.rejected.Add(int64(len(batch)))
			sv.dispatch()
			return
		}
		// Responder back-pressure: the worker holds the batch and retries.
		// An oversize batch is admitted into an EMPTY response queue so a
		// bound below one batch cannot deadlock the server (§4.2's tolerated
		// transient inconsistency between a knob and its deputy).
		e := sv.epoch
		sv.sim.After(sv.cfg.ResponseRetry, func() {
			if sv.epoch == e {
				sv.finish(batch)
			}
		})
		return
	}
	if err := sv.heap.Alloc(respSize); err != nil {
		sv.crash()
		return
	}
	// The batch's request payloads are released once the responses are built.
	sv.heap.Free(reqBytes)
	sv.queueBytes -= reqBytes
	// One response entry per call: each queued response is one in-flight
	// client transfer (the per-connection drain model counts these).
	for _, c := range batch {
		switch {
		case c.op.Write:
			sv.respQueue = append(sv.respQueue, sv.cfg.WriteAckBytes)
		case sv.cfg.ReadResponseBytes > 0:
			sv.respQueue = append(sv.respQueue, sv.cfg.ReadResponseBytes)
		default:
			sv.respQueue = append(sv.respQueue, int64(float64(c.op.Bytes)*sv.cfg.ReadResponseFactor))
		}
	}
	sv.respBytes += respSize
	sv.removeInflight(batch)
	sv.busy--
	sv.completed.Add(int64(len(batch)))
	sv.throughput.Mark(sv.sim.Now(), float64(len(batch)))
	for _, c := range batch {
		sv.latency.Observe(sv.sim.Now() - c.arrived)
	}
	sv.drain()
	sv.dispatch()
}

func (sv *Server) drain() {
	if sv.draining || sv.crashed || len(sv.respQueue) == 0 {
		return
	}
	sv.draining = true
	size := sv.respQueue[0]
	rate := sv.cfg.DrainBytesPerSec
	if sv.cfg.PerConnDrainBytesPerSec > 0 {
		if conns := int64(len(sv.respQueue)); conns*sv.cfg.PerConnDrainBytesPerSec < rate {
			rate = conns * sv.cfg.PerConnDrainBytesPerSec
		}
	}
	d := time.Duration(float64(size) / float64(rate) * float64(time.Second))
	if d <= 0 {
		d = time.Microsecond
	}
	e := sv.epoch
	sv.sim.After(d, func() {
		if sv.epoch != e {
			return
		}
		sv.draining = false
		if sv.crashed {
			return
		}
		sv.respQueue = sv.respQueue[1:]
		sv.respBytes -= size
		sv.heap.Free(size)
		sv.drain()
	})
}
