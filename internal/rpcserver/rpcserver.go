// Package rpcserver simulates an HBase-region-server-like RPC server: a
// bounded call queue feeding a worker pool, and a bounded response queue
// draining to clients. It is the substrate for three of the paper's
// benchmark issues:
//
//   - HB3813 ipc.server.max.queue.size — the request-queue bound. Every
//     queued and in-flight call pins its payload on the heap, so the bound
//     indirectly caps memory; too large risks OOM, too small throttles
//     throughput.
//   - HB6728 ipc.server.response.queue.maxsize — the response-queue byte
//     bound, with the same memory/throughput trade-off on the read path.
//   - Figures 6, 7 and 8's case studies (single knob, controller ablations,
//     and both knobs interacting on one super-hard memory goal).
//
// The server is event-driven against a sim.Simulation and accounts every
// payload byte on a memsim.Heap; exceeding the heap is the OOM crash the
// hard goal must prevent.
package rpcserver

import (
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// Config fixes the server's capacity parameters.
type Config struct {
	// Workers is the number of handler threads.
	Workers int
	// ServiceBytesPerSec is each worker's processing rate.
	ServiceBytesPerSec int64
	// ServiceBaseTime is the fixed per-dispatch overhead. It is paid once
	// per batch, which is why deeper queues (bigger batches) raise
	// throughput — the trade-off side of the HB3813/HB6728 knobs.
	ServiceBaseTime time.Duration
	// MaxBatch is how many queued calls one worker dispatch may take
	// (multi-get batching / group commit). Values < 1 behave as 1.
	MaxBatch int
	// ReadResponseFactor scales a read's response size relative to its
	// request size (reads return data; writes return a small ack).
	ReadResponseFactor float64
	// ReadResponseBytes, when positive, fixes every read response at this
	// size instead of scaling the request (HB6728's workload: tiny read
	// requests fetching 2 MB values).
	ReadResponseBytes int64
	// WriteAckBytes is the response size for writes.
	WriteAckBytes int64
	// DrainBytesPerSec is the aggregate client receive rate emptying the
	// response queue.
	DrainBytesPerSec int64
	// PerConnDrainBytesPerSec, when positive, models per-connection client
	// bandwidth: the effective drain rate is
	// min(DrainBytesPerSec, PerConnDrainBytesPerSec × queued responses),
	// so a deeper response queue drains faster (more parallel transfers) —
	// the throughput side of the HB6728 trade-off.
	PerConnDrainBytesPerSec int64
	// BaseHeapBytes is allocated at startup (code, metadata, block cache).
	BaseHeapBytes int64
	// ResponseRetry is how long a worker waits before retrying when the
	// response queue is full.
	ResponseRetry time.Duration
	// DropOnRespFull, when set, drops a batch's responses instead of
	// blocking the worker when the response queue is full: the calls count
	// as rejected (clients retry), workers stay productive. This is the
	// responder discipline the HB6728 scenario uses.
	DropOnRespFull bool
}

// DefaultConfig returns the calibration used across the HB experiments.
func DefaultConfig() Config {
	return Config{
		Workers:            4,
		ServiceBytesPerSec: 48 << 20, // 48 MB/s per worker
		ServiceBaseTime:    200 * time.Millisecond,
		MaxBatch:           8,
		ReadResponseFactor: 1.0,
		WriteAckBytes:      256,
		DrainBytesPerSec:   256 << 20,
		BaseHeapBytes:      100 << 20,
		ResponseRetry:      20 * time.Millisecond,
	}
}

type call struct {
	op      workload.Op
	arrived time.Duration
}

// Server is the simulated RPC server.
type Server struct {
	sim  *sim.Simulation
	heap *memsim.Heap
	cfg  Config

	maxQueueItems int   // HB3813 knob (call count)
	maxRespBytes  int64 // HB6728 knob (bytes)

	// queue[queueHead:] is the live call queue. Consuming from the front
	// advances queueHead instead of reslicing (queue = queue[n:] would leak
	// the array's front capacity and force a reallocation per cycle); the
	// array is reset when empty and compacted when the dead prefix dominates,
	// so steady-state admission costs zero allocations.
	queue      []call
	queueHead  int
	queueBytes int64
	busy       int

	// respQueue[respHead:] holds response sizes awaiting drain (FIFO), with
	// the same dead-prefix discipline as the call queue.
	respQueue []int64
	respHead  int
	respBytes int64
	draining  bool
	drainSize int64 // size of the response being drained (one in flight)

	crashed bool

	// Fleet surface (internal/cluster): identity, liveness across injected
	// instance loss, and the in-flight batches that must be evacuated when
	// the process is killed. epoch invalidates scheduled callbacks from a
	// previous incarnation.
	id   int
	down bool

	// In-flight batches live in a slot table: slots[i] is a pooled []call or
	// nil when free, freeSlots is the free-index stack, and a scheduled
	// completion carries slot<<32|epoch as its AtArg argument — no closure,
	// and a stable identity that survives other batches retiring.
	epoch         uint64
	slots         [][]call
	slotSeq       []uint64 // dispatch order per slot: Kill evacuates oldest-first
	dispatchSeq   uint64
	freeSlots     []int
	batchPool     [][]call // retired batch buffers for reuse
	inflightCalls int

	// finishFn/drainFn are finishSlot/drainDone bound once at construction:
	// creating the method value at each AfterArg call site would allocate.
	finishFn func(uint64)
	drainFn  func(uint64)

	completed  metrics.Counter
	rejected   metrics.Counter
	dropped    metrics.Counter // client-visible failures after a crash
	throughput *metrics.Meter
	latency    *metrics.Latency

	// BeforeAdmit, when set, runs at the top of every Offer — the paper's
	// "setPerf/getConf on every enqueue" integration point for the
	// request-queue knob.
	BeforeAdmit func()
	// BeforeRespond, when set, runs before every response enqueue — the
	// integration point for the response-queue knob.
	BeforeRespond func()
	// OnEvacuate, when set, receives every queued or in-flight call displaced
	// by Kill — the fleet's client-retry path. Without it displaced calls
	// count as dropped.
	OnEvacuate func(op workload.Op)
}

// New returns a server with both knobs wide open (no request-count bound,
// no response-byte bound) — the unsafe pre-patch defaults.
func New(s *sim.Simulation, heap *memsim.Heap, cfg Config) *Server {
	sv := &Server{
		sim:           s,
		heap:          heap,
		cfg:           cfg,
		maxQueueItems: int(^uint(0) >> 1),
		maxRespBytes:  int64(^uint64(0) >> 1),
		throughput:    metrics.NewMeter(10 * time.Second),
		latency:       metrics.NewLatency(512),
	}
	sv.finishFn = sv.finishSlot
	sv.drainFn = sv.drainDone
	if err := heap.Alloc(cfg.BaseHeapBytes); err != nil {
		sv.crashed = true
	}
	return sv
}

// Preallocate grows the per-request buffers to the given high-water marks —
// the call queue, the response queue, and the in-flight slot table with its
// recycled batch slabs — so a steady-state run never grows them. Wide fleets
// need this: each member sees only a sliver of the offered load, so the
// organic watermark growth that a single busy server finishes in its first
// few thousand requests would otherwise trickle on for millions of requests
// across 256 cold pools, and the whole-run zero-allocation gate would catch
// the stragglers.
func (sv *Server) Preallocate(queueCap, respCap, batches int) {
	if cap(sv.queue) < queueCap {
		q := make([]call, len(sv.queue), queueCap)
		copy(q, sv.queue)
		sv.queue = q
	}
	if cap(sv.respQueue) < respCap {
		r := make([]int64, len(sv.respQueue), respCap)
		copy(r, sv.respQueue)
		sv.respQueue = r
	}
	if cap(sv.slots) < batches {
		slots := make([][]call, len(sv.slots), batches)
		copy(slots, sv.slots)
		sv.slots = slots
		seq := make([]uint64, len(sv.slotSeq), batches)
		copy(seq, sv.slotSeq)
		sv.slotSeq = seq
		free := make([]int, len(sv.freeSlots), batches)
		copy(free, sv.freeSlots)
		sv.freeSlots = free
	}
	capHint := sv.cfg.MaxBatch
	if capHint < 1 {
		capHint = 1
	}
	for len(sv.batchPool) < batches {
		sv.batchPool = append(sv.batchPool, make([]call, 0, capHint))
	}
}

// SetMaxQueue sets the HB3813 knob: the maximum number of queued calls.
// Values below zero clamp to zero. The queue may transiently exceed a
// lowered bound (§4.2: temporary inconsistency between C and its deputy is
// tolerated); the bound only gates new admissions.
func (sv *Server) SetMaxQueue(n int) {
	if n < 0 {
		n = 0
	}
	sv.maxQueueItems = n
}

// SetMaxRespBytes sets the HB6728 knob: the response-queue byte bound.
func (sv *Server) SetMaxRespBytes(n int64) {
	if n < 0 {
		n = 0
	}
	sv.maxRespBytes = n
}

// SetWorkers resizes the handler pool mid-run (fault injection: worker-pool
// loss). The dispatch loop reads the bound per iteration, so a shrink takes
// effect as running handlers finish; busy handlers above the new bound are
// never interrupted.
func (sv *Server) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sv.cfg.Workers = n
}

// Workers returns the current handler-pool size.
func (sv *Server) Workers() int { return sv.cfg.Workers }

// MaxQueue returns the current request-queue bound.
func (sv *Server) MaxQueue() int { return sv.maxQueueItems }

// MaxRespBytes returns the current response-queue byte bound.
func (sv *Server) MaxRespBytes() int64 { return sv.maxRespBytes }

// QueueLen returns the number of queued calls (the HB3813 deputy variable).
func (sv *Server) QueueLen() int { return len(sv.queue) - sv.queueHead }

// RespBytes returns the response-queue occupancy in bytes (the HB6728
// deputy variable).
func (sv *Server) RespBytes() int64 { return sv.respBytes }

// Crashed reports whether the server has died (OOM).
func (sv *Server) Crashed() bool { return sv.crashed }

// Completed returns the number of completed calls.
func (sv *Server) Completed() int64 { return sv.completed.Value() }

// Rejected returns the number of calls refused at admission.
func (sv *Server) Rejected() int64 { return sv.rejected.Value() }

// Dropped returns the number of calls lost to a crashed server.
func (sv *Server) Dropped() int64 { return sv.dropped.Value() }

// Throughput returns completed calls per second over the trailing window.
func (sv *Server) Throughput() float64 { return sv.throughput.Rate(sv.sim.Now()) }

// Latency returns the server's latency tracker.
func (sv *Server) Latency() *metrics.Latency { return sv.latency }

// Offer submits one call. It returns false when the call is refused
// (queue full) or lost (server crashed).
//
//smartconf:hotpath
func (sv *Server) Offer(op workload.Op) bool {
	if sv.crashed || sv.down {
		sv.dropped.Inc()
		return false
	}
	if sv.BeforeAdmit != nil {
		sv.BeforeAdmit()
	}
	if sv.QueueLen() >= sv.maxQueueItems {
		sv.rejected.Inc()
		return false
	}
	if err := sv.heap.Alloc(op.Bytes); err != nil {
		sv.crash()
		return false
	}
	sv.queue = append(sv.queue, call{op: op, arrived: sv.sim.Now()})
	sv.queueBytes += op.Bytes
	sv.dispatch()
	return true
}

func (sv *Server) crash() {
	if sv.crashed {
		return
	}
	sv.crashed = true
	// A crashed JVM releases nothing and serves nothing; queued work is lost
	// from the clients' perspective.
	sv.dropped.Add(int64(sv.QueueLen()))
}

// getBatch returns a retired batch buffer, or a fresh one sized to MaxBatch.
func (sv *Server) getBatch() []call {
	if n := len(sv.batchPool); n > 0 {
		b := sv.batchPool[n-1][:0]
		sv.batchPool[n-1] = nil
		sv.batchPool = sv.batchPool[:n-1]
		return b
	}
	capHint := sv.cfg.MaxBatch
	if capHint < 1 {
		capHint = 1
	}
	//smartconf:allow hotalloc -- cold-start pool refill: fires only until the pool reaches steady-state depth, then every batch recycles
	return make([]call, 0, capHint)
}

// takeSlot parks an in-flight batch and returns its stable slot index.
func (sv *Server) takeSlot(batch []call) int {
	sv.dispatchSeq++
	if n := len(sv.freeSlots); n > 0 {
		slot := sv.freeSlots[n-1]
		sv.freeSlots = sv.freeSlots[:n-1]
		sv.slots[slot] = batch
		sv.slotSeq[slot] = sv.dispatchSeq
		return slot
	}
	sv.slots = append(sv.slots, batch)
	sv.slotSeq = append(sv.slotSeq, sv.dispatchSeq)
	return len(sv.slots) - 1
}

// releaseSlot retires an in-flight batch: the slot returns to the free stack
// and the buffer to the pool.
func (sv *Server) releaseSlot(slot int) {
	batch := sv.slots[slot]
	sv.slots[slot] = nil
	sv.freeSlots = append(sv.freeSlots, slot)
	sv.inflightCalls -= len(batch)
	sv.batchPool = append(sv.batchPool, batch)
}

// finishArg packs a completion's AtArg argument: the batch's slot in the
// high 32 bits, the scheduling incarnation's epoch in the low 32. A stale
// epoch (the server was killed and the slot table cleared) makes the
// callback a no-op, exactly like the closure-captured epoch check it
// replaces.
func (sv *Server) finishArg(slot int) uint64 {
	return uint64(slot)<<32 | uint64(uint32(sv.epoch))
}

func (sv *Server) dispatch() {
	maxBatch := sv.cfg.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	for !sv.crashed && !sv.down && sv.busy < sv.cfg.Workers && sv.QueueLen() > 0 {
		n := maxBatch
		if q := sv.QueueLen(); n > q {
			n = q
		}
		batch := append(sv.getBatch(), sv.queue[sv.queueHead:sv.queueHead+n]...)
		sv.queueHead += n
		if sv.queueHead == len(sv.queue) {
			sv.queue = sv.queue[:0]
			sv.queueHead = 0
		} else if sv.queueHead > 64 && sv.queueHead*2 >= len(sv.queue) {
			m := copy(sv.queue, sv.queue[sv.queueHead:])
			sv.queue = sv.queue[:m]
			sv.queueHead = 0
		}
		sv.busy++
		var bytes int64
		for _, c := range batch {
			bytes += c.op.Bytes
		}
		d := sv.cfg.ServiceBaseTime // paid once per batch
		if sv.cfg.ServiceBytesPerSec > 0 {
			d += time.Duration(float64(bytes) / float64(sv.cfg.ServiceBytesPerSec) * float64(time.Second))
		}
		slot := sv.takeSlot(batch)
		sv.inflightCalls += n
		sv.sim.AfterArg(d, sv.finishFn, sv.finishArg(slot))
	}
}

// finishSlot is the scheduled completion entry point (bound once as
// finishFn). It unpacks the slot and epoch and drops stale incarnations.
//
//smartconf:hotpath
func (sv *Server) finishSlot(arg uint64) {
	if uint32(arg) != uint32(sv.epoch) {
		return
	}
	sv.finish(int(arg >> 32))
}

func (sv *Server) finish(slot int) {
	if sv.crashed {
		return
	}
	batch := sv.slots[slot]
	var respSize, reqBytes int64
	for _, c := range batch {
		reqBytes += c.op.Bytes
		switch {
		case c.op.Write:
			respSize += sv.cfg.WriteAckBytes
		case sv.cfg.ReadResponseBytes > 0:
			respSize += sv.cfg.ReadResponseBytes
		default:
			respSize += int64(float64(c.op.Bytes) * sv.cfg.ReadResponseFactor)
		}
	}
	if sv.BeforeRespond != nil {
		sv.BeforeRespond()
	}
	if sv.respBytes > 0 && sv.respBytes+respSize > sv.maxRespBytes {
		if sv.cfg.DropOnRespFull {
			// Responder sheds load: the batch's responses are discarded and
			// the calls count as rejected (clients will retry); the worker
			// moves on.
			sv.heap.Free(reqBytes)
			sv.queueBytes -= reqBytes
			sv.rejected.Add(int64(len(batch)))
			sv.releaseSlot(slot)
			sv.busy--
			sv.dispatch()
			return
		}
		// Responder back-pressure: the worker holds the batch and retries.
		// An oversize batch is admitted into an EMPTY response queue so a
		// bound below one batch cannot deadlock the server (§4.2's tolerated
		// transient inconsistency between a knob and its deputy).
		sv.sim.AfterArg(sv.cfg.ResponseRetry, sv.finishFn, sv.finishArg(slot))
		return
	}
	if err := sv.heap.Alloc(respSize); err != nil {
		sv.crash()
		return
	}
	// The batch's request payloads are released once the responses are built.
	sv.heap.Free(reqBytes)
	sv.queueBytes -= reqBytes
	// One response entry per call: each queued response is one in-flight
	// client transfer (the per-connection drain model counts these).
	for _, c := range batch {
		switch {
		case c.op.Write:
			sv.respQueue = append(sv.respQueue, sv.cfg.WriteAckBytes)
		case sv.cfg.ReadResponseBytes > 0:
			sv.respQueue = append(sv.respQueue, sv.cfg.ReadResponseBytes)
		default:
			sv.respQueue = append(sv.respQueue, int64(float64(c.op.Bytes)*sv.cfg.ReadResponseFactor))
		}
	}
	sv.respBytes += respSize
	sv.completed.Add(int64(len(batch)))
	sv.throughput.Mark(sv.sim.Now(), float64(len(batch)))
	for _, c := range batch {
		sv.latency.Observe(sv.sim.Now() - c.arrived)
	}
	sv.releaseSlot(slot)
	sv.busy--
	sv.drain()
	sv.dispatch()
}

func (sv *Server) respLen() int { return len(sv.respQueue) - sv.respHead }

func (sv *Server) drain() {
	if sv.draining || sv.crashed || sv.respLen() == 0 {
		return
	}
	sv.draining = true
	size := sv.respQueue[sv.respHead]
	rate := sv.cfg.DrainBytesPerSec
	if sv.cfg.PerConnDrainBytesPerSec > 0 {
		if conns := int64(sv.respLen()); conns*sv.cfg.PerConnDrainBytesPerSec < rate {
			rate = conns * sv.cfg.PerConnDrainBytesPerSec
		}
	}
	d := time.Duration(float64(size) / float64(rate) * float64(time.Second))
	if d <= 0 {
		d = time.Microsecond
	}
	sv.drainSize = size
	sv.sim.AfterArg(d, sv.drainFn, sv.epoch)
}

// drainDone is the scheduled drain completion (bound once as drainFn): one
// response has finished transferring to its client. Only one drain is in
// flight at a time, so the size lives in drainSize rather than a closure.
//
//smartconf:hotpath
func (sv *Server) drainDone(arg uint64) {
	if sv.epoch != arg {
		return
	}
	sv.draining = false
	if sv.crashed {
		return
	}
	size := sv.drainSize
	sv.respHead++
	if sv.respHead == len(sv.respQueue) {
		sv.respQueue = sv.respQueue[:0]
		sv.respHead = 0
	} else if sv.respHead > 64 && sv.respHead*2 >= len(sv.respQueue) {
		m := copy(sv.respQueue, sv.respQueue[sv.respHead:])
		sv.respQueue = sv.respQueue[:m]
		sv.respHead = 0
	}
	sv.respBytes -= size
	sv.heap.Free(size)
	sv.drain()
}
