package rpcserver

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BaseHeapBytes = 10 << 20
	return cfg
}

func writeOp(bytes int64) workload.Op { return workload.Op{Write: true, Bytes: bytes} }
func readOp(bytes int64) workload.Op  { return workload.Op{Write: false, Bytes: bytes} }

func TestServerCompletesCalls(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(500 << 20)
	sv := New(s, heap, testConfig())
	sv.SetMaxQueue(100)

	for i := 0; i < 50; i++ {
		i := i
		s.At(time.Duration(i)*10*time.Millisecond, func() {
			sv.Offer(writeOp(1 << 20))
		})
	}
	s.RunUntil(30 * time.Second)
	if sv.Completed() != 50 {
		t.Errorf("completed = %d, want 50", sv.Completed())
	}
	if sv.Crashed() {
		t.Error("unexpected crash")
	}
	// All request payloads and responses drained: heap back to base.
	if got := heap.Used(); got != testConfig().BaseHeapBytes {
		t.Errorf("heap after drain = %d, want base %d", got, testConfig().BaseHeapBytes)
	}
	if sv.Latency().Count() != 50 {
		t.Errorf("latency samples = %d", sv.Latency().Count())
	}
}

func TestQueueBoundRejects(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(500 << 20)
	sv := New(s, heap, testConfig())
	sv.SetMaxQueue(5)

	// Burst of 30 calls at the same instant: the first 4 dispatch
	// immediately (one per worker), 5 fill the queue, the rest are rejected.
	s.At(0, func() {
		for i := 0; i < 30; i++ {
			sv.Offer(writeOp(1 << 20))
		}
	})
	s.RunUntil(10 * time.Second)
	if sv.Rejected() != 30-4-5 {
		t.Errorf("rejected = %d, want 21", sv.Rejected())
	}
	if sv.Completed() != 9 {
		t.Errorf("completed = %d, want 9", sv.Completed())
	}
}

func TestNegativeBoundsClampToZero(t *testing.T) {
	s := sim.New()
	sv := New(s, memsim.NewHeap(1<<30), testConfig())
	sv.SetMaxQueue(-5)
	if sv.MaxQueue() != 0 {
		t.Errorf("MaxQueue = %d", sv.MaxQueue())
	}
	sv.SetMaxRespBytes(-1)
	if sv.MaxRespBytes() != 0 {
		t.Errorf("MaxRespBytes = %d", sv.MaxRespBytes())
	}
}

func TestUnboundedQueueOOMs(t *testing.T) {
	// The buggy default (unbounded queue) must crash under a burst that
	// exceeds the heap — the exact failure HB3813 reports.
	s := sim.New()
	heap := memsim.NewHeap(100 << 20)
	sv := New(s, heap, testConfig())
	oom := false
	heap.OnOOM(func() { oom = true })

	s.At(0, func() {
		for i := 0; i < 200; i++ {
			sv.Offer(writeOp(1 << 20)) // 200 MB of payloads into a 100 MB heap
		}
	})
	s.RunUntil(10 * time.Second)
	if !oom || !sv.Crashed() {
		t.Fatalf("unbounded queue should OOM: oom=%v crashed=%v", oom, sv.Crashed())
	}
	// A crashed server drops everything offered afterwards.
	before := sv.Dropped()
	if sv.Offer(writeOp(1)) {
		t.Error("crashed server accepted a call")
	}
	if sv.Dropped() != before+1 {
		t.Error("dropped counter did not advance")
	}
}

func TestResponseQueueBackPressure(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(1 << 30)
	cfg := testConfig()
	cfg.DrainBytesPerSec = 1 << 20 // slow clients: 1 MB/s
	sv := New(s, heap, cfg)
	sv.SetMaxQueue(1000)
	sv.SetMaxRespBytes(2 << 20) // tiny response queue

	s.At(0, func() {
		for i := 0; i < 20; i++ {
			sv.Offer(readOp(1 << 20)) // reads produce 1 MB responses
		}
	})
	s.RunUntil(60 * time.Second)
	// The bound gates admission; at most one batch may sit above it
	// (admitted into an empty queue).
	slack := int64(testConfig().MaxBatch) * (1 << 20)
	if sv.RespBytes() > sv.MaxRespBytes()+slack {
		t.Errorf("response queue %d far exceeds bound %d", sv.RespBytes(), sv.MaxRespBytes())
	}
	if sv.Completed() == 0 {
		t.Error("back-pressure deadlocked the server")
	}
	if sv.Crashed() {
		t.Error("server crashed despite response bound")
	}
}

func TestHooksFire(t *testing.T) {
	s := sim.New()
	sv := New(s, memsim.NewHeap(1<<30), testConfig())
	sv.SetMaxQueue(10)
	admits, responds := 0, 0
	sv.BeforeAdmit = func() { admits++ }
	sv.BeforeRespond = func() { responds++ }
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			sv.Offer(writeOp(1024))
		}
	})
	s.RunUntil(5 * time.Second)
	if admits != 5 {
		t.Errorf("BeforeAdmit fired %d times, want 5", admits)
	}
	if responds != 5 {
		t.Errorf("BeforeRespond fired %d times, want 5", responds)
	}
}

func TestLoweredBoundToleratedTransiently(t *testing.T) {
	// §4.2: dropping max.queue.size below the live queue length must not
	// break anything — the queue drains back under the bound.
	s := sim.New()
	sv := New(s, memsim.NewHeap(1<<30), testConfig())
	sv.SetMaxQueue(100)
	s.At(0, func() {
		for i := 0; i < 50; i++ {
			sv.Offer(writeOp(1 << 20))
		}
		sv.SetMaxQueue(3) // bound now far below the 42 queued calls
	})
	var rejectedAt50ms int64
	s.At(50*time.Millisecond, func() {
		if !sv.Offer(writeOp(1 << 20)) {
			rejectedAt50ms = 1
		}
	})
	s.RunUntil(30 * time.Second)
	if rejectedAt50ms != 1 {
		t.Error("admission above a lowered bound should be refused")
	}
	if sv.Completed() != 50 {
		t.Errorf("completed = %d, want all 50 pre-drop calls", sv.Completed())
	}
	if sv.QueueLen() != 0 {
		t.Errorf("queue did not drain: %d", sv.QueueLen())
	}
}

func TestThroughputMeter(t *testing.T) {
	s := sim.New()
	sv := New(s, memsim.NewHeap(1<<30), testConfig())
	sv.SetMaxQueue(1000)
	// 20 ops/s offered for 20 s; capacity is ample.
	s.Every(0, 50*time.Millisecond, func() bool {
		sv.Offer(writeOp(64 << 10))
		return s.Now() < 20*time.Second
	})
	s.RunUntil(20 * time.Second)
	tput := sv.Throughput()
	if tput < 15 || tput > 25 {
		t.Errorf("throughput = %v, want ≈20", tput)
	}
}

func TestDeeperQueueRaisesThroughput(t *testing.T) {
	// The trade-off side of HB3813: batching amortizes the per-dispatch
	// cost, so a deeper queue (bigger batches) completes more calls under
	// overload.
	run := func(limit int) int64 {
		s := sim.New()
		sv := New(s, memsim.NewHeap(8<<30), testConfig())
		sv.SetMaxQueue(limit)
		s.Every(0, 25*time.Millisecond, func() bool { // 40 ops/s offered
			sv.Offer(writeOp(1 << 20))
			return s.Now() < 120*time.Second
		})
		s.RunUntil(120 * time.Second)
		return sv.Completed()
	}
	shallow, deep := run(2), run(200)
	if float64(deep) < 1.2*float64(shallow) {
		t.Errorf("deep queue %d should clearly beat shallow queue %d", deep, shallow)
	}
}

// Property: for any random op/limit sequence, heap accounting is leak-free —
// once all traffic stops and queues drain, the heap returns exactly to the
// base footprint (no payload byte is ever lost or double-freed).
func TestHeapAccountingLeakFreeProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		s := sim.New()
		heap := memsim.NewHeap(1 << 40) // effectively unbounded: no OOM path
		cfg := testConfig()
		sv := New(s, heap, cfg)
		rng := rand.New(rand.NewSource(seed))
		for i, op := range ops {
			i, op := i, op
			s.At(time.Duration(i)*17*time.Millisecond, func() {
				switch op % 4 {
				case 0:
					sv.SetMaxQueue(rng.Intn(50))
				case 1:
					sv.SetMaxRespBytes(int64(rng.Intn(64 << 20)))
				case 2:
					sv.Offer(writeOp(int64(1 + rng.Intn(4<<20))))
				case 3:
					sv.Offer(readOp(int64(1 + rng.Intn(4<<20))))
				}
			})
		}
		// Let everything drain with the gates wide open.
		s.At(time.Duration(len(ops)+1)*17*time.Millisecond, func() {
			sv.SetMaxQueue(1 << 30)
			sv.SetMaxRespBytes(1 << 40)
		})
		s.RunUntil(time.Duration(len(ops))*17*time.Millisecond + 10*time.Minute)
		return !sv.Crashed() &&
			sv.QueueLen() == 0 && sv.RespBytes() == 0 &&
			heap.Used() == cfg.BaseHeapBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
