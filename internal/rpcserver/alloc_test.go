package rpcserver

import (
	"testing"
	"time"

	"smartconf/internal/memsim"
	"smartconf/internal/sim"
)

// TestSteadyStateRequestPathZeroAlloc is the raw-speed gate for this
// substrate: once the queue arrays, the slot table, the batch free list, and
// the metrics windows have grown to their working size, offering a request
// and simulating it to completion must not allocate. Every steady-state
// allocation multiplies by the 10M requests a -scale run pushes through.
func TestSteadyStateRequestPathZeroAlloc(t *testing.T) {
	s := sim.New()
	heap := memsim.NewHeap(8 << 30)
	sv := New(s, heap, testConfig())
	sv.SetMaxQueue(256)

	var now time.Duration
	cycle := func() {
		now += 5 * time.Millisecond
		s.RunUntil(now)
		sv.Offer(writeOp(4 << 10))
		sv.Offer(readOp(4 << 10))
	}
	// Warm: grow every buffer past its steady-state high watermark.
	for i := 0; i < 3000; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(2000, cycle); allocs != 0 {
		t.Fatalf("steady-state request path allocates %.1f objects per cycle, want 0", allocs)
	}
	if sv.Crashed() {
		t.Fatal("server crashed during the measurement window")
	}
	if sv.Completed() == 0 {
		t.Fatal("no requests completed: the measurement exercised nothing")
	}
}
