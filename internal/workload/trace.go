package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Trace format: a YCSB phase schedule as text, one phase per line, so
// workload schedules can live in files and flow through experiment configs.
//
//	# write-heavy warmup, then a read burst that runs to the end
//	warmup 2m0s  write=1   bytes=1048576 cache=0   ops=100
//	burst  0s    write=0.1 bytes=4096    cache=0.3 ops=500
//
// Blank lines and '#' comments are ignored. The duration is positional
// (second field); a zero duration means "runs to the end of the experiment"
// and is only legal on the last phase, mirroring PhaseAt's contract.

// ParseSchedule parses the trace format into a phase schedule.
func ParseSchedule(s string) ([]YCSBPhase, error) {
	var phases []YCSBPhase
	terminal := false
	for ln, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if terminal {
			return nil, fmt.Errorf("workload: line %d: phase after a zero-duration (terminal) phase", ln+1)
		}
		p, err := parsePhase(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", ln+1, err)
		}
		phases = append(phases, p)
		terminal = p.Duration == 0
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: empty schedule")
	}
	return phases, nil
}

func parsePhase(line string) (YCSBPhase, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return YCSBPhase{}, fmt.Errorf("want 'name duration key=value...', got %q", line)
	}
	name := fields[0]
	if strings.ContainsAny(name, "=#") {
		return YCSBPhase{}, fmt.Errorf("phase name %q may not contain '=' or '#'", name)
	}
	dur, err := time.ParseDuration(fields[1])
	if err != nil {
		return YCSBPhase{}, fmt.Errorf("duration %q: %v", fields[1], err)
	}
	if dur < 0 {
		return YCSBPhase{}, fmt.Errorf("negative duration %v", dur)
	}
	p := YCSBPhase{Name: name, Duration: dur}
	seen := map[string]bool{}
	for _, kv := range fields[2:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return YCSBPhase{}, fmt.Errorf("field %q is not key=value", kv)
		}
		if seen[key] {
			return YCSBPhase{}, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		switch key {
		case "write":
			p.WriteRatio, err = parseRatio(val)
		case "cache":
			p.CacheRatio, err = parseRatio(val)
		case "ops":
			p.OpsPerSec, err = strconv.ParseFloat(val, 64)
			if err == nil && (math.IsNaN(p.OpsPerSec) || math.IsInf(p.OpsPerSec, 0) || p.OpsPerSec < 0) {
				err = fmt.Errorf("rate %v outside [0,∞)", p.OpsPerSec)
			}
		case "bytes":
			p.RequestBytes, err = strconv.ParseInt(val, 10, 64)
			if err == nil && p.RequestBytes < 1 {
				err = fmt.Errorf("request size %d below 1 byte", p.RequestBytes)
			}
		default:
			return YCSBPhase{}, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return YCSBPhase{}, fmt.Errorf("field %q: %v", kv, err)
		}
	}
	if p.RequestBytes == 0 {
		return YCSBPhase{}, fmt.Errorf("missing required field bytes=")
	}
	return p, nil
}

func parseRatio(val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || v < 0 || v > 1 {
		return 0, fmt.Errorf("ratio %v outside [0,1]", v)
	}
	return v, nil
}

// FormatSchedule renders a schedule in the canonical trace format.
// ParseSchedule(FormatSchedule(p)) reproduces p exactly: durations use
// time.Duration.String and floats use shortest-round-trip formatting.
func FormatSchedule(phases []YCSBPhase) string {
	var b strings.Builder
	for _, p := range phases {
		name := p.Name
		if name == "" {
			name = "phase"
		}
		fmt.Fprintf(&b, "%s %s write=%g bytes=%d cache=%g ops=%g\n",
			name, p.Duration, p.WriteRatio, p.RequestBytes, p.CacheRatio, p.OpsPerSec)
	}
	return b.String()
}
