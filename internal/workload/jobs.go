package workload

import (
	"fmt"
	"time"
)

// DFSIOPhase parametrizes one phase of a TestDFSIO-like load on the
// distributed-file-system substrate (HD4995): a set of writer clients
// streaming file creates into the namenode while du (content-summary)
// requests arrive and walk the namespace under the global lock.
type DFSIOPhase struct {
	Name string
	// Duration of the phase; 0 means terminal.
	Duration time.Duration
	// WriterClients is the number of concurrent writer clients.
	WriterClients int
	// WritesPerSec is the aggregate file-create rate across clients.
	WritesPerSec float64
	// DuEverySec is the gap between successive du requests.
	DuEverySec float64
	// BlockGoal is the user's worst-case writer-block constraint for the
	// phase (the paper's "20s"/"10s" annotations in Table 6).
	BlockGoal time.Duration
}

func (p DFSIOPhase) String() string {
	return fmt.Sprintf("%s: %d writers @ %.0f/s, du every %.0fs, block ≤ %v",
		p.Name, p.WriterClients, p.WritesPerSec, p.DuEverySec, p.BlockGoal)
}

// WordCountJob describes one WordCount run for the MapReduce substrate,
// following the paper's "WordCount(x,y,z)" notation: input file size, split
// size, and per-worker task parallelism.
type WordCountJob struct {
	Name string
	// InputBytes is the total input size.
	InputBytes int64
	// SplitBytes is the input split size; the job runs
	// ceil(InputBytes/SplitBytes) map tasks.
	SplitBytes int64
	// Parallelism is the number of concurrent task slots per worker.
	Parallelism int
	// SpillRatio scales intermediate output per task relative to its split
	// (WordCount emits roughly its input size before combining).
	SpillRatio float64
	// Reducers is the number of reduce tasks (0 = map-only).
	Reducers int
}

// MapTasks returns the number of map tasks.
func (j WordCountJob) MapTasks() int {
	if j.SplitBytes <= 0 {
		return 0
	}
	n := j.InputBytes / j.SplitBytes
	if j.InputBytes%j.SplitBytes != 0 {
		n++
	}
	return int(n)
}

// IntermediateBytesPerTask returns the local-disk footprint of one map task.
func (j WordCountJob) IntermediateBytesPerTask() int64 {
	ratio := j.SpillRatio
	if ratio == 0 {
		ratio = 1
	}
	split := j.SplitBytes
	if last := j.InputBytes % j.SplitBytes; last != 0 && j.MapTasks() == 1 {
		split = last
	}
	return int64(float64(split) * ratio)
}

func (j WordCountJob) String() string {
	return fmt.Sprintf("%s: WordCount(%dMB input, %dMB split, ×%d) → %d tasks",
		j.Name, j.InputBytes>>20, j.SplitBytes>>20, j.Parallelism, j.MapTasks())
}
