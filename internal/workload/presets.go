package workload

// Standard YCSB core-workload presets (A–F, minus the scan-based E, which
// has no analogue in these substrates). The paper profiles with YCSB-A; the
// robustness harness exercises the others as unseen workloads.

// PresetA is YCSB workload A: update heavy, 50/50 read-write.
func PresetA(requestBytes int64, opsPerSec float64) YCSBPhase {
	return YCSBPhase{Name: "ycsb-a", WriteRatio: 0.5, RequestBytes: requestBytes, OpsPerSec: opsPerSec}
}

// PresetB is YCSB workload B: read mostly, 95/5.
func PresetB(requestBytes int64, opsPerSec float64) YCSBPhase {
	return YCSBPhase{Name: "ycsb-b", WriteRatio: 0.05, RequestBytes: requestBytes, OpsPerSec: opsPerSec}
}

// PresetC is YCSB workload C: read only.
func PresetC(requestBytes int64, opsPerSec float64) YCSBPhase {
	return YCSBPhase{Name: "ycsb-c", WriteRatio: 0, RequestBytes: requestBytes, OpsPerSec: opsPerSec}
}

// PresetD is YCSB workload D: read latest, 95/5 (the recency skew is not
// modelled; the mix is).
func PresetD(requestBytes int64, opsPerSec float64) YCSBPhase {
	return YCSBPhase{Name: "ycsb-d", WriteRatio: 0.05, RequestBytes: requestBytes, OpsPerSec: opsPerSec}
}

// PresetF is YCSB workload F: read-modify-write, modelled as 50% writes
// (every logical op touches the write path once).
func PresetF(requestBytes int64, opsPerSec float64) YCSBPhase {
	return YCSBPhase{Name: "ycsb-f", WriteRatio: 0.5, RequestBytes: requestBytes, OpsPerSec: opsPerSec}
}

// Presets returns all modelled core workloads.
func Presets(requestBytes int64, opsPerSec float64) []YCSBPhase {
	return []YCSBPhase{
		PresetA(requestBytes, opsPerSec),
		PresetB(requestBytes, opsPerSec),
		PresetC(requestBytes, opsPerSec),
		PresetD(requestBytes, opsPerSec),
		PresetF(requestBytes, opsPerSec),
	}
}
