package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	in := `
# warmup, then a read burst to the end
warmup 2m0s  write=1   bytes=1048576 cache=0   ops=100
burst  0s    write=0.1 bytes=4096    cache=0.3 ops=500
`
	phases, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []YCSBPhase{
		{Name: "warmup", Duration: 2 * time.Minute, WriteRatio: 1, RequestBytes: 1 << 20, OpsPerSec: 100},
		{Name: "burst", WriteRatio: 0.1, RequestBytes: 4096, CacheRatio: 0.3, OpsPerSec: 500},
	}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("parsed %+v, want %+v", phases, want)
	}
	again, err := ParseSchedule(FormatSchedule(phases))
	if err != nil {
		t.Fatalf("reparse of canonical form: %v", err)
	}
	if !reflect.DeepEqual(again, phases) {
		t.Fatalf("round trip changed the schedule: %+v vs %+v", again, phases)
	}
}

func TestParseScheduleRejectsMalformedLines(t *testing.T) {
	for name, in := range map[string]string{
		"empty":                "",
		"comments only":        "# nothing\n\n",
		"missing duration":     "steady\n",
		"bad duration":         "steady xyz bytes=1\n",
		"negative duration":    "steady -5s bytes=1\n",
		"bare field":           "steady 5s bytes\n",
		"unknown field":        "steady 5s bytes=1 color=red\n",
		"duplicate field":      "steady 5s bytes=1 bytes=2\n",
		"ratio above one":      "steady 5s bytes=1 write=1.5\n",
		"NaN ratio":            "steady 5s bytes=1 cache=NaN\n",
		"infinite rate":        "steady 5s bytes=1 ops=+Inf\n",
		"negative rate":        "steady 5s bytes=1 ops=-3\n",
		"zero bytes":           "steady 5s bytes=0\n",
		"missing bytes":        "steady 5s write=1\n",
		"name with equals":     "a=b 5s bytes=1\n",
		"phase after terminal": "a 0s bytes=1\nb 5s bytes=1\n",
	} {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestFormatScheduleNamesAnonymousPhases(t *testing.T) {
	out := FormatSchedule([]YCSBPhase{{RequestBytes: 64, Duration: time.Second}})
	if !strings.HasPrefix(out, "phase 1s ") {
		t.Fatalf("anonymous phase rendered as %q", out)
	}
	if _, err := ParseSchedule(out); err != nil {
		t.Fatalf("canonical form does not reparse: %v", err)
	}
}

// FuzzParseSchedule: parsing arbitrary text must never panic, and any
// schedule it accepts must survive a format → reparse round trip unchanged
// (the canonical form is a fixpoint).
func FuzzParseSchedule(f *testing.F) {
	f.Add("steady 5s write=0.5 bytes=4096 cache=0.3 ops=100\n")
	f.Add("# comment\nwarmup 2m0s write=1 bytes=1048576 cache=0 ops=100\nburst 0s bytes=4096\n")
	f.Add("a 1h1m1s bytes=1 ops=0.0001\n")
	f.Add("x 0 bytes=9223372036854775807\n")
	f.Fuzz(func(t *testing.T, in string) {
		phases, err := ParseSchedule(in)
		if err != nil {
			return
		}
		out := FormatSchedule(phases)
		again, err := ParseSchedule(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %q", err, in, out)
		}
		if !reflect.DeepEqual(again, phases) {
			t.Fatalf("round trip changed the schedule:\n%+v\nvs\n%+v\ncanonical: %q", phases, again, out)
		}
		if out2 := FormatSchedule(again); out2 != out {
			t.Fatalf("canonical form is not a fixpoint: %q vs %q", out, out2)
		}
	})
}
