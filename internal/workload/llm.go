package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// LLMRequest is one inference request: a prompt to prefill and a number of
// output tokens to decode. Both counts are fixed at generation time — the
// simulated model "decides" its answer length up front, which keeps runs
// deterministic while preserving the statistical shape real serving systems
// see (they cannot know the output length in advance, which is exactly why
// admission accounting based on prompt tokens alone under-counts).
type LLMRequest struct {
	Prompt int
	Output int
}

// Tokens returns the request's total token footprint once fully decoded.
func (r LLMRequest) Tokens() int { return r.Prompt + r.Output }

// LLMPhase parametrizes one phase of an LLM serving workload: Poisson
// request arrivals with lognormal prompt/output token counts. The chat →
// long-document shift of the LLM-KV scenario is expressed as two phases
// with very different token mixes.
type LLMPhase struct {
	Name string
	// Duration of the phase; the last phase may be 0 (runs to experiment end).
	Duration time.Duration
	// RequestsPerSec is the offered load; Arrival selects the interarrival
	// distribution (zero value: Poisson) and ArrivalShape its shape
	// parameter (Gamma/Weibull k; ≤ 0 means 1, the exponential).
	RequestsPerSec float64
	Arrival        ArrivalDist
	ArrivalShape   float64
	// PromptMean / OutputMean are the mean token counts; individual draws are
	// lognormal around the mean with the given sigma (0 = a default of 0.5,
	// roughly the spread of production chat traces).
	PromptMean  int
	OutputMean  int
	PromptSigma float64
	OutputSigma float64
	// MaxPrompt / MaxOutput clamp the draws (context-window limits);
	// 0 means 8× the mean.
	MaxPrompt int
	MaxOutput int
	// BurstEvery/BurstSize, when set, superimpose arrival bursts: every
	// BurstEvery, BurstSize extra requests arrive back-to-back (spaced by
	// BurstSpacing). Bursts are what spike the KV cache of an unbounded
	// continuous batch, like the paper's YCSB bursts spike the RPC queue.
	BurstEvery   time.Duration
	BurstSize    int
	BurstSpacing time.Duration
}

func (p LLMPhase) String() string {
	return fmt.Sprintf("%s: %.1f req/s, prompt≈%d, output≈%d tok",
		p.Name, p.RequestsPerSec, p.PromptMean, p.OutputMean)
}

// LLMGen generates inference requests for one phase configuration,
// deterministically given a seed.
type LLMGen struct {
	rng   *rand.Rand
	phase LLMPhase
}

// NewLLMGen returns a seeded generator starting in the given phase.
func NewLLMGen(seed int64, phase LLMPhase) *LLMGen {
	return &LLMGen{rng: rand.New(rand.NewSource(seed)), phase: phase}
}

// Phase returns the current phase parameters.
func (g *LLMGen) Phase() LLMPhase { return g.phase }

// SetPhase switches the generator to a new phase (workload shift).
func (g *LLMGen) SetPhase(p LLMPhase) { g.phase = p }

// NextInterarrival draws the gap to the next request from the phase's
// arrival distribution (Poisson by default).
func (g *LLMGen) NextInterarrival() time.Duration {
	return interarrival(g.rng, g.phase.Arrival, g.phase.ArrivalShape, g.phase.RequestsPerSec)
}

// NextRequest draws the next request's token counts.
func (g *LLMGen) NextRequest() LLMRequest {
	return LLMRequest{
		Prompt: g.drawTokens(g.phase.PromptMean, g.phase.PromptSigma, g.phase.MaxPrompt),
		Output: g.drawTokens(g.phase.OutputMean, g.phase.OutputSigma, g.phase.MaxOutput),
	}
}

// drawTokens samples a lognormal token count with the given mean: the
// location parameter is mean-corrected (µ = ln m − σ²/2) so the arithmetic
// mean of the draws matches the configured mean regardless of sigma.
func (g *LLMGen) drawTokens(mean int, sigma float64, max int) int {
	if mean <= 0 {
		return 1
	}
	if sigma == 0 {
		sigma = 0.5
	}
	if max <= 0 {
		max = 8 * mean
	}
	mu := math.Log(float64(mean)) - sigma*sigma/2
	n := int(math.Round(math.Exp(mu + sigma*g.rng.NormFloat64())))
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	return n
}

// LLMPhaseAt selects the active phase from a schedule at virtual time now,
// with the same semantics as PhaseAt: each phase runs for its Duration, a
// zero-duration phase is terminal, and the boolean reports whether the
// schedule is exhausted.
func LLMPhaseAt(phases []LLMPhase, now time.Duration) (LLMPhase, bool) {
	var elapsed time.Duration
	for _, p := range phases {
		if p.Duration == 0 || now < elapsed+p.Duration {
			return p, true
		}
		elapsed += p.Duration
	}
	if len(phases) == 0 {
		return LLMPhase{}, false
	}
	return phases[len(phases)-1], false
}
