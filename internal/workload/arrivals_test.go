package workload

import (
	"math"
	"testing"
	"time"
)

// The non-Poisson arrival options must behave like the Poisson one in the
// two ways the experiments rely on: a seed fully determines the gap stream,
// and the empirical rate converges to the configured ops/sec regardless of
// shape (the distributions are mean-corrected).

func TestArrivalDistSeedDeterminism(t *testing.T) {
	for _, dist := range []ArrivalDist{ArrivalPoisson, ArrivalGamma, ArrivalWeibull} {
		for _, shape := range []float64{0, 0.5, 1, 3} {
			phase := YCSBPhase{OpsPerSec: 100, Arrival: dist, ArrivalShape: shape}
			a := NewYCSB(42, 10, phase)
			b := NewYCSB(42, 10, phase)
			for i := 0; i < 500; i++ {
				if a.NextInterarrival() != b.NextInterarrival() {
					t.Fatalf("%v shape=%v: same seed diverged at draw %d", dist, shape, i)
				}
			}
		}
	}
}

func TestArrivalDistRateConvergence(t *testing.T) {
	for _, tc := range []struct {
		dist  ArrivalDist
		shape float64
	}{
		{ArrivalGamma, 0.5},
		{ArrivalGamma, 1},
		{ArrivalGamma, 4},
		{ArrivalWeibull, 0.7},
		{ArrivalWeibull, 1},
		{ArrivalWeibull, 2.5},
	} {
		phase := LLMPhase{RequestsPerSec: 50, Arrival: tc.dist, ArrivalShape: tc.shape}
		g := NewLLMGen(7, phase)
		var total time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			total += g.NextInterarrival()
		}
		rate := float64(n) / total.Seconds()
		if rate < 45 || rate > 55 {
			t.Errorf("%v shape=%v: arrival rate = %v, want ≈50", tc.dist, tc.shape, rate)
		}
	}
}

// Shape 1 makes both alternatives exponential in distribution; shapes away
// from 1 must actually change the gap variance (clumpier below 1, smoother
// above), otherwise the knob is cosmetic.
func TestArrivalShapeChangesBurstiness(t *testing.T) {
	cv := func(dist ArrivalDist, shape float64) float64 {
		y := NewYCSB(11, 10, YCSBPhase{OpsPerSec: 100, Arrival: dist, ArrivalShape: shape})
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := y.NextInterarrival().Seconds()
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		return math.Sqrt(sumSq/n-mean*mean) / mean
	}
	for _, dist := range []ArrivalDist{ArrivalGamma, ArrivalWeibull} {
		bursty := cv(dist, 0.5)
		smooth := cv(dist, 4)
		if !(bursty > 1.1 && smooth < 0.9) {
			t.Errorf("%v: cv(shape=0.5) = %.2f, cv(shape=4) = %.2f; want > 1.1 and < 0.9", dist, bursty, smooth)
		}
	}
}

func TestArrivalIdlePhaseAllDists(t *testing.T) {
	for _, dist := range []ArrivalDist{ArrivalPoisson, ArrivalGamma, ArrivalWeibull} {
		y := NewYCSB(4, 10, YCSBPhase{OpsPerSec: 0, Arrival: dist, ArrivalShape: 2})
		if got := y.NextInterarrival(); got < time.Minute {
			t.Errorf("%v: idle interarrival = %v, want huge", dist, got)
		}
	}
}

func TestArrivalDistStrings(t *testing.T) {
	for dist, want := range map[ArrivalDist]string{
		ArrivalPoisson: "poisson",
		ArrivalGamma:   "gamma",
		ArrivalWeibull: "weibull",
	} {
		if got := dist.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", dist, got, want)
		}
	}
}
