package workload

import (
	"testing"
	"time"
)

func TestYCSBDeterminism(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 0.5, RequestBytes: 1 << 20, OpsPerSec: 100}
	a := NewYCSB(42, 1000, phase)
	b := NewYCSB(42, 1000, phase)
	for i := 0; i < 100; i++ {
		if a.NextInterarrival() != b.NextInterarrival() {
			t.Fatal("interarrival streams diverge for identical seeds")
		}
		oa, ob := a.NextOp(), b.NextOp()
		if oa != ob {
			t.Fatalf("op streams diverge: %+v vs %+v", oa, ob)
		}
	}
}

func TestYCSBWriteRatio(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 0.7, RequestBytes: 1024, OpsPerSec: 100}
	y := NewYCSB(1, 1000, phase)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if y.NextOp().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.67 || frac > 0.73 {
		t.Errorf("write fraction = %v, want ≈0.7", frac)
	}
}

func TestYCSBRequestSizeJitter(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 1, RequestBytes: 1000, OpsPerSec: 100}
	y := NewYCSB(2, 10, phase)
	var sum int64
	for i := 0; i < 5000; i++ {
		b := y.NextOp().Bytes
		if b < 800 || b > 1200 {
			t.Fatalf("request bytes %d outside ±20%% jitter band", b)
		}
		sum += b
	}
	mean := float64(sum) / 5000
	if mean < 950 || mean > 1050 {
		t.Errorf("mean request bytes = %v, want ≈1000", mean)
	}
}

func TestYCSBArrivalRate(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 1, RequestBytes: 1, OpsPerSec: 50}
	y := NewYCSB(3, 10, phase)
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += y.NextInterarrival()
	}
	rate := float64(n) / total.Seconds()
	if rate < 45 || rate > 55 {
		t.Errorf("arrival rate = %v, want ≈50", rate)
	}
}

func TestYCSBIdlePhase(t *testing.T) {
	y := NewYCSB(4, 10, YCSBPhase{OpsPerSec: 0})
	if got := y.NextInterarrival(); got < time.Minute {
		t.Errorf("idle interarrival = %v, want huge", got)
	}
}

func TestYCSBSetPhase(t *testing.T) {
	y := NewYCSB(5, 10, YCSBPhase{WriteRatio: 0, RequestBytes: 10, OpsPerSec: 1})
	y.SetPhase(YCSBPhase{WriteRatio: 1, RequestBytes: 10, OpsPerSec: 1})
	for i := 0; i < 100; i++ {
		if !y.NextOp().Write {
			t.Fatal("after SetPhase(WriteRatio=1) saw a read")
		}
	}
	if y.Phase().WriteRatio != 1 {
		t.Error("Phase() does not reflect SetPhase")
	}
}

func TestPhaseAt(t *testing.T) {
	phases := []YCSBPhase{
		{Name: "p1", Duration: 100 * time.Second},
		{Name: "p2", Duration: 200 * time.Second},
	}
	p, ok := PhaseAt(phases, 50*time.Second)
	if !ok || p.Name != "p1" {
		t.Errorf("at 50s: %v %v", p.Name, ok)
	}
	p, ok = PhaseAt(phases, 150*time.Second)
	if !ok || p.Name != "p2" {
		t.Errorf("at 150s: %v %v", p.Name, ok)
	}
	p, ok = PhaseAt(phases, 500*time.Second)
	if ok || p.Name != "p2" {
		t.Errorf("past end: %v %v (want p2, exhausted)", p.Name, ok)
	}
	// Terminal phase (Duration 0) never exhausts.
	phases[1].Duration = 0
	p, ok = PhaseAt(phases, 1e9*time.Second)
	if !ok || p.Name != "p2" {
		t.Errorf("terminal: %v %v", p.Name, ok)
	}
	if _, ok := PhaseAt(nil, 0); ok {
		t.Error("empty schedule should report not-ok")
	}
}

func TestWordCountJob(t *testing.T) {
	j := WordCountJob{
		Name:       "phase-1",
		InputBytes: 640 << 20,
		SplitBytes: 64 << 20,
	}
	if got := j.MapTasks(); got != 10 {
		t.Errorf("MapTasks = %d, want 10", got)
	}
	if got := j.IntermediateBytesPerTask(); got != 64<<20 {
		t.Errorf("intermediate = %d, want 64MB", got)
	}

	// Non-even split rounds up.
	j2 := WordCountJob{InputBytes: 100, SplitBytes: 64}
	if got := j2.MapTasks(); got != 2 {
		t.Errorf("MapTasks = %d, want 2", got)
	}
	// Spill ratio scales the footprint.
	j3 := WordCountJob{InputBytes: 100, SplitBytes: 50, SpillRatio: 0.5}
	if got := j3.IntermediateBytesPerTask(); got != 25 {
		t.Errorf("intermediate = %d, want 25", got)
	}
	if (WordCountJob{InputBytes: 10}).MapTasks() != 0 {
		t.Error("zero split size should yield zero tasks")
	}
}

func TestStringers(t *testing.T) {
	p := YCSBPhase{Name: "p", WriteRatio: 1, RequestBytes: 1 << 20, OpsPerSec: 10}
	if p.String() == "" {
		t.Error("YCSBPhase.String empty")
	}
	d := DFSIOPhase{Name: "d", WriterClients: 3, WritesPerSec: 10, DuEverySec: 30, BlockGoal: 20 * time.Second}
	if d.String() == "" {
		t.Error("DFSIOPhase.String empty")
	}
	j := WordCountJob{Name: "j", InputBytes: 640 << 20, SplitBytes: 64 << 20, Parallelism: 2}
	if j.String() == "" {
		t.Error("WordCountJob.String empty")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(1<<20, 100)
	if len(ps) != 5 {
		t.Fatalf("presets = %d, want 5", len(ps))
	}
	wantMix := map[string]float64{
		"ycsb-a": 0.5, "ycsb-b": 0.05, "ycsb-c": 0, "ycsb-d": 0.05, "ycsb-f": 0.5,
	}
	for _, p := range ps {
		if p.RequestBytes != 1<<20 || p.OpsPerSec != 100 {
			t.Errorf("%s: parameters not applied: %+v", p.Name, p)
		}
		if got, ok := wantMix[p.Name]; !ok || p.WriteRatio != got {
			t.Errorf("%s: write ratio %v, want %v", p.Name, p.WriteRatio, got)
		}
	}
}
