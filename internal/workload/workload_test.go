package workload

import (
	"testing"
	"time"
)

func TestYCSBDeterminism(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 0.5, RequestBytes: 1 << 20, OpsPerSec: 100}
	a := NewYCSB(42, 1000, phase)
	b := NewYCSB(42, 1000, phase)
	for i := 0; i < 100; i++ {
		if a.NextInterarrival() != b.NextInterarrival() {
			t.Fatal("interarrival streams diverge for identical seeds")
		}
		oa, ob := a.NextOp(), b.NextOp()
		if oa != ob {
			t.Fatalf("op streams diverge: %+v vs %+v", oa, ob)
		}
	}
}

func TestYCSBWriteRatio(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 0.7, RequestBytes: 1024, OpsPerSec: 100}
	y := NewYCSB(1, 1000, phase)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if y.NextOp().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.67 || frac > 0.73 {
		t.Errorf("write fraction = %v, want ≈0.7", frac)
	}
}

func TestYCSBRequestSizeJitter(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 1, RequestBytes: 1000, OpsPerSec: 100}
	y := NewYCSB(2, 10, phase)
	var sum int64
	for i := 0; i < 5000; i++ {
		b := y.NextOp().Bytes
		if b < 800 || b > 1200 {
			t.Fatalf("request bytes %d outside ±20%% jitter band", b)
		}
		sum += b
	}
	mean := float64(sum) / 5000
	if mean < 950 || mean > 1050 {
		t.Errorf("mean request bytes = %v, want ≈1000", mean)
	}
}

func TestYCSBArrivalRate(t *testing.T) {
	phase := YCSBPhase{WriteRatio: 1, RequestBytes: 1, OpsPerSec: 50}
	y := NewYCSB(3, 10, phase)
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += y.NextInterarrival()
	}
	rate := float64(n) / total.Seconds()
	if rate < 45 || rate > 55 {
		t.Errorf("arrival rate = %v, want ≈50", rate)
	}
}

func TestYCSBIdlePhase(t *testing.T) {
	y := NewYCSB(4, 10, YCSBPhase{OpsPerSec: 0})
	if got := y.NextInterarrival(); got < time.Minute {
		t.Errorf("idle interarrival = %v, want huge", got)
	}
}

func TestYCSBSetPhase(t *testing.T) {
	y := NewYCSB(5, 10, YCSBPhase{WriteRatio: 0, RequestBytes: 10, OpsPerSec: 1})
	y.SetPhase(YCSBPhase{WriteRatio: 1, RequestBytes: 10, OpsPerSec: 1})
	for i := 0; i < 100; i++ {
		if !y.NextOp().Write {
			t.Fatal("after SetPhase(WriteRatio=1) saw a read")
		}
	}
	if y.Phase().WriteRatio != 1 {
		t.Error("Phase() does not reflect SetPhase")
	}
}

func TestPhaseAt(t *testing.T) {
	phases := []YCSBPhase{
		{Name: "p1", Duration: 100 * time.Second},
		{Name: "p2", Duration: 200 * time.Second},
	}
	p, ok := PhaseAt(phases, 50*time.Second)
	if !ok || p.Name != "p1" {
		t.Errorf("at 50s: %v %v", p.Name, ok)
	}
	p, ok = PhaseAt(phases, 150*time.Second)
	if !ok || p.Name != "p2" {
		t.Errorf("at 150s: %v %v", p.Name, ok)
	}
	p, ok = PhaseAt(phases, 500*time.Second)
	if ok || p.Name != "p2" {
		t.Errorf("past end: %v %v (want p2, exhausted)", p.Name, ok)
	}
	// Terminal phase (Duration 0) never exhausts.
	phases[1].Duration = 0
	p, ok = PhaseAt(phases, 1e9*time.Second)
	if !ok || p.Name != "p2" {
		t.Errorf("terminal: %v %v", p.Name, ok)
	}
	if _, ok := PhaseAt(nil, 0); ok {
		t.Error("empty schedule should report not-ok")
	}
}

// TestYCSBPhaseShiftDeterminism drives two identically seeded generators
// through the same phase schedule and demands bit-identical event streams:
// a phase boundary must not introduce any seed-independent state.
func TestYCSBPhaseShiftDeterminism(t *testing.T) {
	phases := []YCSBPhase{
		{Name: "p1", Duration: 10 * time.Second, WriteRatio: 1, RequestBytes: 1 << 20, OpsPerSec: 100},
		{Name: "p2", WriteRatio: 0.2, RequestBytes: 2 << 20, OpsPerSec: 40},
	}
	run := func() []Op {
		g := NewYCSB(77, 1000, phases[0])
		var now time.Duration
		var ops []Op
		for i := 0; i < 2000; i++ {
			if p, _ := PhaseAt(phases, now); p.Name != g.Phase().Name {
				g.SetPhase(p)
			}
			now += g.NextInterarrival()
			ops = append(ops, g.NextOp())
		}
		return ops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverges across identically seeded runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLLMGenDeterminismAcrossPhaseShift(t *testing.T) {
	phases := []LLMPhase{
		{Name: "chat", Duration: 5 * time.Second, RequestsPerSec: 50, PromptMean: 200, OutputMean: 100},
		{Name: "summarize", RequestsPerSec: 10, PromptMean: 1800, OutputMean: 220},
	}
	type ev struct {
		gap time.Duration
		req LLMRequest
	}
	run := func() []ev {
		g := NewLLMGen(99, phases[0])
		var now time.Duration
		var evs []ev
		for i := 0; i < 2000; i++ {
			if p, _ := LLMPhaseAt(phases, now); p.Name != g.Phase().Name {
				g.SetPhase(p)
			}
			gap := g.NextInterarrival()
			now += gap
			evs = append(evs, ev{gap, g.NextRequest()})
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverges across identically seeded runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLLMGenTokenDistribution(t *testing.T) {
	g := NewLLMGen(7, LLMPhase{RequestsPerSec: 10, PromptMean: 400, OutputMean: 150})
	var promptSum, outSum int64
	const n = 20000
	for i := 0; i < n; i++ {
		r := g.NextRequest()
		if r.Prompt < 1 || r.Prompt > 8*400 {
			t.Fatalf("prompt %d outside [1, 8*mean] clamp", r.Prompt)
		}
		if r.Output < 1 || r.Output > 8*150 {
			t.Fatalf("output %d outside [1, 8*mean] clamp", r.Output)
		}
		promptSum += int64(r.Prompt)
		outSum += int64(r.Output)
	}
	if mean := float64(promptSum) / n; mean < 360 || mean > 440 {
		t.Errorf("prompt mean = %.1f, want ≈400 (lognormal mean correction)", mean)
	}
	if mean := float64(outSum) / n; mean < 135 || mean > 165 {
		t.Errorf("output mean = %.1f, want ≈150", mean)
	}
	if got := (LLMRequest{Prompt: 3, Output: 4}).Tokens(); got != 7 {
		t.Errorf("Tokens() = %d, want 7", got)
	}
}

func TestLLMGenArrivalRate(t *testing.T) {
	g := NewLLMGen(8, LLMPhase{RequestsPerSec: 25, PromptMean: 10, OutputMean: 10})
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += g.NextInterarrival()
	}
	if rate := float64(n) / total.Seconds(); rate < 22.5 || rate > 27.5 {
		t.Errorf("arrival rate = %.2f, want ≈25", rate)
	}
	idle := NewLLMGen(9, LLMPhase{})
	if got := idle.NextInterarrival(); got < time.Minute {
		t.Errorf("idle interarrival = %v, want huge", got)
	}
}

// TestLLMPhaseAtTerminalSemantics pins the duration-0 last-phase contract
// for LLM schedules, mirroring TestPhaseAt for YCSB ones.
func TestLLMPhaseAtTerminalSemantics(t *testing.T) {
	phases := []LLMPhase{
		{Name: "p1", Duration: 100 * time.Second},
		{Name: "p2", Duration: 200 * time.Second},
	}
	if p, ok := LLMPhaseAt(phases, 50*time.Second); !ok || p.Name != "p1" {
		t.Errorf("at 50s: %v %v", p.Name, ok)
	}
	if p, ok := LLMPhaseAt(phases, 100*time.Second); !ok || p.Name != "p2" {
		t.Errorf("at boundary 100s: %v %v (boundary belongs to the next phase)", p.Name, ok)
	}
	if p, ok := LLMPhaseAt(phases, 500*time.Second); ok || p.Name != "p2" {
		t.Errorf("past end: %v %v (want p2, exhausted)", p.Name, ok)
	}
	phases[1].Duration = 0 // terminal phase never exhausts
	if p, ok := LLMPhaseAt(phases, 1e9*time.Second); !ok || p.Name != "p2" {
		t.Errorf("terminal: %v %v", p.Name, ok)
	}
	if _, ok := LLMPhaseAt(nil, 0); ok {
		t.Error("empty schedule should report not-ok")
	}
}

// TestPhaseAtBoundaryInstant pins which phase owns the exact boundary
// instant for YCSB schedules: the boundary belongs to the NEXT phase.
func TestPhaseAtBoundaryInstant(t *testing.T) {
	phases := []YCSBPhase{
		{Name: "p1", Duration: 100 * time.Second},
		{Name: "p2"},
	}
	if p, ok := PhaseAt(phases, 100*time.Second); !ok || p.Name != "p2" {
		t.Errorf("at boundary: %v %v, want p2", p.Name, ok)
	}
	if p, ok := PhaseAt(phases, 100*time.Second-time.Nanosecond); !ok || p.Name != "p1" {
		t.Errorf("just before boundary: %v %v, want p1", p.Name, ok)
	}
}

func TestWordCountJob(t *testing.T) {
	j := WordCountJob{
		Name:       "phase-1",
		InputBytes: 640 << 20,
		SplitBytes: 64 << 20,
	}
	if got := j.MapTasks(); got != 10 {
		t.Errorf("MapTasks = %d, want 10", got)
	}
	if got := j.IntermediateBytesPerTask(); got != 64<<20 {
		t.Errorf("intermediate = %d, want 64MB", got)
	}

	// Non-even split rounds up.
	j2 := WordCountJob{InputBytes: 100, SplitBytes: 64}
	if got := j2.MapTasks(); got != 2 {
		t.Errorf("MapTasks = %d, want 2", got)
	}
	// Spill ratio scales the footprint.
	j3 := WordCountJob{InputBytes: 100, SplitBytes: 50, SpillRatio: 0.5}
	if got := j3.IntermediateBytesPerTask(); got != 25 {
		t.Errorf("intermediate = %d, want 25", got)
	}
	if (WordCountJob{InputBytes: 10}).MapTasks() != 0 {
		t.Error("zero split size should yield zero tasks")
	}
}

func TestStringers(t *testing.T) {
	p := YCSBPhase{Name: "p", WriteRatio: 1, RequestBytes: 1 << 20, OpsPerSec: 10}
	if p.String() == "" {
		t.Error("YCSBPhase.String empty")
	}
	d := DFSIOPhase{Name: "d", WriterClients: 3, WritesPerSec: 10, DuEverySec: 30, BlockGoal: 20 * time.Second}
	if d.String() == "" {
		t.Error("DFSIOPhase.String empty")
	}
	j := WordCountJob{Name: "j", InputBytes: 640 << 20, SplitBytes: 64 << 20, Parallelism: 2}
	if j.String() == "" {
		t.Error("WordCountJob.String empty")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets(1<<20, 100)
	if len(ps) != 5 {
		t.Fatalf("presets = %d, want 5", len(ps))
	}
	wantMix := map[string]float64{
		"ycsb-a": 0.5, "ycsb-b": 0.05, "ycsb-c": 0, "ycsb-d": 0.05, "ycsb-f": 0.5,
	}
	for _, p := range ps {
		if p.RequestBytes != 1<<20 || p.OpsPerSec != 100 {
			t.Errorf("%s: parameters not applied: %+v", p.Name, p)
		}
		if got, ok := wantMix[p.Name]; !ok || p.WriteRatio != got {
			t.Errorf("%s: write ratio %v, want %v", p.Name, p.WriteRatio, got)
		}
	}
}
