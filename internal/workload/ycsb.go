// Package workload generates the synthetic load that drives the substrate
// systems, mirroring the paper's benchmark drivers (Table 6):
//
//   - a YCSB-like key-value workload (read/write mix, request size, zipfian
//     key popularity, an index-cache knob, phase shifts) for the key-value
//     store and RPC-server substrates;
//   - a TestDFSIO-like load (multiple writer clients plus du/content-summary
//     requests) for the distributed-file-system substrate;
//   - WordCount job descriptions (input size, split size, per-worker
//     parallelism) for the MapReduce substrate.
//
// Generators are deterministic given a seed: two runs of an experiment with
// the same seed produce identical event streams.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Op is one key-value operation.
type Op struct {
	Write bool
	Key   uint64
	// Bytes is the payload size: the value written, or the response size for
	// a read.
	Bytes int64
}

// YCSBPhase parametrizes one phase of a YCSB-like workload, following the
// paper's notation "xW, yMB, Cz": write fraction, request size, and the
// fraction of heap the read-index cache is allowed to grow to.
type YCSBPhase struct {
	Name string
	// Duration of the phase; the last phase may be 0 (runs to experiment end).
	Duration time.Duration
	// WriteRatio is the fraction of operations that are writes, in [0,1].
	WriteRatio float64
	// RequestBytes is the mean payload per operation; actual sizes jitter
	// ±20% uniformly.
	RequestBytes int64
	// CacheRatio is the target read-cache heap fraction (CA6059's "Cz"
	// disturbance: cache growth squeezes the memtable's headroom).
	CacheRatio float64
	// OpsPerSec is the offered load; Arrival selects the interarrival
	// distribution (zero value: Poisson) and ArrivalShape its shape
	// parameter (Gamma/Weibull k; ≤ 0 means 1, the exponential).
	OpsPerSec    float64
	Arrival      ArrivalDist
	ArrivalShape float64
}

func (p YCSBPhase) String() string {
	return fmt.Sprintf("%s: %.1fW, %dB, C%.1f @ %.0f ops/s",
		p.Name, p.WriteRatio, p.RequestBytes, p.CacheRatio, p.OpsPerSec)
}

// YCSB generates operations for one phase configuration.
type YCSB struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	phase YCSBPhase
}

// NewYCSB returns a generator over a keyspace of keys items with zipfian
// popularity (YCSB's default skew), seeded deterministically.
func NewYCSB(seed int64, keys uint64, phase YCSBPhase) *YCSB {
	if keys == 0 {
		keys = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &YCSB{
		rng:   rng,
		zipf:  rand.NewZipf(rng, 1.1, 1, keys-1),
		phase: phase,
	}
}

// Phase returns the current phase parameters.
func (y *YCSB) Phase() YCSBPhase { return y.phase }

// SetPhase switches the generator to a new phase (workload shift).
func (y *YCSB) SetPhase(p YCSBPhase) { y.phase = p }

// NextInterarrival draws the gap to the next operation from the phase's
// arrival distribution (Poisson by default).
func (y *YCSB) NextInterarrival() time.Duration {
	return interarrival(y.rng, y.phase.Arrival, y.phase.ArrivalShape, y.phase.OpsPerSec)
}

// NextOp draws the next operation.
func (y *YCSB) NextOp() Op {
	write := y.rng.Float64() < y.phase.WriteRatio
	jitter := 0.8 + 0.4*y.rng.Float64() // ±20%
	bytes := int64(float64(y.phase.RequestBytes) * jitter)
	if bytes < 1 {
		bytes = 1
	}
	return Op{Write: write, Key: y.zipf.Uint64(), Bytes: bytes}
}

// PhaseAt selects the active phase from a schedule at virtual time now: each
// phase runs for its Duration; a zero-duration phase is terminal. The boolean
// reports whether the schedule is exhausted (now beyond all finite phases
// and no terminal phase).
func PhaseAt(phases []YCSBPhase, now time.Duration) (YCSBPhase, bool) {
	var elapsed time.Duration
	for _, p := range phases {
		if p.Duration == 0 || now < elapsed+p.Duration {
			return p, true
		}
		elapsed += p.Duration
	}
	if len(phases) == 0 {
		return YCSBPhase{}, false
	}
	return phases[len(phases)-1], false
}
