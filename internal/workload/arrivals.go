package workload

import (
	"math"
	"math/rand"
	"time"
)

// ArrivalDist selects the interarrival-time distribution of a workload
// phase. The zero value is Poisson (exponential gaps), the classic open-loop
// model and the default of every preset — and it draws exactly one
// exponential variate per arrival, so phases that never set the field keep
// their historical rng sequence and every recorded artifact stays
// byte-identical.
//
// The alternatives reshape burstiness at a fixed mean rate, which is what
// stresses a queue-bound controller: a Gamma or Weibull shape below 1 makes
// arrivals clumpier than Poisson (heavier bursts for the same ops/sec),
// while a shape above 1 smooths them toward a metronome.
type ArrivalDist int

const (
	// ArrivalPoisson draws exponential gaps (a Poisson process).
	ArrivalPoisson ArrivalDist = iota
	// ArrivalGamma draws Gamma-distributed gaps with shape ArrivalShape,
	// scaled so the mean rate still matches the phase's ops/sec.
	ArrivalGamma
	// ArrivalWeibull draws Weibull-distributed gaps with shape ArrivalShape,
	// scaled so the mean rate still matches the phase's ops/sec.
	ArrivalWeibull
)

func (d ArrivalDist) String() string {
	switch d {
	case ArrivalGamma:
		return "gamma"
	case ArrivalWeibull:
		return "weibull"
	default:
		return "poisson"
	}
}

// maxGapSeconds clamps any single interarrival gap to one virtual hour so a
// pathological draw cannot stall a run.
const maxGapSeconds = 3600.0

// drawInterarrival draws one interarrival gap, in seconds, for the given
// distribution at mean event rate (events per second). A shape ≤ 0 defaults
// to 1, where Gamma and Weibull both coincide with the exponential.
func drawInterarrival(rng *rand.Rand, dist ArrivalDist, shape, rate float64) float64 {
	if shape <= 0 {
		shape = 1
	}
	var gap float64
	switch dist {
	case ArrivalGamma:
		// Gamma(k, θ) has mean kθ; θ = 1/(k·rate) preserves the rate.
		gap = gammaDraw(rng, shape) / (shape * rate)
	case ArrivalWeibull:
		// Weibull(k, λ) has mean λΓ(1+1/k); λ = 1/(rate·Γ(1+1/k)) preserves
		// the rate. Inversion: X = λ(−ln U)^{1/k}.
		u := 1 - rng.Float64() // (0,1]: −ln never overflows
		lambda := 1 / (rate * math.Gamma(1+1/shape))
		gap = lambda * math.Pow(-math.Log(u), 1/shape)
	default:
		gap = rng.ExpFloat64() / rate
	}
	if gap > maxGapSeconds {
		gap = maxGapSeconds
	}
	return gap
}

// gammaDraw samples Gamma(k, 1) with the Marsaglia–Tsang squeeze method,
// boosted through Gamma(k+1) for k < 1.
func gammaDraw(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// G(k) = G(k+1) · U^{1/k}.
		return gammaDraw(rng, k+1) * math.Pow(1-rng.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// interarrival converts a drawn gap to a duration, idling for an hour when
// the phase offers no load.
func interarrival(rng *rand.Rand, dist ArrivalDist, shape, rate float64) time.Duration {
	if rate <= 0 {
		return time.Hour // effectively idle
	}
	return time.Duration(drawInterarrival(rng, dist, shape, rate) * float64(time.Second))
}
