package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/mapred"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// MR2820: mapreduce local.dir.minspacestart decides how much free local
// disk a worker must have before starting another task. The worker disks
// are shared with a fluctuating co-tenant: admit a task with too little
// headroom and it runs out of disk mid-write, failing the job (the hard
// out-of-disk constraint). Demand too much headroom and workers idle while
// space was actually sufficient, stretching job completion time (the
// trade-off metric).
//
// Paper flags: Y-Y-Y (conditional, direct, hard).

const (
	mr2820DiskGoal = 1014 * mb // keep ≥10 MB of the 1 GB disk free (hard)
)

func mr2820Config() mapred.Config {
	return mapred.Config{
		Workers:           2,
		DiskCapacityBytes: 1 << 30,
		TaskBytesPerSec:   16 * mb,
		WriteChunks:       8,
		ScheduleInterval:  time.Second,
	}
}

// The paper's WordCount phases (Table 6): WordCount(input, split,
// parallelism). Phase 1's 64 MB splits write 64 MB intermediates per task;
// phase 2's 128 MB splits double the per-task disk footprint.
func mr2820Jobs() []workload.WordCountJob {
	p1 := workload.WordCountJob{Name: "phase-1", InputBytes: 640 * mb, SplitBytes: 64 * mb, Parallelism: 2, SpillRatio: 1.25}
	p2 := workload.WordCountJob{Name: "phase-2", InputBytes: 640 * mb, SplitBytes: 128 * mb, Parallelism: 2, SpillRatio: 1.25}
	return []workload.WordCountJob{p1, p1, p1, p2, p2, p2}
}

// mr2820CoTenant drives the disturbance: every 5 s each worker's co-tenant
// footprint random-walks within [low, high].
func mr2820CoTenant(s *sim.Simulation, c *mapred.Cluster, rng *rand.Rand, low, high, maxStep int64, until time.Duration) {
	current := make([]int64, len(c.Workers()))
	for i, w := range c.Workers() {
		current[i] = (low + high) / 2
		w.SetCoTenant(current[i])
	}
	s.Every(5*time.Second, 5*time.Second, func() bool {
		for i, w := range c.Workers() {
			step := int64(rng.Intn(int(2*maxStep+1))) - maxStep
			next := current[i] + step
			if next < low {
				next = low
			}
			if next > high {
				next = high
			}
			current[i] = next
			w.SetCoTenant(next)
		}
		return s.Now() < until
	})
}

// ProfileMR2820 profiles peak disk consumption against the pinned
// minspacestart under the profiling workload: WordCount(2 GB, 64 MB, ×1)
// with the co-tenant walking. The campaign runs once process-wide and its
// four pinned-setting runs fan out across the worker pool.
func ProfileMR2820() core.Profile {
	return memoProfile("MR2820", func() core.Profile {
		job := workload.WordCountJob{Name: "profiling", InputBytes: 2 << 30, SplitBytes: 64 * mb, Parallelism: 1, SpillRatio: 1.25}
		settings := []float64{50 * float64(mb), 150 * float64(mb), 250 * float64(mb), 350 * float64(mb)}
		return profileSweep(settings, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(2820))
			c := mapred.New(s, mr2820Config(), int64(setting))
			// The profiling run stresses the disks (a heavier co-tenant than the
			// evaluation) so the knob↔occupancy relation is identifiable — the
			// paper's advice that wider profiling workloads make the controller
			// more robust.
			mr2820CoTenant(s, c, rng, 550*mb, 950*mb, 120*mb, time.Hour)
			// Time-driven sampling: the scheduler hook only fires when a slot is
			// idle, which would systematically miss the occupancy of running
			// tasks and flatten the model.
			taken := 0
			s.Every(10*time.Second, 5*time.Second, func() bool {
				if taken < 10 {
					var max int64
					for _, w := range c.Workers() {
						if v := w.Disk.Used() + w.Committed(); v > max {
							max = v
						}
					}
					record(setting, float64(max))
					taken++
				}
				return taken < 10
			})
			s.At(time.Second, func() { c.RunJob(job, func(mapred.JobResult) { s.Stop() }) })
			s.RunUntil(time.Hour)
		})
	})
}

// RunMR2820 executes the six-job evaluation (three phase-1 WordCounts, then
// three phase-2 WordCounts) under the given policy.
//
// Out-of-disk is a race between task admission and the co-tenant's walk, so
// a single trajectory is too noisy to judge a policy: the run repeats over
// five co-tenant seeds; the constraint must hold on every one and the
// trade-off is the mean makespan (the paper's testbed runs average the same
// kind of environmental variance).
func RunMR2820(p Policy) Result {
	agg := Result{Issue: "MR2820", Policy: p, ConstraintMet: true}
	var total float64
	const seeds = 5
	results := engine.Map(seeds, func(i int) Result {
		seed := 2821 + int64(i)
		return memoResult("MR2820", policyKey(p), "seed-race", seed,
			func() Result { return runMR2820Seed(p, seed) })
	})
	for seed, r := range results {
		total += r.Tradeoff
		if !r.ConstraintMet && agg.ConstraintMet {
			agg.ConstraintMet = false
			agg.Violation = r.Violation
			agg.ViolatedAt = r.ViolatedAt
		}
		if seed == 0 {
			agg.Series = r.Series
			agg.TradeoffName = r.TradeoffName
			agg.HigherIsBetter = r.HigherIsBetter
		}
	}
	agg.Tradeoff = total / seeds
	return agg
}

func runMR2820Seed(p Policy, seed int64) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed))
	c := mapred.New(s, mr2820Config(), 0)

	switch p.Kind {
	case StaticPolicy:
		c.SetMinSpaceStart(int64(p.Static))
	case SmartConfPolicy:
		profile := ProfileMR2820()
		sc, err := smartconf.New(smartconf.Spec{
			Name:    "local.dir.minspacestart",
			Metric:  "disk_consumption",
			Goal:    float64(mr2820DiskGoal),
			Hard:    true,
			Initial: 512 * float64(mb), // a uselessly conservative start
			Min:     0, Max: 1 << 30,
		}, publicProfile(profile))
		if err != nil {
			panic(fmt.Sprintf("MR2820 synthesis: %v", err))
		}
		// Conditional: consulted at each admission decision. The Master
		// computes the setting and "ships" it to the worker (§6.5's Others
		// row) — here the shipping is the SetMinSpaceStart call.
		// The sensor anticipates: it reports the occupancy the candidate
		// admission WOULD create (the Master knows the task's footprint), so
		// the controller's bound already covers the task about to start.
		c.BeforeSchedule = func(w *mapred.Worker, next int64) {
			sc.SetPerf(float64(w.Disk.Used() + w.Committed() + next)) //sc:MR2820:sensor
			c.SetMinSpaceStart(int64(sc.Value()))                     //sc:MR2820:other
		}
	case SinglePolePolicy, NoVirtualGoalPolicy:
		ctrl, err := ablationController(p.Kind, ProfileMR2820(), float64(mr2820DiskGoal), p.FixedPole)
		if err != nil {
			panic(fmt.Sprintf("MR2820 ablation synthesis: %v", err))
		}
		c.BeforeSchedule = func(w *mapred.Worker, next int64) {
			c.SetMinSpaceStart(int64(ctrl.Update(float64(w.Disk.Used() + w.Committed() + next))))
		}
	}

	mr2820CoTenant(s, c, rng, 550*mb, 740*mb, 40*mb, time.Hour)

	diskS := Series{Name: "max_disk_used", Unit: "bytes"}
	knobS := Series{Name: "minspacestart", Unit: "bytes"}
	s.Every(time.Second, time.Second, func() bool {
		diskS.Points = append(diskS.Points, Point{s.Now(), float64(c.MaxDiskUsed())})
		knobS.Points = append(knobS.Points, Point{s.Now(), float64(c.MinSpaceStart())})
		return c.Busy() || s.Now() < 10*time.Second
	})

	// Run the job sequence back to back.
	jobs := mr2820Jobs()
	var results []mapred.JobResult
	var runNext func(i int)
	runNext = func(i int) {
		if i >= len(jobs) {
			s.Stop()
			return
		}
		c.RunJob(jobs[i], func(r mapred.JobResult) {
			results = append(results, r)
			runNext(i + 1)
		})
	}
	var makespan time.Duration
	s.At(time.Second, func() { runNext(0) })
	s.RunUntil(4 * time.Hour) // safety bound; jobs normally end far earlier
	makespan = s.Now()

	res := Result{
		Issue:          "MR2820",
		Policy:         p,
		TradeoffName:   "job-sequence makespan (s)",
		HigherIsBetter: false,
		Tradeoff:       makespan.Seconds(),
		Series:         []Series{diskS, knobS},
	}
	failedTasks := 0
	for _, r := range results {
		failedTasks += r.FailedTasks
	}
	switch {
	case c.OOD():
		res.ConstraintMet = false
		res.Violation = fmt.Sprintf("OOD (%d failed tasks)", failedTasks)
		res.ViolatedAt = firstViolation(diskS, float64(mr2820DiskGoal))
	case len(results) < len(jobs):
		res.ConstraintMet = false
		res.Violation = fmt.Sprintf("only %d/%d jobs finished", len(results), len(jobs))
	default:
		res.ConstraintMet = true
	}
	return res
}

func firstViolation(s Series, goal float64) time.Duration {
	for _, p := range s.Points {
		if p.V > goal {
			return p.T
		}
	}
	if n := len(s.Points); n > 0 {
		return s.Points[n-1].T
	}
	return 0
}

// MR2820Scenario returns the scenario descriptor.
func MR2820Scenario() Scenario {
	return Scenario{
		ID:                "MR2820",
		Conf:              "local.dir.minspacestart",
		Description:       "decides if a worker has enough disk to run a task; too small, OOD; too big, low utilization (job latency hurts)",
		Flags:             "Y-Y-Y",
		ConstraintName:    "no out-of-disk failures (hard)",
		TradeoffName:      "job-sequence makespan (s)",
		HigherIsBetter:    false,
		ProfilingWorkload: "WordCount(2GB, 64MB, ×1) @ minspace 50/150/250/350MB",
		PhaseWorkloads:    [2]string{"WordCount(640MB, 64MB, ×2) ×3", "WordCount(640MB, 128MB, ×2) ×3"},
		BuggyDefault:      0,
		PatchDefault:      1 * float64(mb), // the patched default (1 MB) — still OODs
		StaticGrid:        []float64{50 * float64(mb), 100 * float64(mb), 150 * float64(mb), 200 * float64(mb), 230 * float64(mb), 260 * float64(mb), 300 * float64(mb), 350 * float64(mb), 420 * float64(mb), 460 * float64(mb)},
		NonOptimal:        300 * float64(mb), // the paper's Figure 5 non-optimal bar
		Run:               RunMR2820,
	}
}
