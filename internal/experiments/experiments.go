// Package experiments reproduces the paper's evaluation (§6): the six
// real-world PerfConf issues of Table 6 on the simulated substrates, the
// trade-off comparison of Figure 5, the HB3813 case study of Figure 6, the
// controller ablations of Figure 7, the interacting-configuration study of
// Figure 8, and Tables 6 and 7.
//
// Each scenario couples a substrate, a phased workload, and a policy for the
// PerfConf under study. Policies:
//
//   - SmartConf: the public smartconf API, synthesized from a profiling run
//     on the PROFILING workload (always different from the evaluation
//     workload, per the paper's methodology).
//   - Static(v): the traditional approach — the knob pinned at v for the
//     whole run. The Figure 5 harness sweeps a grid to find the best static
//     setting in hindsight, which is the strongest possible baseline.
//   - SinglePole / NoVirtualGoal: the Figure 7 ablations of SmartConf's two
//     hard-goal techniques.
//
// All runs are deterministic: fixed seeds, virtual time.
package experiments

import (
	"fmt"
	"time"
)

// PolicyKind selects how the PerfConf under study is managed during a run.
type PolicyKind int

const (
	// SmartConfPolicy uses the synthesized controller (the paper's system).
	SmartConfPolicy PolicyKind = iota
	// StaticPolicy pins the knob at Policy.Static.
	StaticPolicy
	// SinglePolePolicy is the Figure 7 ablation: same virtual goal as
	// SmartConf but only the regular pole (no danger-region switch).
	SinglePolePolicy
	// NoVirtualGoalPolicy is the Figure 7 ablation: two-pole logic but
	// targeting the real constraint instead of the virtual goal.
	NoVirtualGoalPolicy
)

// Policy is a PolicyKind plus its parameters.
type Policy struct {
	Kind   PolicyKind
	Static float64
	// FixedPole, when positive, overrides the automatically derived pole —
	// the paper's Figure 7 pins both SmartConf and the single-pole baseline
	// at 0.9 so the two-pole mechanism is the only difference.
	FixedPole float64
}

// Static returns a StaticPolicy pinned at v.
func Static(v float64) Policy { return Policy{Kind: StaticPolicy, Static: v} }

// SmartConf returns the SmartConfPolicy.
func SmartConf() Policy { return Policy{Kind: SmartConfPolicy} }

func (p Policy) String() string {
	switch p.Kind {
	case SmartConfPolicy:
		return "SmartConf"
	case StaticPolicy:
		return fmt.Sprintf("Static(%g)", p.Static)
	case SinglePolePolicy:
		return "SinglePole"
	case NoVirtualGoalPolicy:
		return "NoVirtualGoal"
	}
	return fmt.Sprintf("Policy(%d)", int(p.Kind))
}

// Point is one time-series sample.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series collected during a run (used to regenerate
// the paper's figures).
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// At returns the last value at or before t (0 when none).
func (s Series) At(t time.Duration) float64 {
	var v float64
	for _, p := range s.Points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Max returns the series maximum (0 when empty).
func (s Series) Max() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Result is the outcome of one scenario run under one policy.
type Result struct {
	Issue  string
	Policy Policy

	// ConstraintMet reports whether the scenario's performance constraint
	// held for the entire run.
	ConstraintMet bool
	// Violation describes the first violation ("OOM", "OOD",
	// "block 12s > 10s"); empty when the constraint held.
	Violation string
	// ViolatedAt is when the first violation occurred (0 when none).
	ViolatedAt time.Duration

	// Tradeoff is the secondary metric the system optimizes subject to the
	// constraint (write throughput, du latency, job time...).
	Tradeoff float64
	// TradeoffName labels the metric, with units.
	TradeoffName string
	// HigherIsBetter orients comparisons of Tradeoff.
	HigherIsBetter bool

	// Series holds the time series behind Figures 6–8.
	Series []Series
}

// SeriesByName returns the named series, if collected.
func (r Result) SeriesByName(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// BetterThan reports whether r's trade-off beats other's, respecting metric
// orientation. Results that violate the constraint never beat ones that meet
// it.
func (r Result) BetterThan(other Result) bool {
	if r.ConstraintMet != other.ConstraintMet {
		return r.ConstraintMet
	}
	if r.HigherIsBetter {
		return r.Tradeoff > other.Tradeoff
	}
	return r.Tradeoff < other.Tradeoff
}

// Speedup returns r's trade-off improvement over base as a multiplicative
// factor (>1 means r is better), respecting orientation.
func (r Result) Speedup(base Result) float64 {
	if base.Tradeoff == 0 || r.Tradeoff == 0 {
		return 0
	}
	if r.HigherIsBetter {
		return r.Tradeoff / base.Tradeoff
	}
	return base.Tradeoff / r.Tradeoff
}

// Scenario is one of the paper's six benchmark issues: metadata plus its
// profiling and run functions.
type Scenario struct {
	// ID is the paper's issue identifier (e.g. "HB3813").
	ID string
	// Conf is the PerfConf under study.
	Conf string
	// Description summarizes the issue (Table 6's wording).
	Description string
	// Flags is the paper's ?-?-? triple: conditional, direct, hard.
	Flags string
	// ConstraintName and TradeoffName label the two metrics.
	ConstraintName string
	TradeoffName   string
	HigherIsBetter bool
	// ProfilingWorkload and PhaseWorkloads describe Table 6's workloads.
	ProfilingWorkload string
	PhaseWorkloads    [2]string
	// BuggyDefault and PatchDefault are the pre-patch and post-patch static
	// defaults (the paper's values where published).
	BuggyDefault float64
	PatchDefault float64
	// StaticGrid is the sweep used to find the best static setting.
	StaticGrid []float64
	// NonOptimal is a representative suboptimal static choice for Figure 5.
	NonOptimal float64
	// Run executes the scenario under a policy.
	Run func(Policy) Result
}

// Scenarios returns the six benchmark scenarios in Table 6 order.
func Scenarios() []Scenario {
	return []Scenario{
		CA6059Scenario(),
		HB2149Scenario(),
		HB3813Scenario(),
		HB6728Scenario(),
		HD4995Scenario(),
		MR2820Scenario(),
	}
}

// ScenarioByID looks a scenario up by its issue ID.
func ScenarioByID(id string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.ID == id {
			return s, true
		}
	}
	return Scenario{}, false
}
