package experiments

import (
	"fmt"
	"strings"

	"smartconf/internal/experiments/engine"
)

// AIMD is the classic systems heuristic (additive increase, multiplicative
// decrease — TCP's congestion control) applied to the HB3813 knob: grow the
// queue bound steadily while memory is under the goal, slash it when memory
// crosses. The paper's related-work section cites empirical comparisons
// [Maggio et al., TAAS'12] showing control-theoretic solutions beat such
// heuristics at meeting constraints; this baseline lets the repository show
// the same thing.
//
// AIMD has two parameters with no synthesis procedure — the operator guesses
// them, which is exactly the burden SmartConf removes.
type AIMD struct {
	// Increase is the additive step while the metric is under the goal.
	Increase float64
	// Decrease is the multiplicative factor applied on violation (< 1).
	Decrease float64
	// Goal is the metric bound.
	Goal float64
	// Min and Max clamp the knob.
	Min, Max float64

	value float64
}

// Update applies one AIMD step and returns the new knob value.
func (a *AIMD) Update(measured float64) float64 {
	if measured <= a.Goal {
		a.value += a.Increase
	} else {
		a.value *= a.Decrease
	}
	if a.value < a.Min {
		a.value = a.Min
	}
	if a.value > a.Max {
		a.value = a.Max
	}
	return a.value
}

// BackendComparison holds SmartConf vs AIMD on the same scenario.
type BackendComparison struct {
	SmartConf Result
	// AIMD variants: a cautious and an aggressive parameterization — there
	// is no principled way to pick, which is the point.
	AIMDCautious   Result
	AIMDAggressive Result
}

// AblationBackendAIMD runs the comparison on the HB3813 scenario. The
// SmartConf arm reuses the Figure 5 run through the cache; the AIMD arms are
// memoized under their parameters and all three fan out together.
func AblationBackendAIMD() BackendComparison {
	type arm struct{ inc, dec float64 }
	arms := []arm{{0, 0}, {0.05, 0.5}, {1.0, 0.9}} // {0,0} marks the SmartConf arm
	runs := engine.MapSlice(arms, func(a arm) Result {
		if a.inc == 0 {
			return runCached(HB3813Scenario(), SmartConf())
		}
		return memoResult("HB3813", fmt.Sprintf("aimd inc=%g dec=%g", a.inc, a.dec),
			"ablation-aimd", 0, func() Result {
				ctl := &AIMD{
					Increase: a.inc,
					Decrease: a.dec,
					Goal:     float64(rpcMemoryGoal),
					Min:      0, Max: 5000,
				}
				return runHB3813Custom(func(heapUsed float64, _ int) int {
					return int(ctl.Update(heapUsed))
				})
			})
	})
	return BackendComparison{
		SmartConf:      runs[0],
		AIMDCautious:   runs[1],
		AIMDAggressive: runs[2],
	}
}

// RenderBackendComparison formats the comparison.
func RenderBackendComparison(c BackendComparison) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Controller-vs-heuristic comparison (HB3813): SmartConf vs hand-tuned AIMD")
	line := func(name string, r Result) {
		status := "ok"
		if !r.ConstraintMet {
			status = fmt.Sprintf("X %s at %.0fs", r.Violation, r.ViolatedAt.Seconds())
		}
		fmt.Fprintf(&b, "  %-24s %-28s %8.2f ops/s\n", name, status, r.Tradeoff)
	}
	line("SmartConf (synthesized)", c.SmartConf)
	line("AIMD +0.05/×0.5", c.AIMDCautious)
	line("AIMD +1.0/×0.9", c.AIMDAggressive)
	fmt.Fprintln(&b, "  (AIMD parameters are guesses — no synthesis procedure exists for them)")
	return b.String()
}
