package experiments

import (
	"time"

	"smartconf/internal/cluster"
	"smartconf/internal/llmserve"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// The fleet raw-speed runners: the scale campaign pushed through a 256-wide
// fleet instead of a single instance, so the wide-router machinery (multi-word
// tried bitsets, precomputed rendezvous salts, the lazy dead-member cache) is
// exercised at the same 10M-request scale — and held to the same steady-state
// zero-allocation window — as the per-substrate engines. Two fleets:
//
//   - fleetrpc: 256 RPC servers behind key-affinity routing, zipfian keys.
//     Every request walks Fleet.Dispatch → Router.RouteExcluding → Offer; the
//     admission knob stays wide open, so the O(N) fleet-load sum is skipped
//     and one decision costs one salted rendezvous scan.
//   - fleetllm: 256 inference servers behind prefix-affinity routing. Requests
//     cycle through a fixed pool of prompt prefixes (chat templates), so
//     requests sharing a template co-locate — the KV-reuse placement the
//     prefix policy exists for.

const (
	// fleetScaleNodes is the campaign's fleet width: the maximum the router's
	// four-word tried bitset supports, so the last word's last bit is live.
	fleetScaleNodes = 256
	// fleetScaleQueueHint pre-sizes the fleet runners' event queues. Unlike
	// the single-instance runners, pending work scales with fleet width (each
	// busy member holds its own service/step timers), so the hint is measured
	// from recorded 10M-request runs: peaks stay under 1k on both fleets.
	fleetScaleQueueHint = 2048
	// fleetScalePrefixes is the prompt-template pool for fleetllm: wide enough
	// that rendezvous spreads templates across all 256 members, small enough
	// that each member serves a handful of templates hot.
	fleetScalePrefixes = 2048
)

// ---- fleetrpc ----

// fleetRPCScaleRunner drives 4 KB zipfian ops at 40k/s through a 256-node
// RPC fleet under key-affinity routing. Per-node service capacity is scaled
// down (2 workers) since each member sees ~1/256 of the offered load.
type fleetRPCScaleRunner struct {
	s       *sim.Simulation
	fleet   *cluster.Fleet[workload.Op]
	servers []*rpcserver.Server
	gen     *workload.YCSB
	now     time.Duration
	offered int64
}

func newFleetRPCScaleRunner() *fleetRPCScaleRunner {
	s := sim.NewWithCapacity(fleetScaleQueueHint)
	cfg := rpcserver.Config{
		Workers:            2,
		ServiceBytesPerSec: 512 << 20,
		ServiceBaseTime:    2 * time.Millisecond,
		MaxBatch:           16,
		ReadResponseFactor: 1.0,
		WriteAckBytes:      256,
		DrainBytesPerSec:   1 << 30,
		BaseHeapBytes:      100 << 20,
		ResponseRetry:      20 * time.Millisecond,
	}
	fleet := cluster.NewFleet[workload.Op](cluster.KeyAffinity)
	servers := make([]*rpcserver.Server, fleetScaleNodes)
	for i := range servers {
		servers[i] = rpcserver.New(s, memsim.NewHeap(2<<30), cfg)
		servers[i].SetID(i)
		servers[i].SetMaxQueue(1024)
		// Buffers are pre-sized to their bounds up front: each member sees
		// ~1/256 of the load, so organic watermark growth would otherwise
		// trickle allocations deep into the zero-alloc measurement window.
		servers[i].Preallocate(1024, 1024, 32)
		fleet.Add(servers[i], 1, servers[i].Offer)
	}
	gen := workload.NewYCSB(scaleSeed, 1<<20, workload.YCSBPhase{
		Name: "scale", WriteRatio: 0.5, RequestBytes: 4 << 10, OpsPerSec: 40_000,
	})
	return &fleetRPCScaleRunner{s: s, fleet: fleet, servers: servers, gen: gen}
}

func (r *fleetRPCScaleRunner) RunTo(n int64) {
	for r.offered < n {
		r.now += r.gen.NextInterarrival()
		r.s.RunUntil(r.now)
		op := r.gen.NextOp()
		r.fleet.Dispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
		r.offered++
	}
}

func (r *fleetRPCScaleRunner) Result() ScaleResult {
	var completed int64
	for _, sv := range r.servers {
		completed += sv.Completed()
	}
	return ScaleResult{
		Substrate:   "fleetrpc",
		Requests:    r.offered,
		Completed:   completed,
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}

// ---- fleetllm ----

// fleetLLMScaleRunner drives the short-token chat mix at 2000 req/s through
// a 256-node inference fleet under prefix-affinity routing: each request
// carries one of fleetScalePrefixes template identities (cycled
// deterministically), and requests sharing a template land on the same
// member for KV reuse.
type fleetLLMScaleRunner struct {
	s       *sim.Simulation
	fleet   *cluster.Fleet[workload.LLMRequest]
	servers []*llmserve.Server
	gen     *workload.LLMGen
	now     time.Duration
	offered int64
}

func newFleetLLMScaleRunner() *fleetLLMScaleRunner {
	s := sim.NewWithCapacity(fleetScaleQueueHint)
	cfg := llmserve.Config{
		KVBytesPerToken:      128 << 10,
		ScratchBytesPerToken: 32 << 10,
		BaseHeapBytes:        6 << 30,
		StepBase:             2 * time.Millisecond,
		StepPerToken:         5 * time.Microsecond,
		PrefillChunk:         512,
		WaitingLimit:         4096,
	}
	fleet := cluster.NewFleet[workload.LLMRequest](cluster.PrefixAffinity)
	servers := make([]*llmserve.Server, fleetScaleNodes)
	for i := range servers {
		servers[i] = llmserve.New(s, memsim.NewHeap(16<<30), cfg)
		servers[i].SetID(i)
		servers[i].SetMaxBatchedTokens(1 << 20)
		// Pre-sized for the same reason as the RPC fleet: per-member load is
		// a sliver, so concurrency watermarks would otherwise keep growing
		// the pools long past any warm-up prefix.
		servers[i].Preallocate(512)
		fleet.Add(servers[i], 1, servers[i].Offer)
	}
	gen := workload.NewLLMGen(scaleSeed, workload.LLMPhase{
		Name: "scale", RequestsPerSec: 2000, PromptMean: 8, OutputMean: 4,
	})
	return &fleetLLMScaleRunner{s: s, fleet: fleet, servers: servers, gen: gen}
}

func (r *fleetLLMScaleRunner) RunTo(n int64) {
	for r.offered < n {
		r.now += r.gen.NextInterarrival()
		r.s.RunUntil(r.now)
		req := r.gen.NextRequest()
		// Key is the per-request session identity; Prefix the shared template
		// identity the router places on. Cycling the template pool keeps the
		// draw allocation-free and deterministic.
		r.fleet.Dispatch(cluster.Request{
			Key:    uint64(r.offered),
			Prefix: uint64(r.offered) % fleetScalePrefixes,
			Cost:   float64(req.Tokens()),
		}, req)
		r.offered++
	}
}

func (r *fleetLLMScaleRunner) Result() ScaleResult {
	var completed int64
	for _, sv := range r.servers {
		completed += sv.Completed()
	}
	return ScaleResult{
		Substrate:   "fleetllm",
		Requests:    r.offered,
		Completed:   completed,
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}
