package experiments

import (
	"strings"
	"testing"

	"smartconf/internal/experiments/engine"
)

// TestFleetAcceptance is the fleet artifact's acceptance criterion: under
// skewed load with one instance lost mid-run, the SmartConf fleet must meet
// the hard fleet-wide memory goal AND the soft per-node p99 goal, and beat
// every static fleet that also meets both (a static that violates either
// goal is disqualified no matter its throughput).
func TestFleetAcceptance(t *testing.T) {
	results := BuildFleetComparison()
	t.Logf("\n%s", RenderFleet(results))

	var sc *FleetResult
	var bestStatic *FleetResult
	anyStaticFails := false
	for i := range results {
		r := &results[i]
		if r.Policy.Kind == SmartConfPolicy {
			sc = r
			continue
		}
		if !FleetQualifies(*r) {
			anyStaticFails = true
			continue
		}
		if bestStatic == nil || r.Throughput > bestStatic.Throughput {
			bestStatic = r
		}
	}
	if sc == nil {
		t.Fatal("no SmartConf result")
	}
	if sc.Lost < 1 {
		t.Fatalf("scenario must lose at least one instance, got %d", sc.Lost)
	}
	if !sc.ConstraintMet {
		t.Fatalf("SmartConf fleet violated the hard memory goal: %s at %v", sc.Violation, sc.ViolatedAt)
	}
	if !sc.SoftGoalMet {
		t.Fatalf("SmartConf fleet missed the soft p99 goal: worst p99 %.2fs", sc.WorstP99)
	}
	if sc.Redispatched == 0 {
		t.Error("instance loss should have evacuated requests through Redispatch")
	}
	if !anyStaticFails {
		t.Error("expected at least one static fleet to violate a goal (the unsafe-default story)")
	}
	if bestStatic != nil && bestStatic.Throughput >= sc.Throughput {
		t.Errorf("SmartConf (%.2f ops/s) must beat the best qualifying static %s (%.2f ops/s)",
			sc.Throughput, bestStatic.Policy, bestStatic.Throughput)
	}
}

// TestFleetDeterministicRender re-runs the scenario and checks byte-identical
// rendering — the property the run cache and the CLI byte-identity test rely
// on.
func TestFleetDeterministicRender(t *testing.T) {
	if testing.Short() {
		t.Skip("two uncached fleet sweeps")
	}
	a := RenderFleet(BuildFleetComparison())
	ResetRunCache()
	b := RenderFleet(BuildFleetComparison())
	if a != b {
		t.Fatalf("fleet render diverged across uncached rebuilds:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "SmartConf") {
		t.Fatalf("render missing SmartConf row:\n%s", a)
	}
}

// TestFleetArtifactWarmRebuild holds the fleet artifact to the persistent
// cache contract: one cold build with -cachedir populated, then a fresh
// process (in-memory layer dropped) rebuilds it from disk alone — zero
// simulations — byte-identically, at any worker count.
func TestFleetArtifactWarmRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet sweep plus disk round-trip")
	}
	ResetRunCache()
	defer func() {
		EnablePersistentRunCache("")
		ResetRunCache()
	}()
	if err := EnablePersistentRunCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	cold := RenderFleet(BuildFleetComparison())
	if exec, _ := RunCacheStats(); exec == 0 {
		t.Fatal("cold fleet build executed no simulations")
	}
	if _, written := PersistentRunCacheStats(); written == 0 {
		t.Fatal("cold fleet build persisted nothing")
	}

	ResetRunCache() // drop the in-memory layer: the disk is all that remains
	warm := RenderFleet(BuildFleetComparison())
	if exec, _ := RunCacheStats(); exec != 0 {
		t.Errorf("warm fleet rebuild executed %d simulations, want 0", exec)
	}
	if loaded, _ := PersistentRunCacheStats(); loaded == 0 {
		t.Error("warm fleet rebuild loaded nothing from disk")
	}
	if warm != cold {
		t.Errorf("warm fleet rendering differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}

	prev := engine.SetWorkers(8)
	defer engine.SetWorkers(prev)
	ResetRunCache()
	warm8 := RenderFleet(BuildFleetComparison())
	if exec, _ := RunCacheStats(); exec != 0 {
		t.Errorf("warm 8-worker fleet rebuild executed %d simulations, want 0", exec)
	}
	if warm8 != cold {
		t.Error("8-worker warm fleet rendering differs from sequential cold rendering")
	}
}
