package experiments

import (
	"fmt"

	"smartconf/internal/core"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/sim"
)

// This file is the experiments-side adapter onto the run engine: every
// deterministic simulation the harness performs goes through a memoized,
// keyed entry point here, so Figures 5-8, the ablations and the extensions
// never simulate the same (scenario, policy, seed, schedule) twice, and the
// independent runs of a figure or sweep fan out across the worker pool.

// simQueueHint pre-sizes scenario event queues: a burst scenario keeps a few
// hundred scheduled arrivals plus per-op completion events pending at peaks,
// so 1024 slots absorb the steady state without growth reallocations.
const simQueueHint = 1024

// newScenarioSim is the simulator constructor the scenario drivers use.
func newScenarioSim() *sim.Simulation { return sim.NewWithCapacity(simQueueHint) }

// policyKey renders a Policy for use in a cache key. Unlike Policy.String it
// encodes FixedPole, which Figure 7 varies while the label stays the same —
// dropping it would alias the pinned-pole SmartConf run with the Figure 5
// auto-pole run.
func policyKey(p Policy) string {
	if p.FixedPole != 0 {
		return fmt.Sprintf("%s|pole=%g", p, p.FixedPole)
	}
	return p.String()
}

// runCached executes sc.Run(p) at most once process-wide for the scenario's
// standard workload and seed (both are fixed inside Run, so the scenario ID
// and policy identify the run completely).
func runCached(sc Scenario, p Policy) Result {
	return engine.Memo(engine.Key{Scenario: sc.ID, Policy: policyKey(p)},
		func() Result { return sc.Run(p) })
}

// memoResult memoizes an arbitrary Result-producing run under an explicit
// schedule tag — used by the ablation and figure drivers whose workloads
// deviate from the scenario's standard one.
func memoResult(scenario, policy, schedule string, seed int64, run func() Result) Result {
	return memoKeyed(scenario, policy, schedule, seed, run)
}

// memoKeyed memoizes an arbitrary typed run under the full
// (scenario, policy, seed, schedule) tuple — the generic adapter behind
// drivers whose cached value is not a plain Result (ablation rows,
// extension summaries, whole figures). Keeping every engine.Memo call in
// this file is the cachekey invariant smartconf-vet enforces: the key
// discipline lives in one audited place instead of at each driver.
func memoKeyed[T any](scenario, policy, schedule string, seed int64, run func() T) T {
	return engine.Memo(engine.Key{Scenario: scenario, Policy: policy, Seed: seed, Schedule: schedule}, run)
}

// memoProfile memoizes a profiling campaign. Profiles are read-only after
// construction (value-receiver accessors; publicProfile copies the samples),
// so one core.Profile is safely shared by every consumer.
func memoProfile(name string, f func() core.Profile) core.Profile {
	return engine.Memo(engine.Key{Scenario: name, Schedule: "profile"}, f)
}

// profileSweep fans a profiling campaign's per-setting runs across the
// worker pool. Each pinned setting runs in its own simulation recording into
// a private collector; samples are then merged in settings order, which
// reproduces the sequential campaign's Profile exactly (samples within one
// recorded setting keep their temporal order, and Collector.Profile sorts
// across settings).
func profileSweep(settings []float64, runSetting func(setting float64, record func(setting, measurement float64))) core.Profile {
	partials := engine.Map(len(settings), func(i int) core.Profile {
		col := core.NewCollector()
		runSetting(settings[i], col.Record)
		return col.Profile()
	})
	merged := core.NewCollector()
	for _, p := range partials {
		for _, sp := range p.Settings {
			for _, v := range sp.Samples {
				merged.Record(sp.Setting, v)
			}
		}
	}
	return merged.Profile()
}

// ScenarioVersion stamps every persistent cache entry with the generation of
// the scenario code that computed it. Bump it whenever a change to the
// scenarios, substrates, controller, workloads or seeds alters any run's
// result — stale-stamped entries become invisible and everything recomputes.
// (Deleting the cache directory has the same effect.)
const ScenarioVersion = "smartconf-scenarios/1"

// EnablePersistentRunCache layers a cross-process disk cache (rooted at dir)
// beneath the in-memory run cache, keyed by ScenarioVersion: a warm rebuild
// of every figure and ablation in a fresh process executes zero simulations
// and renders byte-identically at any worker count. An empty dir disables
// the layer. Returns any directory-creation error; the layer stays off on
// failure.
func EnablePersistentRunCache(dir string) error {
	return engine.EnableDiskCache(dir, ScenarioVersion)
}

// PersistentRunCacheStats reports (runs loaded from disk this process,
// results written to disk) — the observability behind smartconf-bench's
// cache summary line.
func PersistentRunCacheStats() (loaded uint64, written uint64) {
	loaded = engine.DiskLoads()
	_, _, written, _ = engine.DiskStats()
	return loaded, written
}

// ResetRunCache drops every memoized run and profile. The golden
// byte-identity test and the benchmarks use it to force fresh simulations.
// The persistent layer, when enabled, is unaffected: only the in-memory
// single-flight map and its counters clear.
func ResetRunCache() { engine.ResetCache() }

// RunCacheStats reports (simulations executed, cache hits) since the last
// reset.
func RunCacheStats() (executed, hits uint64) { return engine.Stats() }
