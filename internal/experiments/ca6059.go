package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/kvstore"
	"smartconf/internal/memsim"
	"smartconf/internal/workload"
)

// CA6059: memtable_total_space_in_mb thresholds the Cassandra write buffer.
// A large memtable absorbs writes cheaply (few flushes ⇒ low write latency)
// but OOMs the moment other heap consumers grow — in phase 2 the read-index
// cache expands to half the heap ("C0.5" in Table 6) and any generous static
// setting dies. A small memtable flushes constantly, and write latency pays
// the IO-contention penalty most of the time.
//
// Paper flags: N-N-Y (always-on, indirect, hard).

const (
	ca6059RunTime    = 700 * time.Second
	ca6059PhaseShift = 350 * time.Second
	ca6059HeapCap    = 512 * mb
	ca6059Goal       = 495 * mb
	ca6059Cache2     = 256 * mb // phase-2 cache target: C0.5 of the heap
	ca6059WriteEvery = 50 * time.Millisecond
)

func ca6059Config() kvstore.MemtableConfig {
	return kvstore.MemtableConfig{
		FlushBytesPerSec:   256 * mb,
		FlushFixedOverhead: 500 * time.Millisecond,
		WriteBaseLatency:   2 * time.Millisecond,
		FlushPenalty:       20 * time.Millisecond,
		BaseHeapBytes:      64 * mb,
	}
}

func ca6059Phases() []workload.YCSBPhase {
	return []workload.YCSBPhase{
		// Table 6: phase-1 "1.0W, 1MB, C0"; phase-2 "0.9W, 1MB, C0.5".
		{Name: "phase-1", Duration: ca6059PhaseShift, WriteRatio: 1.0, RequestBytes: 1 * mb, CacheRatio: 0},
		{Name: "phase-2", WriteRatio: 0.9, RequestBytes: 1 * mb, CacheRatio: 0.5},
	}
}

// ProfileCA6059 runs the profiling campaign under the profiling workload
// (YCSB-A: 0.5W, 1 MB), pinning the memtable threshold at four settings and
// sampling heap consumption at write time.
func ProfileCA6059() core.Profile {
	return memoProfile("CA6059", func() core.Profile {
		settings := []float64{32 * float64(mb), 96 * float64(mb), 160 * float64(mb), 224 * float64(mb)}
		return profileSweep(settings, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(6059))
			heap := memsim.NewHeap(ca6059HeapCap)
			st := kvstore.NewMemtableStore(s, heap, ca6059Config(), int64(setting))
			heapNoise(s, heap, rng, rpcNoiseMax, hb3813ProfileStep)

			writes, taken := 0, 0
			st.BeforeWrite = func() {
				writes++
				if writes%200 == 0 && taken < 10 {
					record(setting, float64(heap.Used()))
					taken++
				}
			}
			gen := workload.NewYCSB(6059, 1000, workload.YCSBPhase{WriteRatio: 0.5, RequestBytes: 1 * mb})
			s.Every(0, ca6059WriteEvery, func() bool {
				op := gen.NextOp()
				if op.Write {
					st.Write(op.Bytes)
				} else {
					st.Read(op.Bytes)
				}
				return s.Now() < hb3813ProfileStep && !st.Crashed()
			})
			s.RunUntil(hb3813ProfileStep)
		})
	})
}

// RunCA6059 executes the two-phase evaluation under the given policy.
func RunCA6059(p Policy) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(6059))
	heap := memsim.NewHeap(ca6059HeapCap)
	st := kvstore.NewMemtableStore(s, heap, ca6059Config(), 0)

	switch p.Kind {
	case StaticPolicy:
		st.SetThreshold(int64(p.Static))
	case SmartConfPolicy:
		profile := ProfileCA6059()
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "memtable_total_space_in_mb",
			Metric:  "memory_consumption",
			Goal:    float64(ca6059Goal),
			Hard:    true,
			Initial: 0,
			Min:     0, Max: float64(ca6059HeapCap),
		}, publicProfile(profile), nil)
		if err != nil {
			panic(fmt.Sprintf("CA6059 synthesis: %v", err))
		}
		st.BeforeWrite = func() {
			ic.SetPerf(float64(heap.Used()), float64(st.MemtableBytes())) //sc:CA6059:sensor
			st.SetThreshold(int64(ic.Value()))                            //sc:CA6059:invoke
		}
	case SinglePolePolicy, NoVirtualGoalPolicy:
		ctrl, err := ablationController(p.Kind, ProfileCA6059(), float64(ca6059Goal), p.FixedPole)
		if err != nil {
			panic(fmt.Sprintf("CA6059 ablation synthesis: %v", err))
		}
		st.BeforeWrite = func() {
			ctrl.SetConf(float64(st.MemtableBytes()))
			st.SetThreshold(int64(ctrl.Update(float64(heap.Used()))))
		}
	}

	heapNoise(s, heap, rng, rpcNoiseMax, ca6059RunTime)

	memS := Series{Name: "used_memory", Unit: "bytes"}
	knobS := Series{Name: "memtable_total_space", Unit: "bytes"}
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	s.Every(time.Second, time.Second, func() bool {
		memS.Points = append(memS.Points, Point{s.Now(), float64(heap.Used())})
		knobS.Points = append(knobS.Points, Point{s.Now(), float64(st.Threshold())})
		return s.Now() < ca6059RunTime && !heap.OOM()
	})

	gen := workload.NewYCSB(6060, 1000, ca6059Phases()[0])
	s.Every(0, ca6059WriteEvery, func() bool {
		if phase, _ := workload.PhaseAt(ca6059Phases(), s.Now()); phase.Name != gen.Phase().Name {
			gen.SetPhase(phase)
			st.SetCacheTarget(int64(phase.CacheRatio * float64(ca6059HeapCap)))
		}
		op := gen.NextOp()
		if op.Write {
			st.Write(op.Bytes)
		} else {
			st.Read(op.Bytes)
		}
		return s.Now() < ca6059RunTime && !st.Crashed()
	})
	s.RunUntil(ca6059RunTime)

	res := Result{
		Issue:          "CA6059",
		Policy:         p,
		TradeoffName:   "mean write latency (ms)",
		HigherIsBetter: false,
		Tradeoff:       float64(st.WriteLatency().OverallMean()) / float64(time.Millisecond),
		Series:         []Series{memS, knobS},
	}
	met, at, worst := evalUpperBound(memS, func(time.Duration) float64 { return float64(ca6059Goal) })
	switch {
	case heap.OOM():
		res.ConstraintMet = false
		res.ViolatedAt = oomAt
		res.Violation = "OOM"
	case !met:
		res.ConstraintMet = false
		res.ViolatedAt = at
		res.Violation = fmt.Sprintf("memory %.0fMB > goal %.0fMB", worst/float64(mb), float64(ca6059Goal)/float64(mb))
	default:
		res.ConstraintMet = true
	}
	return res
}

// CA6059Scenario returns the scenario descriptor.
func CA6059Scenario() Scenario {
	return Scenario{
		ID:                "CA6059",
		Conf:              "memtable_total_space_in_mb",
		Description:       "limits the memtable size; too big, OOM; too small, write latency hurts",
		Flags:             "N-N-Y",
		ConstraintName:    "memory ≤ 495MB (hard, no OOM)",
		TradeoffName:      "mean write latency (ms)",
		HigherIsBetter:    false,
		ProfilingWorkload: "YCSB-A 0.5W, 1MB @ memtable 32/96/160/224MB",
		PhaseWorkloads:    [2]string{"YCSB 1.0W, 1MB, C0", "YCSB 0.9W, 1MB, C0.5"},
		BuggyDefault:      320 * float64(mb), // a generous default — dies when the cache grows
		PatchDefault:      64 * float64(mb),  // the conservative patched default
		StaticGrid:        []float64{8 * float64(mb), 16 * float64(mb), 24 * float64(mb), 32 * float64(mb), 40 * float64(mb), 48 * float64(mb), 64 * float64(mb), 96 * float64(mb), 128 * float64(mb), 192 * float64(mb)},
		NonOptimal:        8 * float64(mb),
		Run:               RunCA6059,
	}
}
