package experiments

import (
	"strings"
	"testing"

	"smartconf/internal/experiments/engine"
	"smartconf/internal/proptest"
)

// The named fault catalog must leave every substrate's invariants intact:
// the matrix is the paper's robustness claim run through the injectors.
func TestChaosMatrixAllInvariantsHold(t *testing.T) {
	reports := ChaosMatrix(ChaosSeed)
	if want := len(ChaosFaults()) * len(ChaosSubstrates()); len(reports) != want {
		t.Fatalf("got %d reports, want %d", len(reports), want)
	}
	for i := range reports {
		r := &reports[i]
		if v := ChaosVerdict(r); v != "ok" {
			t.Errorf("%s/%s: %s", r.Substrate, r.Plan, v)
		}
		if r.Fingerprint == "" {
			t.Errorf("%s/%s: no fingerprint", r.Substrate, r.Plan)
		}
	}
	if t.Failed() {
		t.Logf("matrix:\n%s", RenderChaos(reports))
	}
}

// Repeated matrix builds must be served from the run cache: the second
// build may not execute a single new simulation.
func TestChaosMatrixServedFromCache(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	ChaosMatrix(ChaosSeed)
	exec1, _ := RunCacheStats()
	ChaosMatrix(ChaosSeed)
	exec2, hits := RunCacheStats()
	if exec2 != exec1 {
		t.Errorf("second matrix executed %d new runs, want 0", exec2-exec1)
	}
	if want := uint64(len(ChaosFaults()) * len(ChaosSubstrates())); hits < want {
		t.Errorf("second matrix took %d cache hits, want at least %d", hits, want)
	}
}

// The rendered artifact must be byte-identical at any engine worker count —
// same contract as the figure artifacts.
func TestChaosRenderByteIdenticalAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		ResetRunCache()
		prev := engine.SetWorkers(workers)
		defer engine.SetWorkers(prev)
		return RenderChaos(ChaosMatrix(ChaosSeed))
	}
	seq := render(1)
	par := render(4)
	ResetRunCache()
	if seq != par {
		t.Fatalf("chaos artifact differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "matrix fingerprint") {
		t.Fatalf("render missing fingerprint line:\n%s", seq)
	}
}

// A cached cell replayed from its coordinates must carry the exact
// trajectory fingerprint of a fresh, uncached execution.
func TestChaosCellCacheMatchesFreshRun(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	cached := RunChaosCell(ChaosCell{Substrate: "HB3813", Fault: "plant-shift", Seed: ChaosSeed})
	fresh := runChaosCell("HB3813", "plant-shift", ChaosSeed, nil)
	if err := proptest.Replays(&cached, &fresh); err != nil {
		t.Fatal(err)
	}
}
