package experiments

import "testing"

// TestFleetHeteroSpecMaxDerivation pins the heap → Spec.Max derivation: a
// bigger box must get a strictly deeper knob capacity, and the derivation on
// the uniform scenario's 768 MB boxes must leave real queueing room.
func TestFleetHeteroSpecMaxDerivation(t *testing.T) {
	prev := -1.0
	for _, heap := range fleetHeteroHeaps {
		max := heteroNodeMaxQueue(heap)
		if max <= prev {
			t.Fatalf("heteroNodeMaxQueue not strictly increasing: heap %d MB → %.0f after %.0f", heap/mb, max, prev)
		}
		if max <= 0 {
			t.Fatalf("heap %d MB derives a non-positive queue capacity %.0f", heap/mb, max)
		}
		prev = max
	}
	if got := heteroNodeMaxQueue(fleetHeapCapacity); got < 100 {
		t.Fatalf("768 MB box derives only %.0f queued MB of capacity", got)
	}
}

// TestFleetHeteroAcceptance is the heterogeneous fleet's acceptance
// criterion: with mixed heap capacities and per-node Spec.Max derived from
// each node's own heap, the coordinated controllers must meet the hard
// fleet-wide memory goal, no member may OOM, and no node's final bound may
// exceed its derived capacity — the property a uniform Spec.Max cannot give
// a mixed fleet.
func TestFleetHeteroAcceptance(t *testing.T) {
	r := BuildFleetHetero()
	if !r.ConstraintMet {
		t.Fatalf("heterogeneous fleet violated the hard memory goal: %s at %v", r.Violation, r.ViolatedAt)
	}
	if len(r.FinalBounds) != len(fleetHeteroHeaps) {
		t.Fatalf("expected %d final bounds, got %v", len(fleetHeteroHeaps), r.FinalBounds)
	}
	for i, bound := range r.FinalBounds {
		if cap := heteroNodeMaxQueue(fleetHeteroHeaps[i]); float64(bound) > cap {
			t.Errorf("node %d (heap %d MB): final bound %d exceeds derived capacity %.0f",
				i, fleetHeteroHeaps[i]/mb, bound, cap)
		}
	}
	if r.Throughput == 0 {
		t.Error("heterogeneous fleet completed no work")
	}
}
