package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/dfs"
)

// HD4995: content-summary.limit decides how many files a du traversal
// processes per namesystem-lock acquisition. Long lock holds block every
// concurrent writer (the user's worst-case block constraint); short holds
// pay the lock re-acquisition overhead over and over, inflating du latency
// (the trade-off metric).
//
// This is a goal-change scenario in Table 6: multi-client phase 1 tolerates
// 20 s writer blocks, phase 2 tightens the goal to 10 s.
//
// Paper flags: Y-N-N (conditional, indirect, soft).

const (
	hd4995RunTime    = 700 * time.Second
	hd4995PhaseShift = 350 * time.Second
	hd4995Goal1      = 20.0 // seconds of worst-case writer block (lock hold)
	hd4995Goal2      = 10.0
	hd4995Grace      = 120 * time.Second // one du to converge after setGoal
	hd4995DuEvery    = 120 * time.Second
)

func hd4995Config() dfs.Config {
	return dfs.Config{
		PerFileCost:       500 * time.Microsecond,
		ReacquireOverhead: 8 * time.Second,
		InitialFiles:      100_000, // a 50 s full traversal
	}
}

// ProfileHD4995 profiles lock-hold duration against the pinned chunk limit
// under the profiling workload (TestDFSIO, single client: light writer load).
func ProfileHD4995() core.Profile {
	return memoProfile("HD4995", func() core.Profile {
		return profileSweep([]float64{5_000, 15_000, 30_000, 60_000}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			nn := dfs.New(s, hd4995Config(), int(setting))
			// Single writer client at 2 writes/s (the profiling workload).
			s.Every(0, 500*time.Millisecond, func() bool {
				nn.Write()
				return s.Now() < 10*time.Minute
			})
			// Samples pair the deputy (files actually traversed in the hold)
			// with the measured hold time; partial final chunks are thereby
			// attributed to their true size instead of biasing the slope.
			taken := 0
			seen := int64(0)
			s.Every(time.Second, time.Second, func() bool {
				if n := nn.HoldTimes().Count(); n > seen && taken < 10 {
					record(float64(nn.LastChunkFiles()), nn.HoldTimes().Last().Seconds())
					seen = n
					taken++
				}
				return taken < 10
			})
			// Back-to-back du requests supply enough lock holds.
			var loop func(time.Duration)
			loop = func(time.Duration) { nn.Du(loop) }
			s.At(0, func() { nn.Du(loop) })
			s.RunUntil(10 * time.Minute)
		})
	})
}

// hd4995Sensor builds the per-chunk hook: read the last completed lock
// hold, feed the controller in deputy space (files actually traversed),
// apply the new limit. On the first chunk of the first du no hold has
// completed (Count() == 0), so the hook keeps the Initial limit rather
// than feeding a phantom 0 s hold paired with a stale deputy reading.
func hd4995Sensor(nn *dfs.NameNode, ic *smartconf.IndirectConf) func() {
	return func() {
		if nn.HoldTimes().Count() == 0 {
			return
		}
		hold := nn.HoldTimes().Last().Seconds()        //sc:HD4995:sensor
		ic.SetPerf(hold, float64(nn.LastChunkFiles())) //sc:HD4995:invoke
		nn.SetLimit(ic.Conf())                         //sc:HD4995:invoke
	}
}

// RunHD4995 executes the two-phase evaluation under the given policy.
func RunHD4995(p Policy) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(4995))
	nn := dfs.New(s, hd4995Config(), 1)

	var setGoal func(float64)
	switch p.Kind {
	case StaticPolicy:
		nn.SetLimit(int(p.Static))
	case SmartConfPolicy:
		profile := ProfileHD4995()
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "content-summary.limit",
			Metric:  "writer_block_time",
			Goal:    hd4995Goal1,
			Hard:    false, // soft latency constraint
			Initial: 1,     // a uselessly small starting value; SmartConf recovers
			Min:     1, Max: 1e7,
		}, publicProfile(profile), nil)
		if err != nil {
			panic(fmt.Sprintf("HD4995 synthesis: %v", err))
		}
		// Conditional + indirect: invoked per lock acquisition during a du;
		// the deputy is the actual files-per-hold of the last chunk.
		nn.BeforeChunk = hd4995Sensor(nn, ic)
		setGoal = ic.SetGoal
	case SinglePolePolicy, NoVirtualGoalPolicy:
		return runCached(HD4995Scenario(), SmartConf()) // ablations target hard memory goals
	}

	holdS := Series{Name: "lock_hold", Unit: "s"}
	knobS := Series{Name: "content-summary.limit", Unit: "files"}
	seen := int64(0)
	s.Every(time.Second, time.Second, func() bool {
		if n := nn.HoldTimes().Count(); n > seen {
			holdS.Points = append(holdS.Points, Point{s.Now(), nn.HoldTimes().Last().Seconds()})
			seen = n
		}
		knobS.Points = append(knobS.Points, Point{s.Now(), float64(nn.Limit())})
		return s.Now() < hd4995RunTime
	})

	s.At(hd4995PhaseShift, func() {
		if setGoal != nil {
			setGoal(hd4995Goal2)
		}
	})

	// Multi-client writer load: 20 writes/s with jitter.
	s.Every(0, 50*time.Millisecond, func() bool {
		if rng.Float64() < 0.95 {
			nn.Write()
		}
		return s.Now() < hd4995RunTime
	})
	// Periodic du requests (the content-summary consumer).
	s.Every(10*time.Second, hd4995DuEvery, func() bool {
		nn.Du(nil)
		return s.Now() < hd4995RunTime
	})
	s.RunUntil(hd4995RunTime)

	res := Result{
		Issue:          "HD4995",
		Policy:         p,
		TradeoffName:   "mean du latency (s)",
		HigherIsBetter: false,
		Tradeoff:       nn.DuLatency().OverallMean().Seconds(),
		Series:         []Series{holdS, knobS},
	}
	goalAt := func(t time.Duration) float64 {
		switch {
		case t < hd4995Grace:
			// Initial convergence window: every policy gets the same slack
			// while a controller climbs from its deliberately poor initial
			// value (statics are unaffected unless they only violate here).
			return 1e12
		case t < hd4995PhaseShift+hd4995Grace:
			return hd4995Goal1
		default:
			return hd4995Goal2
		}
	}
	met, at, worst := evalUpperBound(holdS, func(t time.Duration) float64 { return goalAt(t) * 1.05 })
	if !met {
		res.ConstraintMet = false
		res.ViolatedAt = at
		res.Violation = fmt.Sprintf("lock hold %.1fs > goal %.1fs", worst, goalAt(at))
	} else {
		res.ConstraintMet = true
	}
	if nn.DusDone() == 0 {
		res.ConstraintMet = false
		res.Violation = "no du completed"
	}
	return res
}

// HD4995Scenario returns the scenario descriptor.
func HD4995Scenario() Scenario {
	return Scenario{
		ID:                "HD4995",
		Conf:              "content-summary.limit",
		Description:       "limits #files traversed before du releases the big lock; too big, writes blocked long; too small, du latency hurts",
		Flags:             "Y-N-N",
		ConstraintName:    "worst writer block ≤ 20s → 10s (soft)",
		TradeoffName:      "mean du latency (s)",
		HigherIsBetter:    false,
		ProfilingWorkload: "TestDFSIO single-client @ limit 5k/15k/30k/60k",
		PhaseWorkloads:    [2]string{"TestDFSIO multi-client, block ≤ 20s", "TestDFSIO multi-client, block ≤ 10s"},
		BuggyDefault:      1e7, // the hard-coded behaviour: traverse everything in one hold
		PatchDefault:      1e7, // the patch exposed the knob but kept the old default (§6.2)
		StaticGrid:        []float64{2_000, 5_000, 10_000, 20_000, 30_000, 40_000, 60_000, 100_000},
		NonOptimal:        2_000,
		Run:               RunHD4995,
	}
}
