package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"smartconf/internal/chaos"
	"smartconf/internal/cluster"
	"smartconf/internal/kvstore"
	"smartconf/internal/llmserve"
	"smartconf/internal/memsim"
	"smartconf/internal/proptest"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// Fleet property harnesses: small three-member fleets of each substrate run
// through a seeded loss/restart plan, reported as proptest.FleetReport for
// the fleet oracles (drains, request conservation across instance loss,
// routing stability under replay). Deliberately uncached — the replay oracle
// needs two genuine executions.

// FleetSubstrates lists the substrates with a fleet property harness.
// LLM-PREFIX is the LLM fleet routed by prefix affinity instead of key
// affinity, so the routing-stability oracle covers both rendezvous policies.
func FleetSubstrates() []string { return []string{"RPC", "LLM", "LLM-PREFIX", "KV"} }

// RunFleetProperty runs the named substrate's three-member fleet under the
// seed's workload and a seeded loss/restart plan, and reports the
// conservation counters and routing trace.
func RunFleetProperty(substrate string, seed int64) proptest.FleetReport {
	switch substrate {
	case "RPC":
		return runFleetPropertyRPC(seed)
	case "LLM":
		return runFleetPropertyLLM(seed)
	case "LLM-PREFIX":
		return runFleetPropertyLLMPrefix(seed)
	case "KV":
		return runFleetPropertyKV(seed)
	}
	panic(fmt.Sprintf("unknown fleet substrate %q", substrate))
}

// newRouteTrace fingerprints the fleet's (key → member) placement sequence
// via the OnRoute hook.
func newRouteTrace[R any](f *cluster.Fleet[R]) *fnvTrace {
	t := &fnvTrace{h: fnv.New64a()}
	f.OnRoute = func(req cluster.Request, member int) {
		var buf [16]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(req.Key >> (8 * i))
		}
		for i := 0; i < 8; i++ {
			buf[8+i] = byte(uint64(member) >> (8 * i))
		}
		t.h.Write(buf[:])
	}
	return t
}

type fnvTrace struct {
	h interface {
		Write(p []byte) (int, error)
		Sum64() uint64
	}
}

func (t *fnvTrace) fingerprint() string { return fmt.Sprintf("%016x", t.h.Sum64()) }

func runFleetPropertyRPC(seed int64) proptest.FleetReport {
	const (
		members   = 3
		loadUntil = 100 * time.Second
		horizon   = 240 * time.Second
	)
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed))
	fleet := cluster.NewFleet[workload.Op](cluster.KeyAffinity)
	servers := make([]*rpcserver.Server, members)
	targets := make([]chaos.Killable, members)
	for i := range servers {
		// Property runs probe routing and conservation, not memory: a big
		// heap keeps OOM out of the picture.
		servers[i] = rpcserver.New(s, memsim.NewHeap(8<<30), rpcConfig())
		servers[i].SetID(i)
		servers[i].SetMaxQueue(150)
		sv := servers[i]
		sv.OnEvacuate = func(op workload.Op) {
			fleet.Redispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
		}
		fleet.Add(sv, 1, sv.Offer)
		targets[i] = sv
	}
	trace := newRouteTrace(fleet)

	plan := chaos.Plan{Name: "fleet-prop", Seed: seed, Faults: []chaos.Fault{
		chaos.InstanceLoss{At: 40 * time.Second, Targets: targets, Victim: -1},
		chaos.InstanceRestart{At: 80 * time.Second, Targets: targets, Victim: -1},
	}}
	plan.Arm(s, nil)

	w := &rpcWorkload{
		gen:        workload.NewYCSB(seed+1, 128, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 * mb}},
	}
	w.run(s, loadUntil, rng, func(op workload.Op) {
		fleet.Dispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
	})
	s.RunUntil(horizon)

	var completed, pending int64
	for _, sv := range servers {
		completed += sv.Completed()
		pending += int64(sv.Load())
	}
	r := proptest.FleetReport{
		Substrate: "RPC", Policy: fleet.Router().Policy().String(),
		Seed: seed, Horizon: horizon, Members: members, Lost: 1,
		Submitted: fleet.Submitted(), Completed: completed,
		Refused: fleet.Refused(), Pending: pending,
		RouteFingerprint: trace.fingerprint(),
	}
	r.ComputeFingerprint()
	return r
}

func runFleetPropertyLLM(seed int64) proptest.FleetReport {
	const (
		members   = 3
		loadUntil = 60 * time.Second
		horizon   = 300 * time.Second
	)
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed))
	fleet := cluster.NewFleet[workload.LLMRequest](cluster.KeyAffinity)
	servers := make([]*llmserve.Server, members)
	targets := make([]chaos.Killable, members)
	for i := range servers {
		servers[i] = llmserve.New(s, memsim.NewHeap(16<<30), llmserve.DefaultConfig())
		servers[i].SetID(i)
		servers[i].SetMaxBatchedTokens(8000)
		sv := servers[i]
		// An evacuated inference request loses its decode progress and
		// retries on another member keyed by its session.
		fleet.Add(sv, 1, sv.Offer)
		targets[i] = sv
	}
	trace := newRouteTrace(fleet)

	plan := chaos.Plan{Name: "fleet-prop", Seed: seed, Faults: []chaos.Fault{
		chaos.InstanceLoss{At: 30 * time.Second, Targets: targets, Victim: -1},
		chaos.InstanceRestart{At: 50 * time.Second, Targets: targets, Victim: -1},
	}}
	plan.Arm(s, nil)

	// Poisson arrivals over 64 sessions (the affinity keys).
	gen := workload.NewLLMGen(seed+1, workload.LLMPhase{
		RequestsPerSec: 12, PromptMean: 120, OutputMean: 40,
	})
	var schedule func()
	schedule = func() {
		if s.Now() >= loadUntil {
			return
		}
		s.After(gen.NextInterarrival(), func() {
			if s.Now() < loadUntil {
				req := gen.NextRequest()
				key := uint64(rng.Intn(64))
				fleet.Dispatch(cluster.Request{Key: key, Cost: float64(req.Tokens())}, req)
			}
			schedule()
		})
	}
	schedule()
	// Evacuation: requests displaced by the loss re-enter under a synthetic
	// session key derived from their shape (the original key is not carried
	// by the substrate's request type).
	for i := range servers {
		sv := servers[i]
		sv.OnEvacuate = func(req workload.LLMRequest) {
			key := uint64(req.Prompt*131 + req.Output)
			fleet.Redispatch(cluster.Request{Key: key, Cost: float64(req.Tokens())}, req)
		}
	}
	s.RunUntil(horizon)

	var completed, pending int64
	for _, sv := range servers {
		completed += sv.Completed()
		pending += int64(sv.Load())
	}
	r := proptest.FleetReport{
		Substrate: "LLM", Policy: fleet.Router().Policy().String(),
		Seed: seed, Horizon: horizon, Members: members, Lost: 1,
		Submitted: fleet.Submitted(), Completed: completed,
		Refused: fleet.Refused(), Pending: pending,
		RouteFingerprint: trace.fingerprint(),
	}
	r.ComputeFingerprint()
	return r
}

// runFleetPropertyLLMPrefix is the LLM fleet under prefix-affinity routing:
// requests carry one of 16 prompt-template identities, and placement follows
// the template, not the session. Same loss/restart plan and oracles as the
// key-affinity harness — in particular AffinityStable now also pins the
// prefix policy's rendezvous stability across replays.
func runFleetPropertyLLMPrefix(seed int64) proptest.FleetReport {
	const (
		members   = 3
		templates = 16
		loadUntil = 60 * time.Second
		horizon   = 300 * time.Second
	)
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed))
	fleet := cluster.NewFleet[workload.LLMRequest](cluster.PrefixAffinity)
	servers := make([]*llmserve.Server, members)
	targets := make([]chaos.Killable, members)
	for i := range servers {
		servers[i] = llmserve.New(s, memsim.NewHeap(16<<30), llmserve.DefaultConfig())
		servers[i].SetID(i)
		servers[i].SetMaxBatchedTokens(8000)
		sv := servers[i]
		fleet.Add(sv, 1, sv.Offer)
		targets[i] = sv
	}
	trace := newRouteTrace(fleet)

	plan := chaos.Plan{Name: "fleet-prop", Seed: seed, Faults: []chaos.Fault{
		chaos.InstanceLoss{At: 30 * time.Second, Targets: targets, Victim: -1},
		chaos.InstanceRestart{At: 50 * time.Second, Targets: targets, Victim: -1},
	}}
	plan.Arm(s, nil)

	gen := workload.NewLLMGen(seed+1, workload.LLMPhase{
		RequestsPerSec: 12, PromptMean: 120, OutputMean: 40,
	})
	var schedule func()
	schedule = func() {
		if s.Now() >= loadUntil {
			return
		}
		s.After(gen.NextInterarrival(), func() {
			if s.Now() < loadUntil {
				req := gen.NextRequest()
				fleet.Dispatch(cluster.Request{
					Key:    uint64(rng.Intn(64)),
					Prefix: uint64(rng.Intn(templates)),
					Cost:   float64(req.Tokens()),
				}, req)
			}
			schedule()
		})
	}
	schedule()
	// Evacuated requests re-enter under a template identity derived from
	// their shape (the substrate's request type carries neither key nor
	// prefix).
	for i := range servers {
		sv := servers[i]
		sv.OnEvacuate = func(req workload.LLMRequest) {
			fleet.Redispatch(cluster.Request{
				Key:    uint64(req.Prompt*131 + req.Output),
				Prefix: uint64(req.Prompt % templates),
				Cost:   float64(req.Tokens()),
			}, req)
		}
	}
	s.RunUntil(horizon)

	var completed, pending int64
	for _, sv := range servers {
		completed += sv.Completed()
		pending += int64(sv.Load())
	}
	r := proptest.FleetReport{
		Substrate: "LLM-PREFIX", Policy: fleet.Router().Policy().String(),
		Seed: seed, Horizon: horizon, Members: members, Lost: 1,
		Submitted: fleet.Submitted(), Completed: completed,
		Refused: fleet.Refused(), Pending: pending,
		RouteFingerprint: trace.fingerprint(),
	}
	r.ComputeFingerprint()
	return r
}

func runFleetPropertyKV(seed int64) proptest.FleetReport {
	const (
		members   = 3
		loadUntil = 100 * time.Second
		horizon   = 150 * time.Second
	)
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed))
	fleet := cluster.NewFleet[workload.Op](cluster.KeyAffinity)
	stores := make([]*kvstore.Memstore, members)
	targets := make([]chaos.Killable, members)
	for i := range stores {
		stores[i] = kvstore.NewMemstore(s, memsim.NewHeap(1<<30), kvstore.DefaultMemstoreConfig(), 0.35)
		stores[i].SetID(i)
		st := stores[i]
		fleet.Add(st, 1, func(op workload.Op) bool { return st.Write(op.Bytes) })
		targets[i] = st
	}
	trace := newRouteTrace(fleet)

	plan := chaos.Plan{Name: "fleet-prop", Seed: seed, Faults: []chaos.Fault{
		chaos.InstanceLoss{At: 40 * time.Second, Targets: targets, Victim: -1},
		chaos.InstanceRestart{At: 70 * time.Second, Targets: targets, Victim: -1},
	}}
	plan.Arm(s, nil)

	gen := workload.NewYCSB(seed+1, 128, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb, OpsPerSec: 20})
	var schedule func()
	schedule = func() {
		if s.Now() >= loadUntil {
			return
		}
		s.After(gen.NextInterarrival(), func() {
			if s.Now() < loadUntil {
				op := gen.NextOp()
				fleet.Dispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
			}
			schedule()
		})
	}
	schedule()
	_ = rng
	s.RunUntil(horizon)

	var completed int64
	for _, st := range stores {
		completed += st.Writes()
	}
	// Writes are synchronous: nothing is ever pending at the horizon.
	r := proptest.FleetReport{
		Substrate: "KV", Policy: fleet.Router().Policy().String(),
		Seed: seed, Horizon: horizon, Members: members, Lost: 1,
		Submitted: fleet.Submitted(), Completed: completed,
		Refused: fleet.Refused(), Pending: 0,
		RouteFingerprint: trace.fingerprint(),
	}
	r.ComputeFingerprint()
	return r
}
