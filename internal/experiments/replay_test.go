package experiments

import (
	"bytes"
	"strings"
	"testing"

	"smartconf/internal/declog"
	"smartconf/internal/proptest"
)

// Decision logging must be observation-only: a logged chaos run follows the
// exact trajectory of an unlogged one.
func TestLoggedChaosRunMatchesUnlogged(t *testing.T) {
	plain := RunChaosProperty("HB2149", 3)
	logged, env := RunChaosPropertyLogged("HB2149", 3)
	if err := proptest.Replays(&plain, &logged); err != nil {
		t.Fatalf("logging changed the trajectory: %v", err)
	}
	if env.Total == 0 {
		t.Fatal("logged run captured no decisions")
	}
	if env.Fingerprint != logged.Fingerprint {
		t.Errorf("envelope fingerprint %q != report fingerprint %q", env.Fingerprint, logged.Fingerprint)
	}
}

// Replaying an envelope with zero perturbations must reproduce the logged
// run byte-identically — the tool-level acceptance criterion, exercised here
// at the library level on one substrate (the property sweep covers all five).
func TestReplayEnvelopeZeroPerturbationIsByteIdentical(t *testing.T) {
	_, env := RunChaosPropertyLogged("HB3813", 2)
	rep2, env2, err := ReplayEnvelope(env, declog.Perturb{})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := declog.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := declog.Encode(env2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("zero-perturbation replay differs:\n%s\n%s", b1, b2)
	}
	if rep2.Fingerprint != env.Fingerprint {
		t.Errorf("replay fingerprint %q != logged %q", rep2.Fingerprint, env.Fingerprint)
	}
}

func TestReplayEnvelopeRejectsUnknownCoordinates(t *testing.T) {
	env := declog.Envelope{Format: declog.FormatVersion, Substrate: "NOPE", Plan: "gen", Capacity: 1}
	if _, _, err := ReplayEnvelope(env, declog.Perturb{}); err == nil {
		t.Error("unknown substrate accepted")
	}
	env = declog.Envelope{Format: declog.FormatVersion, Substrate: "HB3813", Plan: "nope", Capacity: 1}
	if _, _, err := ReplayEnvelope(env, declog.Perturb{}); err == nil {
		t.Error("unknown plan accepted")
	}
	env = declog.Envelope{Format: declog.FormatVersion, Substrate: "HB3813", Plan: "crash-restart", Capacity: 1}
	if err := ValidateEnvelopeRun(env); err != nil {
		t.Errorf("catalog fault rejected: %v", err)
	}
}

// Regression for the crash-resynthesis bugfix: a ControllerCrash plan must
// stamp a new goal epoch, and the rebuilt controller's periods restart at 1.
// LLMKV's 15 s sense cadence keeps the whole run inside the capture ring.
func TestCrashRestartStampsNewEpoch(t *testing.T) {
	_, env := RunChaosLogged("LLMKV", "crash-restart", 1, declog.Perturb{})
	if env.Epoch < 1 {
		t.Fatalf("envelope epoch %d after crash-restart, want >= 1", env.Epoch)
	}
	var pre, post int
	sawRestart := false
	for i, r := range env.Records {
		switch {
		case r.Epoch == 0:
			pre++
		default:
			post++
			if !sawRestart {
				sawRestart = true
				if r.Period != 1 {
					t.Errorf("first post-crash record (index %d) has period %d, want 1", i, r.Period)
				}
			}
		}
	}
	if pre == 0 || post == 0 {
		t.Fatalf("want decisions in both generations, got %d pre-crash, %d post-crash", pre, post)
	}
}

// A perturbed cell is memoized under a key that includes the perturbation:
// repeated builds replay from the cache with the exact fingerprint, and the
// perturbation genuinely changes the run.
func TestCounterfactualChaosCachedAndDistinct(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	p := declog.Perturb{SetPole: true, Pole: 0.95, FromPeriod: 2}
	first := CounterfactualChaos("HB3813", "gen", 3, p)
	base := RunChaosProperty("HB3813", 3)
	_, hits0 := RunCacheStats()
	again := CounterfactualChaos("HB3813", "gen", 3, p)
	if err := proptest.Replays(&first, &again); err != nil {
		t.Fatalf("cached counterfactual diverges: %v", err)
	}
	if _, hits := RunCacheStats(); hits <= hits0 {
		t.Errorf("second counterfactual missed the cache: hits %d -> %d", hits0, hits)
	}
	if first.Fingerprint == base.Fingerprint {
		t.Error("pole perturbation left the trajectory unchanged")
	}
}

func TestRenderCounterfactualsDeterministic(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	_, env := RunChaosLogged("HB2149", "sensor-noise", ChaosSeed, declog.Perturb{})
	base := RunChaosCell(ChaosCell{Substrate: "HB2149", Fault: "sensor-noise", Seed: ChaosSeed})
	perturbs := []declog.Perturb{
		{SetPole: true, Pole: 0.9},
		{SetPole: true, Pole: 0.5, FromPeriod: 10},
	}
	rows, err := RunCounterfactuals(env, perturbs)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderCounterfactuals(env, base, rows)
	if !strings.Contains(out, "pole=0.9") || !strings.Contains(out, "artifact fingerprint") {
		t.Fatalf("artifact missing expected rows:\n%s", out)
	}
	rows2, err := RunCounterfactuals(env, perturbs)
	if err != nil {
		t.Fatal(err)
	}
	if out2 := RenderCounterfactuals(env, base, rows2); out2 != out {
		t.Fatalf("artifact not deterministic:\n%s\n%s", out, out2)
	}
}

// The shadow-logged scale runner must not disturb the raw-speed trajectory:
// its deterministic result equals the plain runner's, while decisions land
// in the ring.
func TestLoggedScaleRunnerIsShadow(t *testing.T) {
	for _, sub := range ScaleSubstrates {
		log := declog.New(256)
		plain := NewScaleRunner(sub)
		logged := NewLoggedScaleRunner(sub, log)
		plain.RunTo(20_000)
		logged.RunTo(20_000)
		if a, b := plain.Result(), logged.Result(); a != b {
			t.Errorf("%s: logged result %+v != plain %+v", sub, b, a)
		}
		if log.Total() == 0 {
			t.Errorf("%s: shadow controller logged no decisions", sub)
		}
	}
}
