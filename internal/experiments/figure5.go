package experiments

import (
	"fmt"
	"sort"
	"strings"

	"smartconf/internal/experiments/engine"
)

// Figure 5: trade-off performance comparison. For each of the six issues the
// harness runs SmartConf plus four static baselines — the best static
// setting found by exhaustively sweeping the grid ("static-optimal", the
// strongest baseline: it is chosen in hindsight over the full two-phase
// run), a representative suboptimal choice, and the pre-patch and patched
// default settings. Bars are normalized on static-optimal; baselines that
// violate the constraint are marked with an X like the paper's figure.

// Figure5Bar is one bar of the figure.
type Figure5Bar struct {
	Label         string
	Setting       float64
	Result        Result
	Speedup       float64 // trade-off relative to static-optimal (>1 = better)
	ConstraintMet bool
}

// Figure5Row holds one issue's bars.
type Figure5Row struct {
	Issue   string
	Bars    []Figure5Bar
	Optimal Result
}

// BuildFigure5 runs the full comparison for every scenario, fanning the six
// independent rows across the engine's worker pool.
func BuildFigure5() []Figure5Row {
	return engine.MapSlice(Scenarios(), BuildFigure5Row)
}

// BuildFigure5Row runs the comparison for one scenario. All runs the row
// needs — the static sweep, SmartConf, and the three representative statics —
// are independent, so they fan out together; the memoized run cache
// deduplicates representative settings that also appear in the grid.
func BuildFigure5Row(sc Scenario) Figure5Row {
	policies := make([]Policy, 0, len(sc.StaticGrid)+4)
	for _, v := range sc.StaticGrid {
		policies = append(policies, Static(v))
	}
	policies = append(policies, SmartConf(),
		Static(sc.NonOptimal), Static(sc.PatchDefault), Static(sc.BuggyDefault))
	results := engine.MapSlice(policies, func(p Policy) Result { return runCached(sc, p) })

	// Exhaustive sweep for the best static setting that satisfies the
	// constraint across both phases (§6.3's methodology). Selection walks the
	// grid in its declared order, so ties resolve exactly as the sequential
	// sweep resolved them.
	statics := make(map[float64]Result, len(sc.StaticGrid))
	var optimal *Result
	for i, v := range sc.StaticGrid {
		r := results[i]
		statics[v] = r
		if r.ConstraintMet && (optimal == nil || r.BetterThan(*optimal)) {
			c := r
			optimal = &c
		}
	}
	if optimal == nil {
		// No static setting satisfies the constraint: normalize on the
		// least-bad one so the figure still renders.
		values := append([]float64(nil), sc.StaticGrid...)
		sort.Float64s(values)
		c := statics[values[0]]
		for _, v := range values[1:] {
			if statics[v].BetterThan(c) {
				c = statics[v]
			}
		}
		optimal = &c
	}

	n := len(sc.StaticGrid)
	smart, nonOpt, patch, buggy := results[n], results[n+1], results[n+2], results[n+3]

	row := Figure5Row{Issue: sc.ID, Optimal: *optimal}
	add := func(label string, setting float64, r Result) {
		row.Bars = append(row.Bars, Figure5Bar{
			Label:         label,
			Setting:       setting,
			Result:        r,
			Speedup:       r.Speedup(*optimal),
			ConstraintMet: r.ConstraintMet,
		})
	}
	add("SmartConf", 0, smart)
	add("Static-Optimal", optimal.Policy.Static, *optimal)
	add("Static-Nonoptimal", sc.NonOptimal, nonOpt)
	add("Static-Patch-Default", sc.PatchDefault, patch)
	add("Static-Buggy-Default", sc.BuggyDefault, buggy)
	return row
}

// RenderFigure5 formats the comparison as a table, with "X" marking bars
// that fail the constraint (the paper's red crosses).
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5: trade-off speedup normalized on the best static configuration")
	fmt.Fprintln(&b, "(X = fails the performance constraint; setting shown per bar)")
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-8s %-22s %14s %9s %5s\n", "Issue", "Policy", "Setting", "Speedup", "OK?")
	for _, row := range rows {
		for _, bar := range row.Bars {
			mark := "ok"
			if !bar.ConstraintMet {
				mark = "X"
			}
			setting := "-"
			if bar.Label != "SmartConf" {
				setting = humanSetting(bar.Setting)
			}
			fmt.Fprintf(&b, "%-8s %-22s %14s %8.2fx %5s\n",
				row.Issue, bar.Label, setting, bar.Speedup, mark)
		}
		fmt.Fprintf(&b, "%-8s (trade-off: %s)\n\n", "", row.Optimal.TradeoffName)
	}
	return b.String()
}

func humanSetting(v float64) string {
	switch {
	case v >= 1<<40:
		return "unbounded"
	case v >= 1<<20 && v == float64(int64(v)) && int64(v)%(1<<20) == 0:
		return fmt.Sprintf("%dMB", int64(v)>>20)
	case v >= 10000:
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
