package experiments

import (
	"fmt"
	"strings"
	"time"

	"smartconf/internal/dfs"
	"smartconf/internal/kvstore"
	"smartconf/internal/llmserve"
	"smartconf/internal/mapred"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// The raw-speed campaign: push a large fixed request count through each of
// the five substrates under steady load (zipfian keys, Poisson arrivals, no
// chaos, no controllers) and report what the engine did. Everything printed
// to stdout is a pure function of the seed and the request count — virtual
// time, event counts, queue watermarks — so -scale output is byte-identical
// at any worker count and a warm -cachedir rebuild executes zero
// simulations. Wall-clock speed and allocation counts are measured by the
// caller (cmd/smartconf-bench, via internal/benchgate.Measure) and reported
// on stderr, off the deterministic artifact.

// ScaleResult is the deterministic outcome of one raw-speed run.
type ScaleResult struct {
	Substrate string
	// Requests is the number of requests offered (writes for the stores,
	// map tasks for MapReduce); Completed is how many finished inside the
	// run's virtual horizon (in-flight work at the last offer is not
	// drained).
	Requests  int64
	Completed int64
	// VirtualTime is the simulated clock at the end of the run.
	VirtualTime time.Duration
	// Events is the number of simulation events fired; EventsPerRequest is
	// the engine-efficiency ratio the batch-dispatch work drives down.
	Events uint64
	// PeakPending is the event queue's high watermark — the measured basis
	// for each runner's NewWithCapacity pre-sizing hint.
	PeakPending int
}

// EventsPerRequest returns fired events per offered request.
func (r ScaleResult) EventsPerRequest() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Events) / float64(r.Requests)
}

// VirtualRate returns offered requests per virtual second.
func (r ScaleResult) VirtualRate() float64 {
	if r.VirtualTime <= 0 {
		return 0
	}
	return float64(r.Requests) / r.VirtualTime.Seconds()
}

// A ScaleRunner drives one substrate under its steady scale workload,
// resumably: RunTo(n) advances until n total requests have been offered, so
// a caller can warm the free lists with a prefix of the run and then measure
// allocations over a later window of the same run.
type ScaleRunner interface {
	RunTo(requests int64)
	Result() ScaleResult
}

// ScaleSubstrates lists the campaign's substrates in report order: the five
// single-instance engines, then the two 256-node fleets (fleetscale.go).
var ScaleSubstrates = []string{"rpc", "llm", "kv", "dfs", "mapred", "fleetrpc", "fleetllm"}

// scaleSeed fixes every scale workload's rng. One seed is enough: each
// runner owns a private generator.
const scaleSeed = 97

// scaleQueueHint pre-sizes every runner's event queue. The PeakPending
// watermarks of recorded 10M-request runs stay under 16 on all five
// substrates (same-instant cascades ride the batch ring, and in-flight
// completion timers are bounded by worker counts), so 64 slots cover steady
// state without ever growing the heap array.
const scaleQueueHint = 64

// NewScaleRunner returns the named substrate's runner. Unknown names panic:
// the set is fixed by ScaleSubstrates.
func NewScaleRunner(substrate string) ScaleRunner {
	switch substrate {
	case "rpc":
		return newRPCScaleRunner()
	case "llm":
		return newLLMScaleRunner()
	case "kv":
		return newKVScaleRunner()
	case "dfs":
		return newDFSScaleRunner()
	case "mapred":
		return newMapredScaleRunner()
	case "fleetrpc":
		return newFleetRPCScaleRunner()
	case "fleetllm":
		return newFleetLLMScaleRunner()
	}
	panic(fmt.Sprintf("experiments: unknown scale substrate %q", substrate))
}

// RunScale executes (or recalls) the substrate's raw-speed run at the given
// request count. Results memoize like every other run, so repeated renders
// and warm -cachedir rebuilds skip the simulation.
func RunScale(substrate string, requests int64) ScaleResult {
	return memoKeyed("scale-"+substrate, "raw", fmt.Sprintf("n=%d", requests), scaleSeed,
		func() ScaleResult {
			r := NewScaleRunner(substrate)
			r.RunTo(requests)
			return r.Result()
		})
}

// RenderScale renders the campaign table for the given per-substrate
// results.
func RenderScale(results []ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %14s %14s %14s\n",
		"substrate", "requests", "completed", "events", "events/req", "peak pending", "virtual time", "virtual req/s")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8s %12d %12d %12d %12.3f %14d %14s %14.0f\n",
			r.Substrate, r.Requests, r.Completed, r.Events, r.EventsPerRequest(),
			r.PeakPending, r.VirtualTime.Round(time.Second), r.VirtualRate())
	}
	return b.String()
}

// ---- rpc ----

// rpcScaleRunner drives the HB3813 RPC server: 4 KB zipfian ops at 40k/s
// offered against ~64k/s of service capacity, so the queue stays busy but
// never saturates.
type rpcScaleRunner struct {
	s       *sim.Simulation
	sv      *rpcserver.Server
	gen     *workload.YCSB
	now     time.Duration
	offered int64
}

func newRPCScaleRunner() *rpcScaleRunner {
	s := sim.NewWithCapacity(scaleQueueHint)
	cfg := rpcserver.Config{
		Workers:            8,
		ServiceBytesPerSec: 512 << 20,
		ServiceBaseTime:    2 * time.Millisecond,
		MaxBatch:           16,
		ReadResponseFactor: 1.0,
		WriteAckBytes:      256,
		DrainBytesPerSec:   1 << 30,
		BaseHeapBytes:      100 << 20,
		ResponseRetry:      20 * time.Millisecond,
	}
	sv := rpcserver.New(s, memsim.NewHeap(8<<30), cfg)
	sv.SetMaxQueue(1024)
	gen := workload.NewYCSB(scaleSeed, 1<<20, workload.YCSBPhase{
		Name: "scale", WriteRatio: 0.5, RequestBytes: 4 << 10, OpsPerSec: 40_000,
	})
	return &rpcScaleRunner{s: s, sv: sv, gen: gen}
}

func (r *rpcScaleRunner) RunTo(n int64) {
	for r.offered < n {
		r.now += r.gen.NextInterarrival()
		r.s.RunUntil(r.now)
		r.sv.Offer(r.gen.NextOp())
		r.offered++
	}
}

func (r *rpcScaleRunner) Result() ScaleResult {
	return ScaleResult{
		Substrate:   "rpc",
		Requests:    r.offered,
		Completed:   r.sv.Completed(),
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}

// ---- llm ----

// llmScaleRunner drives the inference server with a short-token chat mix
// (8-token prompts, 4-token outputs) and fast steps, so request turnover —
// not decode length — dominates.
type llmScaleRunner struct {
	s       *sim.Simulation
	sv      *llmserve.Server
	gen     *workload.LLMGen
	now     time.Duration
	offered int64
}

func newLLMScaleRunner() *llmScaleRunner {
	s := sim.NewWithCapacity(scaleQueueHint)
	cfg := llmserve.Config{
		KVBytesPerToken:      128 << 10,
		ScratchBytesPerToken: 32 << 10,
		BaseHeapBytes:        6 << 30,
		StepBase:             2 * time.Millisecond,
		StepPerToken:         5 * time.Microsecond,
		PrefillChunk:         512,
		WaitingLimit:         4096,
	}
	sv := llmserve.New(s, memsim.NewHeap(16<<30), cfg)
	sv.SetMaxBatchedTokens(1 << 20)
	gen := workload.NewLLMGen(scaleSeed, workload.LLMPhase{
		Name: "scale", RequestsPerSec: 2000, PromptMean: 8, OutputMean: 4,
	})
	return &llmScaleRunner{s: s, sv: sv, gen: gen}
}

func (r *llmScaleRunner) RunTo(n int64) {
	for r.offered < n {
		r.now += r.gen.NextInterarrival()
		r.s.RunUntil(r.now)
		r.sv.Offer(r.gen.NextRequest())
		r.offered++
	}
}

func (r *llmScaleRunner) Result() ScaleResult {
	return ScaleResult{
		Substrate:   "llm",
		Requests:    r.offered,
		Completed:   r.sv.Completed(),
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}

// ---- kv ----

// kvScaleRunner drives the CA6059 memtable store write-only: 32 KB writes at
// 10k/s against a 64 MB threshold, flushing every couple of thousand writes.
type kvScaleRunner struct {
	s       *sim.Simulation
	st      *kvstore.MemtableStore
	gen     *workload.YCSB
	now     time.Duration
	offered int64
}

func newKVScaleRunner() *kvScaleRunner {
	s := sim.NewWithCapacity(scaleQueueHint)
	cfg := kvstore.MemtableConfig{
		FlushBytesPerSec:   512 << 20,
		FlushFixedOverhead: 100 * time.Millisecond,
		WriteBaseLatency:   2 * time.Millisecond,
		FlushPenalty:       8 * time.Millisecond,
		BaseHeapBytes:      64 << 20,
	}
	st := kvstore.NewMemtableStore(s, memsim.NewHeap(64<<30), cfg, 64<<20)
	gen := workload.NewYCSB(scaleSeed, 1<<20, workload.YCSBPhase{
		Name: "scale", WriteRatio: 1, RequestBytes: 32 << 10, OpsPerSec: 10_000,
	})
	return &kvScaleRunner{s: s, st: st, gen: gen}
}

func (r *kvScaleRunner) RunTo(n int64) {
	for r.offered < n {
		r.now += r.gen.NextInterarrival()
		r.s.RunUntil(r.now)
		r.st.Write(r.gen.NextOp().Bytes)
		r.offered++
	}
}

func (r *kvScaleRunner) Result() ScaleResult {
	return ScaleResult{
		Substrate:   "kv",
		Requests:    r.offered,
		Completed:   r.st.Writes(),
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}

// ---- dfs ----

// dfsScaleRunner drives the HD4995 namenode: a steady writer stream with a
// full content summary every 200k files, so the lock-hold path stays
// exercised without dominating.
type dfsScaleRunner struct {
	s       *sim.Simulation
	nn      *dfs.NameNode
	gen     *workload.YCSB
	now     time.Duration
	offered int64
}

func newDFSScaleRunner() *dfsScaleRunner {
	s := sim.NewWithCapacity(scaleQueueHint)
	cfg := dfs.Config{
		PerFileCost:       200 * time.Microsecond,
		ReacquireOverhead: 50 * time.Millisecond,
		InitialFiles:      100_000,
	}
	nn := dfs.New(s, cfg, 30_000)
	// The generator only supplies interarrival gaps (writes carry no
	// payload), at the same offered rate as the kv runner.
	gen := workload.NewYCSB(scaleSeed, 1<<20, workload.YCSBPhase{
		Name: "scale", WriteRatio: 1, RequestBytes: 1, OpsPerSec: 10_000,
	})
	return &dfsScaleRunner{s: s, nn: nn, gen: gen}
}

func (r *dfsScaleRunner) RunTo(n int64) {
	for r.offered < n {
		r.now += r.gen.NextInterarrival()
		r.s.RunUntil(r.now)
		r.nn.Write()
		r.offered++
		if r.offered%200_000 == 0 {
			r.nn.Du(nil)
		}
	}
}

func (r *dfsScaleRunner) Result() ScaleResult {
	return ScaleResult{
		Substrate:   "dfs",
		Requests:    r.offered,
		Completed:   r.nn.WritesDone(),
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}

// ---- mapred ----

// mapredScaleRunner drives the MR2820 cluster with back-to-back WordCount
// jobs; a "request" is one map task (the per-request unit every other
// substrate counts), 256 tasks per job.
type mapredScaleRunner struct {
	s      *sim.Simulation
	c      *mapred.Cluster
	job    workload.WordCountJob
	doneFn func(mapred.JobResult)
	tasks  int64
	failed int64
}

func newMapredScaleRunner() *mapredScaleRunner {
	s := sim.NewWithCapacity(scaleQueueHint)
	cfg := mapred.DefaultConfig()
	c := mapred.New(s, cfg, 0)
	r := &mapredScaleRunner{
		s: s, c: c,
		job: workload.WordCountJob{
			Name: "scale", InputBytes: 8 << 30, SplitBytes: 32 << 20,
			Parallelism: 4, SpillRatio: 1.25,
		},
	}
	r.doneFn = r.jobDone // bound once: a method value per job would allocate
	return r
}

func (r *mapredScaleRunner) jobDone(res mapred.JobResult) {
	if res.Failed {
		r.failed++
	}
}

func (r *mapredScaleRunner) RunTo(n int64) {
	for r.tasks < n {
		r.c.RunJob(r.job, r.doneFn)
		r.s.Run() // sequential jobs: drain this one completely
		r.tasks += int64(r.job.MapTasks())
	}
}

func (r *mapredScaleRunner) Result() ScaleResult {
	return ScaleResult{
		Substrate:   "mapred",
		Requests:    r.tasks,
		Completed:   r.tasks - r.failed*int64(r.job.MapTasks()),
		VirtualTime: r.s.Now(),
		Events:      r.s.Events(),
		PeakPending: r.s.MaxPending(),
	}
}
