package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// HB6728: ipc.server.response.queue.maxsize bounds the RPC response queue
// in bytes. Read responses (2 MB values fetched by tiny requests) sit on the
// heap until slow clients receive them, so the bound indirectly caps memory
// (hard OOM constraint); but each queued response is a parallel client
// transfer, so a deeper response queue drains faster and completes more
// reads (the trade-off metric). When the queue is full, the responder sheds
// responses and clients retry — rejected work is lost throughput.
//
// This is one of the paper's two goal-change scenarios: mid-run, the user
// tightens the memory goal from 495 MB to 400 MB through the setGoal API,
// which no static setting can follow without being conservative everywhere.
//
// Paper flags: N-N-Y (always-on, indirect, hard).

const (
	hb6728RunTime    = 700 * time.Second
	hb6728PhaseShift = 350 * time.Second
	hb6728BurstSize  = 300
	hb6728BurstEvery = 12500 * time.Millisecond // 24 ops/s offered
	hb6728Spacing    = 20 * time.Millisecond

	hb6728Goal1 = rpcMemoryGoal // phase-1 memory goal (495 MB)
	hb6728Goal2 = 400 * mb      // phase-2: the user tightens the budget
	// hb6728Grace excludes the controller settling window after the goal
	// change from constraint evaluation (standard in control evaluation;
	// applied to every policy equally).
	hb6728Grace = 30 * time.Second
)

func hb6728Config() rpcserver.Config {
	cfg := rpcConfig()
	cfg.ReadResponseBytes = 2 * mb
	cfg.DrainBytesPerSec = 40 * mb       // aggregate client bandwidth cap
	cfg.PerConnDrainBytesPerSec = mb / 2 // 0.5 MB/s per client connection
	cfg.DropOnRespFull = true            // shed responses instead of blocking workers
	return cfg
}

func hb6728Phases() []workload.YCSBPhase {
	return []workload.YCSBPhase{
		// Table 6: phase-1 "0.0W, 2MB"; phase-2 "0.3W, 2MB". Reads carry
		// tiny request payloads; the 2 MB rides on the response (and on
		// write requests in phase 2).
		{Name: "phase-1", Duration: hb6728PhaseShift, WriteRatio: 0.0, RequestBytes: 4 << 10},
		{Name: "phase-2", WriteRatio: 0.3, RequestBytes: 4 << 10},
	}
}

// hb6728Op converts a generated op: writes carry 2 MB payloads, reads a tiny
// request (their 2 MB is the response, fixed by ReadResponseBytes).
func hb6728Op(op workload.Op) workload.Op {
	if op.Write {
		op.Bytes = 2 * mb
	}
	return op
}

// ProfileHB6728 profiles heap consumption against the pinned response-queue
// byte bound under the profiling workload (YCSB 0.0W, 2 MB).
func ProfileHB6728() core.Profile {
	return memoProfile("HB6728", func() core.Profile {
		settings := []float64{32 * float64(mb), 64 * float64(mb), 96 * float64(mb), 128 * float64(mb)}
		return profileSweep(settings, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(6728))
			heap := memsim.NewHeap(rpcHeapCapacity)
			sv := rpcserver.New(s, heap, hb6728Config())
			sv.SetMaxQueue(1000)
			sv.SetMaxRespBytes(int64(setting))
			heapNoise(s, heap, rng, rpcNoiseMax, hb3813ProfileStep)

			// Time-driven sensor sampling (1 every 6 s): responds cluster inside
			// bursts, so sampling there would systematically miss the idle-heap
			// troughs and underestimate the system's variability (λ).
			taken := 0
			s.Every(3*time.Second, 6*time.Second, func() bool {
				if taken < 10 && !heap.OOM() {
					record(setting, float64(heap.Used()))
					taken++
				}
				return taken < 10
			})
			w := &rpcWorkload{
				gen:        workload.NewYCSB(6728, 1000, workload.YCSBPhase{WriteRatio: 0, RequestBytes: 4 << 10}),
				burstSize:  hb6728BurstSize,
				burstEvery: hb6728BurstEvery,
				spacing:    hb6728Spacing,
				phases:     []workload.YCSBPhase{{Name: "profiling", WriteRatio: 0, RequestBytes: 4 << 10}},
			}
			w.run(s, hb3813ProfileStep, rng, func(op workload.Op) { sv.Offer(hb6728Op(op)) })
			s.RunUntil(hb3813ProfileStep)
		})
	})
}

// RunHB6728 executes the two-phase evaluation under the given policy.
func RunHB6728(p Policy) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(6728))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, hb6728Config())
	sv.SetMaxQueue(1000) // the request queue is not the knob under study here

	var setGoal func(float64)
	switch p.Kind {
	case StaticPolicy:
		sv.SetMaxRespBytes(int64(p.Static))
	case SmartConfPolicy:
		profile := ProfileHB6728()
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "ipc.server.response.queue.maxsize",
			Metric:  "memory_consumption",
			Goal:    float64(rpcMemoryGoal),
			Hard:    true,
			Initial: 0,
			Min:     0, Max: 1e9,
		}, publicProfile(profile), nil)
		if err != nil {
			panic(fmt.Sprintf("HB6728 synthesis: %v", err))
		}
		sv.BeforeRespond = func() {
			ic.SetPerf(float64(heap.Used()), float64(sv.RespBytes())) //sc:HB6728:sensor
			sv.SetMaxRespBytes(int64(ic.Value()))                     //sc:HB6728:invoke
		}
		setGoal = ic.SetGoal //sc:HB6728:invoke
	case SinglePolePolicy, NoVirtualGoalPolicy:
		ctrl, err := ablationController(p.Kind, ProfileHB6728(), float64(rpcMemoryGoal), p.FixedPole)
		if err != nil {
			panic(fmt.Sprintf("HB6728 ablation synthesis: %v", err))
		}
		sv.BeforeRespond = func() {
			ctrl.SetConf(float64(sv.RespBytes()))
			sv.SetMaxRespBytes(int64(ctrl.Update(float64(heap.Used()))))
		}
		setGoal = func(g float64) {
			if p.Kind == SinglePolePolicy {
				g = core.VirtualGoal(g, ProfileHB6728().Lambda(), core.UpperBound)
			}
			ctrl.SetGoal(g)
		}
	}

	heapNoise(s, heap, rng, rpcNoiseMax, hb6728RunTime)
	probe := startRPCProbe(s, heap, sv, func() float64 { return float64(sv.MaxRespBytes()) },
		"response.queue.maxsize", hb6728RunTime)

	// Mid-run the user tightens the memory goal (the paper's setGoal API).
	s.At(hb6728PhaseShift, func() {
		if setGoal != nil {
			setGoal(float64(hb6728Goal2))
		}
	})

	w := &rpcWorkload{
		gen:        workload.NewYCSB(6729, 1000, hb6728Phases()[0]),
		burstSize:  hb6728BurstSize,
		burstEvery: hb6728BurstEvery,
		spacing:    hb6728Spacing,
		phases:     hb6728Phases(),
	}
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	w.run(s, hb6728RunTime, rng, func(op workload.Op) { sv.Offer(hb6728Op(op)) })
	s.RunUntil(hb6728RunTime)

	res := Result{
		Issue:          "HB6728",
		Policy:         p,
		TradeoffName:   "completed ops/s",
		HigherIsBetter: true,
		Tradeoff:       float64(sv.Completed()) / hb6728RunTime.Seconds(),
		Series:         []Series{probe.mem, probe.knob, probe.throughput, probe.completed},
	}
	goalAt := func(t time.Duration) float64 {
		switch {
		case t < hb6728PhaseShift:
			return float64(hb6728Goal1)
		case t < hb6728PhaseShift+hb6728Grace:
			return float64(hb6728Goal1) // settling window after the goal change
		default:
			return float64(hb6728Goal2)
		}
	}
	met, at, worst := evalUpperBound(probe.mem, goalAt)
	switch {
	case heap.OOM():
		res.ConstraintMet = false
		res.ViolatedAt = oomAt
		res.Violation = "OOM"
	case !met:
		res.ConstraintMet = false
		res.ViolatedAt = at
		res.Violation = fmt.Sprintf("memory %.0fMB > goal %.0fMB", worst/float64(mb), goalAt(at)/float64(mb))
	default:
		res.ConstraintMet = true
	}
	return res
}

// HB6728Scenario returns the scenario descriptor.
func HB6728Scenario() Scenario {
	return Scenario{
		ID:                "HB6728",
		Conf:              "ipc.server.response.queue.maxsize",
		Description:       "limits RPC-response queue size; too big, OOM; too small, read/write throughput hurts",
		Flags:             "N-N-Y",
		ConstraintName:    "memory ≤ 495MB (hard, no OOM)",
		TradeoffName:      "completed ops/s",
		HigherIsBetter:    true,
		ProfilingWorkload: "YCSB 0.0W, 2MB @ resp limit 32/64/96/128MB",
		PhaseWorkloads:    [2]string{"YCSB 0.0W, 2MB, goal 495MB", "YCSB 0.3W, 2MB, goal 400MB"},
		BuggyDefault:      1 << 50, // the pre-patch default: unbounded
		PatchDefault:      1 << 30, // the patched default: 1 GB — still above the heap
		StaticGrid:        []float64{16 * float64(mb), 32 * float64(mb), 48 * float64(mb), 64 * float64(mb), 80 * float64(mb), 96 * float64(mb), 128 * float64(mb), 160 * float64(mb), 192 * float64(mb)},
		NonOptimal:        16 * float64(mb),
		Run:               RunHB6728,
	}
}
