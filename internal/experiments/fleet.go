package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/chaos"
	"smartconf/internal/cluster"
	"smartconf/internal/core"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/stat"
	"smartconf/internal/workload"
)

// The fleet scenario: N RPC servers behind a key-affinity router, one
// SmartConf control plane. It is the cluster-scale version of HB3813 —
// the same queue-size knob, but now N of them plus a global admission knob,
// all guarding ONE hard fleet-wide memory goal through the §5.4 interaction
// factor (N+1 controllers share the goal), layered over per-node soft p99
// goals. Skewed zipfian traffic makes the per-node loads unequal (so no
// single static bound fits every node), and a chaos-injected instance loss
// mid-run shifts all of it: the survivors inherit the victim's keys and its
// evacuated requests, and their controllers must re-tighten while the
// static fleets either OOM or leave throughput on the table.

const (
	fleetNodes   = 4
	fleetSeed    = int64(6001)
	fleetRunTime = 420 * time.Second
	// Workload stops before the horizon so the drain tail is observable.
	fleetLoadUntil = 400 * time.Second
	// One member dies mid-run and comes back late; the victim is drawn from
	// the chaos plan's seeded source.
	fleetLossAt    = 160 * time.Second
	fleetRestartAt = 300 * time.Second
	// fleetHeapCapacity is each member's heap. Fleet members get more
	// per-node headroom than the single-node HB3813 server (768 vs 512 MB)
	// because survivors must absorb a dead member's keys AND its evacuated
	// requests; the binding constraint is the fleet-wide goal below, not the
	// per-node heap.
	fleetHeapCapacity = 768 * mb
	// fleetMemGoal is the hard fleet-wide memory goal: the sum of all member
	// heaps must stay under it. Raw fleet capacity is
	// fleetNodes × fleetHeapCapacity = 3072 MB; the goal is set well below
	// it, in the same spirit as Figure 6's 495-of-512 MB goal — the operator
	// buys a memory budget for the whole fleet, not per box.
	fleetMemGoal = 1850 * mb
	// fleetP99Goal is each node's soft latency goal, as in the SLA extension.
	fleetP99Goal = slaGoalSec
)

// FleetResult is the outcome of one fleet run under one policy. All fields
// are exported: results round-trip through the persistent run cache as JSON.
type FleetResult struct {
	Policy Policy
	Nodes  int
	// Lost counts members killed by the chaos plan.
	Lost int

	// ConstraintMet reports the hard fleet-wide memory goal: the summed
	// heaps never exceeded fleetMemGoal and no member OOM'd.
	ConstraintMet bool
	Violation     string
	ViolatedAt    time.Duration
	// WorstMem is the peak summed heap usage (bytes, 1 s samples).
	WorstMem float64

	// SoftGoalMet reports the per-node soft goal: the worst post-convergence
	// p99 across live members stayed within the SLA (with the same 10%
	// slack the SLA extension allows a soft goal).
	SoftGoalMet bool
	WorstP99    float64

	// Throughput is the trade-off: completed operations per second,
	// aggregated across the fleet.
	Throughput float64

	Refused      int64
	Throttled    int64
	Redispatched int64
	// FinalBounds is each node's queue bound at the end of the run;
	// FinalAdmission is the global admission knob (-1 = unbounded).
	FinalBounds    []int
	FinalAdmission int

	// FleetMem is the summed-heap time series behind the hard-goal check.
	FleetMem Series
}

// ProfileFleetMemory is the fleet-scale profiling campaign: node 0's queue
// bound is pinned at each setting while every other node sits at a reference
// bound, and the FLEET's total memory is measured — the partial derivative
// ∂(fleet memory)/∂(one node's queue occupancy) that every per-node guard
// and the admission controller linearize around. The deputy axes (one
// node's queue length, the fleet's total in-flight count) share this slope:
// each queued item pins one ~1 MB payload somewhere in the fleet.
func ProfileFleetMemory() core.Profile {
	return memoProfile("FLEET-MEM", func() core.Profile {
		const reference = 60
		return profileSweep([]float64{40, 120, 240, 400}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(fleetSeed))
			heaps := make([]*memsim.Heap, fleetNodes)
			servers := make([]*rpcserver.Server, fleetNodes)
			for i := range servers {
				heaps[i] = memsim.NewHeap(4 << 30) // profiling must not OOM
				servers[i] = rpcserver.New(s, heaps[i], rpcConfig())
				servers[i].SetID(i)
				if i == 0 {
					servers[i].SetMaxQueue(int(setting))
				} else {
					servers[i].SetMaxQueue(reference)
				}
			}
			// Continuous overload (arrivals outpace service) keeps every
			// queue pinned at its bound — the saturated regime the linear
			// model must capture; sparse bursts would sample empty queues
			// and profile the idle baseline instead.
			taken := 0
			s.Every(10*time.Second, 5*time.Second, func() bool {
				if taken < 10 {
					var total int64
					for _, h := range heaps {
						total += h.Used()
					}
					record(setting, float64(total))
					taken++
				}
				return taken < 10
			})
			// Every node gets saturating bursts so each queue sits at its
			// bound — the regime the linear model is fit for.
			for i := range servers {
				sv := servers[i]
				w := &rpcWorkload{
					gen:        workload.NewYCSB(fleetSeed+int64(i), 256, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
					burstSize:  2 * hb3813BurstSize,
					burstEvery: hb3813BurstEvery,
					spacing:    12 * time.Millisecond, // 600 ops over 7.2 s: back-to-back bursts
					phases:     []workload.YCSBPhase{{Name: "profiling", WriteRatio: 1, RequestBytes: 1 * mb}},
				}
				w.run(s, 70*time.Second, rng, func(op workload.Op) { sv.Offer(op) })
			}
			s.RunUntil(70 * time.Second)
		})
	})
}

// RunFleetScenario executes the fleet scenario under one policy. Uncached:
// BuildFleetComparison memoizes around it.
func RunFleetScenario(p Policy) FleetResult {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(fleetSeed))

	heaps := make([]*memsim.Heap, fleetNodes)
	servers := make([]*rpcserver.Server, fleetNodes)
	fleet := cluster.NewFleet[workload.Op](cluster.KeyAffinity)
	targets := make([]chaos.Killable, fleetNodes)
	for i := range servers {
		heaps[i] = memsim.NewHeap(fleetHeapCapacity)
		servers[i] = rpcserver.New(s, heaps[i], rpcConfig())
		servers[i].SetID(i)
		servers[i].SetMaxQueue(0)
		sv := servers[i]
		sv.OnEvacuate = func(op workload.Op) {
			fleet.Redispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
		}
		fleet.Add(sv, 1, sv.Offer)
		targets[i] = sv
		heapNoise(s, heaps[i], rand.New(rand.NewSource(fleetSeed+100+int64(i))), rpcNoiseMax, fleetRunTime)
	}
	fleetMem := func() float64 {
		var total int64
		for _, h := range heaps {
			total += h.Used()
		}
		return float64(total)
	}

	res := FleetResult{Policy: p, Nodes: fleetNodes, Lost: 1, FinalAdmission: -1}

	var coord *cluster.Coordinator
	switch p.Kind {
	case StaticPolicy:
		for _, sv := range servers {
			sv.SetMaxQueue(int(p.Static))
		}
	case SmartConfPolicy:
		memProfile := publicProfile(ProfileFleetMemory())
		slaProf := profileSLA()
		latProfile := publicProfile(slaProf)
		latCap := slaCapacity(slaProf, fleetP99Goal)
		nodes := make([]cluster.NodeControl, fleetNodes)
		for i := range servers {
			sv := servers[i]
			memC, err := smartconf.NewIndirect(smartconf.Spec{
				Name:        fmt.Sprintf("node%d/ipc.server.max.queue.size#fleet-mem", i),
				Metric:      "fleet_memory_consumption",
				Goal:        float64(fleetMemGoal),
				Hard:        true,
				Interaction: fleetNodes + 1, // N node guards + the admission knob
				// Max declares the knob's per-node capacity: the fleet-wide
				// goal cannot see one member hogging the shared budget past
				// its OWN heap (base 280 MB + noise in a 768 MB heap leaves
				// ~450 queued MB), so the capacity bound encodes it.
				Min: 0, Max: 400,
			}, memProfile, nil)
			if err != nil {
				panic(err)
			}
			// The knob's capacity under the soft goal is model-derived: the
			// deepest queue at which the profiled line still predicts
			// p99 ≤ goal. Starting AT capacity and letting feedback only
			// trim below it keeps the integrator's windup bounded by model
			// accuracy — while the memory layer binds, the latency proposal
			// can sit at most at the goal setting, never at an arbitrary
			// cap a transient could then blow past the SLA with.
			latC, err := smartconf.New(smartconf.Spec{
				Name:    fmt.Sprintf("node%d/ipc.server.max.queue.size#p99", i),
				Metric:  "p99_latency",
				Goal:    fleetP99Goal,
				Hard:    false,
				Initial: float64(latCap),
				Min:     1, Max: float64(latCap),
			}, latProfile)
			if err != nil {
				panic(err)
			}
			nodes[i] = cluster.NodeControl{
				Inst:         sv,
				Memory:       memC,
				Deputy:       func() float64 { return float64(sv.QueueLen()) },
				Latency:      latC,
				SenseLatency: func() float64 { return sv.Latency().Percentile(99).Seconds() },
				Apply:        func(bound int) { sv.SetMaxQueue(bound) },
			}
		}
		admission, err := smartconf.NewIndirect(smartconf.Spec{
			Name:        "fleet/max.in.flight",
			Metric:      "fleet_memory_consumption",
			Goal:        float64(fleetMemGoal),
			Hard:        true,
			Interaction: fleetNodes + 1,
			Min:         0, Max: 20000,
		}, memProfile, nil)
		if err != nil {
			panic(err)
		}
		coord = cluster.NewCoordinator(fleet, fleetMem, admission, nodes)
		// Two cadences (DESIGN.md §cluster). The memory guards run on the
		// paper's setPerf-on-every-enqueue idiom — BeforeDispatch senses the
		// LIVE deputies mid-burst, so each proposed bound is "current queue
		// + my share of the remaining fleet headroom" while a burst is
		// arriving, not a stale between-burst snapshot of an empty queue.
		// The slow 1 s tick keeps the guards moving when no requests arrive
		// (e.g. while evacuated work drains after a loss). The latency
		// controllers run on the slow p99-window cadence (the SLA
		// extension's 15 s rationale) with anti-windup in the coordinator.
		fleet.BeforeDispatch = coord.StepMemory
		s.Every(time.Second, time.Second, func() bool {
			coord.StepMemory()
			return s.Now() < fleetRunTime
		})
		s.Every(15*time.Second, 15*time.Second, func() bool {
			coord.StepLatency()
			return s.Now() < fleetRunTime
		})
	}

	plan := chaos.Plan{Name: "fleet-loss", Seed: fleetSeed, Faults: []chaos.Fault{
		chaos.InstanceLoss{At: fleetLossAt, Targets: targets, Victim: -1},
		chaos.InstanceRestart{At: fleetRestartAt, Targets: targets, Victim: -1},
	}}
	plan.Arm(s, nil)

	res.FleetMem = Series{Name: "fleet_memory", Unit: "bytes"}
	var worstP99 float64
	s.Every(time.Second, time.Second, func() bool {
		res.FleetMem.Points = append(res.FleetMem.Points, Point{s.Now(), fleetMem()})
		return s.Now() < fleetRunTime
	})
	s.Every(5*time.Second, 5*time.Second, func() bool {
		if s.Now() > 60*time.Second { // after convergence
			for _, sv := range servers {
				if !sv.Alive() {
					continue
				}
				if v := sv.Latency().Percentile(99).Seconds(); v > worstP99 {
					worstP99 = v
				}
			}
		}
		return s.Now() < fleetRunTime
	})

	w := &rpcWorkload{
		gen: workload.NewYCSB(fleetSeed+1, 256, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
		// Offered load deliberately exceeds the fleet's service capacity
		// between bursts: whatever a fleet cannot queue, it must refuse, so
		// deeper queues buy throughput and shallow ones leave it on the
		// table — HB3813's trade-off at fleet scale. Zipfian keys under
		// key-affinity routing make the per-node shares unequal.
		burstSize:  hb3813BurstSize * fleetNodes,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 * mb}},
	}
	w.run(s, fleetLoadUntil, rng, func(op workload.Op) {
		fleet.Dispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
	})
	s.RunUntil(fleetRunTime)

	res.ConstraintMet = true
	if met, at, worst := evalUpperBound(res.FleetMem, func(time.Duration) float64 { return float64(fleetMemGoal) }); !met {
		res.ConstraintMet = false
		res.Violation = fmt.Sprintf("fleet memory %.0f MB > goal %d MB", worst/float64(mb), fleetMemGoal/mb)
		res.ViolatedAt = at
	}
	for i, h := range heaps {
		if h.OOM() {
			res.ConstraintMet = false
			if res.Violation == "" {
				res.Violation = fmt.Sprintf("node %d OOM", i)
			}
		}
	}
	res.WorstMem = res.FleetMem.Max()
	res.WorstP99 = worstP99
	res.SoftGoalMet = worstP99 <= fleetP99Goal*1.1 // soft: 10% SLA slack

	var completed int64
	for _, sv := range servers {
		completed += sv.Completed()
		res.FinalBounds = append(res.FinalBounds, sv.MaxQueue())
	}
	res.Throughput = float64(completed) / fleetRunTime.Seconds()
	res.Refused = fleet.Refused()
	res.Throttled = fleet.Throttled()
	res.Redispatched = fleet.Redispatched()
	if coord != nil {
		if a := coord.Admission(); a != math.MaxInt {
			res.FinalAdmission = a
		}
	}
	return res
}

// fleetStaticGrid is the static sweep the SmartConf fleet is compared
// against: one uniform per-node bound, no admission bound — what an operator
// without per-node controllers would deploy fleet-wide.
func fleetStaticGrid() []Policy {
	return []Policy{Static(40), Static(90), Static(180), Static(400), Static(800)}
}

// BuildFleetComparison runs the SmartConf fleet plus the static sweep; the
// independent runs fan out across the worker pool.
func BuildFleetComparison() []FleetResult {
	policies := append([]Policy{SmartConf()}, fleetStaticGrid()...)
	return engine.MapSlice(policies, func(p Policy) FleetResult {
		return memoKeyed("FLEET", policyKey(p), "fleet/loss", fleetSeed,
			func() FleetResult { return RunFleetScenario(p) })
	})
}

// FleetQualifies reports whether a fleet run met BOTH goals — the bar a
// static fleet must clear before its throughput is even comparable.
func FleetQualifies(r FleetResult) bool { return r.ConstraintMet && r.SoftGoalMet }

// RenderFleet formats the fleet comparison.
func RenderFleet(results []FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet: %d× RPC server, key-affinity router, skewed zipf load; loss@%ds restart@%ds\n",
		fleetNodes, int(fleetLossAt.Seconds()), int(fleetRestartAt.Seconds()))
	fmt.Fprintf(&b, "hard goal: fleet memory ≤ %d MB; soft goal: per-node p99 ≤ %.0fs; trade-off: ops/s\n",
		fleetMemGoal/mb, fleetP99Goal)
	fmt.Fprintf(&b, "%-16s %7s %10s %7s %8s %9s %9s %7s  %s\n",
		"policy", "mem-ok", "peak(MB)", "p99-ok", "p99(s)", "ops/s", "refused", "redisp", "final bounds / admission")
	var best *FleetResult
	var sc *FleetResult
	for i := range results {
		r := &results[i]
		if r.Policy.Kind == SmartConfPolicy {
			sc = r
		} else if FleetQualifies(*r) && (best == nil || r.Throughput > best.Throughput) {
			best = r
		}
		memOK, p99OK := "ok", "ok"
		if !r.ConstraintMet {
			memOK = "X"
		}
		if !r.SoftGoalMet {
			p99OK = "X"
		}
		adm := "∞"
		if r.FinalAdmission >= 0 {
			adm = fmt.Sprintf("%d", r.FinalAdmission)
		}
		fmt.Fprintf(&b, "%-16s %7s %10.0f %7s %8.2f %9.2f %9d %7d  %v / %s\n",
			r.Policy, memOK, r.WorstMem/float64(mb), p99OK, r.WorstP99,
			r.Throughput, r.Refused, r.Redispatched, r.FinalBounds, adm)
	}
	switch {
	case sc == nil:
	case !FleetQualifies(*sc):
		fmt.Fprintf(&b, "SmartConf fleet FAILED a goal: %s\n", sc.Violation)
	case best == nil:
		fmt.Fprintf(&b, "no static fleet met both goals; SmartConf did, at %.2f ops/s\n", sc.Throughput)
	default:
		fmt.Fprintf(&b, "best qualifying static: %s at %.2f ops/s → SmartConf ×%.2f\n",
			best.Policy, best.Throughput, sc.Throughput/best.Throughput)
	}
	return b.String()
}

// slaCapacity inverts the profiled latency model: the deepest setting at
// which the fitted line still predicts the metric within the goal. It is the
// soft-goal knob's capacity — the feedback controller starts there and only
// trims below it when the measured plant deviates from the model.
func slaCapacity(p core.Profile, goal float64) int {
	xs := make([]float64, 0, len(p.Settings))
	ys := make([]float64, 0, len(p.Settings))
	for _, s := range p.Settings {
		if len(s.Samples) == 0 {
			continue
		}
		xs = append(xs, s.Setting)
		ys = append(ys, stat.Mean(s.Samples))
	}
	fit, err := stat.LinearFit(xs, ys)
	if err != nil || fit.Slope <= 0 {
		panic(fmt.Sprintf("experiments: degenerate SLA profile: %v", err))
	}
	cap := int(math.Floor((goal - fit.Intercept) / fit.Slope))
	if cap < 1 {
		cap = 1
	}
	return cap
}
