package experiments

import (
	"fmt"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/experiments/engine"
)

// Ablations beyond the paper's Figure 7, quantifying the design choices
// DESIGN.md calls out: the automatically derived pole, the λ-derived virtual
// goal margin, the §5.4 interaction factor, and the §7 adaptive-model
// extension. All run on the HB3813 substrate (the best-instrumented plant).

// PoleAblationRow is one entry of the pole-sensitivity sweep.
type PoleAblationRow struct {
	Pole          float64
	Auto          bool // the §5.1 automatically derived pole
	ConstraintMet bool
	Throughput    float64
	// Convergence is when the knob first reached 80% of its phase-1 working
	// level — the responsiveness cost of a conservative pole.
	Convergence time.Duration
}

// AblationPoles sweeps the regular pole across [0, 0.99] on HB3813,
// including the automatically derived value, showing the §5.1 rule lands in
// the stable-and-responsive region without user tuning.
func AblationPoles() []PoleAblationRow {
	profile := ProfileHB3813()
	model, err := profile.Fit()
	if err != nil {
		panic(err)
	}
	lambda := profile.Lambda()
	auto := core.PoleFromDelta(profile.Delta())
	poles := []float64{0, 0.25, 0.5, auto, 0.75, 0.9, 0.99}
	return engine.MapSlice(poles, func(pole float64) PoleAblationRow {
		r := runAblationCore(model, pole, lambda)
		knob, _ := r.SeriesByName("max.queue.size")
		working := knob.At(300 * time.Second) // settled phase-1 level
		var conv time.Duration
		for _, p := range knob.Points {
			if p.V >= 0.8*working && working > 0 {
				conv = p.T
				break
			}
		}
		return PoleAblationRow{
			Pole:          pole,
			Auto:          pole == auto,
			ConstraintMet: r.ConstraintMet,
			Throughput:    r.Tradeoff,
			Convergence:   conv,
		}
	})
}

// runAblationCore memoizes the core-controller evaluations the pole and
// margin sweeps share: both include the automatically derived (pole, λ)
// point, which therefore simulates once.
func runAblationCore(model core.Model, pole, lambda float64) Result {
	return memoResult("HB3813", fmt.Sprintf("pole=%g lambda=%g", pole, lambda),
		"ablation-core", 0, func() Result {
			ctrl, err := core.NewController(model, pole, lambda,
				core.Goal{Metric: "memory", Target: float64(rpcMemoryGoal), Hard: true},
				core.Options{Min: 0, Max: 1e9})
			if err != nil {
				panic(err)
			}
			return runHB3813Core(ctrl)
		})
}

// RenderAblationPoles formats the sweep.
func RenderAblationPoles(rows []PoleAblationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Pole ablation (HB3813): responsiveness and safety across the pole range")
	fmt.Fprintf(&b, "%8s %6s %8s %12s %14s\n", "pole", "auto", "OK?", "ops/s", "convergence")
	for _, r := range rows {
		mark := ""
		if r.Auto {
			mark = "←§5.1"
		}
		ok := "ok"
		if !r.ConstraintMet {
			ok = "X"
		}
		fmt.Fprintf(&b, "%8.3f %6s %8s %12.2f %13.0fs\n",
			r.Pole, mark, ok, r.Throughput, r.Convergence.Seconds())
	}
	return b.String()
}

// MarginAblationRow is one entry of the virtual-goal-margin sweep.
type MarginAblationRow struct {
	Lambda        float64
	Auto          bool
	VirtualGoalMB float64
	ConstraintMet bool
	Throughput    float64
}

// AblationVirtualGoalMargin sweeps the λ that places the virtual goal,
// including the automatically measured value: zero margin risks the
// constraint; excess margin buys nothing and costs throughput.
func AblationVirtualGoalMargin() []MarginAblationRow {
	profile := ProfileHB3813()
	model, err := profile.Fit()
	if err != nil {
		panic(err)
	}
	autoLambda := profile.Lambda()
	pole := core.PoleFromDelta(profile.Delta())
	lambdas := []float64{0, 0.02, autoLambda, 0.15, 0.3}
	return engine.MapSlice(lambdas, func(lambda float64) MarginAblationRow {
		// The virtual target is fixed at construction ((1-λ)·goal), so a
		// fresh controller reports it even when the run itself is a cache hit.
		ctrl, err := core.NewController(model, pole, lambda,
			core.Goal{Metric: "memory", Target: float64(rpcMemoryGoal), Hard: true},
			core.Options{Min: 0, Max: 1e9})
		if err != nil {
			panic(err)
		}
		r := runAblationCore(model, pole, lambda)
		return MarginAblationRow{
			Lambda:        lambda,
			Auto:          lambda == autoLambda,
			VirtualGoalMB: ctrl.VirtualTarget() / float64(mb),
			ConstraintMet: r.ConstraintMet,
			Throughput:    r.Tradeoff,
		}
	})
}

// RenderAblationMargins formats the sweep.
func RenderAblationMargins(rows []MarginAblationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Virtual-goal-margin ablation (HB3813): safety vs utilization across λ")
	fmt.Fprintf(&b, "%8s %6s %14s %8s %12s\n", "λ", "auto", "virtual goal", "OK?", "ops/s")
	for _, r := range rows {
		mark := ""
		if r.Auto {
			mark = "←§5.2"
		}
		ok := "ok"
		if !r.ConstraintMet {
			ok = "X"
		}
		fmt.Fprintf(&b, "%8.3f %6s %12.0fMB %8s %12.2f\n",
			r.Lambda, mark, r.VirtualGoalMB, ok, r.Throughput)
	}
	return b.String()
}

// InteractionAblation compares the §5.4 interaction factor against naive
// composition (both controllers claiming the full error) on the Figure 8
// workload.
type InteractionAblation struct {
	WithFactor    Figure8
	WithoutFactor Figure8
	// ChurnWith/Without measure actuation churn — the summed absolute
	// movement of both knobs (items + MB-equivalents) — the §5.6 stability
	// cost of uncoordinated controllers overcorrecting in tandem.
	ChurnWith    float64
	ChurnWithout float64
}

// knobChurn sums |Δ| over a knob series, in the given unit.
func knobChurn(s Series, unit float64) float64 {
	var churn float64
	for i := 1; i < len(s.Points); i++ {
		d := (s.Points[i].V - s.Points[i-1].V) / unit
		if d < 0 {
			d = -d
		}
		churn += d
	}
	return churn
}

// AblationInteractionFactor runs Figure 8 twice: N derived by the Manager
// (2) and N forced to 1.
func AblationInteractionFactor() InteractionAblation {
	figs := engine.MapSlice([]int{2, 1}, buildFigure8)
	a := InteractionAblation{
		WithFactor:    figs[0],
		WithoutFactor: figs[1],
	}
	a.ChurnWith = knobChurn(a.WithFactor.ReqKnob, 1) + knobChurn(a.WithFactor.RespKnob, float64(mb))
	a.ChurnWithout = knobChurn(a.WithoutFactor.ReqKnob, 1) + knobChurn(a.WithoutFactor.RespKnob, float64(mb))
	return a
}

// RenderAblationInteraction formats the comparison.
func RenderAblationInteraction(a InteractionAblation) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Interaction-factor ablation (Figure 8 workload)")
	line := func(name string, f Figure8) {
		status := fmt.Sprintf("peak memory %.0fMB, %d ops", f.Mem.Max()/float64(mb), f.Completed)
		if f.OOM {
			status = fmt.Sprintf("OOM at %.0fs", f.OOMAt.Seconds())
		}
		fmt.Fprintf(&b, "  %-24s %s\n", name, status)
	}
	line("N=2 (§5.4 factor)", a.WithFactor)
	line("N=1 (naive composition)", a.WithoutFactor)
	fmt.Fprintf(&b, "  actuation churn: N=2 %.0f, N=1 %.0f (knob units moved)\n",
		a.ChurnWith, a.ChurnWithout)
	return b.String()
}

// AdaptiveAblation compares the fixed profiled model against the §7
// adaptive-model extension on HB3813, whose true gain doubles at the
// workload shift.
type AdaptiveAblation struct {
	Fixed    Result
	Adaptive Result
	// FinalAlphaFixed/Adaptive are the slopes the controllers ended with
	// (the plant's phase-2 slope is ≈2 MB/item).
	FinalAlphaFixed    float64
	FinalAlphaAdaptive float64
}

// adaptiveRun pairs a run with the slope its controller ended on — the
// memoized unit of the adaptive-model ablation (the final α is a product of
// the run, so it caches alongside the Result).
type adaptiveRun struct {
	Result Result
	Alpha  float64
}

// AblationAdaptiveModel runs the comparison. The two arms are independent
// and fan out across the worker pool.
func AblationAdaptiveModel() AdaptiveAblation {
	profile := ProfileHB3813()
	runs := engine.MapSlice([]bool{false, true}, func(adaptive bool) adaptiveRun {
		label := "fixed"
		if adaptive {
			label = "adaptive"
		}
		return memoKeyed("HB3813", label, "ablation-adaptive", 0, func() adaptiveRun {
			ic, err := smartconf.NewIndirect(smartconf.Spec{
				Name:   "ipc.server.max.queue.size",
				Metric: "memory_consumption",
				Goal:   float64(rpcMemoryGoal),
				Hard:   true,
				Min:    0, Max: 5000,
				Adaptive: adaptive,
			}, publicProfile(profile), nil)
			if err != nil {
				panic(err)
			}
			r := runHB3813Custom(func(heapUsed float64, queueLen int) int {
				ic.SetPerf(heapUsed, float64(queueLen))
				return ic.Conf()
			})
			return adaptiveRun{Result: r, Alpha: ic.ModelAlpha()}
		})
	})
	return AdaptiveAblation{
		Fixed:              runs[0].Result,
		Adaptive:           runs[1].Result,
		FinalAlphaFixed:    runs[0].Alpha,
		FinalAlphaAdaptive: runs[1].Alpha,
	}
}

// RenderAblationAdaptive formats the comparison.
func RenderAblationAdaptive(a AdaptiveAblation) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Adaptive-model ablation (HB3813; the true gain doubles at the phase shift)")
	line := func(name string, r Result, alpha float64) {
		ok := "ok"
		if !r.ConstraintMet {
			ok = "X " + r.Violation
		}
		fmt.Fprintf(&b, "  %-16s %-6s %8.2f ops/s  final α = %.2f MB/item\n",
			name, ok, r.Tradeoff, alpha/float64(mb))
	}
	line("fixed model", a.Fixed, a.FinalAlphaFixed)
	line("adaptive (RLS)", a.Adaptive, a.FinalAlphaAdaptive)
	fmt.Fprintln(&b, "  (phase-1 true slope ≈ 1 MB/item, phase-2 ≈ 2 MB/item)")
	return b.String()
}

// ProfilingDepthRow is one entry of the profiling-sensitivity sweep.
type ProfilingDepthRow struct {
	Settings      int
	Samples       int // per setting
	ConstraintMet bool
	Throughput    float64
	SynthesisErr  string
}

// AblationProfilingDepth quantifies §6.1's robustness claim — "SmartConf
// produces effective and robust controllers without intensive profiling" —
// by subsampling the HB3813 profiling campaign: the full 4×10 plan, a sparse
// 2×3 plan, and a degenerate single-setting plan (which cannot identify a
// slope and must fail synthesis loudly rather than misbehave quietly).
func AblationProfilingDepth() []ProfilingDepthRow {
	full := ProfileHB3813()
	plans := []struct{ settings, samples int }{
		{4, 10}, {4, 3}, {2, 3}, {1, 10},
	}
	return engine.MapSlice(plans, func(plan struct{ settings, samples int }) ProfilingDepthRow {
		return memoKeyed("HB3813",
			fmt.Sprintf("settings=%d samples=%d", plan.settings, plan.samples),
			"ablation-depth", 0, func() ProfilingDepthRow {
				sub := subsampleProfile(full, plan.settings, plan.samples)
				row := ProfilingDepthRow{Settings: plan.settings, Samples: plan.samples}
				ic, err := smartconf.NewIndirect(smartconf.Spec{
					Name:   "ipc.server.max.queue.size",
					Metric: "memory_consumption",
					Goal:   float64(rpcMemoryGoal),
					Hard:   true,
					Min:    0, Max: 5000,
				}, publicProfile(sub), nil)
				if err != nil {
					row.SynthesisErr = err.Error()
					return row
				}
				r := runHB3813Custom(func(heapUsed float64, queueLen int) int {
					ic.SetPerf(heapUsed, float64(queueLen))
					return ic.Conf()
				})
				row.ConstraintMet = r.ConstraintMet
				row.Throughput = r.Tradeoff
				return row
			})
	})
}

// subsampleProfile keeps the first `settings` settings and the first
// `samples` measurements of each.
func subsampleProfile(p core.Profile, settings, samples int) core.Profile {
	var out core.Profile
	for i, s := range p.Settings {
		if i >= settings {
			break
		}
		n := samples
		if n > len(s.Samples) {
			n = len(s.Samples)
		}
		out.Settings = append(out.Settings, core.SettingProfile{
			Setting: s.Setting,
			Samples: append([]float64(nil), s.Samples[:n]...),
		})
	}
	return out
}

// RenderAblationProfilingDepth formats the sweep.
func RenderAblationProfilingDepth(rows []ProfilingDepthRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Profiling-depth ablation (HB3813): controller quality vs profiling effort")
	fmt.Fprintf(&b, "%10s %9s %8s %12s  %s\n", "settings", "samples", "OK?", "ops/s", "synthesis")
	for _, r := range rows {
		if r.SynthesisErr != "" {
			fmt.Fprintf(&b, "%10d %9d %8s %12s  refused: %s\n", r.Settings, r.Samples, "-", "-", r.SynthesisErr)
			continue
		}
		ok := "ok"
		if !r.ConstraintMet {
			ok = "X"
		}
		fmt.Fprintf(&b, "%10d %9d %8s %12.2f  ok\n", r.Settings, r.Samples, ok, r.Throughput)
	}
	return b.String()
}
