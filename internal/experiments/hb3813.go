package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// HB3813: ipc.server.max.queue.size bounds the RPC call queue. Queued and
// in-flight payloads live on the heap, so the bound indirectly caps memory
// (hard OOM constraint); but the deeper the queue, the bigger the dispatch
// batches and the higher the throughput (the trade-off metric).
//
// Paper flags: N-N-Y (always-on, indirect, hard).

const (
	hb3813RunTime     = 700 * time.Second
	hb3813PhaseShift  = 350 * time.Second // workload shifts mid-run
	hb3813BurstSize   = 300
	hb3813BurstEvery  = 7500 * time.Millisecond // 40 ops/s offered
	hb3813Spacing     = 2 * time.Millisecond
	hb3813ProfileStep = 60 * time.Second
)

func hb3813Phases() []workload.YCSBPhase {
	return []workload.YCSBPhase{
		{Name: "phase-1", Duration: hb3813PhaseShift, WriteRatio: 1.0, RequestBytes: 1 * mb},
		{Name: "phase-2", WriteRatio: 1.0, RequestBytes: 2 * mb},
	}
}

// ProfileHB3813 runs the paper's profiling campaign: the PROFILING workload
// (YCSB 1.0W, 1 MB — distinct from the evaluation's two-phase workload) with
// ipc.server.max.queue.size pinned at 40, 80, 120 and 160 (the paper's
// values), collecting 10 heap measurements per setting, taken at enqueue
// time as §6.1 describes.
func ProfileHB3813() core.Profile {
	return memoProfile("HB3813", func() core.Profile {
		return profileSweep([]float64{40, 80, 120, 160}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(3813))
			heap := memsim.NewHeap(rpcHeapCapacity)
			sv := rpcserver.New(s, heap, rpcConfig())
			sv.SetMaxQueue(int(setting))
			heapNoise(s, heap, rng, rpcNoiseMax, hb3813ProfileStep)

			enqueues, taken := 0, 0
			sv.BeforeAdmit = func() {
				enqueues++
				// Spread 10 samples across the window: one every ~200 enqueues.
				if enqueues%200 == 0 && taken < 10 {
					record(setting, float64(heap.Used()))
					taken++
				}
			}
			w := &rpcWorkload{
				gen:        workload.NewYCSB(3813, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
				burstSize:  hb3813BurstSize,
				burstEvery: hb3813BurstEvery,
				spacing:    hb3813Spacing,
				phases:     []workload.YCSBPhase{{Name: "profiling", WriteRatio: 1, RequestBytes: 1 * mb}},
			}
			w.run(s, hb3813ProfileStep, rng, func(op workload.Op) { sv.Offer(op) })
			s.RunUntil(hb3813ProfileStep)
		})
	})
}

// RunHB3813 executes the two-phase evaluation under the given policy.
func RunHB3813(p Policy) Result {
	return runHB3813(p, hb3813Phases(), hb3813RunTime, 3813,
		hb3813BurstSize, hb3813BurstEvery, hb3813Spacing)
}

// runHB3813 is shared with the Figure 7 ablation, which uses a less stable
// workload (steady overload instead of bursts, with a mid-run size jump).
func runHB3813(p Policy, phases []workload.YCSBPhase, runTime time.Duration, seed int64,
	burstSize int, burstEvery, spacing time.Duration) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())

	switch {
	case p.Kind == StaticPolicy:
		sv.SetMaxQueue(int(p.Static))
	case p.Kind == SmartConfPolicy && p.FixedPole == 0:
		profile := ProfileHB3813()
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "ipc.server.max.queue.size",
			Metric:  "memory_consumption",
			Goal:    float64(rpcMemoryGoal),
			Hard:    true,
			Initial: 0, // the paper's deliberately poor starting value (Fig. 6c)
			Min:     0, Max: 5000,
		}, publicProfile(profile), nil)
		if err != nil {
			panic(fmt.Sprintf("HB3813 synthesis: %v", err))
		}
		// Integration shim — the paper's Table 7 counts exactly this kind of
		// code (sensor read, setPerf/getConf calls at the enqueue site).
		sv.BeforeAdmit = func() {
			ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen())) //sc:HB3813:sensor
			sv.SetMaxQueue(ic.Conf())                                //sc:HB3813:invoke
		}
	default: // the Figure 7 study: pinned-pole SmartConf and the two ablations
		ctrl, err := ablationController(p.Kind, ProfileHB3813(), float64(rpcMemoryGoal), p.FixedPole)
		if err != nil {
			panic(fmt.Sprintf("HB3813 ablation synthesis: %v", err))
		}
		sv.SetMaxQueue(0) // the same poor initial value every policy starts from
		// All three controllers sample at the same 1 Hz cadence so the only
		// differences under test are the §5.2 mechanisms themselves (virtual
		// goal, danger-region pole). SmartConf additionally applies the
		// §5.3 indirect-configuration treatment (update from the deputy's
		// current value); the baselines are classic incremental controllers.
		s.Every(time.Second, time.Second, func() bool {
			if sv.Crashed() {
				return false
			}
			if p.Kind == SmartConfPolicy {
				ctrl.SetConf(float64(sv.QueueLen()))
			}
			sv.SetMaxQueue(int(ctrl.Update(float64(heap.Used()))))
			return s.Now() < runTime
		})
	}

	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	probe := startRPCProbe(s, heap, sv, func() float64 { return float64(sv.MaxQueue()) },
		"max.queue.size", runTime)

	w := &rpcWorkload{
		gen:        workload.NewYCSB(seed+1, 1000, phases[0]),
		burstSize:  burstSize,
		burstEvery: burstEvery,
		spacing:    spacing,
		phases:     phases,
	}
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	w.run(s, runTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(runTime)

	res := Result{
		Issue:          "HB3813",
		Policy:         p,
		Tradeoff:       sv.Throughput(), // placeholder, replaced below
		TradeoffName:   "completed ops/s",
		HigherIsBetter: true,
		Series:         []Series{probe.mem, probe.knob, probe.throughput, probe.completed},
	}
	res.Tradeoff = float64(sv.Completed()) / runTime.Seconds()

	met, at, worst := evalUpperBound(probe.mem, func(time.Duration) float64 { return float64(rpcMemoryGoal) })
	switch {
	case heap.OOM():
		res.ConstraintMet = false
		res.ViolatedAt = oomAt
		res.Violation = "OOM"
	case !met:
		res.ConstraintMet = false
		res.ViolatedAt = at
		res.Violation = fmt.Sprintf("memory %.0fMB > goal %.0fMB", worst/float64(mb), float64(rpcMemoryGoal)/float64(mb))
	default:
		res.ConstraintMet = true
	}
	return res
}

// runHB3813Custom runs the standard two-phase HB3813 evaluation with an
// arbitrary knob policy: decide receives (heap used, queue length) at every
// admission and returns the max.queue.size to apply. Used by the ablation
// harness.
func runHB3813Custom(decide func(heapUsed float64, queueLen int) int) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(3813))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)
	sv.BeforeAdmit = func() {
		sv.SetMaxQueue(decide(float64(heap.Used()), sv.QueueLen()))
	}

	heapNoise(s, heap, rng, rpcNoiseMax, hb3813RunTime)
	probe := startRPCProbe(s, heap, sv, func() float64 { return float64(sv.MaxQueue()) },
		"max.queue.size", hb3813RunTime)

	w := &rpcWorkload{
		gen:        workload.NewYCSB(3814, 1000, hb3813Phases()[0]),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     hb3813Phases(),
	}
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	w.run(s, hb3813RunTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(hb3813RunTime)

	res := Result{
		Issue:          "HB3813",
		Policy:         Policy{Kind: SmartConfPolicy},
		TradeoffName:   "completed ops/s",
		HigherIsBetter: true,
		Tradeoff:       float64(sv.Completed()) / hb3813RunTime.Seconds(),
		Series:         []Series{probe.mem, probe.knob, probe.throughput, probe.completed},
	}
	met, at, worst := evalUpperBound(probe.mem, func(time.Duration) float64 { return float64(rpcMemoryGoal) })
	switch {
	case heap.OOM():
		res.ConstraintMet, res.ViolatedAt, res.Violation = false, oomAt, "OOM"
	case !met:
		res.ConstraintMet, res.ViolatedAt = false, at
		res.Violation = fmt.Sprintf("memory %.0fMB > goal %.0fMB", worst/float64(mb), float64(rpcMemoryGoal)/float64(mb))
	default:
		res.ConstraintMet = true
	}
	return res
}

// runHB3813Core drives the evaluation with a prebuilt core controller using
// full SmartConf semantics (deputy reset per §5.3).
func runHB3813Core(ctrl *core.Controller) Result {
	return runHB3813Custom(func(heapUsed float64, queueLen int) int {
		ctrl.SetConf(float64(queueLen))
		return int(ctrl.Update(heapUsed))
	})
}

// HB3813Scenario returns the scenario descriptor.
func HB3813Scenario() Scenario {
	return Scenario{
		ID:                "HB3813",
		Conf:              "ipc.server.max.queue.size",
		Description:       "limits RPC-call queue size; too big, OOM; too small, read/write throughput hurts",
		Flags:             "N-N-Y",
		ConstraintName:    "memory ≤ 495MB (hard, no OOM)",
		TradeoffName:      "completed ops/s",
		HigherIsBetter:    true,
		ProfilingWorkload: "YCSB 1.0W, 1MB @ queue 40/80/120/160",
		PhaseWorkloads:    [2]string{"YCSB 1.0W, 1MB", "YCSB 1.0W, 2MB"},
		BuggyDefault:      1000, // the pre-patch default
		PatchDefault:      100,  // the patched default — still fails phase 2
		StaticGrid:        []float64{10, 25, 50, 75, 90, 110, 130, 150, 200, 300},
		NonOptimal:        25,
		Run:               RunHB3813,
	}
}
