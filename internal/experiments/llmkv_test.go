package experiments

import (
	"testing"
	"time"
)

func TestLLMKVProfileShape(t *testing.T) {
	p := ProfileLLMKV()
	if len(p.Settings) != 4 || p.TotalSamples() != 40 {
		t.Fatalf("profile: %d settings, %d samples", len(p.Settings), p.TotalSamples())
	}
	m, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// The deputy is prompt-resident KV bytes, but each admitted prompt token
	// drags uncounted decode KV behind it (chat answers run ≈2× the prompt),
	// so the heap grows super-linearly in the bound: α well above 1.
	if m.Alpha < 1.3 || m.Alpha > 3.5 {
		t.Errorf("α = %v heap bytes per prompt-KV byte, want ≈2 (decode amplification)", m.Alpha)
	}
	lambda := p.Lambda()
	if lambda <= 0 || lambda > 0.5 {
		t.Errorf("λ = %v, want small positive", lambda)
	}
	t.Logf("model %v, λ=%.3f, Δ=%.2f", m, lambda, p.Delta())
}

func TestLLMKVTTFTProfileShape(t *testing.T) {
	p := ProfileLLMKVTTFT()
	m, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// Under overload the admission queue is the binding resource: every
	// extra waiting slot adds its service time to the p95 first-token wait.
	if m.Alpha <= 0.01 || m.Alpha > 1.0 {
		t.Errorf("α = %v s per queue slot, want a clearly positive slope", m.Alpha)
	}
	t.Logf("ttft model %v", m)
}

func TestLLMKVBuggyDefaultOOMs(t *testing.T) {
	res := RunLLMKV(Static(LLMKVScenario().BuggyDefault))
	if res.ConstraintMet || res.Violation != "OOM" {
		t.Fatalf("unbounded default should OOM: %+v", res.Violation)
	}
	if res.ViolatedAt >= llmPhaseShift {
		t.Errorf("unbounded admission should die under chat decode growth, died at %v", res.ViolatedAt)
	}
}

func TestLLMKVPatchDefaultOOMs(t *testing.T) {
	// 65536 prompt tokens is a sensible bound for document batches but
	// chat traffic triples every admitted token: it cannot survive phase 1.
	res := RunLLMKV(Static(LLMKVScenario().PatchDefault))
	if res.ConstraintMet || res.Violation != "OOM" {
		t.Fatalf("document-sized bound should OOM under chat: %+v", res.Violation)
	}
}

func TestLLMKVConservativeStaticMeetsConstraint(t *testing.T) {
	res := RunLLMKV(Static(24576))
	if !res.ConstraintMet {
		t.Fatalf("static 24576 should be safe: violated at %v (%s)", res.ViolatedAt, res.Violation)
	}
	if res.Tradeoff <= 0 {
		t.Error("no goodput recorded")
	}
}

func TestLLMKVSmartConfNeverOOMsAndBeatsBestStatic(t *testing.T) {
	sc := RunLLMKV(SmartConf())
	if !sc.ConstraintMet {
		t.Fatalf("SmartConf OOMed at %v (%s)", sc.ViolatedAt, sc.Violation)
	}
	mem, ok := sc.SeriesByName("used_memory")
	if !ok || len(mem.Points) == 0 {
		t.Fatal("no memory series recorded")
	}
	// Survival must span the whole trace, including the chat→summarize
	// shift, not merely until an early crash stopped the probe.
	if last := mem.Points[len(mem.Points)-1].T; last < llmRunTime-2*time.Second {
		t.Fatalf("memory probe stopped at %v, want full %v run", last, llmRunTime)
	}
	for _, p := range mem.Points {
		if p.V >= float64(llmHeapCapacity) {
			t.Fatalf("memory %v reached device capacity at %v", p.V, p.T)
		}
	}

	// The knob must re-target per phase: chat admissions are throttled hard
	// (uncounted decode KV), documents barely grow, so the summarize-phase
	// bound should be well above the chat-phase bound.
	knob, ok := sc.SeriesByName("max.batched.tokens")
	if !ok {
		t.Fatal("no knob series recorded")
	}
	chatKnob := knob.At(llmPhaseShift - 10*time.Second)
	docKnob := knob.At(llmRunTime - 10*time.Second)
	if chatKnob <= 0 || docKnob < 1.5*chatKnob {
		t.Errorf("knob did not adapt across the shift: chat %v, summarize %v", chatKnob, docKnob)
	}

	// Sweep the static grid for the strongest feasible baseline.
	var best Result
	for _, v := range LLMKVScenario().StaticGrid {
		r := RunLLMKV(Static(v))
		if r.ConstraintMet && (best.Policy.Kind != StaticPolicy || r.Tradeoff > best.Tradeoff) {
			best = r
		}
	}
	if best.Policy.Kind != StaticPolicy {
		t.Fatal("no static setting satisfied the constraint — calibration broken")
	}
	speedup := sc.Speedup(best)
	t.Logf("SmartConf %.1f tok/s vs best static %v %.1f tok/s → speedup %.2f×",
		sc.Tradeoff, best.Policy, best.Tradeoff, speedup)
	if speedup <= 1.05 {
		t.Errorf("SmartConf speedup %.2f× over best static, want > 1.05×", speedup)
	}
}

func TestLLMKVDeterministic(t *testing.T) {
	a := RunLLMKV(SmartConf())
	b := RunLLMKV(SmartConf())
	if a.Tradeoff != b.Tradeoff || a.ConstraintMet != b.ConstraintMet || a.ViolatedAt != b.ViolatedAt {
		t.Fatalf("SmartConf runs diverged: (%v,%v,%v) vs (%v,%v,%v)",
			a.Tradeoff, a.ConstraintMet, a.ViolatedAt,
			b.Tradeoff, b.ConstraintMet, b.ViolatedAt)
	}
	ka, _ := a.SeriesByName("max.batched.tokens")
	kb, _ := b.SeriesByName("max.batched.tokens")
	if len(ka.Points) != len(kb.Points) {
		t.Fatalf("knob series lengths diverged: %d vs %d", len(ka.Points), len(kb.Points))
	}
	for i := range ka.Points {
		if ka.Points[i] != kb.Points[i] {
			t.Fatalf("knob series diverged at %v: %v vs %v",
				ka.Points[i].T, ka.Points[i].V, kb.Points[i].V)
		}
	}
}
