package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFigure5ShapeMatchesPaper asserts the paper's headline qualitative
// results (§6.2, §6.3):
//  1. SmartConf satisfies the constraint in all six issues.
//  2. Every buggy default fails.
//  3. The patched defaults still fail in the four issues the paper lists
//     (HB3813, HB6728, HD4995, MR2820) and pass in the other two.
//  4. SmartConf's trade-off beats the best static configuration everywhere.
func TestFigure5ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	rows := BuildFigure5()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	patchShouldFail := map[string]bool{
		"CA6059": false, "HB2149": false,
		"HB3813": true, "HB6728": true, "HD4995": true, "MR2820": true,
	}
	for _, row := range rows {
		bars := map[string]Figure5Bar{}
		for _, bar := range row.Bars {
			bars[bar.Label] = bar
		}
		smart := bars["SmartConf"]
		if !smart.ConstraintMet {
			t.Errorf("%s: SmartConf violated the constraint (%s)", row.Issue, smart.Result.Violation)
		}
		if !bars["Static-Optimal"].ConstraintMet {
			t.Errorf("%s: no safe static setting found — sweep broken", row.Issue)
		}
		if bars["Static-Buggy-Default"].ConstraintMet {
			t.Errorf("%s: buggy default unexpectedly satisfied the constraint", row.Issue)
		}
		if got, want := bars["Static-Patch-Default"].ConstraintMet, !patchShouldFail[row.Issue]; got != want {
			t.Errorf("%s: patched default constraint-met = %v, want %v", row.Issue, got, want)
		}
		if smart.Speedup <= 1.0 {
			t.Errorf("%s: SmartConf speedup %.2fx does not beat the best static", row.Issue, smart.Speedup)
		}
		t.Logf("%s: SmartConf %.2fx over static-optimal (%s=%s)",
			row.Issue, smart.Speedup, row.Issue, humanSetting(row.Optimal.Policy.Static))
	}
	out := RenderFigure5(rows)
	if !strings.Contains(out, "SmartConf") || !strings.Contains(out, "X") {
		t.Error("render is missing expected content")
	}
}

func TestFigure6CaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	f := BuildFigure6()
	if !f.SmartConf.ConstraintMet {
		t.Fatalf("SmartConf violated: %s", f.SmartConf.Violation)
	}
	if f.VirtualGoal >= f.Goal || f.VirtualGoal <= 0 {
		t.Errorf("virtual goal %v not strictly inside (0, %v)", f.VirtualGoal, f.Goal)
	}
	// The knob must adapt: larger before the shift than after (phase 2
	// requests are twice the size).
	knob, _ := f.SmartConf.SeriesByName("max.queue.size")
	before, after := knob.At(300*time.Second), knob.At(690*time.Second)
	if before <= after {
		t.Errorf("knob did not adapt across the workload shift: %v → %v", before, after)
	}
	if f.SmartConf.Speedup(f.Static) <= 1 {
		t.Errorf("SmartConf %.2f ops/s did not beat static %.2f ops/s",
			f.SmartConf.Tradeoff, f.Static.Tradeoff)
	}
	if out := RenderFigure6(f); !strings.Contains(out, "virtual goal") {
		t.Error("render missing annotations")
	}
}

// TestFigure7AblationMatchesPaper asserts §6.4: both alternative controllers
// OOM under the unstable workload, SmartConf does not, and the
// no-virtual-goal variant dies before the single-pole variant (the paper's
// 36 s vs 80 s ordering).
func TestFigure7AblationMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	f := BuildFigure7()
	if !f.SmartConf.ConstraintMet {
		t.Errorf("SmartConf violated: %s at %v", f.SmartConf.Violation, f.SmartConf.ViolatedAt)
	}
	if f.SinglePole.ConstraintMet {
		t.Error("single-pole controller unexpectedly survived")
	}
	if f.NoVirtualGoal.ConstraintMet {
		t.Error("no-virtual-goal controller unexpectedly survived")
	}
	if f.SinglePole.ViolatedAt != 0 && f.NoVirtualGoal.ViolatedAt != 0 &&
		f.NoVirtualGoal.ViolatedAt >= f.SinglePole.ViolatedAt {
		t.Errorf("no-virtual-goal (%v) should fail before single-pole (%v)",
			f.NoVirtualGoal.ViolatedAt, f.SinglePole.ViolatedAt)
	}
	t.Logf("OOM times: single-pole %v, no-virtual-goal %v",
		f.SinglePole.ViolatedAt, f.NoVirtualGoal.ViolatedAt)
	if out := RenderFigure7(f); !strings.Contains(out, "FAILS") {
		t.Error("render missing failure annotations")
	}
}

// TestFigure8InteractingControllers asserts §6.5's composition result: two
// controllers on one super-hard goal never violate the memory constraint,
// and both knobs are throttled once the second workload arrives.
func TestFigure8InteractingControllers(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	f := BuildFigure8()
	if f.OOM {
		t.Fatalf("OOM at %v with interacting controllers", f.OOMAt)
	}
	if max := f.Mem.Max(); max > f.Goal {
		t.Errorf("memory peaked at %.0fMB, above the %.0fMB constraint",
			max/float64(mb), f.Goal/float64(mb))
	}
	if f.Completed == 0 {
		t.Error("no calls completed")
	}
	// After the reads join, the request-queue bound must come down from its
	// write-only level to make room for responses.
	if before, after := f.ReqKnob.At(45*time.Second), f.ReqKnob.At(200*time.Second); after >= before {
		t.Errorf("request bound did not yield to the read workload: %v → %v", before, after)
	}
	if out := RenderFigure8(f); !strings.Contains(out, "never exceeded") {
		t.Errorf("render: %s", out)
	}
}

func TestTable6Render(t *testing.T) {
	out := RenderTable6()
	for _, sc := range Scenarios() {
		if !strings.Contains(out, sc.ID) || !strings.Contains(out, sc.Conf) {
			t.Errorf("Table 6 missing %s", sc.ID)
		}
	}
}

func TestTable7CountsIntegrationMarkers(t *testing.T) {
	rows, err := CountIntegrationLoC()
	if err != nil {
		t.Fatal(err)
	}
	byIssue := map[string]LoCRow{}
	for _, r := range rows {
		byIssue[r.Issue] = r
	}
	for _, id := range []string{"CA6059", "HB2149", "HB3813", "HB6728", "HD4995", "MR2820"} {
		r, ok := byIssue[id]
		if !ok {
			t.Errorf("no integration markers for %s", id)
			continue
		}
		if r.Total() == 0 || r.Sensor == 0 {
			t.Errorf("%s: implausible marker counts %+v", id, r)
		}
	}
	out, err := RenderTable7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Sensor") || !strings.Contains(out, "MR2820") {
		t.Errorf("Table 7 render:\n%s", out)
	}
}

func TestScenarioRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Run == nil || sc.ID == "" {
			t.Errorf("incomplete scenario %+v", sc.ID)
		}
		ids[sc.ID] = true
		got, ok := ScenarioByID(sc.ID)
		if !ok || got.ID != sc.ID {
			t.Errorf("ScenarioByID(%s) failed", sc.ID)
		}
	}
	if len(ids) != 6 {
		t.Errorf("scenarios = %d, want 6", len(ids))
	}
	if _, ok := ScenarioByID("nope"); ok {
		t.Error("ScenarioByID should miss unknown ids")
	}
}

func TestResultHelpers(t *testing.T) {
	hi := Result{Tradeoff: 10, HigherIsBetter: true, ConstraintMet: true}
	lo := Result{Tradeoff: 5, HigherIsBetter: true, ConstraintMet: true}
	if !hi.BetterThan(lo) || lo.BetterThan(hi) {
		t.Error("higher-is-better comparison broken")
	}
	if s := hi.Speedup(lo); s != 2 {
		t.Errorf("speedup = %v, want 2", s)
	}
	// Lower-is-better inverts.
	a := Result{Tradeoff: 5, HigherIsBetter: false, ConstraintMet: true}
	c := Result{Tradeoff: 10, HigherIsBetter: false, ConstraintMet: true}
	if !a.BetterThan(c) {
		t.Error("lower-is-better comparison broken")
	}
	if s := a.Speedup(c); s != 2 {
		t.Errorf("speedup = %v, want 2", s)
	}
	// A violating result never beats a satisfying one.
	bad := Result{Tradeoff: 100, HigherIsBetter: true, ConstraintMet: false}
	if bad.BetterThan(lo) || !lo.BetterThan(bad) {
		t.Error("constraint violations must dominate comparisons")
	}
	// Series helpers.
	s := Series{Points: []Point{{1 * time.Second, 1}, {3 * time.Second, 5}}}
	if s.At(2*time.Second) != 1 || s.At(4*time.Second) != 5 || s.At(0) != 0 {
		t.Error("Series.At broken")
	}
	if s.Max() != 5 {
		t.Error("Series.Max broken")
	}
	if (Series{}).Max() != 0 {
		t.Error("empty Series.Max should be 0")
	}
	if p := (Policy{Kind: SinglePolePolicy}); p.String() != "SinglePole" {
		t.Errorf("policy string %q", p)
	}
	if _, ok := hi.SeriesByName("nope"); ok {
		t.Error("SeriesByName should miss")
	}
}

func TestSparkline(t *testing.T) {
	s := Series{Points: []Point{
		{1 * time.Second, 0}, {2 * time.Second, 5}, {3 * time.Second, 10},
	}}
	sp := sparkline(s, 10, 3*time.Second)
	if len([]rune(sp)) != 10 {
		t.Fatalf("width = %d, want 10 (%q)", len([]rune(sp)), sp)
	}
	runes := []rune(sp)
	if runes[0] == runes[len(runes)-1] {
		t.Errorf("rising series rendered flat: %q", sp)
	}
	if sparkline(Series{}, 10, time.Second) != "" {
		t.Error("empty series should render empty")
	}
	if sparkline(s, 0, time.Second) != "" {
		t.Error("zero width should render empty")
	}
	// Constant series renders all-minimum without dividing by zero.
	flat := Series{Points: []Point{{time.Second, 3}, {2 * time.Second, 3}}}
	if got := sparkline(flat, 5, 2*time.Second); len([]rune(got)) != 5 {
		t.Errorf("flat sparkline = %q", got)
	}
	if endOf(s) != 3*time.Second || endOf(Series{}) != 0 {
		t.Error("endOf broken")
	}
}
