package experiments

import (
	"testing"
	"time"
)

func TestHB3813ProfileShape(t *testing.T) {
	p := ProfileHB3813()
	if len(p.Settings) != 4 || p.TotalSamples() != 40 {
		t.Fatalf("profile: %d settings, %d samples", len(p.Settings), p.TotalSamples())
	}
	m, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// Heap grows with the queue bound: positive slope, order of the request
	// size (1 MB/item, attenuated by partial queue occupancy at enqueue).
	if m.Alpha < 0.05e6 || m.Alpha > 2.5e6 {
		t.Errorf("α = %v bytes/item, want ≈1MB/item scale", m.Alpha)
	}
	lambda := p.Lambda()
	if lambda <= 0 || lambda > 0.5 {
		t.Errorf("λ = %v, want small positive", lambda)
	}
	t.Logf("model %v, λ=%.3f, Δ=%.2f, pole=%.3f", m, lambda, p.Delta(), 1-2/p.Delta())
}

func TestHB3813BuggyDefaultOOMs(t *testing.T) {
	res := RunHB3813(Static(1000))
	if res.ConstraintMet || res.Violation != "OOM" {
		t.Fatalf("buggy default should OOM: %+v", res.Violation)
	}
	if res.ViolatedAt > hb3813PhaseShift {
		t.Errorf("buggy default should die in phase 1, died at %v", res.ViolatedAt)
	}
}

func TestHB3813PatchDefaultFailsPhase2(t *testing.T) {
	res := RunHB3813(Static(100))
	if res.ConstraintMet {
		t.Fatal("patched default should still fail in phase 2")
	}
	if res.ViolatedAt < hb3813PhaseShift {
		t.Errorf("patched default should survive phase 1, failed at %v", res.ViolatedAt)
	}
}

func TestHB3813ConservativeStaticMeetsConstraint(t *testing.T) {
	res := RunHB3813(Static(75))
	if !res.ConstraintMet {
		t.Fatalf("static 75 should be safe: violated at %v (%s)", res.ViolatedAt, res.Violation)
	}
	if res.Tradeoff <= 0 {
		t.Error("no throughput recorded")
	}
}

func TestHB3813SmartConfMeetsConstraintAndBeatsStatic(t *testing.T) {
	sc := RunHB3813(SmartConf())
	if !sc.ConstraintMet {
		t.Fatalf("SmartConf violated the constraint at %v (%s)", sc.ViolatedAt, sc.Violation)
	}
	// Find the best static setting that satisfies the constraint.
	grid := HB3813Scenario().StaticGrid
	var best Result
	for _, v := range grid {
		r := RunHB3813(Static(v))
		if r.ConstraintMet && (best.Policy.Kind != StaticPolicy || r.Tradeoff > best.Tradeoff) {
			best = r
		}
	}
	if best.Policy.Kind != StaticPolicy {
		t.Fatal("no static setting satisfied the constraint — calibration broken")
	}
	speedup := sc.Speedup(best)
	t.Logf("SmartConf %.2f ops/s vs best static %v %.2f ops/s → speedup %.2f×",
		sc.Tradeoff, best.Policy, best.Tradeoff, speedup)
	if speedup < 1.05 {
		t.Errorf("SmartConf speedup %.2f× over best static; paper reports ≈1.36×", speedup)
	}
	// The knob must adapt across phases: higher in phase 1 than phase 2.
	knob, _ := sc.SeriesByName("max.queue.size")
	p1 := knob.At(190 * time.Second)
	p2 := knob.At(690 * time.Second)
	if p1 <= p2 {
		t.Errorf("knob did not adapt: phase1=%v phase2=%v", p1, p2)
	}
}
