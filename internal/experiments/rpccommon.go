package experiments

import (
	"math/rand"
	"time"

	"smartconf/internal/core"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/sim"
	"smartconf/internal/workload"

	smartconf "smartconf"
)

// Shared machinery for the RPC-server scenarios (HB3813, HB6728, and the
// Figure 6–8 case studies).

const (
	mb = int64(1) << 20

	// rpcHeapCapacity is the simulated region server's JVM heap; the user's
	// memory goal (495 MB, as in Figure 6) sits just under it.
	rpcHeapCapacity = 512 * mb
	rpcMemoryGoal   = 495 * mb
	// rpcBaseHeap models code/metadata/block-cache residency.
	rpcBaseHeap = 280 * mb
	// rpcNoiseMax bounds the random-walk footprint of "other objects".
	rpcNoiseMax = 20 * mb
)

func rpcConfig() rpcserver.Config {
	cfg := rpcserver.DefaultConfig()
	cfg.BaseHeapBytes = rpcBaseHeap
	cfg.MaxBatch = 4
	return cfg
}

// rpcWorkload drives bursty YCSB traffic into the server: every burstEvery,
// a burst of ~burstSize operations arrives back-to-back. Bursts are what
// fill the call queue to its bound (and what OOM unbounded queues).
type rpcWorkload struct {
	gen        *workload.YCSB
	burstSize  int
	burstEvery time.Duration
	// spacing is the gap between operations inside a burst (default 10 ms):
	// bursts are fast relative to the drain rate but not instantaneous, so
	// the controller can react while one is arriving.
	spacing time.Duration
	phases  []workload.YCSBPhase
}

// run starts the burst loop and the phase switcher; onOp receives each
// operation.
func (w *rpcWorkload) run(s *sim.Simulation, until time.Duration, rng *rand.Rand, onOp func(workload.Op)) {
	spacing := w.spacing
	if spacing <= 0 {
		spacing = 10 * time.Millisecond
	}
	s.Every(0, w.burstEvery, func() bool {
		if phase, _ := workload.PhaseAt(w.phases, s.Now()); phase.Name != w.gen.Phase().Name {
			w.gen.SetPhase(phase)
		}
		n := w.burstSize + rng.Intn(w.burstSize/5+1) - w.burstSize/10 // ±10%
		for i := 0; i < n; i++ {
			op := w.gen.NextOp()
			s.After(time.Duration(i)*spacing, func() { onOp(op) })
		}
		return s.Now() < until
	})
}

// heapNoise injects the fluctuating "other objects" footprint: a bounded
// random walk re-sampled every 500 ms. A failed noise allocation is an OOM
// like any other.
func heapNoise(s *sim.Simulation, heap *memsim.Heap, rng *rand.Rand, max int64, until time.Duration) {
	var current int64
	s.Every(250*time.Millisecond, 500*time.Millisecond, func() bool {
		if heap.OOM() {
			return false
		}
		delta := int64(rng.Intn(int(10*mb+1))) - 5*mb
		next := current + delta
		if next < 0 {
			next = 0
		}
		if next > max {
			next = max
		}
		if next > current {
			if err := heap.Alloc(next - current); err != nil {
				return false
			}
		} else {
			heap.Free(current - next)
		}
		current = next
		return s.Now() < until
	})
}

// rpcProbe samples the scenario's time series once per second.
type rpcProbe struct {
	mem        Series
	knob       Series
	throughput Series
	completed  Series
}

func startRPCProbe(s *sim.Simulation, heap *memsim.Heap, sv *rpcserver.Server, knob func() float64, knobName string, until time.Duration) *rpcProbe {
	p := &rpcProbe{
		mem:        Series{Name: "used_memory", Unit: "bytes"},
		knob:       Series{Name: knobName, Unit: "items"},
		throughput: Series{Name: "throughput", Unit: "ops/s"},
		completed:  Series{Name: "completed_ops", Unit: "ops"},
	}
	s.Every(time.Second, time.Second, func() bool {
		now := s.Now()
		p.mem.Points = append(p.mem.Points, Point{now, float64(heap.Used())})
		p.knob.Points = append(p.knob.Points, Point{now, knob()})
		p.throughput.Points = append(p.throughput.Points, Point{now, sv.Throughput()})
		p.completed.Points = append(p.completed.Points, Point{now, float64(sv.Completed())})
		return now < until && !heap.OOM()
	})
	return p
}

// ablationController builds the Figure 7 controllers from the same
// profiling data SmartConf synthesizes from. fixedPole > 0 pins the regular
// pole (the paper uses 0.9 so two-pole switching is the only difference
// between SmartConf and the single-pole baseline).
func ablationController(kind PolicyKind, profile core.Profile, goal, fixedPole float64) (*core.Controller, error) {
	model, err := profile.Fit()
	if err != nil {
		return nil, err
	}
	pole := core.PoleFromDelta(profile.Delta())
	if fixedPole > 0 {
		pole = fixedPole
	}
	lambda := profile.Lambda()
	switch kind {
	case SmartConfPolicy:
		// Full SmartConf with a pinned regular pole: hard goal ⇒ virtual
		// goal + danger-region pole 0.
		return core.NewController(model, pole, lambda,
			core.Goal{Metric: "memory", Target: goal, Hard: true},
			core.Options{Min: 0, Max: 1e9})
	case SinglePolePolicy:
		// Same virtual goal as SmartConf, but the regular pole everywhere:
		// model it as a SOFT goal whose target is the virtual goal (no
		// danger-region switch ever happens).
		target := core.VirtualGoal(goal, lambda, core.UpperBound)
		return core.NewController(model, pole, lambda,
			core.Goal{Metric: "memory", Target: target, Hard: false},
			core.Options{Min: 0, Max: 1e9})
	case NoVirtualGoalPolicy:
		// Two-pole logic but targeting the REAL constraint: λ = 0 places the
		// virtual goal exactly on the goal.
		return core.NewController(model, pole, 0,
			core.Goal{Metric: "memory", Target: goal, Hard: true},
			core.Options{Min: 0, Max: 1e9})
	default:
		return nil, nil
	}
}

// publicProfile converts an internal profile to the public API type.
func publicProfile(p core.Profile) *smartconf.Profile {
	out := smartconf.NewProfile()
	for _, s := range p.Settings {
		out.Add(s.Setting, s.Samples...)
	}
	return out
}

// evalUpperBound scans a metric series against a per-time goal and reports
// the first violation.
func evalUpperBound(series Series, goalAt func(t time.Duration) float64) (met bool, at time.Duration, worst float64) {
	met = true
	for _, p := range series.Points {
		if p.V > goalAt(p.T) {
			if met {
				met = false
				at = p.T
			}
			if p.V > worst {
				worst = p.V
			}
		}
	}
	return met, at, worst
}

// core_PoleForTest exposes the synthesized pole for test logging.
func core_PoleForTest(p core.Profile) float64 { return core.PoleFromDelta(p.Delta()) }
