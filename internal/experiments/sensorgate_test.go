package experiments

import (
	"testing"
	"time"

	"smartconf"
	"smartconf/internal/dfs"
	"smartconf/internal/kvstore"
	"smartconf/internal/memsim"
	"smartconf/internal/workload"
)

// The HB2149 sensor fires at flush START, but its measurement is the
// PREVIOUS flush's block time. On the very first flush there is no previous
// flush: Latency.Last() returns a phantom 0 s sample that reads "goal met
// with 10 s of headroom" and would move the knob off fabricated data. The
// gated hook must hold the Initial fraction until a real measurement exists,
// then act on the first real one.
func TestHB2149SensorIgnoresPhantomFirstSample(t *testing.T) {
	s := newScenarioSim()
	heap := memsim.NewHeap(2 << 30)
	st := kvstore.NewMemstore(s, heap, hb2149Config(), 0.5)
	sc, err := smartconf.New(smartconf.Spec{
		Name:    "global.memstore.lowerLimit",
		Metric:  "write_block_time",
		Goal:    hb2149Goal1,
		Initial: 0.5,
		Min:     0.01, Max: 1,
	}, publicProfile(ProfileHB2149()))
	if err != nil {
		t.Fatal(err)
	}
	hook := hb2149Sensor(st, sc)
	st.BeforeFlush = hook

	// Drive the profiled write workload until the first flush completes.
	gen := workload.NewYCSB(2149, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb})
	s.Every(0, hb2149WriteEvery, func() bool {
		st.Write(gen.NextOp().Bytes)
		return st.BlockTimes().Count() == 0
	})
	s.Run()

	if st.BlockTimes().Count() == 0 {
		t.Fatal("workload never completed a flush")
	}
	// The first flush started with zero completed measurements; the hook ran
	// (BeforeFlush is installed) and must have held the Initial fraction.
	if got := st.FlushFraction(); got != 0.5 {
		t.Fatalf("flush fraction moved to %v before any measurement existed", got)
	}
	// With a real sample available the same hook does act.
	hook()
	if got := st.FlushFraction(); got == 0.5 {
		t.Fatal("hook did not act on the first real measurement")
	}
}

// Same contract for the HD4995 per-chunk sensor: the first chunk of the
// first du has no completed lock hold, and a phantom 0 s hold would claim
// the full 20 s goal as headroom and balloon the limit. The gate holds the
// Initial limit through the first chunk; from the second chunk on the
// controller acts on real holds.
func TestHD4995SensorIgnoresPhantomFirstSample(t *testing.T) {
	s := newScenarioSim()
	nn := dfs.New(s, hd4995Config(), 1)
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:    "content-summary.limit",
		Metric:  "writer_block_time",
		Goal:    hd4995Goal1,
		Initial: 1,
		Min:     1, Max: 1e7,
	}, publicProfile(ProfileHD4995()), nil)
	if err != nil {
		t.Fatal(err)
	}
	hook := hd4995Sensor(nn, ic)
	nn.BeforeChunk = hook

	// Before any hold has completed the hook must be a no-op.
	hook()
	if got := nn.Limit(); got != 1 {
		t.Fatalf("limit moved to %d before any lock hold completed", got)
	}

	s.At(0, func() { nn.Du(func(time.Duration) {}) })
	s.RunUntil(40 * time.Second)

	// Chunk 1 ran gated (limit still 1 → one file); chunk 2 started with a
	// real hold sample and the controller raised the limit.
	if got := nn.HoldTimes().Count(); got == 0 {
		t.Fatal("du never completed a lock hold")
	}
	if got := nn.Limit(); got <= 1 {
		t.Fatalf("limit = %d after a real hold; want the controller to raise it", got)
	}
}
