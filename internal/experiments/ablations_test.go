package experiments

import (
	"strings"
	"testing"
)

func TestAblationPolesAutoIsSafeAndResponsive(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	rows := AblationPoles()
	var auto *PoleAblationRow
	for i := range rows {
		r := &rows[i]
		t.Logf("pole %.3f auto=%v met=%v tput=%.2f conv=%v",
			r.Pole, r.Auto, r.ConstraintMet, r.Throughput, r.Convergence)
		if r.Auto {
			auto = r
		}
	}
	if auto == nil {
		t.Fatal("sweep did not include the automatically derived pole")
	}
	if !auto.ConstraintMet {
		t.Error("the §5.1 pole violated the constraint")
	}
	// The extreme conservative pole must be visibly slower to converge or
	// visibly worse on throughput than the automatic one.
	slowest := rows[len(rows)-1] // 0.99
	if slowest.Pole != 0.99 {
		t.Fatalf("expected 0.99 last, got %v", slowest.Pole)
	}
	if !(slowest.Convergence > auto.Convergence || slowest.Throughput < auto.Throughput) {
		t.Errorf("pole 0.99 (conv %v, tput %.2f) shows no cost vs auto (conv %v, tput %.2f)",
			slowest.Convergence, slowest.Throughput, auto.Convergence, auto.Throughput)
	}
	if out := RenderAblationPoles(rows); !strings.Contains(out, "§5.1") {
		t.Error("render missing the auto marker")
	}
}

func TestAblationVirtualGoalMargin(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	rows := AblationVirtualGoalMargin()
	byLambda := map[float64]MarginAblationRow{}
	var auto MarginAblationRow
	for _, r := range rows {
		t.Logf("λ=%.3f vg=%.0fMB met=%v tput=%.2f", r.Lambda, r.VirtualGoalMB, r.ConstraintMet, r.Throughput)
		byLambda[r.Lambda] = r
		if r.Auto {
			auto = r
		}
	}
	// Zero margin leaves the controller targeting the real constraint: the
	// noise process must push it over at least once.
	if byLambda[0].ConstraintMet {
		t.Error("λ=0 (no virtual goal) unexpectedly satisfied the constraint")
	}
	if !auto.ConstraintMet {
		t.Error("the measured λ violated the constraint")
	}
	// Excess margin costs throughput relative to the measured λ.
	if fat := byLambda[0.3]; fat.ConstraintMet && fat.Throughput >= auto.Throughput {
		t.Errorf("λ=0.3 throughput %.2f should be below auto %.2f", fat.Throughput, auto.Throughput)
	}
	if out := RenderAblationMargins(rows); !strings.Contains(out, "§5.2") {
		t.Error("render missing the auto marker")
	}
}

func TestAblationInteractionFactor(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	a := AblationInteractionFactor()
	if a.WithFactor.OOM {
		t.Error("N=2 OOMed")
	}
	if a.WithFactor.Mem.Max() > a.WithFactor.Goal {
		t.Errorf("N=2 peak %.0fMB above the goal", a.WithFactor.Mem.Max()/float64(mb))
	}
	// Naive composition must be visibly worse on at least one §5.6 axis:
	// an outright violation, a higher memory peak, or more actuation churn
	// (tandem overcorrection).
	worse := a.WithoutFactor.OOM ||
		a.WithoutFactor.Mem.Max() > a.WithFactor.Mem.Max() ||
		a.ChurnWithout > a.ChurnWith
	if !worse {
		t.Errorf("N=1 shows no cost: peak %.0fMB vs %.0fMB, churn %.0f vs %.0f",
			a.WithoutFactor.Mem.Max()/float64(mb), a.WithFactor.Mem.Max()/float64(mb),
			a.ChurnWithout, a.ChurnWith)
	}
	t.Logf("N=2 peak %.0fMB churn %.0f; N=1 peak %.0fMB churn %.0f (OOM=%v)",
		a.WithFactor.Mem.Max()/float64(mb), a.ChurnWith,
		a.WithoutFactor.Mem.Max()/float64(mb), a.ChurnWithout, a.WithoutFactor.OOM)
	if out := RenderAblationInteraction(a); !strings.Contains(out, "N=1") {
		t.Error("render incomplete")
	}
}

func TestAblationAdaptiveModel(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	a := AblationAdaptiveModel()
	if !a.Fixed.ConstraintMet || !a.Adaptive.ConstraintMet {
		t.Fatalf("constraints: fixed=%v adaptive=%v", a.Fixed.ConstraintMet, a.Adaptive.ConstraintMet)
	}
	// Phase 2's true slope is ≈2 MB/item; the adaptive estimate must end
	// closer to it than the fixed profiled slope does.
	trueAlpha := 2.0 * float64(mb)
	errFixed := abs(a.FinalAlphaFixed - trueAlpha)
	errAdaptive := abs(a.FinalAlphaAdaptive - trueAlpha)
	t.Logf("final α: fixed %.2f MB/item, adaptive %.2f MB/item (true ≈2)",
		a.FinalAlphaFixed/float64(mb), a.FinalAlphaAdaptive/float64(mb))
	if errAdaptive >= errFixed {
		t.Errorf("adaptive slope error %.0f not below fixed %.0f", errAdaptive, errFixed)
	}
	if out := RenderAblationAdaptive(a); !strings.Contains(out, "RLS") {
		t.Error("render incomplete")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAblationProfilingDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	rows := AblationProfilingDepth()
	for _, r := range rows {
		t.Logf("%d settings × %d samples: met=%v tput=%.2f err=%q",
			r.Settings, r.Samples, r.ConstraintMet, r.Throughput, r.SynthesisErr)
	}
	// The full plan and the sparse 2×3 plan must both satisfy the
	// constraint — the paper's "no intensive profiling required".
	if !rows[0].ConstraintMet || rows[0].SynthesisErr != "" {
		t.Error("full profiling plan failed")
	}
	if !rows[2].ConstraintMet || rows[2].SynthesisErr != "" {
		t.Error("sparse 2×3 plan failed — the robustness claim does not reproduce")
	}
	// A single setting cannot identify a slope: synthesis must refuse.
	if rows[3].SynthesisErr == "" {
		t.Error("single-setting profile should fail synthesis loudly")
	}
}

// TestRobustnessSweep backs the paper's §6.1 claim that one profiled
// controller handles "a wide variety of workload settings": the hard memory
// constraint must hold on every cell of a 54-workload grid the profile
// never saw.
func TestRobustnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("54-cell sweep")
	}
	cells := RunRobustnessSweep()
	failures := 0
	for _, c := range cells {
		if !c.ConstraintMet {
			failures++
			t.Errorf("cell burst=%d every=%.1fs req=%.1fMB writes=%.1f: %s",
				c.BurstSize, c.BurstEverySec, c.RequestMB, c.WriteRatio, c.Violation)
		}
	}
	t.Logf("%d/%d cells satisfied the constraint", len(cells)-failures, len(cells))
	if out := RenderRobustness(cells); !strings.Contains(out, "robustness") {
		t.Error("render incomplete")
	}
}

// TestBackendAIMD backs the related-work claim that control-theoretic
// solutions beat hand-tuned heuristics at constrained optimization: the
// synthesized controller must satisfy the constraint AND match or beat
// every AIMD parameterization that also satisfies it.
func TestBackendAIMD(t *testing.T) {
	if testing.Short() {
		t.Skip("backend comparison")
	}
	c := AblationBackendAIMD()
	t.Logf("SmartConf: met=%v tput=%.2f", c.SmartConf.ConstraintMet, c.SmartConf.Tradeoff)
	t.Logf("AIMD cautious: met=%v tput=%.2f (%s)", c.AIMDCautious.ConstraintMet, c.AIMDCautious.Tradeoff, c.AIMDCautious.Violation)
	t.Logf("AIMD aggressive: met=%v tput=%.2f (%s)", c.AIMDAggressive.ConstraintMet, c.AIMDAggressive.Tradeoff, c.AIMDAggressive.Violation)
	if !c.SmartConf.ConstraintMet {
		t.Fatal("SmartConf violated its constraint")
	}
	for name, r := range map[string]Result{"cautious": c.AIMDCautious, "aggressive": c.AIMDAggressive} {
		if r.ConstraintMet && r.Tradeoff > c.SmartConf.Tradeoff {
			t.Errorf("AIMD %s beat SmartConf while satisfying the constraint (%.2f > %.2f)",
				name, r.Tradeoff, c.SmartConf.Tradeoff)
		}
	}
	if out := RenderBackendComparison(c); !strings.Contains(out, "AIMD") {
		t.Error("render incomplete")
	}
}

// TestSeedSensitivity reruns the HB3813 SmartConf evaluation under five
// different workload seeds: the constraint must hold on every one (the
// headline result is not a seed artifact).
func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(1); seed <= 5; seed++ {
		r := runHB3813(SmartConf(), hb3813Phases(), hb3813RunTime, seed*101,
			hb3813BurstSize, hb3813BurstEvery, hb3813Spacing)
		if !r.ConstraintMet {
			t.Errorf("seed %d: %s at %v", seed, r.Violation, r.ViolatedAt)
		}
		if r.Tradeoff < 10 {
			t.Errorf("seed %d: implausibly low throughput %.2f", seed, r.Tradeoff)
		}
	}
}
