package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/declog"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/proptest"
)

// This file is the bridge between the chaos matrix and the decision log:
// logged runs (every controller decision captured into a declog ring),
// envelope replay (re-execute a serialized run's coordinates through the
// deterministic engine) and counterfactual cells ("what if the pole were 0.9
// from period k?") for cmd/smartconf-replay.

// DeclogCapacity is the capture ring used for logged chaos runs: large
// enough to keep every decision of the densest harness generation that
// matters for replay, small enough that the ring stays cache-resident.
const DeclogCapacity = 4096

// ChaosHooks carries the optional decision-log wiring into a chaos harness:
// a capture log and/or a counterfactual perturbation for the substrate's
// SmartConf controllers. The nil ChaosHooks means "run exactly as before".
type ChaosHooks struct {
	Log     *declog.Log
	Perturb declog.Perturb
}

// confOpts renders the hooks as construction options for the harness's
// smartconf.New/NewIndirect calls (and their crash-rebuild paths).
func (h *ChaosHooks) confOpts() []smartconf.Option {
	if h == nil {
		return nil
	}
	var opts []smartconf.Option
	if h.Log != nil {
		opts = append(opts, smartconf.WithDecisionLog(h.Log))
	}
	if !h.Perturb.Zero() {
		opts = append(opts, smartconf.WithPerturb(h.Perturb))
	}
	return opts
}

// logRef returns the capture log for the harness's chaos.LoopConfig (nil-safe).
func (h *ChaosHooks) logRef() *declog.Log {
	if h == nil {
		return nil
	}
	return h.Log
}

// RunChaosLogged executes one chaos cell with decision logging on and
// returns both the run report and the serializable decision log. Uncached:
// callers that want the cache go through CounterfactualChaos, whose key
// includes the perturbation.
func RunChaosLogged(substrate, fault string, seed int64, p declog.Perturb) (proptest.Report, declog.Envelope) {
	log := declog.New(DeclogCapacity)
	rep := runChaosCell(substrate, fault, seed, &ChaosHooks{Log: log, Perturb: p})
	return rep, log.Envelope(substrate, rep.Plan, seed, rep.Fingerprint)
}

// RunChaosPropertyLogged is RunChaosProperty with decision logging: the
// seed-generated plan, zero perturbation, a fresh capture log.
func RunChaosPropertyLogged(substrate string, seed int64) (proptest.Report, declog.Envelope) {
	return RunChaosLogged(substrate, ChaosGenerated, seed, declog.Perturb{})
}

// ValidateEnvelopeRun checks that an envelope's run coordinates name a cell
// this build can re-execute. Parse validates the codec-level invariants;
// this validates the semantic ones, so the replay tool fails cleanly on a
// log from an unknown substrate instead of panicking inside the harness
// dispatch.
func ValidateEnvelopeRun(env declog.Envelope) error {
	ok := false
	for _, s := range ChaosSubstrates() {
		if s == env.Substrate {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("experiments: unknown substrate %q (have %v)", env.Substrate, ChaosSubstrates())
	}
	if env.Plan != ChaosGenerated {
		ok = false
		for _, f := range ChaosFaults() {
			if f == env.Plan {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("experiments: unknown fault plan %q (have %v and %q)", env.Plan, ChaosFaults(), ChaosGenerated)
		}
	}
	return nil
}

// ReplayEnvelope re-executes a logged run from its envelope coordinates with
// a fresh capture ring of the same capacity, optionally perturbed. With a
// zero perturbation the returned envelope is byte-identical to the original
// (the zero-perturbation replay oracle); with a perturbation it is the
// counterfactual run's log.
func ReplayEnvelope(env declog.Envelope, p declog.Perturb) (proptest.Report, declog.Envelope, error) {
	if err := ValidateEnvelopeRun(env); err != nil {
		return proptest.Report{}, declog.Envelope{}, err
	}
	log := declog.New(env.Capacity)
	rep := runChaosCell(env.Substrate, env.Plan, env.Seed, &ChaosHooks{Log: log, Perturb: p})
	return rep, log.Envelope(env.Substrate, rep.Plan, env.Seed, rep.Fingerprint), nil
}

// CounterfactualChaos runs one perturbed chaos cell through the run cache:
// the perturbation is part of the key, so a counterfactual sweep is memoized
// exactly like any other artifact (byte-identical across worker counts, zero
// simulations on a warm disk cache).
func CounterfactualChaos(substrate, fault string, seed int64, p declog.Perturb) proptest.Report {
	return memoKeyed("REPLAY-"+substrate, fault+"|perturb="+p.Key(), "replay", seed, func() proptest.Report {
		return runChaosCell(substrate, fault, seed, &ChaosHooks{Perturb: p})
	})
}

// Counterfactual is one row of the delta artifact: a perturbed re-execution
// of a logged run next to its baseline.
type Counterfactual struct {
	Perturb declog.Perturb
	Report  proptest.Report
}

// RunCounterfactuals fans a perturbation sweep over the engine's worker
// pool, each cell served from the run cache.
func RunCounterfactuals(env declog.Envelope, perturbs []declog.Perturb) ([]Counterfactual, error) {
	if err := ValidateEnvelopeRun(env); err != nil {
		return nil, err
	}
	out := engine.MapSlice(perturbs, func(p declog.Perturb) Counterfactual {
		return Counterfactual{Perturb: p, Report: CounterfactualChaos(env.Substrate, env.Plan, env.Seed, p)}
	})
	return out, nil
}

// RenderCounterfactuals formats the counterfactual-delta artifact: for each
// perturbation, the oracle verdict, the progress and peak-metric deltas
// against the logged baseline, and when the knob trajectory first diverges.
// The trailing fingerprint hashes every row in fixed order — byte-identical
// across worker counts and rebuilds.
func RenderCounterfactuals(env declog.Envelope, base proptest.Report, rows []Counterfactual) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Counterfactual replay: %s/%s seed %d (logged run: %d decisions, %d sources, epoch %d)\n",
		env.Substrate, env.Plan, env.Seed, env.Total, len(env.Sources), env.Epoch)
	fmt.Fprintf(&b, "baseline: verdict %s, progress %d, peak %s %.6g\n",
		ChaosVerdict(&base), base.Progress, metricLabel(base), peakMetric(base))
	fmt.Fprintf(&b, "\n%-28s %-14s %12s %14s %12s\n", "perturbation", "verdict", "Δprogress", "peak-metric", "diverges@")
	for _, r := range rows {
		rep := r.Report
		div := "never"
		if d, ok := firstKnobDivergence(base, rep); ok {
			div = fmt.Sprintf("%ds", int(d/time.Second))
		}
		fmt.Fprintf(&b, "%-28s %-14s %+12d %14.6g %12s\n",
			r.Perturb.Key(), ChaosVerdict(&rep), rep.Progress-base.Progress, peakMetric(rep), div)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "base=%s;", base.Fingerprint)
	for _, r := range rows {
		fmt.Fprintf(h, "%s=%s;", r.Perturb.Key(), r.Report.Fingerprint)
	}
	fmt.Fprintf(&b, "\nreplay: each row is a pure function of (substrate, plan, seed, perturbation); artifact fingerprint %016x\n", h.Sum64())
	return b.String()
}

func metricLabel(r proptest.Report) string {
	if r.Crashed {
		return "(crashed)"
	}
	return "metric"
}

func peakMetric(r proptest.Report) float64 {
	var peak float64
	for _, s := range r.Metric {
		if s.V > peak {
			peak = s.V
		}
	}
	return peak
}

// firstKnobDivergence returns the time of the first knob sample where the
// two runs disagree (or one trace ends before the other).
func firstKnobDivergence(a, b proptest.Report) (time.Duration, bool) {
	n := len(a.Knob)
	if len(b.Knob) < n {
		n = len(b.Knob)
	}
	for i := 0; i < n; i++ {
		if a.Knob[i].T != b.Knob[i].T || a.Knob[i].V != b.Knob[i].V {
			return a.Knob[i].T, true
		}
	}
	if len(a.Knob) != len(b.Knob) {
		if n == 0 {
			return 0, true
		}
		return a.Knob[n-1].T, true
	}
	return 0, false
}
