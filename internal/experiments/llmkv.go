package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/llmserve"
	"smartconf/internal/memsim"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// LLM-KV: the paper's thesis carried into LLM inference serving.
// max.num.batched.tokens bounds the continuous batch; every resident token
// pins KV-cache bytes on the GPU heap, so the bound indirectly caps memory
// (hard no-OOM constraint) — but admission counts PROMPT tokens only
// (output lengths are unknowable in advance), so the memory a setting
// implies depends on the workload's output/prompt ratio. Chat traffic
// (short prompts, long answers) triples a batch's footprint as it decodes;
// long-document summarization (huge prompts, short summaries) barely grows
// it. No static setting fits both: one sized for chat bursts idles most of
// the KV budget once documents arrive, one sized for documents OOMs under
// chat. SmartConf controls the deputy (KV resident bytes) directly and
// re-converges across the shift.
//
// A second knob rides along: admission.queue.limit bounds the waiting
// queue, trading rejected requests against time-to-first-token — a DIRECT
// soft-goal configuration, like the SLA extension.

const (
	llmRunTime    = 600 * time.Second
	llmPhaseShift = 300 * time.Second // chat → long-document summarization

	// A 16 GiB-class accelerator; the operator's memory goal sits just under
	// capacity, as in the RPC scenarios.
	llmHeapCapacity = int64(16) << 30
	llmMemoryGoal   = int64(15) << 30
	// llmNoiseMax bounds the random-walk footprint of "other allocations"
	// (graph captures, sampling buffers, fragmentation).
	llmNoiseMax = 128 * mb

	llmBurstEvery  = 25 * time.Second
	llmTTFTGoalSec = 20.0 // soft TTFT-p95 goal for admission.queue.limit

	llmProfileTime     = 70 * time.Second
	llmTTFTProfileTime = 100 * time.Second

	// Profiling runs offline on a machine without the production memory
	// budget (§6.1 profiles settings that would be unsafe in production), so
	// the heap→setting relation is measured unclipped.
	llmProfileHeap int64 = 64 << 30
)

func llmConfig() llmserve.Config { return llmserve.DefaultConfig() }

// llmKVPerToken is the deputy unit conversion: the knob is in tokens, the
// deputy (and the profile) in KV bytes.
func llmKVPerToken() int64 { return llmConfig().KVBytesPerToken }

func llmPhases() []workload.LLMPhase {
	return []workload.LLMPhase{
		{
			// Sustained chat overload: short questions, long answers. Every
			// admitted prompt token triples as its answer decodes, so a batch
			// bound sized for documents fills the heap 2-3× over here.
			Name: "chat", Duration: llmPhaseShift,
			RequestsPerSec: 60, PromptMean: 150, OutputMean: 300,
			BurstSize: 60, BurstSpacing: 50 * time.Millisecond,
		},
		{
			Name:           "summarize",
			RequestsPerSec: 12, PromptMean: 1800, OutputMean: 220,
		},
	}
}

// llmDrive starts Poisson arrivals (with the phase switcher) and the burst
// loop against the server.
func llmDrive(s *sim.Simulation, sv *llmserve.Server, phases []workload.LLMPhase, seed int64, until time.Duration) {
	gen := workload.NewLLMGen(seed, phases[0])
	var arrive func()
	arrive = func() {
		if s.Now() >= until {
			return
		}
		if ph, _ := workload.LLMPhaseAt(phases, s.Now()); ph.Name != gen.Phase().Name {
			gen.SetPhase(ph)
		}
		sv.Offer(gen.NextRequest())
		s.After(gen.NextInterarrival(), arrive)
	}
	s.After(0, arrive)

	// Bursts fire on a fixed cadence but only in phases that declare them —
	// chat traffic arrives in waves; document batches trickle steadily.
	s.Every(llmBurstEvery, llmBurstEvery, func() bool {
		ph, _ := workload.LLMPhaseAt(phases, s.Now())
		if ph.Name != gen.Phase().Name {
			gen.SetPhase(ph)
		}
		for i := 0; i < ph.BurstSize; i++ {
			req := gen.NextRequest()
			s.After(time.Duration(i)*ph.BurstSpacing, func() { sv.Offer(req) })
		}
		return s.Now() < until
	})
}

// ProfileLLMKV profiles the GPU heap against max.num.batched.tokens pinned
// at four settings. Samples are recorded against the setting's KV-byte
// equivalent — the deputy is prompt-resident KV bytes, which the bound caps
// directly — so the fitted slope α is d(heap)/d(prompt bytes). The workload
// is chat-shaped (answers longer than questions) and saturating, so α bakes
// in the decode amplification: every admitted prompt token drags ≈2× its
// size in uncounted decode KV behind it, and the controller's model must
// know that or its corrections overshoot the real heap response.
func ProfileLLMKV() core.Profile {
	return memoProfile("LLMKV", func() core.Profile {
		kvb := float64(llmKVPerToken())
		return profileSweep([]float64{16384, 32768, 49152, 65536}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(7001))
			heap := memsim.NewHeap(llmProfileHeap)
			sv := llmserve.New(s, heap, llmConfig())
			sv.SetMaxBatchedTokens(int(setting))
			heapNoise(s, heap, rng, llmNoiseMax, llmProfileTime)

			taken := 0
			s.Every(25*time.Second, 4*time.Second, func() bool {
				if taken < 10 {
					record(setting*kvb, float64(heap.Used()))
					taken++
				}
				return taken < 10
			})
			llmDrive(s, sv, []workload.LLMPhase{
				// Saturating: offered load exceeds service capacity at every
				// pinned setting, so the admitted prompts actually fill the bound.
				{Name: "profiling", RequestsPerSec: 80, PromptMean: 150, OutputMean: 300},
			}, 7002, llmProfileTime)
			s.RunUntil(llmProfileTime)
		})
	})
}

// ProfileLLMKVTTFT profiles TTFT p95 against admission.queue.limit pinned
// at four settings, under a sustained document overload (the regime where
// the waiting queue, and therefore TTFT, actually builds).
func ProfileLLMKVTTFT() core.Profile {
	return memoProfile("LLMKV-TTFT", func() core.Profile {
		return profileSweep([]float64{64, 128, 256, 384}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(7003))
			heap := memsim.NewHeap(llmHeapCapacity)
			sv := llmserve.New(s, heap, llmConfig())
			// A modest pinned batch bound keeps service slow so the waiting
			// queue — not the batch — is the binding resource.
			sv.SetMaxBatchedTokens(16384)
			sv.SetWaitingLimit(int(setting))
			heapNoise(s, heap, rng, llmNoiseMax, llmTTFTProfileTime)

			taken := 0
			s.Every(40*time.Second, 6*time.Second, func() bool {
				if taken < 10 {
					record(setting, sv.TTFT().Percentile(95).Seconds())
					taken++
				}
				return taken < 10
			})
			llmDrive(s, sv, []workload.LLMPhase{
				{Name: "profiling", RequestsPerSec: 30, PromptMean: 1500, OutputMean: 200},
			}, 7004, llmTTFTProfileTime)
			s.RunUntil(llmTTFTProfileTime)
		})
	})
}

// llmProbe samples the scenario's time series once per second.
type llmProbe struct {
	mem       Series
	knob      Series
	goodput   Series
	ttftP95   Series
	completed Series
}

func startLLMProbe(s *sim.Simulation, heap *memsim.Heap, sv *llmserve.Server, until time.Duration) *llmProbe {
	p := &llmProbe{
		mem:       Series{Name: "used_memory", Unit: "bytes"},
		knob:      Series{Name: "max.batched.tokens", Unit: "tokens"},
		goodput:   Series{Name: "goodput", Unit: "tok/s"},
		ttftP95:   Series{Name: "ttft_p95", Unit: "s"},
		completed: Series{Name: "completed_requests", Unit: "requests"},
	}
	s.Every(time.Second, time.Second, func() bool {
		now := s.Now()
		knob := float64(sv.MaxBatchedTokens())
		if knob > 1e9 {
			knob = 1e9 // the unbounded default, kept plottable
		}
		snap := sv.TTFT().Snapshot()
		p.mem.Points = append(p.mem.Points, Point{now, float64(heap.Used())})
		p.knob.Points = append(p.knob.Points, Point{now, knob})
		p.goodput.Points = append(p.goodput.Points, Point{now, sv.Goodput()})
		p.ttftP95.Points = append(p.ttftP95.Points, Point{now, snap.P95.Seconds()})
		p.completed.Points = append(p.completed.Points, Point{now, float64(sv.Completed())})
		return now < until && !heap.OOM()
	})
	return p
}

// RunLLMKV executes the two-phase evaluation under the given policy.
// Static policies pin max.num.batched.tokens and keep the default
// admission.queue.limit; SmartConf controls both knobs.
func RunLLMKV(p Policy) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(9001))
	heap := memsim.NewHeap(llmHeapCapacity)
	sv := llmserve.New(s, heap, llmConfig())

	switch p.Kind {
	case StaticPolicy:
		sv.SetMaxBatchedTokens(int(p.Static))
	case SmartConfPolicy:
		kvb := float64(llmKVPerToken())
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "max.num.batched.tokens",
			Metric:  "gpu_memory_consumption",
			Goal:    float64(llmMemoryGoal),
			Hard:    true,
			Initial: 0, // start closed; the controller opens the batch to fit
			Min:     0, Max: float64(llmHeapCapacity),
		}, publicProfile(ProfileLLMKV()), smartconf.Scale(1/kvb))
		if err != nil {
			panic(fmt.Sprintf("LLMKV synthesis: %v", err))
		}
		// Integration shim, Table 7-countable: sense the heap, read the
		// deputy (prompt-resident KV bytes — the quantity the bound caps),
		// and move the token bound. The §5.3 update starts from the deputy's
		// CURRENT value, so unit drift between the knob and the realized
		// footprint self-corrects. The cadence is deliberately slow: an
		// admitted prompt drags its decode KV in over the next several
		// seconds, and updating faster than that plant delay would integrate
		// against memory that is already committed but not yet visible.
		s.Every(0, 15*time.Second, func() bool {
			ic.SetPerf(float64(heap.Used()), float64(sv.PromptTokens())*kvb) //sc:LLMKV:sensor
			sv.SetMaxBatchedTokens(ic.Conf())                                //sc:LLMKV:invoke
			return s.Now() < llmRunTime && !sv.Crashed()
		})

		qc, err := smartconf.New(smartconf.Spec{
			Name:    "admission.queue.limit",
			Metric:  "ttft_p95",
			Goal:    llmTTFTGoalSec,
			Hard:    false, // latency SLO: soft
			Initial: float64(llmConfig().WaitingLimit),
			Min:     16, Max: 2048,
		}, publicProfile(ProfileLLMKVTTFT()))
		if err != nil {
			panic(fmt.Sprintf("LLMKV ttft synthesis: %v", err))
		}
		// A p95 estimate needs a window of first tokens and lags the knob, so
		// this loop runs on the sensor's timescale (cf. the SLA extension).
		s.Every(10*time.Second, 10*time.Second, func() bool {
			qc.SetPerf(sv.TTFT().Percentile(95).Seconds()) //sc:LLMKV:sensor
			sv.SetWaitingLimit(qc.Conf())                  //sc:LLMKV:invoke
			return s.Now() < llmRunTime && !sv.Crashed()
		})
	default:
		panic(fmt.Sprintf("LLMKV: unsupported policy %v", p))
	}

	heapNoise(s, heap, rng, llmNoiseMax, llmRunTime)
	probe := startLLMProbe(s, heap, sv, llmRunTime)

	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	llmDrive(s, sv, llmPhases(), 9002, llmRunTime)
	s.RunUntil(llmRunTime)

	res := Result{
		Issue:          "LLMKV",
		Policy:         p,
		Tradeoff:       float64(sv.OutputTokens()) / llmRunTime.Seconds(),
		TradeoffName:   "goodput (output tok/s)",
		HigherIsBetter: true,
		Series:         []Series{probe.mem, probe.knob, probe.goodput, probe.ttftP95, probe.completed},
	}
	// The hard constraint is survival: a KV or activation allocation that
	// does not fit kills the server (the production incident). The 15GiB
	// goal below the 16GiB device is the operator's engineered margin — the
	// controller aims at the goal so that transients land in the margin
	// instead of in an OOM.
	if heap.OOM() {
		res.ConstraintMet = false
		res.ViolatedAt = oomAt
		res.Violation = "OOM"
	} else {
		res.ConstraintMet = true
	}
	return res
}

// LLMKVScenario returns the scenario descriptor. It is an extension beyond
// the paper's six issues, so it is not part of Scenarios(); the bench
// registers it separately.
func LLMKVScenario() Scenario {
	return Scenario{
		ID:                "LLMKV",
		Conf:              "max.num.batched.tokens",
		Description:       "bounds the continuous batch by prompt tokens; too big, KV-cache OOM on long documents; too small, decode parallelism (goodput) hurts",
		Flags:             "N-N-Y",
		ConstraintName:    "GPU memory ≤ 15GiB (hard, no OOM)",
		TradeoffName:      "goodput (output tok/s)",
		HigherIsBetter:    true,
		ProfilingWorkload: "steady 40 req/s, 400/200 tok @ batch 16k/32k/48k/64k",
		PhaseWorkloads: [2]string{
			"chat: 20 req/s, 150/300 tok, bursty",
			"summarize: 12 req/s, 1800/220 tok, sustained",
		},
		BuggyDefault: 1e7,   // effectively unbounded: admit whatever arrives
		PatchDefault: 65536, // a "tuned-for-chat" default — still unsafe here
		StaticGrid:   []float64{8192, 12288, 16384, 20480, 24576, 32768, 40960, 49152, 65536, 81920},
		NonOptimal:   8192,
		Run:          RunLLMKV,
	}
}

// BuildFigureLLMKV runs the LLM-KV trade-off comparison (the Figure 5
// methodology on the extension scenario).
func BuildFigureLLMKV() Figure5Row {
	return BuildFigure5Row(LLMKVScenario())
}

// RenderFigureLLMKV formats the comparison plus the SmartConf run's control
// time series (memory, token bound, TTFT p95 — the re-convergence across
// the chat → summarize shift).
func RenderFigureLLMKV(row Figure5Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "LLM-KV: max.num.batched.tokens under a hard GPU-memory goal")
	fmt.Fprintf(&b, "(two-phase workload: %s → %s at t=%v)\n\n",
		llmPhases()[0], llmPhases()[1], llmPhaseShift)
	fmt.Fprintf(&b, "%-22s %14s %9s %12s %10s %5s\n",
		"Policy", "Setting", "Speedup", "tok/s", "TTFT p95", "OK?")
	for _, bar := range row.Bars {
		mark := "ok"
		if !bar.ConstraintMet {
			mark = "X"
		}
		setting := "-"
		if bar.Label != "SmartConf" {
			setting = humanSetting(bar.Setting)
		}
		ttft := "-"
		if s, ok := bar.Result.SeriesByName("ttft_p95"); ok && len(s.Points) > 0 {
			ttft = fmt.Sprintf("%.1fs", s.Points[len(s.Points)-1].V)
		}
		fmt.Fprintf(&b, "%-22s %14s %8.2fx %12.0f %10s %5s\n",
			bar.Label, setting, bar.Speedup, bar.Result.Tradeoff, ttft, mark)
	}
	fmt.Fprintln(&b)
	smart := row.Bars[0].Result
	if mem, ok := smart.SeriesByName("used_memory"); ok {
		fmt.Fprintf(&b, "SmartConf GPU memory (goal %dGiB): %s\n",
			llmMemoryGoal>>30, sparkline(mem, 60, llmRunTime))
	}
	if knob, ok := smart.SeriesByName("max.batched.tokens"); ok {
		fmt.Fprintf(&b, "SmartConf token bound:             %s\n", sparkline(knob, 60, llmRunTime))
	}
	if ttft, ok := smart.SeriesByName("ttft_p95"); ok {
		fmt.Fprintf(&b, "SmartConf TTFT p95 (goal %.0fs):     %s\n", llmTTFTGoalSec, sparkline(ttft, 60, llmRunTime))
	}
	fmt.Fprintf(&b, "(phase shift at %s: chat decode drags ~%.0f× uncounted KV per admitted prompt\n",
		llmPhaseShift, float64(llmPhases()[0].OutputMean+llmPhases()[0].PromptMean)/float64(llmPhases()[0].PromptMean))
	fmt.Fprintln(&b, " token, so the bound opens up once document traffic takes over)")
	return b.String()
}
