package experiments

import (
	"math/rand"
	"testing"
	"time"

	"smartconf"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// Failure injection: the environment changes out from under the controller.

// injectHB3813 runs the HB3813 plant with an injected fault at faultTime.
func injectHB3813(t *testing.T, fault func(heap *memsim.Heap, ic *smartconf.IndirectConf)) (oom bool, oomAt time.Duration, completed int64) {
	t.Helper()
	s := sim.New()
	rng := rand.New(rand.NewSource(4242))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)

	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "ipc.server.max.queue.size",
		Metric: "memory_consumption",
		Goal:   float64(rpcMemoryGoal),
		Hard:   true,
		Min:    0, Max: 5000,
	}, publicProfile(ProfileHB3813()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sv.BeforeAdmit = func() {
		ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		sv.SetMaxQueue(ic.Conf())
	}

	const runTime = 500 * time.Second
	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	heap.OnOOM(func() { oom, oomAt = true, s.Now() })

	s.At(250*time.Second, func() { fault(heap, ic) })

	w := &rpcWorkload{
		gen:        workload.NewYCSB(4242, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 << 20}),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 << 20}},
	}
	w.run(s, runTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(runTime)
	return oom, oomAt, sv.Completed()
}

// TestFailureInjectionCapacityDropWithGoalUpdate: the heap budget shrinks
// mid-run (a co-tenant claims 130 MB) and the administrator lowers the goal
// accordingly through setGoal — SmartConf re-converges with no OOM.
func TestFailureInjectionCapacityDropWithGoalUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	oom, at, completed := injectHB3813(t, func(heap *memsim.Heap, ic *smartconf.IndirectConf) {
		heap.SetCapacity(382 * mb)
		ic.SetGoal(float64(365 * mb))
	})
	if oom {
		t.Fatalf("OOM at %v despite the goal update", at)
	}
	if completed == 0 {
		t.Fatal("no work completed")
	}
}

// TestFailureInjectionCapacityDropWithoutGoalUpdate documents the contract:
// if the physical budget shrinks below the declared goal and nobody updates
// the goal, the controller keeps targeting a now-impossible constraint and
// the system dies. (SmartConf controls toward what users DECLARE; it cannot
// know the heap itself shrank.)
func TestFailureInjectionCapacityDropWithoutGoalUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	oom, at, _ := injectHB3813(t, func(heap *memsim.Heap, ic *smartconf.IndirectConf) {
		heap.SetCapacity(382 * mb) // far below the still-declared 495 MB goal
	})
	if !oom {
		t.Fatal("expected OOM when the goal is left stale")
	}
	if at < 250*time.Second {
		t.Errorf("OOM at %v predates the injected fault", at)
	}
}

// TestFailureInjectionSensorOutage: SetPerf stops being called (a sensor
// outage). The knob must freeze at its last value rather than drift, and
// the system keeps serving.
func TestFailureInjectionSensorOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	s := sim.New()
	rng := rand.New(rand.NewSource(77))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "q", Metric: "memory_consumption",
		Goal: float64(rpcMemoryGoal), Hard: true, Min: 0, Max: 5000,
	}, publicProfile(ProfileHB3813()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sensorAlive := true
	var frozenAt float64
	sv.BeforeAdmit = func() {
		if sensorAlive {
			ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		}
		limit := ic.Conf() // without fresh SetPerf this must be a no-op read
		sv.SetMaxQueue(limit)
	}
	s.At(200*time.Second, func() {
		sensorAlive = false
		frozenAt = float64(sv.MaxQueue())
	})

	const runTime = 400 * time.Second
	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	w := &rpcWorkload{
		gen:        workload.NewYCSB(78, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 << 20}),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 << 20}},
	}
	w.run(s, runTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(runTime)

	if heap.OOM() {
		t.Fatal("OOM during sensor outage (steady workload)")
	}
	if got := float64(sv.MaxQueue()); got != frozenAt {
		t.Errorf("knob drifted during outage: %v → %v", frozenAt, got)
	}
	if sv.Completed() == 0 {
		t.Error("no work completed")
	}
}

// TestFailureInjectionWorkloadSpike: a 4× burst spike arrives without any
// profiling evidence for it; the hard-goal machinery must still prevent OOM.
func TestFailureInjectionWorkloadSpike(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	s := sim.New()
	rng := rand.New(rand.NewSource(99))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "q", Metric: "memory_consumption",
		Goal: float64(rpcMemoryGoal), Hard: true, Min: 0, Max: 5000,
	}, publicProfile(ProfileHB3813()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sv.BeforeAdmit = func() {
		ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		sv.SetMaxQueue(ic.Conf())
	}
	const runTime = 400 * time.Second
	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	gen := workload.NewYCSB(100, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 << 20})
	s.Every(0, hb3813BurstEvery, func() bool {
		n := hb3813BurstSize
		if s.Now() > 200*time.Second && s.Now() < 250*time.Second {
			n *= 4 // the spike
		}
		for i := 0; i < n; i++ {
			op := gen.NextOp()
			s.After(time.Duration(i)*hb3813Spacing, func() { sv.Offer(op) })
		}
		return s.Now() < runTime
	})
	s.RunUntil(runTime)
	if heap.OOM() {
		t.Fatal("OOM under the unprofiled workload spike")
	}
}

// TestSoakTwoHours runs the HB3813 controller for two hours of virtual time
// under the steady workload: the constraint must hold throughout and the
// knob must not drift (integrator windup, slow leaks in the model state, or
// accounting bugs in the substrate would all surface over this horizon).
func TestSoakTwoHours(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	s := sim.New()
	rng := rand.New(rand.NewSource(314))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "q", Metric: "memory_consumption",
		Goal: float64(rpcMemoryGoal), Hard: true, Min: 0, Max: 5000,
	}, publicProfile(ProfileHB3813()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sv.BeforeAdmit = func() {
		ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		sv.SetMaxQueue(ic.Conf())
	}

	const runTime = 2 * time.Hour
	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	var knobAtHour float64
	s.At(time.Hour, func() { knobAtHour = float64(sv.MaxQueue()) })
	w := &rpcWorkload{
		gen:        workload.NewYCSB(315, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 << 20}),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 << 20}},
	}
	w.run(s, runTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(runTime)

	if heap.OOM() {
		t.Fatal("OOM during the soak")
	}
	if sv.Crashed() {
		t.Fatal("server crashed")
	}
	final := float64(sv.MaxQueue())
	if knobAtHour == 0 || final == 0 {
		t.Fatalf("knob collapsed: 1h=%v end=%v", knobAtHour, final)
	}
	drift := final/knobAtHour - 1
	if drift > 0.5 || drift < -0.5 {
		t.Errorf("knob drifted %.0f%% over the second hour (%v → %v)", 100*drift, knobAtHour, final)
	}
	if got := sv.Completed(); got < 100_000 {
		t.Errorf("only %d ops in two hours — throughput collapsed", got)
	}
}
