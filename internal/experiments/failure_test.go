package experiments

import (
	"math/rand"
	"testing"
	"time"

	"smartconf"
	"smartconf/internal/chaos"
	"smartconf/internal/llmserve"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// Failure injection: the environment changes out from under the controller.
// Every fault here is expressed through the chaos injector catalog, so the
// scheduled disturbance and the replay seed fully determine each run.

// runHB3813Chaos drives the HB3813 plant under a chaos plan. faults sees the
// constructed plant so injectors can reference the heap, the controller, and
// the loop; observe (optional) schedules extra probes before the run starts.
func runHB3813Chaos(t *testing.T,
	faults func(heap *memsim.Heap, ic *smartconf.IndirectConf, loop *chaos.Loop) []chaos.Fault,
	observe func(s *sim.Simulation, sv *rpcserver.Server),
) (oom bool, oomAt time.Duration, completed int64) {
	t.Helper()
	const runTime = 500 * time.Second
	s := sim.New()
	rng := rand.New(rand.NewSource(4242))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)

	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "ipc.server.max.queue.size",
		Metric: "memory_consumption",
		Goal:   float64(rpcMemoryGoal),
		Hard:   true,
		Min:    0, Max: 5000,
	}, publicProfile(ProfileHB3813()), nil)
	if err != nil {
		t.Fatal(err)
	}
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) { return float64(heap.Used()), float64(sv.QueueLen()) },
		Step: func(perf, deputy float64) float64 {
			ic.SetPerf(perf, deputy)
			return ic.Value()
		},
		Actuate: func(v float64) { sv.SetMaxQueue(int(v)) },
	})
	sv.BeforeAdmit = loop.Tick

	plan := &chaos.Plan{Name: "failure", Seed: 4242, Faults: faults(heap, ic, loop)}
	env := plan.Arm(s, loop)

	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	heap.OnOOM(func() { oom, oomAt = true, s.Now() })
	if observe != nil {
		observe(s, sv)
	}

	gen := workload.NewYCSB(4242, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 << 20})
	s.Every(0, hb3813BurstEvery, func() bool {
		n := int(float64(hb3813BurstSize) * env.SurgeFactor())
		for i := 0; i < n; i++ {
			op := gen.NextOp()
			s.After(time.Duration(i)*hb3813Spacing, func() { sv.Offer(op) })
		}
		return s.Now() < runTime
	})
	s.RunUntil(runTime)
	return oom, oomAt, sv.Completed()
}

// TestFailureInjectionCapacityDropWithGoalUpdate: the heap budget shrinks
// mid-run (a co-tenant claims 130 MB) and the administrator lowers the goal
// accordingly through the shrink's Then hook — SmartConf re-converges with no
// OOM.
func TestFailureInjectionCapacityDropWithGoalUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	oom, at, completed := runHB3813Chaos(t,
		func(heap *memsim.Heap, ic *smartconf.IndirectConf, _ *chaos.Loop) []chaos.Fault {
			return []chaos.Fault{chaos.HeapShrink{
				At: 250 * time.Second, Heap: heap, NewCapacity: 382 * mb,
				Then: func() { ic.SetGoal(float64(365 * mb)) },
			}}
		}, nil)
	if oom {
		t.Fatalf("OOM at %v despite the goal update", at)
	}
	if completed == 0 {
		t.Fatal("no work completed")
	}
}

// TestFailureInjectionCapacityDropWithoutGoalUpdate documents the contract:
// if the physical budget shrinks below the declared goal and nobody updates
// the goal, the controller keeps targeting a now-impossible constraint and
// the system dies. (SmartConf controls toward what users DECLARE; it cannot
// know the heap itself shrank.)
func TestFailureInjectionCapacityDropWithoutGoalUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	oom, at, _ := runHB3813Chaos(t,
		func(heap *memsim.Heap, _ *smartconf.IndirectConf, _ *chaos.Loop) []chaos.Fault {
			return []chaos.Fault{chaos.HeapShrink{
				At: 250 * time.Second, Heap: heap, NewCapacity: 382 * mb,
			}} // far below the still-declared 495 MB goal
		}, nil)
	if !oom {
		t.Fatal("expected OOM when the goal is left stale")
	}
	if at < 250*time.Second {
		t.Errorf("OOM at %v predates the injected fault", at)
	}
}

// TestFailureInjectionSensorOutage: a full sensor dropout from 200 s to the
// end of the run. The knob must freeze at its last actuated value rather than
// drift, and the system keeps serving.
func TestFailureInjectionSensorOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	var frozenAt, finalV float64
	oom, _, completed := runHB3813Chaos(t,
		func(_ *memsim.Heap, _ *smartconf.IndirectConf, _ *chaos.Loop) []chaos.Fault {
			return []chaos.Fault{chaos.SensorDropout{Start: 200 * time.Second, Prob: 1}}
		},
		func(s *sim.Simulation, sv *rpcserver.Server) {
			// Sample after the outage begins: no measurement can reach the
			// controller past 200 s, so any later change is drift.
			s.At(205*time.Second, func() { frozenAt = float64(sv.MaxQueue()) })
			s.At(499*time.Second, func() { finalV = float64(sv.MaxQueue()) })
		})
	if oom {
		t.Fatal("OOM during sensor outage (steady workload)")
	}
	if finalV != frozenAt {
		t.Errorf("knob drifted during outage: %v → %v", frozenAt, finalV)
	}
	if completed == 0 {
		t.Error("no work completed")
	}
}

// TestFailureInjectionWorkloadSpike: a 4× burst surge arrives for 50 s
// without any profiling evidence for it; the hard-goal machinery must still
// prevent OOM.
func TestFailureInjectionWorkloadSpike(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	oom, at, _ := runHB3813Chaos(t,
		func(_ *memsim.Heap, _ *smartconf.IndirectConf, _ *chaos.Loop) []chaos.Fault {
			return []chaos.Fault{chaos.WorkloadSurge{
				Start: 200 * time.Second, Duration: 50 * time.Second, Factor: 4,
			}}
		}, nil)
	if oom {
		t.Fatalf("OOM at %v under the unprofiled workload spike", at)
	}
}

// runLLMKVChaos drives the LLM serving plant under a chaos plan: the hard
// GPU-memory goal with the knob in token space (§5.3 indirect configuration).
func runLLMKVChaos(t *testing.T, phase workload.LLMPhase,
	faults func(heap *memsim.Heap, phases []workload.LLMPhase) []chaos.Fault,
) (oom bool, oomAt time.Duration, completed int64) {
	t.Helper()
	const runTime = 300 * time.Second
	s := sim.New()
	rng := rand.New(rand.NewSource(9001))
	heap := memsim.NewHeap(llmHeapCapacity)
	sv := llmserve.New(s, heap, llmConfig())
	kvb := float64(llmKVPerToken())

	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "max.num.batched.tokens",
		Metric: "gpu_memory_consumption",
		Goal:   float64(llmMemoryGoal),
		Hard:   true,
		Min:    0, Max: float64(llmHeapCapacity),
	}, publicProfile(ProfileLLMKV()), smartconf.Scale(1/kvb))
	if err != nil {
		t.Fatal(err)
	}
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) {
			return float64(heap.Used()), float64(sv.PromptTokens()) * kvb
		},
		Step: func(perf, deputy float64) float64 {
			ic.SetPerf(perf, deputy)
			return ic.Value()
		},
		Actuate: func(v float64) { sv.SetMaxBatchedTokens(int(v)) },
	})
	s.Every(0, 15*time.Second, func() bool {
		loop.Tick()
		return s.Now() < runTime && !sv.Crashed()
	})

	phases := []workload.LLMPhase{phase}
	plan := &chaos.Plan{Name: "failure", Seed: 9001, Faults: faults(heap, phases)}
	env := plan.Arm(s, loop)

	heapNoise(s, heap, rng, llmNoiseMax, runTime)
	heap.OnOOM(func() { oom, oomAt = true, s.Now() })
	chaosLLMDrive(s, sv, phases, 9002, runTime, env)
	s.RunUntil(runTime)
	return oom, oomAt, sv.Completed()
}

// TestFailureInjectionLLMKVPressureSpike: an uncounted 1 GiB allocation
// lands on the GPU for 30 s (a co-located job's KV spill). The controller
// senses the occupancy jump and closes the token budget; the spike must not
// OOM the server.
func TestFailureInjectionLLMKVPressureSpike(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	chat := workload.LLMPhase{Name: "chat", RequestsPerSec: 40, PromptMean: 150, OutputMean: 300,
		BurstSize: 40, BurstSpacing: 50 * time.Millisecond}
	oom, at, completed := runLLMKVChaos(t, chat,
		func(heap *memsim.Heap, _ []workload.LLMPhase) []chaos.Fault {
			return []chaos.Fault{chaos.HeapPressure{
				Start: 100 * time.Second, Duration: 30 * time.Second,
				Heap: heap, Bytes: 1 << 30,
			}}
		})
	if oom {
		t.Fatalf("OOM at %v under the KV-pressure spike", at)
	}
	if completed == 0 {
		t.Fatal("no requests completed")
	}
}

// TestFailureInjectionLLMDecodeAmplification: the workload shifts from long
// prompts with short answers (summarize) to short prompts with 2× longer
// decodes (chat) — per-admitted-token memory amplification the profile never
// saw at the operating point the knob had opened up to. The deputy-based
// update must pull the token budget back without an OOM.
func TestFailureInjectionLLMDecodeAmplification(t *testing.T) {
	if testing.Short() {
		t.Skip("failure injection")
	}
	chat := workload.LLMPhase{Name: "chat", RequestsPerSec: 40, PromptMean: 150, OutputMean: 300,
		BurstSize: 40, BurstSpacing: 50 * time.Millisecond}
	summarize := workload.LLMPhase{Name: "summarize", RequestsPerSec: 12, PromptMean: 1800, OutputMean: 220}
	oom, at, completed := runLLMKVChaos(t, summarize,
		func(_ *memsim.Heap, phases []workload.LLMPhase) []chaos.Fault {
			return []chaos.Fault{chaos.PlantShift{
				Label: "decode-amplification", At: 150 * time.Second,
				Apply: func() { phases[0] = chat },
			}}
		})
	if oom {
		t.Fatalf("OOM at %v after the decode-amplification shift", at)
	}
	if completed == 0 {
		t.Fatal("no requests completed")
	}
}

// TestSoakTwoHours runs the HB3813 controller for two hours of virtual time
// under the steady workload: the constraint must hold throughout and the
// knob must not drift (integrator windup, slow leaks in the model state, or
// accounting bugs in the substrate would all surface over this horizon).
func TestSoakTwoHours(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	s := sim.New()
	rng := rand.New(rand.NewSource(314))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "q", Metric: "memory_consumption",
		Goal: float64(rpcMemoryGoal), Hard: true, Min: 0, Max: 5000,
	}, publicProfile(ProfileHB3813()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sv.BeforeAdmit = func() {
		ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		sv.SetMaxQueue(ic.Conf())
	}

	const runTime = 2 * time.Hour
	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	var knobAtHour float64
	s.At(time.Hour, func() { knobAtHour = float64(sv.MaxQueue()) })
	w := &rpcWorkload{
		gen:        workload.NewYCSB(315, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 << 20}),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 << 20}},
	}
	w.run(s, runTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(runTime)

	if heap.OOM() {
		t.Fatal("OOM during the soak")
	}
	if sv.Crashed() {
		t.Fatal("server crashed")
	}
	final := float64(sv.MaxQueue())
	if knobAtHour == 0 || final == 0 {
		t.Fatalf("knob collapsed: 1h=%v end=%v", knobAtHour, final)
	}
	drift := final/knobAtHour - 1
	if drift > 0.5 || drift < -0.5 {
		t.Errorf("knob drifted %.0f%% over the second hour (%v → %v)", 100*drift, knobAtHour, final)
	}
	if got := sv.Completed(); got < 100_000 {
		t.Errorf("only %d ops in two hours — throughput collapsed", got)
	}
}
