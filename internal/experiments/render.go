package experiments

import (
	"strings"
	"time"
)

// sparkline renders a series as a fixed-width unicode bar strip — enough to
// see a trajectory's shape (ramp, plateau, collapse) directly in terminal
// output without a plotting tool.
func sparkline(s Series, width int, until time.Duration) string {
	if width <= 0 || len(s.Points) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	// Resample the series at `width` instants.
	vals := make([]float64, width)
	min, max := s.Points[0].V, s.Points[0].V
	for i := 0; i < width; i++ {
		t := time.Duration(float64(until) * float64(i+1) / float64(width))
		v := s.At(t)
		vals[i] = v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	span := max - min
	for _, v := range vals {
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// endOf returns the time of a series' last point (0 when empty).
func endOf(s Series) time.Duration {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].T
}
